package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func tinySet(t *testing.T) *Dataset {
	t.Helper()
	return Synthesize(SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 200, Noise: 0.1, Jitter: 1, Seed: 9,
	})
}

func TestSynthesizeGeometry(t *testing.T) {
	d := tinySet(t)
	if d.Len() != 200 {
		t.Fatalf("Len = %d, want 200", d.Len())
	}
	x, labels := d.Batch([]int{0, 5, 10})
	if got := x.Shape(); got[0] != 3 || got[1] != 1 || got[2] != 8 || got[3] != 8 {
		t.Fatalf("batch shape = %v, want [3 1 8 8]", got)
	}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{Name: "x", Channels: 1, Size: 6, Classes: 2, Samples: 10, Noise: 0.2, Jitter: 1, Seed: 33}
	a, b := Synthesize(cfg), Synthesize(cfg)
	xa, _ := a.Batch([]int{3})
	xb, _ := b.Batch([]int{3})
	for i := range xa.Data() {
		if xa.Data()[i] != xb.Data()[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
}

func TestSynthesizeBalancedClasses(t *testing.T) {
	d := tinySet(t)
	counts := make([]int, d.Classes)
	for i := 0; i < d.Len(); i++ {
		counts[d.Label(i)]++
	}
	for c, n := range counts {
		if n != 50 {
			t.Errorf("class %d count = %d, want 50", c, n)
		}
	}
}

func TestSynthesizeClassesAreSeparable(t *testing.T) {
	// Same-class samples must be closer (on average) than cross-class
	// samples, otherwise no model could learn the task.
	d := Synthesize(SynthConfig{
		Name: "sep", Channels: 1, Size: 8, Classes: 3,
		Samples: 60, Noise: 0.1, Jitter: 0, Seed: 4,
	})
	dist := func(i, j int) float64 {
		xi, _ := d.Batch([]int{i})
		xj, _ := d.Batch([]int{j})
		s := 0.0
		for k := range xi.Data() {
			dd := xi.Data()[k] - xj.Data()[k]
			s += dd * dd
		}
		return math.Sqrt(s)
	}
	var same, cross float64
	var ns, nc int
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			if d.Label(i) == d.Label(j) {
				same += dist(i, j)
				ns++
			} else {
				cross += dist(i, j)
				nc++
			}
		}
	}
	if same/float64(ns) >= cross/float64(nc) {
		t.Errorf("intra-class distance %v not smaller than inter-class %v", same/float64(ns), cross/float64(nc))
	}
}

func TestStandIns(t *testing.T) {
	tests := []struct {
		name    string
		build   func(...StandInOpt) *Dataset
		ch, sz  int
		classes int
	}{
		{"emnist", EMNIST, 1, 28, 47},
		{"fmnist", FMNIST, 1, 28, 10},
		{"cifar10", CIFAR10, 3, 32, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.build(WithSamples(64))
			if d.Channels != tt.ch || d.Size != tt.sz || d.Classes != tt.classes {
				t.Errorf("geometry = (%d,%d,%d), want (%d,%d,%d)",
					d.Channels, d.Size, d.Classes, tt.ch, tt.sz, tt.classes)
			}
			if d.Len() != 64 {
				t.Errorf("WithSamples not applied: len = %d", d.Len())
			}
		})
	}
}

// Property: Dirichlet partitioning assigns every sample to exactly one
// client regardless of α and client count.
func TestPartitionDirichletExactCover(t *testing.T) {
	d := tinySet(t)
	f := func(seed int64, nc uint8, ai uint8) bool {
		numClients := 1 + int(nc%16)
		alpha := 0.1 + float64(ai%30)/3.0
		subsets := PartitionDirichlet(d, numClients, alpha, seed)
		seen := make([]int, d.Len())
		total := 0
		for _, s := range subsets {
			total += s.Len()
			for _, i := range s.indices {
				seen[i]++
			}
		}
		if total != d.Len() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPartitionDirichletSkewIncreasesAsAlphaShrinks(t *testing.T) {
	d := Synthesize(SynthConfig{
		Name: "skew", Channels: 1, Size: 4, Classes: 10,
		Samples: 5000, Noise: 0.1, Seed: 5,
	})
	skew := func(alpha float64) float64 {
		subsets := PartitionDirichlet(d, 10, alpha, 77)
		// Mean over clients of the max class share — 0.1 when IID, →1 when
		// single-class.
		tot := 0.0
		for _, s := range subsets {
			h := s.LabelHistogram()
			sum, maxv := 0, 0
			for _, n := range h {
				sum += n
				if n > maxv {
					maxv = n
				}
			}
			if sum > 0 {
				tot += float64(maxv) / float64(sum)
			}
		}
		return tot / 10
	}
	low, high := skew(0.1), skew(100)
	if low <= high {
		t.Errorf("skew(α=0.1) = %v should exceed skew(α=100) = %v", low, high)
	}
	if high > 0.3 {
		t.Errorf("α=100 should be near-IID, max class share = %v", high)
	}
}

func TestPartitionIID(t *testing.T) {
	d := tinySet(t)
	subsets := PartitionIID(d, 8, 3)
	total := 0
	for _, s := range subsets {
		total += s.Len()
		if s.Len() != 25 {
			t.Errorf("IID shard size = %d, want 25", s.Len())
		}
	}
	if total != d.Len() {
		t.Errorf("total = %d, want %d", total, d.Len())
	}
}

func TestSubsetBatchAndSample(t *testing.T) {
	d := tinySet(t)
	s := NewSubset(d, []int{0, 4, 8, 12})
	x, labels := s.Batch([]int{1, 3})
	if x.Dim(0) != 2 {
		t.Fatalf("batch size = %d, want 2", x.Dim(0))
	}
	if labels[0] != d.Label(4) || labels[1] != d.Label(12) {
		t.Error("subset batch must map relative to absolute indices")
	}
	rng := rand.New(rand.NewSource(1))
	xs, ls := s.SampleBatch(rng, 16)
	if xs.Dim(0) != 16 || len(ls) != 16 {
		t.Fatal("SampleBatch wrong size")
	}
}

func TestApportion(t *testing.T) {
	tests := []struct {
		name  string
		w     []float64
		total int
		want  []int
	}{
		{"even", []float64{0.5, 0.5}, 4, []int{2, 2}},
		{"remainder", []float64{0.5, 0.25, 0.25}, 5, []int{3, 1, 1}},
		{"zero-weight", []float64{1, 0}, 3, []int{3, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := apportion(tt.w, tt.total)
			sum := 0
			for i, g := range got {
				sum += g
				if g != tt.want[i] {
					t.Errorf("apportion = %v, want %v", got, tt.want)
					break
				}
			}
			if sum != tt.total {
				t.Errorf("apportion sum = %d, want %d", sum, tt.total)
			}
		})
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, shape := range []float64{0.5, 1, 2, 5} {
		mean := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			mean += gammaSample(rng, shape)
		}
		mean /= n
		if math.Abs(mean-shape)/shape > 0.1 {
			t.Errorf("Gamma(%v) sample mean = %v, want ~%v", shape, mean, shape)
		}
	}
}
