package data

import (
	"fmt"
	"math"
	"math/rand"
)

// PartitionDirichlet splits a dataset across numClients clients with
// label-distribution skew controlled by a symmetric Dirichlet(α) prior, the
// non-IID model of Hsu et al. used by the paper (α=1 emulates a modest
// non-IID level; α→∞ approaches IID; α→0 approaches one-class clients).
//
// Every sample is assigned to exactly one client. For each class, the class
// samples are divided according to a fresh Dirichlet draw over clients.
func PartitionDirichlet(d *Dataset, numClients int, alpha float64, seed int64) []*Subset {
	if numClients <= 0 {
		panic(fmt.Sprintf("data: numClients = %d", numClients))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("data: Dirichlet alpha = %v must be positive", alpha))
	}
	rng := rand.New(rand.NewSource(seed))

	// Group sample indices by class.
	byClass := make([][]int, d.Classes)
	for i := 0; i < d.Len(); i++ {
		c := d.Label(i)
		byClass[c] = append(byClass[c], i)
	}

	assigned := make([][]int, numClients)
	for _, samples := range byClass {
		if len(samples) == 0 {
			continue
		}
		rng.Shuffle(len(samples), func(i, j int) {
			samples[i], samples[j] = samples[j], samples[i]
		})
		w := dirichlet(rng, numClients, alpha)
		// Convert weights to integer counts that sum exactly to len(samples).
		counts := apportion(w, len(samples))
		off := 0
		for ci, n := range counts {
			assigned[ci] = append(assigned[ci], samples[off:off+n]...)
			off += n
		}
	}

	subsets := make([]*Subset, numClients)
	for i := range subsets {
		subsets[i] = NewSubset(d, assigned[i])
	}
	return subsets
}

// PartitionIID splits the dataset uniformly at random into equal shards.
func PartitionIID(d *Dataset, numClients int, seed int64) []*Subset {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(d.Len())
	subsets := make([]*Subset, numClients)
	for i := range subsets {
		lo := i * d.Len() / numClients
		hi := (i + 1) * d.Len() / numClients
		subsets[i] = NewSubset(d, idx[lo:hi])
	}
	return subsets
}

// dirichlet draws one sample from a symmetric Dirichlet(α) over n bins via
// normalized Gamma(α, 1) variates.
func dirichlet(rng *rand.Rand, n int, alpha float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = gammaSample(rng, alpha)
		sum += w[i]
	}
	if sum == 0 {
		// Degenerate draw (possible only for pathological α); fall back to
		// uniform.
		for i := range w {
			w[i] = 1.0 / float64(n)
		}
		return w
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// gammaSample draws Gamma(shape, 1) using Marsaglia–Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// apportion converts fractional weights into non-negative integer counts
// summing exactly to total, using largest-remainder rounding.
func apportion(w []float64, total int) []int {
	counts := make([]int, len(w))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(w))
	used := 0
	for i, wi := range w {
		exact := wi * float64(total)
		c := int(exact)
		counts[i] = c
		used += c
		rems[i] = rem{idx: i, frac: exact - float64(c)}
	}
	// Distribute the remainder to the largest fractional parts.
	for used < total {
		best := 0
		for i := 1; i < len(rems); i++ {
			if rems[i].frac > rems[best].frac {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		used++
	}
	return counts
}
