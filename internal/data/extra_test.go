package data

import "testing"

func TestWithNoiseAndSeedOptions(t *testing.T) {
	quiet := EMNIST(WithSamples(16), WithNoise(0), WithSeed(5))
	loud := EMNIST(WithSamples(16), WithNoise(1), WithSeed(5))
	// Same class prototypes and jitter draws differ only by noise; the loud
	// variant must differ from the quiet one pixel-wise.
	xq, _ := quiet.Batch([]int{0})
	xl, _ := loud.Batch([]int{0})
	same := true
	for i := range xq.Data() {
		if xq.Data()[i] != xl.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("noise option had no effect")
	}
}

func TestLabelHistogramCountsAll(t *testing.T) {
	d := Synthesize(SynthConfig{
		Name: "h", Channels: 1, Size: 4, Classes: 3,
		Samples: 30, Noise: 0.1, Seed: 2,
	})
	s := NewSubset(d, []int{0, 1, 2, 3, 4, 5})
	h := s.LabelHistogram()
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 6 {
		t.Errorf("histogram total = %d, want 6", total)
	}
	if len(h) != 3 {
		t.Errorf("histogram classes = %d, want 3", len(h))
	}
}

func TestSynthesizePanicsOnBadConfig(t *testing.T) {
	bad := []SynthConfig{
		{Classes: 1, Samples: 10, Size: 4, Channels: 1},
		{Classes: 2, Samples: 0, Size: 4, Channels: 1},
		{Classes: 2, Samples: 10, Size: 0, Channels: 1},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			Synthesize(cfg)
		}()
	}
}

func TestPartitionDirichletPanicsOnBadArgs(t *testing.T) {
	d := Synthesize(SynthConfig{
		Name: "p", Channels: 1, Size: 4, Classes: 2,
		Samples: 8, Noise: 0.1, Seed: 1,
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero clients must panic")
			}
		}()
		PartitionDirichlet(d, 0, 1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive alpha must panic")
			}
		}()
		PartitionDirichlet(d, 2, 0, 1)
	}()
}
