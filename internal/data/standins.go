package data

// This file defines the paper's three workloads as synthetic stand-ins with
// the real datasets' tensor geometry and label-space size. See the package
// comment and DESIGN.md for the substitution rationale.

// StandInOpt adjusts a stand-in dataset build.
type StandInOpt func(*SynthConfig)

// WithSamples overrides the total sample count (default 4096).
func WithSamples(n int) StandInOpt {
	return func(c *SynthConfig) { c.Samples = n }
}

// WithSeed overrides the generation seed.
func WithSeed(seed int64) StandInOpt {
	return func(c *SynthConfig) { c.Seed = seed }
}

// WithNoise overrides the pixel-noise standard deviation.
func WithNoise(sigma float64) StandInOpt {
	return func(c *SynthConfig) { c.Noise = sigma }
}

func build(cfg SynthConfig, opts []StandInOpt) *Dataset {
	for _, o := range opts {
		o(&cfg)
	}
	return Synthesize(cfg)
}

// EMNIST builds the EMNIST stand-in: 28×28 grayscale, 47 balanced classes
// (the EMNIST "balanced" split used with the paper's CNN).
func EMNIST(opts ...StandInOpt) *Dataset {
	return build(SynthConfig{
		Name: "emnist", Channels: 1, Size: 28, Classes: 47,
		Samples: 4096, Noise: 0.25, Jitter: 2, Seed: 101,
	}, opts)
}

// FMNIST builds the Fashion-MNIST stand-in: 28×28 grayscale, 10 classes
// (the paper's ResNet-18 workload).
func FMNIST(opts ...StandInOpt) *Dataset {
	return build(SynthConfig{
		Name: "fmnist", Channels: 1, Size: 28, Classes: 10,
		Samples: 4096, Noise: 0.25, Jitter: 2, Seed: 202,
	}, opts)
}

// CIFAR10 builds the CIFAR-10 stand-in: 32×32 RGB, 10 classes (the paper's
// DenseNet-121 workload).
func CIFAR10(opts ...StandInOpt) *Dataset {
	return build(SynthConfig{
		Name: "cifar10", Channels: 3, Size: 32, Classes: 10,
		Samples: 4096, Noise: 0.3, Jitter: 2, Seed: 303,
	}, opts)
}
