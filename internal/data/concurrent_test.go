package data

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentReadSharing exercises the immutability contract the
// experiment harness's dataset cache depends on: many goroutines batch,
// sample, partition, and histogram one shared dataset at once. Run under
// -race (the race lane covers this package) it proves no method hides a
// write; the assertions additionally pin that concurrent readers observe
// identical bytes.
func TestConcurrentReadSharing(t *testing.T) {
	ds := Synthesize(SynthConfig{
		Name: "shared", Channels: 1, Size: 8, Classes: 5,
		Samples: 200, Noise: 0.2, Jitter: 1, Seed: 42,
	})
	subsets := PartitionDirichlet(ds, 4, 1.0, 7)

	refX, refLabels := ds.Batch([]int{0, 3, 9, 100})
	refSub, _ := subsets[1].Batch([]int{0, 1})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 25; iter++ {
				x, labels := ds.Batch([]int{0, 3, 9, 100})
				for i, v := range x.Data() {
					if v != refX.Data()[i] {
						t.Errorf("goroutine %d: pixel %d differs", g, i)
						return
					}
				}
				for i, l := range labels {
					if l != refLabels[i] {
						t.Errorf("goroutine %d: label %d differs", g, i)
						return
					}
				}
				sx, _ := subsets[1].Batch([]int{0, 1})
				for i, v := range sx.Data() {
					if v != refSub.Data()[i] {
						t.Errorf("goroutine %d: subset pixel %d differs", g, i)
						return
					}
				}
				// Sampling only reads the subset; the rng is goroutine-local.
				subsets[g%4].SampleBatch(rng, 6)
				subsets[g%4].LabelHistogram()
				// Re-partitioning the shared dataset must also be read-only.
				PartitionDirichlet(ds, 3, 1.0, int64(iter))
			}
		}()
	}
	wg.Wait()
}
