// Package data provides the datasets and partitioning machinery for the
// FedSU reproduction.
//
// The paper trains on EMNIST, Fashion-MNIST, and CIFAR-10. Those corpora
// are not available offline, so this package generates deterministic
// synthetic stand-ins with matching tensor geometry: each class owns a
// procedurally-drawn prototype image and samples are noisy, jittered copies
// of their class prototype. The resulting tasks are genuinely learnable —
// accuracy climbs and parameter trajectories stabilize — which is exactly
// the behaviour the FedSU algorithm consumes; it never inspects the pixels
// themselves. Non-IID client skew is produced by the same Dirichlet(α)
// label partitioning as the paper (Hsu et al.).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"fedsu/internal/tensor"
)

// Dataset is an in-memory labelled image dataset in NCHW layout.
//
// Immutability: a Dataset is fully materialized by Synthesize and never
// mutated afterwards — every method only reads (Batch copies pixels out into
// a fresh tensor). One *Dataset may therefore be shared freely across
// goroutines and across concurrently-running training engines; the
// experiment harness's artifact cache (internal/exp) relies on this to build
// each (dataset, samples, seed) corpus exactly once per process.
type Dataset struct {
	// Name identifies the dataset ("emnist", "fmnist", "cifar10", ...).
	Name string
	// Channels, Size describe the image geometry (Size×Size spatial).
	Channels, Size int
	// Classes is the label-space cardinality.
	Classes int

	images [][]float64 // one flat C*S*S image per sample
	labels []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.labels) }

// Label returns the label of sample i.
func (d *Dataset) Label(i int) int { return d.labels[i] }

// Batch assembles the samples at the given indices into a float64 input
// tensor and label slice ready for Model.TrainStep.
func (d *Dataset) Batch(indices []int) (*tensor.Tensor, []int) {
	return d.BatchOf(tensor.Float64, indices)
}

// BatchOf is Batch at an explicit input dtype. The stored images stay
// float64 (one shared immutable copy per corpus whatever the training
// precision); a float32 batch rounds each pixel once on assembly, the same
// conversion the model's float32 forward pass would otherwise apply.
func (d *Dataset) BatchOf(dt tensor.DType, indices []int) (*tensor.Tensor, []int) {
	n := len(indices)
	sz := d.Channels * d.Size * d.Size
	x := tensor.NewOf(dt, n, d.Channels, d.Size, d.Size)
	labels := make([]int, n)
	if dt == tensor.Float32 {
		xd := x.Data32()
		for bi, i := range indices {
			dst := xd[bi*sz : (bi+1)*sz]
			for j, v := range d.images[i] {
				dst[j] = float32(v) //lint:allow precision -- pixels round once at batch assembly
			}
			labels[bi] = d.labels[i]
		}
		return x, labels
	}
	xd := x.Data()
	for bi, i := range indices {
		copy(xd[bi*sz:(bi+1)*sz], d.images[i])
		labels[bi] = d.labels[i]
	}
	return x, labels
}

// Subset is a view over a subset of a dataset's samples, used as one
// client's local shard.
//
// Like Dataset, a Subset is immutable after construction: NewSubset copies
// the index slice and no method writes to it or to the parent. Sharing one
// Subset (or one partition of Subsets) across engines is safe; per-call
// randomness is injected via SampleBatch's rng parameter, so the Subset
// itself holds no mutable sampling state.
type Subset struct {
	parent  *Dataset
	indices []int
}

// NewSubset builds a view over the given sample indices.
func NewSubset(parent *Dataset, indices []int) *Subset {
	return &Subset{parent: parent, indices: append([]int(nil), indices...)}
}

// Len returns the number of samples in the subset.
func (s *Subset) Len() int { return len(s.indices) }

// Batch assembles a float64 batch from subset-relative indices.
func (s *Subset) Batch(rel []int) (*tensor.Tensor, []int) {
	return s.BatchOf(tensor.Float64, rel)
}

// BatchOf is Batch at an explicit input dtype.
func (s *Subset) BatchOf(dt tensor.DType, rel []int) (*tensor.Tensor, []int) {
	abs := make([]int, len(rel))
	for i, r := range rel {
		abs[i] = s.indices[r]
	}
	return s.parent.BatchOf(dt, abs)
}

// SampleBatch draws a uniform float64 batch of the given size with
// replacement from the subset using rng, the mini-batch sampling used by
// local SGD.
func (s *Subset) SampleBatch(rng *rand.Rand, size int) (*tensor.Tensor, []int) {
	return s.SampleBatchOf(tensor.Float64, rng, size)
}

// SampleBatchOf is SampleBatch at an explicit input dtype. The index draws
// consume rng identically at either width, so replicas differing only in
// precision train on the same sample sequence.
func (s *Subset) SampleBatchOf(dt tensor.DType, rng *rand.Rand, size int) (*tensor.Tensor, []int) {
	rel := make([]int, size)
	for i := range rel {
		rel[i] = rng.Intn(len(s.indices))
	}
	return s.BatchOf(dt, rel)
}

// LabelHistogram counts subset samples per class.
func (s *Subset) LabelHistogram() []int {
	h := make([]int, s.parent.Classes)
	for _, i := range s.indices {
		h[s.parent.labels[i]]++
	}
	return h
}

// SynthConfig parameterizes a synthetic dataset build.
type SynthConfig struct {
	// Name labels the dataset.
	Name string
	// Channels and Size describe image geometry.
	Channels, Size int
	// Classes is the number of label classes.
	Classes int
	// Samples is the total sample count.
	Samples int
	// Noise is the per-pixel Gaussian noise standard deviation.
	Noise float64
	// Jitter is the maximum spatial shift (in pixels) applied per sample.
	Jitter int
	// Seed drives the entire generation deterministically.
	Seed int64
}

// Synthesize generates a dataset per the config. Each class receives a
// smooth random prototype image (a sum of random 2-D Gaussian blobs, giving
// MNIST-like spatial structure); each sample is its class prototype, shifted
// by up to Jitter pixels and perturbed with Gaussian pixel noise.
func Synthesize(cfg SynthConfig) *Dataset {
	if cfg.Classes <= 1 || cfg.Samples <= 0 || cfg.Size <= 0 || cfg.Channels <= 0 {
		panic(fmt.Sprintf("data: invalid synth config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([][]float64, cfg.Classes)
	for c := range protos {
		protos[c] = prototype(rng, cfg.Channels, cfg.Size)
	}
	d := &Dataset{
		Name:     cfg.Name,
		Channels: cfg.Channels,
		Size:     cfg.Size,
		Classes:  cfg.Classes,
		images:   make([][]float64, cfg.Samples),
		labels:   make([]int, cfg.Samples),
	}
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes // balanced classes
		d.labels[i] = c
		d.images[i] = perturb(rng, protos[c], cfg)
	}
	return d
}

// prototype draws a smooth class template: each channel is a sum of a few
// random Gaussian blobs normalized to roughly unit scale.
func prototype(rng *rand.Rand, channels, size int) []float64 {
	img := make([]float64, channels*size*size)
	for c := 0; c < channels; c++ {
		plane := img[c*size*size : (c+1)*size*size]
		blobs := 3 + rng.Intn(3)
		for b := 0; b < blobs; b++ {
			cx := rng.Float64() * float64(size)
			cy := rng.Float64() * float64(size)
			sigma := 1.5 + 2.5*rng.Float64()
			amp := 0.5 + rng.Float64()
			if rng.Intn(2) == 0 {
				amp = -amp
			}
			inv := 1.0 / (2 * sigma * sigma)
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					dx, dy := float64(x)-cx, float64(y)-cy
					e := -(dx*dx + dy*dy) * inv
					if e > -20 {
						plane[y*size+x] += amp * math.Exp(e)
					}
				}
			}
		}
	}
	return img
}

// perturb produces one sample from a prototype: spatial jitter then pixel
// noise.
func perturb(rng *rand.Rand, proto []float64, cfg SynthConfig) []float64 {
	s := cfg.Size
	img := make([]float64, len(proto))
	dx, dy := 0, 0
	if cfg.Jitter > 0 {
		dx = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
		dy = rng.Intn(2*cfg.Jitter+1) - cfg.Jitter
	}
	for c := 0; c < cfg.Channels; c++ {
		src := proto[c*s*s : (c+1)*s*s]
		dst := img[c*s*s : (c+1)*s*s]
		for y := 0; y < s; y++ {
			sy := y + dy
			for x := 0; x < s; x++ {
				sx := x + dx
				v := 0.0
				if sy >= 0 && sy < s && sx >= 0 && sx < s {
					v = src[sy*s+sx]
				}
				dst[y*s+x] = v + cfg.Noise*rng.NormFloat64()
			}
		}
	}
	return img
}
