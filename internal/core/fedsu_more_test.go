package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsu/internal/sparse"
)

// fleetAgg simulates an N-client fleet for a single manager under test: the
// aggregate is the submitted value plus bounded zero-mean noise, standing
// in for the other clients' disagreement.
type fleetAgg struct {
	rng   *rand.Rand
	noise float64
}

func (f *fleetAgg) AggregateModel(_, _ int, values []float64) ([]float64, error) {
	if values == nil {
		return nil, nil
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v + f.noise*f.rng.NormFloat64()
	}
	return out, nil
}

func (f *fleetAgg) AggregateError(_, _ int, values []float64) ([]float64, error) {
	return f.AggregateModel(0, 0, values)
}

// TestSpeculativeDeviationBounded is the empirical form of the paper's
// convergence guarantee (Theorem 1): with error feedback active, the gap
// between the FedSU trajectory and the true (fully synchronized) trajectory
// stays bounded by a modest multiple of the per-round update scale,
// regardless of where the linear pattern breaks.
func TestSpeculativeDeviationBounded(t *testing.T) {
	opts := DefaultOptions()
	opts.TS = 1.0
	m, _ := newTestManager(t, 1, opts)

	slope := 0.2
	truth := func(k int) float64 {
		// Linear, then a sharp regime change to a different slope, then
		// flat — three pattern segments.
		switch {
		case k < 15:
			return slope * float64(k)
		case k < 30:
			return slope*15 - 0.1*float64(k-15)
		default:
			return slope*15 - 0.1*15
		}
	}
	maxDev := 0.0
	for k := 0; k < 45; k++ {
		out, _, err := m.Sync(k, []float64{truth(k)}, true)
		if err != nil {
			t.Fatal(err)
		}
		dev := math.Abs(out[0] - truth(k))
		if dev > maxDev {
			maxDev = dev
		}
	}
	// The per-round update scale is ~0.2; T_S bounds the accumulated error
	// per no-checking window at T_S·|g| per window. Allow a few windows'
	// worth of drift.
	if maxDev > 8*slope {
		t.Errorf("max deviation %v exceeds the error-feedback bound (~%v)", maxDev, 8*slope)
	}
}

func TestRawSlopeVsSmoothedSlope(t *testing.T) {
	// With a noisy-but-linear trajectory, the smoothed slope estimator
	// should track the true slope more closely than the raw last-round
	// estimate at promotion time.
	trueSlope := 1.0
	run := func(raw bool) float64 {
		opts := DefaultOptions()
		opts.RawSlope = raw
		agg := &fleetAgg{rng: rand.New(rand.NewSource(7)), noise: 0.05}
		m, err := NewManager(0, 1, agg, opts)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 60; k++ {
			if _, _, err := m.Sync(k, []float64{trueSlope * float64(k)}, true); err != nil {
				t.Fatal(err)
			}
			if m.mode[0] == modeSpeculative {
				return m.slope[0]
			}
		}
		return math.NaN()
	}
	smoothed, rawS := run(false), run(true)
	if math.IsNaN(smoothed) || math.IsNaN(rawS) {
		t.Skip("parameter did not promote within the horizon for this seed")
	}
	if math.Abs(smoothed-trueSlope) > math.Abs(rawS-trueSlope)+0.05 {
		t.Errorf("smoothed slope %v should not be materially worse than raw %v (true %v)",
			smoothed, rawS, trueSlope)
	}
}

func TestFeedbackSignalNormalization(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 1, opts)
	m.emaAbsG[0] = 0.5

	// Default: floored at the movement scale.
	if got := m.feedbackSignal(0, 1.0, 0.001); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("floored signal = %v, want 2.0 (=1/0.5)", got)
	}
	// Slope above the floor: plain Eq. 3.
	if got := m.feedbackSignal(0, 1.0, 2.0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("signal = %v, want 0.5", got)
	}

	// RawErrorNorm: literal Eq. 3 semantics.
	m.opts.RawErrorNorm = true
	if got := m.feedbackSignal(0, 1.0, 0.001); math.Abs(got-1000) > 1e-9 {
		t.Errorf("raw signal = %v, want 1000", got)
	}
	// Zero-slope guard.
	if got := m.feedbackSignal(0, 1.0, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("zero-slope signal must be finite, got %v", got)
	}
}

func TestTrafficByteAccounting(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 10, opts)
	// Nonzero values so the dense exchange costs the full bitmap encoding;
	// expectations come from the wire codec itself (MessageBytes).
	local := make([]float64, 10)
	for i := range local {
		local[i] = float64(i + 1)
	}
	_, tr, err := m.Sync(0, local, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.MessageBytes(local)
	if tr.UpBytes != want || tr.DownBytes != want {
		t.Errorf("bootstrap traffic = %d/%d, want %d", tr.UpBytes, tr.DownBytes, want)
	}
	for i := range local {
		local[i] = float64(i+1) + 0.5
	}
	_, tr, err = m.Sync(1, local, true)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 still exchanges every (regular) parameter.
	if tr.UpBytes != want {
		t.Errorf("regular round traffic = %d, want %d", tr.UpBytes, want)
	}
	if tr.CheckedParams != 0 {
		t.Errorf("no params should check on round 1, got %d", tr.CheckedParams)
	}
}

// Property: for any bounded trajectory, the manager's output stays finite
// and the predictable count stays within [0, size].
func TestManagerRobustToArbitraryTrajectories(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := DefaultOptions()
		agg := &identityAgg{}
		m, err := NewManager(0, 4, agg, opts)
		if err != nil {
			return false
		}
		x := make([]float64, 4)
		for k := 0; k < 30; k++ {
			for i := range x {
				switch rng.Intn(3) {
				case 0:
					x[i] += rng.NormFloat64()
				case 1:
					x[i] = x[i]*0.9 + 0.1
				case 2: // no change
				}
			}
			out, _, err := m.Sync(k, x, true)
			if err != nil {
				return false
			}
			for _, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
			copy(x, out)
			if pc := m.PredictableCount(); pc < 0 || pc > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDefaultVariantFilledByValidate(t *testing.T) {
	o := Options{TR: 0.01, TS: 1, Theta: 0.9}
	agg := &identityAgg{}
	m, err := NewManager(0, 1, agg, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.opts.Variant != VariantFull {
		t.Errorf("zero Variant should default to full, got %v", m.opts.Variant)
	}
	if m.opts.MinHistory < 1 {
		t.Errorf("MinHistory must be at least 1, got %d", m.opts.MinHistory)
	}
}

func TestSeparateManagersAgreeUnderSharedAggregates(t *testing.T) {
	// Two managers fed the same aggregated results (as a real fleet would
	// be) must make identical masking decisions even though their local
	// (pre-sync) vectors differ.
	opts := DefaultOptions()
	aggValues := func(k int) []float64 {
		return []float64{0.3 * float64(k), math.Sin(float64(k))}
	}
	shared := &scriptedAgg{script: aggValues}
	a, err := NewManager(0, 2, shared, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewManager(1, 2, shared, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for k := 0; k < 25; k++ {
		base := aggValues(k)
		la := []float64{base[0] + 0.01*rng.NormFloat64(), base[1] + 0.01*rng.NormFloat64()}
		lb := []float64{base[0] + 0.01*rng.NormFloat64(), base[1] + 0.01*rng.NormFloat64()}
		oa, _, err1 := a.Sync(k, la, true)
		ob, _, err2 := b.Sync(k, lb, true)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		ma, mb := a.PredictableMask(), b.PredictableMask()
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("round %d: masks diverged at %d", k, i)
			}
			if ma[i] && oa[i] != ob[i] {
				t.Fatalf("round %d: speculative values diverged at %d", k, i)
			}
		}
	}
}

// scriptedAgg returns a fixed script of global values for model collectives
// (restricted to the regular-parameter subset) and zero errors.
type scriptedAgg struct {
	script func(k int) []float64
	round  int
}

func (s *scriptedAgg) AggregateModel(_, round int, values []float64) ([]float64, error) {
	if values == nil {
		return nil, nil
	}
	// The caller only submits regular parameters; we cannot know the
	// subset here, so return the submitted values unchanged — both
	// managers then receive whatever THEIR submission was. To keep the
	// fleets aligned, this aggregator is only used in tests where the
	// scripted trajectory drives both managers identically through the
	// returned values below.
	out := make([]float64, len(values))
	copy(out, values)
	full := s.script(round)
	// Overwrite with the script where lengths allow (regular set may
	// shrink as parameters go speculative; the script prefix matches
	// because parameters promote in index order for this trajectory).
	for i := range out {
		if i < len(full) {
			out[i] = full[i]
		}
	}
	return out, nil
}

func (s *scriptedAgg) AggregateError(_, _ int, values []float64) ([]float64, error) {
	if values == nil {
		return nil, nil
	}
	return make([]float64, len(values)), nil
}
