package core

import (
	"testing"
)

// reuseAgg is an identity aggregator that reuses its reply buffers, so any
// allocation measured below is attributable to the Manager itself.
type reuseAgg struct {
	modelBuf, errBuf []float64
}

func (a *reuseAgg) AggregateModel(_, _ int, values []float64) ([]float64, error) {
	if values == nil {
		return nil, nil
	}
	a.modelBuf = append(a.modelBuf[:0], values...)
	return a.modelBuf, nil
}

func (a *reuseAgg) AggregateError(_, _ int, values []float64) ([]float64, error) {
	if values == nil {
		return nil, nil
	}
	a.errBuf = append(a.errBuf[:0], values...)
	return a.errBuf, nil
}

// TestSyncSteadyStateAllocs pins the allocation-free Sync hot loop: after
// warmup (bootstrap round, first promotions, aggregator buffer growth), a
// full Sync round — partitioning, both collectives, speculation, diagnosis
// — must not allocate at all.
func TestSyncSteadyStateAllocs(t *testing.T) {
	const size = 512
	agg := &reuseAgg{}
	m, err := NewManager(0, size, agg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	local := make([]float64, size)
	k := 0
	round := func() {
		for i := range local {
			// Linear per-parameter trajectories with distinct slopes, so the
			// steady state exercises speculation and error feedback.
			local[i] = float64(i) + 0.01*float64(i+1)*float64(k)
		}
		if _, _, err := m.Sync(k, local, true); err != nil {
			t.Fatal(err)
		}
		k++
	}
	for i := 0; i < 12; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(25, round); allocs > 0 {
		t.Errorf("steady-state Sync allocates %.1f times per round, want 0", allocs)
	}
}
