package core

import (
	"math"
	"testing"

	"fedsu/internal/sparse"
)

// identityAgg is a single-client aggregator: the mean over one contributor
// is the contribution itself.
type identityAgg struct {
	modelCalls, errorCalls int
}

func (a *identityAgg) AggregateModel(_, _ int, values []float64) ([]float64, error) {
	a.modelCalls++
	if values == nil {
		return nil, nil
	}
	return append([]float64(nil), values...), nil
}

func (a *identityAgg) AggregateError(_, _ int, values []float64) ([]float64, error) {
	a.errorCalls++
	if values == nil {
		return nil, nil
	}
	return append([]float64(nil), values...), nil
}

func newTestManager(t *testing.T, size int, opts Options) (*Manager, *identityAgg) {
	t.Helper()
	agg := &identityAgg{}
	m, err := NewManager(0, size, agg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, agg
}

// drive feeds the manager a externally-scripted "local" trajectory: at each
// round the client's post-training vector is traj(round). Returns the
// manager outputs per round.
func drive(t *testing.T, m *Manager, rounds int, traj func(k int) []float64) ([][]float64, []sparse.Traffic) {
	t.Helper()
	var outs [][]float64
	var trs []sparse.Traffic
	for k := 0; k < rounds; k++ {
		out, tr, err := m.Sync(k, traj(k), true)
		if err != nil {
			t.Fatalf("round %d: %v", k, err)
		}
		// Sync's result is manager-owned scratch, valid only until the next
		// call — retaining it across rounds requires a copy.
		outs = append(outs, append([]float64(nil), out...))
		trs = append(trs, tr)
	}
	return outs, trs
}

func TestOptionsValidation(t *testing.T) {
	agg := &identityAgg{}
	tests := []struct {
		name string
		mod  func(*Options)
	}{
		{"zero-TR", func(o *Options) { o.TR = 0 }},
		{"zero-TS", func(o *Options) { o.TS = 0 }},
		{"theta-one", func(o *Options) { o.Theta = 1 }},
		{"v1-no-period", func(o *Options) { o.Variant = VariantV1; o.FixedPeriod = 0 }},
		{"v2-no-prob", func(o *Options) { o.Variant = VariantV2; o.LaunchProb = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := DefaultOptions()
			tt.mod(&o)
			if _, err := NewManager(0, 4, agg, o); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if _, err := NewManager(0, 0, agg, DefaultOptions()); err == nil {
		t.Error("zero size must fail")
	}
}

func TestVariantString(t *testing.T) {
	if VariantFull.String() != "fedsu" || VariantV1.String() != "fedsu-v1" || VariantV2.String() != "fedsu-v2" {
		t.Error("variant names wrong")
	}
}

func TestLinearParameterBecomesPredictable(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 2, opts)
	// Param 0: exactly linear (slope 0.1). Param 1: alternating jumps (no
	// linearity).
	traj := func(k int) []float64 {
		p1 := 1.0
		if k%2 == 0 {
			p1 = -1.0
		}
		return []float64{0.1 * float64(k+1), p1}
	}
	drive(t, m, 8, traj)
	mask := m.PredictableMask()
	if !mask[0] {
		t.Error("exactly linear parameter not diagnosed predictable")
	}
	if mask[1] {
		t.Error("alternating parameter wrongly diagnosed predictable")
	}
}

func TestSpeculativePredictionFollowsLine(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 1, opts)
	const slope = 0.5
	traj := func(k int) []float64 { return []float64{slope * float64(k+1)} }
	outs, _ := drive(t, m, 12, traj)
	// Once predictable, outputs must continue the same line exactly.
	if m.PredictableCount() != 1 {
		t.Fatal("parameter should be predictable")
	}
	for k := 6; k < 12; k++ {
		want := slope * float64(k+1)
		if math.Abs(outs[k][0]-want) > 1e-9 {
			t.Errorf("round %d: predicted %v, want %v", k, outs[k][0], want)
		}
	}
}

func TestTrafficDropsUnderSpeculation(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 100, opts)
	traj := func(k int) []float64 {
		v := make([]float64, 100)
		for i := range v {
			v[i] = float64(i) + 0.01*float64(i+1)*float64(k+1)
		}
		return v
	}
	_, trs := drive(t, m, 12, traj)
	if trs[0].SyncedParams != 100 {
		t.Fatalf("bootstrap synced %d, want 100", trs[0].SyncedParams)
	}
	// Once every parameter is speculative no model values are synchronized;
	// error-check rounds still carry feedback traffic, so assert on the
	// steady state: no synced params in the tail, and a high mean
	// byte-level savings over the tail rounds.
	meanRatio := 0.0
	for _, tr := range trs[6:] {
		if tr.SyncedParams != 0 {
			t.Errorf("tail round synced %d params, want 0", tr.SyncedParams)
		}
		meanRatio += tr.SparsificationRatio()
	}
	meanRatio /= float64(len(trs[6:]))
	if meanRatio < 0.4 {
		t.Errorf("mean tail sparsification ratio = %v, want > 0.4", meanRatio)
	}
}

func TestNoCheckPeriodGrowsWhilePredictionHolds(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 1, opts)
	traj := func(k int) []float64 { return []float64{float64(k + 1)} }
	drive(t, m, 30, traj)
	if m.noCheckPeriod[0] < 3 {
		t.Errorf("no-check period = %d, want additive growth ≥ 3", m.noCheckPeriod[0])
	}
	if m.PredictableCount() != 1 {
		t.Error("perfectly linear parameter must stay predictable")
	}
}

func TestErrorFeedbackRevertsBrokenPattern(t *testing.T) {
	opts := DefaultOptions()
	opts.TS = 0.5
	m, _ := newTestManager(t, 1, opts)
	// Linear for 10 rounds, then frozen flat (pattern break).
	breakAt := 10
	traj := func(k int) []float64 {
		if k < breakAt {
			return []float64{float64(k + 1)}
		}
		return []float64{float64(breakAt)}
	}
	outs, _ := drive(t, m, 40, traj)
	if m.PredictableCount() != 0 {
		t.Error("broken pattern must eventually revert to regular updating")
	}
	// After reversion the output must track the new flat truth again.
	final := outs[len(outs)-1][0]
	if math.Abs(final-float64(breakAt)) > 1.0 {
		t.Errorf("post-reversion value %v strayed from truth %v", final, float64(breakAt))
	}
}

func TestErrorCheckIncursTraffic(t *testing.T) {
	opts := DefaultOptions()
	m, agg := newTestManager(t, 1, opts)
	traj := func(k int) []float64 { return []float64{float64(k + 1)} }
	_, trs := drive(t, m, 20, traj)
	if agg.errorCalls == 0 {
		t.Fatal("error feedback never aggregated")
	}
	sawCheck := false
	for _, tr := range trs {
		if tr.CheckedParams > 0 {
			sawCheck = true
			if tr.UpBytes <= sparse.HeaderBytes {
				t.Error("check round should carry error payload bytes")
			}
		}
	}
	if !sawCheck {
		t.Error("no round reported checked params")
	}
}

func TestV1FixedPeriodExit(t *testing.T) {
	opts := DefaultOptions()
	opts.Variant = VariantV1
	opts.FixedPeriod = 4
	m, agg := newTestManager(t, 1, opts)
	traj := func(k int) []float64 { return []float64{float64(k + 1)} }
	drive(t, m, 40, traj)
	if agg.errorCalls != 0 {
		t.Error("v1 must never aggregate errors")
	}
	// The parameter should have cycled in and out of speculation; verify it
	// was in speculative mode but bounded by the fixed period.
	if m.specTotal[0] == 0 {
		t.Error("v1 never speculated on a linear parameter")
	}
	frac := m.LinearFractions()[0]
	if frac >= 1 {
		t.Errorf("v1 speculative fraction = %v, must be < 1 due to periodic exits", frac)
	}
}

func TestV2RandomLaunch(t *testing.T) {
	opts := DefaultOptions()
	opts.Variant = VariantV2
	opts.FixedPeriod = 5
	opts.LaunchProb = 0.5
	opts.Seed = 42
	m, agg := newTestManager(t, 50, opts)
	traj := func(k int) []float64 {
		v := make([]float64, 50)
		for i := range v {
			// Non-linear: sign-alternating — v2 speculates regardless.
			v[i] = math.Sin(float64(k) * float64(i+1))
		}
		return v
	}
	drive(t, m, 10, traj)
	if agg.errorCalls != 0 {
		t.Error("v2 must never aggregate errors")
	}
	total := int64(0)
	for _, s := range m.specTotal {
		total += s
	}
	if total == 0 {
		t.Error("v2 with LaunchProb 0.5 never launched speculation")
	}
}

func TestV2MasksAgreeAcrossClients(t *testing.T) {
	opts := DefaultOptions()
	opts.Variant = VariantV2
	opts.FixedPeriod = 5
	opts.LaunchProb = 0.3
	opts.Seed = 7
	a, _ := newTestManager(t, 20, opts)
	b, _ := newTestManager(t, 20, opts)
	traj := func(k int) []float64 {
		v := make([]float64, 20)
		for i := range v {
			v[i] = float64(k) * 0.1 * float64(i)
		}
		return v
	}
	for k := 0; k < 8; k++ {
		x := traj(k)
		a.Sync(k, x, true)
		b.Sync(k, x, true)
		ma, mb := a.PredictableMask(), b.PredictableMask()
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("round %d: masks diverge at param %d", k, i)
			}
		}
	}
}

func TestOscillationRatioBounds(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 1, opts)
	// Any trajectory: ratio must stay in [0, 1].
	vals := []float64{0, 1, -2, 3, 3, 3.5, 2, 8, 8.1}
	for k, v := range vals {
		if _, _, err := m.Sync(k, []float64{v}, true); err != nil {
			t.Fatal(err)
		}
		r := m.OscillationRatio(0)
		if r < 0 || r > 1+1e-12 {
			t.Fatalf("round %d: ratio %v outside [0,1]", k, r)
		}
	}
}

func TestLinearFractionsCDFInput(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 2, opts)
	traj := func(k int) []float64 {
		return []float64{float64(k), math.Pow(-1, float64(k))}
	}
	drive(t, m, 20, traj)
	fr := m.LinearFractions()
	if fr[0] <= fr[1] {
		t.Errorf("linear param fraction %v should exceed oscillating %v", fr[0], fr[1])
	}
	for i, f := range fr {
		if f < 0 || f > 1 {
			t.Errorf("fraction[%d] = %v outside [0,1]", i, f)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 3, opts)
	traj := func(k int) []float64 {
		return []float64{float64(k), 2 * float64(k), -1}
	}
	drive(t, m, 10, traj)
	snap := m.Snapshot()

	agg2 := &identityAgg{}
	m2, err := NewManager(1, 3, agg2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Continued trajectories must produce identical outputs and masks.
	for k := 10; k < 16; k++ {
		x := traj(k)
		o1, _, err1 := m.Sync(k, x, true)
		o2, _, err2 := m2.Sync(k, x, true)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("round %d: restored manager diverged at param %d: %v vs %v", k, i, o1[i], o2[i])
			}
		}
	}
}

func TestRestoreSizeMismatch(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 3, opts)
	other, _ := newTestManager(t, 4, opts)
	if err := m.Restore(other.Snapshot()); err == nil {
		t.Error("size-mismatched restore must fail")
	}
}

func TestVectorLengthMismatch(t *testing.T) {
	opts := DefaultOptions()
	m, _ := newTestManager(t, 3, opts)
	if _, _, err := m.Sync(0, []float64{1, 2}, true); err == nil {
		t.Error("wrong-length vector must fail")
	}
}

func TestNonContributorFollowsGlobal(t *testing.T) {
	// A non-contributor submits nil but must still receive and adopt the
	// aggregate when other clients contribute. With the identity aggregator
	// nil yields nil (no contributors), so the manager keeps its local
	// values — verifying the abstain path doesn't crash or desync state.
	opts := DefaultOptions()
	m, _ := newTestManager(t, 2, opts)
	if _, _, err := m.Sync(0, []float64{1, 2}, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Sync(1, []float64{2, 3}, true); err != nil {
		t.Fatal(err)
	}
}
