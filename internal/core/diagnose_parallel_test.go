package core

import (
	"math"
	"testing"

	"fedsu/internal/par"
)

// runDiagnoseTrajectory drives rounds of Sync over a vector large enough
// that diagnose fans out across the worker pool (size > diagnoseGrain) and
// returns every round's output concatenated, plus the final speculative
// mask. Trajectories mix linear parameters (which promote), oscillating
// ones (which never do), and stagnating ones, so the scan exercises every
// diagnose branch.
func runDiagnoseTrajectory(t *testing.T, opts Options, rounds int) ([]float64, []bool) {
	t.Helper()
	const size = 3*diagnoseGrain + 17 // several chunks + unaligned tail
	m, err := NewManager(0, size, &reuseAgg{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	local := make([]float64, size)
	var outs []float64
	for k := 0; k < rounds; k++ {
		for i := range local {
			switch i % 3 {
			case 0: // linear: slope grows with index
				local[i] = float64(i) + 0.01*float64(i%97+1)*float64(k)
			case 1: // oscillating
				local[i] = math.Sin(float64(k)) * float64(i%13+1)
			default: // stagnating
				local[i] = float64(i % 7)
			}
		}
		out, _, err := m.Sync(k, local, true)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out...)
	}
	return outs, m.PredictableMask()
}

// TestDiagnoseParallelDeterminism pins the bit-identity contract of the
// parallelized O(d) diagnosis scan: serial (1 worker) and fanned-out
// execution must produce byte-for-byte the same sync outputs and the same
// final speculative mask — for full FedSU and, crucially, for v2, whose
// launch lottery consumes a shared rng that the parallel path must pre-draw
// in serial order. This mirrors the serial-vs-parallel determinism pattern
// of internal/tensor.
func TestDiagnoseParallelDeterminism(t *testing.T) {
	const rounds = 9
	variants := []Options{
		DefaultOptions(),
		func() Options {
			o := DefaultOptions()
			o.Variant = VariantV2
			o.FixedPeriod = 3
			o.LaunchProb = 0.2
			return o
		}(),
	}
	for _, opts := range variants {
		opts := opts
		t.Run(opts.Variant.String(), func(t *testing.T) {
			defer par.SetWorkers(par.SetWorkers(1))
			serialOut, serialMask := runDiagnoseTrajectory(t, opts, rounds)
			promoted := 0
			for _, sp := range serialMask {
				if sp {
					promoted++
				}
			}
			if promoted == 0 {
				t.Fatal("trajectory never promoted a parameter; test would be vacuous")
			}
			for _, workers := range []int{2, 5} {
				par.SetWorkers(workers)
				out, mask := runDiagnoseTrajectory(t, opts, rounds)
				for i := range serialOut {
					if serialOut[i] != out[i] {
						t.Fatalf("workers=%d: output %d diverges: serial=%v parallel=%v",
							workers, i, serialOut[i], out[i])
					}
				}
				for i := range serialMask {
					if serialMask[i] != mask[i] {
						t.Fatalf("workers=%d: mask %d diverges", workers, i)
					}
				}
			}
		})
	}
}
