package core

import (
	"strings"
	"testing"
)

func TestVariantUnknownString(t *testing.T) {
	v := Variant(9)
	if got := v.String(); !strings.Contains(got, "9") {
		t.Errorf("unknown variant String = %q", got)
	}
}

func TestLinearFractionsBeforeAnyRound(t *testing.T) {
	m, _ := newTestManager(t, 3, DefaultOptions())
	fr := m.LinearFractions()
	for i, f := range fr {
		if f != 0 {
			t.Errorf("fraction[%d] = %v before any round", i, f)
		}
	}
}

func TestOscillationRatioUnseen(t *testing.T) {
	m, _ := newTestManager(t, 1, DefaultOptions())
	if got := m.OscillationRatio(0); got != 1 {
		t.Errorf("unseen ratio = %v, want 1", got)
	}
}

func TestPredictableMaskLength(t *testing.T) {
	m, _ := newTestManager(t, 5, DefaultOptions())
	if got := len(m.PredictableMask()); got != 5 {
		t.Errorf("mask length = %d", got)
	}
	if m.Name() != "fedsu" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestFactoryPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Factory with invalid options must panic at build time")
		}
	}()
	bad := DefaultOptions()
	bad.TR = -1
	Factory(bad)(0, 3, &identityAgg{})
}
