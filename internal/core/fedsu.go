// Package core implements FedSU — Federated Learning with Speculative
// Updating (Yu et al., ICDCS 2025), the paper's primary contribution.
//
// FedSU observes that during federated training many scalar parameters
// evolve linearly across rounds. Borrowing speculative execution from
// computer architecture, it exempts such parameters from synchronization and
// refines them locally with a predicted per-round update. Two mechanisms
// make this safe and effective:
//
//   - Linearity diagnosis (Sec. IV-A): a parameter is predictable when its
//     second-order oscillation ratio ℛ = |⟨g′⟩θ| / ⟨|g′|⟩θ (Eq. 2) — an
//     EMA-smoothed measure of whether the second-order parameter difference
//     oscillates around zero — falls below a threshold T_ℛ.
//
//   - Error feedback (Sec. IV-C): during speculative updating, clients
//     accumulate the gap between their true local updates and the predicted
//     ones; when a parameter's no-checking period expires, the errors are
//     globally aggregated and the signal 𝒮 = |Σe_r| / |g_k| (Eq. 3) decides
//     whether to extend the no-checking period (𝒮 < T_𝒮) or to revert the
//     parameter to regular synchronization.
//
// The Manager type plays the role of the paper's FedSU_Manager Python
// module: one instance lives on each client, maintains the predictability
// and no-checking masks (identical across clients because they are computed
// from post-synchronization global values), and drives Sync per Algorithm 1.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"fedsu/internal/par"
	"fedsu/internal/sparse"
)

// Variant selects the FedSU algorithm variant; the ablation study (Fig. 8)
// compares the full algorithm against v1 and v2.
type Variant int

const (
	// VariantFull is standard FedSU: linearity diagnosis + error feedback.
	VariantFull Variant = iota + 1
	// VariantV1 keeps linearity diagnosis but replaces error feedback with
	// a fixed-length speculative period.
	VariantV1
	// VariantV2 drops linearity diagnosis too: parameters enter a
	// fixed-length speculative period at random with a preset probability.
	VariantV2
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "fedsu"
	case VariantV1:
		return "fedsu-v1"
	case VariantV2:
		return "fedsu-v2"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Options configures a FedSU Manager.
type Options struct {
	// TR is the predictability threshold T_ℛ on the second-order
	// oscillation ratio (paper default 0.01).
	TR float64
	// TS is the error-feedback threshold T_𝒮 (paper default 1.0).
	TS float64
	// Theta is the EMA decay factor of Eq. 2 (default 0.9).
	Theta float64
	// MinHistory is the number of observed rounds required before a
	// parameter may be diagnosed (the ratio needs a few second-order
	// differences to be meaningful; default 3).
	MinHistory int
	// Variant selects full FedSU or an ablation variant.
	Variant Variant
	// FixedPeriod is the speculative-updating length for v1/v2.
	FixedPeriod int
	// LaunchProb is the per-round probability that an unpredictable
	// parameter enters speculative updating under v2.
	LaunchProb float64
	// Seed drives the v2 launch lottery; all clients must share it so
	// their masks agree.
	Seed int64
	// RawSlope uses the last-round update g_k as the speculative slope, as
	// Sec. IV-B literally states. The default (false) uses the EMA-smoothed
	// per-round update instead, which suppresses mini-batch noise in the
	// profiled slope — an ablation shows it lengthens speculative phases
	// substantially at emulation scale (see DESIGN.md §5).
	RawSlope bool
	// RawErrorNorm normalizes the feedback signal 𝒮 by |g_k| alone, as
	// Eq. 3 literally states. The default (false) floors the denominator at
	// the parameter's typical per-round movement ⟨|g|⟩θ so a near-zero
	// slope draw cannot make 𝒮 explode for a correctly stagnating
	// parameter.
	RawErrorNorm bool
	// Quantize rounds every synchronized output value through
	// sparse.QuantizeWire, keeping the manager's view of the global
	// trajectory inside the float32-representable set. Float32 engines set
	// it so that loading the sync result into a float32 model is exact:
	// predictions, aggregated means, and therefore prevGlobal/slope state
	// all live in the wire image, and speculative refinement accumulates no
	// storage-rounding error. Float64 engines leave it off (the historical
	// behaviour, bit-for-bit).
	Quantize bool
}

// DefaultOptions returns the paper's evaluation configuration
// (T_ℛ = 0.01, T_𝒮 = 1.0, θ = 0.9).
func DefaultOptions() Options {
	return Options{
		TR:          0.01,
		TS:          1.0,
		Theta:       0.9,
		MinHistory:  3,
		Variant:     VariantFull,
		FixedPeriod: 43,
		LaunchProb:  0.0053,
		Seed:        1,
	}
}

func (o *Options) validate() error {
	if o.TR <= 0 {
		return fmt.Errorf("core: TR = %v must be positive", o.TR)
	}
	if o.TS <= 0 {
		return fmt.Errorf("core: TS = %v must be positive", o.TS)
	}
	if o.Theta < 0 || o.Theta >= 1 {
		return fmt.Errorf("core: Theta = %v outside [0, 1)", o.Theta)
	}
	if o.Variant == 0 {
		o.Variant = VariantFull
	}
	if o.MinHistory < 1 {
		o.MinHistory = 1
	}
	if (o.Variant == VariantV1 || o.Variant == VariantV2) && o.FixedPeriod <= 0 {
		return fmt.Errorf("core: variant %v requires a positive FixedPeriod", o.Variant)
	}
	if o.Variant == VariantV2 && (o.LaunchProb <= 0 || o.LaunchProb > 1) {
		return fmt.Errorf("core: variant v2 requires LaunchProb in (0, 1]")
	}
	return nil
}

// paramMode is the per-parameter state machine position.
type paramMode uint8

const (
	// modeRegular: synchronized normally; oscillation ratio tracked.
	modeRegular paramMode = iota + 1
	// modeSpeculative: refined with the predicted gradient, within the
	// no-checking period.
	modeSpeculative
)

// Manager is the per-client FedSU state machine (the paper's
// FedSU_Manager). It implements sparse.Syncer.
type Manager struct {
	id   int
	size int
	agg  sparse.Aggregator
	opts Options
	wire sparse.Wire

	// Global-trajectory diagnosis state (identical across clients).
	prevGlobal []float64 // x_{k-1} after the previous sync
	lastG      []float64 // first-order difference g_{k-1}
	hasLastG   []bool
	emaG2      []float64 // ⟨g′⟩θ
	emaAbsG2   []float64 // ⟨|g′|⟩θ
	emaG       []float64 // ⟨g⟩θ — smoothed slope estimator
	emaAbsG    []float64 // ⟨|g|⟩θ — typical per-round movement scale
	emaSeen    []bool
	history    []int32 // observed rounds per parameter since last reset

	// Speculative-updating state.
	mode          []paramMode
	slope         []float64 // g_k profiled at speculation start
	noCheckPeriod []int32   // current no-checking period length
	noCheckLeft   []int32   // rounds until the next error check
	accumErr      []float64 // Σ e_r since the last check (local)
	specRounds    []int32   // rounds spent in the current speculative phase

	// wireErr carries the lossy chain's per-parameter residual (sent minus
	// wire image) into the next round's submission — error feedback in the
	// EF-SGD sense, so components below the quantization step accumulate
	// until they cross it instead of being rounded away forever. Allocated
	// lazily on the first delta-domain sync; nil on the default wire.
	wireErr []float64

	round   int
	started bool
	rng     *rand.Rand // v2 launch lottery (shared seed across clients)

	// Per-sync scratch, reused across rounds so a steady-state Sync
	// performs no allocation. scratchOut backs the vector returned to the
	// caller — see the ownership note on Sync. scratchSend/scratchErrSend
	// back the collective submissions; the aggregator only reads them for
	// the duration of the call (the fl.Server contract), so reusing them
	// the following round is safe.
	scratchRegular  []int
	scratchChecking []int
	scratchSend     []float64
	scratchErrSend  []float64
	scratchOut      []float64
	scratchDraw     []float64 // pre-drawn v2 lottery values for diagnose

	// Cumulative speculative-round counters for the Fig. 7 linearity CDF.
	specTotal []int64
	seenTotal int64
}

var _ sparse.ContextSyncer = (*Manager)(nil)

// NewManager builds a FedSU manager for a model with size scalar
// parameters.
func NewManager(clientID, size int, agg sparse.Aggregator, opts Options) (*Manager, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("core: model size = %d", size)
	}
	m := &Manager{
		id: clientID, size: size, agg: agg, opts: opts,
		prevGlobal:    make([]float64, size),
		lastG:         make([]float64, size),
		hasLastG:      make([]bool, size),
		emaG2:         make([]float64, size),
		emaAbsG2:      make([]float64, size),
		emaG:          make([]float64, size),
		emaAbsG:       make([]float64, size),
		emaSeen:       make([]bool, size),
		history:       make([]int32, size),
		mode:          make([]paramMode, size),
		slope:         make([]float64, size),
		noCheckPeriod: make([]int32, size),
		noCheckLeft:   make([]int32, size),
		accumErr:      make([]float64, size),
		specRounds:    make([]int32, size),
		specTotal:     make([]int64, size),
		rng:           rand.New(rand.NewSource(opts.Seed)),

		scratchRegular:  make([]int, 0, size),
		scratchChecking: make([]int, 0, size),
		scratchSend:     make([]float64, size),
		scratchErrSend:  make([]float64, size),
		scratchOut:      make([]float64, size),
		scratchDraw:     make([]float64, size),
	}
	for i := range m.mode {
		m.mode[i] = modeRegular
	}
	return m, nil
}

// Factory returns a sparse.Factory building managers with the given
// options; all clients share the options (and therefore the v2 lottery
// seed).
func Factory(opts Options) sparse.Factory {
	return func(clientID, size int, agg sparse.Aggregator) sparse.Syncer {
		m, err := NewManager(clientID, size, agg, opts)
		if err != nil {
			// A Factory cannot return an error; options are validated by
			// the engine before fan-out, so this is a programming error.
			panic(err)
		}
		return m
	}
}

// Name implements sparse.Syncer.
func (m *Manager) Name() string { return m.opts.Variant.String() }

// SetWire implements sparse.WireSetter: traffic is charged at the
// negotiated chain's measured message sizes instead of the default
// codec's. The speculative state machine itself is untouched — FedSU's
// masked sends compose with any chain.
func (m *Manager) SetWire(w sparse.Wire) { m.wire = w }

// PredictableMask returns a copy of the current predictability mask.
func (m *Manager) PredictableMask() []bool {
	mask := make([]bool, m.size)
	for i, md := range m.mode {
		mask[i] = md == modeSpeculative
	}
	return mask
}

// PredictableCount returns how many parameters are currently speculative.
func (m *Manager) PredictableCount() int {
	n := 0
	for _, md := range m.mode {
		if md == modeSpeculative {
			n++
		}
	}
	return n
}

// OscillationRatio returns the current ℛ value for parameter i, or 1 when
// the parameter lacks history. A zero denominator means every observed
// second-order difference was exactly zero — a perfectly linear trajectory —
// so the ratio is 0 (|⟨g′⟩θ| ≤ ⟨|g′|⟩θ guarantees the numerator is zero too).
func (m *Manager) OscillationRatio(i int) float64 {
	if !m.emaSeen[i] {
		return 1
	}
	if m.emaAbsG2[i] == 0 {
		return 0
	}
	return math.Abs(m.emaG2[i]) / m.emaAbsG2[i]
}

// LinearFractions returns, per parameter, the fraction of observed rounds
// spent in speculative (diagnosed-as-linear) mode — the quantity whose CDF
// the paper plots in Fig. 7.
func (m *Manager) LinearFractions() []float64 {
	out := make([]float64, m.size)
	if m.seenTotal == 0 {
		return out
	}
	for i := range out {
		out[i] = float64(m.specTotal[i]) / float64(m.seenTotal)
	}
	return out
}

// Sync implements sparse.Syncer, following Algorithm 1 and the Fig. 3
// workflow. local is the client's post-training parameter vector x.
//
// The returned vector is owned by the Manager: it stays valid until the
// next Sync/SyncCtx call on the same Manager, which reuses its storage.
// Callers that keep per-round outputs across rounds must copy.
func (m *Manager) Sync(round int, local []float64, contributor bool) ([]float64, sparse.Traffic, error) {
	return m.SyncCtx(context.Background(), round, local, contributor)
}

// SyncCtx implements sparse.ContextSyncer: the collectives honour ctx
// cancellation when the aggregator supports it. The returned vector is
// manager-owned scratch — see Sync.
func (m *Manager) SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, sparse.Traffic, error) {
	if len(local) != m.size {
		return nil, sparse.Traffic{}, fmt.Errorf("fedsu: vector length %d, want %d", len(local), m.size)
	}
	m.round = round

	if !m.started {
		// Bootstrap round: full synchronization to establish the first
		// global snapshot every later diagnosis derives from.
		return m.bootstrap(ctx, round, local, contributor)
	}

	// Partition parameters: regular (synchronized), speculative
	// (predicted), and speculative-with-expiring-check (error aggregated).
	// The index slices never outgrow their construction-time capacity
	// (both are bounded by m.size), so the appends below cannot
	// reallocate.
	regular := m.scratchRegular[:0]
	checking := m.scratchChecking[:0]
	for i := 0; i < m.size; i++ {
		switch m.mode[i] {
		case modeRegular:
			regular = append(regular, i)
		case modeSpeculative:
			if m.noCheckLeft[i] <= 1 {
				checking = append(checking, i)
			}
		}
	}

	// Collective 1: aggregate the regular parameters' values. Under a
	// lossy chain the collective runs in the delta domain: clients ship
	// local − prevGlobal and add the reference back after aggregation.
	// prevGlobal is identical on every client (it is the post-sync
	// global), so the averaged delta plus the reference equals the
	// averaged values — but the chain's quantization grids then span the
	// per-round update range instead of the absolute weight range, which
	// is what keeps a 4-bit cell trainable. The default wire stays in the
	// value domain, bit-identical to every pre-chain run.
	delta := m.wire.Enabled()
	if delta && m.wireErr == nil {
		m.wireErr = make([]float64, m.size)
	}
	var send []float64
	if contributor {
		send = m.scratchSend[:len(regular)]
		for j, i := range regular {
			if delta {
				send[j] = local[i] - m.prevGlobal[i] + m.wireErr[i]
			} else {
				send[j] = local[i]
			}
		}
	}
	if delta && send != nil {
		// Error feedback: probe the chain's wire image of this submission
		// and carry the loss into the next round. The probe is the same
		// deterministic encode→decode the transport performs, so both ends
		// of a TCP session and the in-process wrapper agree on it exactly.
		img := m.wire.Image(send)
		for j, i := range regular {
			m.wireErr[i] = send[j] - img[j]
		}
	}
	aggModel, err := sparse.AggModel(ctx, m.agg, m.id, round, send)
	if err != nil {
		return nil, sparse.Traffic{}, fmt.Errorf("fedsu: aggregate model round %d: %w", round, err)
	}
	if aggModel != nil && len(aggModel) != len(regular) {
		return nil, sparse.Traffic{}, fmt.Errorf("fedsu: model aggregate returned %d values for %d regular params", len(aggModel), len(regular))
	}

	out := m.scratchOut

	// Regular parameters take the aggregated global value (reference plus
	// aggregated delta under a lossy chain).
	for j, i := range regular {
		switch {
		case aggModel == nil:
			out[i] = m.q(local[i])
		case delta:
			out[i] = m.q(m.prevGlobal[i] + aggModel[j])
		default:
			out[i] = m.q(aggModel[j])
		}
	}

	// Speculative parameters are refined by the predicted per-round update
	// (masked replacement), and their local prediction error accumulates.
	// Under Quantize the prediction itself is snapped to the wire image, so
	// the value the client stores (and trains from next round) is exactly
	// the value the manager accounted for.
	for i := 0; i < m.size; i++ {
		if m.mode[i] != modeSpeculative {
			continue
		}
		predicted := m.q(m.prevGlobal[i] + m.slope[i])
		out[i] = predicted
		// e_r = g̃_r − g_k, with the local update standing in for the true
		// gradient until aggregation.
		m.accumErr[i] += local[i] - predicted
		m.specRounds[i]++
		m.specTotal[i]++
	}

	// Collective 2: error feedback for parameters whose no-checking period
	// expires this round (full FedSU only). errUpBytes/errDownBytes record
	// its wire cost; they stay zero in rounds where the collective never
	// runs (no message, not even a header).
	var errUpBytes, errDownBytes int
	if m.opts.Variant == VariantFull && len(checking) > 0 {
		var errSend []float64
		if contributor {
			errSend = m.scratchErrSend[:len(checking)]
			for j, i := range checking {
				errSend[j] = m.accumErr[i]
			}
		}
		aggErr, err := sparse.AggError(ctx, m.agg, m.id, round, errSend)
		if err != nil {
			return nil, sparse.Traffic{}, fmt.Errorf("fedsu: aggregate error round %d: %w", round, err)
		}
		if aggErr != nil && len(aggErr) != len(checking) {
			return nil, sparse.Traffic{}, fmt.Errorf("fedsu: error aggregate returned %d values for %d checking params", len(aggErr), len(checking))
		}
		errUpBytes = m.wire.Bytes(errSend)
		errDownBytes = m.wire.ReplyBytes(aggErr)
		for j, i := range checking {
			var e float64
			if aggErr != nil {
				e = aggErr[j]
			} else {
				e = m.accumErr[i]
			}
			s := m.feedbackSignal(i, e, m.slope[i])
			if s < m.opts.TS {
				// Linear pattern persists: extend the no-checking period by
				// one round and keep speculating.
				m.noCheckPeriod[i]++
				m.noCheckLeft[i] = m.noCheckPeriod[i]
				m.accumErr[i] = 0
			} else {
				// Prediction diverged: rectify with the aggregated error
				// and return the parameter to regular updating.
				out[i] = m.q(out[i] + e)
				m.revertToRegular(i)
			}
		}
	}

	// Tick down no-checking periods. Parameters that checked this round
	// were just reset (or reverted) and are skipped; v1/v2 use the tick as
	// their fixed-period exit back to regular updating.
	for i := 0; i < m.size; i++ {
		if m.mode[i] != modeSpeculative {
			continue
		}
		if m.opts.Variant == VariantFull {
			if !containsSorted(checking, i) {
				m.noCheckLeft[i]--
			}
		} else {
			m.noCheckLeft[i]--
			if m.noCheckLeft[i] <= 0 {
				m.revertToRegular(i)
			}
		}
	}

	// Diagnosis: update the oscillation statistics of regular parameters
	// from the new global values and promote those below T_ℛ.
	m.diagnose(out, regular)

	copy(m.prevGlobal, out)
	m.seenTotal++

	nReg, nChk := len(regular), 0
	if m.opts.Variant == VariantFull {
		nChk = len(checking)
	}
	// Actual encoded bytes of the collective payloads: an abstaining
	// non-contributor uploads framing only, and a collective with no
	// contributors answers with a header-only downlink.
	tr := sparse.Traffic{
		UpBytes:       m.wire.Bytes(send) + errUpBytes,
		DownBytes:     m.wire.ReplyBytes(aggModel) + errDownBytes,
		SyncedParams:  nReg,
		CheckedParams: nChk,
		TotalParams:   m.size,
		FullBytes:     m.wire.FullRef(m.size),
	}
	return out, tr, nil
}

// bootstrap performs the first full synchronization.
func (m *Manager) bootstrap(ctx context.Context, round int, local []float64, contributor bool) ([]float64, sparse.Traffic, error) {
	var send []float64
	if contributor {
		send = m.scratchSend[:m.size]
		copy(send, local)
	}
	agg, err := sparse.AggModel(ctx, m.agg, m.id, round, send)
	if err != nil {
		return nil, sparse.Traffic{}, fmt.Errorf("fedsu: bootstrap aggregate: %w", err)
	}
	out := m.scratchOut
	if agg != nil {
		copy(out, agg)
	} else {
		copy(out, local)
	}
	if m.opts.Quantize {
		for i, v := range out {
			out[i] = sparse.QuantizeWire(v)
		}
	}
	copy(m.prevGlobal, out)
	m.started = true
	m.seenTotal++
	return out, sparse.Traffic{
		UpBytes:      m.wire.Bytes(send),
		DownBytes:    m.wire.ReplyBytes(agg),
		SyncedParams: m.size,
		TotalParams:  m.size,
		FullBytes:    m.wire.FullRef(m.size),
	}, nil
}

// diagnoseGrain is the minimum number of regular parameters per parallel
// chunk in diagnose. Every EMA/promotion update touches only its own
// parameter's slots, so the chunk decomposition cannot change the
// arithmetic; the grain exists purely so models below a few thousand
// parameters run inline (keeping small-model Sync allocation-free) while
// paper-scale vectors fan the O(d) scan across the worker pool.
const diagnoseGrain = 2048

// diagnose refreshes the second-order oscillation statistics of the given
// regular parameters against the new global vector and promotes parameters
// whose ratio drops below T_ℛ (or, under v2, by lottery). The per-parameter
// scan runs on the par pool; output is bit-identical to serial execution at
// every worker count because each iteration reads and writes only slots of
// its own parameter (see TestDiagnoseParallelDeterminism).
func (m *Manager) diagnose(global []float64, regular []int) {
	// The v2 launch lottery consumes the shared rng; pre-draw serially — one
	// Float64 per regular parameter, in index order, exactly the sequence
	// the serial loop consumed — so the parallel scan stays deterministic.
	var draws []float64
	if m.opts.Variant == VariantV2 {
		draws = m.scratchDraw[:len(regular)]
		for j := range draws {
			draws[j] = m.rng.Float64()
		}
	}
	// Dispatch directly when the scan cannot fan out: ParallelizeGrain would
	// run the same single chunk inline, but building its closure costs one
	// heap allocation per round, and small-model Sync pins zero. A fanned
	// scan (paper-scale vectors on a multi-worker pool) accepts the
	// transient closure + waitgroup allocations, like the tensor kernels.
	if len(regular) <= diagnoseGrain || par.Workers() == 1 {
		m.diagnoseRange(global, regular, draws, 0, len(regular))
		return
	}
	par.ParallelizeGrain(len(regular), diagnoseGrain, func(lo, hi int) {
		m.diagnoseRange(global, regular, draws, lo, hi)
	})
}

// diagnoseRange processes regular[lo:hi]; it is the body diagnose fans out.
func (m *Manager) diagnoseRange(global []float64, regular []int, draws []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		i := regular[j]
		g := global[i] - m.prevGlobal[i]
		if m.hasLastG[i] {
			g2 := g - m.lastG[i]
			// Second differences at the float64 roundoff floor of the
			// gradient scale are measurement noise, not oscillation;
			// without the clamp a perfectly linear trajectory would show a
			// ratio made of pure rounding error.
			if math.Abs(g2) < 1e-9*math.Abs(g) {
				g2 = 0
			}
			if !m.emaSeen[i] {
				m.emaG2[i], m.emaAbsG2[i] = g2, math.Abs(g2)
				m.emaSeen[i] = true
			} else {
				th := m.opts.Theta
				m.emaG2[i] = th*m.emaG2[i] + (1-th)*g2
				m.emaAbsG2[i] = th*m.emaAbsG2[i] + (1-th)*math.Abs(g2)
			}
		}
		if !m.hasLastG[i] {
			m.emaG[i], m.emaAbsG[i] = g, math.Abs(g)
		} else {
			th := m.opts.Theta
			m.emaG[i] = th*m.emaG[i] + (1-th)*g
			m.emaAbsG[i] = th*m.emaAbsG[i] + (1-th)*math.Abs(g)
		}
		m.lastG[i] = g
		m.hasLastG[i] = true
		m.history[i]++

		promote := false
		switch m.opts.Variant {
		case VariantV2:
			promote = draws[j] < m.opts.LaunchProb
		default:
			promote = int(m.history[i]) >= m.opts.MinHistory &&
				m.emaSeen[i] &&
				m.OscillationRatio(i) < m.opts.TR &&
				g != 0
		}
		if promote {
			m.mode[i] = modeSpeculative
			if m.opts.RawSlope {
				m.slope[i] = g
			} else {
				m.slope[i] = m.emaG[i]
			}
			m.accumErr[i] = 0
			m.specRounds[i] = 0
			if m.opts.Variant == VariantFull {
				m.noCheckPeriod[i] = 1
				m.noCheckLeft[i] = 1
			} else {
				m.noCheckPeriod[i] = int32(m.opts.FixedPeriod)
				m.noCheckLeft[i] = int32(m.opts.FixedPeriod)
			}
		}
	}
}

// revertToRegular returns parameter i to regular synchronized updating,
// matching the paper's "reset the no-checking period to 0 and mask the
// parameter as unpredictable". The oscillation EMAs are kept: the
// post-reversion trajectory jump raises the ratio naturally, and a
// parameter that is again linear re-promotes without rebuilding history
// from scratch.
func (m *Manager) revertToRegular(i int) {
	m.mode[i] = modeRegular
	m.noCheckPeriod[i] = 0
	m.noCheckLeft[i] = 0
	m.accumErr[i] = 0
	m.specRounds[i] = 0
}

// q maps v to its wire image when Quantize is set (identity otherwise).
// Every value written to the sync output goes through it, so a float32
// model loads the output exactly.
func (m *Manager) q(v float64) float64 {
	if m.opts.Quantize {
		return sparse.QuantizeWire(v)
	}
	return v
}

// feedbackSignal computes 𝒮 = |Σe_r| / |g_k| (Eq. 3). Unless RawErrorNorm
// is set, the denominator is floored at the parameter's typical per-round
// movement ⟨|g|⟩θ so a stagnating parameter (slope ≈ a single noise draw)
// is judged against its movement scale rather than a near-zero divisor.
func (m *Manager) feedbackSignal(i int, accumErr, slope float64) float64 {
	denom := math.Abs(slope)
	if !m.opts.RawErrorNorm && m.emaAbsG[i] > denom {
		denom = m.emaAbsG[i]
	}
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(accumErr) / denom
}

func containsSorted(sorted []int, v int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sorted[mid] == v:
			return true
		case sorted[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}
