package core

import "fmt"

// State is a portable snapshot of a Manager's per-parameter bookkeeping.
// Per the paper's dynamicity handling (Sec. V), a client joining mid-run
// downloads — besides the latest model — the predictability mask and
// no-checking information; State carries exactly that (plus the diagnosis
// EMAs so the joiner's future decisions match the fleet's). It is
// gob-encodable for the TCP wire protocol.
type State struct {
	Size       int
	Round      int
	Started    bool
	PrevGlobal []float64
	LastG      []float64
	HasLastG   []bool
	EmaG2      []float64
	EmaAbsG2   []float64
	EmaG       []float64
	EmaAbsG    []float64
	EmaSeen    []bool
	History    []int32

	Mode          []uint8
	Slope         []float64
	NoCheckPeriod []int32
	NoCheckLeft   []int32
	AccumErr      []float64
	SpecRounds    []int32
}

// Snapshot captures the manager's current state.
func (m *Manager) Snapshot() *State {
	s := &State{
		Size:          m.size,
		Round:         m.round,
		Started:       m.started,
		PrevGlobal:    append([]float64(nil), m.prevGlobal...),
		LastG:         append([]float64(nil), m.lastG...),
		HasLastG:      append([]bool(nil), m.hasLastG...),
		EmaG2:         append([]float64(nil), m.emaG2...),
		EmaAbsG2:      append([]float64(nil), m.emaAbsG2...),
		EmaG:          append([]float64(nil), m.emaG...),
		EmaAbsG:       append([]float64(nil), m.emaAbsG...),
		EmaSeen:       append([]bool(nil), m.emaSeen...),
		History:       append([]int32(nil), m.history...),
		Slope:         append([]float64(nil), m.slope...),
		NoCheckPeriod: append([]int32(nil), m.noCheckPeriod...),
		NoCheckLeft:   append([]int32(nil), m.noCheckLeft...),
		AccumErr:      append([]float64(nil), m.accumErr...),
		SpecRounds:    append([]int32(nil), m.specRounds...),
	}
	s.Mode = make([]uint8, m.size)
	for i, md := range m.mode {
		s.Mode[i] = uint8(md)
	}
	return s
}

// Restore overwrites the manager's state from a snapshot taken on another
// (same-sized) manager. The joiner's local error restarts at zero — errors
// are client-local observations, not shared state — so AccumErr from the
// donor is intentionally not blindly trusted: it is copied, which matches a
// donor mid-window, and the next error check re-aggregates across clients
// anyway.
func (m *Manager) Restore(s *State) error {
	if s.Size != m.size {
		return fmt.Errorf("core: restore size %d into manager of size %d", s.Size, m.size)
	}
	m.round = s.Round
	m.started = s.Started
	copy(m.prevGlobal, s.PrevGlobal)
	copy(m.lastG, s.LastG)
	copy(m.hasLastG, s.HasLastG)
	copy(m.emaG2, s.EmaG2)
	copy(m.emaAbsG2, s.EmaAbsG2)
	copy(m.emaG, s.EmaG)
	copy(m.emaAbsG, s.EmaAbsG)
	copy(m.emaSeen, s.EmaSeen)
	copy(m.history, s.History)
	for i, md := range s.Mode {
		m.mode[i] = paramMode(md)
	}
	copy(m.slope, s.Slope)
	copy(m.noCheckPeriod, s.NoCheckPeriod)
	copy(m.noCheckLeft, s.NoCheckLeft)
	copy(m.accumErr, s.AccumErr)
	copy(m.specRounds, s.SpecRounds)
	return nil
}
