package nn

import "fedsu/internal/tensor"

// ReLU is the rectified-linear activation, applied element-wise at the
// storage width E.
type ReLU[E tensor.Elem] struct {
	mask []bool
}

var (
	_ Layer = (*ReLU[float64])(nil)
	_ Layer = (*ReLU[float32])(nil)
)

// NewReLU constructs a float64 ReLU activation layer.
func NewReLU() *ReLU[float64] { return newReLUOf[float64]() }

func newReLUOf[E tensor.Elem]() *ReLU[E] { return &ReLU[E]{} }

// Forward implements Layer.
func (r *ReLU[E]) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	y := x.Clone()
	if cap(r.mask) < y.Len() {
		r.mask = make([]bool, y.Len())
	}
	r.mask = r.mask[:y.Len()]
	d := tensor.DataOf[E](y)
	for i, v := range d {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			d[i] = 0
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad.Clone()
	d := tensor.DataOf[E](g)
	for i := range d {
		if !r.mask[i] {
			d[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (r *ReLU[E]) Params() []*Param { return nil }

// Flatten reshapes (N, C, H, W) activations to (N, C*H*W) row vectors on the
// way into fully-connected layers. It moves no data, so it needs no type
// parameter: Reshape preserves the dtype of its input.
type Flatten struct {
	lastShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	f.lastShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }
