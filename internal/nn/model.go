package nn

import (
	"fmt"

	"fedsu/internal/tensor"
)

// lossHead is the classification loss attached to a Model. It is an
// interface (rather than a concrete type) so the model can carry the loss
// instantiation matching its parameter width.
type lossHead interface {
	// Forward computes the mean loss of logits against labels and caches
	// what Backward needs.
	Forward(logits *tensor.Tensor, labels []int) float64
	// Backward returns dLoss/dLogits for the cached batch.
	Backward() *tensor.Tensor
}

// Model couples a network with a classification loss and exposes the flat
// parameter-vector view the federated synchronization layer works over.
//
// The synchronization vector is always float64 whatever the parameter
// storage width: ExtractVector widens float32 parameters exactly, and
// LoadVector rounds incoming values with the same round-to-nearest
// conversion the wire codec applies, so the float64 sync domain and the
// storage domain stay bit-consistent.
type Model struct {
	// Name identifies the architecture, e.g. "cnn" or "resnet18".
	Name string

	net    Layer
	loss   lossHead
	params []*Param

	size       int // total scalar count across all params
	optSize    int // scalar count across optimizer-visible params
	numClasses int
	dtype      tensor.DType
}

// NewModel wraps a network and records its parameter layout. The parameter
// order is the construction order of the layers and is therefore identical
// across model replicas built with the same constructor, which is what
// allows clients to exchange flat vectors. The loss head is instantiated at
// the parameter storage width.
func NewModel(name string, net Layer, numClasses int) *Model {
	m := &Model{
		Name:       name,
		net:        net,
		params:     net.Params(),
		numClasses: numClasses,
	}
	if len(m.params) > 0 {
		m.dtype = m.params[0].Value.DType()
	}
	if m.dtype == tensor.Float32 {
		m.loss = newSoftmaxCrossEntropyOf[float32]()
	} else {
		m.loss = newSoftmaxCrossEntropyOf[float64]()
	}
	for _, p := range m.params {
		if p.Value.DType() != m.dtype {
			panic(fmt.Sprintf("nn: model %s mixes parameter dtypes (%s vs %s)", name, m.dtype, p.Value.DType()))
		}
		m.size += p.Value.Len()
		if !p.NoOpt {
			m.optSize += p.Value.Len()
		}
	}
	return m
}

// NumClasses returns the classifier output width.
func (m *Model) NumClasses() int { return m.numClasses }

// Size returns the total number of scalar parameters, including batch-norm
// running statistics.
func (m *Model) Size() int { return m.size }

// OptSize returns the number of optimizer-updated scalar parameters.
func (m *Model) OptSize() int { return m.optSize }

// DType returns the storage width of the model's parameters.
func (m *Model) DType() tensor.DType { return m.dtype }

// Params returns the model parameters in synchronization order.
func (m *Model) Params() []*Param { return m.params }

// Forward runs the network and returns logits.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.net.Forward(x, train)
}

// ZeroGrad clears every parameter gradient.
func (m *Model) ZeroGrad() {
	for _, p := range m.params {
		p.ZeroGrad()
	}
}

// TrainStep runs one forward/backward pass on a batch, accumulating
// gradients, and returns the batch loss. The caller applies the optimizer.
func (m *Model) TrainStep(x *tensor.Tensor, labels []int) float64 {
	logits := m.net.Forward(x, true)
	loss := m.loss.Forward(logits, labels)
	m.net.Backward(m.loss.Backward())
	return loss
}

// Loss computes the loss of a batch without accumulating gradients' side
// effects beyond the forward caches.
func (m *Model) Loss(x *tensor.Tensor, labels []int) float64 {
	logits := m.net.Forward(x, false)
	return m.loss.Forward(logits, labels)
}

// Evaluate returns the accuracy and mean loss of the model over the given
// batch in inference mode.
func (m *Model) Evaluate(x *tensor.Tensor, labels []int) (acc, loss float64) {
	logits := m.net.Forward(x, false)
	return Accuracy(logits, labels), m.loss.Forward(logits, labels)
}

// ExtractVector copies every parameter value into dst in synchronization
// order, widening float32 parameters exactly. dst must have length Size.
func (m *Model) ExtractVector(dst []float64) {
	if len(dst) != m.size {
		panic(fmt.Sprintf("nn: ExtractVector length %d, model size %d", len(dst), m.size))
	}
	off := 0
	for _, p := range m.params {
		n := p.Value.Len()
		p.Value.CopyToF64(dst[off : off+n])
		off += n
	}
}

// LoadVector copies src into the parameter values in synchronization order,
// rounding to the storage dtype (the wire codec's float32 conversion in
// float32 mode). src must have length Size.
func (m *Model) LoadVector(src []float64) {
	if len(src) != m.size {
		panic(fmt.Sprintf("nn: LoadVector length %d, model size %d", len(src), m.size))
	}
	off := 0
	for _, p := range m.params {
		n := p.Value.Len()
		p.Value.CopyFromF64(src[off : off+n])
		off += n
	}
}

// Vector allocates and returns the current flat parameter vector.
func (m *Model) Vector() []float64 {
	v := make([]float64, m.size)
	m.ExtractVector(v)
	return v
}
