package nn

import (
	"math/rand"

	"fedsu/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW tensors, lowered to matrix
// multiplication via im2col, parameterized over the storage width E.
type Conv2D[E tensor.Elem] struct {
	weight *Param // (outC, inC*KH*KW)
	bias   *Param // (outC)

	inC, outC int
	p         tensor.ConvParams
	useBias   bool

	lastCols       *tensor.Tensor
	lastN, lastH   int
	lastW          int
	lastOH, lastOW int
}

var (
	_ Layer = (*Conv2D[float64])(nil)
	_ Layer = (*Conv2D[float32])(nil)
)

// convConfig collects the option-settable construction knobs. Options mutate
// this dtype-independent struct rather than the generic layer, so one ConvOpt
// value works for every instantiation width.
type convConfig struct {
	p       tensor.ConvParams
	useBias bool
}

// ConvOpt customizes a Conv2D at construction time.
type ConvOpt func(*convConfig)

// WithStride sets both spatial strides.
func WithStride(s int) ConvOpt {
	return func(c *convConfig) { c.p.StrideH, c.p.StrideW = s, s }
}

// WithPadding sets both spatial paddings.
func WithPadding(p int) ConvOpt {
	return func(c *convConfig) { c.p.PadH, c.p.PadW = p, p }
}

// WithoutBias disables the additive bias, the norm for conv layers followed
// by batch normalization.
func WithoutBias() ConvOpt {
	return func(c *convConfig) { c.useBias = false }
}

// NewConv2D constructs a float64 convolution with a square kernel and
// He-normal weight initialization. Stride defaults to 1 and padding to 0.
func NewConv2D(rng *rand.Rand, inC, outC, kernel int, opts ...ConvOpt) *Conv2D[float64] {
	return newConv2DOf[float64](rng, inC, outC, kernel, opts...)
}

func newConv2DOf[E tensor.Elem](rng *rand.Rand, inC, outC, kernel int, opts ...ConvOpt) *Conv2D[E] {
	cfg := convConfig{
		useBias: true,
		p: tensor.ConvParams{
			KernelH: kernel, KernelW: kernel,
			StrideH: 1, StrideW: 1,
		},
	}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Conv2D[E]{
		inC:     inC,
		outC:    outC,
		useBias: cfg.useBias,
		p:       cfg.p,
	}
	k := inC * kernel * kernel
	c.weight = newParamOf[E]("weight", outC, k)
	c.weight.Value.KaimingNormal(rng, k)
	if c.useBias {
		c.bias = newParamOf[E]("bias", outC)
	}
	return c
}

// Forward implements Layer. The im2col matrix and the pre-reorder product
// are drawn from the scratch arena: the former is retained (Backward
// consumes then releases it), the latter is returned before Forward exits,
// so steady-state training allocates only the NCHW output.
func (c *Conv2D[E]) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	dt := tensor.DTypeOf[E]()
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.p.OutSize(h, w)
	spatial := n * oh * ow
	// An eval-only Forward chain never runs Backward; recycle the previous
	// call's im2col matrix instead of leaking it from the arena.
	if c.lastCols != nil {
		tensor.PutScratch(c.lastCols)
	}
	cols := tensor.GetScratchOf(dt, c.inC*c.p.KernelH*c.p.KernelW, spatial)
	tensor.Im2ColInto(cols, x, c.p)
	c.lastCols = cols
	c.lastN, c.lastH, c.lastW, c.lastOH, c.lastOW = n, h, w, oh, ow

	y := tensor.GetScratchOf(dt, c.outC, spatial) // (outC, N*OH*OW)
	tensor.MatMulInto(y, c.weight.Value, cols)
	if c.useBias {
		bd := tensor.DataOf[E](c.bias.Value)
		yd := tensor.DataOf[E](y)
		for oc := 0; oc < c.outC; oc++ {
			row := yd[oc*spatial : (oc+1)*spatial]
			b := bd[oc]
			for i := range row {
				row[i] += b
			}
		}
	}
	// Reorder (outC, N, OH, OW) → (N, outC, OH, OW).
	out := tensor.NewOf(dt, n, c.outC, oh, ow)
	od, yd := tensor.DataOf[E](out), tensor.DataOf[E](y)
	plane := oh * ow
	for oc := 0; oc < c.outC; oc++ {
		for ni := 0; ni < n; ni++ {
			src := yd[(oc*n+ni)*plane : (oc*n+ni+1)*plane]
			dst := od[(ni*c.outC+oc)*plane : (ni*c.outC+oc+1)*plane]
			copy(dst, src)
		}
	}
	tensor.PutScratch(y)
	return out
}

// Backward implements Layer. All intermediates (the reordered gradient, the
// column gradient, and the retained im2col matrix) live in the scratch
// arena; only the returned input gradient is allocated.
func (c *Conv2D[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dt := tensor.DTypeOf[E]()
	n, oh, ow := c.lastN, c.lastOH, c.lastOW
	plane := oh * ow
	spatial := n * plane
	// Reorder grad (N, outC, OH, OW) → (outC, N*OH*OW).
	g := tensor.GetScratchOf(dt, c.outC, spatial)
	gd, srcd := tensor.DataOf[E](g), tensor.DataOf[E](grad)
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < c.outC; oc++ {
			src := srcd[(ni*c.outC+oc)*plane : (ni*c.outC+oc+1)*plane]
			dst := gd[(oc*n+ni)*plane : (oc*n+ni+1)*plane]
			copy(dst, src)
		}
	}
	// dW += g × colsᵀ; cols is (K, spatial) so use the TransB accumulator.
	tensor.MatMulTransBAcc(c.weight.Grad, g, c.lastCols)
	if c.useBias {
		// The bias gradient sums N*OH*OW terms per channel: widen to a
		// float64 accumulator and round once into the stored gradient.
		bd := tensor.DataOf[E](c.bias.Grad)
		for oc := 0; oc < c.outC; oc++ {
			row := gd[oc*spatial : (oc+1)*spatial]
			s := 0.0
			for _, v := range row {
				s += toF64(v)
			}
			bd[oc] += roundE[E](s)
		}
	}
	// dCols = Wᵀ × g, W stored (outC, K): MatMulTransA.
	dCols := tensor.GetScratchOf(dt, c.inC*c.p.KernelH*c.p.KernelW, spatial)
	tensor.MatMulTransAInto(dCols, c.weight.Value, g)
	tensor.PutScratch(g)
	// The cached im2col matrix is the layer's dominant memory holding
	// (K × N·OH·OW floats); release it as soon as backward has consumed it
	// so deep models do not retain every layer's unrolled activations
	// simultaneously between iterations.
	tensor.PutScratch(c.lastCols)
	c.lastCols = nil
	dx := tensor.Col2Im(dCols, n, c.inC, c.lastH, c.lastW, c.p)
	tensor.PutScratch(dCols)
	return dx
}

// Params implements Layer.
func (c *Conv2D[E]) Params() []*Param {
	if c.useBias {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}
