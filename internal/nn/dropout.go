package nn

import (
	"math/rand"

	"fedsu/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability p,
// scaling the survivors by 1/(1−p) (inverted dropout) so inference needs no
// adjustment.
//
// The mask draws consume rng.Float64() regardless of the storage width, so a
// float32 and a float64 replica sharing a seed drop the same elements; the
// survivor scaling computes in float64 and rounds once per element.
type Dropout[E tensor.Elem] struct {
	p    float64
	rng  *rand.Rand
	keep []bool
}

var (
	_ Layer = (*Dropout[float64])(nil)
	_ Layer = (*Dropout[float32])(nil)
)

// NewDropout constructs a float64 dropout layer with drop probability
// p ∈ [0, 1).
func NewDropout(rng *rand.Rand, p float64) *Dropout[float64] {
	return newDropoutOf[float64](rng, p)
}

func newDropoutOf[E tensor.Elem](rng *rand.Rand, p float64) *Dropout[E] {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout[E]{p: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout[E]) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.p == 0 {
		return x
	}
	y := x.Clone()
	if cap(d.keep) < y.Len() {
		d.keep = make([]bool, y.Len())
	}
	d.keep = d.keep[:y.Len()]
	scale := 1.0 / (1.0 - d.p)
	data := tensor.DataOf[E](y)
	for i := range data {
		if d.rng.Float64() < d.p {
			d.keep[i] = false
			data[i] = 0
		} else {
			d.keep[i] = true
			data[i] = roundE[E](toF64(data[i]) * scale)
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.p == 0 {
		return grad
	}
	g := grad.Clone()
	scale := 1.0 / (1.0 - d.p)
	data := tensor.DataOf[E](g)
	for i := range data {
		if d.keep[i] {
			data[i] = roundE[E](toF64(data[i]) * scale)
		} else {
			data[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (d *Dropout[E]) Params() []*Param { return nil }
