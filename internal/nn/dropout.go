package nn

import (
	"math/rand"

	"fedsu/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability p,
// scaling the survivors by 1/(1−p) (inverted dropout) so inference needs no
// adjustment.
type Dropout struct {
	p    float64
	rng  *rand.Rand
	keep []bool
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with drop probability p ∈ [0, 1).
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{p: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.p == 0 {
		return x
	}
	y := x.Clone()
	if cap(d.keep) < y.Len() {
		d.keep = make([]bool, y.Len())
	}
	d.keep = d.keep[:y.Len()]
	scale := 1.0 / (1.0 - d.p)
	data := y.Data()
	for i := range data {
		if d.rng.Float64() < d.p {
			d.keep[i] = false
			data[i] = 0
		} else {
			d.keep[i] = true
			data[i] *= scale
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.p == 0 {
		return grad
	}
	g := grad.Clone()
	scale := 1.0 / (1.0 - d.p)
	data := g.Data()
	for i := range data {
		if d.keep[i] {
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }
