package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedsu/internal/tensor"
)

func TestLinearForwardHandComputed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, 2, 2)
	// Overwrite with known weights: W = [[1 2],[3 4]], b = [10 20].
	copy(l.weight.Value.Data(), []float64{1, 2, 3, 4})
	copy(l.bias.Value.Data(), []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1, 2, 0}, 2, 2)
	y := l.Forward(x, true)
	want := []float64{
		1*1 + 1*3 + 10, 1*2 + 1*4 + 20, // row 1: [14 26]
		2*1 + 0*3 + 10, 2*2 + 0*4 + 20, // row 2: [12 24]
	}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Errorf("y[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	if l.In() != 2 || l.Out() != 2 {
		t.Errorf("In/Out = %d/%d", l.In(), l.Out())
	}
}

func TestConv2DForwardDirectConvolution(t *testing.T) {
	// Compare the im2col path against a naive direct convolution.
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(rng, 2, 3, 3, WithPadding(1), WithStride(2))
	x := tensor.New(2, 2, 7, 7)
	x.RandNormal(rng, 0, 1)
	y := conv.Forward(x, true)

	n, inC, h, w := 2, 2, 7, 7
	outC := 3
	oh, ow := 4, 4
	wd := conv.weight.Value.Data() // (outC, inC*3*3)
	bd := conv.bias.Value.Data()
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bd[oc]
					for ci := 0; ci < inC; ci++ {
						for ky := 0; ky < 3; ky++ {
							for kx := 0; kx < 3; kx++ {
								iy := oy*2 + ky - 1
								ix := ox*2 + kx - 1
								if iy < 0 || iy >= h || ix < 0 || ix >= w {
									continue
								}
								wv := wd[oc*(inC*9)+(ci*3+ky)*3+kx]
								sum += wv * x.At(ni, ci, iy, ix)
							}
						}
					}
					got := y.At(ni, oc, oy, ox)
					if math.Abs(got-sum) > 1e-10 {
						t.Fatalf("conv[%d,%d,%d,%d] = %v, want %v", ni, oc, oy, ox, got, sum)
					}
				}
			}
		}
	}
}

func TestMaxPoolSelectsMaxima(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 5, 2, 0,
		3, 4, 8, 1,
		0, 9, 2, 2,
		7, 6, 3, 4,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D(2, 2)
	y := p.Forward(x, true)
	want := []float64{5, 8, 9, 4}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	// Backward routes gradients to the argmax positions only.
	g := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(g)
	if dx.At(0, 0, 0, 1) != 1 || dx.At(0, 0, 1, 2) != 2 ||
		dx.At(0, 0, 2, 1) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Errorf("pool backward misrouted: %v", dx.Data())
	}
	sum := 0.0
	for _, v := range dx.Data() {
		sum += v
	}
	if sum != 10 {
		t.Errorf("pool backward total = %v, want 10", sum)
	}
}

func TestGlobalAvgPoolValues(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4, // channel 0: mean 2.5
		10, 10, 10, 10, // channel 1: mean 10
	}, 1, 2, 2, 2)
	g := NewGlobalAvgPool2D()
	y := g.Forward(x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 10 {
		t.Errorf("GAP = %v, want [2.5 10]", y.Data())
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	bn := NewBatchNorm2D(1)
	rng := rand.New(rand.NewSource(3))
	// Feed batches from N(5, 4); running stats should approach them.
	for i := 0; i < 300; i++ {
		x := tensor.New(8, 1, 2, 2)
		for j := range x.Data() {
			x.Data()[j] = 5 + 2*rng.NormFloat64()
		}
		bn.Forward(x, true)
	}
	mean := bn.runningMean.Value.At(0)
	varr := bn.runningVar.Value.At(0)
	if math.Abs(mean-5) > 0.3 {
		t.Errorf("running mean = %v, want ≈5", mean)
	}
	if math.Abs(varr-4) > 0.8 {
		t.Errorf("running var = %v, want ≈4", varr)
	}
}

func TestBatchNormParamsMarkNoOpt(t *testing.T) {
	bn := NewBatchNorm2D(2)
	var noOpt, opt int
	for _, p := range bn.Params() {
		if p.NoOpt {
			noOpt++
		} else {
			opt++
		}
	}
	if noOpt != 2 || opt != 2 {
		t.Errorf("NoOpt/opt split = %d/%d, want 2/2", noOpt, opt)
	}
}

func TestSequentialAppendAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewSequential(NewLinear(rng, 4, 3))
	s.Append(NewReLU(), NewLinear(rng, 3, 2))
	if got := len(s.Params()); got != 4 {
		t.Errorf("Params = %d tensors, want 4 (2 weights + 2 biases)", got)
	}
	x := tensor.New(1, 4)
	y := s.Forward(x, true)
	if y.Dim(1) != 2 {
		t.Errorf("output width = %d, want 2", y.Dim(1))
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	g := tensor.New(2, 60)
	dx := f.Backward(g)
	shape := dx.Shape()
	if shape[0] != 2 || shape[1] != 3 || shape[2] != 4 || shape[3] != 5 {
		t.Errorf("backward shape = %v", shape)
	}
}

func TestModelSizesScaleDown(t *testing.T) {
	big := NewPaperCNN(ModelConfig{InChannels: 1, ImageSize: 28, NumClasses: 10, Scale: 4, Seed: 1})
	small := NewPaperCNN(ModelConfig{InChannels: 1, ImageSize: 28, NumClasses: 10, Scale: 16, Seed: 1})
	if big.Size() <= small.Size() {
		t.Errorf("scale 4 (%d params) must exceed scale 16 (%d params)", big.Size(), small.Size())
	}
}

func TestResNetStridesReduceSpatial(t *testing.T) {
	m := NewResNet18(ModelConfig{InChannels: 3, ImageSize: 32, NumClasses: 10, Scale: 16, Seed: 1})
	x := tensor.New(1, 3, 32, 32)
	logits := m.Forward(x, false)
	if logits.Dim(0) != 1 || logits.Dim(1) != 10 {
		t.Errorf("logits shape = %v", logits.Shape())
	}
}
