package nn

import (
	"math/rand"
	"testing"

	"fedsu/internal/tensor"
)

// benchConvForwardBackward times one training step of a mid-network
// convolution (16→32 channels, 3×3, batch 8 at 16×16) at the given storage
// width, the shape class that dominates per-client wall-clock in the
// emulated runs. allocs/op is the headline number: the im2col/col2im and
// gate scratch must come from the arena, not the GC. The F32 variant moves
// half the bytes through the same kernels (BENCH_kernels.json tracks both).
func benchConvForwardBackward[E tensor.Elem](b *testing.B) {
	dt := tensor.DTypeOf[E]()
	rng := rand.New(rand.NewSource(1))
	conv := newConv2DOf[E](rng, 16, 32, 3, WithPadding(1))
	x := tensor.NewOf(dt, 8, 16, 16, 16)
	x.RandNormal(rng, 0, 1)
	grad := tensor.NewOf(dt, 8, 32, 16, 16)
	grad.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := conv.Forward(x, true)
		dx := conv.Backward(grad)
		_, _ = y, dx
	}
}

func BenchmarkConvForwardBackward(b *testing.B)    { benchConvForwardBackward[float64](b) }
func BenchmarkConvForwardBackwardF32(b *testing.B) { benchConvForwardBackward[float32](b) }

// benchLinearForwardBackward times the fully-connected head.
func benchLinearForwardBackward[E tensor.Elem](b *testing.B) {
	dt := tensor.DTypeOf[E]()
	rng := rand.New(rand.NewSource(1))
	lin := newLinearOf[E](rng, 512, 128)
	x := tensor.NewOf(dt, 32, 512)
	x.RandNormal(rng, 0, 1)
	grad := tensor.NewOf(dt, 32, 128)
	grad.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := lin.Forward(x, true)
		dx := lin.Backward(grad)
		_, _ = y, dx
	}
}

func BenchmarkLinearForwardBackward(b *testing.B)    { benchLinearForwardBackward[float64](b) }
func BenchmarkLinearForwardBackwardF32(b *testing.B) { benchLinearForwardBackward[float32](b) }

// benchLSTMForwardBackward times a full BPTT step of the row-LSTM cell.
func benchLSTMForwardBackward[E tensor.Elem](b *testing.B) {
	dt := tensor.DTypeOf[E]()
	rng := rand.New(rand.NewSource(1))
	lstm := newLSTMOf[E](rng, 28, 64)
	x := tensor.NewOf(dt, 8, 1, 28, 28)
	x.RandNormal(rng, 0, 1)
	grad := tensor.NewOf(dt, 8, 64)
	grad.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := lstm.Forward(x, true)
		dx := lstm.Backward(grad)
		_, _ = h, dx
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B)    { benchLSTMForwardBackward[float64](b) }
func BenchmarkLSTMForwardBackwardF32(b *testing.B) { benchLSTMForwardBackward[float32](b) }
