package nn

import (
	"math/rand"
	"testing"

	"fedsu/internal/tensor"
)

// BenchmarkConvForwardBackward times one training step of a mid-network
// convolution (16→32 channels, 3×3, batch 8 at 16×16), the shape class that
// dominates per-client wall-clock in the emulated runs. allocs/op is the
// headline number: the im2col/col2im and gate scratch must come from the
// arena, not the GC.
func BenchmarkConvForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	conv := NewConv2D(rng, 16, 32, 3, WithPadding(1))
	x := tensor.New(8, 16, 16, 16)
	x.RandNormal(rng, 0, 1)
	grad := tensor.New(8, 32, 16, 16)
	grad.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := conv.Forward(x, true)
		dx := conv.Backward(grad)
		_, _ = y, dx
	}
}

// BenchmarkLinearForwardBackward times the fully-connected head.
func BenchmarkLinearForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear(rng, 512, 128)
	x := tensor.New(32, 512)
	x.RandNormal(rng, 0, 1)
	grad := tensor.New(32, 128)
	grad.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := lin.Forward(x, true)
		dx := lin.Backward(grad)
		_, _ = y, dx
	}
}

// BenchmarkLSTMForwardBackward times a full BPTT step of the row-LSTM cell.
func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lstm := NewLSTM(rng, 28, 64)
	x := tensor.New(8, 1, 28, 28)
	x.RandNormal(rng, 0, 1)
	grad := tensor.New(8, 64)
	grad.RandNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := lstm.Forward(x, true)
		dx := lstm.Backward(grad)
		_, _ = h, dx
	}
}
