package nn

import (
	"math/rand"

	"fedsu/internal/tensor"
)

// Linear is a fully-connected layer computing y = xW + b over batched row
// vectors: x is (N, in), W is (in, out), b is (out).
type Linear struct {
	weight *Param
	bias   *Param

	in, out int
	lastX   *tensor.Tensor
}

var _ Layer = (*Linear)(nil)

// NewLinear constructs a fully-connected layer with Xavier-uniform weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{
		weight: newParam("weight", in, out),
		bias:   newParam("bias", out),
		in:     in,
		out:    out,
	}
	l.weight.Value.XavierUniform(rng, in, out)
	return l
}

// In returns the input feature count.
func (l *Linear) In() int { return l.in }

// Out returns the output feature count.
func (l *Linear) Out() int { return l.out }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n := x.Dim(0)
	x2 := x.Reshape(n, x.Len()/n)
	l.lastX = x2
	y := tensor.MatMul(x2, l.weight.Value)
	bd := l.bias.Value.Data()
	yd := y.Data()
	for i := 0; i < n; i++ {
		row := yd[i*l.out : (i+1)*l.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	// dW += xᵀ × grad, accumulated in place (no temporary + Add pass).
	tensor.MatMulTransAAcc(l.weight.Grad, l.lastX, grad)
	// db = column sums of grad
	gd := grad.Data()
	bd := l.bias.Grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*l.out : (i+1)*l.out]
		for j := range row {
			bd[j] += row[j]
		}
	}
	// dx = grad × Wᵀ, with W stored (in, out): use MatMulTransB.
	return tensor.MatMulTransB(grad, l.weight.Value)
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }
