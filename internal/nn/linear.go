package nn

import (
	"math/rand"

	"fedsu/internal/tensor"
)

// Linear is a fully-connected layer computing y = xW + b over batched row
// vectors: x is (N, in), W is (in, out), b is (out). The type parameter
// selects the storage and compute width of its parameters and activations.
type Linear[E tensor.Elem] struct {
	weight *Param
	bias   *Param

	in, out int
	lastX   *tensor.Tensor
}

var (
	_ Layer = (*Linear[float64])(nil)
	_ Layer = (*Linear[float32])(nil)
)

// NewLinear constructs a float64 fully-connected layer with Xavier-uniform
// weights, the historical default width.
func NewLinear(rng *rand.Rand, in, out int) *Linear[float64] {
	return newLinearOf[float64](rng, in, out)
}

func newLinearOf[E tensor.Elem](rng *rand.Rand, in, out int) *Linear[E] {
	l := &Linear[E]{
		weight: newParamOf[E]("weight", in, out),
		bias:   newParamOf[E]("bias", out),
		in:     in,
		out:    out,
	}
	l.weight.Value.XavierUniform(rng, in, out)
	return l
}

// In returns the input feature count.
func (l *Linear[E]) In() int { return l.in }

// Out returns the output feature count.
func (l *Linear[E]) Out() int { return l.out }

// Forward implements Layer.
func (l *Linear[E]) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n := x.Dim(0)
	x2 := x.Reshape(n, x.Len()/n)
	l.lastX = x2
	y := tensor.MatMul(x2, l.weight.Value)
	bd := tensor.DataOf[E](l.bias.Value)
	yd := tensor.DataOf[E](y)
	for i := 0; i < n; i++ {
		row := yd[i*l.out : (i+1)*l.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	// dW += xᵀ × grad, accumulated in place (no temporary + Add pass).
	tensor.MatMulTransAAcc(l.weight.Grad, l.lastX, grad)
	// db = column sums of grad, accumulated at storage width — the same
	// accumulator policy as dW, whose matmul accumulates in E.
	gd := tensor.DataOf[E](grad)
	bd := tensor.DataOf[E](l.bias.Grad)
	for i := 0; i < n; i++ {
		row := gd[i*l.out : (i+1)*l.out]
		for j := range row {
			bd[j] += row[j]
		}
	}
	// dx = grad × Wᵀ, with W stored (in, out): use MatMulTransB.
	return tensor.MatMulTransB(grad, l.weight.Value)
}

// Params implements Layer.
func (l *Linear[E]) Params() []*Param { return []*Param{l.weight, l.bias} }
