package nn

import (
	"math"

	"fedsu/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW activation over the batch
// and spatial dimensions, with learnable scale (gamma) and shift (beta) and
// running statistics for inference.
//
// The running mean and variance are exposed through Params with NoOpt set:
// the optimizer skips them, but federated synchronization includes them so
// every client evaluates with the same statistics — mirroring how FedAvg
// deployments average batch-norm buffers.
type BatchNorm2D struct {
	gamma, beta             *Param
	runningMean, runningVar *Param

	c        int
	momentum float64
	eps      float64

	// Forward cache.
	lastXHat   *tensor.Tensor
	lastInvStd []float64
	lastShape  []int
}

var _ Layer = (*BatchNorm2D)(nil)

// NewBatchNorm2D constructs batch normalization over c channels with the
// conventional momentum 0.1 and epsilon 1e-5.
func NewBatchNorm2D(c int) *BatchNorm2D {
	b := &BatchNorm2D{
		gamma:       newParam("gamma", c),
		beta:        newParam("beta", c),
		runningMean: newParam("running_mean", c),
		runningVar:  newParam("running_var", c),
		c:           c,
		momentum:    0.1,
		eps:         1e-5,
	}
	b.gamma.Value.Fill(1)
	b.runningVar.Value.Fill(1)
	b.runningMean.NoOpt = true
	b.runningVar.NoOpt = true
	return b
}

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	b.lastShape = x.Shape()
	plane := h * w
	count := float64(n * plane)
	out := tensor.New(n, c, h, w)
	xd, od := x.Data(), out.Data()
	gd, bd := b.gamma.Value.Data(), b.beta.Value.Data()

	if train {
		xhat := tensor.New(n, c, h, w)
		xh := xhat.Data()
		if cap(b.lastInvStd) < c {
			b.lastInvStd = make([]float64, c)
		}
		b.lastInvStd = b.lastInvStd[:c]
		rm, rv := b.runningMean.Value.Data(), b.runningVar.Value.Data()
		for ci := 0; ci < c; ci++ {
			mean, varr := 0.0, 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for _, v := range xd[base : base+plane] {
					mean += v
				}
			}
			mean /= count
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for _, v := range xd[base : base+plane] {
					d := v - mean
					varr += d * d
				}
			}
			varr /= count
			invStd := 1.0 / math.Sqrt(varr+b.eps)
			b.lastInvStd[ci] = invStd
			rm[ci] = (1-b.momentum)*rm[ci] + b.momentum*mean
			rv[ci] = (1-b.momentum)*rv[ci] + b.momentum*varr
			g, be := gd[ci], bd[ci]
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for j := base; j < base+plane; j++ {
					xn := (xd[j] - mean) * invStd
					xh[j] = xn
					od[j] = g*xn + be
				}
			}
		}
		b.lastXHat = xhat
		return out
	}

	rm, rv := b.runningMean.Value.Data(), b.runningVar.Value.Data()
	for ci := 0; ci < c; ci++ {
		invStd := 1.0 / math.Sqrt(rv[ci]+b.eps)
		mean, g, be := rm[ci], gd[ci], bd[ci]
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for j := base; j < base+plane; j++ {
				od[j] = g*(xd[j]-mean)*invStd + be
			}
		}
	}
	return out
}

// Backward implements Layer. It uses the standard batch-norm gradient:
// dx = (gamma * invStd / m) * (m*dy − sum(dy) − xhat * sum(dy*xhat)).
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := b.lastShape[0], b.lastShape[1], b.lastShape[2], b.lastShape[3]
	plane := h * w
	m := float64(n * plane)
	dx := tensor.New(b.lastShape...)
	gd := grad.Data()
	xh := b.lastXHat.Data()
	dd := dx.Data()
	ggrad, bgrad := b.gamma.Grad.Data(), b.beta.Grad.Data()
	gval := b.gamma.Value.Data()

	for ci := 0; ci < c; ci++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for j := base; j < base+plane; j++ {
				sumDy += gd[j]
				sumDyXhat += gd[j] * xh[j]
			}
		}
		ggrad[ci] += sumDyXhat
		bgrad[ci] += sumDy
		k := gval[ci] * b.lastInvStd[ci] / m
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for j := base; j < base+plane; j++ {
				dd[j] = k * (m*gd[j] - sumDy - xh[j]*sumDyXhat)
			}
		}
	}
	// Release the normalized-activation cache; it is not needed again
	// until the next Forward.
	b.lastXHat = nil
	return dx
}

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param {
	return []*Param{b.gamma, b.beta, b.runningMean, b.runningVar}
}
