package nn

import (
	"math"

	"fedsu/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW activation over the batch
// and spatial dimensions, with learnable scale (gamma) and shift (beta) and
// running statistics for inference.
//
// The running mean and variance are exposed through Params with NoOpt set:
// the optimizer skips them, but federated synchronization includes them so
// every client evaluates with the same statistics — mirroring how FedAvg
// deployments average batch-norm buffers.
//
// Batch moments sum N·H·W terms per channel, so they accumulate in float64
// at either storage width (the "widen O(n) reductions" policy in math.go);
// the normalized activations round to E once on the way out.
type BatchNorm2D[E tensor.Elem] struct {
	gamma, beta             *Param
	runningMean, runningVar *Param

	c        int
	momentum float64
	eps      float64

	// Forward cache.
	lastXHat   *tensor.Tensor
	lastInvStd []float64
	lastShape  []int
}

var (
	_ Layer = (*BatchNorm2D[float64])(nil)
	_ Layer = (*BatchNorm2D[float32])(nil)
)

// NewBatchNorm2D constructs float64 batch normalization over c channels with
// the conventional momentum 0.1 and epsilon 1e-5.
func NewBatchNorm2D(c int) *BatchNorm2D[float64] {
	return newBatchNorm2DOf[float64](c)
}

func newBatchNorm2DOf[E tensor.Elem](c int) *BatchNorm2D[E] {
	b := &BatchNorm2D[E]{
		gamma:       newParamOf[E]("gamma", c),
		beta:        newParamOf[E]("beta", c),
		runningMean: newParamOf[E]("running_mean", c),
		runningVar:  newParamOf[E]("running_var", c),
		c:           c,
		momentum:    0.1,
		eps:         1e-5,
	}
	b.gamma.Value.Fill(1)
	b.runningVar.Value.Fill(1)
	b.runningMean.NoOpt = true
	b.runningVar.NoOpt = true
	return b
}

// Forward implements Layer.
func (b *BatchNorm2D[E]) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	b.lastShape = x.Shape()
	plane := h * w
	count := float64(n * plane)
	dt := tensor.DTypeOf[E]()
	out := tensor.NewOf(dt, n, c, h, w)
	xd, od := tensor.DataOf[E](x), tensor.DataOf[E](out)
	gd, bd := tensor.DataOf[E](b.gamma.Value), tensor.DataOf[E](b.beta.Value)

	if train {
		xhat := tensor.NewOf(dt, n, c, h, w)
		xh := tensor.DataOf[E](xhat)
		if cap(b.lastInvStd) < c {
			b.lastInvStd = make([]float64, c)
		}
		b.lastInvStd = b.lastInvStd[:c]
		rm, rv := tensor.DataOf[E](b.runningMean.Value), tensor.DataOf[E](b.runningVar.Value)
		for ci := 0; ci < c; ci++ {
			mean, varr := 0.0, 0.0
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for _, v := range xd[base : base+plane] {
					mean += toF64(v)
				}
			}
			mean /= count
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for _, v := range xd[base : base+plane] {
					d := toF64(v) - mean
					varr += d * d
				}
			}
			varr /= count
			invStd := 1.0 / math.Sqrt(varr+b.eps)
			b.lastInvStd[ci] = invStd
			rm[ci] = roundE[E]((1-b.momentum)*toF64(rm[ci]) + b.momentum*mean)
			rv[ci] = roundE[E]((1-b.momentum)*toF64(rv[ci]) + b.momentum*varr)
			g, be := toF64(gd[ci]), toF64(bd[ci])
			for ni := 0; ni < n; ni++ {
				base := (ni*c + ci) * plane
				for j := base; j < base+plane; j++ {
					xn := (toF64(xd[j]) - mean) * invStd
					xh[j] = roundE[E](xn)
					od[j] = roundE[E](g*xn + be)
				}
			}
		}
		b.lastXHat = xhat
		return out
	}

	rm, rv := tensor.DataOf[E](b.runningMean.Value), tensor.DataOf[E](b.runningVar.Value)
	for ci := 0; ci < c; ci++ {
		invStd := 1.0 / math.Sqrt(toF64(rv[ci])+b.eps)
		mean, g, be := toF64(rm[ci]), toF64(gd[ci]), toF64(bd[ci])
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for j := base; j < base+plane; j++ {
				od[j] = roundE[E](g*(toF64(xd[j])-mean)*invStd + be)
			}
		}
	}
	return out
}

// Backward implements Layer. It uses the standard batch-norm gradient:
// dx = (gamma * invStd / m) * (m*dy − sum(dy) − xhat * sum(dy*xhat)),
// with both channel sums accumulated in float64.
func (b *BatchNorm2D[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := b.lastShape[0], b.lastShape[1], b.lastShape[2], b.lastShape[3]
	plane := h * w
	m := float64(n * plane)
	dx := tensor.NewOf(tensor.DTypeOf[E](), b.lastShape...)
	gd := tensor.DataOf[E](grad)
	xh := tensor.DataOf[E](b.lastXHat)
	dd := tensor.DataOf[E](dx)
	ggrad, bgrad := tensor.DataOf[E](b.gamma.Grad), tensor.DataOf[E](b.beta.Grad)
	gval := tensor.DataOf[E](b.gamma.Value)

	for ci := 0; ci < c; ci++ {
		sumDy, sumDyXhat := 0.0, 0.0
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for j := base; j < base+plane; j++ {
				sumDy += toF64(gd[j])
				sumDyXhat += toF64(gd[j]) * toF64(xh[j])
			}
		}
		ggrad[ci] = roundE[E](toF64(ggrad[ci]) + sumDyXhat)
		bgrad[ci] = roundE[E](toF64(bgrad[ci]) + sumDy)
		k := toF64(gval[ci]) * b.lastInvStd[ci] / m
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * plane
			for j := base; j < base+plane; j++ {
				dd[j] = roundE[E](k * (m*toF64(gd[j]) - sumDy - toF64(xh[j])*sumDyXhat))
			}
		}
	}
	// Release the normalized-activation cache; it is not needed again
	// until the next Forward.
	b.lastXHat = nil
	return dx
}

// Params implements Layer.
func (b *BatchNorm2D[E]) Params() []*Param {
	return []*Param{b.gamma, b.beta, b.runningMean, b.runningVar}
}
