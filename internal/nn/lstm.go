package nn

import (
	"math"
	"math/rand"

	"fedsu/internal/tensor"
)

// LSTM is a single-layer long short-term memory network consuming NCHW
// input of shape (N, 1, T, D) — T timesteps of D features, the layout the
// data pipeline produces when an image's rows are read as a sequence — and
// emitting the final hidden state (N, H). Backpropagation runs through all
// timesteps (full BPTT).
//
// The recurrent workload exists because the sparsification literature the
// paper builds on (CMFL in particular) evaluates LSTM models; it extends
// the paper's CNN/ResNet/DenseNet zoo with a fourth trajectory family.
type LSTM struct {
	wx *Param // (D, 4H), gate order: input, forget, cell, output
	wh *Param // (H, 4H)
	b  *Param // (4H)

	inDim, hidden int

	// Forward caches for BPTT.
	steps []lstmStep
	lastN int
}

type lstmStep struct {
	x          *tensor.Tensor // (N, D)
	hPrev      *tensor.Tensor // (N, H)
	cPrev      *tensor.Tensor // (N, H)
	i, f, g, o []float64      // gate activations, length N*H
	c          *tensor.Tensor // (N, H)
	tanhC      []float64
}

var _ Layer = (*LSTM)(nil)

// NewLSTM constructs an LSTM over inDim features per step with the given
// hidden width. The forget-gate bias starts at 1, the standard trick that
// keeps early memory open.
func NewLSTM(rng *rand.Rand, inDim, hidden int) *LSTM {
	l := &LSTM{
		wx:     newParam("wx", inDim, 4*hidden),
		wh:     newParam("wh", hidden, 4*hidden),
		b:      newParam("b", 4*hidden),
		inDim:  inDim,
		hidden: hidden,
	}
	l.wx.Value.XavierUniform(rng, inDim, 4*hidden)
	l.wh.Value.XavierUniform(rng, hidden, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		l.b.Value.Data()[j] = 1
	}
	return l
}

// Hidden returns the hidden-state width.
func (l *LSTM) Hidden() int { return l.hidden }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, steps, d := x.Dim(0), x.Dim(2), x.Dim(3)
	if x.Dim(1) != 1 {
		panic("nn: LSTM expects single-channel (N, 1, T, D) input")
	}
	if d != l.inDim {
		panic("nn: LSTM feature width mismatch")
	}
	l.lastN = n
	l.steps = l.steps[:0]
	h := tensor.New(n, l.hidden)
	c := tensor.New(n, l.hidden)
	xd := x.Data()

	for t := 0; t < steps; t++ {
		// Slice step t into an (N, D) matrix.
		xt := tensor.New(n, d)
		for ni := 0; ni < n; ni++ {
			src := xd[(ni*steps+t)*d : (ni*steps+t+1)*d]
			copy(xt.Data()[ni*d:(ni+1)*d], src)
		}
		z := tensor.MatMul(xt, l.wx.Value)
		z.Add(tensor.MatMul(h, l.wh.Value))
		zd := z.Data()
		bd := l.b.Value.Data()
		H := l.hidden
		step := lstmStep{
			x: xt, hPrev: h, cPrev: c,
			i: make([]float64, n*H), f: make([]float64, n*H),
			g: make([]float64, n*H), o: make([]float64, n*H),
			tanhC: make([]float64, n*H),
		}
		newC := tensor.New(n, H)
		newH := tensor.New(n, H)
		for ni := 0; ni < n; ni++ {
			zr := zd[ni*4*H : (ni+1)*4*H]
			cPrev := c.Data()[ni*H : (ni+1)*H]
			for j := 0; j < H; j++ {
				iv := sigmoid(zr[j] + bd[j])
				fv := sigmoid(zr[H+j] + bd[H+j])
				gv := math.Tanh(zr[2*H+j] + bd[2*H+j])
				ov := sigmoid(zr[3*H+j] + bd[3*H+j])
				cv := fv*cPrev[j] + iv*gv
				tc := math.Tanh(cv)
				idx := ni*H + j
				step.i[idx], step.f[idx], step.g[idx], step.o[idx] = iv, fv, gv, ov
				step.tanhC[idx] = tc
				newC.Data()[idx] = cv
				newH.Data()[idx] = ov * tc
			}
		}
		step.c = newC
		l.steps = append(l.steps, step)
		h, c = newH, newC
	}
	return h
}

// Backward implements Layer, running BPTT from the final-hidden-state
// gradient back to the input sequence.
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, H, D := l.lastN, l.hidden, l.inDim
	steps := len(l.steps)
	dx := tensor.New(n, 1, steps, D)

	dh := grad.Clone()
	dc := tensor.New(n, H)
	for t := steps - 1; t >= 0; t-- {
		st := l.steps[t]
		l.steps[t] = lstmStep{} // release as consumed
		dz := tensor.New(n, 4*H)
		dhd, dcd, dzd := dh.Data(), dc.Data(), dz.Data()
		cPrev := st.cPrev.Data()
		for ni := 0; ni < n; ni++ {
			for j := 0; j < H; j++ {
				idx := ni*H + j
				iv, fv, gv, ov := st.i[idx], st.f[idx], st.g[idx], st.o[idx]
				tc := st.tanhC[idx]
				dcTotal := dcd[idx] + dhd[idx]*ov*(1-tc*tc)
				do := dhd[idx] * tc
				di := dcTotal * gv
				df := dcTotal * cPrev[idx]
				dg := dcTotal * iv
				zr := dzd[ni*4*H : (ni+1)*4*H]
				zr[j] = di * iv * (1 - iv)
				zr[H+j] = df * fv * (1 - fv)
				zr[2*H+j] = dg * (1 - gv*gv)
				zr[3*H+j] = do * ov * (1 - ov)
				dcd[idx] = dcTotal * fv // flows to c_{t-1}
			}
		}
		// Parameter gradients.
		l.wx.Grad.Add(tensor.MatMulTransA(st.x, dz))
		l.wh.Grad.Add(tensor.MatMulTransA(st.hPrev, dz))
		bg := l.b.Grad.Data()
		for ni := 0; ni < n; ni++ {
			row := dzd[ni*4*H : (ni+1)*4*H]
			for j, v := range row {
				bg[j] += v
			}
		}
		// Input and previous-hidden gradients.
		dxt := tensor.MatMulTransB(dz, l.wx.Value) // (N, D)
		for ni := 0; ni < n; ni++ {
			dst := dx.Data()[(ni*steps+t)*D : (ni*steps+t+1)*D]
			copy(dst, dxt.Data()[ni*D:(ni+1)*D])
		}
		dh = tensor.MatMulTransB(dz, l.wh.Value) // (N, H)
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// NewRowLSTM builds a sequence classifier that reads each image row as one
// timestep — the classic "row LSTM" benchmark — followed by a linear head.
func NewRowLSTM(cfg ModelConfig) *Model {
	if cfg.InChannels != 1 {
		panic("nn: NewRowLSTM requires single-channel input")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hidden := cfg.scaled(128)
	seq := NewSequential(
		NewLSTM(rng, cfg.ImageSize, hidden),
		NewLinear(rng, hidden, cfg.NumClasses),
	)
	m := NewModel("lstm", seq, cfg.NumClasses)
	namePrefix(m)
	return m
}
