package nn

import (
	"math"
	"math/rand"

	"fedsu/internal/tensor"
)

// LSTM is a single-layer long short-term memory network consuming NCHW
// input of shape (N, 1, T, D) — T timesteps of D features, the layout the
// data pipeline produces when an image's rows are read as a sequence — and
// emitting the final hidden state (N, H). Backpropagation runs through all
// timesteps (full BPTT).
//
// The recurrent workload exists because the sparsification literature the
// paper builds on (CMFL in particular) evaluates LSTM models; it extends
// the paper's CNN/ResNet/DenseNet zoo with a fourth trajectory family.
//
// All per-step state (sliced inputs, hidden/cell trajectories, gate
// activations) lives in persistent per-layer buffers that are regrown only
// when the (batch, timesteps) geometry changes, and the per-step
// pre-activation/gradient temporaries come from the tensor scratch arena,
// so a steady-state training step allocates almost nothing.
//
// Gate math (sigmoid/tanh and the cell update) computes in float64 at
// either storage width and rounds once per stored activation; the matmul
// pre-activations and parameter gradients accumulate at storage width like
// every other matmul in the stack.
type LSTM[E tensor.Elem] struct {
	wx *Param // (D, 4H), gate order: input, forget, cell, output
	wh *Param // (H, 4H)
	b  *Param // (4H)

	inDim, hidden int

	// Forward caches for BPTT, regrown on geometry change. xSteps[t] views
	// xBuf; hStates/cStates hold the h_0..h_T / c_0..c_T trajectories
	// (index 0 is the zero initial state); gates packs the i, f, g, o and
	// tanh(c) activations as five consecutive N*H blocks per step.
	xSteps         []*tensor.Tensor
	hStates        []*tensor.Tensor
	cStates        []*tensor.Tensor
	gates          []E
	cacheN, cacheT int
}

var (
	_ Layer = (*LSTM[float64])(nil)
	_ Layer = (*LSTM[float32])(nil)
)

// NewLSTM constructs a float64 LSTM over inDim features per step with the
// given hidden width. The forget-gate bias starts at 1, the standard trick
// that keeps early memory open.
func NewLSTM(rng *rand.Rand, inDim, hidden int) *LSTM[float64] {
	return newLSTMOf[float64](rng, inDim, hidden)
}

func newLSTMOf[E tensor.Elem](rng *rand.Rand, inDim, hidden int) *LSTM[E] {
	l := &LSTM[E]{
		wx:     newParamOf[E]("wx", inDim, 4*hidden),
		wh:     newParamOf[E]("wh", hidden, 4*hidden),
		b:      newParamOf[E]("b", 4*hidden),
		inDim:  inDim,
		hidden: hidden,
	}
	l.wx.Value.XavierUniform(rng, inDim, 4*hidden)
	l.wh.Value.XavierUniform(rng, hidden, 4*hidden)
	bd := tensor.DataOf[E](l.b.Value)
	for j := hidden; j < 2*hidden; j++ {
		bd[j] = 1
	}
	return l
}

// Hidden returns the hidden-state width.
func (l *LSTM[E]) Hidden() int { return l.hidden }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ensureCaches (re)builds the persistent step buffers for a batch of n
// sequences of `steps` timesteps. The initial h_0/c_0 states are zeroed at
// build time and are never written afterwards, so rebuilding is only needed
// when the geometry changes.
func (l *LSTM[E]) ensureCaches(n, steps int) {
	if l.cacheN == n && l.cacheT == steps {
		return
	}
	l.cacheN, l.cacheT = n, steps
	nh := n * l.hidden
	xBuf := make([]E, steps*n*l.inDim)
	hBuf := make([]E, (steps+1)*nh)
	cBuf := make([]E, (steps+1)*nh)
	l.xSteps = l.xSteps[:0]
	l.hStates = l.hStates[:0]
	l.cStates = l.cStates[:0]
	for t := 0; t < steps; t++ {
		l.xSteps = append(l.xSteps, tensor.FromSliceOf(xBuf[t*n*l.inDim:(t+1)*n*l.inDim], n, l.inDim))
	}
	for t := 0; t <= steps; t++ {
		l.hStates = append(l.hStates, tensor.FromSliceOf(hBuf[t*nh:(t+1)*nh], n, l.hidden))
		l.cStates = append(l.cStates, tensor.FromSliceOf(cBuf[t*nh:(t+1)*nh], n, l.hidden))
	}
	l.gates = make([]E, 5*steps*nh)
}

// gateSlices returns the i, f, g, o, tanh(c) blocks for step t.
func (l *LSTM[E]) gateSlices(t int) (iv, fv, gv, ov, tc []E) {
	nh := l.cacheN * l.hidden
	base := 5 * t * nh
	return l.gates[base : base+nh],
		l.gates[base+nh : base+2*nh],
		l.gates[base+2*nh : base+3*nh],
		l.gates[base+3*nh : base+4*nh],
		l.gates[base+4*nh : base+5*nh]
}

// Forward implements Layer.
func (l *LSTM[E]) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, steps, d := x.Dim(0), x.Dim(2), x.Dim(3)
	if x.Dim(1) != 1 {
		panic("nn: LSTM expects single-channel (N, 1, T, D) input")
	}
	if d != l.inDim {
		panic("nn: LSTM feature width mismatch")
	}
	l.ensureCaches(n, steps)

	z := tensor.GetScratchOf(tensor.DTypeOf[E](), n, 4*l.hidden)
	xd := tensor.DataOf[E](x)
	bd := tensor.DataOf[E](l.b.Value)
	H := l.hidden

	for t := 0; t < steps; t++ {
		// Slice step t into the cached (N, D) matrix.
		xt := l.xSteps[t]
		xtd := tensor.DataOf[E](xt)
		for ni := 0; ni < n; ni++ {
			src := xd[(ni*steps+t)*d : (ni*steps+t+1)*d]
			copy(xtd[ni*d:(ni+1)*d], src)
		}
		h, c := l.hStates[t], l.cStates[t]
		tensor.MatMulInto(z, xt, l.wx.Value)
		tensor.MatMulAcc(z, h, l.wh.Value) // z += h × Wh, no temporary
		zd := tensor.DataOf[E](z)
		cd := tensor.DataOf[E](c)
		si, sf, sg, so, stc := l.gateSlices(t)
		newCd := tensor.DataOf[E](l.cStates[t+1])
		newHd := tensor.DataOf[E](l.hStates[t+1])
		for ni := 0; ni < n; ni++ {
			zr := zd[ni*4*H : (ni+1)*4*H]
			cPrev := cd[ni*H : (ni+1)*H]
			for j := 0; j < H; j++ {
				iv := sigmoid(toF64(zr[j]) + toF64(bd[j]))
				fv := sigmoid(toF64(zr[H+j]) + toF64(bd[H+j]))
				gv := math.Tanh(toF64(zr[2*H+j]) + toF64(bd[2*H+j]))
				ov := sigmoid(toF64(zr[3*H+j]) + toF64(bd[3*H+j]))
				cv := fv*toF64(cPrev[j]) + iv*gv
				tc := math.Tanh(cv)
				idx := ni*H + j
				si[idx], sf[idx], sg[idx], so[idx] = roundE[E](iv), roundE[E](fv), roundE[E](gv), roundE[E](ov)
				stc[idx] = roundE[E](tc)
				newCd[idx] = roundE[E](cv)
				newHd[idx] = roundE[E](ov * tc)
			}
		}
	}
	tensor.PutScratch(z)
	// Return a copy: the cached final state will be overwritten by the next
	// Forward, while callers own the returned tensor.
	return l.hStates[steps].Clone()
}

// Backward implements Layer, running BPTT from the final-hidden-state
// gradient back to the input sequence.
func (l *LSTM[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, H, D := l.cacheN, l.hidden, l.inDim
	steps := l.cacheT
	dt := tensor.DTypeOf[E]()
	dx := tensor.NewOf(dt, n, 1, steps, D)
	dxd := tensor.DataOf[E](dx)

	dh := tensor.GetScratchOf(dt, n, H)
	dh.CopyFrom(grad)
	dhNext := tensor.GetScratchOf(dt, n, H)
	dc := tensor.GetScratchOf(dt, n, H)
	dc.Zero()
	dz := tensor.GetScratchOf(dt, n, 4*H)
	dxt := tensor.GetScratchOf(dt, n, D)
	dxtd := tensor.DataOf[E](dxt)
	bg := tensor.DataOf[E](l.b.Grad)

	for t := steps - 1; t >= 0; t-- {
		si, sf, sg, so, stc := l.gateSlices(t)
		dhd, dcd, dzd := tensor.DataOf[E](dh), tensor.DataOf[E](dc), tensor.DataOf[E](dz)
		cPrev := tensor.DataOf[E](l.cStates[t])
		for ni := 0; ni < n; ni++ {
			for j := 0; j < H; j++ {
				idx := ni*H + j
				iv, fv, gv, ov := toF64(si[idx]), toF64(sf[idx]), toF64(sg[idx]), toF64(so[idx])
				tc := toF64(stc[idx])
				dcTotal := toF64(dcd[idx]) + toF64(dhd[idx])*ov*(1-tc*tc)
				do := toF64(dhd[idx]) * tc
				di := dcTotal * gv
				df := dcTotal * toF64(cPrev[idx])
				dg := dcTotal * iv
				zr := dzd[ni*4*H : (ni+1)*4*H]
				zr[j] = roundE[E](di * iv * (1 - iv))
				zr[H+j] = roundE[E](df * fv * (1 - fv))
				zr[2*H+j] = roundE[E](dg * (1 - gv*gv))
				zr[3*H+j] = roundE[E](do * ov * (1 - ov))
				dcd[idx] = roundE[E](dcTotal * fv) // flows to c_{t-1}
			}
		}
		// Parameter gradients, accumulated in place. The bias gradient sums
		// at storage width, the same accumulator policy as the wx/wh matmuls.
		tensor.MatMulTransAAcc(l.wx.Grad, l.xSteps[t], dz)
		tensor.MatMulTransAAcc(l.wh.Grad, l.hStates[t], dz)
		for ni := 0; ni < n; ni++ {
			row := dzd[ni*4*H : (ni+1)*4*H]
			for j, v := range row {
				bg[j] += v
			}
		}
		// Input and previous-hidden gradients.
		tensor.MatMulTransBInto(dxt, dz, l.wx.Value) // (N, D)
		for ni := 0; ni < n; ni++ {
			dst := dxd[(ni*steps+t)*D : (ni*steps+t+1)*D]
			copy(dst, dxtd[ni*D:(ni+1)*D])
		}
		tensor.MatMulTransBInto(dhNext, dz, l.wh.Value) // (N, H)
		dh, dhNext = dhNext, dh
	}
	tensor.PutScratch(dh)
	tensor.PutScratch(dhNext)
	tensor.PutScratch(dc)
	tensor.PutScratch(dz)
	tensor.PutScratch(dxt)
	return dx
}

// Params implements Layer.
func (l *LSTM[E]) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// NewRowLSTM builds a sequence classifier that reads each image row as one
// timestep — the classic "row LSTM" benchmark — followed by a linear head,
// at the precision cfg.DType selects.
func NewRowLSTM(cfg ModelConfig) *Model {
	if cfg.DType == tensor.Float32 {
		return buildRowLSTM[float32](cfg)
	}
	return buildRowLSTM[float64](cfg)
}

func buildRowLSTM[E tensor.Elem](cfg ModelConfig) *Model {
	if cfg.InChannels != 1 {
		panic("nn: NewRowLSTM requires single-channel input")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hidden := cfg.scaled(128)
	seq := NewSequential(
		newLSTMOf[E](rng, cfg.ImageSize, hidden),
		newLinearOf[E](rng, hidden, cfg.NumClasses),
	)
	m := NewModel("lstm", seq, cfg.NumClasses)
	namePrefix(m)
	return m
}
