package nn

import (
	"math"
	"math/rand"

	"fedsu/internal/tensor"
)

// LSTM is a single-layer long short-term memory network consuming NCHW
// input of shape (N, 1, T, D) — T timesteps of D features, the layout the
// data pipeline produces when an image's rows are read as a sequence — and
// emitting the final hidden state (N, H). Backpropagation runs through all
// timesteps (full BPTT).
//
// The recurrent workload exists because the sparsification literature the
// paper builds on (CMFL in particular) evaluates LSTM models; it extends
// the paper's CNN/ResNet/DenseNet zoo with a fourth trajectory family.
//
// All per-step state (sliced inputs, hidden/cell trajectories, gate
// activations) lives in persistent per-layer buffers that are regrown only
// when the (batch, timesteps) geometry changes, and the per-step
// pre-activation/gradient temporaries come from the tensor scratch arena,
// so a steady-state training step allocates almost nothing.
type LSTM struct {
	wx *Param // (D, 4H), gate order: input, forget, cell, output
	wh *Param // (H, 4H)
	b  *Param // (4H)

	inDim, hidden int

	// Forward caches for BPTT, regrown on geometry change. xSteps[t] views
	// xBuf; hStates/cStates hold the h_0..h_T / c_0..c_T trajectories
	// (index 0 is the zero initial state); gates packs the i, f, g, o and
	// tanh(c) activations as five consecutive N*H blocks per step.
	xSteps         []*tensor.Tensor
	hStates        []*tensor.Tensor
	cStates        []*tensor.Tensor
	gates          []float64
	cacheN, cacheT int
}

var _ Layer = (*LSTM)(nil)

// NewLSTM constructs an LSTM over inDim features per step with the given
// hidden width. The forget-gate bias starts at 1, the standard trick that
// keeps early memory open.
func NewLSTM(rng *rand.Rand, inDim, hidden int) *LSTM {
	l := &LSTM{
		wx:     newParam("wx", inDim, 4*hidden),
		wh:     newParam("wh", hidden, 4*hidden),
		b:      newParam("b", 4*hidden),
		inDim:  inDim,
		hidden: hidden,
	}
	l.wx.Value.XavierUniform(rng, inDim, 4*hidden)
	l.wh.Value.XavierUniform(rng, hidden, 4*hidden)
	for j := hidden; j < 2*hidden; j++ {
		l.b.Value.Data()[j] = 1
	}
	return l
}

// Hidden returns the hidden-state width.
func (l *LSTM) Hidden() int { return l.hidden }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// ensureCaches (re)builds the persistent step buffers for a batch of n
// sequences of `steps` timesteps. The initial h_0/c_0 states are zeroed at
// build time and are never written afterwards, so rebuilding is only needed
// when the geometry changes.
func (l *LSTM) ensureCaches(n, steps int) {
	if l.cacheN == n && l.cacheT == steps {
		return
	}
	l.cacheN, l.cacheT = n, steps
	nh := n * l.hidden
	xBuf := make([]float64, steps*n*l.inDim)
	hBuf := make([]float64, (steps+1)*nh)
	cBuf := make([]float64, (steps+1)*nh)
	l.xSteps = l.xSteps[:0]
	l.hStates = l.hStates[:0]
	l.cStates = l.cStates[:0]
	for t := 0; t < steps; t++ {
		l.xSteps = append(l.xSteps, tensor.FromSlice(xBuf[t*n*l.inDim:(t+1)*n*l.inDim], n, l.inDim))
	}
	for t := 0; t <= steps; t++ {
		l.hStates = append(l.hStates, tensor.FromSlice(hBuf[t*nh:(t+1)*nh], n, l.hidden))
		l.cStates = append(l.cStates, tensor.FromSlice(cBuf[t*nh:(t+1)*nh], n, l.hidden))
	}
	l.gates = make([]float64, 5*steps*nh)
}

// gateSlices returns the i, f, g, o, tanh(c) blocks for step t.
func (l *LSTM) gateSlices(t int) (iv, fv, gv, ov, tc []float64) {
	nh := l.cacheN * l.hidden
	base := 5 * t * nh
	return l.gates[base : base+nh],
		l.gates[base+nh : base+2*nh],
		l.gates[base+2*nh : base+3*nh],
		l.gates[base+3*nh : base+4*nh],
		l.gates[base+4*nh : base+5*nh]
}

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, steps, d := x.Dim(0), x.Dim(2), x.Dim(3)
	if x.Dim(1) != 1 {
		panic("nn: LSTM expects single-channel (N, 1, T, D) input")
	}
	if d != l.inDim {
		panic("nn: LSTM feature width mismatch")
	}
	l.ensureCaches(n, steps)

	z := tensor.GetScratch(n, 4*l.hidden)
	xd := x.Data()
	bd := l.b.Value.Data()
	H := l.hidden

	for t := 0; t < steps; t++ {
		// Slice step t into the cached (N, D) matrix.
		xt := l.xSteps[t]
		for ni := 0; ni < n; ni++ {
			src := xd[(ni*steps+t)*d : (ni*steps+t+1)*d]
			copy(xt.Data()[ni*d:(ni+1)*d], src)
		}
		h, c := l.hStates[t], l.cStates[t]
		tensor.MatMulInto(z, xt, l.wx.Value)
		tensor.MatMulAcc(z, h, l.wh.Value) // z += h × Wh, no temporary
		zd := z.Data()
		si, sf, sg, so, stc := l.gateSlices(t)
		newC := l.cStates[t+1]
		newH := l.hStates[t+1]
		for ni := 0; ni < n; ni++ {
			zr := zd[ni*4*H : (ni+1)*4*H]
			cPrev := c.Data()[ni*H : (ni+1)*H]
			for j := 0; j < H; j++ {
				iv := sigmoid(zr[j] + bd[j])
				fv := sigmoid(zr[H+j] + bd[H+j])
				gv := math.Tanh(zr[2*H+j] + bd[2*H+j])
				ov := sigmoid(zr[3*H+j] + bd[3*H+j])
				cv := fv*cPrev[j] + iv*gv
				tc := math.Tanh(cv)
				idx := ni*H + j
				si[idx], sf[idx], sg[idx], so[idx] = iv, fv, gv, ov
				stc[idx] = tc
				newC.Data()[idx] = cv
				newH.Data()[idx] = ov * tc
			}
		}
	}
	tensor.PutScratch(z)
	// Return a copy: the cached final state will be overwritten by the next
	// Forward, while callers own the returned tensor.
	return l.hStates[steps].Clone()
}

// Backward implements Layer, running BPTT from the final-hidden-state
// gradient back to the input sequence.
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, H, D := l.cacheN, l.hidden, l.inDim
	steps := l.cacheT
	dx := tensor.New(n, 1, steps, D)

	dh := tensor.GetScratch(n, H)
	dh.CopyFrom(grad)
	dhNext := tensor.GetScratch(n, H)
	dc := tensor.GetScratch(n, H)
	dc.Zero()
	dz := tensor.GetScratch(n, 4*H)
	dxt := tensor.GetScratch(n, D)
	bg := l.b.Grad.Data()

	for t := steps - 1; t >= 0; t-- {
		si, sf, sg, so, stc := l.gateSlices(t)
		dhd, dcd, dzd := dh.Data(), dc.Data(), dz.Data()
		cPrev := l.cStates[t].Data()
		for ni := 0; ni < n; ni++ {
			for j := 0; j < H; j++ {
				idx := ni*H + j
				iv, fv, gv, ov := si[idx], sf[idx], sg[idx], so[idx]
				tc := stc[idx]
				dcTotal := dcd[idx] + dhd[idx]*ov*(1-tc*tc)
				do := dhd[idx] * tc
				di := dcTotal * gv
				df := dcTotal * cPrev[idx]
				dg := dcTotal * iv
				zr := dzd[ni*4*H : (ni+1)*4*H]
				zr[j] = di * iv * (1 - iv)
				zr[H+j] = df * fv * (1 - fv)
				zr[2*H+j] = dg * (1 - gv*gv)
				zr[3*H+j] = do * ov * (1 - ov)
				dcd[idx] = dcTotal * fv // flows to c_{t-1}
			}
		}
		// Parameter gradients, accumulated in place.
		tensor.MatMulTransAAcc(l.wx.Grad, l.xSteps[t], dz)
		tensor.MatMulTransAAcc(l.wh.Grad, l.hStates[t], dz)
		for ni := 0; ni < n; ni++ {
			row := dzd[ni*4*H : (ni+1)*4*H]
			for j, v := range row {
				bg[j] += v
			}
		}
		// Input and previous-hidden gradients.
		tensor.MatMulTransBInto(dxt, dz, l.wx.Value) // (N, D)
		for ni := 0; ni < n; ni++ {
			dst := dx.Data()[(ni*steps+t)*D : (ni*steps+t+1)*D]
			copy(dst, dxt.Data()[ni*D:(ni+1)*D])
		}
		tensor.MatMulTransBInto(dhNext, dz, l.wh.Value) // (N, H)
		dh, dhNext = dhNext, dh
	}
	tensor.PutScratch(dh)
	tensor.PutScratch(dhNext)
	tensor.PutScratch(dc)
	tensor.PutScratch(dz)
	tensor.PutScratch(dxt)
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// NewRowLSTM builds a sequence classifier that reads each image row as one
// timestep — the classic "row LSTM" benchmark — followed by a linear head.
func NewRowLSTM(cfg ModelConfig) *Model {
	if cfg.InChannels != 1 {
		panic("nn: NewRowLSTM requires single-channel input")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hidden := cfg.scaled(128)
	seq := NewSequential(
		NewLSTM(rng, cfg.ImageSize, hidden),
		NewLinear(rng, hidden, cfg.NumClasses),
	)
	m := NewModel("lstm", seq, cfg.NumClasses)
	namePrefix(m)
	return m
}
