package nn

import (
	"fmt"
	"math/rand"

	"fedsu/internal/tensor"
)

// ModelConfig parameterizes the paper's model zoo. Scale shrinks channel
// widths so the full training pipeline runs at laptop scale while keeping
// the architecture topology (and therefore the per-parameter trajectory
// behaviour) intact; Scale=1 reproduces the paper-size networks.
type ModelConfig struct {
	// InChannels and ImageSize describe the input tensor geometry.
	InChannels int
	ImageSize  int
	// NumClasses is the classifier output width.
	NumClasses int
	// Scale divides channel widths; 1 is paper scale. Values above 1
	// shrink the model (e.g. 8 → one-eighth width).
	Scale int
	// Seed drives weight initialization so every federated client can
	// build an identical replica.
	Seed int64
	// DType selects the parameter/activation storage width. The zero value
	// is tensor.Float64, the historical default; tensor.Float32 halves the
	// model's memory footprint and makes the wire codec lossless.
	DType tensor.DType
}

func (c ModelConfig) scaled(ch int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := ch / s
	if v < 2 {
		v = 2
	}
	return v
}

// NewPaperCNN builds the paper's EMNIST model: two 5x5 convolutional layers
// (each followed by ReLU and 2x2 max-pooling) and two fully-connected
// layers.
func NewPaperCNN(cfg ModelConfig) *Model {
	if cfg.DType == tensor.Float32 {
		return buildPaperCNN[float32](cfg)
	}
	return buildPaperCNN[float64](cfg)
}

func buildPaperCNN[E tensor.Elem](cfg ModelConfig) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c1, c2 := cfg.scaled(32), cfg.scaled(64)
	fc := cfg.scaled(512)
	// Two valid 5x5 convs with 2x2 pools: size -> (size-4)/2 -> ((size-4)/2-4)/2.
	s1 := (cfg.ImageSize - 4) / 2
	s2 := (s1 - 4) / 2
	if s2 < 1 {
		panic(fmt.Sprintf("nn: image size %d too small for PaperCNN", cfg.ImageSize))
	}
	net := NewSequential(
		newConv2DOf[E](rng, cfg.InChannels, c1, 5),
		newReLUOf[E](),
		newMaxPool2DOf[E](2, 2),
		newConv2DOf[E](rng, c1, c2, 5),
		newReLUOf[E](),
		newMaxPool2DOf[E](2, 2),
		NewFlatten(),
		newLinearOf[E](rng, c2*s2*s2, fc),
		newReLUOf[E](),
		newLinearOf[E](rng, fc, cfg.NumClasses),
	)
	m := NewModel("cnn", net, cfg.NumClasses)
	namePrefix(m)
	return m
}

// NewResNet18 builds the ResNet-18 architecture adapted to small images
// (3x3 stem, no initial max-pool, as is standard for CIFAR-scale inputs):
// four stages of two basic residual blocks with channel widths
// 64-128-256-512, global average pooling, and a linear classifier.
func NewResNet18(cfg ModelConfig) *Model {
	if cfg.DType == tensor.Float32 {
		return buildResNet18[float32](cfg)
	}
	return buildResNet18[float64](cfg)
}

func buildResNet18[E tensor.Elem](cfg ModelConfig) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := []int{cfg.scaled(64), cfg.scaled(128), cfg.scaled(256), cfg.scaled(512)}
	seq := NewSequential(
		newConv2DOf[E](rng, cfg.InChannels, w[0], 3, WithPadding(1), WithoutBias()),
		newBatchNorm2DOf[E](w[0]),
		newReLUOf[E](),
	)
	inC := w[0]
	for stage, outC := range w {
		stride := 1
		if stage > 0 {
			stride = 2
		}
		seq.Append(
			newResidualBlockOf[E](rng, inC, outC, stride),
			newResidualBlockOf[E](rng, outC, outC, 1),
		)
		inC = outC
	}
	seq.Append(
		newGlobalAvgPool2DOf[E](),
		newLinearOf[E](rng, inC, cfg.NumClasses),
	)
	m := NewModel("resnet18", seq, cfg.NumClasses)
	namePrefix(m)
	return m
}

// NewDenseNet121 builds the DenseNet-121 topology (dense blocks of 6, 12,
// 24, 16 layers with growth rate 32 and half-compression transitions)
// adapted to small images with a 3x3 stem. Scale reduces the growth rate
// and block depths proportionally so the concatenation structure — the
// source of DenseNet's distinctive per-parameter trajectories — survives at
// laptop scale.
func NewDenseNet121(cfg ModelConfig) *Model {
	if cfg.DType == tensor.Float32 {
		return buildDenseNet121[float32](cfg)
	}
	return buildDenseNet121[float64](cfg)
}

func buildDenseNet121[E tensor.Elem](cfg ModelConfig) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	growth := cfg.scaled(32)
	blocks := []int{6, 12, 24, 16}
	if cfg.Scale > 1 {
		for i := range blocks {
			blocks[i] = max(2, blocks[i]/cfg.Scale*2)
		}
	}
	stem := 2 * growth
	seq := NewSequential(
		newConv2DOf[E](rng, cfg.InChannels, stem, 3, WithPadding(1), WithoutBias()),
		newBatchNorm2DOf[E](stem),
		newReLUOf[E](),
	)
	c := stem
	for i, depth := range blocks {
		db := newDenseBlockOf[E](rng, c, growth, depth)
		seq.Append(db)
		c = db.OutChannels()
		if i < len(blocks)-1 {
			// Transition: BN-ReLU-1x1 conv (half compression)-2x2 avg pool.
			outC := c / 2
			seq.Append(
				newBatchNorm2DOf[E](c),
				newReLUOf[E](),
				newConv2DOf[E](rng, c, outC, 1, WithoutBias()),
				newAvgPool2DOf[E](2, 2),
			)
			c = outC
		}
	}
	seq.Append(
		newBatchNorm2DOf[E](c),
		newReLUOf[E](),
		newGlobalAvgPool2DOf[E](),
		newLinearOf[E](rng, c, cfg.NumClasses),
	)
	m := NewModel("densenet121", seq, cfg.NumClasses)
	namePrefix(m)
	return m
}

// NewMLP builds a small multi-layer perceptron; it is not one of the
// paper's models but serves as a fast workload for tests and examples.
func NewMLP(cfg ModelConfig, hidden ...int) *Model {
	if cfg.DType == tensor.Float32 {
		return buildMLP[float32](cfg, hidden...)
	}
	return buildMLP[float64](cfg, hidden...)
}

func buildMLP[E tensor.Elem](cfg ModelConfig, hidden ...int) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := cfg.InChannels * cfg.ImageSize * cfg.ImageSize
	seq := NewSequential(NewFlatten())
	prev := in
	for _, h := range hidden {
		seq.Append(newLinearOf[E](rng, prev, h), newReLUOf[E]())
		prev = h
	}
	seq.Append(newLinearOf[E](rng, prev, cfg.NumClasses))
	m := NewModel("mlp", seq, cfg.NumClasses)
	namePrefix(m)
	return m
}

// namePrefix gives every parameter a unique dotted name of the form
// "<model>.<index>.<local-name>" so diagnostics can identify parameters.
func namePrefix(m *Model) {
	for i, p := range m.params {
		p.Name = fmt.Sprintf("%s.%d.%s", m.Name, i, p.Name)
	}
}

// Builder constructs a fresh model replica; federated clients use it so
// every replica has an identical layout and initialization.
type Builder func() *Model

// BuilderFor returns a Builder for one of the paper's architectures:
// "cnn", "resnet18", "densenet121", or "mlp".
func BuilderFor(arch string, cfg ModelConfig) (Builder, error) {
	switch arch {
	case "cnn":
		return func() *Model { return NewPaperCNN(cfg) }, nil
	case "resnet18":
		return func() *Model { return NewResNet18(cfg) }, nil
	case "densenet121":
		return func() *Model { return NewDenseNet121(cfg) }, nil
	case "lstm":
		return func() *Model { return NewRowLSTM(cfg) }, nil
	case "mlp":
		return func() *Model { return NewMLP(cfg, 64) }, nil
	default:
		return nil, fmt.Errorf("nn: unknown architecture %q", arch)
	}
}
