package nn

import (
	"math/rand"

	"fedsu/internal/tensor"
)

// ResidualBlock is the ResNet basic block: conv3x3-BN-ReLU-conv3x3-BN plus
// an identity (or 1x1-conv projection) shortcut, followed by ReLU.
type ResidualBlock[E tensor.Elem] struct {
	body     *Sequential
	shortcut Layer // nil means identity
	relu     *ReLU[E]

	lastX *tensor.Tensor
}

var (
	_ Layer = (*ResidualBlock[float64])(nil)
	_ Layer = (*ResidualBlock[float32])(nil)
)

// NewResidualBlock constructs a float64 basic residual block mapping inC
// channels to outC channels with the given stride on the first convolution.
// When the shapes differ a projection shortcut (1x1 conv + BN) is inserted.
func NewResidualBlock(rng *rand.Rand, inC, outC, stride int) *ResidualBlock[float64] {
	return newResidualBlockOf[float64](rng, inC, outC, stride)
}

func newResidualBlockOf[E tensor.Elem](rng *rand.Rand, inC, outC, stride int) *ResidualBlock[E] {
	b := &ResidualBlock[E]{
		body: NewSequential(
			newConv2DOf[E](rng, inC, outC, 3, WithStride(stride), WithPadding(1), WithoutBias()),
			newBatchNorm2DOf[E](outC),
			newReLUOf[E](),
			newConv2DOf[E](rng, outC, outC, 3, WithPadding(1), WithoutBias()),
			newBatchNorm2DOf[E](outC),
		),
		relu: newReLUOf[E](),
	}
	if stride != 1 || inC != outC {
		b.shortcut = NewSequential(
			newConv2DOf[E](rng, inC, outC, 1, WithStride(stride), WithoutBias()),
			newBatchNorm2DOf[E](outC),
		)
	}
	return b
}

// Forward implements Layer.
func (b *ResidualBlock[E]) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.lastX = x
	y := b.body.Forward(x, train)
	var sc *tensor.Tensor
	if b.shortcut != nil {
		sc = b.shortcut.Forward(x, train)
	} else {
		sc = x
	}
	y.Add(sc)
	return b.relu.Forward(y, train)
}

// Backward implements Layer.
func (b *ResidualBlock[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.relu.Backward(grad)
	dx := b.body.Backward(g)
	if b.shortcut != nil {
		dx.Add(b.shortcut.Backward(g))
	} else {
		dx.Add(g)
	}
	return dx
}

// Params implements Layer.
func (b *ResidualBlock[E]) Params() []*Param {
	ps := b.body.Params()
	if b.shortcut != nil {
		ps = append(ps, b.shortcut.Params()...)
	}
	return ps
}

// denseLayer is one BN-ReLU-conv3x3 unit inside a DenseBlock, producing
// growth-rate new channels from all previously accumulated channels.
type denseLayer[E tensor.Elem] struct {
	bn   *BatchNorm2D[E]
	relu *ReLU[E]
	conv *Conv2D[E]
}

func newDenseLayer[E tensor.Elem](rng *rand.Rand, inC, growth int) *denseLayer[E] {
	return &denseLayer[E]{
		bn:   newBatchNorm2DOf[E](inC),
		relu: newReLUOf[E](),
		conv: newConv2DOf[E](rng, inC, growth, 3, WithPadding(1), WithoutBias()),
	}
}

func (d *denseLayer[E]) forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return d.conv.Forward(d.relu.Forward(d.bn.Forward(x, train), train), train)
}

func (d *denseLayer[E]) backward(grad *tensor.Tensor) *tensor.Tensor {
	return d.bn.Backward(d.relu.Backward(d.conv.Backward(grad)))
}

func (d *denseLayer[E]) params() []*Param {
	ps := d.bn.Params()
	return append(ps, d.conv.Params()...)
}

// DenseBlock is the DenseNet building block: a chain of BN-ReLU-conv layers
// where each layer's input is the channel-wise concatenation of the block
// input and every earlier layer's output.
type DenseBlock[E tensor.Elem] struct {
	layers []*denseLayer[E]
	inC    int
	growth int

	lastInputs []*tensor.Tensor // concatenated input to each layer
}

var (
	_ Layer = (*DenseBlock[float64])(nil)
	_ Layer = (*DenseBlock[float32])(nil)
)

// NewDenseBlock constructs a float64 dense block with the given number of
// layers and growth rate over inC input channels.
func NewDenseBlock(rng *rand.Rand, inC, growth, layers int) *DenseBlock[float64] {
	return newDenseBlockOf[float64](rng, inC, growth, layers)
}

func newDenseBlockOf[E tensor.Elem](rng *rand.Rand, inC, growth, layers int) *DenseBlock[E] {
	b := &DenseBlock[E]{inC: inC, growth: growth}
	c := inC
	for i := 0; i < layers; i++ {
		b.layers = append(b.layers, newDenseLayer[E](rng, c, growth))
		c += growth
	}
	return b
}

// OutChannels returns the channel count of the block output.
func (b *DenseBlock[E]) OutChannels() int { return b.inC + b.growth*len(b.layers) }

// concatChannels concatenates NCHW tensors along the channel axis.
func concatChannels[E tensor.Elem](a, bt *tensor.Tensor) *tensor.Tensor {
	n, ca, h, w := a.Dim(0), a.Dim(1), a.Dim(2), a.Dim(3)
	cb := bt.Dim(1)
	out := tensor.NewOf(tensor.DTypeOf[E](), n, ca+cb, h, w)
	plane := h * w
	ad, bd, od := tensor.DataOf[E](a), tensor.DataOf[E](bt), tensor.DataOf[E](out)
	for ni := 0; ni < n; ni++ {
		copy(od[ni*(ca+cb)*plane:], ad[ni*ca*plane:(ni+1)*ca*plane])
		copy(od[(ni*(ca+cb)+ca)*plane:], bd[ni*cb*plane:(ni+1)*cb*plane])
	}
	return out
}

// splitChannels splits grad (N, ca+cb, H, W) into its first-ca and last-cb
// channel slabs, the adjoint of concatChannels.
func splitChannels[E tensor.Elem](g *tensor.Tensor, ca int) (ga, gb *tensor.Tensor) {
	n, c, h, w := g.Dim(0), g.Dim(1), g.Dim(2), g.Dim(3)
	cb := c - ca
	dt := tensor.DTypeOf[E]()
	ga = tensor.NewOf(dt, n, ca, h, w)
	gb = tensor.NewOf(dt, n, cb, h, w)
	plane := h * w
	gd, ad, bd := tensor.DataOf[E](g), tensor.DataOf[E](ga), tensor.DataOf[E](gb)
	for ni := 0; ni < n; ni++ {
		copy(ad[ni*ca*plane:(ni+1)*ca*plane], gd[ni*c*plane:])
		copy(bd[ni*cb*plane:(ni+1)*cb*plane], gd[(ni*c+ca)*plane:])
	}
	return ga, gb
}

// Forward implements Layer.
func (b *DenseBlock[E]) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.lastInputs = b.lastInputs[:0]
	cur := x
	for _, l := range b.layers {
		b.lastInputs = append(b.lastInputs, cur)
		out := l.forward(cur, train)
		cur = concatChannels[E](cur, out)
	}
	return cur
}

// Backward implements Layer.
func (b *DenseBlock[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(b.layers) - 1; i >= 0; i-- {
		in := b.lastInputs[i]
		b.lastInputs[i] = nil // release as consumed (memory dominates deep blocks)
		gIn, gNew := splitChannels[E](grad, in.Dim(1))
		gIn.Add(b.layers[i].backward(gNew))
		grad = gIn
	}
	return grad
}

// Params implements Layer.
func (b *DenseBlock[E]) Params() []*Param {
	var ps []*Param
	for _, l := range b.layers {
		ps = append(ps, l.params()...)
	}
	return ps
}
