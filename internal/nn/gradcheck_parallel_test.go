package nn

import (
	"math/rand"
	"testing"

	"fedsu/internal/par"
	"fedsu/internal/tensor"
)

// TestGradCheckThroughParallelKernels re-runs the layer gradient checks
// with the worker pool engaged and the parallel cutoff forced to zero, so
// every matmul / im2col / col2im in Forward and Backward takes the chunked
// multi-worker code path. Because the parallel kernels are bit-identical to
// their serial forms, the same finite-difference tolerances must hold.
func TestGradCheckThroughParallelKernels(t *testing.T) {
	prevW := par.SetWorkers(4)
	defer par.SetWorkers(prevW)
	prevCut := tensor.SetParallelCutoff(0)
	defer tensor.SetParallelCutoff(prevCut)

	rng := rand.New(rand.NewSource(1))
	t.Run("linear", func(t *testing.T) {
		gradCheck(t, NewLinear(rng, 6, 4), randInput(2, 3, 6), 1e-4)
	})
	t.Run("conv", func(t *testing.T) {
		gradCheck(t, NewConv2D(rng, 2, 3, 3, WithPadding(1)), randInput(3, 2, 2, 8, 8), 1e-4)
	})
	t.Run("lstm", func(t *testing.T) {
		gradCheck(t, NewLSTM(rng, 5, 7), randInput(4, 2, 1, 6, 5), 2e-4)
	})
}
