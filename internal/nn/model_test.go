package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedsu/internal/tensor"
)

func testCfg(scale int) ModelConfig {
	return ModelConfig{InChannels: 1, ImageSize: 28, NumClasses: 10, Scale: scale, Seed: 42}
}

func TestModelsBuildAndForward(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Model
		inC   int
		size  int
	}{
		{"cnn", func() *Model { return NewPaperCNN(testCfg(8)) }, 1, 28},
		{"resnet18", func() *Model { return NewResNet18(testCfg(16)) }, 1, 28},
		{"densenet121", func() *Model {
			return NewDenseNet121(ModelConfig{InChannels: 3, ImageSize: 16, NumClasses: 10, Scale: 8, Seed: 1})
		}, 3, 16},
		{"mlp", func() *Model { return NewMLP(testCfg(1), 32) }, 1, 28},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := tt.build()
			if m.Size() <= 0 || m.OptSize() <= 0 || m.OptSize() > m.Size() {
				t.Fatalf("bad sizes: Size=%d OptSize=%d", m.Size(), m.OptSize())
			}
			x := tensor.New(2, tt.inC, tt.size, tt.size)
			rng := rand.New(rand.NewSource(5))
			x.RandNormal(rng, 0, 1)
			logits := m.Forward(x, true)
			if logits.Dim(0) != 2 || logits.Dim(1) != 10 {
				t.Fatalf("logits shape = %v, want [2 10]", logits.Shape())
			}
			for _, v := range logits.Data() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("non-finite logit")
				}
			}
		})
	}
}

func TestModelReplicasIdentical(t *testing.T) {
	a := NewPaperCNN(testCfg(8))
	b := NewPaperCNN(testCfg(8))
	va, vb := a.Vector(), b.Vector()
	if len(va) != len(vb) {
		t.Fatalf("replica sizes differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("replica values differ at %d", i)
		}
	}
}

func TestExtractLoadVectorRoundTrip(t *testing.T) {
	m := NewMLP(testCfg(1), 16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, m.Size())
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		m.LoadVector(v)
		out := make([]float64, m.Size())
		m.ExtractVector(out)
		for i := range v {
			if v[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestParamNamesUnique(t *testing.T) {
	m := NewResNet18(testCfg(16))
	seen := map[string]bool{}
	for _, p := range m.Params() {
		if seen[p.Name] {
			t.Fatalf("duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

// TestModelLearnsTinyTask trains the MLP on a linearly separable 2-class
// problem and checks that the loss drops and accuracy rises, validating the
// full forward/backward/update loop end to end.
func TestModelLearnsTinyTask(t *testing.T) {
	cfg := ModelConfig{InChannels: 1, ImageSize: 4, NumClasses: 2, Scale: 1, Seed: 7}
	m := NewMLP(cfg, 16)
	rng := rand.New(rand.NewSource(11))

	makeBatch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 4, 4)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			mean := -0.8
			if cls == 1 {
				mean = 0.8
			}
			for j := 0; j < 16; j++ {
				x.Data()[i*16+j] = mean + 0.3*rng.NormFloat64()
			}
		}
		return x, labels
	}

	x0, l0 := makeBatch(64)
	initLoss := m.Loss(x0, l0)

	const lr = 0.5
	for step := 0; step < 60; step++ {
		x, labels := makeBatch(32)
		m.ZeroGrad()
		m.TrainStep(x, labels)
		for _, p := range m.Params() {
			if p.NoOpt {
				continue
			}
			p.Value.AddScaled(-lr, p.Grad)
		}
	}

	xe, le := makeBatch(128)
	acc, loss := m.Evaluate(xe, le)
	if loss >= initLoss {
		t.Errorf("loss did not improve: init %v, final %v", initLoss, loss)
	}
	if acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95 on separable task", acc)
	}
}

func TestBuilderFor(t *testing.T) {
	cfg := testCfg(16)
	for _, arch := range []string{"cnn", "resnet18", "mlp"} {
		b, err := BuilderFor(arch, cfg)
		if err != nil {
			t.Fatalf("BuilderFor(%q): %v", arch, err)
		}
		if m := b(); m.Name != arch {
			t.Errorf("built model name = %q, want %q", m.Name, arch)
		}
	}
	if _, err := BuilderFor("transformer", cfg); err == nil {
		t.Error("BuilderFor with unknown arch should fail")
	}
}

func TestBatchNormTrainVsEval(t *testing.T) {
	bn := NewBatchNorm2D(2)
	x := randInput(3, 4, 2, 3, 3)
	// Train mode normalizes with batch stats: per-channel mean ~0.
	y := bn.Forward(x, true)
	n, c, h, w := 4, 2, 3, 3
	for ci := 0; ci < c; ci++ {
		mean := 0.0
		for ni := 0; ni < n; ni++ {
			for i := 0; i < h*w; i++ {
				mean += y.Data()[(ni*c+ci)*h*w+i]
			}
		}
		mean /= float64(n * h * w)
		if math.Abs(mean) > 1e-9 {
			t.Errorf("train-mode channel %d mean = %v, want 0", ci, mean)
		}
	}
	// Eval mode uses running stats and is deterministic in batch size.
	y1 := bn.Forward(x, false)
	y2 := bn.Forward(x, false)
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("eval mode must be deterministic")
		}
	}
}

func TestDenseBlockChannelGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewDenseBlock(rng, 4, 3, 5)
	if got, want := b.OutChannels(), 4+3*5; got != want {
		t.Fatalf("OutChannels = %d, want %d", got, want)
	}
	x := randInput(1, 2, 4, 6, 6)
	y := b.Forward(x, true)
	if y.Dim(1) != 19 {
		t.Fatalf("output channels = %d, want 19", y.Dim(1))
	}
	if y.Dim(2) != 6 || y.Dim(3) != 6 {
		t.Fatalf("dense block must preserve spatial size, got %v", y.Shape())
	}
}

func TestConcatSplitRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := tensor.New(2, 3, 4, 4)
		b := tensor.New(2, 2, 4, 4)
		a.RandNormal(rng, 0, 1)
		b.RandNormal(rng, 0, 1)
		cat := concatChannels[float64](a, b)
		ga, gb := splitChannels[float64](cat, 3)
		for i := range a.Data() {
			if ga.Data()[i] != a.Data()[i] {
				return false
			}
		}
		for i := range b.Data() {
			if gb.Data()[i] != b.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
