package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedsu/internal/tensor"
)

func TestLSTMForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLSTM(rng, 5, 7)
	x := randInput(2, 3, 1, 4, 5) // N=3, T=4, D=5
	h := l.Forward(x, true)
	if h.Dim(0) != 3 || h.Dim(1) != 7 {
		t.Fatalf("hidden shape = %v, want [3 7]", h.Shape())
	}
	for _, v := range h.Data() {
		if math.IsNaN(v) || math.Abs(v) > 1 {
			t.Fatalf("hidden value %v outside tanh*sigmoid range", v)
		}
	}
	if l.Hidden() != 7 {
		t.Errorf("Hidden = %d", l.Hidden())
	}
}

func TestLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLSTM(rng, 3, 4)
	gradCheck(t, l, randInput(3, 2, 1, 3, 3), 1e-3)
}

func TestLSTMZeroInputGates(t *testing.T) {
	// With zero input and zero initial state, h depends only on biases;
	// successive identical steps must produce a deterministic trajectory.
	rng := rand.New(rand.NewSource(3))
	l := NewLSTM(rng, 2, 3)
	x := tensor.New(1, 1, 5, 2)
	h1 := l.Forward(x, true)
	h2 := l.Forward(x, true)
	for i := range h1.Data() {
		if h1.Data()[i] != h2.Data()[i] {
			t.Fatal("LSTM forward must be deterministic")
		}
	}
}

func TestLSTMForgetBiasInitialized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(rng, 2, 3)
	bd := l.b.Value.Data()
	for j := 3; j < 6; j++ {
		if bd[j] != 1 {
			t.Errorf("forget bias[%d] = %v, want 1", j, bd[j])
		}
	}
	for j := 0; j < 3; j++ {
		if bd[j] != 0 {
			t.Errorf("input bias[%d] = %v, want 0", j, bd[j])
		}
	}
}

func TestRowLSTMModel(t *testing.T) {
	m := NewRowLSTM(ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Scale: 16, Seed: 5})
	x := randInput(6, 2, 1, 8, 8)
	logits := m.Forward(x, true)
	if logits.Dim(0) != 2 || logits.Dim(1) != 4 {
		t.Fatalf("logits shape = %v", logits.Shape())
	}
	if m.Size() <= 0 {
		t.Error("empty model")
	}
}

// TestRowLSTMLearnsSequenceTask trains the row LSTM on sequences whose
// class is determined by which half of the steps carries energy.
func TestRowLSTMLearnsSequenceTask(t *testing.T) {
	m := NewRowLSTM(ModelConfig{InChannels: 1, ImageSize: 6, NumClasses: 2, Scale: 16, Seed: 6})
	rng := rand.New(rand.NewSource(7))
	makeBatch := func(n int) (*tensor.Tensor, []int) {
		x := tensor.New(n, 1, 6, 6)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			cls := rng.Intn(2)
			labels[i] = cls
			for tt := 0; tt < 6; tt++ {
				active := (cls == 0 && tt < 3) || (cls == 1 && tt >= 3)
				for dd := 0; dd < 6; dd++ {
					v := 0.1 * rng.NormFloat64()
					if active {
						v += 1
					}
					x.Set(v, i, 0, tt, dd)
				}
			}
		}
		return x, labels
	}
	for step := 0; step < 80; step++ {
		x, labels := makeBatch(16)
		m.ZeroGrad()
		m.TrainStep(x, labels)
		for _, p := range m.Params() {
			if !p.NoOpt {
				p.Value.AddScaled(-0.1, p.Grad)
			}
		}
	}
	xe, le := makeBatch(64)
	acc, _ := m.Evaluate(xe, le)
	if acc < 0.9 {
		t.Errorf("row LSTM accuracy = %v, want ≥ 0.9 on separable sequences", acc)
	}
}
