// Package nn implements a small neural-network training stack with explicit
// forward/backward layers: convolutions, linear layers, batch normalization,
// pooling, activations, residual and densely-connected blocks, and the
// softmax cross-entropy loss.
//
// The package exists as the deep-learning substrate for the FedSU
// reproduction: federated clients train these models locally with SGD and
// the federated layer synchronizes the flat parameter vectors the models
// expose through Params.
package nn

import (
	"fmt"

	"fedsu/internal/tensor"
)

// Param is a single trainable (or tracked) tensor of a model together with
// its gradient accumulator.
type Param struct {
	// Name identifies the parameter within its model, e.g. "conv1.weight".
	Name string
	// Value holds the current parameter values.
	Value *tensor.Tensor
	// Grad accumulates the gradient of the loss w.r.t. Value over a batch.
	Grad *tensor.Tensor
	// NoOpt marks tensors that are synchronized between federated clients
	// but not updated by the optimizer — batch-norm running statistics.
	NoOpt bool
}

// newParamOf constructs a parameter at the storage width of the enclosing
// layer's instantiation; value and gradient always share one dtype.
func newParamOf[E tensor.Elem](name string, shape ...int) *Param {
	dt := tensor.DTypeOf[E]()
	return &Param{
		Name:  name,
		Value: tensor.NewOf(dt, shape...),
		Grad:  tensor.NewOf(dt, shape...),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network. Forward consumes the
// previous activation and caches whatever Backward needs; Backward consumes
// the gradient w.r.t. the layer output, accumulates parameter gradients, and
// returns the gradient w.r.t. the layer input.
//
// Layers are stateful across a Forward/Backward pair and therefore not safe
// for concurrent use; each federated client owns a private model replica.
type Layer interface {
	// Forward computes the layer output. train distinguishes training-time
	// behaviour (batch-norm batch statistics) from inference.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes input gradients from output gradients and
	// accumulates parameter gradients. It must be called after Forward.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameters; empty for stateless layers.
	Params() []*Param
}

// Sequential chains layers, feeding each layer's output to the next.
type Sequential struct {
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a sequential container over the given layers.
func NewSequential(layers ...Layer) *Sequential {
	return &Sequential{layers: layers}
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.layers = append(s.layers, layers...) }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer, concatenating all child parameters in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// prefixParams renames parameters with a dotted prefix so composite blocks
// produce unique, navigable names.
func prefixParams(prefix string, ps []*Param) []*Param {
	for _, p := range ps {
		p.Name = fmt.Sprintf("%s.%s", prefix, p.Name)
	}
	return ps
}
