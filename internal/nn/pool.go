package nn

import (
	"math"

	"fedsu/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW tensors. Window comparisons
// happen on exactly-widened float64 values, so the selected element (and its
// argmax index) is identical to a storage-width comparison at either E.
type MaxPool2D[E tensor.Elem] struct {
	p tensor.ConvParams

	argmax    []int // flat input index chosen for each output element
	lastShape []int
}

var (
	_ Layer = (*MaxPool2D[float64])(nil)
	_ Layer = (*MaxPool2D[float32])(nil)
)

// NewMaxPool2D constructs a square float64 max-pool with the given window
// and stride. The common "pool 2" is NewMaxPool2D(2, 2).
func NewMaxPool2D(window, stride int) *MaxPool2D[float64] {
	return newMaxPool2DOf[float64](window, stride)
}

func newMaxPool2DOf[E tensor.Elem](window, stride int) *MaxPool2D[E] {
	return &MaxPool2D[E]{p: tensor.ConvParams{
		KernelH: window, KernelW: window,
		StrideH: stride, StrideW: stride,
	}}
}

// Forward implements Layer.
func (m *MaxPool2D[E]) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := m.p.OutSize(h, w)
	m.lastShape = x.Shape()
	out := tensor.NewOf(tensor.DTypeOf[E](), n, c, oh, ow)
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	xd, od := tensor.DataOf[E](x), tensor.DataOf[E](out)
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bidx := math.Inf(-1), -1
					for ky := 0; ky < m.p.KernelH; ky++ {
						iy := oy*m.p.StrideH + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < m.p.KernelW; kx++ {
							ix := ox*m.p.StrideW + kx
							if ix >= w {
								continue
							}
							idx := base + iy*w + ix
							if v := toF64(xd[idx]); v > best {
								best, bidx = v, idx
							}
						}
					}
					od[oi] = roundE[E](best) // exact: best is a widened element
					m.argmax[oi] = bidx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.NewOf(tensor.DTypeOf[E](), m.lastShape...)
	dd, gd := tensor.DataOf[E](dx), tensor.DataOf[E](grad)
	for oi, idx := range m.argmax {
		dd[idx] += gd[oi]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D[E]) Params() []*Param { return nil }

// AvgPool2D is an average-pooling layer over NCHW tensors; window sums
// accumulate in float64 and round once per output element.
type AvgPool2D[E tensor.Elem] struct {
	p         tensor.ConvParams
	lastShape []int
}

var (
	_ Layer = (*AvgPool2D[float64])(nil)
	_ Layer = (*AvgPool2D[float32])(nil)
)

// NewAvgPool2D constructs a square float64 average pool with the given
// window and stride.
func NewAvgPool2D(window, stride int) *AvgPool2D[float64] {
	return newAvgPool2DOf[float64](window, stride)
}

func newAvgPool2DOf[E tensor.Elem](window, stride int) *AvgPool2D[E] {
	return &AvgPool2D[E]{p: tensor.ConvParams{
		KernelH: window, KernelW: window,
		StrideH: stride, StrideW: stride,
	}}
}

// Forward implements Layer.
func (a *AvgPool2D[E]) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := a.p.OutSize(h, w)
	a.lastShape = x.Shape()
	out := tensor.NewOf(tensor.DTypeOf[E](), n, c, oh, ow)
	inv := 1.0 / float64(a.p.KernelH*a.p.KernelW)
	xd, od := tensor.DataOf[E](x), tensor.DataOf[E](out)
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ky := 0; ky < a.p.KernelH; ky++ {
						iy := oy*a.p.StrideH + ky
						for kx := 0; kx < a.p.KernelW; kx++ {
							ix := ox*a.p.StrideW + kx
							s += toF64(xd[base+iy*w+ix])
						}
					}
					od[oi] = roundE[E](s * inv)
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (a *AvgPool2D[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := a.lastShape[0], a.lastShape[1], a.lastShape[2], a.lastShape[3]
	oh, ow := a.p.OutSize(h, w)
	dx := tensor.NewOf(tensor.DTypeOf[E](), a.lastShape...)
	inv := 1.0 / float64(a.p.KernelH*a.p.KernelW)
	dd, gd := tensor.DataOf[E](dx), tensor.DataOf[E](grad)
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := roundE[E](toF64(gd[oi]) * inv)
					for ky := 0; ky < a.p.KernelH; ky++ {
						iy := oy*a.p.StrideH + ky
						for kx := 0; kx < a.p.KernelW; kx++ {
							ix := ox*a.p.StrideW + kx
							dd[base+iy*w+ix] += g
						}
					}
					oi++
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (a *AvgPool2D[E]) Params() []*Param { return nil }

// GlobalAvgPool2D reduces each (H, W) plane to its mean, producing (N, C)
// feature vectors; it is the classifier head pooling in ResNet and DenseNet.
// Plane sums accumulate in float64 like AvgPool2D.
type GlobalAvgPool2D[E tensor.Elem] struct {
	lastShape []int
}

var (
	_ Layer = (*GlobalAvgPool2D[float64])(nil)
	_ Layer = (*GlobalAvgPool2D[float32])(nil)
)

// NewGlobalAvgPool2D constructs a float64 global average pool.
func NewGlobalAvgPool2D() *GlobalAvgPool2D[float64] {
	return newGlobalAvgPool2DOf[float64]()
}

func newGlobalAvgPool2DOf[E tensor.Elem]() *GlobalAvgPool2D[E] {
	return &GlobalAvgPool2D[E]{}
}

// Forward implements Layer.
func (g *GlobalAvgPool2D[E]) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.lastShape = x.Shape()
	out := tensor.NewOf(tensor.DTypeOf[E](), n, c)
	inv := 1.0 / float64(h*w)
	xd, od := tensor.DataOf[E](x), tensor.DataOf[E](out)
	for i := 0; i < n*c; i++ {
		s := 0.0
		for _, v := range xd[i*h*w : (i+1)*h*w] {
			s += toF64(v)
		}
		od[i] = roundE[E](s * inv)
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool2D[E]) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	dx := tensor.NewOf(tensor.DTypeOf[E](), g.lastShape...)
	inv := 1.0 / float64(h*w)
	dd, gd := tensor.DataOf[E](dx), tensor.DataOf[E](grad)
	for i := 0; i < n*c; i++ {
		v := roundE[E](toF64(gd[i]) * inv)
		row := dd[i*h*w : (i+1)*h*w]
		for j := range row {
			row[j] = v
		}
	}
	return dx
}

// Params implements Layer.
func (g *GlobalAvgPool2D[E]) Params() []*Param { return nil }
