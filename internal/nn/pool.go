package nn

import (
	"math"

	"fedsu/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW tensors.
type MaxPool2D struct {
	p tensor.ConvParams

	argmax    []int // flat input index chosen for each output element
	lastShape []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a square max-pool with the given window and
// stride. The common "pool 2" is NewMaxPool2D(2, 2).
func NewMaxPool2D(window, stride int) *MaxPool2D {
	return &MaxPool2D{p: tensor.ConvParams{
		KernelH: window, KernelW: window,
		StrideH: stride, StrideW: stride,
	}}
}

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := m.p.OutSize(h, w)
	m.lastShape = x.Shape()
	out := tensor.New(n, c, oh, ow)
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	xd, od := x.Data(), out.Data()
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best, bidx := math.Inf(-1), -1
					for ky := 0; ky < m.p.KernelH; ky++ {
						iy := oy*m.p.StrideH + ky
						if iy >= h {
							continue
						}
						for kx := 0; kx < m.p.KernelW; kx++ {
							ix := ox*m.p.StrideW + kx
							if ix >= w {
								continue
							}
							idx := base + iy*w + ix
							if xd[idx] > best {
								best, bidx = xd[idx], idx
							}
						}
					}
					od[oi] = best
					m.argmax[oi] = bidx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.lastShape...)
	dd, gd := dx.Data(), grad.Data()
	for oi, idx := range m.argmax {
		dd[idx] += gd[oi]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// AvgPool2D is an average-pooling layer over NCHW tensors.
type AvgPool2D struct {
	p         tensor.ConvParams
	lastShape []int
}

var _ Layer = (*AvgPool2D)(nil)

// NewAvgPool2D constructs a square average pool with the given window and
// stride.
func NewAvgPool2D(window, stride int) *AvgPool2D {
	return &AvgPool2D{p: tensor.ConvParams{
		KernelH: window, KernelW: window,
		StrideH: stride, StrideW: stride,
	}}
}

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := a.p.OutSize(h, w)
	a.lastShape = x.Shape()
	out := tensor.New(n, c, oh, ow)
	inv := 1.0 / float64(a.p.KernelH*a.p.KernelW)
	xd, od := x.Data(), out.Data()
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := 0.0
					for ky := 0; ky < a.p.KernelH; ky++ {
						iy := oy*a.p.StrideH + ky
						for kx := 0; kx < a.p.KernelW; kx++ {
							ix := ox*a.p.StrideW + kx
							s += xd[base+iy*w+ix]
						}
					}
					od[oi] = s * inv
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := a.lastShape[0], a.lastShape[1], a.lastShape[2], a.lastShape[3]
	oh, ow := a.p.OutSize(h, w)
	dx := tensor.New(a.lastShape...)
	inv := 1.0 / float64(a.p.KernelH*a.p.KernelW)
	dd, gd := dx.Data(), grad.Data()
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gd[oi] * inv
					for ky := 0; ky < a.p.KernelH; ky++ {
						iy := oy*a.p.StrideH + ky
						for kx := 0; kx < a.p.KernelW; kx++ {
							ix := ox*a.p.StrideW + kx
							dd[base+iy*w+ix] += g
						}
					}
					oi++
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// GlobalAvgPool2D reduces each (H, W) plane to its mean, producing (N, C)
// feature vectors; it is the classifier head pooling in ResNet and DenseNet.
type GlobalAvgPool2D struct {
	lastShape []int
}

var _ Layer = (*GlobalAvgPool2D)(nil)

// NewGlobalAvgPool2D constructs a global average pool.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward implements Layer.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.lastShape = x.Shape()
	out := tensor.New(n, c)
	inv := 1.0 / float64(h*w)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n*c; i++ {
		s := 0.0
		for _, v := range xd[i*h*w : (i+1)*h*w] {
			s += v
		}
		od[i] = s * inv
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	dx := tensor.New(g.lastShape...)
	inv := 1.0 / float64(h*w)
	dd, gd := dx.Data(), grad.Data()
	for i := 0; i < n*c; i++ {
		v := gd[i] * inv
		row := dd[i*h*w : (i+1)*h*w]
		for j := range row {
			row[j] = v
		}
	}
	return dx
}

// Params implements Layer.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }
