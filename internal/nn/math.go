package nn

import "fedsu/internal/tensor"

// Precision policy for the generic layers (see DESIGN.md, "Precision"):
//
//   - Element-wise kernels (bias add, ReLU masking, gradient scatter into
//     same-width buffers) run at storage width E, like the tensor package's
//     matmul accumulators.
//   - Reductions over O(n) terms (batch statistics, pooling sums, the
//     conv bias gradient, the loss) widen each term to float64 through
//     toF64, accumulate at full width, and round the result once through
//     roundE.
//   - Transcendentals (exp, tanh, sigmoid) always compute in float64 —
//     package math only offers float64 — and round once per output element.
//
// At E = float64 both helpers are the identity conversion, so the generic
// bodies execute the exact historical operation sequence and the default
// path stays bit-identical to the pre-generic implementation.
//
// These two helpers are the only sanctioned storage↔accumulator crossings
// in this package; the precision lint analyzer flags conversions written
// anywhere else in a kernel body.

// toF64 widens a storage element to float64; exact at both widths.
func toF64[E tensor.Elem](v E) float64 {
	return float64(v) //lint:allow precision -- exact widening helper, the sanctioned read crossing
}

// roundE rounds a float64 intermediate to storage width, once.
func roundE[E tensor.Elem](v float64) E {
	return E(v) //lint:allow precision -- single-rounding helper, the sanctioned write crossing
}
