package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedsu/internal/tensor"
)

// scalarLoss reduces a layer output to a scalar via a fixed random linear
// functional so finite differences have a single number to probe.
type scalarLoss struct {
	w *tensor.Tensor
}

func newScalarLoss(rng *rand.Rand, shape []int) *scalarLoss {
	w := tensor.New(shape...)
	w.RandNormal(rng, 0, 1)
	return &scalarLoss{w: w}
}

func (s *scalarLoss) value(y *tensor.Tensor) float64 {
	v := 0.0
	for i, x := range y.Data() {
		v += x * s.w.Data()[i]
	}
	return v
}

func (s *scalarLoss) grad() *tensor.Tensor { return s.w.Clone() }

// gradCheck verifies Backward against central finite differences for both
// the input gradient and every parameter gradient of the layer.
func gradCheck(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))

	y := layer.Forward(x, true)
	loss := newScalarLoss(rng, y.Shape())
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	layer.Forward(x, true)
	dx := layer.Backward(loss.grad())

	const h = 1e-5
	eval := func() float64 { return loss.value(layer.Forward(x, true)) }

	// Input gradient.
	for _, i := range sampleIndices(rng, x.Len(), 12) {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		up := eval()
		x.Data()[i] = orig - h
		down := eval()
		x.Data()[i] = orig
		num := (up - down) / (2 * h)
		if diff := math.Abs(num - dx.Data()[i]); diff > tol*(1+math.Abs(num)) {
			t.Errorf("input grad[%d]: analytic %v, numeric %v", i, dx.Data()[i], num)
		}
	}

	// Parameter gradients.
	for _, p := range layer.Params() {
		if p.NoOpt {
			continue
		}
		for _, i := range sampleIndices(rng, p.Value.Len(), 8) {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + h
			up := eval()
			p.Value.Data()[i] = orig - h
			down := eval()
			p.Value.Data()[i] = orig
			num := (up - down) / (2 * h)
			if diff := math.Abs(num - p.Grad.Data()[i]); diff > tol*(1+math.Abs(num)) {
				t.Errorf("param %s grad[%d]: analytic %v, numeric %v", p.Name, i, p.Grad.Data()[i], num)
			}
		}
	}
	_ = loss
}

func sampleIndices(rng *rand.Rand, n, k int) []int {
	if n <= k {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	seen := map[int]bool{}
	var idx []int
	for len(idx) < k {
		i := rng.Intn(n)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

func randInput(seed int64, shape ...int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(shape...)
	x.RandNormal(rng, 0, 1)
	return x
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gradCheck(t, NewLinear(rng, 6, 4), randInput(2, 3, 6), 1e-4)
}

func TestConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		l    *Conv2D[float64]
	}{
		{"valid5x5", NewConv2D(rng, 2, 3, 5)},
		{"same3x3", NewConv2D(rng, 2, 3, 3, WithPadding(1))},
		{"stride2", NewConv2D(rng, 2, 4, 3, WithStride(2), WithPadding(1))},
		{"nobias1x1", NewConv2D(rng, 2, 3, 1, WithoutBias())},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gradCheck(t, tt.l, randInput(3, 2, 2, 8, 8), 1e-4)
		})
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	gradCheck(t, NewBatchNorm2D(3), randInput(4, 2, 3, 4, 4), 1e-3)
}

func TestPoolGradCheck(t *testing.T) {
	t.Run("max", func(t *testing.T) {
		gradCheck(t, NewMaxPool2D(2, 2), randInput(5, 2, 2, 6, 6), 1e-4)
	})
	t.Run("avg", func(t *testing.T) {
		gradCheck(t, NewAvgPool2D(2, 2), randInput(6, 2, 2, 6, 6), 1e-4)
	})
	t.Run("global", func(t *testing.T) {
		gradCheck(t, NewGlobalAvgPool2D(), randInput(7, 2, 3, 4, 4), 1e-4)
	})
}

func TestReLUGradCheck(t *testing.T) {
	// Shift inputs away from the kink to keep finite differences valid.
	x := randInput(8, 2, 10)
	for i, v := range x.Data() {
		if math.Abs(v) < 0.05 {
			x.Data()[i] = 0.1
		}
	}
	gradCheck(t, NewReLU(), x, 1e-4)
}

func TestResidualBlockGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	t.Run("identity", func(t *testing.T) {
		gradCheck(t, NewResidualBlock(rng, 3, 3, 1), randInput(9, 2, 3, 6, 6), 1e-3)
	})
	t.Run("projection", func(t *testing.T) {
		gradCheck(t, NewResidualBlock(rng, 3, 5, 2), randInput(10, 2, 3, 6, 6), 1e-3)
	})
}

func TestDenseBlockGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gradCheck(t, NewDenseBlock(rng, 3, 2, 3), randInput(11, 2, 3, 5, 5), 1e-3)
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	// Uniform logits → loss = log(C); gradient = (p − onehot)/N.
	l := NewSoftmaxCrossEntropy()
	logits := tensor.New(2, 4)
	labels := []int{1, 3}
	loss := l.Forward(logits, labels)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Errorf("uniform-logit loss = %v, want log(4) = %v", loss, math.Log(4))
	}
	g := l.Backward()
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			want := 0.25 / 2
			if j == labels[i] {
				want = (0.25 - 1) / 2
			}
			if math.Abs(g.At(i, j)-want) > 1e-12 {
				t.Errorf("grad[%d,%d] = %v, want %v", i, j, g.At(i, j), want)
			}
		}
	}
}

func TestSoftmaxCrossEntropyGradCheck(t *testing.T) {
	l := NewSoftmaxCrossEntropy()
	logits := randInput(12, 3, 5)
	labels := []int{0, 2, 4}
	l.Forward(logits, labels)
	g := l.Backward()
	const h = 1e-6
	for i := range logits.Data() {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + h
		up := l.Forward(logits, labels)
		logits.Data()[i] = orig - h
		down := l.Forward(logits, labels)
		logits.Data()[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-g.Data()[i]) > 1e-5 {
			t.Errorf("CE grad[%d]: analytic %v, numeric %v", i, g.Data()[i], num)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 5, 2, // argmax 1
		9, 0, 0, // argmax 0
		0, 0, 7, // argmax 2
		3, 2, 1, // argmax 0
	}, 4, 3)
	got := Accuracy(logits, []int{1, 0, 2, 2})
	if got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
}
