package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedsu/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(1)), 0.5)
	x := randInput(1, 4, 8)
	y := d.Forward(x, false)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("eval-mode dropout must be the identity")
		}
	}
}

func TestDropoutTrainDropsAndScales(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(2)), 0.5)
	x := tensor.Full(1, 1, 1000)
	y := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected value %v (want 0 or 2)", v)
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Errorf("dropped %d of 1000 at p=0.5", zeros)
	}
	if zeros+twos != 1000 {
		t.Error("all values must be dropped or scaled")
	}
}

// Property: dropout preserves activation expectation — the mean of many
// forward passes approaches the input.
func TestDropoutUnbiased(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(3)), 0.3)
	x := tensor.Full(3, 1, 16)
	sum := make([]float64, 16)
	const n = 5000
	for i := 0; i < n; i++ {
		y := d.Forward(x, true)
		for j, v := range y.Data() {
			sum[j] += v
		}
	}
	for j := range sum {
		if math.Abs(sum[j]/n-3) > 0.2 {
			t.Errorf("mean[%d] = %v, want ≈3", j, sum[j]/n)
		}
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(4)), 0.4)
	x := randInput(5, 1, 64)
	y := d.Forward(x, true)
	g := tensor.Full(1, 1, 64)
	dx := d.Backward(g)
	scale := 1.0 / 0.6
	for i := range y.Data() {
		if y.Data()[i] == 0 {
			if dx.Data()[i] != 0 {
				t.Fatalf("dropped unit %d leaked gradient", i)
			}
		} else if math.Abs(dx.Data()[i]-scale) > 1e-12 {
			t.Fatalf("kept unit %d gradient = %v, want %v", i, dx.Data()[i], scale)
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("p=1 must panic")
		}
	}()
	NewDropout(rand.New(rand.NewSource(1)), 1)
}
