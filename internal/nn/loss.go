package nn

import (
	"math"

	"fedsu/internal/tensor"
)

// SoftmaxCrossEntropy fuses the softmax activation with the cross-entropy
// loss over integer class labels, the standard classification head.
//
// The per-row max, the exponentials, the partition sum, and the loss itself
// all compute in float64 at either storage width; only the cached
// probability matrix (which doubles as the gradient seed) lives at E. At
// float32 the probabilities therefore carry one extra rounding — they round
// once as unnormalized exponentials and once after normalization — which
// keeps them where the activations live without giving up full-width loss
// accumulation.
type SoftmaxCrossEntropy[E tensor.Elem] struct {
	lastProbs  *tensor.Tensor
	lastLabels []int
}

var (
	_ lossHead = (*SoftmaxCrossEntropy[float64])(nil)
	_ lossHead = (*SoftmaxCrossEntropy[float32])(nil)
)

// NewSoftmaxCrossEntropy constructs the fused loss at float64.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy[float64] {
	return newSoftmaxCrossEntropyOf[float64]()
}

func newSoftmaxCrossEntropyOf[E tensor.Elem]() *SoftmaxCrossEntropy[E] {
	return &SoftmaxCrossEntropy[E]{}
}

// Forward computes the mean cross-entropy of logits (N, classes) against
// labels and caches the probabilities for Backward.
func (s *SoftmaxCrossEntropy[E]) Forward(logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	probs := tensor.NewOf(tensor.DTypeOf[E](), n, c)
	ld, pd := tensor.DataOf[E](logits), tensor.DataOf[E](probs)
	loss := 0.0
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		maxv := math.Inf(-1)
		for _, v := range row {
			if f := toF64(v); f > maxv {
				maxv = f
			}
		}
		sum := 0.0
		prow := pd[i*c : (i+1)*c]
		for j, v := range row {
			e := math.Exp(toF64(v) - maxv)
			prow[j] = roundE[E](e)
			sum += e
		}
		inv := 1.0 / sum
		for j := range prow {
			prow[j] = roundE[E](toF64(prow[j]) * inv)
		}
		p := toF64(prow[labels[i]])
		// The clamp also catches float32 probabilities that flushed to zero.
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	s.lastProbs = probs
	s.lastLabels = append(s.lastLabels[:0], labels...)
	return loss / float64(n)
}

// Backward returns dLoss/dLogits = (probs − onehot)/N.
func (s *SoftmaxCrossEntropy[E]) Backward() *tensor.Tensor {
	n, c := s.lastProbs.Dim(0), s.lastProbs.Dim(1)
	grad := s.lastProbs.Clone()
	gd := tensor.DataOf[E](grad)
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		gd[i*c+s.lastLabels[i]] -= 1
		row := gd[i*c : (i+1)*c]
		for j := range row {
			row[j] = roundE[E](toF64(row[j]) * inv)
		}
	}
	return grad
}

// Accuracy returns the fraction of rows of logits whose argmax matches the
// label, at either logits dtype.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if logits.DType() == tensor.Float32 {
		return accuracyOf[float32](logits, labels)
	}
	return accuracyOf[float64](logits, labels)
}

func accuracyOf[E tensor.Elem](logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	ld := tensor.DataOf[E](logits)
	correct := 0
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		best, bj := math.Inf(-1), 0
		for j, v := range row {
			if f := toF64(v); f > best {
				best, bj = f, j
			}
		}
		if bj == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
