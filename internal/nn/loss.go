package nn

import (
	"math"

	"fedsu/internal/tensor"
)

// SoftmaxCrossEntropy fuses the softmax activation with the cross-entropy
// loss over integer class labels, the standard classification head.
type SoftmaxCrossEntropy struct {
	lastProbs  *tensor.Tensor
	lastLabels []int
}

// NewSoftmaxCrossEntropy constructs the fused loss.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy { return &SoftmaxCrossEntropy{} }

// Forward computes the mean cross-entropy of logits (N, classes) against
// labels and caches the probabilities for Backward.
func (s *SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	probs := tensor.New(n, c)
	ld, pd := logits.Data(), probs.Data()
	loss := 0.0
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		prow := pd[i*c : (i+1)*c]
		for j, v := range row {
			e := math.Exp(v - maxv)
			prow[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range prow {
			prow[j] *= inv
		}
		p := prow[labels[i]]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	s.lastProbs = probs
	s.lastLabels = append(s.lastLabels[:0], labels...)
	return loss / float64(n)
}

// Backward returns dLoss/dLogits = (probs − onehot)/N.
func (s *SoftmaxCrossEntropy) Backward() *tensor.Tensor {
	n, c := s.lastProbs.Dim(0), s.lastProbs.Dim(1)
	grad := s.lastProbs.Clone()
	gd := grad.Data()
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		gd[i*c+s.lastLabels[i]] -= 1
		row := gd[i*c : (i+1)*c]
		for j := range row {
			row[j] *= inv
		}
	}
	return grad
}

// Accuracy returns the fraction of rows of logits whose argmax matches the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Dim(0), logits.Dim(1)
	ld := logits.Data()
	correct := 0
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		best, bj := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bj = v, j
			}
		}
		if bj == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
