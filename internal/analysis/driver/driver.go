// Package driver loads type-checked packages for fedsu-lint without any
// dependency beyond the Go toolchain itself. It shells out to
// `go list -export -deps`, which makes the go command compile (or reuse from
// the build cache) export data for every package in the dependency graph,
// then parses the target packages from source and type-checks them against
// that export data — the same strategy golang.org/x/tools/go/packages uses,
// reduced to what a multichecker needs.
package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns (e.g. "./...") in dir, type-checks
// every matched non-standard-library package, and returns them in
// `go list` order. Test files are not analyzed: the lint contracts govern
// production code, and skipping them keeps the load graph free of
// test-only dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,Standard,Module,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves every import from
// the export-data files produced by `go list -export`.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// NewInfo returns a types.Info with every map the analyzers consult
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// check parses files from dir and type-checks them as importPath.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		asts = append(asts, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: asts, Types: tpkg, TypesInfo: info}, nil
}
