package ctxdispatch_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/ctxdispatch"
)

func TestCtxDispatch(t *testing.T) {
	analysistest.Run(t, "testdata", ctxdispatch.Analyzer,
		"fedsu/internal/fl", "fedsu/internal/exp")
}
