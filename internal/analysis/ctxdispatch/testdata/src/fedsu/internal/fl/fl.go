// Package fl is the in-scope half of the ctxdispatch corpus: direct
// collective calls here must be flagged, dispatch-helper calls must not.
package fl

import (
	"context"

	"fedsu/internal/sparse"
)

// direct makes every forbidden call shape.
func direct(agg sparse.Aggregator, s sparse.Syncer) {
	agg.AggregateModel(0, 1, nil) // want `direct call to AggregateModel bypasses ctx-aware dispatch; use sparse.AggModel`
	agg.AggregateError(0, 1, nil) // want `direct call to AggregateError bypasses ctx-aware dispatch; use sparse.AggError`
	s.Sync(1, nil, true)          // want `direct call to Sync bypasses ctx-aware dispatch; use sparse.SyncContext`
}

// dispatched is the required idiom.
func dispatched(ctx context.Context, agg sparse.Aggregator, s sparse.Syncer) {
	sparse.AggModel(ctx, agg, 0, 1, nil)
	sparse.AggError(ctx, agg, 0, 1, nil)
	sparse.SyncContext(ctx, s, 1, nil, true)
}

// suppressed documents a sanctioned direct call.
func suppressed(agg sparse.Aggregator) {
	agg.AggregateModel(0, 1, nil) //lint:allow ctxdispatch -- corpus escape-hatch check
}

// server implements the interface; method declarations are not calls and
// must not be flagged.
type server struct{}

func (server) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return values, nil
}

func (server) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return values, nil
}

// journal has an unrelated Sync with a different arity (the os.File.Sync
// shape); it must not be flagged.
type journal struct{}

func (journal) Sync() error { return nil }

func flush(j journal) error { return j.Sync() }
