// Package sparse is a miniature replica of the real dispatch API for the
// ctxdispatch corpus. The dispatch helpers themselves legitimately make
// the direct calls — they are the single sanctioned call site, and they
// live outside the analyzer's fl/flrpc scope.
package sparse

import "context"

// Traffic mirrors the real traffic accounting struct.
type Traffic struct{ UpBytes, DownBytes int }

// Aggregator mirrors the real collective interface.
type Aggregator interface {
	AggregateModel(clientID, round int, values []float64) ([]float64, error)
	AggregateError(clientID, round int, values []float64) ([]float64, error)
}

// ContextAggregator is the ctx-aware fast path.
type ContextAggregator interface {
	AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error)
	AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error)
}

// Syncer mirrors the real strategy interface.
type Syncer interface {
	Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error)
}

// ContextSyncer is the ctx-aware fast path.
type ContextSyncer interface {
	SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, Traffic, error)
}

// AggModel dispatches a model submission.
func AggModel(ctx context.Context, agg Aggregator, clientID, round int, values []float64) ([]float64, error) {
	if ca, ok := agg.(ContextAggregator); ok {
		return ca.AggregateModelCtx(ctx, clientID, round, values)
	}
	return agg.AggregateModel(clientID, round, values)
}

// AggError dispatches an error-feedback submission.
func AggError(ctx context.Context, agg Aggregator, clientID, round int, values []float64) ([]float64, error) {
	if ca, ok := agg.(ContextAggregator); ok {
		return ca.AggregateErrorCtx(ctx, clientID, round, values)
	}
	return agg.AggregateError(clientID, round, values)
}

// SyncContext dispatches a strategy synchronization.
func SyncContext(ctx context.Context, s Syncer, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	if cs, ok := s.(ContextSyncer); ok {
		return cs.SyncCtx(ctx, round, local, contributor)
	}
	return s.Sync(round, local, contributor)
}
