// Package exp is outside the analyzer's scope: the experiment harness
// drives strategies synchronously on purpose, so direct calls here are
// legal and must produce no diagnostics.
package exp

import "fedsu/internal/sparse"

// drive calls the collectives directly — allowed outside fl/flrpc.
func drive(agg sparse.Aggregator, s sparse.Syncer) {
	agg.AggregateModel(0, 1, nil)
	s.Sync(1, nil, true)
}
