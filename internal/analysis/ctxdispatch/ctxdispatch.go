// Package ctxdispatch enforces the collective-dispatch contract inside the
// federated engine (internal/fl) and the TCP transport (internal/flrpc):
// aggregator and syncer calls must go through the ctx-aware dispatch
// helpers — sparse.AggModel, sparse.AggError, sparse.SyncContext — never
// directly through Aggregator.AggregateModel / Aggregator.AggregateError /
// Syncer.Sync.
//
// The dispatchers are what make cancellation work end-to-end: they route to
// the ContextAggregator/ContextSyncer fast path when the implementation has
// one, so a cancelled round actually unblocks a client parked on a barrier
// instead of stranding it (the PR 2 fault-tolerance machinery depends on
// this). A direct call compiles and passes every happy-path test — it just
// silently loses cancellation — which is exactly the class of regression a
// human reviewer misses.
//
// Implementations of the interface methods themselves (fl.Server,
// flrpc.Client) are declarations, not calls, and are not flagged. A
// deliberate direct call can be suppressed with
// `//lint:allow ctxdispatch -- <reason>`.
package ctxdispatch

import (
	"go/ast"
	"go/types"

	"fedsu/internal/analysis"
)

// Analyzer is the ctxdispatch check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdispatch",
	Doc: "require sparse.AggModel/AggError/SyncContext dispatch in internal/fl and internal/flrpc\n\n" +
		"Direct Aggregator.AggregateModel/AggregateError and Syncer.Sync calls " +
		"bypass the ContextAggregator/ContextSyncer fast path and lose " +
		"cancellation; route through the sparse package's dispatch helpers.",
	Run: run,
}

// scope is the set of packages the contract governs.
var scope = map[string]bool{
	"fedsu/internal/fl":    true,
	"fedsu/internal/flrpc": true,
}

// dispatcher names the required helper for each forbidden direct call.
var dispatcher = map[string]string{
	"AggregateModel": "sparse.AggModel",
	"AggregateError": "sparse.AggError",
	"Sync":           "sparse.SyncContext",
}

func run(pass *analysis.Pass) error {
	if !scope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			helper, forbidden := dispatcher[sel.Sel.Name]
			if !forbidden {
				return true
			}
			// Must be a method selected from a value (not a package-qualified
			// function, not a method expression).
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.MethodVal {
				return true
			}
			// The collective methods all take exactly three parameters
			// ((clientID, round, values) / (round, local, contributor));
			// this keeps unrelated methods like os.File.Sync out.
			sig, ok := selection.Obj().Type().(*types.Signature)
			if !ok || sig.Params().Len() != 3 {
				return true
			}
			pass.Reportf(call.Pos(), "direct call to %s bypasses ctx-aware dispatch; use %s",
				sel.Sel.Name, helper)
			return true
		})
	}
	return nil
}
