// Package goleak checks that every goroutine spawned in internal/fl,
// internal/flrpc, internal/exp, and internal/par has a bounded lifetime.
// A `go` statement passes when the launched body exhibits one of the
// project's three sanctioned lifetime shapes:
//
//   - joined: the body calls (*sync.WaitGroup).Done (usually deferred),
//     so a sibling Wait observes its completion — the engine's per-client
//     fan-out and the grid scheduler's slot workers;
//   - bounded: the body contains a select with a receive clause, so it
//     parks on a quit/ctx.Done()-style signal instead of spinning forever
//     — the par pool workers and the flrpc heartbeat loop;
//   - completing: the body's final action (directly or via defer) is a
//     channel send or close, signalling termination to a consumer — the
//     async engine's loss futures and the flrpc serve loop's done close.
//
// Everything else is a fire-and-forget goroutine: it outlives its
// spawning call with nothing observing its termination, which is exactly
// the shape that leaks goroutines (and their model-sized captures) under
// the ROADMAP's many-servers-per-process scale-out. The check resolves
// `go f(...)` through same-package function declarations; a goroutine
// running another package's code cannot be verified intra-procedurally
// and must be annotated (`//lint:allow goleak -- <reason>`) or wrapped.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedsu/internal/analysis"
)

// Analyzer is the goleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "flag fire-and-forget goroutines: every go statement must be joined, quit-bounded, or completion-signalling\n\n" +
		"Scoped to internal/fl, internal/flrpc, internal/exp, internal/par. " +
		"A goroutine passes when its body calls WaitGroup.Done, parks on a " +
		"select receive (quit channel / ctx.Done()), or finishes by sending " +
		"on or closing a channel.",
	Run: run,
}

// scope is the set of packages the contract governs.
var scope = map[string]bool{
	"fedsu/internal/fl":    true,
	"fedsu/internal/flrpc": true,
	"fedsu/internal/exp":   true,
	"fedsu/internal/par":   true,
}

func run(pass *analysis.Pass) error {
	if !scope[pass.Pkg.Path()] {
		return nil
	}
	// Index this package's function declarations so `go m.method()` and
	// `go helper()` resolve to a checkable body.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				body = lit.Body
			} else if fn := analysis.CalledFunc(pass.TypesInfo, g.Call); fn != nil {
				fd, local := decls[fn]
				if !local {
					pass.Reportf(g.Pos(), "goroutine runs %s, defined outside this package: its lifetime cannot be verified; wrap it in a joined or quit-bounded function, or annotate the sanctioned launch", fn.Name())
					return true
				}
				body = fd.Body
			} else {
				pass.Reportf(g.Pos(), "goroutine launches an indirect call: its lifetime cannot be verified; wrap it in a joined or quit-bounded function")
				return true
			}
			if !sanctioned(pass.TypesInfo, body) {
				pass.Reportf(g.Pos(), "fire-and-forget goroutine: join it with a WaitGroup, bound it with a quit/ctx.Done() select, or signal completion on a channel")
			}
			return true
		})
	}
	return nil
}

// sanctioned reports whether body matches one of the three bounded
// lifetime shapes (see the package comment).
func sanctioned(info *types.Info, body *ast.BlockStmt) bool {
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done(): joined.
			if fn := analysis.CalledFunc(info, n); fn != nil && fn.Name() == "Done" &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				ok = true
			}
		case *ast.SelectStmt:
			// A receive clause: the goroutine parks on communication (the
			// quit-channel / ctx.Done() idiom) rather than spinning.
			for _, cl := range n.Body.List {
				cc, isComm := cl.(*ast.CommClause)
				if !isComm || cc.Comm == nil {
					continue
				}
				if commIsReceive(cc.Comm) {
					ok = true
				}
			}
		case *ast.DeferStmt:
			// defer close(ch): completion signalled at every exit.
			if isClose(n.Call) {
				ok = true
			}
		}
		return !ok
	})
	if ok {
		return true
	}
	// Completing shape: the body's final statement sends on or closes a
	// channel.
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.SendStmt:
		return true
	case *ast.ExprStmt:
		if call, isCall := last.X.(*ast.CallExpr); isCall && isClose(call) {
			return true
		}
	}
	return false
}

// commIsReceive reports whether a select comm statement is a receive
// (bare `<-ch` or an assignment form `v := <-ch`), as opposed to a send.
func commIsReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, isUnary := s.X.(*ast.UnaryExpr)
		return isUnary && u.Op == token.ARROW
	case *ast.AssignStmt:
		return true
	}
	return false
}

func isClose(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "close"
}
