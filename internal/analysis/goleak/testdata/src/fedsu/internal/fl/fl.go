// Corpus for the goleak analyzer: goroutine lifetime shapes in a
// miniature replica of the fl package (the analyzer is scoped to the real
// import path, which this corpus shares).
package fl

import (
	"context"
	"net/rpc"
	"sync"
)

type engine struct {
	quit chan struct{}
	out  chan float64
}

func work() float64 { return 0 }

// --- negative cases: the three sanctioned lifetime shapes ---

// Joined: WaitGroup.Done observed by a sibling Wait.
func okJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Bounded: the loop parks on a quit-channel select.
func okQuitBounded(e *engine) {
	go func() {
		for {
			select {
			case <-e.quit:
				return
			case e.out <- work():
			}
		}
	}()
}

// Bounded: ctx.Done() select.
func okCtxBounded(ctx context.Context, e *engine) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// Completing: the future pattern — the final action sends the result.
func okFuture(e *engine) chan float64 {
	ch := make(chan float64, 1)
	go func() {
		loss := work()
		ch <- loss
	}()
	return ch
}

// Completing: terminal close observed via the done channel.
func okCloseSignal(e *engine) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// Completing: deferred close covers every exit path.
func okDeferredClose(e *engine, c bool) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		if c {
			return
		}
		work()
	}()
	<-done
}

// A same-package named function with a bounded body resolves through the
// declaration index.
func (e *engine) loop() {
	for {
		select {
		case <-e.quit:
			return
		case e.out <- work():
		}
	}
}

func okNamedBounded(e *engine) {
	go e.loop()
}

// --- positive cases ---

// Fire-and-forget: spins forever, nothing observes termination.
func badSpin(e *engine) {
	go func() { // want `fire-and-forget goroutine`
		for {
			work()
		}
	}()
}

// Fire-and-forget: terminates, but nothing observes it.
func badUnobserved() {
	go func() { // want `fire-and-forget goroutine`
		work()
	}()
}

// A same-package named function with a fire-and-forget body.
func (e *engine) spinLoop() {
	for {
		work()
	}
}

func badNamedSpin(e *engine) {
	go e.spinLoop() // want `fire-and-forget goroutine`
}

// Cross-package callee: lifetime cannot be verified intra-procedurally.
func badCrossPackage(s *rpc.Server, conn interface{ Read([]byte) (int, error) }) {
	go s.Accept(nil) // want `defined outside this package`
}

// The sanctioned cross-package launch, annotated with a reason.
func okAnnotatedCrossPackage(s *rpc.Server) {
	go s.Accept(nil) //lint:allow goleak -- corpus replica: the rpc accept loop is bounded by listener close
}

// --- hierarchical-collective cases (PR 9) ---

func forwardPartial(sum []float64) { work() }

// The relay ingest fan-in: one submitter per aligned block, joined before
// the round closes — the sanctioned tier shape.
func okJoinedBlockSubmitters(blocks [][]float64) {
	var wg sync.WaitGroup
	for _, sum := range blocks {
		wg.Add(1)
		go func(sum []float64) {
			defer wg.Done()
			forwardPartial(sum)
		}(sum)
	}
	wg.Wait()
}

// A detached upstream forward: nothing observes whether the partial ever
// landed, and a wedged upstream accumulates one goroutine per round.
func badDetachedForward(blocks [][]float64) {
	for _, sum := range blocks {
		go func(sum []float64) { // want `fire-and-forget goroutine`
			forwardPartial(sum)
		}(sum)
	}
}

// The tree's deadline timer shape: bounded by the round's quit signal.
func okExpiryTimerBounded(e *engine) {
	go func() {
		select {
		case <-e.quit:
		case e.out <- work():
		}
	}()
}
