package goleak_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", goleak.Analyzer, "fedsu/internal/fl")
}
