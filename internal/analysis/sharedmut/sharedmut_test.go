package sharedmut_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/sharedmut"
)

func TestSharedmut(t *testing.T) {
	analysistest.Run(t, "testdata", sharedmut.Analyzer, "consumer")
}
