// Package sparse is a corpus stub: the dispatcher signatures the
// sharedmut analyzer matches by package path + name.
package sparse

import "context"

type Traffic struct{ Up, Down int }

func SyncContext(ctx context.Context, s any, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	return nil, Traffic{}, nil
}

func AggModel(ctx context.Context, agg any, clientID, round int, values []float64) ([]float64, error) {
	return nil, nil
}
