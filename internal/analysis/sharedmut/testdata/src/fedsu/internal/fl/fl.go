// Package fl is a corpus stub: the shared-snapshot getter signatures the
// sharedmut analyzer matches by package path + name.
package fl

import "context"

type Server struct {
	global []float64
}

func (s *Server) AsyncGlobal() []float64 { return s.global }

func (s *Server) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return s.global, nil
}

func (s *Server) AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return s.global, nil
}

// Tree is the hierarchical collective's stub: the partial ingest path
// publishes the same shared root global to every block submitter.
type Tree struct {
	global []float64
}

func (t *Tree) AggregatePartial(round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
	return t.global, nil
}

func (t *Tree) AggregatePartialCtx(ctx context.Context, round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
	return t.global, nil
}
