// Corpus for the sharedmut analyzer: mutations of shared aggregation
// results. The analyzer is table-matched against the fl getters and
// sparse dispatchers, so this consumer corpus can live at any path.
package consumer

import (
	"context"

	"fedsu/internal/fl"
	"fedsu/internal/sparse"
)

// --- positive cases ---

func badElementWrite(s *fl.Server) {
	g := s.AsyncGlobal()
	g[0] = 1 // want `write through "g", a shared aggregation result`
}

func badCompoundWrite(s *fl.Server) {
	g := s.AsyncGlobal()
	g[3] += 0.5 // want `write through "g", a shared aggregation result`
}

func badIncDec(s *fl.Server) {
	g := s.AsyncGlobal()
	g[1]++ // want `write through "g", a shared aggregation result`
}

// Aliases stay shared: an identifier copy ...
func badAliasWrite(s *fl.Server) {
	g := s.AsyncGlobal()
	h := g
	h[0] = 1 // want `write through "h", a shared aggregation result`
}

// ... and a subslice share the backing array.
func badSubsliceWrite(s *fl.Server) {
	g := s.AsyncGlobal()
	tail := g[1:]
	tail[0] = 1 // want `write through "tail", a shared aggregation result`
}

func badCopyInto(s *fl.Server, src []float64) {
	g := s.AsyncGlobal()
	copy(g, src) // want `copy into "g", a shared aggregation result`
}

func badAppend(s *fl.Server) []float64 {
	g := s.AsyncGlobal()
	return append(g, 1) // want `append to "g", a shared aggregation result`
}

// Direct write through the call result, no variable involved.
func badDirectWrite(s *fl.Server) {
	s.AsyncGlobal()[0] = 1 // want `write through the aggregation result`
}

// The aggregate entry points hand out the same shared slice.
func badAggregateWrite(s *fl.Server, vec []float64) error {
	res, err := s.AggregateModel(0, 1, vec)
	if err != nil {
		return err
	}
	res[0] = 0 // want `write through "res", a shared aggregation result`
	return nil
}

// Tuple results through the dispatcher: only result 0 is the shared
// slice.
func badSyncContextWrite(ctx context.Context, vec []float64) {
	out, _, _ := sparse.SyncContext(ctx, nil, 1, vec, true)
	out[0] = 1 // want `write through "out", a shared aggregation result`
}

// A closure-captured alias is still an alias.
func badClosureWrite(s *fl.Server) func() {
	g := s.AsyncGlobal()
	return func() {
		g[0] = 1 // want `write through "g", a shared aggregation result`
	}
}

// --- negative cases ---

// Reading is fine.
func okRead(s *fl.Server) float64 {
	g := s.AsyncGlobal()
	total := 0.0
	for _, v := range g {
		total += v
	}
	return total + g[0]
}

// Copying OUT of the shared slice is fine.
func okCopyOut(s *fl.Server) []float64 {
	g := s.AsyncGlobal()
	own := make([]float64, len(g))
	copy(own, g)
	own[0] = 1
	return own
}

// The canonical private copy: append from a nil base.
func okFreshAppend(s *fl.Server) []float64 {
	g := s.AsyncGlobal()
	own := append([]float64(nil), g...)
	own[0] = 1
	return own
}

// Locals that never touch a shared source are untainted.
func okLocalWrite() {
	v := make([]float64, 8)
	v[0] = 1
	v = append(v, 2)
}

// The traffic result of SyncContext is the caller's own value.
func okTrafficUse(ctx context.Context, vec []float64) int {
	_, tr, _ := sparse.SyncContext(ctx, nil, 1, vec, true)
	tr.Up += 10
	return tr.Up
}

// Sanctioned exception, annotated with a reason.
func okAnnotatedWrite(s *fl.Server) {
	g := s.AsyncGlobal()
	g[0] = 1 //lint:allow sharedmut -- corpus replica of a single-owner test fixture that never shares the snapshot
}

// --- hierarchical-collective cases (PR 9) ---

// The relay ingest path hands back the same root global as the member
// entry points: a relay "normalising" through it corrupts every tier.
func badPartialWrite(t *fl.Tree, sum []float64) error {
	global, err := t.AggregatePartial(0, "model", 0, sum, 8)
	if err != nil {
		return err
	}
	global[0] = 0 // want `write through "global", a shared aggregation result`
	return nil
}

func badPartialSubsliceWrite(ctx context.Context, t *fl.Tree, sum []float64) {
	global, _ := t.AggregatePartialCtx(ctx, 0, "model", 0, sum, 8)
	head := global[:4]
	copy(head, sum) // want `copy into "head", a shared aggregation result`
}

// The relay's own forwarding copy is its private buffer: fold into it,
// ship it, recycle it — only the returned global is shared.
func okPartialCopyOut(t *fl.Tree, sum []float64) []float64 {
	global, _ := t.AggregatePartial(0, "model", 0, sum, 8)
	next := append([]float64(nil), global...)
	next[0] += 1
	return next
}
