// Package sharedmut enforces the PR 7 "apply allocates fresh" contract:
// aggregation results handed out by the server are shared, immutable
// snapshots. The async accumulator's apply() publishes a freshly allocated
// global and then hands the SAME slice to every caller that asks for that
// version — fl.Server.AsyncGlobal, the AggregateModel/AggregateError
// entry points (whose op.result is likewise one slice delivered to every
// barrier participant), and the sparse dispatch helpers (AggModel,
// AggError, SyncContext) that forward them. A caller that writes through
// such a slice corrupts the model under every other client simultaneously
// — silently, because each client's own view stays self-consistent.
//
// The hierarchical collective (PR 9) widens the surface: fl.Tree's
// Aggregate entry points publish the root global the same way, and
// Tree.AggregatePartial / AggregatePartialCtx — the relay ingest path —
// hand the identical slice back to every block submitter.
//
// The check taints, per function, every variable that may alias a shared
// aggregation result (via the cfg def-use index: direct assignment,
// identifier copies, subslices, tuple results) and flags the mutating
// uses:
//
//   - element or subrange writes: g[i] = v, g[i] += v, g[i]++
//   - copy(g, ...) — copying INTO the shared backing array
//   - append(g, ...) — append may write the shared backing array in
//     place when spare capacity exists, and aliases it otherwise
//
// Reading is always fine, as is copying OUT (copy(dst, g),
// append(fresh, g...)). Mutate a private copy instead:
// own := append([]float64(nil), g...).
package sharedmut

import (
	"go/ast"
	"go/types"

	"fedsu/internal/analysis"
	"fedsu/internal/analysis/cfg"
)

// Analyzer is the sharedmut check.
var Analyzer = &analysis.Analyzer{
	Name: "sharedmut",
	Doc: "flag writes through shared aggregation results (AsyncGlobal, AggregateModel*, sparse dispatchers)\n\n" +
		"The server hands every caller the same immutable snapshot slice; " +
		"element writes, copy-into, and append through an alias corrupt the " +
		"model under every other client. Copy before mutating.",
	Run: run,
}

// sources maps defining package path -> name -> tuple index of the shared
// slice among the call's results.
var sources = map[string]map[string]int{
	"fedsu/internal/fl": {
		"AsyncGlobal":         0,
		"AggregateModel":      0,
		"AggregateError":      0,
		"AggregateModelCtx":   0,
		"AggregateErrorCtx":   0,
		"AggregatePartial":    0,
		"AggregatePartialCtx": 0,
	},
	"fedsu/internal/sparse": {
		"AggModel":    0,
		"AggError":    0,
		"SyncContext": 0,
	},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, fd.Body)
		}
	}
	return nil
}

// isSource reports whether e is a call returning a shared aggregation
// result at tuple position result.
func isSource(pass *analysis.Pass, e ast.Expr, result int) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalledFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	idx, ok := sources[fn.Pkg().Path()][fn.Name()]
	return ok && idx == result
}

// check analyzes one function declaration body, nested literals included
// (an alias captured by a closure is still an alias, and the def-use
// index spans the whole body).
func check(pass *analysis.Pass, body *ast.BlockStmt) {
	du := cfg.NewDefUse(body, pass.TypesInfo)
	tainted := du.Taint(pass.TypesInfo, func(e ast.Expr, result int) bool {
		return isSource(pass, e, result)
	})
	if len(tainted) == 0 && !mentionsSourceCall(pass, body) {
		return
	}
	// sharedBase resolves an expression to the tainted variable (through
	// parens and subslices) or to a direct source call, returning the name
	// to report.
	sharedBase := func(e ast.Expr) (string, bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[x]
				if obj == nil {
					obj = pass.TypesInfo.Defs[x]
				}
				if obj == nil {
					return "", false
				}
				_, isTainted := tainted[obj]
				return x.Name, isTainted
			case *ast.CallExpr:
				if isSource(pass, x, 0) {
					return "the aggregation result", true
				}
				return "", false
			default:
				return "", false
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if name, shared := sharedBase(idx.X); shared {
					pass.Reportf(lhs.Pos(), "write through %s, a shared aggregation result: apply hands every caller the same immutable snapshot; copy before mutating", nameQ(name))
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := n.X.(*ast.IndexExpr); ok {
				if name, shared := sharedBase(idx.X); shared {
					pass.Reportf(n.Pos(), "write through %s, a shared aggregation result: apply hands every caller the same immutable snapshot; copy before mutating", nameQ(name))
				}
			}
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "copy":
				if name, shared := sharedBase(n.Args[0]); shared {
					pass.Reportf(n.Pos(), "copy into %s, a shared aggregation result: the destination backing array is visible to every other caller; copy into a fresh slice instead", nameQ(name))
				}
			case "append":
				if name, shared := sharedBase(n.Args[0]); shared {
					pass.Reportf(n.Pos(), "append to %s, a shared aggregation result: append may write the shared backing array in place; start from a fresh copy (append([]float64(nil), g...))", nameQ(name))
				}
			}
		}
		return true
	})
}

// mentionsSourceCall reports whether the body contains a direct source
// call at all (covers `fl.Server.AsyncGlobal()[0] = v` style writes with
// no variable to taint).
func mentionsSourceCall(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSource(pass, call, 0) {
			found = true
		}
		return !found
	})
	return found
}

func nameQ(name string) string {
	if name == "the aggregation result" {
		return name
	}
	return "\"" + name + "\""
}
