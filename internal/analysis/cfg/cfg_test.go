package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFunc parses src (a complete file), builds the CFG of the function
// named name, and returns it.
func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return Build(fd.Body)
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// reachable returns the set of blocks reachable from entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// kinds of the reachable blocks, for shape assertions.
func kindSet(g *Graph) map[string]bool {
	out := map[string]bool{}
	for b := range reachable(g) {
		out[b.Kind] = true
	}
	return out
}

func TestIfElseJoins(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	ks := kindSet(g)
	for _, want := range []string{"entry", "if.then", "if.else", "if.join", "exit"} {
		if !ks[want] {
			t.Errorf("missing reachable block kind %q (have %v)", want, ks)
		}
	}
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	if c {
		println(1)
	}
	println(2)
}`, "f")
	// The condition block must have both the then-block and the join as
	// successors.
	var cond *Block
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if s.Kind == "if.then" {
				cond = b
			}
		}
	}
	if cond == nil {
		t.Fatal("no block leads to if.then")
	}
	var hasJoin bool
	for _, s := range cond.Succs {
		if s.Kind == "if.join" {
			hasJoin = true
		}
	}
	if !hasJoin {
		t.Errorf("condition block lacks direct edge to if.join (succs %v)", kindsOf(cond.Succs))
	}
}

func TestForLoopHasBackEdge(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		println(i)
	}
	println("done")
}`, "f")
	var head *Block
	for b := range reachable(g) {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	// post must edge back to head.
	backEdge := false
	for b := range reachable(g) {
		if b.Kind != "for.post" {
			continue
		}
		for _, s := range b.Succs {
			if s == head {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Error("no back edge for.post -> for.head")
	}
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable after loop")
	}
}

func TestInfiniteLoopOnlyExitsViaBreak(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	for {
		if c {
			break
		}
	}
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Error("break does not reach exit")
	}
	// Without the break the exit must be unreachable.
	g2 := buildFunc(t, `package p
func f() {
	for {
		println(1)
	}
}`, "f")
	if reachable(g2)[g2.Exit] {
		t.Error("exit reachable out of an infinite loop with no break")
	}
}

func TestRangeMarkerAndJoin(t *testing.T) {
	g := buildFunc(t, `package p
func f(xs []int) {
	for _, x := range xs {
		println(x)
	}
}`, "f")
	var head *Block
	for b := range reachable(g) {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no range.head block")
	}
	marker := false
	for _, n := range head.Nodes {
		if _, ok := n.(*ast.RangeStmt); ok {
			marker = true
		}
	}
	if !marker {
		t.Error("range.head lacks the *ast.RangeStmt marker node")
	}
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable after range")
	}
}

func TestSwitchNoDefaultFallsThroughHead(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		println(1)
	case 2:
		println(2)
	}
}`, "f")
	// With no default, the head must edge straight to switch.join.
	joinDirect := false
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if s.Kind != "switch.join" {
				continue
			}
			if b.Kind != "switch.case" {
				joinDirect = true
			}
		}
	}
	if !joinDirect {
		t.Error("switch without default lacks head -> join edge")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		println(1)
		fallthrough
	case 2:
		println(2)
	default:
	}
}`, "f")
	// Some switch.case block must edge into another switch.case block.
	caseToCase := false
	for b := range reachable(g) {
		if b.Kind != "switch.case" {
			continue
		}
		for _, s := range b.Succs {
			if s.Kind == "switch.case" {
				caseToCase = true
			}
		}
	}
	if !caseToCase {
		t.Error("fallthrough edge between case blocks missing")
	}
}

func TestSelectMarkerAndComms(t *testing.T) {
	g := buildFunc(t, `package p
func f(a, b chan int) {
	select {
	case v := <-a:
		println(v)
	case b <- 1:
	}
}`, "f")
	var sel *ast.SelectStmt
	for b := range reachable(g) {
		for _, n := range b.Nodes {
			if s, ok := n.(*ast.SelectStmt); ok {
				sel = s
			}
		}
	}
	if sel == nil {
		t.Fatal("select marker not present in any block")
	}
	if HasDefault(sel) {
		t.Error("HasDefault true for a select with no default")
	}
	if len(g.SelectComm) != 2 {
		t.Errorf("SelectComm has %d comm statements, want 2", len(g.SelectComm))
	}
	clauses := 0
	for b := range reachable(g) {
		if b.Kind == "select.clause" {
			clauses++
		}
	}
	if clauses != 2 {
		t.Errorf("%d select.clause blocks, want 2", clauses)
	}
}

func TestGotoBackward(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
retry:
	println(1)
	if c {
		goto retry
	}
}`, "f")
	var label *Block
	for b := range reachable(g) {
		if strings.HasPrefix(b.Kind, "label.") {
			label = b
		}
	}
	if label == nil {
		t.Fatal("no label block")
	}
	// The goto must produce a second in-edge to the label block (one from
	// fallthrough above, one from the goto).
	inEdges := 0
	for b := range reachable(g) {
		for _, s := range b.Succs {
			if s == label {
				inEdges++
			}
		}
	}
	if inEdges < 2 {
		t.Errorf("label block has %d in-edges, want >= 2 (fallthrough + goto)", inEdges)
	}
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
}

func TestPanicTerminatesWithoutReachingExit(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	panic("boom")
}`, "f")
	if reachable(g)[g.Exit] {
		t.Error("exit reachable from a body that always panics")
	}
}

func TestReturnReachesExitSkipsRest(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Error("exit unreachable")
	}
	// The implicit fall-off edge must not make unreachable trailing blocks
	// reachable: every reachable non-exit block with no successors is a bug.
	for b := range reachable(g) {
		if b != g.Exit && len(b.Succs) == 0 && b.Kind != "unreachable" {
			t.Errorf("reachable block %q (index %d) has no successors", b.Kind, b.Index)
		}
	}
}

func TestDefersCollectedInOrder(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool) {
	defer println(1)
	if c {
		defer println(2)
	}
	defer println(3)
}`, "f")
	if len(g.Defers) != 3 {
		t.Fatalf("collected %d defers, want 3", len(g.Defers))
	}
	// Source order.
	for i := 1; i < len(g.Defers); i++ {
		if g.Defers[i].Pos() <= g.Defers[i-1].Pos() {
			t.Error("defers not in source order")
		}
	}
	// The conditional defer's statement must sit in the if.then block, not
	// the entry block (path sensitivity for analyzers that model defers).
	for b := range reachable(g) {
		if b.Kind != "if.then" {
			continue
		}
		found := false
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				found = true
			}
		}
		if !found {
			t.Error("conditional defer not in its branch block")
		}
	}
}

// TestForwardFixpointCounting runs the dataflow over a loop: a counting
// lattice (capped so it converges) must see the loop body's increment
// without diverging, and the join of the two if-arms must take the hull.
func TestForwardFixpointCounting(t *testing.T) {
	g := buildFunc(t, `package p
func f(c bool, n int) {
	acquire()
	if c {
		acquire()
	}
	for i := 0; i < n; i++ {
		acquire()
	}
}`, "f")
	// State: [min, max] acquires seen, capped at 3.
	type iv struct{ lo, hi int }
	isAcquire := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "acquire"
	}
	lat := Lattice[iv]{
		Transfer: func(b *Block, in iv) iv {
			out := in
			for _, n := range b.Nodes {
				Inspect(n, func(m ast.Node) bool {
					if isAcquire(m) {
						if out.lo < 3 {
							out.lo++
						}
						if out.hi < 3 {
							out.hi++
						}
					}
					return true
				})
			}
			return out
		},
		Join: func(a, b iv) iv {
			return iv{lo: min(a.lo, b.lo), hi: max(a.hi, b.hi)}
		},
		Equal: func(a, b iv) bool { return a == b },
	}
	in := Forward(g, iv{}, lat)
	exit, ok := in[g.Exit]
	if !ok {
		t.Fatal("exit state missing")
	}
	if exit.lo != 1 {
		t.Errorf("exit min = %d, want 1 (the unconditional acquire)", exit.lo)
	}
	if exit.hi != 3 {
		t.Errorf("exit max = %d, want 3 (conditional + capped loop)", exit.hi)
	}
}

// checkFunc type-checks src and returns the named function's body plus the
// types.Info for def-use tests.
func checkFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil
}

func TestDefUseTaintPropagation(t *testing.T) {
	fd, info := checkFunc(t, `package p
func source() []int { return nil }
func f() {
	g := source()
	h := g
	tail := h[1:]
	fresh := make([]int, 4)
	copied := fresh
	_ = g
	_ = tail
	_ = copied
}`, "f")
	d := NewDefUse(fd.Body, info)
	tainted := d.Taint(info, func(e ast.Expr, result int) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "source" && result == 0
	})
	names := map[string]bool{}
	for obj := range tainted {
		names[obj.Name()] = true
	}
	for _, want := range []string{"g", "h", "tail"} {
		if !names[want] {
			t.Errorf("%q not tainted (have %v)", want, names)
		}
	}
	for _, not := range []string{"fresh", "copied"} {
		if names[not] {
			t.Errorf("%q tainted but derives from make", not)
		}
	}
}

func TestDefUseClosureAliasSeen(t *testing.T) {
	fd, info := checkFunc(t, `package p
func source() []int { return nil }
func f() {
	var alias []int
	fn := func() {
		alias = source()
	}
	fn()
	_ = alias
}`, "f")
	d := NewDefUse(fd.Body, info)
	tainted := d.Taint(info, func(e ast.Expr, result int) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "source"
	})
	found := false
	for obj := range tainted {
		if obj.Name() == "alias" {
			found = true
		}
	}
	if !found {
		t.Error("assignment inside a closure not indexed")
	}
}

func kindsOf(blocks []*Block) []string {
	out := make([]string, len(blocks))
	for i, b := range blocks {
		out[i] = b.Kind
	}
	return out
}

func TestDefUseTaintTupleResult(t *testing.T) {
	fd, info := checkFunc(t, `package p
func pair() ([]int, error) { return nil, nil }
func f() {
	shared, err := pair()
	_ = shared
	_ = err
}`, "f")
	d := NewDefUse(fd.Body, info)
	// Only result 0 of pair() is a shared value; err must stay clean.
	tainted := d.Taint(info, func(e ast.Expr, result int) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "pair" && result == 0
	})
	names := map[string]bool{}
	for obj := range tainted {
		names[obj.Name()] = true
	}
	if !names["shared"] {
		t.Error("result 0 of the tuple definition not tainted")
	}
	if names["err"] {
		t.Error("result 1 tainted despite the source vouching only for result 0")
	}
}
