// Package cfg gives fedsu-lint analyzers a lightweight intra-procedural
// control-flow graph, a generic forward-dataflow fixpoint, and a def-use
// index — the dataflow substrate the concurrency-discipline analyzers
// (lockhold, tokenpair, sharedmut) run on. Like the rest of
// internal/analysis it uses nothing beyond go/ast and go/types, mirroring
// the shape of golang.org/x/tools/go/cfg closely enough that a migration
// to the real package is mechanical.
//
// # Graph shape
//
// Build decomposes one function body into basic blocks of straight-line
// nodes. A block's Nodes are simple statements and the *header* parts of
// control statements (an if's Init and Cond, a switch's Init and Tag, a
// case clause's match expressions); the controlled bodies live in
// successor blocks. Two control statements additionally appear in a block
// as bare marker nodes, because their header alone does not capture their
// runtime behaviour:
//
//   - *ast.SelectStmt: a select with no default clause blocks. The marker
//     sits in the block where control reaches the select; the per-clause
//     comm statements are placed in the clause bodies' blocks and recorded
//     in Graph.SelectComm (a comm's send/receive is performed by the
//     select, so an analyzer scanning for blocking channel operations must
//     treat it as already accounted for by the marker).
//   - *ast.RangeStmt: ranging over a channel is a blocking receive per
//     iteration. The marker sits in the loop-head block alongside the
//     range operand expression.
//
// Analyzers must not recurse through a marker (its nested bodies belong to
// other blocks) nor into *ast.FuncLit bodies (a separate function, built
// separately); Inspect implements exactly that traversal.
//
// panic(...) terminates its block with no successor: paths that end in a
// crash never reach Exit, so exit-state checks (balanced releases, held
// locks) do not fire for them — matching scratchpair's treatment.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Entry is 0).
	Index int
	// Kind labels the block's role for tests and debugging: "entry",
	// "exit", "if.then", "if.else", "if.join", "for.head", "for.body",
	// "for.post", "for.join", "range.head", "range.body", "switch.case",
	// "select.clause", "label.<name>", "unreachable", ...
	Kind string
	// Nodes are the block's straight-line statements and header
	// expressions, in execution order.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the function, in source
	// order. Deferred calls run at every exit; analyzers that model
	// releases scheduled by defer consult this list (path-sensitively,
	// the DeferStmt also appears as a node in its block).
	Defers []*ast.DeferStmt
	// SelectComm marks the comm statements of every select in the
	// function: their channel operation is performed by the select marker
	// (blocking or not per the default clause), not by the statement
	// itself.
	SelectComm map[ast.Stmt]bool
}

// Build constructs the CFG of body. A nil body (declaration without a
// body) yields a graph whose entry falls straight through to exit.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{SelectComm: map[ast.Stmt]bool{}}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	entry := b.newBlock("entry")
	g.Entry = entry
	g.Exit = b.newBlock("exit")
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, g.Exit)
	return g
}

// loopInfo carries a loop's (or switch's) branch targets.
type loopInfo struct {
	breakTarget    *Block
	continueTarget *Block // nil for switch/select (continue targets the enclosing loop)
}

type labelInfo struct {
	// block is the labeled statement's entry block (the goto target);
	// created on demand for forward gotos and patched when the label is
	// reached.
	block *Block
	// loop is non-nil while the labeled statement is a loop or switch in
	// scope, for labeled break/continue.
	loop *loopInfo
}

type builder struct {
	g      *Graph
	cur    *Block
	loops  []*loopInfo // innermost last
	labels map[string]*labelInfo
	// label pending for the next loop/switch statement (a LabeledStmt
	// wrapping it), so labeled break/continue resolve.
	pendingLabel string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// terminate ends the current path (return, panic, goto): subsequent
// statements in the source block are unreachable.
func (b *builder) terminate() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// A label pending from an enclosing LabeledStmt applies only to the
	// statement it directly wraps; consume it here.
	label := b.pendingLabel
	b.pendingLabel = ""

	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Start a fresh block so the label has a stable goto target.
		target := b.labelBlock(s.Label.Name)
		b.edge(b.cur, target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.terminate()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			// Crash path: no successor (deliberately not Exit; see the
			// package comment).
			b.terminate()
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, label)

	case *ast.RangeStmt:
		b.rangeStmt(s, label)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Tag)
		b.switchBody(s.Body, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, true)

	case *ast.SelectStmt:
		b.selectStmt(s, label)

	default:
		// Assignments, declarations, sends, inc/dec, go statements, empty
		// statements: straight-line nodes.
		b.add(s)
	}
}

func (b *builder) labelBlock(name string) *Block {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	if li.block == nil {
		li.block = b.newBlock("label." + name)
	}
	return li.block
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.labelBlock(s.Label.Name))
		}
		b.terminate()
	case token.BREAK:
		if li := b.branchLoop(s.Label); li != nil {
			b.edge(b.cur, li.breakTarget)
		}
		b.terminate()
	case token.CONTINUE:
		if li := b.branchLoop(s.Label); li != nil && li.continueTarget != nil {
			b.edge(b.cur, li.continueTarget)
		}
		b.terminate()
	case token.FALLTHROUGH:
		// Handled by switchBody (edge to the next case's block); the
		// statement itself terminates this clause's straight-line run.
		b.terminate()
	}
}

// branchLoop resolves the break/continue target: the named label's
// construct, or the innermost enclosing one.
func (b *builder) branchLoop(label *ast.Ident) *loopInfo {
	if label != nil {
		if li := b.labels[label.Name]; li != nil {
			return li.loop
		}
		return nil
	}
	if n := len(b.loops); n > 0 {
		return b.loops[n-1]
	}
	return nil
}

func (b *builder) pushLoop(li *loopInfo, label string) {
	b.loops = append(b.loops, li)
	if label != "" {
		b.labels[label].loop = li
	}
}

func (b *builder) popLoop(label string) {
	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		b.labels[label].loop = nil
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	join := b.newBlock("if.join")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.edge(b.cur, join)
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	post := b.newBlock("for.post")
	join := b.newBlock("for.join")
	b.edge(b.cur, head)
	head.Nodes = appendNode(head.Nodes, s.Cond)
	b.edge(head, body)
	if s.Cond != nil {
		// No condition means the loop only exits via break/return.
		b.edge(head, join)
	}
	li := &loopInfo{breakTarget: join, continueTarget: post}
	b.pushLoop(li, label)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, post)
	b.popLoop(label)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
	}
	b.edge(post, head)
	b.cur = join
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	b.edge(b.cur, head)
	// The operand is evaluated at the head; the marker carries the
	// range-over-channel blocking semantics.
	head.Nodes = appendNode(head.Nodes, s.X)
	head.Nodes = append(head.Nodes, s)
	b.edge(head, body)
	b.edge(head, join)
	li := &loopInfo{breakTarget: join, continueTarget: head}
	b.pushLoop(li, label)
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.popLoop(label)
	b.cur = join
}

// switchBody builds the clause blocks of a switch or type switch.
// mayFallThrough wires fallthrough edges between consecutive clauses.
func (b *builder) switchBody(body *ast.BlockStmt, label string, mayFallThrough bool) {
	head := b.cur
	join := b.newBlock("switch.join")
	li := &loopInfo{breakTarget: join}
	b.pushLoop(li, label)

	var clauseBlocks []*Block
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock("switch.case")
		clauseBlocks = append(clauseBlocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, blk)
	}
	if !hasDefault {
		b.edge(head, join)
	}
	i := 0
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := clauseBlocks[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.cur = blk
		if mayFallThrough && endsInFallthrough(cc.Body) && i+1 < len(clauseBlocks) {
			// The clause body runs, then control transfers to the next
			// clause's body (skipping its match expressions at runtime —
			// close enough for dataflow: may-analyses union anyway). The
			// fallthrough statement itself is control only, so it is
			// dropped rather than fed through stmt (which would terminate
			// the block before the edge is wired).
			b.stmtList(cc.Body[:len(cc.Body)-1])
			b.edge(b.cur, clauseBlocks[i+1])
			b.terminate()
		} else {
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		i++
	}
	b.popLoop(label)
	b.cur = join
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	// The marker: blocking iff no default clause (analyzers check).
	head.Nodes = append(head.Nodes, s)
	join := b.newBlock("select.join")
	li := &loopInfo{breakTarget: join}
	b.pushLoop(li, label)
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("select.clause")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.g.SelectComm[cc.Comm] = true
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, join)
	}
	b.popLoop(label)
	b.cur = join
}

// HasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func HasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// Inspect walks n in the way block nodes must be traversed: it calls fn
// for n and its children, but does not descend into *ast.FuncLit bodies
// (a different function) nor through the *ast.SelectStmt and
// *ast.RangeStmt markers (their nested statements belong to other
// blocks). fn returning false prunes the subtree, as with ast.Inspect.
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if !fn(m) {
			return false
		}
		switch m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt, *ast.RangeStmt:
			// Visit the node itself only; bodies are in other blocks. The
			// top-level call on the marker still reports the marker.
			return false
		}
		return true
	})
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func appendNode(nodes []ast.Node, e ast.Expr) []ast.Node {
	if e == nil {
		return nodes
	}
	return append(nodes, e)
}
