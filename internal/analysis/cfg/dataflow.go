package cfg

import (
	"go/ast"
	"go/types"
)

// Lattice describes one forward dataflow problem over a Graph. T is the
// per-block abstract state (a lock set, a token interval, ...).
type Lattice[T any] struct {
	// Transfer computes the block's exit state from its entry state. It
	// must not mutate in (clone first if the state is a reference type)
	// and must be monotone for the fixpoint to terminate.
	Transfer func(b *Block, in T) T
	// Join merges two states flowing into the same block (typically a
	// may-union or an interval hull). It must not mutate its arguments.
	Join func(a, b T) T
	// Equal reports whether two states are indistinguishable; the
	// fixpoint stops re-propagating when a join changes nothing.
	Equal func(a, b T) bool
}

// Forward runs the dataflow to fixpoint and returns every reachable
// block's ENTRY state. The caller re-applies Transfer (or a reporting
// variant of it) over the returned states to attach diagnostics —
// separating the silent fixpoint from the single reporting pass keeps
// loop iteration from duplicating findings.
func Forward[T any](g *Graph, entry T, lat Lattice[T]) map[*Block]T {
	in := map[*Block]T{g.Entry: entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := lat.Transfer(b, in[b])
		for _, s := range b.Succs {
			next := out
			if cur, ok := in[s]; ok {
				next = lat.Join(cur, out)
				if lat.Equal(cur, next) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Def is one definition (assignment or declaration) of a variable.
type Def struct {
	Lhs *ast.Ident // the defined identifier
	Rhs ast.Expr   // the assigned expression; nil for `var x T` and other value-less forms
	// Result is the variable's position among the values Rhs produces: 0
	// for ordinary one-to-one assignments, the tuple index for
	// `a, b := f()` style definitions (so taint sources can distinguish
	// which result of a multi-valued call they vouch for).
	Result int
}

// DefUse indexes every definition of every variable in one function,
// including nested function literals (an alias captured by a closure is
// still an alias). It is deliberately flow-insensitive: the concurrency
// analyzers use it for alias/taint questions ("could v name the slice
// that call returned?"), where any-definition-reaches is the sound
// answer.
type DefUse struct {
	Defs map[types.Object][]Def
}

// NewDefUse builds the index for fn (a *ast.FuncDecl body, *ast.FuncLit
// body, or any subtree).
func NewDefUse(fn ast.Node, info *types.Info) *DefUse {
	d := &DefUse{Defs: map[types.Object][]Def{}}
	if fn == nil {
		return d
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(id, info)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				result := 0
				switch {
				case len(n.Lhs) == len(n.Rhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					// a, b := f(): every variable is defined by the one
					// multi-valued expression at its tuple position.
					rhs = n.Rhs[0]
					result = i
				}
				d.Defs[obj] = append(d.Defs[obj], Def{Lhs: id, Rhs: rhs, Result: result})
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := objOf(name, info)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				result := 0
				switch {
				case len(n.Values) == len(n.Names):
					rhs = n.Values[i]
				case len(n.Values) == 1:
					rhs = n.Values[0]
					result = i
				}
				d.Defs[obj] = append(d.Defs[obj], Def{Lhs: name, Rhs: rhs, Result: result})
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := objOf(id, info); obj != nil {
						d.Defs[obj] = append(d.Defs[obj], Def{Lhs: id, Rhs: nil})
					}
				}
			}
		}
		return true
	})
	return d
}

// Taint computes the set of variables that may alias a source value. A
// variable is tainted when any of its definitions' RHS satisfies
// source(rhs, result) — result is the tuple position for multi-valued
// definitions, so a source can vouch for one result of a call — or
// derives from a tainted variable through the alias-preserving forms: a
// plain identifier copy, a slice expression v[a:b], or a parenthesized
// expression. The map value is the definition that introduced the taint
// (for diagnostics).
func (d *DefUse) Taint(info *types.Info, source func(e ast.Expr, result int) bool) map[types.Object]Def {
	tainted := map[types.Object]Def{}
	aliases := func(e ast.Expr) (types.Object, bool) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			default:
				if id, ok := e.(*ast.Ident); ok {
					obj := objOf(id, info)
					return obj, obj != nil
				}
				return nil, false
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, defs := range d.Defs {
			if _, ok := tainted[obj]; ok {
				continue
			}
			for _, def := range defs {
				if def.Rhs == nil {
					continue
				}
				if source(def.Rhs, def.Result) {
					tainted[obj] = def
					changed = true
					break
				}
				if from, ok := aliases(def.Rhs); ok {
					if _, ok := tainted[from]; ok {
						tainted[obj] = def
						changed = true
						break
					}
				}
			}
		}
	}
	return tainted
}

// objOf resolves an identifier to its variable object (nil for the blank
// identifier and non-variables).
func objOf(id *ast.Ident, info *types.Info) types.Object {
	if id.Name == "_" {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}
