// Package exp is the experiment-harness half of the determinism corpus:
// run logic must be a pure function of (Config, seed), so wall-clock and
// the global rand source are flagged here exactly as in the kernels.
package exp

import (
	"math/rand"
	"time"
)

// Config mimics the harness config: wall-clock enters only through the
// injected Clock, wired by the binary.
type Config struct {
	Seed  int64
	Clock func() time.Time
}

// runTimed stamps a run with the injected clock — the sanctioned pattern.
func runTimed(cfg Config) float64 {
	start := cfg.Clock()
	rng := rand.New(rand.NewSource(cfg.Seed))
	_ = rng.Float64()
	return cfg.Clock().Sub(start).Seconds()
}

// wallClock reads ambient time inside run logic: unreproducible.
func wallClock() float64 {
	t := time.Now()                // want `call to time.Now in deterministic kernel package`
	return time.Since(t).Seconds() // want `call to time.Since in deterministic kernel package`
}

// globalRand draws client participation from the process-wide source.
func globalRand(n int) int {
	return rand.Intn(n) // want `global math/rand source \(rand.Intn\)`
}

// schemeOrderSum folds per-scheme traffic in map iteration order —
// run-to-run bit drift in an aggregate result row.
func schemeOrderSum(traffic map[string]float64) float64 {
	total := 0.0
	for _, v := range traffic {
		total += v // want `numeric accumulation into "total" inside map iteration is order-dependent`
	}
	return total
}

// selfTiming is Table II's sanctioned exception: the measurement IS the
// result, suppressed in place.
func selfTiming() float64 {
	//lint:allow determinism -- overhead measurement is the reported result
	start := time.Now()
	//lint:allow determinism -- overhead measurement is the reported result
	return time.Since(start).Seconds()
}
