// Package tensor is the in-scope half of the determinism corpus: this
// package path is under the serial-vs-parallel bit-identity contract.
package tensor

import (
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// environmental reads ambient state a deterministic kernel must not see.
func environmental() float64 {
	t := time.Now()            // want `call to time.Now in deterministic kernel package`
	d := time.Since(t)         // want `call to time.Since in deterministic kernel package`
	p := runtime.GOMAXPROCS(0) // want `call to runtime.GOMAXPROCS in deterministic kernel package`
	c := runtime.NumCPU()      // want `call to runtime.NumCPU in deterministic kernel package`
	return float64(p+c) + d.Seconds()
}

// globalRand draws from the process-wide source.
func globalRand() float64 {
	return rand.Float64() // want `global math/rand source \(rand.Float64\)`
}

// seededRand draws from an injected, seeded generator — deterministic and
// allowed, as are the constructors themselves.
func seededRand(rng *rand.Rand) float64 {
	fresh := rand.New(rand.NewSource(42))
	return rng.Float64() + fresh.Float64()
}

// mapOrderSum folds floats in map iteration order: run-to-run bit drift.
func mapOrderSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `numeric accumulation into "sum" inside map iteration is order-dependent`
	}
	return sum
}

// mapOrderFold is the non-compound spelling of the same bug.
func mapOrderFold(m map[int]float64) float64 {
	prod := 1.0
	for _, v := range m {
		prod = prod * v // want `numeric accumulation into "prod" inside map iteration is order-dependent`
	}
	return prod
}

// sortedSum is the deterministic idiom: collect, sort, fold. The append
// inside the map range is order-recoverable and not flagged.
func sortedSum(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// intCount accumulates integers in map order — exact arithmetic commutes,
// so this is deterministic and not flagged.
func intCount(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// perIterationTemp accumulates into a variable scoped to the loop body;
// nothing order-dependent escapes an iteration.
func perIterationTemp(m map[int][]float64, out []float64) {
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		_ = s
	}
	_ = out
}

// suppressed documents a sanctioned exception.
func suppressed() int64 {
	//lint:allow determinism -- diagnostics timestamp, not part of any result
	return time.Now().UnixNano()
}
