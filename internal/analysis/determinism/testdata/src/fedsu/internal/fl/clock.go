// Package fl is outside the determinism scope: the engine measures
// wall-clock on purpose (round timing, barrier deadlines), so nothing here
// may be flagged.
package fl

import "time"

// roundDuration times a round — legal outside the kernel packages.
func roundDuration(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
