// Package fl is the engine half of the determinism corpus. It entered the
// analyzer's scope with the buffered-async aggregation mode: staleness must
// be measured in global versions (a counter the seeded replay reproduces),
// never wall-clock — timestamping submissions with time.Now would weight
// contributions by scheduler timing and break bit-identical seed replay.
// Deadline timers (time.AfterFunc) and duration configuration remain legal:
// only the banned environmental readers are flagged.
package fl

import "time"

// asyncChan mimics the async accumulator: version counting is the
// sanctioned staleness clock.
type asyncChan struct {
	ver  int
	base map[int]int
}

// stalenessByVersion measures rounds-behind from the version counter — the
// deterministic pattern server_async.go uses.
func (c *asyncChan) stalenessByVersion(clientID int) int {
	return c.ver - c.base[clientID]
}

// stalenessByWallClock timestamps submissions with ambient time: the decay
// weight then depends on scheduler timing, not the seeded arrival order.
func stalenessByWallClock(submitted time.Time) float64 {
	return time.Since(submitted).Seconds() // want `call to time.Since in deterministic kernel package`
}

// stampSubmission reads the wall clock to record a submission: same issue
// on the producing side.
func stampSubmission() time.Time {
	return time.Now() // want `call to time.Now in deterministic kernel package`
}

// armDeadline uses the timer machinery the barrier legitimately needs;
// time.AfterFunc is not an environmental reader and must stay unflagged.
func armDeadline(d time.Duration, expire func()) *time.Timer {
	return time.AfterFunc(d, expire)
}
