package determinism_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"fedsu/internal/tensor", "fedsu/internal/fl", "fedsu/internal/exp")
}
