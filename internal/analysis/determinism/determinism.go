// Package determinism guards the bit-reproducibility contract of the
// numeric kernel packages (internal/tensor, internal/nn, internal/sparse)
// and of the experiment harness (internal/exp): the same inputs must
// produce bit-identical outputs regardless of GOMAXPROCS, wall-clock, or
// scheduling — the property tensor/determinism_test.go asserts for
// serial-vs-parallel kernels, exp/sched_test.go asserts for the parallel
// experiment grid, and the property that makes federated experiments
// replayable from a seed. In internal/exp, wall-clock belongs in the
// injected Config.Clock (wired by cmd/fedsu-bench) — direct time.Now in a
// result computation would make runs unreproducible; the deliberate
// exception is Table II's self-timing overhead measurement, suppressed
// in place.
//
// Two classes of nondeterminism are flagged:
//
//   - Environmental inputs in result computation: time.Now/Since/Until,
//     the global math/rand source (rand.New with an explicit seed is
//     deterministic and allowed), runtime.GOMAXPROCS, and runtime.NumCPU.
//
//   - Iteration over a map that feeds a floating-point (or complex)
//     accumulation declared outside the loop: float addition is not
//     associative, so summing in map order produces run-to-run bit drift.
//     Integer accumulation commutes exactly and is not flagged; collecting
//     keys and sorting first is the deterministic idiom for floats (and is
//     not flagged either, since an append into a slice is
//     order-recoverable).
//
// Suppress a deliberate exception with `//lint:allow determinism -- <reason>`.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedsu/internal/analysis"
)

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag nondeterministic inputs and map-order-dependent accumulation in kernel packages\n\n" +
		"internal/tensor, internal/nn, internal/sparse, internal/fl, and " +
		"internal/exp must stay bit-deterministic: no wall-clock, no global " +
		"rand, no GOMAXPROCS dependence, and no numeric reduction in map " +
		"iteration order. Experiment wall-clock reporting goes through the " +
		"injected Config.Clock; async staleness is measured in global " +
		"versions, never time.Now.",
	Run: run,
}

// scope is the set of packages under the bit-identity contract.
// internal/fl joined with the buffered-async mode: staleness must be
// measured in global versions (rounds), never wall-clock — a time.Now
// staleness clock would weight contributions by scheduler timing and break
// seed-replay. The engine's legitimate time uses (barrier deadline timers
// via time.AfterFunc, time.Duration config) are not banned names.
var scope = map[string]bool{
	"fedsu/internal/tensor": true,
	"fedsu/internal/nn":     true,
	"fedsu/internal/sparse": true,
	"fedsu/internal/exp":    true,
	"fedsu/internal/fl":     true,
}

// banned maps package path -> function name -> true for environmental
// inputs that have no place in a deterministic kernel.
var banned = map[string]map[string]bool{
	"time":    {"Now": true, "Since": true, "Until": true},
	"runtime": {"GOMAXPROCS": true, "NumCPU": true},
}

// randConstructors are the math/rand functions that merely build a seeded
// generator and are therefore deterministic.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) error {
	if !scope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, node)
			case *ast.RangeStmt:
				checkMapRange(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkCall flags calls to environmental inputs and to the global
// math/rand source.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Float64 on an injected, seeded generator)
	// are fine; only package-level functions read ambient state.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return
	}
	path := fn.Pkg().Path()
	if names, ok := banned[path]; ok && names[fn.Name()] {
		pass.Reportf(call.Pos(), "call to %s.%s in deterministic kernel package %s breaks bit-reproducibility",
			path, fn.Name(), pass.Pkg.Name())
		return
	}
	if path == "math/rand" && !randConstructors[fn.Name()] {
		pass.Reportf(call.Pos(), "call to the global math/rand source (rand.%s) in deterministic kernel package %s; inject a seeded *rand.Rand",
			fn.Name(), pass.Pkg.Name())
	}
}

// checkMapRange flags inexact-numeric accumulation into loop-external
// state inside a range over a map.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
					// Plain writes are only order-dependent when they fold the
					// previous value back in (sum = sum + v); require the LHS
					// to be numeric AND read on the RHS.
					if !isNumeric(pass, lhs) || !readsLHS(pass, st, lhs) {
						continue
					}
				} else if !isNumeric(pass, lhs) {
					// Compound assignment (+=, *=, ...): numeric only — string
					// concatenation etc. is caught by review, not this check.
					continue
				}
				if obj := rootObj(pass, lhs); obj != nil && obj.Pos() < rng.Pos() {
					pass.Reportf(st.Pos(), "numeric accumulation into %q inside map iteration is order-dependent; iterate sorted keys",
						obj.Name())
				}
			}
		case *ast.IncDecStmt:
			if obj := rootObj(pass, st.X); obj != nil && obj.Pos() < rng.Pos() && isNumeric(pass, st.X) {
				pass.Reportf(st.Pos(), "numeric accumulation into %q inside map iteration is order-dependent; iterate sorted keys",
					obj.Name())
			}
		}
		return true
	})
}

// isNumeric reports whether expr has an order-sensitive numeric basic type
// (floats and complex; integer accumulation commutes bit-exactly).
func isNumeric(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&(types.IsFloat|types.IsComplex) != 0
}

// readsLHS reports whether the assignment's RHS mentions the LHS
// expression's root variable.
func readsLHS(pass *analysis.Pass, st *ast.AssignStmt, lhs ast.Expr) bool {
	obj := rootObj(pass, lhs)
	if obj == nil {
		return false
	}
	for _, rhs := range st.Rhs {
		found := false
		ast.Inspect(rhs, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// rootObj resolves the base variable of an lvalue expression
// (x, x.f, x[i], *x → x).
func rootObj(pass *analysis.Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(e)
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
