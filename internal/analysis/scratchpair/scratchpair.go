// Package scratchpair checks that every pooled-resource acquisition is
// balanced by its release on every path out of the acquiring function. It
// enforces the project's Get/Put families:
//
//	tensor.GetScratch / tensor.PutScratch   (scratch tensors, arena.go)
//	sparse.GetWireBuf / sparse.PutWireBuf   (pooled wire buffers, pool.go)
//	sparse.GetVec     / sparse.PutVec       (pooled vectors, pool.go)
//	codec.GetBuf      / codec.PutBuf        (chain stage buffers, codec/pool.go)
//	codec.GetVals     / codec.PutVals       (chain value scratch, codec/pool.go)
//
// The pools recycle backing stores through sync.Pool; a Get without a Put
// does not crash anything — it silently demotes the pool to plain
// allocation, which is exactly why the allocation budgets in
// BENCH_kernels.json and BENCH_agg.json regress without any test failing.
// This analyzer makes the pairing a compile-time contract.
//
// The check is flow-sensitive over the function body: acquisitions are
// tracked per variable through if/else, switch, select, and loop bodies,
// and must be dead (released, deferred, or ownership-transferred) at every
// return and at the end of the function. Ownership transfers that end
// tracking:
//
//   - returning the resource to the caller
//   - storing it into a struct field, map, slice element, or composite
//     literal (e.g. the Conv2D im2col cache retained for Backward, or the
//     fl.Server stray-contribution map drained at barrier completion)
//
// Passing a resource to an ordinary function is a use, not a transfer: the
// callee is expected to borrow, not keep.
package scratchpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedsu/internal/analysis"
)

// Analyzer is the scratchpair check.
var Analyzer = &analysis.Analyzer{
	Name: "scratchpair",
	Doc: "check that pooled Get/Put calls (GetScratch, GetWireBuf, GetVec) are paired on all paths\n\n" +
		"Every resource drawn from a project pool must be released, deferred, " +
		"returned, or stored before the acquiring function exits, on every " +
		"control-flow path including early and error returns.",
	Run: run,
}

// pairSpec is one enforced Get/Put family: the defining package, the two
// function names, and the noun diagnostics use for the resource.
type pairSpec struct {
	pkg  string
	get  string
	put  string
	noun string
}

// pairs is the table of enforced pools. putNames is its release-side index.
var pairs = []pairSpec{
	{pkg: "fedsu/internal/tensor", get: "GetScratch", put: "PutScratch", noun: "scratch tensor"},
	{pkg: "fedsu/internal/sparse", get: "GetWireBuf", put: "PutWireBuf", noun: "pooled wire buffer"},
	{pkg: "fedsu/internal/sparse", get: "GetVec", put: "PutVec", noun: "pooled vector"},
	{pkg: "fedsu/internal/sparse/codec", get: "GetBuf", put: "PutBuf", noun: "pooled codec buffer"},
	{pkg: "fedsu/internal/sparse/codec", get: "GetVals", put: "PutVals", noun: "pooled codec value slice"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				a := &checker{pass: pass, reported: map[types.Object]bool{}}
				st := newState()
				st, terminated := a.flowBlock(body.List, st)
				if !terminated {
					a.reportHeld(st, body.Rbrace)
				}
			}
			return true
		})
	}
	return nil
}

// acquisition records where a resource was drawn and from which pool.
type acquisition struct {
	pos  token.Pos
	pair *pairSpec
}

// state is the set of live acquisitions along one path.
type state struct {
	held     map[types.Object]acquisition // variable -> acquisition
	deferred map[types.Object]bool        // release scheduled by defer
}

func newState() *state {
	return &state{held: map[types.Object]acquisition{}, deferred: map[types.Object]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// merge folds the exit state of a conditional branch into s. A resource
// leaks if any incoming path holds it without a scheduled release, so the
// merged resource is held when either path holds it, and stays covered by a
// defer only when every path that actually holds it also scheduled the
// release — a path that never acquired the resource needs none (the
// acquire-and-defer-inside-one-branch pattern).
func (s *state) merge(o *state) {
	leaks := map[types.Object]bool{}
	for k := range s.held {
		if !s.deferred[k] {
			leaks[k] = true
		}
	}
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
		}
	}
	for k := range s.held {
		_, inO := o.held[k]
		if leaks[k] || (inO && !o.deferred[k]) {
			delete(s.deferred, k)
		} else if s.deferred[k] || o.deferred[k] {
			s.deferred[k] = true
		}
	}
	// Defers covering a resource not currently held (scheduled ahead of a
	// re-acquisition) only survive when scheduled on every path.
	for k := range s.deferred {
		if _, held := s.held[k]; !held && !o.deferred[k] {
			delete(s.deferred, k)
		}
	}
}

type checker struct {
	pass     *analysis.Pass
	reported map[types.Object]bool
}

// reportHeld flags every live, non-deferred acquisition at an exit point.
func (c *checker) reportHeld(s *state, exit token.Pos) {
	for obj, acq := range s.held {
		if s.deferred[obj] || c.reported[obj] {
			continue
		}
		c.reported[obj] = true
		c.pass.Reportf(acq.pos, "%s %q is not released by %s on all paths (leaks at line %d)",
			acq.pair.noun, obj.Name(), acq.pair.put, c.pass.Fset.Position(exit).Line)
	}
}

// flowBlock interprets stmts in order, returning the fall-through state and
// whether every path through the block terminated (returned, panicked, or
// branched away) before reaching its end.
func (c *checker) flowBlock(stmts []ast.Stmt, s *state) (*state, bool) {
	for _, stmt := range stmts {
		var terminated bool
		s, terminated = c.flowStmt(stmt, s)
		if terminated {
			return s, true
		}
	}
	return s, false
}

func (c *checker) flowStmt(stmt ast.Stmt, s *state) (*state, bool) {
	switch st := stmt.(type) {
	case *ast.AssignStmt:
		c.flowAssign(st, s)

	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					if p := c.getPair(val); p != nil && i < len(vs.Names) {
						if obj := c.pass.TypesInfo.Defs[vs.Names[i]]; obj != nil {
							s.held[obj] = acquisition{pos: val.Pos(), pair: p}
						}
					}
				}
			}
		}

	case *ast.ExprStmt:
		if obj := c.putTarget(st.X); obj != nil {
			delete(s.held, obj)
		} else if p := c.getPair(st.X); p != nil {
			c.pass.Reportf(st.X.Pos(), "%s result discarded: the %s can never be released", p.get, p.noun)
		}
		if isPanic(st.X) {
			return s, true
		}

	case *ast.DeferStmt:
		c.flowDefer(st, s)

	case *ast.ReturnStmt:
		for _, res := range st.Results {
			c.transferExpr(res, s)
		}
		c.reportHeld(s, st.Pos())
		return s, true

	case *ast.BranchStmt:
		// break/continue/goto: the path leaves this block. Leak detection at
		// the loop and function exits still sees the merged state.
		return s, true

	case *ast.BlockStmt:
		return c.flowBlock(st.List, s)

	case *ast.LabeledStmt:
		return c.flowStmt(st.Stmt, s)

	case *ast.IfStmt:
		if st.Init != nil {
			s, _ = c.flowStmt(st.Init, s)
		}
		thenState, thenTerm := c.flowBlock(st.Body.List, s.clone())
		elseState, elseTerm := s, false
		if st.Else != nil {
			elseState, elseTerm = c.flowStmt(st.Else, s.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return thenState, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			thenState.merge(elseState)
			return thenState, false
		}

	case *ast.ForStmt:
		if st.Init != nil {
			s, _ = c.flowStmt(st.Init, s)
		}
		return c.flowLoopBody(st.Body, s), false

	case *ast.RangeStmt:
		return c.flowLoopBody(st.Body, s), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.flowCases(stmt, s)
	}
	return s, false
}

// flowLoopBody interprets one iteration of a loop body. A resource acquired
// inside the body must be dead again by the end of the iteration — each
// further spin would leak another pooled buffer.
func (c *checker) flowLoopBody(body *ast.BlockStmt, entry *state) *state {
	exit, _ := c.flowBlock(body.List, entry.clone())
	for obj, acq := range exit.held {
		if _, before := entry.held[obj]; before || exit.deferred[obj] || c.reported[obj] {
			continue
		}
		c.reported[obj] = true
		c.pass.Reportf(acq.pos, "%s %q acquired in a loop body is still held at the end of the iteration",
			acq.pair.noun, obj.Name())
		delete(exit.held, obj)
	}
	// Releases of pre-loop resources inside the body are honoured (the loop
	// is assumed to run; a zero-iteration leak needs //lint:allow).
	return exit
}

// flowCases handles switch/type-switch/select: each clause flows
// independently from the entry state and the exits merge.
func (c *checker) flowCases(stmt ast.Stmt, s *state) (*state, bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			s, _ = c.flowStmt(st.Init, s)
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s, _ = c.flowStmt(st.Init, s)
		}
		body = st.Body
	case *ast.SelectStmt:
		body = st.Body
	}
	var merged *state
	allTerm := true
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch clause := cl.(type) {
		case *ast.CaseClause:
			stmts = clause.Body
			if clause.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = clause.Body
			hasDefault = true // select always runs one clause
		}
		exit, term := c.flowBlock(stmts, s.clone())
		allTerm = allTerm && term
		if !term {
			if merged == nil {
				merged = exit
			} else {
				merged.merge(exit)
			}
		}
	}
	if merged == nil {
		merged = s
	} else if !hasDefault {
		merged.merge(s) // no case may match: entry state flows through
	}
	return merged, allTerm && hasDefault
}

// flowAssign handles acquisitions (x := GetScratch(...)) and ownership
// transfers (c.field = x, lit := T{x}, swaps are no-ops at set level).
func (c *checker) flowAssign(st *ast.AssignStmt, s *state) {
	if len(st.Lhs) == len(st.Rhs) {
		for i, rhs := range st.Rhs {
			if p := c.getPair(rhs); p != nil {
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					if obj := c.objOf(id); obj != nil {
						s.held[obj] = acquisition{pos: rhs.Pos(), pair: p}
						continue
					}
				}
				c.pass.Reportf(rhs.Pos(), "%s result stored into a non-variable target; pairing cannot be verified", p.get)
				continue
			}
			// Storing a held resource anywhere that outlives the function body
			// transfers ownership out of this flow.
			if id, ok := rhs.(*ast.Ident); ok {
				if obj := c.objOf(id); obj != nil && s.has(obj) && !isPlainIdent(st.Lhs[i]) {
					delete(s.held, obj)
				}
			} else {
				c.transferExpr(rhs, s)
			}
		}
		return
	}
	// x, y := f() — no pool function has multiple results; just scan for
	// transfers inside the RHS.
	for _, rhs := range st.Rhs {
		c.transferExpr(rhs, s)
	}
}

// flowDefer recognises `defer PutScratch(x)` and
// `defer func() { ...; PutScratch(x); ... }()` (and the sparse pool
// equivalents).
func (c *checker) flowDefer(st *ast.DeferStmt, s *state) {
	if obj := c.putTarget(st.Call); obj != nil {
		s.deferred[obj] = true
		return
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := c.putTarget(call); obj != nil {
					s.deferred[obj] = true
				}
			}
			return true
		})
	}
}

// transferExpr removes from tracking every held variable that escapes
// through expr into storage that outlives the flow (composite literals,
// address-taken values, map/slice stores). Plain call arguments are
// borrows and do not transfer.
func (c *checker) transferExpr(expr ast.Expr, s *state) {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := c.objOf(e); obj != nil {
			delete(s.held, obj)
		}
	case *ast.CompositeLit, *ast.UnaryExpr:
		ast.Inspect(expr, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.objOf(id); obj != nil && s.has(obj) {
					delete(s.held, obj)
				}
			}
			return true
		})
	case *ast.ParenExpr:
		c.transferExpr(e.X, s)
	}
}

func (s *state) has(obj types.Object) bool {
	_, ok := s.held[obj]
	return ok
}

func isPlainIdent(e ast.Expr) bool {
	_, ok := e.(*ast.Ident)
	return ok
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// putTarget returns the released variable's object when expr is a release
// call of any enforced pair with a plain identifier argument, else nil.
func (c *checker) putTarget(expr ast.Expr) types.Object {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	fn := c.calledFunc(call)
	if fn == nil {
		return nil
	}
	match := false
	for i := range pairs {
		if fn.Name() == pairs[i].put && fn.Pkg() != nil && fn.Pkg().Path() == pairs[i].pkg {
			match = true
			break
		}
	}
	if !match {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return c.objOf(id)
}

// getPair returns the pair whose acquiring function expr calls, or nil.
func (c *checker) getPair(expr ast.Expr) *pairSpec {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := c.calledFunc(call)
	if fn == nil {
		return nil
	}
	for i := range pairs {
		if fn.Name() == pairs[i].get && fn.Pkg() != nil && fn.Pkg().Path() == pairs[i].pkg {
			return &pairs[i]
		}
	}
	return nil
}

// calledFunc resolves a call's callee to its function object (qualified
// from outside the defining package or bare inside it).
func (c *checker) calledFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// objOf resolves an identifier to its variable object, ignoring the blank
// identifier.
func (c *checker) objOf(id *ast.Ident) types.Object {
	if id.Name == "_" {
		return nil
	}
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
		return nil
	}
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	}
	return nil
}
