package scratchpair_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/scratchpair"
)

func TestScratchpair(t *testing.T) {
	analysistest.Run(t, "testdata", scratchpair.Analyzer,
		"scratch", "sparsepool", "fedsu/internal/tensor")
}
