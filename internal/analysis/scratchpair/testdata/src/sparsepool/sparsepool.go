// Package sparsepool is the scratchpair corpus for the sparse wire-buffer
// and vector pools: the same pairing contract as the tensor arena, checked
// against the patterns the rpc hot path actually uses.
package sparsepool

import "fedsu/internal/sparse"

type coordinator struct {
	strays map[int]*[]float64
}

// balancedWireBuf is the client encode path: acquire, encode, release.
func balancedWireBuf(values []float64) int {
	buf := sparse.GetWireBuf(len(values))
	defer sparse.PutWireBuf(buf)
	*buf = sparse.AppendVectorPayload(*buf, values)
	return len(*buf)
}

// leakWireBuf forgets the release on the error path.
func leakWireBuf(values []float64) error {
	buf := sparse.GetWireBuf(len(values)) // want `pooled wire buffer "buf" is not released by PutWireBuf`
	*buf = sparse.AppendVectorPayload(*buf, values)
	if len(*buf) == 0 {
		return errEmpty
	}
	sparse.PutWireBuf(buf)
	return nil
}

// branchLocalDefer acquires and defers the release inside one branch — the
// flrpc decode pattern. The untaken branch holds nothing, so this must not
// be flagged.
func branchLocalDefer(abstain bool, n int) int {
	var vecBuf *[]float64
	if !abstain {
		vecBuf = sparse.GetVec(n)
		defer sparse.PutVec(vecBuf)
	}
	if vecBuf == nil {
		return 0
	}
	return len(*vecBuf)
}

// transferToMap hands ownership to a map that outlives the call — the
// fl.Server stray-contribution pattern, drained at barrier completion.
func (c *coordinator) transferToMap(clientID int, values []float64) {
	buf := sparse.GetVec(len(values))
	copy(*buf, values)
	if c.strays == nil {
		c.strays = map[int]*[]float64{}
	}
	c.strays[clientID] = buf
}

// discardedVec can never be released.
func discardedVec(n int) {
	sparse.GetVec(n) // want `GetVec result discarded`
}

// leakVecInLoop acquires per iteration without releasing.
func leakVecInLoop(n int) {
	for i := 0; i < n; i++ {
		v := sparse.GetVec(n) // want `pooled vector "v" acquired in a loop body is still held`
		(*v)[0] = float64(i)
	}
}

// mixedPools holds one resource from each pool; both must pair.
func mixedPools(values []float64) {
	vec := sparse.GetVec(len(values))
	buf := sparse.GetWireBuf(8) // want `pooled wire buffer "buf" is not released by PutWireBuf`
	copy(*vec, values)
	*buf = sparse.AppendVectorPayload(*buf, *vec)
	sparse.PutVec(vec)
}

var errEmpty = errorString("empty")

type errorString string

func (e errorString) Error() string { return string(e) }
