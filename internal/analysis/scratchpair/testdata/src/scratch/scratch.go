// Package scratch is the scratchpair corpus: every function is either a
// leak the analyzer must report (marked with a want comment) or a correct
// pairing it must stay silent about.
package scratch

import "fedsu/internal/tensor"

type layer struct {
	cached *tensor.Tensor
}

// balanced is the baseline: acquire, use, release, return.
func balanced(n int) float64 {
	t := tensor.GetScratch(n)
	sum := 0.0
	for _, v := range t.Data() {
		sum += v
	}
	tensor.PutScratch(t)
	return sum
}

// leakEarlyReturn forgets the release on the error path — the exact shape
// of the conv/LSTM backward regressions this analyzer exists to prevent.
func leakEarlyReturn(n int) error {
	t := tensor.GetScratch(n) // want `scratch tensor "t" is not released by PutScratch`
	if n < 0 {
		return errTooSmall
	}
	tensor.PutScratch(t)
	return nil
}

// releasedOnAllBranches puts on both the early and the normal return.
func releasedOnAllBranches(n int) error {
	t := tensor.GetScratch(n)
	if n < 0 {
		tensor.PutScratch(t)
		return errTooSmall
	}
	tensor.PutScratch(t)
	return nil
}

// deferredRelease covers every exit with one defer.
func deferredRelease(n int) error {
	t := tensor.GetScratch(n)
	defer tensor.PutScratch(t)
	if n < 0 {
		return errTooSmall
	}
	return nil
}

// deferredClosureRelease releases inside a deferred closure.
func deferredClosureRelease(n int) {
	t := tensor.GetScratch(n)
	defer func() {
		t.Data()[0] = 0
		tensor.PutScratch(t)
	}()
}

// transferReturn hands ownership to the caller.
func transferReturn(n int) *tensor.Tensor {
	t := tensor.GetScratch(n)
	return t
}

// transferField retains the tensor on the layer, the Conv2D im2col
// pattern: Backward releases it later.
func (l *layer) transferField(n int) {
	t := tensor.GetScratch(n)
	l.cached = t
}

// discarded can never be released.
func discarded(n int) {
	tensor.GetScratch(n) // want `GetScratch result discarded`
}

// leakInLoop acquires per iteration without releasing.
func leakInLoop(n int) {
	for i := 0; i < n; i++ {
		t := tensor.GetScratch(n) // want `scratch tensor "t" acquired in a loop body is still held`
		t.Data()[0] = float64(i)
	}
}

// balancedInLoop releases within each iteration.
func balancedInLoop(n int) {
	for i := 0; i < n; i++ {
		t := tensor.GetScratch(n)
		t.Data()[0] = float64(i)
		tensor.PutScratch(t)
	}
}

// leakOneSwitchArm misses the release in a single case.
func leakOneSwitchArm(kind string, n int) {
	t := tensor.GetScratch(n) // want `scratch tensor "t" is not released by PutScratch`
	switch kind {
	case "model":
		tensor.PutScratch(t)
	case "error":
		_ = t.Data()
	default:
		tensor.PutScratch(t)
	}
}

// swapThenRelease is the LSTM double-buffer pattern: the set of held
// tensors is unchanged by the swap and both are released.
func swapThenRelease(n, steps int) {
	a := tensor.GetScratch(n)
	b := tensor.GetScratch(n)
	for t := 0; t < steps; t++ {
		a, b = b, a
	}
	tensor.PutScratch(a)
	tensor.PutScratch(b)
}

// suppressed documents a deliberate leak with the escape hatch.
func suppressed(n int) *tensor.Tensor {
	//lint:allow scratchpair -- handed to cgo in the real code this mimics
	t := tensor.GetScratch(n)
	u := t
	return u
}

var errTooSmall = errorString("too small")

type errorString string

func (e errorString) Error() string { return string(e) }
