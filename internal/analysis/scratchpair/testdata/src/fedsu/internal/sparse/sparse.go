// Package sparse is a miniature replica of the real pooled wire-buffer API,
// just large enough for the scratchpair corpus to type-check. The package
// path matters: the analyzer matches GetWireBuf/PutWireBuf and
// GetVec/PutVec by their defining package.
package sparse

// GetWireBuf draws a pooled byte buffer with capacity at least n.
func GetWireBuf(n int) *[]byte {
	b := make([]byte, 0, n)
	return &b
}

// PutWireBuf returns a buffer to the pool.
func PutWireBuf(p *[]byte) {}

// GetVec draws a pooled float64 slice of length n.
func GetVec(n int) *[]float64 {
	v := make([]float64, n)
	return &v
}

// PutVec returns a vector to the pool.
func PutVec(p *[]float64) {}

// AppendVectorPayload stands in for the real encoder.
func AppendVectorPayload(dst []byte, vec []float64) []byte {
	return append(dst, byte(len(vec)))
}
