// Package tensor is a miniature replica of the real arena API, just large
// enough for the scratchpair corpus to type-check. The package path
// matters: the analyzer matches GetScratch/PutScratch by their defining
// package.
package tensor

// Tensor is a stand-in for the real dense tensor.
type Tensor struct {
	data []float64
}

// GetScratch draws a pooled tensor from the arena.
func GetScratch(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{data: make([]float64, n)}
}

// PutScratch returns a tensor to the arena.
func PutScratch(t *Tensor) {}

// Data exposes the backing slice.
func (t *Tensor) Data() []float64 { return t.data }

// inPackageLeak exercises the bare (unqualified) call form: the analyzer
// must see arena calls inside the arena's own package too.
func inPackageLeak(cond bool) {
	t := GetScratch(4) // want `scratch tensor "t" is not released by PutScratch`
	if cond {
		return
	}
	PutScratch(t)
}

// inPackageOK pairs a bare acquisition on every path.
func inPackageOK(cond bool) {
	t := GetScratch(4)
	if cond {
		PutScratch(t)
		return
	}
	PutScratch(t)
}
