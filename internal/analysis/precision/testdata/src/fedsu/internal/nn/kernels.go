// Package nn is the in-scope half of the precision corpus: this package
// path is under the single-rounding contract, so every undocumented float
// width crossing is a finding.
package nn

// Elem mirrors tensor.Elem: the generic storage width.
type Elem interface{ float32 | float64 }

// narrow rounds a double to single precision ad hoc — the canonical bug.
func narrow(x float64) float32 {
	return float32(x) // want `float64→float32 conversion crosses float widths`
}

// widen promotes storage to accumulator width outside toF64 — exact, but
// still a crossing the policy wants routed through the named helper.
func widen(y float32) float64 {
	return float64(y) // want `float32→float64 conversion crosses float widths`
}

// roundGeneric writes a float64 into the generic width: the roundE shape.
// Outside the sanctioned helper it is a finding; the helper itself carries
// the allow directive.
func roundGeneric[E Elem](v float64) E {
	return E(v) // want `float64→generic E conversion crosses float widths`
}

// widenGeneric reads the generic width at float64: the toF64 shape.
func widenGeneric[E Elem](v E) float64 {
	return float64(v) // want `generic E→float64 conversion crosses float widths`
}

// narrowGeneric forces the generic width down to single precision.
func narrowGeneric[E Elem](v E) float32 {
	return float32(v) // want `generic E→float32 conversion crosses float widths`
}

// sanctioned is a documented boundary: the directive suppresses the
// finding, as on the real tree's toF64/roundE and dispatch scalars.
func sanctioned[E Elem](v float64) E {
	return E(v) //lint:allow precision -- single-rounding helper, the sanctioned write crossing
}

// exactConversions never cross float widths and are not findings: constant
// operands fold at compile time, integer operands are counts not values on
// the storage/accumulator axis, and same-width conversions are identity.
func exactConversions[E Elem](xs []float64, n int) (E, float32, float64, float64) {
	c := E(0.5)
	s := float32(n)
	l := float64(len(xs))
	same := float64(xs[0])
	return c, s, l, same
}

// genericToGeneric: conversions between two generic widths are not
// flagged — the analyzer cannot name the crossing direction without an
// instantiation, and the kernels keep one element parameter per function,
// so the shape does not occur on the real tree.
func genericToGeneric[E Elem, F Elem](v E) F {
	return F(v)
}

// notAConversion: calls that merely look like single-argument conversions
// (a function named like a width) are left alone.
func half(x float64) float64 { return x / 2 }

func callsNotFlagged(x float64) float64 {
	return half(x)
}
