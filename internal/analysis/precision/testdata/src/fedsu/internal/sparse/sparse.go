// Package sparse is the out-of-scope half of the precision corpus: the
// wire codec's float32 rounding is its documented contract, so nothing
// here is flagged even without allow directives.
package sparse

// QuantizeWire mirrors the real codec's deliberate double rounding trip.
func QuantizeWire(v float64) float64 {
	if v == 0 {
		return 0
	}
	return float64(float32(v))
}

func encodeValue(v float64) uint32 {
	f := float32(v)
	return uint32(f)
}
