package precision_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/precision"
)

func TestPrecision(t *testing.T) {
	analysistest.Run(t, "testdata", precision.Analyzer,
		"fedsu/internal/nn", "fedsu/internal/sparse")
}
