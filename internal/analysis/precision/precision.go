// Package precision guards the float32 compute path's rounding discipline
// in the precision-scoped packages (internal/tensor, internal/nn,
// internal/opt, internal/fl, internal/data): every crossing between the
// storage element width (float32 or float64, or the generic tensor.Elem
// width E) and a concrete float width must be a deliberate, documented
// boundary. Scattered ad-hoc conversions are how a "float32" kernel
// silently computes in double precision — or worse, rounds a value twice
// on two code paths and breaks the serial-vs-parallel bit-identity the
// grid scheduler promises.
//
// The sanctioned crossings are few and named: nn's toF64/roundE pair (the
// per-term widening and single-rounding helpers every reduction routes
// through), tensor's sync-boundary copies and accessors, the wire codec's
// QuantizeWire (internal/sparse is deliberately out of scope — rounding IS
// its contract), batch assembly in internal/data, and the per-dispatch
// scalar conversions where a float64 hyper-parameter enters a generic
// kernel exactly once. Each such site carries a
// `//lint:allow precision -- <reason>` directive; everything else is flagged.
//
// Conversions from non-float operands (float64(len(x)), float32(i)) and
// constant expressions (float32(0.5), E(1) — folded exactly at compile
// time) are not width crossings and are not flagged.
package precision

import (
	"go/ast"
	"go/types"

	"fedsu/internal/analysis"
)

// Analyzer is the precision check.
var Analyzer = &analysis.Analyzer{
	Name: "precision",
	Doc: "flag float64<->float32 width crossings outside sanctioned boundaries in kernel packages\n\n" +
		"internal/tensor, internal/nn, internal/opt, internal/fl, and " +
		"internal/data must round at most once per value, at a named " +
		"boundary (toF64/roundE, sync copies, batch assembly, dispatch " +
		"scalars). Every other conversion between float32, float64, and " +
		"the generic element width is a finding; document deliberate " +
		"boundaries with //lint:allow precision -- <reason>.",
	Run: run,
}

// scope is the set of packages under the single-rounding contract.
// internal/sparse is excluded by design: the wire codec's float32 rounding
// is its documented behaviour, not an accident. internal/sparse/codec IS
// in scope: chain stages round through their own quantization grids, so a
// stray float32 crossing there would stack a second, unaccounted rounding
// on top of the stage's — each deliberate crossing (the base stage's f32
// value stream) is annotated at its boundary.
var scope = map[string]bool{
	"fedsu/internal/tensor":       true,
	"fedsu/internal/nn":           true,
	"fedsu/internal/opt":          true,
	"fedsu/internal/fl":           true,
	"fedsu/internal/data":         true,
	"fedsu/internal/sparse/codec": true,
}

// width classification of a conversion endpoint.
const (
	wNone    = 0
	w32      = 32
	w64      = 64
	wGeneric = -1
)

func run(pass *analysis.Pass) error {
	if !scope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true // a function call, not a conversion
			}
			argTV, ok := pass.TypesInfo.Types[call.Args[0]]
			if !ok || argTV.Value != nil {
				return true // constants convert exactly once, at compile time
			}
			dst, src := classify(tv.Type), classify(argTV.Type)
			if dst == wNone || src == wNone || dst == src {
				return true
			}
			pass.Reportf(call.Pos(), "%s→%s conversion crosses float widths in precision-scoped package %s; cross once at a sanctioned boundary (toF64/roundE, sync copy, dispatch scalar) and annotate it with //lint:allow precision -- <reason>",
				widthName(src, argTV.Type), widthName(dst, tv.Type), pass.Pkg.Name())
			return true
		})
	}
	return nil
}

// classify maps a type to its float width: the concrete widths, wGeneric
// for a type parameter whose type set contains a float, wNone otherwise.
// Two type parameters both classify as wGeneric, so a parameter-to-
// parameter conversion is not flagged: the crossing direction depends on
// the instantiation, and the kernels keep one element parameter per
// function so the shape does not occur.
func classify(t types.Type) int {
	if tp, ok := t.(*types.TypeParam); ok {
		if constraintHasFloat(tp) {
			return wGeneric
		}
		return wNone
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Float32:
			return w32
		case types.Float64:
			return w64
		}
	}
	return wNone
}

// constraintHasFloat reports whether the type parameter's constraint's
// type set mentions any float basic type (tensor.Elem does).
func constraintHasFloat(tp *types.TypeParam) bool {
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		if termHasFloat(iface.EmbeddedType(i)) {
			return true
		}
	}
	return false
}

func termHasFloat(t types.Type) bool {
	if u, ok := t.(*types.Union); ok {
		for i := 0; i < u.Len(); i++ {
			if termHasFloat(u.Term(i).Type()) {
				return true
			}
		}
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// widthName renders a conversion endpoint for the diagnostic: the concrete
// widths by name, a generic endpoint by its type parameter's own name.
func widthName(w int, t types.Type) string {
	switch w {
	case w32:
		return "float32"
	case w64:
		return "float64"
	default:
		if tp, ok := t.(*types.TypeParam); ok {
			return "generic " + tp.Obj().Name()
		}
		return "generic width"
	}
}
