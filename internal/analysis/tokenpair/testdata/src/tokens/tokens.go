// Corpus for the tokenpair analyzer: compute-token pairing and the
// release-before-barrier ordering rule. The analyzer is table-matched
// against fedsu/internal/par and the barrier dispatchers, so this corpus
// can live at any import path.
package tokens

import (
	"context"

	"fedsu/internal/fl"
	"fedsu/internal/par"
	"fedsu/internal/sparse"
)

func train() float64 { return 0 }

// --- negative cases ---

// The engine pattern: acquire around local compute, release BEFORE the
// collective barrier.
func okReleaseBeforeBarrier(ctx context.Context, vec []float64) {
	par.AcquireToken()
	train()
	par.ReleaseToken()
	sparse.SyncContext(ctx, nil, 1, vec, true)
}

func okDeferredRelease() float64 {
	par.AcquireToken()
	defer par.ReleaseToken()
	return train()
}

// The async-engine future: release before the completion send.
func okReleaseBeforeSend(ch chan float64) {
	par.AcquireToken()
	loss := train()
	par.ReleaseToken()
	ch <- loss
}

// Balanced on both branches.
func okBranchBalanced(c bool) {
	par.AcquireToken()
	if c {
		train()
		par.ReleaseToken()
		return
	}
	par.ReleaseToken()
}

// Cycled per iteration: every spin releases what it acquired.
func okLoopCycled(n int) {
	for i := 0; i < n; i++ {
		par.AcquireToken()
		train()
		par.ReleaseToken()
	}
}

// Holding a token across the pool dispatch is the intended pattern;
// Parallelize is not a rendezvous with other token holders.
func okHoldAcrossParallelize(n int) {
	par.AcquireToken()
	par.ParallelizeGrain(n, 4, func(lo, hi int) {})
	par.ReleaseToken()
}

// A panicking path is exempt from the exit balance (the process is gone).
func okPanicPath(c bool) {
	par.AcquireToken()
	if c {
		panic("invariant")
	}
	par.ReleaseToken()
}

// --- positive cases ---

// Leak: the error path returns without releasing. The balance diagnostic
// anchors at the first acquisition.
func badLeakOnEarlyReturn(c bool) error {
	par.AcquireToken() // want `not balanced by ReleaseToken on every path`
	if c {
		return errFailed
	}
	train()
	par.ReleaseToken()
	return nil
}

var errFailed error

// Leak: acquired in a loop, released once after it. (The nested-acquire
// report is must-held only, and the zero-iteration path has not acquired,
// so the loop shape surfaces as an exit imbalance.)
func badLoopLeak(n int) {
	for i := 0; i < n; i++ {
		par.AcquireToken() // want `not balanced by ReleaseToken on every path`
	}
	par.ReleaseToken()
}

// Over-release: panics at runtime, flagged at build time.
func badOverRelease() {
	par.ReleaseToken() // want `ReleaseToken without a matching AcquireToken`
}

// Nested acquisition on a must-held path.
func badNested() {
	par.AcquireToken()
	par.AcquireToken() // want `AcquireToken while a token is already held`
	par.ReleaseToken()
	par.ReleaseToken()
}

// The PR 5 ordering rule: token held across the collective barrier.
func badHoldAcrossBarrier(ctx context.Context, vec []float64) {
	par.AcquireToken()
	train()
	sparse.SyncContext(ctx, nil, 1, vec, true) // want `compute token held across collective barrier SyncContext`
	par.ReleaseToken()
}

func badHoldAcrossAggModel(ctx context.Context, agg sparse.Aggregator, vec []float64) {
	par.AcquireToken()
	defer par.ReleaseToken()
	sparse.AggModel(ctx, agg, 0, 1, vec) // want `compute token held across collective barrier AggModel`
}

// A deferred release does not excuse a mid-function rendezvous: it runs
// at exit, after the handshake has already deadlocked.
func badHoldAcrossSend(ch chan float64) {
	par.AcquireToken()
	defer par.ReleaseToken()
	ch <- train() // want `compute token held across channel send`
}

func badHoldAcrossReceive(ch chan float64) float64 {
	par.AcquireToken()
	defer par.ReleaseToken()
	return <-ch // want `compute token held across channel receive`
}

// Sanctioned exception, annotated with a reason.
func okAnnotatedHold(ch chan float64) {
	par.AcquireToken()
	defer par.ReleaseToken()
	ch <- train() //lint:allow tokenpair -- corpus replica: the receiver is a buffered channel drained by a non-token-holding consumer
}

// --- hierarchical-collective cases (PR 9) ---

// The relay pattern: fold the block under the token, release, THEN park
// on the partial ingest (which blocks until the root publishes).
func okReleaseBeforePartial(t *fl.Tree, sum []float64) ([]float64, error) {
	par.AcquireToken()
	train()
	par.ReleaseToken()
	return t.AggregatePartial(0, "model", 0, sum, 8)
}

// Holding the token across the tree barrier starves the cohort exactly
// like the flat SyncRound case: the root cannot publish until every
// block's partial lands, and the other submitters need tokens to fold.
func badHoldAcrossPartial(t *fl.Tree, sum []float64) {
	par.AcquireToken()
	train()
	t.AggregatePartial(0, "model", 0, sum, 8) // want `compute token held across collective barrier AggregatePartial`
	par.ReleaseToken()
}

func badHoldAcrossPartialCtx(ctx context.Context, t *fl.Tree, sum []float64) ([]float64, error) {
	par.AcquireToken()
	defer par.ReleaseToken()
	return t.AggregatePartialCtx(ctx, 0, "model", 0, sum, 8) // want `compute token held across collective barrier AggregatePartialCtx`
}
