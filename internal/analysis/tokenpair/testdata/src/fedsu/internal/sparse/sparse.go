// Package sparse is a corpus stub: only the barrier-table signatures the
// tokenpair analyzer matches by package path + name.
package sparse

import "context"

type Aggregator interface {
	AggregateModel(clientID, round int, values []float64) ([]float64, error)
}

func SyncContext(ctx context.Context, s any, round int, local []float64, contributor bool) ([]float64, int, error) {
	return nil, 0, nil
}

func AggModel(ctx context.Context, agg Aggregator, clientID, round int, values []float64) ([]float64, error) {
	return nil, nil
}
