// Package fl is a corpus stub: the tree-collective barrier signatures the
// tokenpair analyzer matches by package path + name. AggregatePartial
// parks the caller until the root publishes the round's global, so it is
// a rendezvous with every other token holder in the cohort.
package fl

import "context"

type Tree struct {
	global []float64
}

func (t *Tree) AggregatePartial(round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
	return t.global, nil
}

func (t *Tree) AggregatePartialCtx(ctx context.Context, round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
	return t.global, nil
}
