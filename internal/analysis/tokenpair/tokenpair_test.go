package tokenpair_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/tokenpair"
)

func TestTokenpair(t *testing.T) {
	analysistest.Run(t, "testdata", tokenpair.Analyzer, "tokens")
}
