// Package tokenpair generalizes scratchpair's Get/Put pairing discipline
// to the process-wide compute-token budget (par.AcquireToken /
// par.ReleaseToken). Tokens are anonymous — Acquire returns nothing — so
// instead of scratchpair's per-variable table the check runs an interval
// dataflow over the cfg package's control-flow graph: each block's state
// is the [min, max] number of tokens held on paths reaching it (capped,
// so loops converge), plus the number of releases scheduled by defer.
//
// Enforced rules, in contract order:
//
//   - balance: every path out of a function releases what it acquired
//     (a leaked token permanently shrinks the process-wide budget);
//   - no release without acquire (par panics at runtime; the analyzer
//     catches it at build time);
//   - no nested acquire on a must-held path: one goroutine holding two
//     tokens deadlocks the budget once capacity drains to one;
//   - release BEFORE every blocking rendezvous with other token holders:
//     collective barriers (Client.SyncRound/SyncRoundCtx, the
//     sparse.SyncContext / AggModel / AggError dispatchers, and the tree
//     collective's Tree.AggregatePartial/AggregatePartialCtx relay ingest,
//     which parks until the root publishes) and channel handshakes. This
//     is the PR 5 engine rule — the token is a throttle, not a lock, and
//     holding one across a barrier deadlocks whenever clients outnumber
//     tokens.
//
// par.Parallelize/ParallelizeGrain are deliberately NOT rendezvous here:
// holding a token across the pool dispatch is the intended pattern (the
// pool falls back inline and its workers never acquire tokens).
package tokenpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedsu/internal/analysis"
	"fedsu/internal/analysis/cfg"
)

// Analyzer is the tokenpair check.
var Analyzer = &analysis.Analyzer{
	Name: "tokenpair",
	Doc: "check par.AcquireToken/ReleaseToken pairing and the release-before-barrier ordering rule\n\n" +
		"Every acquisition must be balanced on every path, never nested on a " +
		"must-held path, and released before collective barriers and channel " +
		"rendezvous (the compute-token budget is a throttle, not a lock).",
	Run: run,
}

const parPkg = "fedsu/internal/par"

// barriers maps defining package path -> function/method names whose call
// is a blocking rendezvous with other token holders.
var barriers = map[string]map[string]bool{
	"fedsu/internal/fl": {
		"SyncRound": true, "SyncRoundCtx": true,
		"AggregatePartial": true, "AggregatePartialCtx": true,
	},
	"fedsu/internal/sparse": {"SyncContext": true, "AggModel": true, "AggError": true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil && mentionsToken(pass, body) {
				check(pass, body)
			}
			return true
		})
	}
	return nil
}

// mentionsToken cheaply gates the dataflow: only bodies that touch the
// token API (outside nested function literals) are analyzed.
func mentionsToken(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	cfg.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && tokenCall(pass, call) != "" {
			found = true
		}
		return !found
	})
	return found
}

// tokenCall returns "acquire"/"release" for the par token calls, "" else.
func tokenCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalledFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parPkg {
		return ""
	}
	switch fn.Name() {
	case "AcquireToken":
		return "acquire"
	case "ReleaseToken":
		return "release"
	}
	return ""
}

// tokens is the abstract state: the interval of tokens held on paths into
// a point, and how many releases are scheduled by defer. The interval is
// capped so acquire-in-a-loop converges (anything >= capTokens is already
// a reported bug).
type tokens struct {
	lo, hi   int
	deferred int
}

const capTokens = 2

func (t tokens) acquire() tokens {
	if t.lo < capTokens {
		t.lo++
	}
	if t.hi < capTokens {
		t.hi++
	}
	return t
}

func (t tokens) release() tokens {
	if t.lo > 0 {
		t.lo--
	}
	if t.hi > 0 {
		t.hi--
	}
	return t
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}
	g := cfg.Build(body)
	lat := cfg.Lattice[tokens]{
		Transfer: func(b *cfg.Block, in tokens) tokens { return c.scan(g, b, in, false) },
		Join: func(a, b tokens) tokens {
			return tokens{lo: min(a.lo, b.lo), hi: max(a.hi, b.hi), deferred: min(a.deferred, b.deferred)}
		},
		Equal: func(a, b tokens) bool { return a == b },
	}
	entries := cfg.Forward(g, tokens{}, lat)
	for _, b := range g.Blocks {
		if in, ok := entries[b]; ok {
			c.scan(g, b, in, true)
		}
	}
	// Balance at function exit: tokens still held beyond the deferred
	// releases leak out of the process-wide budget. (Paths ending in panic
	// never reach Exit and are exempt, matching scratchpair.)
	if exit, ok := entries[g.Exit]; ok && exit.hi-exit.deferred > 0 {
		pos := firstAcquire(pass, body)
		if pos == token.NoPos {
			pos = body.Pos()
		}
		c.pass.Reportf(pos, "AcquireToken is not balanced by ReleaseToken on every path out of the function; the leaked token permanently shrinks the compute budget")
	}
}

// firstAcquire finds the first AcquireToken call in the body (outside
// nested function literals) to anchor the balance diagnostic.
func firstAcquire(pass *analysis.Pass, body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	cfg.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && tokenCall(pass, call) == "acquire" {
			pos = call.Pos()
		}
		return pos == token.NoPos
	})
	return pos
}

type checker struct {
	pass *analysis.Pass
}

// scan interprets one block, optionally reporting violations against the
// incoming state.
func (c *checker) scan(g *cfg.Graph, b *cfg.Block, in tokens, report bool) tokens {
	st := in
	for _, n := range b.Nodes {
		comm := false
		if s, ok := n.(ast.Stmt); ok && g.SelectComm[s] {
			comm = true
		}
		cfg.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				if tokenCall(c.pass, m.Call) == "release" {
					st.deferred++
				}
				return false
			case *ast.GoStmt:
				return false
			case *ast.SelectStmt:
				if !cfg.HasDefault(m) {
					c.rendezvous(m.Pos(), "select with no default clause", st, report)
				}
			case *ast.RangeStmt:
				if isChan(c.pass, m.X) {
					c.rendezvous(m.Pos(), "range over a channel", st, report)
				}
			case *ast.SendStmt:
				if !comm {
					c.rendezvous(m.Arrow, "channel send", st, report)
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !comm {
					c.rendezvous(m.Pos(), "channel receive", st, report)
				}
			case *ast.CallExpr:
				switch tokenCall(c.pass, m) {
				case "acquire":
					if report && st.lo >= 1 {
						c.pass.Reportf(m.Pos(), "AcquireToken while a token is already held: nested acquisitions deadlock the budget once capacity drains")
					}
					st = st.acquire()
				case "release":
					if report && st.hi == 0 {
						c.pass.Reportf(m.Pos(), "ReleaseToken without a matching AcquireToken (par panics on an over-release at runtime)")
					}
					st = st.release()
				default:
					if fn := analysis.CalledFunc(c.pass.TypesInfo, m); fn != nil && fn.Pkg() != nil {
						if names := barriers[fn.Pkg().Path()]; names[fn.Name()] {
							c.rendezvous(m.Pos(), "collective barrier "+fn.Name(), st, report)
						}
					}
				}
			}
			return true
		})
	}
	return st
}

// rendezvous reports a blocking rendezvous reached with a token possibly
// held. Deferred releases do not excuse it: they run at function exit,
// after the rendezvous has already deadlocked.
func (c *checker) rendezvous(pos token.Pos, what string, st tokens, report bool) {
	if !report || st.hi == 0 {
		return
	}
	c.pass.Reportf(pos, "compute token held across %s; call ReleaseToken before the rendezvous (the budget is a throttle, not a lock)", what)
}

func isChan(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
