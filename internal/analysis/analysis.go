// Package analysis is a self-contained, dependency-free reimplementation of
// the subset of golang.org/x/tools/go/analysis that fedsu-lint needs. The
// build environment deliberately carries no third-party modules, so the
// framework is vendored in spirit: Analyzer, Pass, and Diagnostic mirror the
// upstream API shape closely enough that migrating to the real package is a
// mechanical import swap once the dependency is available.
//
// Two drivers consume this package: internal/analysis/driver loads real
// packages of this module through `go list -export` plus export-data
// importing, and internal/analysis/analysistest loads self-contained
// testdata corpora and checks reported diagnostics against `// want`
// comments.
//
// # Suppressing a finding
//
// Any diagnostic can be silenced at a specific site with a line directive
//
//	//lint:allow <analyzer> -- <reason>
//
// placed either at the end of the offending line or alone on the line
// directly above it. Suppressions are deliberate, reviewable statements,
// so the ` -- reason` part is mandatory: a directive without it does not
// suppress anything and is itself reported as malformed (that report
// cannot be suppressed).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors the upstream
// x/tools/go/analysis.Analyzer (minus facts and analyzer dependencies,
// which no fedsu-lint check needs).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppression directives.
	Name string
	// Doc is the analyzer's contract, shown by `fedsu-lint -help`.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records a diagnostic. Drivers install a hook that drops
	// diagnostics suppressed by a //lint:allow directive.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// CalledFunc resolves a call's callee to its function object: a plain
// identifier inside the defining package, or the selected name of a
// package-qualified function or method call. It returns nil for calls
// through function-typed values and other indirect forms. Every analyzer
// that matches calls against a name table routes through here.
func CalledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//lint:allow "

// parseAllow splits an allow directive comment into the named analyzer and
// the written reason. ok is false for comments that are not allow
// directives at all; a directive whose ` -- reason` part is missing or
// empty comes back with ok true and an empty reason (malformed).
func parseAllow(comment string) (analyzer, reason string, ok bool) {
	text, ok := strings.CutPrefix(comment, AllowDirective)
	if !ok {
		return "", "", false
	}
	head, tail, hasReason := strings.Cut(text, " -- ")
	fields := strings.Fields(head)
	if len(fields) == 0 {
		return "", "", false
	}
	if !hasReason || strings.TrimSpace(tail) == "" {
		return fields[0], "", true
	}
	return fields[0], strings.TrimSpace(tail), true
}

// allowedLines returns the set of line numbers in f (keyed by line) on
// which findings of the named analyzer are suppressed, plus a diagnostic
// for every directive that names the analyzer but carries no ` -- reason`
// (such directives suppress nothing). A well-formed directive covers its
// own line and, when it is the only thing on its line, the line below.
func allowedLines(fset *token.FileSet, f *ast.File, analyzer string) (map[int]bool, []Diagnostic) {
	lines := map[int]bool{}
	var malformed []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, reason, ok := parseAllow(c.Text)
			if !ok || name != analyzer {
				continue
			}
			if reason == "" {
				malformed = append(malformed, Diagnostic{
					Pos: c.Pos(),
					Message: fmt.Sprintf("//lint:allow %s directive lacks a ` -- reason`; suppressions must state why (the finding is not suppressed)",
						analyzer),
				})
				continue
			}
			pos := fset.Position(c.Pos())
			lines[pos.Line] = true
			lines[pos.Line+1] = true
		}
	}
	return lines, malformed
}

// RunAnalyzer executes a on one type-checked package and returns the
// diagnostics that survive //lint:allow filtering, sorted by position.
// Both drivers route through here so suppression and ordering behave
// identically under `make lint` and under analysistest.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}

	// Filter suppressed findings file by file. Malformed directives naming
	// this analyzer are reported from every file — a reasonless allow is a
	// hygiene failure even when nothing on its line currently fires — and
	// those reports bypass the filter by construction.
	allowed := map[*ast.File]map[int]bool{}
	var malformed []Diagnostic
	for _, f := range files {
		lines, bad := allowedLines(fset, f, a.Name)
		allowed[f] = lines
		malformed = append(malformed, bad...)
	}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}
	kept := diags[:0]
	for _, d := range diags {
		if f := fileOf(d.Pos); f != nil && allowed[f][fset.Position(d.Pos).Line] {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, malformed...)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}
