// Package errwrap keeps the typed-error contract intact across the wrap
// chain and across the net/rpc wire boundary.
//
// Two rules, both born from the PR 2 fault-tolerance work:
//
//   - An error value passed to fmt.Errorf must be wrapped with %w, not
//     flattened with %v/%s: fl.ErrEvicted and fl.EvictedError are matched
//     with errors.Is/errors.As throughout the engine, and one %v anywhere
//     in the chain severs it.
//
//   - Code must not compare error *text* (err.Error() == "...",
//     strings.Contains(err.Error(), ...)). net/rpc flattens server-side
//     errors to strings, and internal/flrpc owns the single designated
//     recovery shim that re-types them; everywhere else a string match is
//     a latent bug that breaks the moment a message is reworded. The shim
//     itself carries `//lint:allow errwrap`, which is the only sanctioned
//     way to add another.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"fedsu/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "require %w for wrapped errors and forbid error-string comparisons\n\n" +
		"fmt.Errorf must wrap error-typed arguments with %w so errors.Is/As " +
		"survive (fl.ErrEvicted crosses the net/rpc boundary this way), and " +
		"error text must never be compared outside flrpc's designated " +
		"recovery shim.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, node, errType)
				checkStringMatch(pass, node, errType)
			case *ast.BinaryExpr:
				checkComparison(pass, node, errType)
			}
			return true
		})
	}
	return nil
}

// checkErrorf verifies that every error-typed argument of fmt.Errorf is
// consumed by a %w verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, errType types.Type) {
	if !isPkgFunc(pass, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(pass, call.Args[0])
	if !ok || strings.Contains(format, "%[") {
		return // non-constant or explicitly indexed formats: out of scope
	}
	verbs := formatVerbs(format)
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) || verb == 'w' {
			continue
		}
		tv, ok := pass.TypesInfo.Types[args[i]]
		if !ok || tv.Type == nil || !types.AssignableTo(tv.Type, errType) {
			continue
		}
		pass.Reportf(args[i].Pos(), "error formatted with %%%c loses its type; use %%w so errors.Is/errors.As can unwrap it",
			verb)
	}
}

// formatVerbs returns one element per argument the format string consumes:
// the verb letter, with '*' width/precision arguments represented as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	scan:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break scan // literal %%
			case c == '*':
				verbs = append(verbs, '*') // consumes a width argument
			case strings.IndexByte("+-# 0.0123456789", c) >= 0:
				// flags, width, precision: keep scanning
			default:
				verbs = append(verbs, c)
				break scan
			}
		}
	}
	return verbs
}

// checkComparison flags `x.Error() == "..."`-style comparisons.
func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr, errType types.Type) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	if containsErrorText(pass, cmp.X, errType) || containsErrorText(pass, cmp.Y, errType) {
		pass.Reportf(cmp.Pos(), "comparing error text; match sentinel errors with errors.Is/errors.As (a wire-boundary shim needs //lint:allow errwrap -- <reason>)")
	}
}

// matchFuncs are the strings functions that amount to an error-text
// comparison when fed err.Error().
var matchFuncs = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true,
}

// checkStringMatch flags strings.Contains(err.Error(), ...) and friends.
func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr, errType types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !matchFuncs[sel.Sel.Name] || !isPkgFunc(pass, call, "strings", sel.Sel.Name) {
		return
	}
	for _, arg := range call.Args {
		if containsErrorText(pass, arg, errType) {
			pass.Reportf(call.Pos(), "matching on error text; match sentinel errors with errors.Is/errors.As (a wire-boundary shim needs //lint:allow errwrap -- <reason>)")
			return
		}
	}
}

// containsErrorText reports whether expr contains a call to the Error()
// method of an error value.
func containsErrorText(pass *analysis.Pass, expr ast.Expr, errType types.Type) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if ok && tv.Type != nil && types.AssignableTo(tv.Type, errType) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isPkgFunc reports whether call invokes the named package-level function.
func isPkgFunc(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// stringConstant returns the constant string value of expr, if any.
func stringConstant(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
