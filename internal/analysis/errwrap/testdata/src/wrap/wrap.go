// Package wrap is the errwrap corpus: every finding shape for the %w rule
// and the error-text-comparison rule, plus the idioms that must stay
// silent.
package wrap

import (
	"errors"
	"fmt"
	"strings"
)

// ErrEvicted mimics the engine's sentinel.
var ErrEvicted = errors.New("evicted from session")

// flattens shows every way to lose a typed error in a wrap.
func flattens(err error, round int) {
	_ = fmt.Errorf("round %d: %v", round, err)   // want `error formatted with %v loses its type`
	_ = fmt.Errorf("round %d: %s", round, err)   // want `error formatted with %s loses its type`
	_ = fmt.Errorf("50%%: %v", err)              // want `error formatted with %v loses its type`
	_ = fmt.Errorf("pad %*d: %v", 8, round, err) // want `error formatted with %v loses its type`
}

// wraps shows the required idiom, including a Go 1.20 multi-wrap.
func wraps(err error, round int) {
	_ = fmt.Errorf("round %d: %w", round, err)
	_ = fmt.Errorf("%w: %w", err, ErrEvicted)
	_ = fmt.Errorf("no error args here: %d of %s", round, "text")
}

// nonConstFormat cannot be analyzed and is skipped.
func nonConstFormat(f string, err error) {
	_ = fmt.Errorf(f, err)
}

// textCompare matches error text directly.
func textCompare(err error) bool {
	if err.Error() == "evicted from session" { // want `comparing error text`
		return true
	}
	return err.Error() != "ok" // want `comparing error text`
}

// textSearch matches error text through the strings package.
func textSearch(err error) bool {
	if strings.Contains(err.Error(), "evicted") { // want `matching on error text`
		return true
	}
	return strings.HasPrefix(err.Error(), "fl:") // want `matching on error text`
}

// typedMatch is the required idiom.
func typedMatch(err error) bool {
	return errors.Is(err, ErrEvicted)
}

// shim is the sanctioned wire-boundary exception.
func shim(err error) bool {
	//lint:allow errwrap -- net/rpc flattens errors to strings; this is the recovery shim
	return strings.Contains(err.Error(), "evicted from session")
}

// indirectText is a known, documented hole: once the text is in a plain
// string the analyzer no longer sees the error provenance.
func indirectText(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "evicted")
}
