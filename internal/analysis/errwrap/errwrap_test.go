package errwrap_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata", errwrap.Analyzer, "wrap")
}
