// Corpus for the lockhold analyzer: blocking operations under a held
// mutex, in a miniature replica of the fl package (the analyzer is scoped
// to the real import path, which this corpus shares).
package fl

import (
	"sync"

	"fedsu/internal/par"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	done chan struct{}
}

func ready() bool { return true }

// --- positive cases ---

func badSendUnderLock(s *server, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `blocking channel send while "s\.mu" is held \(locked at line 24\)`
	s.mu.Unlock()
}

func badRecvUnderDeferredLock(s *server, ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want `blocking channel receive while "s\.mu" is held`
}

func badFoldUnderLock(s *server, n int) {
	s.mu.Lock()
	par.ParallelizeGrain(n, 4, func(lo, hi int) {}) // want `blocking par\.ParallelizeGrain while "s\.mu" is held`
	s.mu.Unlock()
}

func badAcquireUnderRLock(s *server) {
	s.rw.RLock()
	par.AcquireToken() // want `blocking par\.AcquireToken while "s\.rw" is held`
	par.ReleaseToken()
	s.rw.RUnlock()
}

func badWaitUnderLock(s *server, wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `blocking WaitGroup\.Wait while "s\.mu" is held`
}

func badSelectUnderLock(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select with no default clause while "s\.mu" is held`
	case <-s.done:
	}
}

func badRangeChanUnderLock(s *server, ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for v := range ch { // want `blocking range over a channel while "s\.mu" is held`
		total += v
	}
	return total
}

// A lock taken on only one branch is may-held at the join: the blocking
// op deadlocks whenever that branch ran.
func badMayHeld(s *server, c bool, ch chan int) {
	if c {
		s.mu.Lock()
	}
	ch <- 1 // want `blocking channel send while "s\.mu" is held`
	if c {
		s.mu.Unlock()
	}
}

// TryLock counts as acquired on success; the send below may deadlock.
func badTryLock(s *server, ch chan int) {
	if s.mu.TryLock() {
		ch <- 1 // want `blocking channel send while "s\.mu" is held`
		s.mu.Unlock()
	}
}

// --- negative cases ---

func okReleaseBeforeBlocking(s *server, ch chan int, n int) {
	s.mu.Lock()
	x := 1
	s.mu.Unlock()
	par.Parallelize(n, func(lo, hi int) {})
	ch <- x
}

// A select with a default clause never blocks.
func okSelectWithDefault(s *server) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// sync.Cond.Wait releases the associated lock while parked — the one
// sanctioned blocking wait under a mutex.
func okCondWait(s *server) {
	s.mu.Lock()
	for !ready() {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Locks cycled inside the loop are free again by the send after it.
func okLockPerIteration(s *server, ch chan int, n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.mu.Unlock()
	}
	ch <- n
}

// Launching a goroutine does not block the launcher; the goroutine body
// is a separate function with its own (empty) lock set.
func okGoUnderLock(s *server, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		select {
		case ch <- 1:
		case <-s.done:
		}
	}()
}

// A path that panics never reaches the blocking op.
func okPanicPath(s *server, ch chan int, c bool) {
	s.mu.Lock()
	if c {
		panic("invariant")
	}
	s.mu.Unlock()
	ch <- 1
}

// The sanctioned leaf-lock fold: suppressed with a written reason.
func okAnnotatedFold(s *server, n int) {
	s.mu.Lock()
	par.ParallelizeGrain(n, 4, func(lo, hi int) {}) //lint:allow lockhold -- corpus replica of the leaf fold lock: par falls back inline and pool workers take no project locks
	s.mu.Unlock()
}

// --- hierarchical-collective cases (PR 9) ---

type tree struct {
	mu       sync.Mutex
	upstream chan []float64
	base     int
}

// Forwarding the root partial while the tree mutex is held wedges the
// whole tier: every other submitter parks on Lock until the upstream
// consumer drains the channel.
func badForwardUnderLock(t *tree, sum []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.upstream <- sum // want `blocking channel send while "t\.mu" is held`
}

// The cascade contract: snapshot the hook state under the lock, release,
// and only then run the (possibly blocking) upstream forward.
func okSnapshotThenForward(t *tree, sum []float64) {
	t.mu.Lock()
	up, base := t.upstream, t.base
	t.mu.Unlock()
	_ = base
	up <- sum
}

// Draining local waiters under the lock blocks on each handoff.
func badPublishUnderLock(t *tree, waiters []chan []float64, global []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, w := range waiters {
		w <- global // want `blocking channel send while "t\.mu" is held`
	}
}
