// Package par is a corpus stub of the real worker-pool package: the
// analyzers match callees by package path + name, so the miniature
// replica only needs the signatures.
package par

func AcquireToken() {}

func ReleaseToken() {}

func Parallelize(n int, fn func(lo, hi int)) {}

func ParallelizeGrain(n, grain int, fn func(lo, hi int)) {}
