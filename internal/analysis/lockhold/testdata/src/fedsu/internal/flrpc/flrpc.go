// Corpus for the lockhold analyzer: network I/O under a held mutex, in a
// miniature replica of the flrpc transport package.
package flrpc

import (
	"net"
	"net/rpc"
	"sync"
	"time"
)

type client struct {
	mu  sync.Mutex
	rpc *rpc.Client
}

func badDialAndCallUnderLock(c *client, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, time.Second) // want `blocking net DialTimeout I/O while "c\.mu" is held`
	if err != nil {
		return err
	}
	c.rpc = rpc.NewClient(conn)
	return c.rpc.Call("Svc.Join", 1, nil) // want `blocking rpc Call I/O while "c\.mu" is held`
}

func okDialOutsideLock(c *client, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	rc := rpc.NewClient(conn)
	c.mu.Lock()
	c.rpc = rc
	c.mu.Unlock()
	return rc.Call("Svc.Join", 1, nil)
}

// --- relay cases (PR 9) ---

type relay struct {
	mu       sync.Mutex
	upstream *rpc.Client
	partials int
}

// A relay forwarding its folded partial upstream while its session mutex
// is held stalls every member RPC for the round-trip to the root.
func badForwardPartialUnderLock(r *relay, sum []float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.partials++
	return r.upstream.Call("Coordinator.AggregatePartial", sum, nil) // want `blocking rpc Call I/O while "r\.mu" is held`
}

// The relay contract: bump counters and snapshot the client under the
// lock, run the upstream round-trip outside it.
func okForwardPartialOutsideLock(r *relay, sum []float64) error {
	r.mu.Lock()
	r.partials++
	up := r.upstream
	r.mu.Unlock()
	return up.Call("Coordinator.AggregatePartial", sum, nil)
}
