// Corpus for the lockhold analyzer: network I/O under a held mutex, in a
// miniature replica of the flrpc transport package.
package flrpc

import (
	"net"
	"net/rpc"
	"sync"
	"time"
)

type client struct {
	mu  sync.Mutex
	rpc *rpc.Client
}

func badDialAndCallUnderLock(c *client, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, time.Second) // want `blocking net DialTimeout I/O while "c\.mu" is held`
	if err != nil {
		return err
	}
	c.rpc = rpc.NewClient(conn)
	return c.rpc.Call("Svc.Join", 1, nil) // want `blocking rpc Call I/O while "c\.mu" is held`
}

func okDialOutsideLock(c *client, addr string) error {
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return err
	}
	rc := rpc.NewClient(conn)
	c.mu.Lock()
	c.rpc = rc
	c.mu.Unlock()
	return rc.Call("Svc.Join", 1, nil)
}
