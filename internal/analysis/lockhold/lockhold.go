// Package lockhold checks that no blocking operation happens while a
// sync.Mutex or sync.RWMutex is held, inside the concurrency-critical
// packages internal/fl, internal/flrpc, internal/exp, and internal/par.
// It machine-checks the PR 4 aggregation contract — contributions are
// staged under fl.Server.mu but folded OUTSIDE it (and outside the op fold
// lock wherever possible), so a slow fold can never serialize unrelated
// collectives — and the transport rule that RPC I/O never runs under a
// client or coordinator mutex.
//
// Blocking operations are: channel sends and receives, select statements
// without a default clause, ranging over a channel, sync.WaitGroup.Wait,
// the par compute rendezvous (par.AcquireToken, par.Parallelize,
// par.ParallelizeGrain), and network I/O (net dials/listens/accepts and
// net/rpc calls). sync.Cond.Wait is exempt: it releases the associated
// lock while parked, which is its whole design.
//
// The analysis is an intra-procedural may-analysis over the cfg package's
// control-flow graph: a lock counts as held on a path if some branch into
// it locked without unlocking, `defer mu.Unlock()` holds the lock to
// function exit (so everything after the defer is "under the lock"), and
// TryLock is treated as acquired. Locks held by a CALLER are invisible —
// the *Locked-suffix helpers (drainLocked, foldBatchLocked, ...) document
// that convention and are checked at their locking call sites instead.
//
// Sanctioned violations carry `//lint:allow lockhold -- <reason>`. The
// canonical one is the leaf-level fold lock: par dispatch under foldMu is
// safe because Parallelize falls back to inline execution when the pool is
// saturated and its workers never take project locks, so the rendezvous
// cannot wait on another foldMu holder.
package lockhold

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fedsu/internal/analysis"
	"fedsu/internal/analysis/cfg"
)

// Analyzer is the lockhold check.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "forbid blocking operations (channel ops, par rendezvous, net/rpc I/O, Wait) while a mutex is held\n\n" +
		"Scoped to internal/fl, internal/flrpc, internal/exp, internal/par. " +
		"Encodes the fold-outside-the-server-mutex aggregation contract and " +
		"the no-RPC-under-lock transport rule; annotate a sanctioned site " +
		"with //lint:allow lockhold -- <reason>.",
	Run: run,
}

// scope is the set of packages the contract governs.
var scope = map[string]bool{
	"fedsu/internal/fl":    true,
	"fedsu/internal/flrpc": true,
	"fedsu/internal/exp":   true,
	"fedsu/internal/par":   true,
}

// parBlocking is the set of fedsu/internal/par functions that rendezvous
// with the worker pool or the token budget.
var parBlocking = map[string]bool{
	"AcquireToken":     true,
	"Parallelize":      true,
	"ParallelizeGrain": true,
}

// netBlocking is the set of network I/O names (functions and methods of
// the net and net/rpc packages) treated as blocking.
var netBlocking = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "Listen": true,
	"Accept": true, "Call": true, "Serve": true, "ServeConn": true,
	"Read": true, "Write": true,
}

func run(pass *analysis.Pass) error {
	if !scope[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				check(pass, body)
			}
			return true
		})
	}
	return nil
}

// held is one acquired lock: where, and the source text naming it.
type held struct {
	pos  token.Pos
	text string
}

// lockset maps lock identities (root object pointer + field path) to
// their acquisition.
type lockset map[string]held

func (ls lockset) clone() lockset {
	c := make(lockset, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}
	g := cfg.Build(body)
	lat := cfg.Lattice[lockset]{
		Transfer: func(b *cfg.Block, in lockset) lockset { return c.scan(g, b, in, false) },
		Join: func(a, b lockset) lockset {
			// May-held union, keeping the earliest acquisition for messages.
			m := a.clone()
			for k, v := range b {
				if cur, ok := m[k]; !ok || v.pos < cur.pos {
					m[k] = v
				}
			}
			return m
		},
		Equal: func(a, b lockset) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
	}
	entries := cfg.Forward(g, lockset{}, lat)
	// Reporting pass: one diagnostic per offending node, from the fixpoint
	// entry states (the silent fixpoint may visit a block many times).
	for _, b := range g.Blocks {
		if in, ok := entries[b]; ok {
			c.scan(g, b, in, true)
		}
	}
}

type checker struct {
	pass *analysis.Pass
}

// scan interprets one block: lock operations update the set, blocking
// operations are (optionally) reported against it.
func (c *checker) scan(g *cfg.Graph, b *cfg.Block, in lockset, report bool) lockset {
	ls := in.clone()
	for _, n := range b.Nodes {
		// A comm statement's channel operation is performed by its select's
		// marker node, which already accounts for blocking (per default
		// clause); do not double-count it here.
		comm := false
		if st, ok := n.(ast.Stmt); ok && g.SelectComm[st] {
			comm = true
		}
		cfg.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				// Deferred calls run at exit. A deferred Unlock keeps the
				// lock held for the rest of the function — the desired
				// semantics — and a deferred blocking call runs after the
				// body, out of scope for this pass.
				return false
			case *ast.GoStmt:
				// Launching a goroutine does not block the launcher; the
				// goroutine's body is its own function, checked separately.
				return false
			case *ast.SelectStmt:
				if !cfg.HasDefault(m) {
					c.blocking(m.Pos(), "select with no default clause", ls, report)
				}
			case *ast.RangeStmt:
				if isChan(c.pass.TypesInfo.TypeOf(m.X)) {
					c.blocking(m.Pos(), "range over a channel", ls, report)
				}
			case *ast.SendStmt:
				if !comm {
					c.blocking(m.Arrow, "channel send", ls, report)
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !comm {
					c.blocking(m.Pos(), "channel receive", ls, report)
				}
			case *ast.CallExpr:
				c.call(m, ls, report)
			}
			return true
		})
	}
	return ls
}

// call classifies one call: a lock/unlock updates the set, a blocking
// callee is reported.
func (c *checker) call(call *ast.CallExpr, ls lockset, report bool) {
	fn := analysis.CalledFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	name := fn.Name()
	switch {
	case isMutexMethod(fn):
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		key, text, ok := lockKey(c.pass.TypesInfo, sel.X)
		if !ok {
			return
		}
		switch name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			ls[key] = held{pos: call.Pos(), text: text}
		case "Unlock", "RUnlock":
			delete(ls, key)
		}
	case fn.Pkg().Path() == "sync" && recvNamed(fn) == "WaitGroup" && name == "Wait":
		c.blocking(call.Pos(), "WaitGroup.Wait", ls, report)
	case fn.Pkg().Path() == "fedsu/internal/par" && parBlocking[name]:
		c.blocking(call.Pos(), "par."+name, ls, report)
	case (fn.Pkg().Path() == "net" || fn.Pkg().Path() == "net/rpc") && netBlocking[name]:
		c.blocking(call.Pos(), fn.Pkg().Name()+" "+name+" I/O", ls, report)
	}
}

func (c *checker) blocking(pos token.Pos, what string, ls lockset, report bool) {
	if !report || len(ls) == 0 {
		return
	}
	// Deterministic order when several locks are held.
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return ls[keys[i]].pos < ls[keys[j]].pos })
	for _, k := range keys {
		h := ls[k]
		c.pass.Reportf(pos, "blocking %s while %q is held (locked at line %d); release the lock first or annotate the sanctioned rendezvous",
			what, h.text, c.pass.Fset.Position(h.pos).Line)
	}
}

// isMutexMethod reports whether fn is a method of sync.Mutex or
// sync.RWMutex (sync.Cond is deliberately not matched).
func isMutexMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	n := recvNamed(fn)
	return n == "Mutex" || n == "RWMutex"
}

// recvNamed returns the name of fn's receiver's (pointer-stripped) named
// type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// lockKey computes a function-local identity for the lock named by the
// receiver expression (an identifier or a selector chain rooted at one):
// the root variable's object plus the field path. Receivers too dynamic to
// name (map/slice elements, call results) are not tracked.
func lockKey(info *types.Info, e ast.Expr) (key, text string, ok bool) {
	var path []string
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			path = append(path, x.Sel.Name)
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return "", "", false
			}
			// Reverse the path (collected inner-out).
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			suffix := strings.Join(path, ".")
			key = fmt.Sprintf("%p", obj)
			text = x.Name
			if suffix != "" {
				key += "." + suffix
				text += "." + suffix
			}
			return key, text, true
		default:
			return "", "", false
		}
	}
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
