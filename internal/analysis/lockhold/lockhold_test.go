package lockhold_test

import (
	"testing"

	"fedsu/internal/analysis/analysistest"
	"fedsu/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer,
		"fedsu/internal/fl", "fedsu/internal/flrpc")
}
