package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// runOn type-checks src as a single-file package and runs a through
// RunAnalyzer, returning the surviving diagnostics.
func runOn(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := RunAnalyzer(a, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatalf("RunAnalyzer: %v", err)
	}
	return diags
}

// flagReturns reports a diagnostic on every return statement; the tests
// below steer it with //lint:allow directives.
var flagReturns = &Analyzer{
	Name: "flagret",
	Doc:  "flagret: test analyzer that flags every return statement",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(ret.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

func TestAllowWithReasonSuppresses(t *testing.T) {
	src := `package p
func a() int {
	return 1 //lint:allow flagret -- sanctioned in this test
}
func b() int {
	//lint:allow flagret -- directive on the line above also covers it
	return 2
}
func c() int {
	return 3
}
`
	diags := runOn(t, flagReturns, src)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only the unsuppressed return): %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "return statement") {
		t.Fatalf("unexpected diagnostic %q", diags[0].Message)
	}
}

func TestAllowWithoutReasonDoesNotSuppress(t *testing.T) {
	src := `package p
func a() int {
	return 1 //lint:allow flagret
}
`
	diags := runOn(t, flagReturns, src)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (finding + malformed directive): %v", len(diags), diags)
	}
	var sawFinding, sawMalformed bool
	for _, d := range diags {
		if strings.Contains(d.Message, "return statement") {
			sawFinding = true
		}
		if strings.Contains(d.Message, "lacks a ` -- reason`") {
			sawMalformed = true
		}
	}
	if !sawFinding {
		t.Error("reasonless directive suppressed the finding; it must not")
	}
	if !sawMalformed {
		t.Error("reasonless directive was not itself reported as malformed")
	}
}

func TestMalformedDirectiveReportedEvenWhenNothingFires(t *testing.T) {
	src := `package p
//lint:allow flagret
var x = 1
`
	diags := runOn(t, flagReturns, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "lacks a ` -- reason`") {
		t.Fatalf("got %v, want exactly the malformed-directive report", diags)
	}
}

func TestAllowForOtherAnalyzerIgnored(t *testing.T) {
	src := `package p
func a() int {
	return 1 //lint:allow othercheck -- reason for a different analyzer
}
`
	diags := runOn(t, flagReturns, src)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "return statement") {
		t.Fatalf("got %v, want the finding (directive names a different analyzer)", diags)
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment          string
		analyzer, reason string
		ok               bool
	}{
		{"//lint:allow lockhold -- the fold lock is leaf-level", "lockhold", "the fold lock is leaf-level", true},
		{"//lint:allow lockhold", "lockhold", "", true},
		{"//lint:allow lockhold --   ", "lockhold", "", true},
		{"//lint:allow lockhold -- ", "lockhold", "", true},
		{"// ordinary comment", "", "", false},
		{"//lint:allow ", "", "", false},
	}
	for _, c := range cases {
		analyzer, reason, ok := parseAllow(c.comment)
		if analyzer != c.analyzer || reason != c.reason || ok != c.ok {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.comment, analyzer, reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}
