// Package analysistest runs an analyzer over a self-contained corpus of
// test packages and checks its diagnostics against `// want` comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A corpus lives under an analyzer's testdata directory with a GOPATH-like
// shape: testdata/src/<import/path>/*.go. Imports between corpus packages
// resolve within the corpus (so a check scoped to, say,
// "fedsu/internal/fl" can be exercised against a miniature replica of that
// package), and imports of the standard library resolve through the real
// toolchain's export data.
//
// Expectations are written at the end of the offending line:
//
//	res, err := c.srv.AggregateModel(id, round, v) // want `direct call`
//
// Each pattern is a regular expression that must match exactly one
// diagnostic reported on that line; diagnostics with no matching pattern,
// and patterns with no matching diagnostic, fail the test.
package analysistest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fedsu/internal/analysis"
	"fedsu/internal/analysis/driver"
)

// Run loads each corpus package beneath dir/src, applies a, and reports
// every mismatch between diagnostics and want comments through t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		srcRoot: filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		cache:   map[string]*pkg{},
	}
	if err := l.resolveExternal(); err != nil {
		t.Fatal(err)
	}
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzer(a, l.fset, p.files, p.types, p.info)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, p.files, diags)
	}
}

type pkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type loader struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*pkg
	std     types.Importer
	loading map[string]bool
}

// resolveExternal scans the whole corpus for imports that do not resolve
// inside it and builds one export-data importer covering them all.
func (l *loader) resolveExternal() error {
	external := map[string]bool{}
	err := filepath.Walk(l.srcRoot, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			q, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, statErr := os.Stat(filepath.Join(l.srcRoot, q)); statErr != nil {
				external[q] = true
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(external) == 0 {
		return nil
	}
	args := []string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}
	for q := range external {
		args = append(args, q)
	}
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("analysistest: go list: %w\n%s", err, stderr.Bytes())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	l.std = driver.ExportImporter(l.fset, exports)
	return nil
}

// Import implements types.Importer: corpus packages first, then the
// standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.srcRoot, path)); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	if l.std == nil {
		return nil, fmt.Errorf("analysistest: no importer for %q", path)
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*pkg, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading == nil {
		l.loading = map[string]bool{}
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysistest: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.srcRoot, path)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := driver.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking %s: %w", path, err)
	}
	p := &pkg{files: files, types: tpkg, info: info}
	l.cache[path] = p
	return p, nil
}

// wantRe extracts the quoted patterns of a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants compares diagnostics against the corpus's want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(rest, -1) {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else if u, err := strconv.Unquote(q); err == nil {
						pat = u
					} else {
						t.Errorf("%s: bad want pattern %s", pos, q)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
