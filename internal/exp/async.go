package exp

import (
	"context"
	"fmt"
	"io"

	"fedsu/internal/fl"
	"fedsu/internal/netem"
	"fedsu/internal/trace"
)

// AsyncModes returns the arm labels of the sync-vs-async comparison, in
// presentation order.
func AsyncModes() []string { return []string{"sync", "async", "async-event"} }

// AsyncResult compares synchronous barrier rounds against buffered-async
// rounds (and async plus event-triggered uploads) on the same heterogeneous
// device population: time-to-accuracy under straggler-heavy compute,
// diverse uplinks, and transient dropout.
type AsyncResult struct {
	// Workload names the compared workload.
	Workload string
	// Accuracy maps mode → accuracy-over-emulated-time series.
	Accuracy map[string]*trace.Series
	// TimeToTarget maps mode → emulated seconds to the workload target
	// (full-run time when the target was not reached; see Reached).
	TimeToTarget map[string]float64
	Reached      map[string]bool
	// FinalAccuracy maps mode → last evaluated accuracy.
	FinalAccuracy map[string]float64
	// UpGB maps mode → total encoded uplink gigabytes (emulated model
	// scale, as accounted by the strategies' traffic counters).
	UpGB map[string]float64
	// StaleDrops maps mode → contributions dropped for exceeding the
	// async staleness bound (zero for sync).
	StaleDrops map[string]int
}

// HeterogeneousNetem returns the straggler-heavy cluster profile the async
// comparison runs under: wide compute spread, lognormal link diversity,
// and transient dropout — the regime where a synchronous quorum idles the
// fast clients on the slow tail every round.
func HeterogeneousNetem(clients int, seed int64) netem.Config {
	c := netem.DefaultConfig(clients)
	c.ComputeHeterogeneity = 0.6
	c.BandwidthSigma = 0.5
	c.RoundJitter = 0.1
	c.DropoutProb = 0.05
	c.Seed = seed
	return c
}

// asyncK is the comparison's buffer size: half the fleet. The server
// applies a new global once the fastest half has reported, so the slow
// tail contributes (staleness-weighted) without gating anybody.
func asyncK(clients int) int {
	k := clients / 2
	if k < 1 {
		k = 1
	}
	return k
}

// RunAsyncCompare runs the sync-vs-async time-to-accuracy comparison for
// one workload through the grid scheduler. All arms run FedAvg (async
// folding requires a full-vector strategy) on the identical heterogeneous
// netem population; the async arms get the same total contribution budget
// as the sync arm — cfg.Rounds × Clients client-arrivals, i.e.
// Rounds·Clients/K global applications — so neither side sees more
// training work, only a different aggregation discipline.
func RunAsyncCompare(ctx context.Context, cfg Config, w Workload) (*AsyncResult, error) {
	if cfg.Clients < 2 {
		return nil, fmt.Errorf("exp: async comparison needs >= 2 clients, got %d", cfg.Clients)
	}
	prof := HeterogeneousNetem(cfg.Clients, cfg.Seed)
	k := asyncK(cfg.Clients)
	applies := cfg.Rounds * cfg.Clients / k

	syncCfg := cfg
	syncCfg.Netem = prof

	asyncCfg := syncCfg
	asyncCfg.Rounds = applies
	asyncCfg.Async = fl.AsyncConfig{K: k, MaxStaleness: 8, StalenessWeight: 0.5}

	eventCfg := asyncCfg
	// The event threshold gates negligible uploads; calibrated loosely to
	// the workload's update magnitude so early (large) updates pass and
	// late (converged) ones abstain.
	eventCfg.EventThreshold = 0.05

	grid := []GridRun{
		{Cfg: syncCfg, Workload: w, Scheme: "fedavg", Label: w.Name + "/sync"},
		{Cfg: asyncCfg, Workload: w, Scheme: "fedavg", Label: w.Name + "/async"},
		{Cfg: eventCfg, Workload: w, Scheme: "fedavg", Label: w.Name + "/async-event"},
	}
	runs, err := NewScheduler(cfg).Run(ctx, grid)
	if err != nil {
		return nil, err
	}

	res := &AsyncResult{
		Workload:      w.Name,
		Accuracy:      map[string]*trace.Series{},
		TimeToTarget:  map[string]float64{},
		Reached:       map[string]bool{},
		FinalAccuracy: map[string]float64{},
		UpGB:          map[string]float64{},
		StaleDrops:    map[string]int{},
	}
	for i, mode := range AsyncModes() {
		run := runs[i]
		acc := trace.NewSeries(mode, "time_s", "accuracy")
		upBytes, drops := 0.0, 0
		for _, st := range run.Stats {
			if st.Accuracy >= 0 {
				acc.Add(st.SimTime, st.Accuracy)
			}
			upBytes += float64(st.Traffic.UpBytes)
			drops += st.StaleDrops
		}
		secs, _, reached := run.TimeToAccuracy(w.TargetAccuracy)
		res.Accuracy[mode] = acc
		res.TimeToTarget[mode] = secs
		res.Reached[mode] = reached
		res.FinalAccuracy[mode] = acc.LastY()
		res.UpGB[mode] = upBytes / 1e9
		res.StaleDrops[mode] = drops
	}
	return res, nil
}

// Report prints the comparison summary.
func (r *AsyncResult) Report(w io.Writer) {
	t := trace.NewTable(fmt.Sprintf("Async rounds: sync vs buffered-async (%s)", r.Workload),
		"Mode", "Time to Target (s)", "Reached", "Final Acc", "Uplink GB", "Stale Drops")
	for _, mode := range AsyncModes() {
		t.AddRow(mode,
			fmt.Sprintf("%.0f", r.TimeToTarget[mode]),
			r.Reached[mode],
			fmt.Sprintf("%.3f", r.FinalAccuracy[mode]),
			fmt.Sprintf("%.2f", r.UpGB[mode]),
			r.StaleDrops[mode])
	}
	t.Render(w)
}
