package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"fedsu/internal/core"
	"fedsu/internal/fl"
	"fedsu/internal/nn"
	"fedsu/internal/sparse"
	"fedsu/internal/stats"
	"fedsu/internal/trace"
)

// Fig6Result compares a sampled parameter's trajectory under FedSU against
// regular synchronization (FedAvg), with the speculative-period boundaries
// marked — the paper's Fig. 6 microscope.
type Fig6Result struct {
	// Workload names the model.
	Workload string
	// ParamIndex is the sampled parameter.
	ParamIndex int
	// FedSU and FedAvg are the trajectories (x = round, y = value).
	FedSU, FedAvg *trace.Series
	// SpecStart and SpecEnd are the rounds where speculative periods began
	// and ended for the sampled parameter.
	SpecStart, SpecEnd []int
}

// RunFig6 runs FedSU and FedAvg on the same workload and seed and records
// the trajectory of a parameter that spends substantial time in speculative
// mode.
func RunFig6(ctx context.Context, cfg Config, w Workload) (*Fig6Result, error) {
	// FedSU run with per-round mask tracking over a pool of candidate
	// parameters; the most-speculative candidate is reported.
	engine, err := newExpEngine(cfg, w, "fedsu")
	if err != nil {
		return nil, err
	}
	size := len(engine.GlobalVector())
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	const pool = 32
	cand := make([]int, pool)
	for i := range cand {
		cand[i] = rng.Intn(size)
	}
	traj := make([][]float64, pool)
	masks := make([][]bool, pool)
	for k := 0; k < cfg.Rounds; k++ {
		if _, err := engine.RunRound(ctx, false); err != nil {
			return nil, err
		}
		vec := engine.GlobalVector()
		mgr, ok := sparse.UnwrapSyncer(engine.Clients()[0].Syncer()).(*core.Manager)
		if !ok {
			return nil, fmt.Errorf("exp: fig6 requires a FedSU manager")
		}
		mask := mgr.PredictableMask()
		for i, p := range cand {
			traj[i] = append(traj[i], vec[p])
			masks[i] = append(masks[i], mask[p])
		}
	}
	// Pick the candidate with the most speculative rounds.
	best, bestSpec := 0, -1
	for i := range cand {
		n := 0
		for _, m := range masks[i] {
			if m {
				n++
			}
		}
		if n > bestSpec {
			best, bestSpec = i, n
		}
	}

	res := &Fig6Result{Workload: w.Name, ParamIndex: cand[best]}
	res.FedSU = trace.NewSeries("fedsu", "round", "value")
	for k, v := range traj[best] {
		res.FedSU.Add(float64(k), v)
	}
	prev := false
	for k, m := range masks[best] {
		if m && !prev {
			res.SpecStart = append(res.SpecStart, k)
		}
		if !m && prev {
			res.SpecEnd = append(res.SpecEnd, k)
		}
		prev = m
	}

	// FedAvg reference trajectory on the identical workload and seed.
	series, _, err := trackOneParam(ctx, cfg, w, "fedavg", cand[best])
	if err != nil {
		return nil, err
	}
	res.FedAvg = series
	return res, nil
}

// newExpEngine builds an engine for the given workload and scheme using the
// experiment config.
func newExpEngine(cfg Config, w Workload, scheme string) (*fl.Engine, error) {
	factory, err := fl.StrategyFactoryWith(scheme, cfg.FedSU)
	if err != nil {
		return nil, err
	}
	flCfg := fl.Config{
		NumClients:     cfg.Clients,
		LocalIters:     cfg.LocalIters,
		BatchSize:      cfg.BatchSize,
		LR:             w.EffectiveLR(),
		WeightDecay:    0.001,
		DirichletAlpha: 1.0,
		EvalSamples:    64,
		Seed:           cfg.Seed,
		WireParams:     w.WireParams,
		DType:          cfg.DType,
	}
	ds := w.Dataset(cfg.Samples, cfg.Seed+31)
	builder := func() *nn.Model { return w.ModelOf(cfg.DType, w.EffectiveScale(cfg.ModelScale), cfg.Seed+97) }
	return fl.NewEngine(flCfg, builder, ds, factory)
}

// trackOneParam runs a scheme and records a single parameter's global value
// per round.
func trackOneParam(ctx context.Context, cfg Config, w Workload, scheme string, param int) (*trace.Series, *fl.Engine, error) {
	engine, err := newExpEngine(cfg, w, scheme)
	if err != nil {
		return nil, nil, err
	}
	s := trace.NewSeries(scheme, "round", "value")
	for k := 0; k < cfg.Rounds; k++ {
		if _, err := engine.RunRound(ctx, false); err != nil {
			return nil, nil, err
		}
		s.Add(float64(k), engine.GlobalVector()[param])
	}
	return s, engine, nil
}

// ApproximationError returns the mean absolute gap between the FedSU and
// FedAvg trajectories, normalized by the FedAvg trajectory's span — a
// quantitative version of Fig. 6's "FedSU well approximates FedAvg".
func (r *Fig6Result) ApproximationError() float64 {
	n := r.FedSU.Len()
	if r.FedAvg.Len() < n {
		n = r.FedAvg.Len()
	}
	if n == 0 {
		return 0
	}
	lo, hi := r.FedAvg.Y[0], r.FedAvg.Y[0]
	for _, v := range r.FedAvg.Y[:n] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := r.FedSU.Y[i] - r.FedAvg.Y[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(n) / span
}

// Fig7Result holds the CDF of per-parameter linear-time fractions under
// FedSU, the paper's Fig. 7.
type Fig7Result struct {
	// CDFs maps workload to the CDF series (x = linear fraction,
	// y = cumulative share of parameters).
	CDFs map[string]*trace.Series
	// ShareLinearMajority maps workload to the share of parameters that
	// were speculative for more than half the run (paper: > 80 %).
	ShareLinearMajority map[string]float64
}

// RunFig7 runs FedSU on the given workloads and collects each parameter's
// diagnosed-as-linear time fraction.
func RunFig7(ctx context.Context, cfg Config, workloads []Workload) (*Fig7Result, error) {
	res := &Fig7Result{
		CDFs:                map[string]*trace.Series{},
		ShareLinearMajority: map[string]float64{},
	}
	for _, w := range workloads {
		run, err := RunOne(ctx, cfg, w, "fedsu")
		if err != nil {
			return nil, err
		}
		mgr, ok := sparse.UnwrapSyncer(run.Engine.Clients()[0].Syncer()).(*core.Manager)
		if !ok {
			return nil, fmt.Errorf("exp: fig7 requires a FedSU manager")
		}
		fr := mgr.LinearFractions()
		cdf := stats.NewCDF(fr)
		xs, ys := cdf.Points(64)
		s := trace.NewSeries(w.Name, "linear_fraction", "cdf")
		for i := range xs {
			s.Add(xs[i], ys[i])
		}
		res.CDFs[w.Name] = s
		over := 0
		for _, f := range fr {
			if f > 0.5 {
				over++
			}
		}
		res.ShareLinearMajority[w.Name] = float64(over) / float64(len(fr))
	}
	return res, nil
}

// Report summarizes Fig. 7.
func (r *Fig7Result) Report(w io.Writer) {
	fmt.Fprintln(w, "Fig 7: share of parameters linear for > 50% of training")
	for name, share := range r.ShareLinearMajority {
		fmt.Fprintf(w, "  %s: %.0f%%\n", name, 100*share)
	}
}
