package exp

import (
	"context"
	"fmt"
	"math"

	"fedsu/internal/trace"
)

// PopScaleResult bundles the population-scale aggregation comparison: the
// same (workload, scheme) trained over cohorts sampled from a registered
// population, folded flat and through hierarchical trees at the given
// fanouts. Because the tree is bit-identical to the flat fold, every run
// follows the same training trajectory — the comparison isolates the
// systems columns (root ingest, partial count, round time).
type PopScaleResult struct {
	Cfg      Config
	Workload Workload
	Scheme   string
	// Fanouts holds the compared tree fanouts; 0 is the flat collective.
	Fanouts []int
	// Runs aligns with Fanouts.
	Runs []*Run
}

// RunPopScale executes the population-scale comparison on the grid
// scheduler. cfg.Population is the registry size (devices); cfg.Clients
// is the per-round cohort size. fanouts lists the tree fanouts to compare
// against the flat baseline (0 is inserted when absent).
func RunPopScale(ctx context.Context, cfg Config, w Workload, scheme string, fanouts []int) (*PopScaleResult, error) {
	if cfg.Population <= 0 {
		return nil, fmt.Errorf("exp: popscale needs a population size (got %d)", cfg.Population)
	}
	withFlat := fanouts
	hasFlat := false
	for _, f := range fanouts {
		if f == 0 {
			hasFlat = true
		}
	}
	if !hasFlat {
		withFlat = append([]int{0}, fanouts...)
	}
	grid := make([]GridRun, 0, len(withFlat))
	for _, f := range withFlat {
		cell := cfg
		cell.Fanout = f
		label := fmt.Sprintf("%s/%s/flat", w.Name, scheme)
		if f > 0 {
			label = fmt.Sprintf("%s/%s/fanout=%d", w.Name, scheme, f)
		}
		grid = append(grid, GridRun{Cfg: cell, Workload: w, Scheme: scheme, Label: label})
	}
	runs, err := NewScheduler(cfg).Run(ctx, grid)
	if err != nil {
		return nil, err
	}
	return &PopScaleResult{Cfg: cfg, Workload: w, Scheme: scheme, Fanouts: withFlat, Runs: runs}, nil
}

// BitIdentical reports whether run i's final global parameters match the
// flat baseline's exactly (the tentpole correctness bar: the tree is a
// topology change, never a numerics change).
func (r *PopScaleResult) BitIdentical(i int) bool {
	flat := r.flatRun()
	if flat == nil || r.Runs[i] == nil {
		return false
	}
	a, b := flat.Engine.GlobalVector(), r.Runs[i].Engine.GlobalVector()
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
			return false
		}
	}
	return true
}

func (r *PopScaleResult) flatRun() *Run {
	for i, f := range r.Fanouts {
		if f == 0 {
			return r.Runs[i]
		}
	}
	return nil
}

// Table renders the comparison: convergence plus the per-tier systems
// columns at equal cohorts — what a Table-I row looks like when the
// registered population is 10^5–10^6 and the root no longer ingests every
// member's upload.
func (r *PopScaleResult) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Population-scale aggregation: %s/%s, %d registered, cohort %d",
			r.Workload.Name, r.Scheme, r.Cfg.Population, r.Cfg.Clients),
		"Fanout", "Tiers", "Final Acc", "Round Time (s)", "Up MB/round",
		"Root Rx KB/round", "Partials/round", "Global == flat",
	)
	for i, f := range r.Fanouts {
		run := r.Runs[i]
		if run == nil || len(run.Stats) == 0 {
			continue
		}
		rounds := float64(len(run.Stats))
		var upBytes, rootRx, partials float64
		tiers := 0
		finalAcc := math.NaN()
		for _, st := range run.Stats {
			upBytes += float64(st.Traffic.UpBytes)
			rootRx += float64(st.RootRxBytes)
			partials += float64(st.ForwardedPartials)
			if st.Tiers > tiers {
				tiers = st.Tiers
			}
			if st.Accuracy >= 0 {
				finalAcc = st.Accuracy
			}
		}
		fanout := "flat"
		if f > 0 {
			fanout = fmt.Sprintf("%d", f)
		}
		t.AddRow(
			fanout,
			tiers,
			fmt.Sprintf("%.3f", finalAcc),
			run.MeanRoundTime(),
			upBytes/rounds/1e6,
			rootRx/rounds/1e3,
			partials/rounds,
			r.BitIdentical(i),
		)
	}
	return t
}
