package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"fedsu/internal/core"
	"fedsu/internal/fl"
	"fedsu/internal/netem"
	"fedsu/internal/nn"
	"fedsu/internal/tensor"
)

// Config sets the emulation scale shared by all experiments.
type Config struct {
	// Clients is the emulated client count.
	Clients int
	// Rounds is the maximum rounds per run.
	Rounds int
	// LocalIters and BatchSize are the per-round local-training knobs; the
	// paper uses 50 and 32.
	LocalIters, BatchSize int
	// Samples is the dataset size.
	Samples int
	// ModelScale divides model widths (1 = paper scale).
	ModelScale int
	// DType selects the compute precision for every model replica in the
	// grid. The zero value (tensor.Float64) reproduces the historical
	// results bit-for-bit; tensor.Float32 halves model/scratch memory and
	// makes the wire codec lossless. Under float32 the FedSU managers run
	// with Quantize set so the speculative state machine operates entirely
	// in the wire image the clients actually store.
	DType tensor.DType
	// EvalEvery evaluates the global model every n rounds.
	EvalEvery int
	// Seed drives all randomness.
	Seed int64
	// FedSU carries the FedSU hyper-parameters (T_ℛ, T_𝒮, θ, variant).
	FedSU core.Options
	// Netem overrides the cluster timing model (zero value keeps
	// netem.DefaultConfig at the run's client count); NumClients and Seed
	// are filled from the run when left zero.
	Netem netem.Config
	// Async switches runs to buffered-async rounds (fl.Config.Async);
	// Rounds then counts global applications. Zero keeps sync barriers.
	Async fl.AsyncConfig
	// EventThreshold enables event-triggered uploads (fl.Config
	// counterpart); zero disables gating.
	EventThreshold float64
	// Population switches runs to population-scale cohort rounds
	// (fl.Config.Population): Population registered devices, a
	// Clients-sized cohort sampled per round, timed by the population
	// network model. Zero keeps classic fixed-fleet rounds.
	Population int
	// Fanout >= 2 aggregates population rounds through the hierarchical
	// tree (fl.Config.Fanout); zero keeps the flat collective.
	Fanout int
	// Compress is the wire compression chain spec (fl.Config.Compress),
	// e.g. "topk,q4,rans". Empty keeps the default f32 sparse codec.
	Compress string
	// Verbose receives progress lines when non-nil. Grid drivers wrap it so
	// concurrent runs emit whole, per-run-prefixed lines.
	Verbose io.Writer

	// Parallel is the number of experiment runs in flight at once in the
	// grid drivers (RunEndToEnd, RunFig8, the sweeps); values below 1 mean
	// sequential. Results are bit-identical at any setting.
	Parallel int
	// Artifacts optionally shares one dataset/partition cache across
	// drivers (nil gives each driver a private cache).
	Artifacts *Artifacts
	// Clock, when non-nil, timestamps each grid run for per-run wall-clock
	// reporting (wired to time.Now by cmd/fedsu-bench; nil keeps library
	// runs deterministic and silent).
	Clock func() time.Time
}

// FastConfig returns a laptop-scale configuration used by tests and the
// default benchmark harness: the same algorithms and workflow as the paper,
// with fewer clients, iterations, and rounds.
func FastConfig() Config {
	return Config{
		Clients:    8,
		Rounds:     48,
		LocalIters: 10,
		BatchSize:  16,
		Samples:    2048,
		ModelScale: 0, // per-workload EmuScale
		EvalEvery:  2,
		Seed:       1,
		FedSU:      core.DefaultOptions(),
	}
}

// StandardConfig returns a heavier configuration closer to the paper's
// setup (still width-reduced models; raise Rounds/Clients further via flags
// in cmd/fedsu-bench for full fidelity).
func StandardConfig() Config {
	return Config{
		Clients:    32,
		Rounds:     150,
		LocalIters: 10,
		BatchSize:  16,
		Samples:    4096,
		ModelScale: 8,
		EvalEvery:  2,
		Seed:       1,
		FedSU:      core.DefaultOptions(),
	}
}

// Run is one (workload, scheme) emulated training run.
type Run struct {
	// Workload and Scheme identify the run.
	Workload, Scheme string
	// Stats holds every round's statistics.
	Stats []fl.RoundStats
	// Engine is the (finished) engine, kept for post-hoc inspection
	// (masks, linear fractions, client models).
	Engine *fl.Engine
}

// TimeToAccuracy returns the emulated seconds until the held-out accuracy
// first reached target, the number of rounds that took, and whether the
// target was reached; when it was not, the totals of the full run are
// returned.
func (r *Run) TimeToAccuracy(target float64) (seconds float64, rounds int, reached bool) {
	for _, st := range r.Stats {
		if st.Accuracy >= target {
			return st.SimTime, st.Round + 1, true
		}
	}
	if len(r.Stats) == 0 {
		// A zero-round run (Rounds=0, or cancelled before round one) has no
		// trajectory at all: report zero totals rather than panicking.
		return 0, 0, false
	}
	last := r.Stats[len(r.Stats)-1]
	return last.SimTime, last.Round + 1, false
}

// MeanRoundTime returns the average emulated round duration.
func (r *Run) MeanRoundTime() float64 {
	if len(r.Stats) == 0 {
		return 0
	}
	return r.Stats[len(r.Stats)-1].SimTime / float64(len(r.Stats))
}

// MeanSparsification returns the run-average sparsification ratio.
func (r *Run) MeanSparsification() float64 {
	if len(r.Stats) == 0 {
		return 0
	}
	s := 0.0
	for _, st := range r.Stats {
		s += st.SparsificationRatio
	}
	return s / float64(len(r.Stats))
}

// RunOne executes one (workload, scheme) training run per the config.
func RunOne(ctx context.Context, cfg Config, w Workload, scheme string) (*Run, error) {
	return runOne(ctx, cfg, w, scheme, nil)
}

// runOne is RunOne with an optional artifact cache: when arts is non-nil,
// the dataset and its Dirichlet partition come from the cache (built once
// per key, shared read-only across concurrent runs) instead of being
// synthesized per run. Cached and uncached paths are bit-identical because
// both artifacts are pure functions of their key.
func runOne(ctx context.Context, cfg Config, w Workload, scheme string, arts *Artifacts) (*Run, error) {
	fedsuOpts := cfg.FedSU
	if cfg.DType == tensor.Float32 {
		fedsuOpts.Quantize = true
	}
	factory, err := fl.StrategyFactoryWith(scheme, fedsuOpts)
	if err != nil {
		return nil, err
	}
	flCfg := fl.Config{
		NumClients:     cfg.Clients,
		LocalIters:     cfg.LocalIters,
		BatchSize:      cfg.BatchSize,
		LR:             w.EffectiveLR(),
		WeightDecay:    0.001,
		DirichletAlpha: 1.0,
		EvalSamples:    256,
		EvalBatch:      64,
		Seed:           cfg.Seed,
		WireParams:     w.WireParams,
		DType:          cfg.DType,
		Async:          cfg.Async,
		EventThreshold: cfg.EventThreshold,
		Population:     cfg.Population,
		Fanout:         cfg.Fanout,
		Compress:       cfg.Compress,
	}
	if cfg.Netem != (netem.Config{}) {
		flCfg.Netem = cfg.Netem
		if flCfg.Netem.NumClients == 0 {
			flCfg.Netem.NumClients = cfg.Clients
		}
		if flCfg.Netem.Seed == 0 {
			flCfg.Netem.Seed = cfg.Seed
		}
	}
	dsSeed := cfg.Seed + 31
	var engine *fl.Engine
	builder := func() *nn.Model { return w.ModelOf(cfg.DType, w.EffectiveScale(cfg.ModelScale), cfg.Seed+97) }
	if arts != nil {
		ds := arts.Dataset(w, cfg.Samples, dsSeed)
		shards := arts.Partition(w, ds, cfg.Samples, dsSeed,
			flCfg.NumClients, flCfg.DirichletAlpha, flCfg.Seed)
		engine, err = fl.NewEngineWithShards(flCfg, builder, ds, shards, factory)
	} else {
		engine, err = fl.NewEngine(flCfg, builder, w.Dataset(cfg.Samples, dsSeed), factory)
	}
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", w.Name, scheme, err)
	}
	logf(cfg.Verbose, "run %s/%s: %d clients, %d rounds", w.Name, scheme, cfg.Clients, cfg.Rounds)
	stats, err := engine.Run(ctx, cfg.Rounds, cfg.EvalEvery)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", w.Name, scheme, err)
	}
	return &Run{Workload: w.Name, Scheme: scheme, Stats: stats, Engine: engine}, nil
}
