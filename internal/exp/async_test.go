package exp

import (
	"bytes"
	"context"
	"testing"
)

// TestRunAsyncCompareSmoke runs the three-arm sync/async/async-event
// comparison at micro scale: all arms complete, every mode reports a
// non-empty accuracy series over nondecreasing emulated time, and the
// async arms account their staleness drops.
func TestRunAsyncCompareSmoke(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 4
	res, err := RunAsyncCompare(context.Background(), cfg, CNNWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "cnn" {
		t.Fatalf("workload = %q", res.Workload)
	}
	for _, mode := range AsyncModes() {
		s := res.Accuracy[mode]
		if s == nil || s.Len() == 0 {
			t.Fatalf("%s: empty accuracy series", mode)
		}
		prev := -1.0
		for _, x := range s.X {
			if x < prev {
				t.Fatalf("%s: emulated time went backwards (%v after %v)", mode, x, prev)
			}
			prev = x
		}
		if res.TimeToTarget[mode] <= 0 {
			t.Errorf("%s: TimeToTarget = %v, want > 0", mode, res.TimeToTarget[mode])
		}
		if res.UpGB[mode] <= 0 {
			t.Errorf("%s: UpGB = %v, want > 0", mode, res.UpGB[mode])
		}
		if acc := res.FinalAccuracy[mode]; acc <= 0 || acc > 1 {
			t.Errorf("%s: FinalAccuracy = %v out of (0, 1]", mode, acc)
		}
	}
	if res.StaleDrops["sync"] != 0 {
		t.Errorf("sync arm reported %d stale drops", res.StaleDrops["sync"])
	}

	var buf bytes.Buffer
	res.Report(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty report")
	}
}

// TestRunAsyncCompareRejectsSingleClient: the comparison is meaningless
// (and asyncK degenerate) below two clients.
func TestRunAsyncCompareRejectsSingleClient(t *testing.T) {
	cfg := microConfig()
	cfg.Clients = 1
	if _, err := RunAsyncCompare(context.Background(), cfg, CNNWorkload()); err == nil {
		t.Fatal("single-client comparison accepted")
	}
}

// TestHeterogeneousNetemProfile pins the comparison's population shape so
// result churn from profile edits is deliberate.
func TestHeterogeneousNetemProfile(t *testing.T) {
	c := HeterogeneousNetem(8, 42)
	if c.NumClients != 8 || c.Seed != 42 {
		t.Fatalf("clients/seed = %d/%d", c.NumClients, c.Seed)
	}
	if c.ComputeHeterogeneity <= 0 || c.BandwidthSigma <= 0 || c.DropoutProb <= 0 {
		t.Fatal("profile is not heterogeneous")
	}
}

func TestAsyncK(t *testing.T) {
	for _, tc := range []struct{ clients, want int }{{1, 1}, {2, 1}, {3, 1}, {8, 4}, {9, 4}} {
		if got := asyncK(tc.clients); got != tc.want {
			t.Errorf("asyncK(%d) = %d, want %d", tc.clients, got, tc.want)
		}
	}
}
