package exp

import (
	"context"
	"fmt"
	"io"

	"fedsu/internal/trace"
)

// SweepResult holds one hyper-parameter sensitivity sweep (Fig. 9 for T_ℛ,
// Fig. 10 for T_𝒮).
type SweepResult struct {
	// Param is "TR" or "TS".
	Param string
	// Values are the swept threshold values.
	Values []float64
	// Accuracy and Ratio map workload → threshold label → series.
	Accuracy map[string]map[string]*trace.Series
	Ratio    map[string]map[string]*trace.Series
	// FinalAccuracy and MeanRatio summarize each cell.
	FinalAccuracy map[string]map[string]float64
	MeanRatio     map[string]map[string]float64
}

// Fig9Thresholds are the paper's T_ℛ sweep values.
func Fig9Thresholds() []float64 { return []float64{0.1, 0.01, 0.001, 0.0001} }

// Fig10Thresholds are the paper's T_𝒮 sweep values.
func Fig10Thresholds() []float64 { return []float64{0.1, 1, 10, 100} }

// RunFig9 sweeps the linearity-diagnosis threshold T_ℛ.
func RunFig9(ctx context.Context, cfg Config, workloads []Workload) (*SweepResult, error) {
	return runSweep(ctx, cfg, workloads, "TR", Fig9Thresholds())
}

// RunFig10 sweeps the error-feedback threshold T_𝒮.
func RunFig10(ctx context.Context, cfg Config, workloads []Workload) (*SweepResult, error) {
	return runSweep(ctx, cfg, workloads, "TS", Fig10Thresholds())
}

func runSweep(ctx context.Context, cfg Config, workloads []Workload, param string, values []float64) (*SweepResult, error) {
	res := &SweepResult{
		Param:         param,
		Values:        values,
		Accuracy:      map[string]map[string]*trace.Series{},
		Ratio:         map[string]map[string]*trace.Series{},
		FinalAccuracy: map[string]map[string]float64{},
		MeanRatio:     map[string]map[string]float64{},
	}
	var grid []GridRun
	for _, w := range workloads {
		res.Accuracy[w.Name] = map[string]*trace.Series{}
		res.Ratio[w.Name] = map[string]*trace.Series{}
		res.FinalAccuracy[w.Name] = map[string]float64{}
		res.MeanRatio[w.Name] = map[string]float64{}
		for _, v := range values {
			c := cfg
			switch param {
			case "TR":
				c.FedSU.TR = v
			case "TS":
				c.FedSU.TS = v
			default:
				return nil, fmt.Errorf("exp: unknown sweep parameter %q", param)
			}
			label := fmt.Sprintf("%s=%g", param, v)
			// The swept threshold does not change the training data, so
			// every cell of a workload's sweep shares one cached dataset
			// and partition.
			grid = append(grid, GridRun{
				Cfg: c, Workload: w, Scheme: "fedsu",
				Label: w.Name + "/" + label,
			})
		}
	}
	runs, err := NewScheduler(cfg).Run(ctx, grid)
	if err != nil {
		return nil, err
	}
	for i, g := range grid {
		run, w := runs[i], g.Workload
		label := g.Label[len(w.Name)+1:]
		acc := trace.NewSeries(label, "time_s", "accuracy")
		ratio := trace.NewSeries(label, "time_s", "sparsification_ratio")
		for _, st := range run.Stats {
			if st.Accuracy >= 0 {
				acc.Add(st.SimTime, st.Accuracy)
			}
			ratio.Add(st.SimTime, st.SparsificationRatio)
		}
		res.Accuracy[w.Name][label] = acc
		res.Ratio[w.Name][label] = ratio
		res.FinalAccuracy[w.Name][label] = acc.LastY()
		res.MeanRatio[w.Name][label] = run.MeanSparsification()
	}
	return res, nil
}

// Report prints the sweep summary table.
func (r *SweepResult) Report(w io.Writer) {
	t := trace.NewTable(
		fmt.Sprintf("Sensitivity to %s", r.Param),
		"Model", r.Param, "Final Acc", "Mean Sparsification")
	for name := range r.FinalAccuracy {
		for _, v := range r.Values {
			label := fmt.Sprintf("%s=%g", r.Param, v)
			t.AddRow(name, fmt.Sprintf("%g", v),
				r.FinalAccuracy[name][label],
				fmt.Sprintf("%.1f%%", 100*r.MeanRatio[name][label]))
		}
	}
	t.Render(w)
}
