// Package exp implements one driver per table and figure of the paper's
// evaluation (Sec. VI): the three model/dataset workloads, the end-to-end
// scheme comparison (Table I, Fig. 5), the microscopic trajectory studies
// (Figs. 1, 2, 6, 7), the ablation (Fig. 8), the sensitivity sweeps
// (Figs. 9, 10), and the overhead measurement (Table II).
//
// Experiments run on the emulated cluster at a configurable scale. Byte and
// wall-clock accounting always uses the paper-scale parameter counts
// (WireParams), so per-round times and speedup factors are comparable to
// the paper even when the trained models are width-reduced.
package exp

import (
	"fmt"
	"io"

	"fedsu/internal/data"
	"fedsu/internal/nn"
	"fedsu/internal/tensor"
)

// Paper-scale parameter counts used for traffic/compute accounting.
const (
	// WireParamsCNN is the paper's EMNIST CNN (two 5x5 convs + two FC).
	WireParamsCNN = 600_000
	// WireParamsResNet18 is ResNet-18's parameter count.
	WireParamsResNet18 = 11_700_000
	// WireParamsDenseNet121 is DenseNet-121's parameter count.
	WireParamsDenseNet121 = 8_000_000
)

// Workload couples a model architecture with its dataset and training
// hyper-parameters, mirroring the paper's three evaluation workloads.
type Workload struct {
	// Name is the paper's workload label ("cnn", "resnet18",
	// "densenet121").
	Name string
	// TargetAccuracy is the Table I near-optimal accuracy target.
	TargetAccuracy float64
	// LR is the paper's SGD learning rate for this workload
	// (0.01 / 0.001 / 0.01).
	LR float64
	// EmuLR is the learning rate calibrated for the synthetic stand-in
	// tasks at emulation scale (the stand-ins have different loss
	// geometry than the real corpora); zero falls back to LR.
	EmuLR float64
	// EmuScale is the recommended model width divisor at laptop scale,
	// used when the experiment config does not override it.
	EmuScale int
	// WireParams is the paper-scale parameter count for accounting.
	WireParams int
	// DataName identifies the underlying corpus ("emnist", "fmnist",
	// "cifar10"), independent of the workload label. It keys the
	// shared-artifact dataset cache, so workloads that train different
	// models on the same stand-in (resnet18 and lstm both use FMNIST)
	// share one synthesized corpus. Empty falls back to Name.
	DataName string

	buildModel   func(scale int, seed int64, dt tensor.DType) *nn.Model
	buildDataset func(samples int, seed int64) *data.Dataset
}

// Model builds a fresh float64 model replica at the given width-reduction
// scale (the historical default precision).
func (w Workload) Model(scale int, seed int64) *nn.Model {
	return w.buildModel(scale, seed, tensor.Float64)
}

// ModelOf is Model at an explicit compute precision.
func (w Workload) ModelOf(dt tensor.DType, scale int, seed int64) *nn.Model {
	return w.buildModel(scale, seed, dt)
}

// EffectiveLR returns the emulation learning rate (EmuLR, falling back to
// the paper's LR).
func (w Workload) EffectiveLR() float64 {
	if w.EmuLR > 0 {
		return w.EmuLR
	}
	return w.LR
}

// EffectiveScale returns override when positive, otherwise the workload's
// recommended emulation scale (or paper scale 1 as a last resort).
func (w Workload) EffectiveScale(override int) int {
	if override > 0 {
		return override
	}
	if w.EmuScale > 0 {
		return w.EmuScale
	}
	return 1
}

// Dataset builds the workload's dataset stand-in. The result is immutable
// (see internal/data) and therefore safe to share across concurrent runs;
// grids route this call through the Artifacts cache so each distinct
// (DataKey, samples, seed) corpus is synthesized once per cache.
func (w Workload) Dataset(samples int, seed int64) *data.Dataset {
	return w.buildDataset(samples, seed)
}

// DataKey returns the corpus identity used by the dataset cache.
func (w Workload) DataKey() string {
	if w.DataName != "" {
		return w.DataName
	}
	return w.Name
}

// Workloads returns the paper's three evaluation workloads in presentation
// order: CNN/EMNIST, DenseNet-121/CIFAR-10, ResNet-18/FMNIST.
func Workloads() []Workload {
	return []Workload{CNNWorkload(), DenseNetWorkload(), ResNetWorkload()}
}

// AllWorkloads returns the paper's workloads plus this library's
// extensions (the row-LSTM sequence workload).
func AllWorkloads() []Workload {
	return append(Workloads(), LSTMWorkload())
}

// LSTMWorkload is an extension beyond the paper's zoo: a row-LSTM sequence
// classifier on the FMNIST stand-in (each image row is one timestep),
// mirroring the recurrent workloads CMFL evaluated. Recurrent parameter
// trajectories give FedSU a fourth, qualitatively different pattern family.
func LSTMWorkload() Workload {
	return Workload{
		Name:           "lstm",
		DataName:       "fmnist",
		TargetAccuracy: 0.80,
		LR:             0.01,
		EmuLR:          0.05,
		EmuScale:       8,
		WireParams:     4_000_000,
		buildModel: func(scale int, seed int64, dt tensor.DType) *nn.Model {
			return nn.NewRowLSTM(nn.ModelConfig{
				InChannels: 1, ImageSize: 28, NumClasses: 10, Scale: scale, Seed: seed, DType: dt,
			})
		},
		buildDataset: func(samples int, seed int64) *data.Dataset {
			return data.FMNIST(data.WithSamples(samples), data.WithSeed(seed))
		},
	}
}

// CNNWorkload is the paper's CNN-on-EMNIST workload (target accuracy 0.60,
// LR 0.01).
func CNNWorkload() Workload {
	return Workload{
		Name:           "cnn",
		DataName:       "emnist",
		TargetAccuracy: 0.60,
		LR:             0.01,
		EmuLR:          0.01,
		EmuScale:       8,
		WireParams:     WireParamsCNN,
		buildModel: func(scale int, seed int64, dt tensor.DType) *nn.Model {
			return nn.NewPaperCNN(nn.ModelConfig{
				InChannels: 1, ImageSize: 28, NumClasses: 47, Scale: scale, Seed: seed, DType: dt,
			})
		},
		buildDataset: func(samples int, seed int64) *data.Dataset {
			return data.EMNIST(data.WithSamples(samples), data.WithSeed(seed))
		},
	}
}

// ResNetWorkload is the paper's ResNet-18-on-FMNIST workload (target
// accuracy 0.85, LR 0.001).
func ResNetWorkload() Workload {
	return Workload{
		Name:           "resnet18",
		DataName:       "fmnist",
		TargetAccuracy: 0.85,
		LR:             0.001,
		EmuLR:          0.02,
		EmuScale:       16,
		WireParams:     WireParamsResNet18,
		buildModel: func(scale int, seed int64, dt tensor.DType) *nn.Model {
			return nn.NewResNet18(nn.ModelConfig{
				InChannels: 1, ImageSize: 28, NumClasses: 10, Scale: scale, Seed: seed, DType: dt,
			})
		},
		buildDataset: func(samples int, seed int64) *data.Dataset {
			return data.FMNIST(data.WithSamples(samples), data.WithSeed(seed))
		},
	}
}

// DenseNetWorkload is the paper's DenseNet-121-on-CIFAR-10 workload (target
// accuracy 0.65, LR 0.01).
func DenseNetWorkload() Workload {
	return Workload{
		Name:           "densenet121",
		DataName:       "cifar10",
		TargetAccuracy: 0.65,
		LR:             0.01,
		EmuLR:          0.02,
		EmuScale:       12,
		WireParams:     WireParamsDenseNet121,
		buildModel: func(scale int, seed int64, dt tensor.DType) *nn.Model {
			return nn.NewDenseNet121(nn.ModelConfig{
				InChannels: 3, ImageSize: 32, NumClasses: 10, Scale: scale, Seed: seed, DType: dt,
			})
		},
		buildDataset: func(samples int, seed int64) *data.Dataset {
			return data.CIFAR10(data.WithSamples(samples), data.WithSeed(seed))
		},
	}
}

// WorkloadByName resolves a workload label.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range AllWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("exp: unknown workload %q", name)
}

// logf writes progress when a sink is configured.
func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
