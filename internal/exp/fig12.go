package exp

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"fedsu/internal/fl"
	"fedsu/internal/nn"
	"fedsu/internal/stats"
	"fedsu/internal/trace"
)

// Fig1Result holds sampled per-parameter evolution trajectories under plain
// FedAvg training, the paper's Fig. 1 (linearity-period motivation).
type Fig1Result struct {
	// Trajectories maps workload name to the sampled parameter series
	// (x = round, y = parameter value).
	Trajectories map[string][]*trace.Series
}

// RunFig1 trains the CNN and DenseNet workloads under FedAvg and records
// the instantaneous values of randomly-selected scalar parameters.
func RunFig1(ctx context.Context, cfg Config, samplesPerModel int) (*Fig1Result, error) {
	res := &Fig1Result{Trajectories: map[string][]*trace.Series{}}
	for _, w := range []Workload{CNNWorkload(), DenseNetWorkload()} {
		series, _, err := trackTrajectories(ctx, cfg, w, "fedavg", samplesPerModel)
		if err != nil {
			return nil, err
		}
		res.Trajectories[w.Name] = series
	}
	return res, nil
}

// trackTrajectories runs one engine round-by-round, recording the global
// value of sampled parameter indices each round. It also returns the
// per-round global update vectors for normalized-difference analysis.
func trackTrajectories(ctx context.Context, cfg Config, w Workload, scheme string, nSamples int) ([]*trace.Series, [][]float64, error) {
	factory, err := fl.StrategyFactoryWith(scheme, cfg.FedSU)
	if err != nil {
		return nil, nil, err
	}
	flCfg := fl.Config{
		NumClients:     cfg.Clients,
		LocalIters:     cfg.LocalIters,
		BatchSize:      cfg.BatchSize,
		LR:             w.LR,
		WeightDecay:    0.001,
		DirichletAlpha: 1.0,
		EvalSamples:    64,
		Seed:           cfg.Seed,
		WireParams:     w.WireParams,
		DType:          cfg.DType,
	}
	ds := w.Dataset(cfg.Samples, cfg.Seed+31)
	builder := func() *nn.Model { return w.ModelOf(cfg.DType, cfg.ModelScale, cfg.Seed+97) }
	engine, err := fl.NewEngine(flCfg, builder, ds, factory)
	if err != nil {
		return nil, nil, err
	}

	size := len(engine.GlobalVector())
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	idx := make([]int, nSamples)
	for i := range idx {
		idx[i] = rng.Intn(size)
	}
	series := make([]*trace.Series, nSamples)
	for i, p := range idx {
		series[i] = trace.NewSeries(fmt.Sprintf("%s.param%d", w.Name, p), "round", "value")
	}

	var updates [][]float64
	prev := engine.GlobalVector()
	for k := 0; k < cfg.Rounds; k++ {
		if _, err := engine.RunRound(ctx, false); err != nil {
			return nil, nil, err
		}
		cur := engine.GlobalVector()
		upd := make([]float64, size)
		for i := range upd {
			upd[i] = cur[i] - prev[i]
		}
		updates = append(updates, upd)
		prev = cur
		for i, p := range idx {
			series[i].Add(float64(k), cur[p])
		}
	}
	return series, updates, nil
}

// Fig2Result holds the cross-round normalized-difference measurements of
// Sec. III-A: the instantaneous series for the CNN and the CDFs for CNN and
// DenseNet.
type Fig2Result struct {
	// Instantaneous is ‖δ_{k+1} − δ_k‖/‖δ_k‖ per round for the CNN.
	Instantaneous *trace.Series
	// CDFs maps workload name to the CDF of normalized differences.
	CDFs map[string]*trace.Series
	// FracBelow005 maps workload to the fraction of updates with
	// normalized difference below 0.005 (the paper reports > 90 %).
	FracBelow map[string]float64
	// FracThreshold is the threshold used for FracBelow.
	FracThreshold float64
}

// RunFig2 measures the per-round normalized difference of the global
// updates while training the CNN and DenseNet workloads under FedAvg.
func RunFig2(ctx context.Context, cfg Config) (*Fig2Result, error) {
	res := &Fig2Result{
		CDFs:          map[string]*trace.Series{},
		FracBelow:     map[string]float64{},
		FracThreshold: 0.05,
	}
	for _, w := range []Workload{CNNWorkload(), DenseNetWorkload()} {
		_, updates, err := trackTrajectories(ctx, cfg, w, "fedavg", 1)
		if err != nil {
			return nil, err
		}
		var nds []float64
		inst := trace.NewSeries(w.Name, "round", "normalized_difference")
		for k := 1; k < len(updates); k++ {
			nd := stats.NormalizedDifference(updates[k-1], updates[k])
			nds = append(nds, nd)
			inst.Add(float64(k), nd)
		}
		if w.Name == "cnn" {
			res.Instantaneous = inst
		}
		cdf := stats.NewCDF(nds)
		xs, ys := cdf.Points(50)
		s := trace.NewSeries(w.Name, "normalized_difference", "cdf")
		for i := range xs {
			s.Add(xs[i], ys[i])
		}
		res.CDFs[w.Name] = s
		below := 0
		for _, v := range nds {
			if v < res.FracThreshold {
				below++
			}
		}
		if len(nds) > 0 {
			res.FracBelow[w.Name] = float64(below) / float64(len(nds))
		}
	}
	return res, nil
}

// Report summarizes the Fig. 2 measurement.
func (r *Fig2Result) Report(w io.Writer) {
	fmt.Fprintln(w, "Fig 2: cross-round normalized difference of global updates")
	for name, frac := range r.FracBelow {
		fmt.Fprintf(w, "  %s: %.0f%% of updates below %.3f\n", name, 100*frac, r.FracThreshold)
	}
}
