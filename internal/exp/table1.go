package exp

import (
	"context"
	"fmt"
	"io"

	"fedsu/internal/trace"
)

// Schemes returns the paper's end-to-end comparison set in Table I order.
func Schemes() []string { return []string{"fedsu", "apf", "cmfl", "fedavg"} }

// EndToEndResult bundles the runs behind Table I and Fig. 5.
type EndToEndResult struct {
	Cfg  Config
	Runs map[string]map[string]*Run // workload → scheme → run
}

// RunEndToEnd executes every (workload, scheme) pair of the paper's
// end-to-end evaluation on the grid scheduler (cfg.Parallel runs in
// flight, shared dataset/partition cache). The same result feeds Table I
// and Fig. 5.
func RunEndToEnd(ctx context.Context, cfg Config, workloads []Workload, schemes []string) (*EndToEndResult, error) {
	grid := endToEndGrid(cfg, workloads, schemes)
	runs, err := NewScheduler(cfg).Run(ctx, grid)
	if err != nil {
		return nil, err
	}
	return assembleEndToEnd(cfg, grid, runs), nil
}

// endToEndGrid flattens the (workload × scheme) matrix into grid cells in
// the sequential loop's iteration order.
func endToEndGrid(cfg Config, workloads []Workload, schemes []string) []GridRun {
	grid := make([]GridRun, 0, len(workloads)*len(schemes))
	for _, w := range workloads {
		for _, s := range schemes {
			grid = append(grid, GridRun{Cfg: cfg, Workload: w, Scheme: s})
		}
	}
	return grid
}

// assembleEndToEnd indexes the scheduler's input-ordered results back into
// the workload→scheme map.
func assembleEndToEnd(cfg Config, grid []GridRun, runs []*Run) *EndToEndResult {
	res := &EndToEndResult{Cfg: cfg, Runs: map[string]map[string]*Run{}}
	for i, g := range grid {
		m := res.Runs[g.Workload.Name]
		if m == nil {
			m = map[string]*Run{}
			res.Runs[g.Workload.Name] = m
		}
		m[g.Scheme] = runs[i]
	}
	return res
}

// Table1 renders the time-to-target-accuracy comparison: per-round time,
// number of rounds, and total time per (model, scheme) — the paper's
// Table I.
func (r *EndToEndResult) Table1(workloads []Workload) *trace.Table {
	t := trace.NewTable(
		"Table I: time to reach the target accuracy",
		"Model", "Target", "Scheme", "Per-round Time (s)", "# of Rounds", "Total Time (h)", "Reached",
	)
	for _, w := range workloads {
		for _, s := range Schemes() {
			run, ok := r.Runs[w.Name][s]
			if !ok {
				continue
			}
			secs, rounds, reached := run.TimeToAccuracy(w.TargetAccuracy)
			t.AddRow(
				w.Name,
				fmt.Sprintf("%.2f", w.TargetAccuracy),
				s,
				secs/float64(rounds),
				rounds,
				secs/3600,
				reached,
			)
		}
	}
	return t
}

// Fig5Series extracts the time-to-accuracy curves and (for apf/fedsu) the
// instantaneous sparsification-ratio curves of one workload, the content of
// Fig. 5.
func (r *EndToEndResult) Fig5Series(workload string) (acc, ratio []*trace.Series) {
	for _, s := range Schemes() {
		run, ok := r.Runs[workload][s]
		if !ok {
			continue
		}
		as := trace.NewSeries(s, "time_s", "accuracy")
		for _, st := range run.Stats {
			if st.Accuracy >= 0 {
				as.Add(st.SimTime, st.Accuracy)
			}
		}
		acc = append(acc, as)
		if s == "apf" || s == "fedsu" {
			rs := trace.NewSeries(s+"-ratio", "time_s", "sparsification_ratio")
			for _, st := range run.Stats {
				rs.Add(st.SimTime, st.SparsificationRatio)
			}
			ratio = append(ratio, rs)
		}
	}
	return acc, ratio
}

// Report writes Table I, the per-workload Fig. 5 summaries, and the FedSU
// speedup factors versus the second-best scheme.
func (r *EndToEndResult) Report(w io.Writer, workloads []Workload) error {
	if err := r.Table1(workloads).Render(w); err != nil {
		return err
	}
	for _, wl := range workloads {
		fedsu, ok := r.Runs[wl.Name]["fedsu"]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "\n%s: FedSU mean sparsification %.1f%%", wl.Name, 100*fedsu.MeanSparsification())
		if apf, ok := r.Runs[wl.Name]["apf"]; ok {
			fmt.Fprintf(w, " (APF %.1f%%)", 100*apf.MeanSparsification())
			ts, _, _ := fedsu.TimeToAccuracy(wl.TargetAccuracy)
			ta, _, _ := apf.TimeToAccuracy(wl.TargetAccuracy)
			if ts > 0 {
				fmt.Fprintf(w, "; speedup vs APF %.1f%%", 100*(ta-ts)/ta)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
