package exp

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"fedsu/internal/tensor"
)

// testDType is the compute precision for this test process. The float32 CI
// lane (make tier1-f32 / race-f32) sets FEDSU_DTYPE=float32 so the whole
// experiment suite — including the bit-identity proofs — runs against the
// second kernel instantiation; unset it runs the historical float64 path.
// Only this test helper reads the environment; library code never does.
func testDType() tensor.DType {
	dt, err := tensor.ParseDType(os.Getenv("FEDSU_DTYPE"))
	if err != nil {
		panic("FEDSU_DTYPE: " + err.Error())
	}
	return dt
}

// microConfig is the smallest configuration that still exercises every
// experiment code path.
func microConfig() Config {
	cfg := FastConfig()
	cfg.Clients = 3
	cfg.Rounds = 8
	cfg.LocalIters = 2
	cfg.BatchSize = 4
	cfg.Samples = 188 // exercises uneven shard sizes
	cfg.ModelScale = 32
	cfg.EvalEvery = 2
	cfg.DType = testDType()
	return cfg
}

func TestWorkloads(t *testing.T) {
	ws := Workloads()
	if len(ws) != 3 {
		t.Fatalf("Workloads = %d, want 3", len(ws))
	}
	for _, w := range ws {
		m := w.Model(32, 1)
		if m.Size() <= 0 {
			t.Errorf("%s: empty model", w.Name)
		}
		ds := w.Dataset(64, 1)
		if ds.Len() != 64 {
			t.Errorf("%s: dataset len %d", w.Name, ds.Len())
		}
		if w.WireParams < 100_000 {
			t.Errorf("%s: wire params %d suspiciously small", w.Name, w.WireParams)
		}
	}
	if _, err := WorkloadByName("cnn"); err != nil {
		t.Error(err)
	}
	if _, err := WorkloadByName("gpt"); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestRunOneAllSchemes(t *testing.T) {
	cfg := microConfig()
	w := CNNWorkload()
	for _, s := range append(Schemes(), "fedsu-v1", "fedsu-v2") {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			run, err := RunOne(context.Background(), cfg, w, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Stats) != cfg.Rounds {
				t.Fatalf("stats = %d rounds", len(run.Stats))
			}
			if run.MeanRoundTime() <= 0 {
				t.Error("mean round time must be positive")
			}
			secs, rounds, _ := run.TimeToAccuracy(0.99)
			if secs <= 0 || rounds <= 0 {
				t.Error("TimeToAccuracy must report totals even when unreached")
			}
		})
	}
}

func TestEndToEndAndTable1(t *testing.T) {
	cfg := microConfig()
	ws := []Workload{CNNWorkload()}
	res, err := RunEndToEnd(context.Background(), cfg, ws, Schemes())
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := res.Report(&b, ws); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "fedsu", "apf", "cmfl", "fedavg", "sparsification"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	acc, ratio := res.Fig5Series("cnn")
	if len(acc) != 4 {
		t.Errorf("Fig5 accuracy series = %d, want 4", len(acc))
	}
	if len(ratio) != 2 {
		t.Errorf("Fig5 ratio series = %d, want 2 (apf + fedsu)", len(ratio))
	}
}

func TestFig1(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 4
	res, err := RunFig1(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cnn", "densenet121"} {
		series := res.Trajectories[name]
		if len(series) != 2 {
			t.Fatalf("%s: %d series, want 2", name, len(series))
		}
		for _, s := range series {
			if s.Len() != cfg.Rounds {
				t.Errorf("%s: series len %d, want %d", name, s.Len(), cfg.Rounds)
			}
		}
	}
}

func TestFig2(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 6
	res, err := RunFig2(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instantaneous == nil || res.Instantaneous.Len() == 0 {
		t.Fatal("missing instantaneous series")
	}
	for _, name := range []string{"cnn", "densenet121"} {
		cdf := res.CDFs[name]
		if cdf == nil || cdf.Len() == 0 {
			t.Fatalf("%s: missing CDF", name)
		}
		// CDF y must be monotone from ~0 to 1.
		if cdf.Y[len(cdf.Y)-1] != 1 {
			t.Errorf("%s: CDF does not reach 1", name)
		}
	}
	var b bytes.Buffer
	res.Report(&b)
	if !strings.Contains(b.String(), "normalized difference") {
		t.Error("report missing summary")
	}
}

func TestFig6(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 16
	res, err := RunFig6(context.Background(), cfg, CNNWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if res.FedSU.Len() != cfg.Rounds || res.FedAvg.Len() != cfg.Rounds {
		t.Fatalf("trajectory lengths %d/%d, want %d", res.FedSU.Len(), res.FedAvg.Len(), cfg.Rounds)
	}
	if e := res.ApproximationError(); e < 0 {
		t.Errorf("approximation error = %v", e)
	}
}

func TestFig7(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 12
	res, err := RunFig7(context.Background(), cfg, []Workload{CNNWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	cdf := res.CDFs["cnn"]
	if cdf == nil || cdf.Len() == 0 {
		t.Fatal("missing CDF")
	}
	share := res.ShareLinearMajority["cnn"]
	if share < 0 || share > 1 {
		t.Errorf("share = %v outside [0,1]", share)
	}
	var b bytes.Buffer
	res.Report(&b)
	if !strings.Contains(b.String(), "linear") {
		t.Error("report missing summary")
	}
}

func TestFig8(t *testing.T) {
	cfg := microConfig()
	cfg.FedSU.FixedPeriod = 4
	cfg.FedSU.LaunchProb = 0.05
	res, err := RunFig8(context.Background(), cfg, []Workload{CNNWorkload()})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants() {
		if res.Accuracy["cnn"][v] == nil {
			t.Fatalf("missing accuracy series for %s", v)
		}
	}
	var b bytes.Buffer
	res.Report(&b)
	if !strings.Contains(b.String(), "fedsu-v2") {
		t.Error("report missing variant rows")
	}
}

func TestFig9And10(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 5
	ws := []Workload{CNNWorkload()}
	r9, err := RunFig9(context.Background(), cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(r9.Values) != 4 || r9.Param != "TR" {
		t.Errorf("Fig9 sweep malformed: %+v", r9.Values)
	}
	r10, err := RunFig10(context.Background(), cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(r10.Values) != 4 || r10.Param != "TS" {
		t.Errorf("Fig10 sweep malformed: %+v", r10.Values)
	}
	var b bytes.Buffer
	r9.Report(&b)
	r10.Report(&b)
	if !strings.Contains(b.String(), "TR") || !strings.Contains(b.String(), "TS") {
		t.Error("sweep reports missing parameter labels")
	}
}

func TestTable2(t *testing.T) {
	cfg := microConfig()
	res, err := RunTable2(context.Background(), cfg, []Workload{CNNWorkload()},
		map[string]float64{"cnn": 7.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.MemoryInflationMB <= 0 {
		t.Error("memory inflation must be positive")
	}
	if row.MemoryInflationRatio <= 0 || row.MemoryInflationRatio > 0.5 {
		t.Errorf("memory ratio = %v, want small positive", row.MemoryInflationRatio)
	}
	if row.ComputeInflationSec < 0 {
		t.Error("compute inflation negative")
	}
	var b bytes.Buffer
	res.Report(&b)
	if !strings.Contains(b.String(), "Table II") {
		t.Error("report missing title")
	}
}
