package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"fedsu/internal/core"
	"fedsu/internal/sparse"
	"fedsu/internal/trace"
)

// Table2Row reports FedSU's per-model overheads — the paper's Table II.
type Table2Row struct {
	// Model names the workload.
	Model string
	// Params is the trained model's scalar-parameter count; WireParams is
	// the paper-scale count the memory figures are extrapolated to.
	Params, WireParams int
	// ComputeInflationSec is the per-round wall-clock cost of the FedSU
	// bookkeeping (diagnosis + prediction + error accounting) measured at
	// paper scale.
	ComputeInflationSec float64
	// ComputeInflationRatio relates the bookkeeping cost to the paper's
	// per-round compute time for this model.
	ComputeInflationRatio float64
	// MemoryInflationMB is the FedSU per-client state at paper scale.
	MemoryInflationMB float64
	// MemoryInflationRatio relates it to the model's training footprint.
	MemoryInflationRatio float64
}

// ManagerStateBytesPerParam is the per-parameter FedSU bookkeeping cost of
// this Go implementation: six float64 trajectories/EMAs (prevGlobal, lastG,
// emaG2, emaAbsG2, slope, accumErr), four int32 counters, two bools, and
// one int64 statistic.
const ManagerStateBytesPerParam = 6*8 + 4*4 + 2*1 + 8

// WireStateBytesPerParam estimates the same state in a float32 edge
// deployment (what the paper's Python module stores): five float32
// diagnostics, one float32 error, one small counter, and mask bits.
const WireStateBytesPerParam = 5*4 + 4 + 4 + 1

// DeviceTrainingFootprintBytes models the total training-process memory on
// the paper's 4 GB client devices — dominated by input data, feature maps,
// and optimizer state rather than parameters (Sec. V cites vDNN for this
// breakdown). The paper's Table II ratios are consistent with a footprint
// of roughly 1.6 GB.
const DeviceTrainingFootprintBytes = 1.6e9

// Table2Result aggregates the overhead rows.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 measures FedSU's computation and memory overhead per workload.
// The bookkeeping wall-clock is measured directly by timing Manager.Sync on
// a synthetic linear trajectory of the paper-scale size; memory is the
// exact per-parameter state size.
func RunTable2(ctx context.Context, cfg Config, workloads []Workload, computeSecPerRound map[string]float64) (*Table2Result, error) {
	res := &Table2Result{}
	for _, w := range workloads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		model := w.ModelOf(cfg.DType, cfg.ModelScale, cfg.Seed)
		inflation, err := measureSyncOverhead(w.WireParams, cfg.FedSU)
		if err != nil {
			return nil, err
		}
		wireBytes := float64(w.WireParams) * WireStateBytesPerParam
		row := Table2Row{
			Model:                 w.Name,
			Params:                model.Size(),
			WireParams:            w.WireParams,
			ComputeInflationSec:   inflation,
			MemoryInflationMB:     wireBytes / (1 << 20),
			MemoryInflationRatio:  wireBytes / DeviceTrainingFootprintBytes,
			ComputeInflationRatio: 0,
		}
		if base, ok := computeSecPerRound[w.Name]; ok && base > 0 {
			row.ComputeInflationRatio = inflation / base
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measureSyncOverhead times the FedSU bookkeeping on a paper-scale vector
// following a linear trajectory (so both the diagnosis and the speculative
// path are exercised) and subtracts the plain FedAvg sync cost over the
// same aggregator.
func measureSyncOverhead(size int, opts core.Options) (float64, error) {
	agg := passthroughAgg{}
	mgr, err := core.NewManager(0, size, agg, opts)
	if err != nil {
		return 0, err
	}
	base := sparse.NewFedAvg(0, size, agg)

	vec := make([]float64, size)
	traj := func(k int) []float64 {
		for i := range vec {
			vec[i] = float64(i%97)*0.01 + float64(k)*0.001
		}
		return vec
	}
	const rounds = 6
	// Warm-up and measure FedSU. Table II reports measured self-timing
	// overhead — wall-clock IS the result here, the one sanctioned
	// exception to the harness determinism contract.
	//lint:allow determinism -- Table II measures its own wall-clock overhead
	start := time.Now()
	for k := 0; k < rounds; k++ {
		if _, _, err := mgr.Sync(k, traj(k), true); err != nil {
			return 0, err
		}
	}
	//lint:allow determinism -- Table II measures its own wall-clock overhead
	fedsuPer := time.Since(start).Seconds() / rounds

	//lint:allow determinism -- Table II measures its own wall-clock overhead
	start = time.Now()
	for k := 0; k < rounds; k++ {
		if _, _, err := base.Sync(k, traj(k), true); err != nil {
			return 0, err
		}
	}
	//lint:allow determinism -- Table II measures its own wall-clock overhead
	basePer := time.Since(start).Seconds() / rounds

	d := fedsuPer - basePer
	if d < 0 {
		d = 0
	}
	return d, nil
}

// passthroughAgg is a zero-cost single-client aggregator for overhead
// microbenchmarks.
type passthroughAgg struct{}

func (passthroughAgg) AggregateModel(_, _ int, v []float64) ([]float64, error) { return v, nil }
func (passthroughAgg) AggregateError(_, _ int, v []float64) ([]float64, error) { return v, nil }

// Report renders Table II.
func (r *Table2Result) Report(w io.Writer) {
	t := trace.NewTable("Table II: FedSU computation and memory overheads",
		"Model", "Compute Inflation (s)", "Compute Ratio", "Memory Inflation (MB)", "Memory Ratio")
	for _, row := range r.Rows {
		t.AddRow(row.Model,
			fmt.Sprintf("%.3f", row.ComputeInflationSec),
			fmt.Sprintf("%.2f%%", 100*row.ComputeInflationRatio),
			fmt.Sprintf("%.0f", row.MemoryInflationMB),
			fmt.Sprintf("%.2f%%", 100*row.MemoryInflationRatio))
	}
	t.Render(w)
}
