package exp

import (
	"bytes"
	"context"
	"testing"

	"fedsu/internal/tensor"
)

// composeConfig is the micro-scale composition config. Chains require
// float64 compute (wire images are not float32-exact), so the dtype is
// pinned regardless of the FEDSU_DTYPE test lane.
func composeConfig() Config {
	cfg := microConfig()
	cfg.DType = tensor.Float64
	cfg.Rounds = 6
	return cfg
}

// TestComposeCellsRun is the compose driver's smoke test: every cell
// trains, the chained cells actually move fewer measured bytes than the
// uncompressed reference, and both tables render.
func TestComposeCellsRun(t *testing.T) {
	cfg := composeConfig()
	res, err := RunComposition(context.Background(), cfg, CNNWorkload(), ComposeCells())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(ComposeCells()) {
		t.Fatalf("got %d runs, want %d", len(res.Runs), len(ComposeCells()))
	}
	for i, cell := range res.Cells {
		if res.Runs[i] == nil || len(res.Runs[i].Stats) == 0 {
			t.Fatalf("cell %s produced no stats", cell.Name)
		}
		if res.TotalBytes(i) <= 0 {
			t.Fatalf("cell %s measured no wire bytes", cell.Name)
		}
	}
	// FedSU×Q4×entropy must beat plain FedSU on measured bytes: q4 packs
	// 4-bit codes where the reference ships f32 values, and the range
	// coder squeezes the bitmap further.
	if red := res.Reduction(2); red <= 1.5 {
		t.Errorf("FedSU×Q4×entropy reduction = %.2f×, want > 1.5× at micro scale", red)
	}
	var buf bytes.Buffer
	if err := res.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := res.StageTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("tables rendered nothing")
	}
}

// TestComposeBitIdentityAcrossWorkers pins the scheduler contract for
// chained runs: the composition grid produces byte-for-byte identical
// statistics and final models sequentially and with 4 slots. The chain's
// stochastic quantizer is a pure seeded hash, so no worker interleaving
// can perturb it.
func TestComposeBitIdentityAcrossWorkers(t *testing.T) {
	cfg := composeConfig()
	cells := []ComposeCell{
		{Name: "FedSU", Scheme: "fedsu", Compress: ""},
		{Name: "FedSU×Q4×entropy", Scheme: "fedsu", Compress: "topk,q4,rans"},
		{Name: "FedSU×low-rank", Scheme: "fedsu", Compress: "lowrank"},
	}

	seqCfg := cfg
	seqCfg.Parallel = 1
	want, err := RunComposition(context.Background(), seqCfg, CNNWorkload(), cells)
	if err != nil {
		t.Fatal(err)
	}

	parCfg := cfg
	parCfg.Parallel = 4
	got, err := RunComposition(context.Background(), parCfg, CNNWorkload(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if seq, par := fingerprint(want.Runs[i]), fingerprint(got.Runs[i]); seq != par {
			t.Fatalf("cell %s diverged across worker counts\nseq:  %.120s\npar:  %.120s",
				cells[i].Name, seq, par)
		}
	}
}
