package exp

import (
	"sync"
	"sync/atomic"

	"fedsu/internal/data"
)

// corpusKey identifies one immutable synthetic corpus: the stand-in family
// (Workload.DataKey), its sample count, and its generation seed.
type corpusKey struct {
	data    string
	samples int
	seed    int64
}

// partitionKey identifies one Dirichlet split of a cached corpus.
type partitionKey struct {
	corpusKey
	clients int
	alpha   float64
	seed    int64
}

// corpusEntry coalesces concurrent builds of one corpus: the first caller
// synthesizes inside the sync.Once while later callers for the same key
// block on it and then share the finished dataset.
type corpusEntry struct {
	once sync.Once
	ds   *data.Dataset
}

type partitionEntry struct {
	once   sync.Once
	shards []*data.Subset
}

// Artifacts is a keyed cache of the read-only inputs experiment runs share:
// synthesized datasets and their Dirichlet client partitions. Both artifact
// kinds are immutable after construction (see internal/data), so one cache
// may serve any number of concurrent runs; a grid of (workload × scheme)
// cells then synthesizes each distinct corpus exactly once instead of once
// per cell, and splits it once per (clients, alpha, seed).
//
// Determinism: Synthesize and PartitionDirichlet are pure functions of
// their key, so a cache hit returns bit-identical data to a fresh build —
// cached and uncached runs produce the same results.
type Artifacts struct {
	mu         sync.Mutex
	corpora    map[corpusKey]*corpusEntry
	partitions map[partitionKey]*partitionEntry

	datasetBuilds   atomic.Int64
	partitionBuilds atomic.Int64
}

// NewArtifacts returns an empty cache.
func NewArtifacts() *Artifacts {
	return &Artifacts{
		corpora:    map[corpusKey]*corpusEntry{},
		partitions: map[partitionKey]*partitionEntry{},
	}
}

// Dataset returns the cached corpus for (w.DataKey(), samples, seed),
// synthesizing it on first use. Concurrent callers with the same key
// coalesce onto one build.
func (a *Artifacts) Dataset(w Workload, samples int, seed int64) *data.Dataset {
	key := corpusKey{data: w.DataKey(), samples: samples, seed: seed}
	a.mu.Lock()
	e, ok := a.corpora[key]
	if !ok {
		e = &corpusEntry{}
		a.corpora[key] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		a.datasetBuilds.Add(1)
		e.ds = w.Dataset(samples, seed)
	})
	return e.ds
}

// Partition returns the memoized Dirichlet split of a cached corpus,
// computing it on first use. ds must be the dataset Dataset returned for
// (w, samples, seed) — the key is derived from those parameters, not from
// the pointer.
func (a *Artifacts) Partition(w Workload, ds *data.Dataset, samples int, dsSeed int64, clients int, alpha float64, partSeed int64) []*data.Subset {
	key := partitionKey{
		corpusKey: corpusKey{data: w.DataKey(), samples: samples, seed: dsSeed},
		clients:   clients,
		alpha:     alpha,
		seed:      partSeed,
	}
	a.mu.Lock()
	e, ok := a.partitions[key]
	if !ok {
		e = &partitionEntry{}
		a.partitions[key] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		a.partitionBuilds.Add(1)
		e.shards = data.PartitionDirichlet(ds, clients, alpha, partSeed)
	})
	return e.shards
}

// DatasetBuilds reports how many corpora were actually synthesized —
// the denominator for the cache's work-elimination accounting.
func (a *Artifacts) DatasetBuilds() int64 { return a.datasetBuilds.Load() }

// PartitionBuilds reports how many Dirichlet splits were actually computed.
func (a *Artifacts) PartitionBuilds() int64 { return a.partitionBuilds.Load() }
