package exp

import (
	"math"
	"sync"
	"testing"

	"fedsu/internal/data"
)

// TestArtifactsDatasetHitAndMiss pins the cache contract: one build per
// key, the very same *Dataset returned on every hit, distinct objects for
// distinct keys.
func TestArtifactsDatasetHitAndMiss(t *testing.T) {
	a := NewArtifacts()
	w := CNNWorkload()
	ds1 := a.Dataset(w, 64, 7)
	ds2 := a.Dataset(w, 64, 7)
	if ds1 != ds2 {
		t.Fatal("cache hit returned a different *Dataset")
	}
	if got := a.DatasetBuilds(); got != 1 {
		t.Fatalf("DatasetBuilds = %d after two lookups of one key, want 1", got)
	}
	for _, other := range []*data.Dataset{
		a.Dataset(w, 128, 7),                 // different samples
		a.Dataset(w, 64, 8),                  // different seed
		a.Dataset(DenseNetWorkload(), 64, 7), // different corpus
	} {
		if other == ds1 {
			t.Fatal("distinct key returned the cached dataset")
		}
	}
	if got := a.DatasetBuilds(); got != 4 {
		t.Fatalf("DatasetBuilds = %d, want 4", got)
	}
}

// TestArtifactsDataKeySharing checks that workloads training different
// models on the same corpus share one synthesized dataset: resnet18 and
// lstm both stand in FMNIST.
func TestArtifactsDataKeySharing(t *testing.T) {
	a := NewArtifacts()
	if a.Dataset(ResNetWorkload(), 64, 7) != a.Dataset(LSTMWorkload(), 64, 7) {
		t.Fatal("resnet18 and lstm must share the fmnist corpus")
	}
	if got := a.DatasetBuilds(); got != 1 {
		t.Fatalf("DatasetBuilds = %d, want 1", got)
	}
}

// TestArtifactsBitIdentical proves a cache hit is indistinguishable from a
// fresh build: the cached corpus and partition carry byte-for-byte the same
// samples as uncached construction.
func TestArtifactsBitIdentical(t *testing.T) {
	a := NewArtifacts()
	w := CNNWorkload()
	const samples, clients = 96, 3
	cached := a.Dataset(w, samples, 11)
	fresh := w.Dataset(samples, 11)
	if cached.Len() != fresh.Len() {
		t.Fatalf("len %d vs %d", cached.Len(), fresh.Len())
	}
	idx := make([]int, cached.Len())
	for i := range idx {
		idx[i] = i
	}
	cx, cLabels := cached.Batch(idx)
	fx, fLabels := fresh.Batch(idx)
	cd, fd := cx.Data(), fx.Data()
	for i := range cd {
		if math.Float64bits(cd[i]) != math.Float64bits(fd[i]) {
			t.Fatalf("pixel %d differs: %v vs %v", i, cd[i], fd[i])
		}
	}
	for i := range cLabels {
		if cLabels[i] != fLabels[i] {
			t.Fatalf("label %d differs", i)
		}
	}

	cachedShards := a.Partition(w, cached, samples, 11, clients, 1.0, 5)
	freshShards := data.PartitionDirichlet(fresh, clients, 1.0, 5)
	if len(cachedShards) != len(freshShards) {
		t.Fatalf("shards %d vs %d", len(cachedShards), len(freshShards))
	}
	for i := range cachedShards {
		ch, fh := cachedShards[i].LabelHistogram(), freshShards[i].LabelHistogram()
		if cachedShards[i].Len() != freshShards[i].Len() {
			t.Fatalf("shard %d size %d vs %d", i, cachedShards[i].Len(), freshShards[i].Len())
		}
		for c := range ch {
			if ch[c] != fh[c] {
				t.Fatalf("shard %d histogram differs at class %d", i, c)
			}
		}
	}
	if a.Partition(w, cached, samples, 11, clients, 1.0, 5)[0] != cachedShards[0] {
		t.Fatal("partition hit returned different shards")
	}
	if got := a.PartitionBuilds(); got != 1 {
		t.Fatalf("PartitionBuilds = %d, want 1", got)
	}
}

// TestArtifactsCoalescedBuilds hammers one key from many goroutines and
// checks the corpus was synthesized exactly once and every caller got the
// same object — the singleflight property the grid scheduler relies on
// when all cells of a workload start simultaneously.
func TestArtifactsCoalescedBuilds(t *testing.T) {
	a := NewArtifacts()
	w := CNNWorkload()
	const callers = 16
	got := make([]*data.Dataset, callers)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			got[i] = a.Dataset(w, 256, 3)
		}()
	}
	start.Done()
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different dataset", i)
		}
	}
	if builds := a.DatasetBuilds(); builds != 1 {
		t.Fatalf("DatasetBuilds = %d under %d concurrent callers, want 1", builds, callers)
	}
}
