package exp

import (
	"context"
	"fmt"
	"io"
	"math"

	"fedsu/internal/trace"
)

// Fig8Result holds the ablation comparison of FedSU against FedSU-v1 (no
// error feedback) and FedSU-v2 (neither error feedback nor linearity
// diagnosis) — the paper's Fig. 8.
type Fig8Result struct {
	// Accuracy and Ratio map workload → variant → series over emulated
	// time.
	Accuracy map[string]map[string]*trace.Series
	Ratio    map[string]map[string]*trace.Series
	// FinalAccuracy and MeanRatio summarize each (workload, variant).
	FinalAccuracy map[string]map[string]float64
	MeanRatio     map[string]map[string]float64
	// AccuracyStd is the standard deviation of the accuracy curve's
	// round-to-round changes, a fluctuation measure: v2 is expected to be
	// markedly less stable.
	AccuracyStd map[string]map[string]float64
}

// Variants returns the ablation set.
func Variants() []string { return []string{"fedsu", "fedsu-v1", "fedsu-v2"} }

// RunFig8 runs the ablation on the given workloads (the paper uses CNN and
// DenseNet). The fixed speculative period and launch probability for v1/v2
// come from cfg.FedSU (the paper sets 43/0.53 % for CNN and 58/0.81 % for
// DenseNet, profiled from standard FedSU runs).
func RunFig8(ctx context.Context, cfg Config, workloads []Workload) (*Fig8Result, error) {
	res := &Fig8Result{
		Accuracy:      map[string]map[string]*trace.Series{},
		Ratio:         map[string]map[string]*trace.Series{},
		FinalAccuracy: map[string]map[string]float64{},
		MeanRatio:     map[string]map[string]float64{},
		AccuracyStd:   map[string]map[string]float64{},
	}
	var grid []GridRun
	for _, w := range workloads {
		res.Accuracy[w.Name] = map[string]*trace.Series{}
		res.Ratio[w.Name] = map[string]*trace.Series{}
		res.FinalAccuracy[w.Name] = map[string]float64{}
		res.MeanRatio[w.Name] = map[string]float64{}
		res.AccuracyStd[w.Name] = map[string]float64{}
		for _, v := range Variants() {
			grid = append(grid, GridRun{Cfg: cfg, Workload: w, Scheme: v})
		}
	}
	runs, err := NewScheduler(cfg).Run(ctx, grid)
	if err != nil {
		return nil, err
	}
	for i, g := range grid {
		run, w, v := runs[i], g.Workload, g.Scheme
		acc := trace.NewSeries(v, "time_s", "accuracy")
		ratio := trace.NewSeries(v, "time_s", "sparsification_ratio")
		var prevAcc float64
		var diffs []float64
		first := true
		for _, st := range run.Stats {
			if st.Accuracy >= 0 {
				acc.Add(st.SimTime, st.Accuracy)
				if !first {
					diffs = append(diffs, st.Accuracy-prevAcc)
				}
				prevAcc, first = st.Accuracy, false
			}
			ratio.Add(st.SimTime, st.SparsificationRatio)
		}
		res.Accuracy[w.Name][v] = acc
		res.Ratio[w.Name][v] = ratio
		res.FinalAccuracy[w.Name][v] = acc.LastY()
		res.MeanRatio[w.Name][v] = run.MeanSparsification()
		res.AccuracyStd[w.Name][v] = stddev(diffs)
	}
	return res, nil
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	s := 0.0
	for _, v := range xs {
		d := v - mean
		s += d * d
	}
	// Population std; enough for a fluctuation comparison.
	return math.Sqrt(s / float64(len(xs)))
}

// Report prints the ablation summary.
func (r *Fig8Result) Report(w io.Writer) {
	t := trace.NewTable("Fig 8: ablation (FedSU vs v1 vs v2)",
		"Model", "Variant", "Final Acc", "Mean Sparsification", "Acc Fluctuation")
	for name := range r.FinalAccuracy {
		for _, v := range Variants() {
			t.AddRow(name, v,
				r.FinalAccuracy[name][v],
				fmt.Sprintf("%.1f%%", 100*r.MeanRatio[name][v]),
				r.AccuracyStd[name][v])
		}
	}
	t.Render(w)
}
