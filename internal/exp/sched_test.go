package exp

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"fedsu/internal/tensor"
	"fedsu/internal/trace"
)

// fingerprint reduces a run to a bit-exact digest string: every RoundStats
// field plus the final global parameter vector, floats rendered via their
// IEEE-754 bit patterns so even sign-of-zero or NaN-payload differences
// would show.
func fingerprint(r *Run) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s/%s\n", r.Workload, r.Scheme)
	for _, st := range r.Stats {
		fmt.Fprintf(&sb, "r%d d%x t%x a%x l%x tl%x up%d down%d sr%x pf%x p%d\n",
			st.Round,
			math.Float64bits(st.Duration), math.Float64bits(st.SimTime),
			math.Float64bits(st.Accuracy), math.Float64bits(st.Loss),
			math.Float64bits(st.TrainLoss),
			st.Traffic.UpBytes, st.Traffic.DownBytes,
			math.Float64bits(st.SparsificationRatio),
			math.Float64bits(st.PredictableFraction),
			st.Participants)
	}
	for _, v := range r.Engine.GlobalVector() {
		fmt.Fprintf(&sb, "%x ", math.Float64bits(v))
	}
	return sb.String()
}

// bitIdentGrid returns the Table-I grid the determinism proof runs: every
// scheme on two workloads that share nothing (cnn) and that share a corpus
// with nobody in the grid (lstm), at a scale small enough for tier-1. Set
// FEDSU_BITIDENT_FULL=1 to run the full FastConfig three-workload grid
// instead (minutes, not seconds).
func bitIdentGrid(t *testing.T) (Config, []Workload) {
	if os.Getenv("FEDSU_BITIDENT_FULL") != "" {
		return FastConfig(), Workloads()
	}
	cfg := microConfig()
	cfg.Rounds = 6
	return cfg, []Workload{CNNWorkload(), LSTMWorkload()}
}

// TestGridBitIdentity is the scheduler's core acceptance check: the Table-I
// grid produces byte-for-byte identical statistics and final models whether
// run sequentially, with 4 slots, with GOMAXPROCS slots, or with the run
// start order shuffled.
func TestGridBitIdentity(t *testing.T) {
	cfg, workloads := bitIdentGrid(t)
	grid := endToEndGrid(cfg, workloads, Schemes())

	seqCfg := cfg
	seqCfg.Parallel = 1
	want, err := NewScheduler(seqCfg).Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := make([]string, len(want))
	for i, r := range want {
		wantFP[i] = fingerprint(r)
	}

	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		workers := workers
		t.Run(fmt.Sprintf("parallel-%d", workers), func(t *testing.T) {
			pCfg := cfg
			pCfg.Parallel = workers
			got, err := NewScheduler(pCfg).Run(context.Background(), grid)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if fp := fingerprint(got[i]); fp != wantFP[i] {
					t.Fatalf("run %d (%s/%s) diverged from sequential\nseq:  %.120s\npar:  %.120s",
						i, grid[i].Workload.Name, grid[i].Scheme, wantFP[i], fp)
				}
			}
		})
	}

	t.Run("shuffled-order", func(t *testing.T) {
		pCfg := cfg
		pCfg.Parallel = 3
		s := NewScheduler(pCfg)
		s.order = rand.New(rand.NewSource(99)).Perm(len(grid))
		got, err := s.Run(context.Background(), grid)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if fp := fingerprint(got[i]); fp != wantFP[i] {
				t.Fatalf("run %d diverged under shuffled start order", i)
			}
		}
	})
}

// TestGridBitIdentityFloat32 pins the determinism contract to the float32
// instantiation regardless of the FEDSU_DTYPE lane this process runs under:
// the reduced grid (with the FedSU managers in their Quantize mode) produces
// bit-identical statistics and final models sequentially and with 4 slots.
// Worker goroutines must not perturb float32 kernels any more than float64
// ones — rounding happens at fixed per-value points, never reassociation.
func TestGridBitIdentityFloat32(t *testing.T) {
	cfg, workloads := bitIdentGrid(t)
	cfg.DType = tensor.Float32
	cfg.Rounds = 4
	grid := endToEndGrid(cfg, workloads, Schemes())

	seqCfg := cfg
	seqCfg.Parallel = 1
	want, err := NewScheduler(seqCfg).Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}

	pCfg := cfg
	pCfg.Parallel = 4
	got, err := NewScheduler(pCfg).Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if seq, par := fingerprint(want[i]), fingerprint(got[i]); seq != par {
			t.Fatalf("float32 run %d (%s/%s) diverged from sequential\nseq:  %.120s\npar:  %.120s",
				i, grid[i].Workload.Name, grid[i].Scheme, seq, par)
		}
	}
}

// TestEndToEndParallelMatchesSequential checks the full driver (grid build,
// scheduler, map assembly) end to end at both settings, including that the
// shared cache synthesized each distinct corpus once.
func TestEndToEndParallelMatchesSequential(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 4
	ws := []Workload{CNNWorkload(), LSTMWorkload()}

	seq, err := RunEndToEnd(context.Background(), cfg, ws, Schemes())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	cfg.Artifacts = NewArtifacts()
	par, err := RunEndToEnd(context.Background(), cfg, ws, Schemes())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		for _, s := range Schemes() {
			if fingerprint(seq.Runs[w.Name][s]) != fingerprint(par.Runs[w.Name][s]) {
				t.Fatalf("%s/%s diverged between sequential and parallel", w.Name, s)
			}
		}
	}
	// The rendered deliverables match byte for byte: the Table I report and
	// the Fig. 5 CSVs are what the harness actually ships.
	var seqRep, parRep bytes.Buffer
	if err := seq.Report(&seqRep, ws); err != nil {
		t.Fatal(err)
	}
	if err := par.Report(&parRep, ws); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqRep.Bytes(), parRep.Bytes()) {
		t.Fatalf("Table I report differs between sequential and parallel:\nseq:\n%s\npar:\n%s", seqRep.String(), parRep.String())
	}
	for _, w := range ws {
		seqAcc, seqRatio := seq.Fig5Series(w.Name)
		parAcc, parRatio := par.Fig5Series(w.Name)
		for _, pair := range [][2][]*trace.Series{{seqAcc, parAcc}, {seqRatio, parRatio}} {
			var a, b bytes.Buffer
			if err := trace.WriteCSVMulti(&a, pair[0]...); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteCSVMulti(&b, pair[1]...); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("Fig 5 CSV for %s differs between sequential and parallel", w.Name)
			}
		}
	}
	// 2 distinct corpora for 8 runs: each synthesized exactly once.
	if got := cfg.Artifacts.DatasetBuilds(); got != int64(len(ws)) {
		t.Errorf("DatasetBuilds = %d, want %d", got, len(ws))
	}
	if got := cfg.Artifacts.PartitionBuilds(); got != int64(len(ws)) {
		t.Errorf("PartitionBuilds = %d, want %d", got, len(ws))
	}
}

// TestTimeToAccuracyEmptyStats is the regression test for the zero-round
// crash: a run whose Stats slice is empty must report zero totals, not
// panic on Stats[len-1].
func TestTimeToAccuracyEmptyStats(t *testing.T) {
	r := &Run{Workload: "cnn", Scheme: "fedsu"}
	secs, rounds, reached := r.TimeToAccuracy(0.5)
	if secs != 0 || rounds != 0 || reached {
		t.Fatalf("TimeToAccuracy on empty Stats = (%v, %d, %v), want (0, 0, false)", secs, rounds, reached)
	}
}

// TestSchedulerErrorPropagation: an invalid scheme in one cell fails the
// whole grid with that cell's error, not a bare context.Canceled from the
// siblings it cancelled.
func TestSchedulerErrorPropagation(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 2
	cfg.Parallel = 4
	grid := []GridRun{
		{Cfg: cfg, Workload: CNNWorkload(), Scheme: "fedavg"},
		{Cfg: cfg, Workload: CNNWorkload(), Scheme: "no-such-scheme"},
		{Cfg: cfg, Workload: CNNWorkload(), Scheme: "fedsu"},
	}
	_, err := NewScheduler(cfg).Run(context.Background(), grid)
	if err == nil {
		t.Fatal("bad scheme must fail the grid")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") {
		t.Fatalf("error %q does not name the failing scheme", err)
	}
}

// TestSchedulerCancelledContext: a pre-cancelled context aborts without
// running anything.
func TestSchedulerCancelledContext(t *testing.T) {
	cfg := microConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewScheduler(cfg).Run(ctx, endToEndGrid(cfg, []Workload{CNNWorkload()}, Schemes()))
	if err == nil {
		t.Fatal("cancelled context must error")
	}
}

// TestSchedulerVerbosePrefixing: with several runs in flight, every verbose
// line is whole and carries its run's tag, and the injected clock produces
// per-run wall-time lines.
func TestSchedulerVerbosePrefixing(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	cfg := microConfig()
	cfg.Rounds = 2
	cfg.Parallel = 4
	cfg.Verbose = lockedWriter{mu: &mu, w: &buf}
	var tick int64
	var clockMu sync.Mutex
	cfg.Clock = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		tick += 250
		return time.Unix(0, tick*int64(time.Millisecond))
	}
	grid := endToEndGrid(cfg, []Workload{CNNWorkload()}, Schemes())
	if _, err := NewScheduler(cfg).Run(context.Background(), grid); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 || out == "" {
		t.Fatal("no verbose output")
	}
	tags := map[string]int{}
	for _, ln := range lines {
		matched := false
		for _, g := range grid {
			tag := "[" + g.Workload.Name + "/" + g.Scheme + "] "
			if strings.HasPrefix(ln, tag) {
				tags[tag]++
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("line %q carries no run tag (torn write?)", ln)
		}
	}
	if len(tags) != len(grid) {
		t.Fatalf("saw tags for %d runs, want %d", len(tags), len(grid))
	}
	// Concurrent cells interleave clock ticks, so the wall value is some
	// positive multiple of the tick — assert the line's presence and form.
	if !strings.Contains(out, "done: wall ") {
		t.Fatalf("missing per-run wall-clock line:\n%s", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(b)
}
