package exp

import "testing"

func TestEffectiveLR(t *testing.T) {
	w := ResNetWorkload()
	if w.EffectiveLR() != 0.02 {
		t.Errorf("resnet emulation LR = %v, want 0.02", w.EffectiveLR())
	}
	w.EmuLR = 0
	if w.EffectiveLR() != 0.001 {
		t.Errorf("fallback LR = %v, want the paper's 0.001", w.EffectiveLR())
	}
}

func TestEffectiveScale(t *testing.T) {
	w := CNNWorkload()
	if got := w.EffectiveScale(0); got != 8 {
		t.Errorf("default scale = %d, want EmuScale 8", got)
	}
	if got := w.EffectiveScale(32); got != 32 {
		t.Errorf("override scale = %d, want 32", got)
	}
	w.EmuScale = 0
	if got := w.EffectiveScale(0); got != 1 {
		t.Errorf("no-default scale = %d, want paper scale 1", got)
	}
}

func TestPaperLRsPreserved(t *testing.T) {
	// The paper's learning rates stay on record even though emulation
	// recalibrates.
	lrs := map[string]float64{"cnn": 0.01, "resnet18": 0.001, "densenet121": 0.01}
	for _, w := range Workloads() {
		if w.LR != lrs[w.Name] {
			t.Errorf("%s: paper LR = %v, want %v", w.Name, w.LR, lrs[w.Name])
		}
	}
}

func TestTargetAccuraciesMatchPaper(t *testing.T) {
	targets := map[string]float64{"cnn": 0.60, "resnet18": 0.85, "densenet121": 0.65}
	for _, w := range Workloads() {
		if w.TargetAccuracy != targets[w.Name] {
			t.Errorf("%s: target = %v, want %v", w.Name, w.TargetAccuracy, targets[w.Name])
		}
	}
}
