package exp

import (
	"context"
	"fmt"
	"math"

	"fedsu/internal/sparse/codec"
	"fedsu/internal/trace"
)

// ComposeCell is one (scheme, compression chain) point of the
// composition experiment.
type ComposeCell struct {
	// Name labels the table row ("FedSU×Q4×entropy").
	Name string
	// Scheme is the sync strategy ("fedsu", "qsgd", ...).
	Scheme string
	// Compress is the chain spec handed to fl.Config.Compress; empty
	// keeps the default f32 sparse codec.
	Compress string
}

// ComposeCells is the paper-style composition grid: the FedSU
// speculative baseline, FedSU under progressively deeper chains, and a
// QSGD×entropy reference showing the chain composes with a
// quantizing strategy too.
func ComposeCells() []ComposeCell {
	return []ComposeCell{
		{Name: "FedSU", Scheme: "fedsu", Compress: ""},
		{Name: "FedSU×Q4", Scheme: "fedsu", Compress: "topk,q4"},
		{Name: "FedSU×Q4×entropy", Scheme: "fedsu", Compress: "topk,q4,rans"},
		{Name: "FedSU×low-rank", Scheme: "fedsu", Compress: "lowrank"},
		{Name: "QSGD×entropy", Scheme: "qsgd", Compress: "rans"},
	}
}

// ComposeResult bundles the composition runs. Cells and Runs align;
// the first cell is the uncompressed reference the byte-reduction
// column is computed against.
type ComposeResult struct {
	Cfg      Config
	Workload Workload
	Cells    []ComposeCell
	Runs     []*Run
}

// RunComposition trains the same workload once per composition cell on
// the grid scheduler. Each cell differs only in (scheme, chain): the
// dataset, partition, and model init are shared through the artifact
// cache, so the accuracy deltas isolate the chain's lossy stages and
// the byte columns isolate the chain's wire savings.
func RunComposition(ctx context.Context, cfg Config, w Workload, cells []ComposeCell) (*ComposeResult, error) {
	if len(cells) == 0 {
		cells = ComposeCells()
	}
	grid := make([]GridRun, 0, len(cells))
	for _, cell := range cells {
		run := cfg
		run.Compress = cell.Compress
		label := fmt.Sprintf("%s/%s", w.Name, cell.Name)
		grid = append(grid, GridRun{Cfg: run, Workload: w, Scheme: cell.Scheme, Label: label})
	}
	runs, err := NewScheduler(cfg).Run(ctx, grid)
	if err != nil {
		return nil, err
	}
	return &ComposeResult{Cfg: cfg, Workload: w, Cells: cells, Runs: runs}, nil
}

// FinalAccuracy returns cell i's last evaluated accuracy (NaN when the
// run never evaluated).
func (r *ComposeResult) FinalAccuracy(i int) float64 {
	run := r.Runs[i]
	acc := math.NaN()
	if run == nil {
		return acc
	}
	for _, st := range run.Stats {
		if st.Accuracy >= 0 {
			acc = st.Accuracy
		}
	}
	return acc
}

// TotalBytes returns cell i's measured up+down wire bytes over the
// whole run.
func (r *ComposeResult) TotalBytes(i int) int64 {
	run := r.Runs[i]
	if run == nil {
		return 0
	}
	var total int64
	for _, st := range run.Stats {
		total += int64(st.Traffic.UpBytes) + int64(st.Traffic.DownBytes)
	}
	return total
}

// Reduction returns the reference cell's total bytes divided by cell
// i's — the "×" column (how many times fewer bytes the chained cell
// moved than the uncompressed baseline).
func (r *ComposeResult) Reduction(i int) float64 {
	ref := r.TotalBytes(0)
	b := r.TotalBytes(i)
	if ref == 0 || b == 0 {
		return math.NaN()
	}
	return float64(ref) / float64(b)
}

// Table renders the composition comparison: accuracy, measured bytes,
// and the byte reduction over the uncompressed reference.
func (r *ComposeResult) Table() *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Compression composition: %s, %d clients, %d rounds",
			r.Workload.Name, r.Cfg.Clients, r.Cfg.Rounds),
		"Cell", "Chain", "Final Acc", "ΔAcc", "Up MB", "Down MB", "Bytes ×", "Sparsification",
	)
	refAcc := r.FinalAccuracy(0)
	for i, cell := range r.Cells {
		run := r.Runs[i]
		if run == nil || len(run.Stats) == 0 {
			continue
		}
		var up, down int64
		for _, st := range run.Stats {
			up += int64(st.Traffic.UpBytes)
			down += int64(st.Traffic.DownBytes)
		}
		chain := cell.Compress
		if chain == "" {
			chain = "(f32 sparse)"
		}
		acc := r.FinalAccuracy(i)
		t.AddRow(
			cell.Name,
			chain,
			fmt.Sprintf("%.3f", acc),
			fmt.Sprintf("%+.3f", acc-refAcc),
			float64(up)/1e6,
			float64(down)/1e6,
			fmt.Sprintf("%.2f", r.Reduction(i)),
			fmt.Sprintf("%.3f", run.MeanSparsification()),
		)
	}
	return t
}

// StageTable renders the per-stage byte accounting of every chained
// cell: messages encoded, bytes in, bytes out, and the stage's own
// compression factor — where in the pipeline the savings come from.
func (r *ComposeResult) StageTable() *trace.Table {
	t := trace.NewTable(
		"Per-stage byte accounting (encoder side, whole run)",
		"Cell", "Stage", "Msgs", "In MB", "Out MB", "In/Out",
	)
	for i, cell := range r.Cells {
		run := r.Runs[i]
		if run == nil || cell.Compress == "" {
			continue
		}
		chain := run.Engine.Chain()
		if chain == nil {
			continue
		}
		addRows := func(counters []codec.StageBytes, leg string) {
			for _, sb := range counters {
				factor := math.NaN()
				if sb.OutBytes > 0 {
					factor = float64(sb.InBytes) / float64(sb.OutBytes)
				}
				t.AddRow(
					cell.Name,
					sb.Stage+leg,
					sb.Msgs,
					float64(sb.InBytes)/1e6,
					float64(sb.OutBytes)/1e6,
					fmt.Sprintf("%.2f", factor),
				)
			}
		}
		addRows(chain.Counters(), "")
		if reply := chain.Reply(); reply != chain {
			// Asymmetric session: the downlink ships the widened reply
			// chain, with its own counters.
			addRows(reply.Counters(), " ↓")
		}
	}
	return t
}
