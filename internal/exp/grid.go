package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fedsu/internal/trace"
)

// GridRun is one independent cell of an experiment grid: a full run
// configuration plus the (workload, scheme) it trains. Cells carry their
// own Config so sweeps can vary hyper-parameters per cell.
type GridRun struct {
	Cfg      Config
	Workload Workload
	Scheme   string
	// Label tags the cell's progress lines; empty derives
	// "workload/scheme".
	Label string
}

func (g GridRun) label() string {
	if g.Label != "" {
		return g.Label
	}
	return g.Workload.Name + "/" + g.Scheme
}

// Scheduler fans the independent runs of an experiment grid across a
// bounded set of run slots while sharing read-only artifacts (datasets,
// Dirichlet partitions) through one Artifacts cache.
//
// Determinism: every cell is seeded by its own Config and runs on its own
// engine; cells interact only through the artifact cache, whose hits are
// bit-identical to fresh builds. Results therefore do not depend on the
// slot count or on completion order, and Run returns them in input order —
// the parallel grid reproduces the sequential path byte-for-byte (enforced
// by TestGridBitIdentity).
//
// Compute: slots bound how many engines are in flight (peak memory); the
// actual CPU fan-out is bounded separately by internal/par's process-wide
// compute-token budget, which caps concurrent client training at
// par.Workers() across ALL slots, so run-level × client-level ×
// kernel-level nesting never oversubscribes the machine.
type Scheduler struct {
	workers int
	arts    *Artifacts
	verbose *trace.SyncWriter
	clock   func() time.Time

	// order optionally permutes the slot-submission order (test seam for
	// proving start-order independence); results stay input-indexed.
	order []int
}

// NewScheduler builds a scheduler from the harness knobs of cfg: Parallel
// run slots (min 1), the shared Artifacts cache (a private cache when nil),
// the Verbose sink (wrapped so concurrent runs emit whole, per-run-prefixed
// lines), and the optional Clock for per-run wall-time reporting.
func NewScheduler(cfg Config) *Scheduler {
	workers := cfg.Parallel
	if workers < 1 {
		workers = 1
	}
	arts := cfg.Artifacts
	if arts == nil {
		arts = NewArtifacts()
	}
	return &Scheduler{
		workers: workers,
		arts:    arts,
		verbose: trace.NewSyncWriter(cfg.Verbose),
		clock:   cfg.Clock,
	}
}

// Artifacts exposes the scheduler's cache (for build accounting).
func (s *Scheduler) Artifacts() *Artifacts { return s.arts }

// Run executes every grid cell and returns the results in input order.
// At most `workers` cells run at once; with one slot, execution is strictly
// sequential in input order. The first failure cancels the remaining cells
// and is returned (preferring a concrete run error over the cancellations
// it caused).
func (s *Scheduler) Run(ctx context.Context, runs []GridRun) ([]*Run, error) {
	if len(runs) == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	order := s.order
	if order == nil {
		order = make([]int, len(runs))
		for i := range order {
			order[i] = i
		}
	} else if len(order) != len(runs) {
		return nil, fmt.Errorf("exp: scheduler order has %d entries for %d runs", len(order), len(runs))
	}

	out := make([]*Run, len(runs))
	errs := make([]error, len(runs))
	slots := make(chan struct{}, s.workers)
	var wg sync.WaitGroup
	for _, idx := range order {
		idx := idx
		// Acquire the slot before spawning: submission stays in `order`,
		// and a single-slot scheduler degenerates to exactly the
		// sequential loop it replaced.
		slots <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			out[idx], errs[idx] = s.runCell(ctx, runs[idx])
			if errs[idx] != nil {
				cancel()
			}
		}()
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			// A concrete failure beats the cancellations it triggered in
			// sibling cells.
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runCell executes one grid cell with per-run verbose prefixing and
// optional wall-clock reporting.
func (s *Scheduler) runCell(ctx context.Context, gr GridRun) (*Run, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := gr.Cfg
	var pw *trace.PrefixWriter
	if cfg.Verbose != nil {
		pw = trace.NewPrefixWriter(s.verbose, "["+gr.label()+"] ")
		cfg.Verbose = pw
		defer pw.Flush()
	}
	var start time.Time
	if s.clock != nil {
		start = s.clock()
	}
	r, err := runOne(ctx, cfg, gr.Workload, gr.Scheme, s.arts)
	if s.clock != nil {
		wall := s.clock().Sub(start).Round(time.Millisecond)
		if err != nil {
			logf(cfg.Verbose, "failed after %s: %v", wall, err)
		} else {
			logf(cfg.Verbose, "done: wall %s", wall)
		}
	}
	return r, err
}
