package exp

import (
	"context"
	"testing"
)

func TestLSTMWorkloadRuns(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 4
	w := LSTMWorkload()
	run, err := RunOne(context.Background(), cfg, w, "fedsu")
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Stats) != 4 {
		t.Fatalf("stats = %d rounds", len(run.Stats))
	}
	if w.EffectiveLR() != 0.05 {
		t.Errorf("lstm EmuLR = %v", w.EffectiveLR())
	}
	if _, err := WorkloadByName("lstm"); err != nil {
		t.Error("lstm must resolve by name")
	}
	if len(AllWorkloads()) != 4 {
		t.Errorf("AllWorkloads = %d, want 4", len(AllWorkloads()))
	}
	if len(Workloads()) != 3 {
		t.Errorf("paper Workloads = %d, must stay 3", len(Workloads()))
	}
}
