package tensor

import "fmt"

// DType selects the element storage width of a Tensor. The zero value is
// Float64, so every tensor constructed before precision became configurable
// (New, FromSlice, Full) keeps its historical float64 behavior bit-for-bit.
//
// Float32 halves the memory bandwidth of every kernel and makes the wire
// codec's float32 round-trip (sparse.QuantizeWire) the identity, at the cost
// of ~7 significant decimal digits of storage precision. Reductions that sum
// many terms (loss, batch statistics, norms) still accumulate in float64
// regardless of storage dtype — see the per-kernel notes in DESIGN.md.
type DType uint8

const (
	// Float64 is the default, historical precision.
	Float64 DType = iota
	// Float32 is the reduced-precision compute path matching the wire codec.
	Float32
)

// numDTypes sizes per-dtype tables (the scratch arena).
const numDTypes = 2

// Elem is the type-parameter constraint shared by every generic kernel in
// this package: the two supported element widths, exactly.
type Elem interface {
	float32 | float64
}

// String returns the flag-spelling of d ("float64" / "float32").
func (d DType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// Bytes returns the storage size of one element.
func (d DType) Bytes() int {
	if d == Float32 {
		return 4
	}
	return 8
}

// ParseDType parses the flag-spelling of a dtype. The empty string selects
// the default (Float64) so unset flags and env vars fall through cleanly.
func ParseDType(s string) (DType, error) {
	switch s {
	case "", "float64", "f64":
		return Float64, nil
	case "float32", "f32":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("tensor: unknown dtype %q (want float32 or float64)", s)
	}
}

// dtypeOf maps a kernel's element type parameter to its DType tag. The
// pointer type-switch compiles to a constant per instantiation and does not
// allocate (guarded by TestDataOfDoesNotAllocate).
func dtypeOf[E Elem]() DType {
	var z E
	switch any(&z).(type) {
	case *float32:
		return Float32
	default:
		return Float64
	}
}

// DTypeOf returns the DType tag for the element type E — the bridge
// precision-parameterized layers use to construct tensors matching their
// instantiation.
func DTypeOf[E Elem]() DType { return dtypeOf[E]() }

// DataOf returns t's backing slice at the tensor's native element type.
// Mutating the returned slice mutates the tensor, exactly like Data. It
// panics if E does not match t's dtype — a layer instantiated at one
// precision being fed a tensor of the other is a wiring bug, not a
// condition to convert through silently.
func DataOf[E Elem](t *Tensor) []E {
	var s []E
	switch p := any(&s).(type) {
	case *[]float32:
		if t.dt != Float32 {
			panic(fmt.Sprintf("tensor: DataOf[float32] on %s tensor", t.dt))
		}
		*p = t.data32
	case *[]float64:
		if t.dt != Float64 {
			panic(fmt.Sprintf("tensor: DataOf[float64] on %s tensor", t.dt))
		}
		*p = t.data
	}
	return s
}

// checkSameDType panics unless every tensor shares one dtype; kernels never
// convert implicitly, so mixed-precision operands are a wiring bug.
func checkSameDType(op string, ts ...*Tensor) {
	for _, t := range ts[1:] {
		if t.dt != ts[0].dt {
			panic(fmt.Sprintf("tensor: %s dtype mismatch (%s vs %s)", op, ts[0].dt, t.dt))
		}
	}
}
