package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"vector", []int{7}, 7},
		{"matrix", []int{3, 4}, 12},
		{"nchw", []int{2, 3, 5, 5}, 150},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if got := x.Len(); got != tt.want {
				t.Errorf("Len() = %d, want %d", got, tt.want)
			}
			if got := x.Dims(); got != len(tt.shape) {
				t.Errorf("Dims() = %d, want %d", got, len(tt.shape))
			}
			for i, d := range tt.shape {
				if x.Dim(i) != d {
					t.Errorf("Dim(%d) = %d, want %d", i, x.Dim(i), d)
				}
			}
		})
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestAtSetRowMajorLayout(t *testing.T) {
	x := New(2, 3)
	x.Set(42, 1, 2)
	if got := x.Data()[5]; got != 42 {
		t.Errorf("row-major offset for (1,2) in 2x3 = data[5]; got data[5]=%v", got)
	}
	if got := x.At(1, 2); got != 42 {
		t.Errorf("At(1,2) = %v, want 42", got)
	}
}

func TestFromSliceOwnership(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 99
	if x.At(0, 0) != 99 {
		t.Error("FromSlice must wrap, not copy, the provided slice")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	c := x.Clone()
	c.Data()[0] = 7
	if x.At(0) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(9, 0, 1)
	if x.At(0, 1) != 9 {
		t.Error("Reshape must be a view over the same data")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reshape with mismatched volume did not panic")
			}
		}()
		x.Reshape(4, 2)
	}()
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	a.AddScaled(0.5, b)
	want := []float64{6, 12, 18}
	for i, w := range want {
		if a.At(i) != w {
			t.Errorf("AddScaled result[%d] = %v, want %v", i, a.At(i), w)
		}
	}
	a.Sub(b)
	if a.At(0) != -4 {
		t.Errorf("Sub result[0] = %v, want -4", a.At(0))
	}
	a.Scale(2)
	if a.At(0) != -8 {
		t.Errorf("Scale result[0] = %v, want -8", a.At(0))
	}
	c := FromSlice([]float64{2, 3, 4}, 3)
	c.Mul(FromSlice([]float64{5, 6, 7}, 3))
	if c.At(2) != 28 {
		t.Errorf("Mul result[2] = %v, want 28", c.At(2))
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -4, 0}, 3)
	if got := x.Sum(); got != -1 {
		t.Errorf("Sum = %v, want -1", got)
	}
	if got := x.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := x.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
	if got := x.ArgMax(); got != 0 {
		t.Errorf("ArgMax = %v, want 0", got)
	}
	if got := x.Mean(); math.Abs(got+1.0/3) > 1e-12 {
		t.Errorf("Mean = %v, want -1/3", got)
	}
}

func TestMatMulHandComputed(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 6)
	b := New(6, 5)
	a.RandNormal(rng, 0, 1)
	b.RandNormal(rng, 0, 1)

	ref := MatMul(a, b)

	// A stored transposed: at is 6x4 with atᵀ = a.
	at := New(6, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	got := MatMulTransA(at, b)
	assertClose(t, "MatMulTransA", ref, got, 1e-12)

	// B stored transposed: bt is 5x6 with btᵀ = b.
	bt := New(5, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	got = MatMulTransB(a, bt)
	assertClose(t, "MatMulTransB", ref, got, 1e-12)

	dst := New(4, 5)
	MatMulInto(dst, a, b)
	assertClose(t, "MatMulInto", ref, dst, 1e-12)
}

func assertClose(t *testing.T, name string, want, got *Tensor, tol float64) {
	t.Helper()
	if !want.SameShape(got) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		if math.Abs(want.Data()[i]-got.Data()[i]) > tol {
			t.Fatalf("%s: element %d = %v, want %v", name, i, got.Data()[i], want.Data()[i])
		}
	}
}

// Property: matrix multiplication distributes over addition,
// A×(B+C) = A×B + A×C.
func TestMatMulDistributesOverAddition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(3, 4), New(4, 2), New(4, 2)
		a.RandNormal(rng, 0, 1)
		b.RandNormal(rng, 0, 1)
		c.RandNormal(rng, 0, 1)
		bc := b.Clone()
		bc.Add(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.Add(MatMul(a, c))
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1x1 kernel with stride 1 and no padding must reproduce the input.
	x := New(1, 2, 3, 3)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	p := ConvParams{KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, p)
	if cols.Dim(0) != 2 || cols.Dim(1) != 9 {
		t.Fatalf("Im2Col shape = %v, want [2 9]", cols.Shape())
	}
	for i := range x.Data() {
		if cols.Data()[i] != x.Data()[i] {
			t.Fatalf("identity im2col mismatch at %d", i)
		}
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 1x1x3x3 input, 2x2 kernel, stride 1, no padding → 4 output positions.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	p := ConvParams{KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, p)
	// Row layout: (kh,kw) in row-major; columns are output positions.
	want := [][]float64{
		{1, 2, 4, 5}, // kh=0 kw=0
		{2, 3, 5, 6}, // kh=0 kw=1
		{4, 5, 7, 8}, // kh=1 kw=0
		{5, 6, 8, 9}, // kh=1 kw=1
	}
	for r, row := range want {
		for c, w := range row {
			if got := cols.At(r, c); got != w {
				t.Errorf("cols[%d,%d] = %v, want %v", r, c, got, w)
			}
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := Full(1, 1, 1, 2, 2)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := Im2Col(x, p)
	// Center kernel tap (kh=1,kw=1) always lands inside → all ones.
	centerRow := (1*3 + 1)
	for c := 0; c < cols.Dim(1); c++ {
		if cols.At(centerRow, c) != 1 {
			t.Errorf("center tap col %d = %v, want 1", c, cols.At(centerRow, c))
		}
	}
	// Corner tap (kh=0,kw=0) at output (0,0) reads padding → zero.
	if cols.At(0, 0) != 0 {
		t.Errorf("corner tap reads padding, got %v want 0", cols.At(0, 0))
	}
}

// Property: Col2Im is the adjoint of Im2Col — for random x and y,
// ⟨Im2Col(x), y⟩ = ⟨x, Col2Im(y)⟩. This is the exact identity the conv
// backward pass relies on.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
		n, c, h, w := 2, 3, 5, 5
		x := New(n, c, h, w)
		x.RandNormal(rng, 0, 1)
		cols := Im2Col(x, p)
		y := New(cols.Dim(0), cols.Dim(1))
		y.RandNormal(rng, 0, 1)
		lhs := 0.0
		for i := range cols.Data() {
			lhs += cols.Data()[i] * y.Data()[i]
		}
		back := Col2Im(y, n, c, h, w, p)
		rhs := 0.0
		for i := range x.Data() {
			rhs += x.Data()[i] * back.Data()[i]
		}
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConvParamsOutSize(t *testing.T) {
	tests := []struct {
		name   string
		p      ConvParams
		h, w   int
		oh, ow int
	}{
		{"same-3x3", ConvParams{3, 3, 1, 1, 1, 1}, 28, 28, 28, 28},
		{"valid-5x5", ConvParams{5, 5, 1, 1, 0, 0}, 28, 28, 24, 24},
		{"stride2", ConvParams{3, 3, 2, 2, 1, 1}, 32, 32, 16, 16},
		{"pool2", ConvParams{2, 2, 2, 2, 0, 0}, 24, 24, 12, 12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			oh, ow := tt.p.OutSize(tt.h, tt.w)
			if oh != tt.oh || ow != tt.ow {
				t.Errorf("OutSize(%d,%d) = (%d,%d), want (%d,%d)", tt.h, tt.w, oh, ow, tt.oh, tt.ow)
			}
		})
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(10000)
	x.KaimingNormal(rng, 50)
	wantStd := math.Sqrt(2.0 / 50)
	var sum, sumSq float64
	for _, v := range x.Data() {
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(x.Len())
	std := math.Sqrt(sumSq/float64(x.Len()) - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Errorf("Kaiming mean = %v, want ~0", mean)
	}
	if math.Abs(std-wantStd)/wantStd > 0.05 {
		t.Errorf("Kaiming std = %v, want ~%v", std, wantStd)
	}

	y := New(10000)
	y.XavierUniform(rng, 30, 70)
	limit := math.Sqrt(6.0 / 100)
	for _, v := range y.Data() {
		if v < -limit || v >= limit {
			t.Fatalf("Xavier sample %v outside [-%v, %v)", v, limit, limit)
		}
	}
}
