package tensor

import (
	"math"
	"math/rand"
)

// The initializers draw every sample from rng in float64 and round once to
// the storage dtype. Drawing at full width regardless of dtype keeps the
// generator stream identical across precisions, so a float32 model's
// initial parameters are exactly round(float64 init) — the property the
// cross-precision parity tests pin down.

// RandNormal fills t with samples from N(mean, std²) drawn from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, mean, std float64) {
	if t.dt == Float32 {
		for i := range t.data32 {
			t.data32[i] = float32(mean + std*rng.NormFloat64()) //lint:allow precision -- initializer rounds the shared f64 draw once
		}
		return
	}
	for i := range t.data {
		t.data[i] = mean + std*rng.NormFloat64()
	}
}

// RandUniform fills t with samples from U[lo, hi) drawn from rng.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	if t.dt == Float32 {
		for i := range t.data32 {
			t.data32[i] = float32(lo + (hi-lo)*rng.Float64()) //lint:allow precision -- initializer rounds the shared f64 draw once
		}
		return
	}
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float64()
	}
}

// KaimingNormal fills t with He-normal initialization for a layer with the
// given fan-in, the standard initializer for ReLU networks.
func (t *Tensor) KaimingNormal(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	t.RandNormal(rng, 0, std)
}

// XavierUniform fills t with Glorot-uniform initialization for the given
// fan-in and fan-out, used by the fully-connected output layers.
func (t *Tensor) XavierUniform(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	t.RandUniform(rng, -limit, limit)
}
