package tensor

import (
	"math/bits"
	"sync"
)

// The scratch arena recycles short-lived tensors — im2col matrices,
// activation reorder buffers, LSTM gate pre-activations — that the training
// loop would otherwise allocate and discard every step. Whole *Tensor
// objects are pooled (storage, shape and stride slices included) in
// power-of-two size classes, so a steady-state Get/Put pair performs no
// allocation at all; fragmentation is bounded at 2×.
//
// Contract: GetScratch returns a tensor with UNSPECIFIED contents (kernels
// writing into it must fully overwrite or zero it — every *Into kernel in
// this package does), and PutScratch transfers ownership back to the arena,
// which will hand the same object to a later GetScratch. A released tensor,
// or any view aliasing its storage (Reshape), must not be touched
// afterwards. The arena is safe for concurrent use; the federated engine's
// per-client goroutines share it.

// arenaClasses covers 2^0 .. 2^(arenaClasses-1) elements; 2^26 float64s is
// 512 MiB, far beyond any model in the zoo — larger requests bypass the
// arena and fall to the GC. Each dtype has its own pool array: a recycled
// float32 buffer is half the footprint of its float64 peer and must never
// satisfy a float64 request.
const arenaClasses = 27

var arenas [numDTypes][arenaClasses]sync.Pool

func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}

// setShape points t at the given shape, reusing its shape/stride slices
// when their capacity allows so reshaping a recycled tensor is
// allocation-free.
func (t *Tensor) setShape(shape []int) {
	d := len(shape)
	if cap(t.shape) >= d {
		t.shape = t.shape[:d]
		t.strides = t.strides[:d]
	} else {
		t.shape = make([]int, d)
		t.strides = make([]int, d)
	}
	copy(t.shape, shape)
	acc := 1
	for i := d - 1; i >= 0; i-- {
		t.strides[i] = acc
		acc *= shape[i]
	}
}

// GetScratch returns a float64 tensor of the given shape backed by pooled
// storage. The contents are unspecified; callers must overwrite before
// reading.
func GetScratch(shape ...int) *Tensor {
	return GetScratchOf(Float64, shape...)
}

// GetScratchOf is GetScratch at an explicit dtype — the variant the
// precision-parameterized layers use so their scratch matches their
// parameter storage width.
func GetScratchOf(dt DType, shape ...int) *Tensor {
	n := checkShape(shape)
	c := sizeClass(n)
	if c >= arenaClasses { // beyond the largest class: plain allocation
		return NewOf(dt, shape...)
	}
	t, ok := arenas[dt][c].Get().(*Tensor)
	if !ok {
		t = &Tensor{dt: dt}
		if dt == Float32 {
			t.data32 = make([]float32, 1<<uint(c))
		} else {
			t.data = make([]float64, 1<<uint(c))
		}
	}
	if dt == Float32 {
		t.data32 = t.data32[:n]
	} else {
		t.data = t.data[:n]
	}
	t.setShape(shape)
	return t
}

// PutScratch returns a tensor to its dtype's arena; the arena will recycle
// the whole object. Passing nil is a no-op so callers can release
// optimistically. The tensor (and any view of it) must not be used
// afterwards.
func PutScratch(t *Tensor) {
	if t == nil {
		return
	}
	c := cap(t.data)
	if t.dt == Float32 {
		c = cap(t.data32)
	}
	if c == 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1 // floor(log2 cap): pooled objects satisfy Get(n ≤ 2^cls)
	if cls >= arenaClasses {
		return
	}
	if t.dt == Float32 {
		t.data32 = t.data32[:c]
	} else {
		t.data = t.data[:c]
	}
	arenas[t.dt][cls].Put(t)
}
