package tensor

import (
	"fmt"

	"fedsu/internal/par"
)

// The matmul kernels are register-blocked (tileRows output rows share each
// streamed row of B), parallelized over the par pool, and instantiated per
// element width via the Elem type parameter: the public entry points
// dispatch once on the operands' dtype and the compiler stencils a separate
// loop body for float32 and float64, so both widths keep their accumulators
// in registers. Three properties are load-bearing for the rest of the stack:
//
//   - Bit-determinism: every output element is accumulated in a fixed order
//     (p = 0..k-1) and the tileRows block decomposition is anchored at
//     absolute row indices (par.ParallelizeGrain keeps chunk boundaries
//     tile-aligned), so results are bitwise identical at every worker count,
//     including the serial fallback — at both precisions.
//   - No hidden allocation: the *Into and *Acc variants write caller-owned
//     storage, which the nn layers draw from the scratch arena.
//   - Accumulator width = storage width: each dot product sums k terms into
//     an E-typed register (standard practice for f32 GEMM — per-element
//     error is O(√k)·ulp on random data, dominated by the f32 storage
//     rounding itself, while widening the eight-way register tile to f64
//     would double its register pressure and halve the bandwidth win).
//     O(n)-term statistics reductions elsewhere (loss, norms, batchnorm
//     moments) do widen to float64; see tensor.Sum and the nn layer notes.
//
// Small products fall back to the serial kernel so eval-scale tensors do
// not pay goroutine handoff; the cutoff is tunable for tests via
// SetParallelCutoff.

// tileRows is the register-block height: that many output rows accumulate
// against each streamed row of B, quartering B's memory traffic.
const tileRows = 4

// tileK and tileJ bound the B panel (tileK×tileJ elements = 512 KiB at
// float64, 256 KiB at float32) that the cache-blocked kernels keep hot in
// L2 while all row tiles accumulate against it. Tiling only reorders *which
// element* is updated next, never the p-order of updates to a single
// element, so it preserves bit-identical results.
const (
	tileK = 128
	tileJ = 512
)

// parallelCutoff is the minimum work size (multiply-adds for matmul,
// elements moved for im2col/col2im) that engages the worker pool.
var parallelCutoff int64 = 1 << 18

// SetParallelCutoff overrides the serial-fallback threshold and returns the
// previous value. It exists so tests can force tiny tensors through the
// parallel path; production code should leave the default.
func SetParallelCutoff(v int64) (prev int64) {
	prev = parallelCutoff
	parallelCutoff = v
	return prev
}

func parallelWorthwhile(work int64) bool {
	return par.Workers() > 1 && work >= parallelCutoff
}

// MatMul computes C = A × B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor of the operands' dtype.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	checkSameDType("MatMul", a, b)
	c := NewOf(a.dt, m, n)
	if a.dt == Float32 {
		matmul(c.data32, a.data32, b.data32, m, k, n, false)
	} else {
		matmul(c.data, a.data, b.data, m, k, n, false)
	}
	return c
}

// MatMulInto computes dst = A × B, fully overwriting dst's storage (prior
// contents, including NaNs from the scratch arena, are ignored). dst must be
// m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkSameDType("MatMulInto", dst, a, b)
	if dst.dt == Float32 {
		matmul(dst.data32, a.data32, b.data32, m, k, n, false)
	} else {
		matmul(dst.data, a.data, b.data, m, k, n, false)
	}
}

// MatMulAcc computes dst += A × B without materializing the product,
// accumulating each element's contributions in the fixed p = 0..k-1 order
// (serial and parallel paths agree bitwise, like every kernel here).
func MatMulAcc(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulAcc shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkSameDType("MatMulAcc", dst, a, b)
	if dst.dt == Float32 {
		matmul(dst.data32, a.data32, b.data32, m, k, n, true)
	} else {
		matmul(dst.data, a.data, b.data, m, k, n, true)
	}
}

// packCutoff is the work size (multiply-adds) above which MatMul packs Bᵀ
// into an arena buffer and runs the store-free dot kernel; the O(k·n) pack
// cost is noise there. Below it the in-place accumulate kernel wins.
const packCutoff = 1 << 15

func matmul[E Elem](c, a, b []E, m, k, n int, acc bool) {
	work := int64(m) * int64(k) * int64(n)
	if work < packCutoff {
		matmulBlock(c, a, b, 0, m, 0, n, k, n, acc)
		return
	}
	// Pack Bᵀ so every output element is a contiguous dot product: the
	// inner loop carries its sum in registers (no store per element), which
	// on scalar Go code roughly doubles throughput over the accumulate
	// kernel. Element values are unchanged bit-for-bit: both forms apply
	// the identical sequence of rounded multiply-adds in p order.
	bts := GetScratchOf(dtypeOf[E](), n*k)
	bt := DataOf[E](bts)
	transposeInto(bt, b, k, n)
	if parallelWorthwhile(work) {
		par.ParallelizeGrain(m, tileRows, func(lo, hi int) {
			matmulPackedRows(c, a, bt, lo, hi, k, n, acc)
		})
	} else {
		matmulPackedRows(c, a, bt, 0, m, k, n, acc)
	}
	PutScratch(bts)
}

// transposeInto writes the r×c matrix src into dst column-major (dst is
// c×r), using cache-friendly square tiles. Pure data movement — layout only.
func transposeInto[E Elem](dst, src []E, r, c int) {
	const tile = 32
	if parallelWorthwhile(int64(r) * int64(c) * 8) {
		par.ParallelizeGrain(c, tile, func(lo, hi int) {
			transposeTiles(dst, src, r, c, lo, hi)
		})
		return
	}
	transposeTiles(dst, src, r, c, 0, c)
}

func transposeTiles[E Elem](dst, src []E, r, c, jLo, jHi int) {
	const tile = 32
	for j0 := jLo; j0 < jHi; j0 += tile {
		j1 := j0 + tile
		if j1 > jHi {
			j1 = jHi
		}
		for i0 := 0; i0 < r; i0 += tile {
			i1 := i0 + tile
			if i1 > r {
				i1 = r
			}
			for j := j0; j < j1; j++ {
				dj := dst[j*r+i0 : j*r+i1]
				for i := range dj {
					dj[i] = src[(i0+i)*c+j]
				}
			}
		}
	}
}

// matmulPackedRows computes output rows [lo, hi) against the packed (n×k)
// Bᵀ: each element is one contiguous dot product accumulated in registers,
// with a 4-column register tile sharing every streamed A row. Elements are
// independent ordered reductions, so any chunking yields identical bits.
// Accumulators are E-typed (storage width) — see the file comment.
func matmulPackedRows[E Elem](c, a, bt []E, lo, hi, k, n int, acc bool) {
	// 4×2 register tile: four A rows share every streamed Bᵀ row, so the
	// packed matrix is pulled through the cache hierarchy once per four
	// output rows instead of once per row. Each of the eight sums is still
	// an independent ordered dot product — tiling changes nothing bitwise.
	i := lo
	for ; i+tileRows <= hi; i += tileRows {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		j := 0
		for ; j+2 <= n; j += 2 {
			bA := bt[(j+0)*k:][:len(a0)]
			bB := bt[(j+1)*k:][:len(a0)]
			var s00, s01, s10, s11, s20, s21, s30, s31 E
			for p, bv0 := range bA {
				bv1 := bB[p]
				v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
				s00 += v0 * bv0
				s01 += v0 * bv1
				s10 += v1 * bv0
				s11 += v1 * bv1
				s20 += v2 * bv0
				s21 += v2 * bv1
				s30 += v3 * bv0
				s31 += v3 * bv1
			}
			if acc {
				c[(i+0)*n+j] += s00
				c[(i+0)*n+j+1] += s01
				c[(i+1)*n+j] += s10
				c[(i+1)*n+j+1] += s11
				c[(i+2)*n+j] += s20
				c[(i+2)*n+j+1] += s21
				c[(i+3)*n+j] += s30
				c[(i+3)*n+j+1] += s31
			} else {
				c[(i+0)*n+j], c[(i+0)*n+j+1] = s00, s01
				c[(i+1)*n+j], c[(i+1)*n+j+1] = s10, s11
				c[(i+2)*n+j], c[(i+2)*n+j+1] = s20, s21
				c[(i+3)*n+j], c[(i+3)*n+j+1] = s30, s31
			}
		}
		for ; j < n; j++ {
			bj := bt[j*k:][:len(a0)]
			var s0, s1, s2, s3 E
			for p, bv := range bj {
				s0 += a0[p] * bv
				s1 += a1[p] * bv
				s2 += a2[p] * bv
				s3 += a3[p] * bv
			}
			if acc {
				c[(i+0)*n+j] += s0
				c[(i+1)*n+j] += s1
				c[(i+2)*n+j] += s2
				c[(i+3)*n+j] += s3
			} else {
				c[(i+0)*n+j], c[(i+1)*n+j], c[(i+2)*n+j], c[(i+3)*n+j] = s0, s1, s2, s3
			}
		}
	}
	for ; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		j := 0
		for ; j+tileRows <= n; j += tileRows {
			// Re-slicing to len(ai) lets the compiler drop the four inner
			// bounds checks.
			b0 := bt[(j+0)*k:][:len(ai)]
			b1 := bt[(j+1)*k:][:len(ai)]
			b2 := bt[(j+2)*k:][:len(ai)]
			b3 := bt[(j+3)*k:][:len(ai)]
			var s0, s1, s2, s3 E
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			if acc {
				ci[j] += s0
				ci[j+1] += s1
				ci[j+2] += s2
				ci[j+3] += s3
			} else {
				ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
			}
		}
		for ; j < n; j++ {
			bj := bt[j*k:][:len(ai)]
			var s E
			for p, av := range ai {
				s += av * bj[p]
			}
			if acc {
				ci[j] += s
			} else {
				ci[j] = s
			}
		}
	}
}

// matmulBlock computes the output block rows [iLo, iHi) × cols [jLo, jHi),
// overwriting it (or accumulating onto it when acc is set). The row range
// is processed in absolute tileRows register tiles (row chunks arrive
// tile-aligned from ParallelizeGrain except the final tail) and the k/j
// dimensions in tileK×tileJ cache panels, so every element accumulates its
// k products in exactly the order p = 0..k-1 regardless of chunking or
// panel boundaries.
func matmulBlock[E Elem](c, a, b []E, iLo, iHi, jLo, jHi, k, n int, acc bool) {
	if !acc {
		for i := iLo; i < iHi; i++ {
			row := c[i*n+jLo : i*n+jHi]
			for j := range row {
				row[j] = 0
			}
		}
	}
	for jc := jLo; jc < jHi; jc += tileJ {
		jcHi := jc + tileJ
		if jcHi > jHi {
			jcHi = jHi
		}
		for pc := 0; pc < k; pc += tileK {
			pcHi := pc + tileK
			if pcHi > k {
				pcHi = k
			}
			i := iLo
			for ; i+tileRows <= iHi; i += tileRows {
				c0 := c[(i+0)*n+jc : (i+0)*n+jcHi]
				c1 := c[(i+1)*n+jc : (i+1)*n+jcHi]
				c2 := c[(i+2)*n+jc : (i+2)*n+jcHi]
				c3 := c[(i+3)*n+jc : (i+3)*n+jcHi]
				a0 := a[(i+0)*k : (i+1)*k]
				a1 := a[(i+1)*k : (i+2)*k]
				a2 := a[(i+2)*k : (i+3)*k]
				a3 := a[(i+3)*k : (i+4)*k]
				for p := pc; p < pcHi; p++ {
					v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
					if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
						continue
					}
					bp := b[p*n+jc : p*n+jcHi]
					for j, bv := range bp {
						c0[j] += v0 * bv
						c1[j] += v1 * bv
						c2[j] += v2 * bv
						c3[j] += v3 * bv
					}
				}
			}
			for ; i < iHi; i++ {
				ci := c[i*n+jc : i*n+jcHi]
				ai := a[i*k : (i+1)*k]
				for p := pc; p < pcHi; p++ {
					av := ai[p]
					if av == 0 {
						continue
					}
					bp := b[p*n+jc : p*n+jcHi]
					for j, bv := range bp {
						ci[j] += av * bv
					}
				}
			}
		}
	}
}

func checkTransA(a, b *Tensor) (k, m, n int) {
	k, m = a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	return k, m, n
}

// MatMulTransA computes C = Aᵀ × B where A is k×m and B is k×n, yielding
// m×n without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := checkTransA(a, b)
	checkSameDType("MatMulTransA", a, b)
	c := NewOf(a.dt, m, n)
	if a.dt == Float32 {
		matmulTransA(c.data32, a.data32, b.data32, k, m, n, false)
	} else {
		matmulTransA(c.data, a.data, b.data, k, m, n, false)
	}
	return c
}

// MatMulTransAInto computes dst = Aᵀ × B, fully overwriting dst (m×n).
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m, n := checkTransA(a, b)
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkSameDType("MatMulTransAInto", dst, a, b)
	if dst.dt == Float32 {
		matmulTransA(dst.data32, a.data32, b.data32, k, m, n, false)
	} else {
		matmulTransA(dst.data, a.data, b.data, k, m, n, false)
	}
}

// MatMulTransAAcc computes dst += Aᵀ × B, the gradient-accumulation
// primitive (dW += xᵀ·grad) that avoids a temporary plus an Add pass.
func MatMulTransAAcc(dst, a, b *Tensor) {
	k, m, n := checkTransA(a, b)
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAAcc shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkSameDType("MatMulTransAAcc", dst, a, b)
	if dst.dt == Float32 {
		matmulTransA(dst.data32, a.data32, b.data32, k, m, n, true)
	} else {
		matmulTransA(dst.data, a.data, b.data, k, m, n, true)
	}
}

func matmulTransA[E Elem](c, a, b []E, k, m, n int, acc bool) {
	if parallelWorthwhile(int64(m) * int64(k) * int64(n)) {
		// Split over output columns: every worker walks the full p loop, so
		// each element still accumulates in p order regardless of chunking.
		par.Parallelize(n, func(jlo, jhi int) {
			matmulTransACols(c, a, b, k, m, n, jlo, jhi, acc)
		})
		return
	}
	matmulTransACols(c, a, b, k, m, n, 0, n, acc)
}

// matmulTransACols computes output columns [jlo, jhi). The p loop streams
// rows of A and B while tileRows rows of C share each B row slab; the
// column range is processed in panels sized so the touched C panel
// (m × panel) stays cache-resident across all k passes. The i-tile
// decomposition covers the full row range in every worker and panels only
// reorder whole-element groups, so results are chunk-invariant. This kernel
// accumulates directly into C at storage width: each element receives its k
// contributions in p order, matching the dot-kernel rounding sequence
// exactly, so both code paths agree bitwise per precision.
func matmulTransACols[E Elem](c, a, b []E, k, m, n, jlo, jhi int, acc bool) {
	if !acc {
		for i := 0; i < m; i++ {
			row := c[i*n+jlo : i*n+jhi]
			for j := range row {
				row[j] = 0
			}
		}
	}
	// C panel budget: tileK*tileJ elements (512 KiB at float64), spread over
	// m rows.
	panel := tileK * tileJ / m
	if panel < 32 {
		panel = 32
	}
	if panel > tileJ {
		panel = tileJ
	}
	for jc := jlo; jc < jhi; jc += panel {
		jcHi := jc + panel
		if jcHi > jhi {
			jcHi = jhi
		}
		w := jcHi - jc
		for p := 0; p < k; p++ {
			ap := a[p*m : (p+1)*m]
			bp := b[p*n+jc : p*n+jcHi]
			i := 0
			for ; i+tileRows <= m; i += tileRows {
				v0, v1, v2, v3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
					continue
				}
				c0 := c[(i+0)*n+jc : (i+0)*n+jc+w]
				c1 := c[(i+1)*n+jc : (i+1)*n+jc+w]
				c2 := c[(i+2)*n+jc : (i+2)*n+jc+w]
				c3 := c[(i+3)*n+jc : (i+3)*n+jc+w]
				for j, bv := range bp {
					c0[j] += v0 * bv
					c1[j] += v1 * bv
					c2[j] += v2 * bv
					c3[j] += v3 * bv
				}
			}
			for ; i < m; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				ci := c[i*n+jc : i*n+jc+w]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
}

func checkTransB(a, b *Tensor) (m, k, n int) {
	m, k = a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	return m, k, n
}

// MatMulTransB computes C = A × Bᵀ where A is m×k and B is n×k, yielding m×n.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := checkTransB(a, b)
	checkSameDType("MatMulTransB", a, b)
	c := NewOf(a.dt, m, n)
	if a.dt == Float32 {
		matmulTransB(c.data32, a.data32, b.data32, m, k, n, false)
	} else {
		matmulTransB(c.data, a.data, b.data, m, k, n, false)
	}
	return c
}

// MatMulTransBInto computes dst = A × Bᵀ, fully overwriting dst (m×n).
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkTransB(a, b)
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkSameDType("MatMulTransBInto", dst, a, b)
	if dst.dt == Float32 {
		matmulTransB(dst.data32, a.data32, b.data32, m, k, n, false)
	} else {
		matmulTransB(dst.data, a.data, b.data, m, k, n, false)
	}
}

// MatMulTransBAcc computes dst += A × Bᵀ. Each element's dot product is
// formed in a private accumulator and added to dst once, matching the
// compute-then-Add semantics of the unfused path bit-for-bit.
func MatMulTransBAcc(dst, a, b *Tensor) {
	m, k, n := checkTransB(a, b)
	if dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBAcc shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	checkSameDType("MatMulTransBAcc", dst, a, b)
	if dst.dt == Float32 {
		matmulTransB(dst.data32, a.data32, b.data32, m, k, n, true)
	} else {
		matmulTransB(dst.data, a.data, b.data, m, k, n, true)
	}
}

// matmulTransB runs the shared dot kernel directly: B stored n×k is already
// the packed-Bᵀ layout matmulPackedRows wants.
func matmulTransB[E Elem](c, a, b []E, m, k, n int, acc bool) {
	if parallelWorthwhile(int64(m) * int64(k) * int64(n)) {
		par.Parallelize(m, func(lo, hi int) {
			matmulPackedRows(c, a, b, lo, hi, k, n, acc)
		})
		return
	}
	matmulPackedRows(c, a, b, 0, m, k, n, acc)
}
