package tensor

import "fmt"

// MatMul computes C = A × B for 2-D tensors A (m×k) and B (k×n), returning a
// new m×n tensor. It uses a cache-friendly ikj loop order which is the main
// performance lever for the pure-Go training stack.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-D operands, got %v × %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	c := New(m, n)
	matmulInto(c.data, a.data, b.data, m, k, n)
	return c
}

// MatMulInto computes dst = A × B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	dst.Zero()
	matmulInto(dst.data, a.data, b.data, m, k, n)
}

func matmulInto(c, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a[i*k+p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ × B where A is k×m and B is k×n, yielding m×n.
// It avoids materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	c := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatMulTransB computes C = A × Bᵀ where A is m×k and B is n×k, yielding m×n.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		ci := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}
