package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseDType(t *testing.T) {
	cases := []struct {
		in   string
		want DType
		err  bool
	}{
		{"", Float64, false},
		{"float64", Float64, false},
		{"f64", Float64, false},
		{"float32", Float32, false},
		{"f32", Float32, false},
		{"float16", Float64, true},
		{"FLOAT32", Float64, true},
	}
	for _, tc := range cases {
		got, err := ParseDType(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseDType(%q) = (%v, %v), want (%v, err=%v)", tc.in, got, err, tc.want, tc.err)
		}
	}
	if Float32.String() != "float32" || Float64.String() != "float64" {
		t.Errorf("DType.String round-trip broken: %q %q", Float32, Float64)
	}
	if Float32.Bytes() != 4 || Float64.Bytes() != 8 {
		t.Errorf("DType.Bytes = %d/%d, want 4/8", Float32.Bytes(), Float64.Bytes())
	}
}

// TestZeroValueDTypeIsFloat64 pins the compatibility contract: tensors from
// the historical constructors are float64 and keep the Data() fast path.
func TestZeroValueDTypeIsFloat64(t *testing.T) {
	for _, x := range []*Tensor{New(3), FromSlice([]float64{1, 2}, 2), Full(7, 2, 2), GetScratch(4)} {
		if x.DType() != Float64 {
			t.Fatalf("%v: DType = %v, want Float64", x, x.DType())
		}
		_ = x.Data() // must not panic
	}
}

// TestDataOfDoesNotAllocate guards the dispatch boundary: pulling the typed
// backing slice out of a tensor must stay allocation-free at both widths,
// or every kernel invocation would pay a heap box.
func TestDataOfDoesNotAllocate(t *testing.T) {
	t64 := New(16)
	t32 := NewOf(Float32, 16)
	var sink int
	if n := testing.AllocsPerRun(100, func() {
		sink += len(DataOf[float64](t64)) + len(DataOf[float32](t32)) + int(dtypeOf[float32]())
	}); n != 0 {
		t.Fatalf("DataOf/dtypeOf allocate %.1f times per call, want 0", n)
	}
	_ = sink
}

// TestDataOfPanicsOnMismatch: feeding a layer instantiated at one precision
// a tensor of the other must fail loudly, not convert silently.
func TestDataOfPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DataOf[float32] on a float64 tensor did not panic")
		}
	}()
	DataOf[float32](New(4))
}

// TestF64BoundaryRoundTrip checks both directions of the sync boundary:
// CopyFromF64 rounds exactly like the wire codec's float32 conversion, and
// CopyToF64 widens exactly, so a float32 tensor round-trips bit-stably.
func TestF64BoundaryRoundTrip(t *testing.T) {
	src := []float64{0, math.Pi, -1.0 / 3.0, 1e-40, -2.5e38, math.MaxFloat64, 1}
	x := NewOf(Float32, len(src))
	x.CopyFromF64(src)
	got := make([]float64, len(src))
	x.CopyToF64(got)
	for i, v := range src {
		want := float64(float32(v))
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Errorf("element %d: round-trip %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
	// Second trip is the identity: the storage is already float32.
	x.CopyFromF64(got)
	got2 := make([]float64, len(src))
	x.CopyToF64(got2)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(got2[i]) {
			t.Errorf("element %d: second trip moved %x -> %x", i, math.Float64bits(got[i]), math.Float64bits(got2[i]))
		}
	}
}

// TestScratchArenaSeparatesDTypes: a recycled float32 tensor must never
// satisfy a float64 request (and vice versa), whatever the size class.
func TestScratchArenaSeparatesDTypes(t *testing.T) {
	s32 := GetScratchOf(Float32, 8)
	PutScratch(s32)
	s64 := GetScratch(8)
	if s64.DType() != Float64 {
		t.Fatalf("float64 scratch request returned %v tensor", s64.DType())
	}
	_ = s64.Data() // would panic if the arena handed back float32 storage
	PutScratch(s64)

	s32b := GetScratchOf(Float32, 8)
	if s32b.DType() != Float32 {
		t.Fatalf("float32 scratch request returned %v tensor", s32b.DType())
	}
	if got := len(s32b.Data32()); got != 8 {
		t.Fatalf("float32 scratch length %d, want 8", got)
	}
	PutScratch(s32b)
}

// TestInitializersShareRngStream pins the cross-precision init parity: both
// widths consume the identical generator sequence, and the float32 values
// are exactly the rounded float64 draws.
func TestInitializersShareRngStream(t *testing.T) {
	const n = 64
	init := func(dt DType, f func(*Tensor, *rand.Rand)) (*Tensor, float64) {
		rng := rand.New(rand.NewSource(123))
		x := NewOf(dt, n)
		f(x, rng)
		return x, rng.Float64() // stream position probe
	}
	cases := []struct {
		name string
		fill func(*Tensor, *rand.Rand)
	}{
		{"RandNormal", func(x *Tensor, rng *rand.Rand) { x.RandNormal(rng, 0.1, 2) }},
		{"RandUniform", func(x *Tensor, rng *rand.Rand) { x.RandUniform(rng, -3, 5) }},
		{"KaimingNormal", func(x *Tensor, rng *rand.Rand) { x.KaimingNormal(rng, 9) }},
		{"XavierUniform", func(x *Tensor, rng *rand.Rand) { x.XavierUniform(rng, 4, 6) }},
	}
	for _, tc := range cases {
		x64, probe64 := init(Float64, tc.fill)
		x32, probe32 := init(Float32, tc.fill)
		if probe64 != probe32 {
			t.Fatalf("%s: rng stream diverged between dtypes", tc.name)
		}
		d64, d32 := x64.Data(), x32.Data32()
		for i := range d64 {
			if math.Float32bits(d32[i]) != math.Float32bits(float32(d64[i])) {
				t.Fatalf("%s: element %d is %x, want round(f64 draw) %x",
					tc.name, i, math.Float32bits(d32[i]), math.Float32bits(float32(d64[i])))
			}
		}
	}
}

// TestMixedDTypeOperandsPanic: kernels never convert implicitly.
func TestMixedDTypeOperandsPanic(t *testing.T) {
	a := New(4, 4)
	b := NewOf(Float32, 4, 4)
	for name, f := range map[string]func(){
		"MatMul":    func() { MatMul(a, b) },
		"AddScaled": func() { a.AddScaled(1, b) },
		"Mul":       func() { a.Mul(b) },
		"CopyFrom":  func() { a.CopyFrom(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mixed dtypes did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestElementwiseFloat32 spot-checks the float32 instantiations of the
// element-wise methods and the f64-accumulating reductions.
func TestElementwiseFloat32(t *testing.T) {
	x := NewOf(Float32, 2, 2)
	x.CopyFromF64([]float64{1, -2, 3, -4})
	y := x.Clone()
	y.Scale(0.5)
	want := []float64{0.5, -1, 1.5, -2}
	for i, w := range want {
		if got := y.flatAt(i); got != w {
			t.Fatalf("Scale: element %d = %g, want %g", i, got, w)
		}
	}
	y.AddScaled(2, x)
	if got := y.flatAt(1); got != -5 {
		t.Fatalf("AddScaled: element 1 = %g, want -5", got)
	}
	if s := x.Sum(); s != -2 {
		t.Fatalf("Sum = %g, want -2", s)
	}
	if n := x.Norm(); math.Abs(n-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm = %g, want sqrt(30)", n)
	}
	if i := x.ArgMax(); i != 2 {
		t.Fatalf("ArgMax = %d, want 2", i)
	}
	if m := x.MaxAbs(); m != 4 {
		t.Fatalf("MaxAbs = %g, want 4", m)
	}
	if x.Mean() != -0.5 {
		t.Fatalf("Mean = %g, want -0.5", x.Mean())
	}
	z := x.Reshape(4)
	if z.DType() != Float32 || z.Len() != 4 {
		t.Fatalf("Reshape lost dtype or length: %v %d", z.DType(), z.Len())
	}
	z.Set(9, 0)
	if x.At(0, 0) != 9 {
		t.Fatalf("Reshape is not a view at float32")
	}
	fs := FromSliceOf([]float32{1, 2, 3}, 3)
	if fs.DType() != Float32 || fs.At(1) != 2 {
		t.Fatalf("FromSliceOf[float32] broken: %v", fs)
	}
}
