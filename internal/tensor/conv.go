package tensor

import "fmt"

// ConvParams describes a 2-D convolution or pooling geometry over NCHW
// tensors.
type ConvParams struct {
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// OutSize returns the output spatial size for an input of h×w.
func (p ConvParams) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*p.PadH-p.KernelH)/p.StrideH + 1
	ow = (w+2*p.PadW-p.KernelW)/p.StrideW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields non-positive output for input %dx%d", p, h, w))
	}
	return oh, ow
}

// validRange returns the [lo, hi] output-coordinate range (inclusive) for
// which o*stride + k - pad lands inside [0, n), clamped to [0, out-1].
// hi < lo means the range is empty.
func validRange(k, pad, stride, n, out int) (lo, hi int) {
	// o*stride + k - pad >= 0  →  o >= ceil((pad-k)/stride)
	lo = divCeil(pad-k, stride)
	if lo < 0 {
		lo = 0
	}
	// o*stride + k - pad <= n-1  →  o <= floor((n-1+pad-k)/stride)
	hi = divFloor(n-1+pad-k, stride)
	if hi > out-1 {
		hi = out - 1
	}
	return lo, hi
}

func divFloor(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func divCeil(a, b int) int { return -divFloor(-a, b) }

// Im2Col unrolls an NCHW input tensor into a matrix of shape
// (C*KH*KW) × (N*OH*OW) so convolution becomes a single MatMul. This is the
// standard lowering used by CPU deep-learning stacks. The implementation
// precomputes each kernel tap's valid output range so the hot loop is a
// contiguous copy (stride 1) or a branch-free strided gather.
func Im2Col(x *Tensor, p ConvParams) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	rows := c * p.KernelH * p.KernelW
	cols := n * oh * ow
	out := New(rows, cols)
	xd, od := x.data, out.data
	for ci := 0; ci < c; ci++ {
		for kh := 0; kh < p.KernelH; kh++ {
			oyLo, oyHi := validRange(kh, p.PadH, p.StrideH, h, oh)
			for kw := 0; kw < p.KernelW; kw++ {
				oxLo, oxHi := validRange(kw, p.PadW, p.StrideW, w, ow)
				row := (ci*p.KernelH+kh)*p.KernelW + kw
				dst := od[row*cols : (row+1)*cols]
				for ni := 0; ni < n; ni++ {
					base := (ni*c + ci) * h * w
					for oy := 0; oy < oh; oy++ {
						dstRow := dst[(ni*oh+oy)*ow : (ni*oh+oy+1)*ow]
						if oy < oyLo || oy > oyHi || oxLo > oxHi {
							for j := range dstRow {
								dstRow[j] = 0
							}
							continue
						}
						iy := oy*p.StrideH + kh - p.PadH
						src := xd[base+iy*w : base+(iy+1)*w]
						for j := 0; j < oxLo; j++ {
							dstRow[j] = 0
						}
						ix := oxLo*p.StrideW + kw - p.PadW
						if p.StrideW == 1 {
							copy(dstRow[oxLo:oxHi+1], src[ix:ix+oxHi-oxLo+1])
						} else {
							for ox := oxLo; ox <= oxHi; ox++ {
								dstRow[ox] = src[ix]
								ix += p.StrideW
							}
						}
						for j := oxHi + 1; j < ow; j++ {
							dstRow[j] = 0
						}
					}
				}
			}
		}
	}
	return out
}

// Col2Im accumulates a column matrix (as produced by Im2Col) back into an
// NCHW tensor of the given spatial geometry; overlapping contributions are
// summed. It is the adjoint of Im2Col and implements the convolution input
// gradient.
func Col2Im(cols *Tensor, n, c, h, w int, p ConvParams) *Tensor {
	oh, ow := p.OutSize(h, w)
	x := New(n, c, h, w)
	xd, cd := x.data, cols.data
	colN := n * oh * ow
	for ci := 0; ci < c; ci++ {
		for kh := 0; kh < p.KernelH; kh++ {
			oyLo, oyHi := validRange(kh, p.PadH, p.StrideH, h, oh)
			for kw := 0; kw < p.KernelW; kw++ {
				oxLo, oxHi := validRange(kw, p.PadW, p.StrideW, w, ow)
				if oxLo > oxHi {
					continue
				}
				row := (ci*p.KernelH+kh)*p.KernelW + kw
				src := cd[row*colN : (row+1)*colN]
				for ni := 0; ni < n; ni++ {
					base := (ni*c + ci) * h * w
					for oy := oyLo; oy <= oyHi; oy++ {
						iy := oy*p.StrideH + kh - p.PadH
						srcRow := src[(ni*oh+oy)*ow : (ni*oh+oy+1)*ow]
						dst := xd[base+iy*w : base+(iy+1)*w]
						ix := oxLo*p.StrideW + kw - p.PadW
						if p.StrideW == 1 {
							d := dst[ix : ix+oxHi-oxLo+1]
							s := srcRow[oxLo : oxHi+1]
							for j := range d {
								d[j] += s[j]
							}
						} else {
							for ox := oxLo; ox <= oxHi; ox++ {
								dst[ix] += srcRow[ox]
								ix += p.StrideW
							}
						}
					}
				}
			}
		}
	}
	return x
}
