package tensor

import (
	"fmt"

	"fedsu/internal/par"
)

// ConvParams describes a 2-D convolution or pooling geometry over NCHW
// tensors.
type ConvParams struct {
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// OutSize returns the output spatial size for an input of h×w.
func (p ConvParams) OutSize(h, w int) (oh, ow int) {
	oh = (h+2*p.PadH-p.KernelH)/p.StrideH + 1
	ow = (w+2*p.PadW-p.KernelW)/p.StrideW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields non-positive output for input %dx%d", p, h, w))
	}
	return oh, ow
}

// validRange returns the [lo, hi] output-coordinate range (inclusive) for
// which o*stride + k - pad lands inside [0, n), clamped to [0, out-1].
// hi < lo means the range is empty.
func validRange(k, pad, stride, n, out int) (lo, hi int) {
	// o*stride + k - pad >= 0  →  o >= ceil((pad-k)/stride)
	lo = divCeil(pad-k, stride)
	if lo < 0 {
		lo = 0
	}
	// o*stride + k - pad <= n-1  →  o <= floor((n-1+pad-k)/stride)
	hi = divFloor(n-1+pad-k, stride)
	if hi > out-1 {
		hi = out - 1
	}
	return lo, hi
}

func divFloor(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func divCeil(a, b int) int { return -divFloor(-a, b) }

// Im2Col unrolls an NCHW input tensor into a matrix of shape
// (C*KH*KW) × (N*OH*OW) so convolution becomes a single MatMul. This is the
// standard lowering used by CPU deep-learning stacks.
func Im2Col(x *Tensor, p ConvParams) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	out := NewOf(x.dt, c*p.KernelH*p.KernelW, n*oh*ow)
	Im2ColInto(out, x, p)
	return out
}

// Im2ColInto is Im2Col writing into caller-owned storage; dst must be
// (C*KH*KW) × (N*OH*OW) and is fully overwritten (scratch-arena tensors need
// no pre-zeroing). Output rows are independent, so the row loop parallelizes
// over the worker pool with results identical to the serial path. Each
// kernel tap's valid output range is precomputed so the hot loop is a
// contiguous copy (stride 1) or a branch-free strided gather.
func Im2ColInto(dst, x *Tensor, p ConvParams) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := p.OutSize(h, w)
	rows := c * p.KernelH * p.KernelW
	cols := n * oh * ow
	if dst.shape[0] != rows || dst.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2ColInto dst shape %v, want %dx%d", dst.shape, rows, cols))
	}
	checkSameDType("Im2ColInto", dst, x)
	if dst.dt == Float32 {
		im2colDispatch(dst.data32, x.data32, p, n, c, h, w, oh, ow, rows, cols)
	} else {
		im2colDispatch(dst.data, x.data, p, n, c, h, w, oh, ow, rows, cols)
	}
}

// im2colDispatch engages the worker pool when the unroll is large enough;
// rows write disjoint slabs, so chunking is bit-deterministic at both
// element widths.
func im2colDispatch[E Elem](od, xd []E, p ConvParams, n, c, h, w, oh, ow, rows, cols int) {
	if parallelWorthwhile(int64(rows) * int64(cols)) {
		par.Parallelize(rows, func(lo, hi int) {
			im2colRows(od, xd, p, n, c, h, w, oh, ow, lo, hi)
		})
		return
	}
	im2colRows(od, xd, p, n, c, h, w, oh, ow, 0, rows)
}

// im2colRows fills output rows [rLo, rHi); row index r decodes to the
// (channel, kernel-tap) pair r = (ci*KH + kh)*KW + kw. Rows write disjoint
// slabs, so any chunking is race-free and bit-deterministic.
func im2colRows[E Elem](od, xd []E, p ConvParams, n, c, h, w, oh, ow, rLo, rHi int) {
	cols := n * oh * ow
	for row := rLo; row < rHi; row++ {
		kw := row % p.KernelW
		kh := (row / p.KernelW) % p.KernelH
		ci := row / (p.KernelW * p.KernelH)
		oyLo, oyHi := validRange(kh, p.PadH, p.StrideH, h, oh)
		oxLo, oxHi := validRange(kw, p.PadW, p.StrideW, w, ow)
		dst := od[row*cols : (row+1)*cols]
		for ni := 0; ni < n; ni++ {
			base := (ni*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				dstRow := dst[(ni*oh+oy)*ow : (ni*oh+oy+1)*ow]
				if oy < oyLo || oy > oyHi || oxLo > oxHi {
					for j := range dstRow {
						dstRow[j] = 0
					}
					continue
				}
				iy := oy*p.StrideH + kh - p.PadH
				src := xd[base+iy*w : base+(iy+1)*w]
				for j := 0; j < oxLo; j++ {
					dstRow[j] = 0
				}
				ix := oxLo*p.StrideW + kw - p.PadW
				if p.StrideW == 1 {
					copy(dstRow[oxLo:oxHi+1], src[ix:ix+oxHi-oxLo+1])
				} else {
					for ox := oxLo; ox <= oxHi; ox++ {
						dstRow[ox] = src[ix]
						ix += p.StrideW
					}
				}
				for j := oxHi + 1; j < ow; j++ {
					dstRow[j] = 0
				}
			}
		}
	}
}

// Col2Im accumulates a column matrix (as produced by Im2Col) back into an
// NCHW tensor of the given spatial geometry; overlapping contributions are
// summed. It is the adjoint of Im2Col and implements the convolution input
// gradient.
func Col2Im(cols *Tensor, n, c, h, w int, p ConvParams) *Tensor {
	x := NewOf(cols.dt, n, c, h, w)
	Col2ImInto(x, cols, p)
	return x
}

// Col2ImInto is Col2Im writing into caller-owned storage; dst must be an
// NCHW tensor and is fully overwritten (each channel slab is zeroed before
// accumulation, so scratch-arena tensors need no pre-zeroing). Channels own
// disjoint output slabs and each channel's kernel taps are visited in a
// fixed order, so the channel loop parallelizes with bit-identical results
// at every worker count.
func Col2ImInto(dst, cols *Tensor, p ConvParams) {
	n, c, h, w := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	oh, ow := p.OutSize(h, w)
	colN := n * oh * ow
	rows := c * p.KernelH * p.KernelW
	if cols.shape[0] != rows || cols.shape[1] != colN {
		panic(fmt.Sprintf("tensor: Col2ImInto cols shape %v, want %dx%d", cols.shape, rows, colN))
	}
	checkSameDType("Col2ImInto", dst, cols)
	if dst.dt == Float32 {
		col2imDispatch(dst.data32, cols.data32, p, n, c, h, w, oh, ow, rows, colN)
	} else {
		col2imDispatch(dst.data, cols.data, p, n, c, h, w, oh, ow, rows, colN)
	}
}

// col2imDispatch engages the worker pool over channels; channels own
// disjoint output slabs and taps are visited in a fixed order, so chunking
// is bit-deterministic at both element widths.
func col2imDispatch[E Elem](xd, cd []E, p ConvParams, n, c, h, w, oh, ow, rows, colN int) {
	if parallelWorthwhile(int64(rows) * int64(colN)) {
		par.Parallelize(c, func(lo, hi int) {
			col2imChannels(xd, cd, p, n, c, h, w, oh, ow, lo, hi)
		})
		return
	}
	col2imChannels(xd, cd, p, n, c, h, w, oh, ow, 0, c)
}

// col2imChannels accumulates channels [cLo, cHi) of the output.
func col2imChannels[E Elem](xd, cd []E, p ConvParams, n, c, h, w, oh, ow, cLo, cHi int) {
	colN := n * oh * ow
	for ci := cLo; ci < cHi; ci++ {
		for ni := 0; ni < n; ni++ {
			slab := xd[(ni*c+ci)*h*w : (ni*c+ci+1)*h*w]
			for j := range slab {
				slab[j] = 0
			}
		}
		for kh := 0; kh < p.KernelH; kh++ {
			oyLo, oyHi := validRange(kh, p.PadH, p.StrideH, h, oh)
			for kw := 0; kw < p.KernelW; kw++ {
				oxLo, oxHi := validRange(kw, p.PadW, p.StrideW, w, ow)
				if oxLo > oxHi {
					continue
				}
				row := (ci*p.KernelH+kh)*p.KernelW + kw
				src := cd[row*colN : (row+1)*colN]
				for ni := 0; ni < n; ni++ {
					base := (ni*c + ci) * h * w
					for oy := oyLo; oy <= oyHi; oy++ {
						iy := oy*p.StrideH + kh - p.PadH
						srcRow := src[(ni*oh+oy)*ow : (ni*oh+oy+1)*ow]
						dst := xd[base+iy*w : base+(iy+1)*w]
						ix := oxLo*p.StrideW + kw - p.PadW
						if p.StrideW == 1 {
							d := dst[ix : ix+oxHi-oxLo+1]
							s := srcRow[oxLo : oxHi+1]
							for j := range d {
								d[j] += s[j]
							}
						} else {
							for ox := oxLo; ox <= oxHi; ox++ {
								dst[ix] += srcRow[ox]
								ix += p.StrideW
							}
						}
					}
				}
			}
		}
	}
}
