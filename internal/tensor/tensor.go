// Package tensor implements a dense, row-major float64 tensor library used
// as the numerical substrate for the neural-network training stack.
//
// The package deliberately keeps a small surface: shape bookkeeping, element
// access, arithmetic, matrix multiplication, and the im2col transforms that
// the convolution layers need. Everything is backed by a flat []float64 so
// parameter vectors can be handed to the federated-learning layer without
// copies.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major n-dimensional array of float64 values.
//
// The zero value is not usable; construct tensors with New, FromSlice, or
// the random initializers in random.go.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is non-positive, since a malformed shape is a programming error
// rather than a runtime condition.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    make([]float64, n),
	}
}

// FromSlice wraps data in a tensor with the given shape. The tensor takes
// ownership of data; the caller must not mutate it afterwards. It panics if
// the length of data does not match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    data,
	}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= shape[i]
	}
	return strides
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying flat slice. Mutating the returned slice
// mutates the tensor; this is intentional and heavily used by the optimizer
// and the federated synchronization layer.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong arity for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies the contents of src into t. It panics if the volumes
// differ; shapes may differ as long as the element counts match, which is
// what the reshape-free federated sync layer relies on.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom volume mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Reshape returns a view of t with a new shape covering the same data.
// It panics if the volume differs.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    t.data,
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled adds s*o to t element-wise in place. It panics on volume
// mismatch. This is the SGD update primitive.
func (t *Tensor) AddScaled(s float64, o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: AddScaled volume mismatch %d vs %d", len(t.data), len(o.data)))
	}
	for i := range t.data {
		t.data[i] += s * o.data[i]
	}
}

// Add adds o to t element-wise in place.
func (t *Tensor) Add(o *Tensor) { t.AddScaled(1, o) }

// Sub subtracts o from t element-wise in place.
func (t *Tensor) Sub(o *Tensor) { t.AddScaled(-1, o) }

// Mul multiplies t by o element-wise in place.
func (t *Tensor) Mul(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: Mul volume mismatch %d vs %d", len(t.data), len(o.data)))
	}
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// Norm returns the Euclidean (L2) norm of the flattened tensor.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element. For ties the first
// occurrence wins.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// String renders a short human-readable description, truncating large
// tensors; it exists for debugging and test failure messages.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	limit := len(t.data)
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if limit < len(t.data) {
		fmt.Fprintf(&b, " ... (%d elems)", len(t.data))
	}
	b.WriteString("]")
	return b.String()
}
