// Package tensor implements a dense, row-major tensor library used as the
// numerical substrate for the neural-network training stack, computing in
// either float64 (the default) or float32 (the reduced-precision path that
// matches the 32-bit wire codec).
//
// The package deliberately keeps a small surface: shape bookkeeping, element
// access, arithmetic, matrix multiplication, and the im2col transforms that
// the convolution layers need. Everything is backed by one flat slice at the
// tensor's dtype so parameter vectors can be handed to the federated-learning
// layer without copies (float64 tensors) or with a single exact widening pass
// (float32 tensors, via CopyToF64).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major n-dimensional array of float64 or float32
// values. Exactly one of the two backing slices is non-nil, selected by the
// dtype tag; the zero value of the tag is Float64, so tensors built by New
// and FromSlice behave exactly as they did before precision was
// configurable.
//
// The zero value is not usable; construct tensors with New, NewOf,
// FromSlice, or the random initializers in random.go.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
	data32  []float32
	dt      DType
}

// New returns a zero-filled float64 tensor with the given shape. It panics
// if any dimension is non-positive, since a malformed shape is a programming
// error rather than a runtime condition.
func New(shape ...int) *Tensor {
	return NewOf(Float64, shape...)
}

// NewOf returns a zero-filled tensor of the given dtype and shape.
func NewOf(dt DType, shape ...int) *Tensor {
	n := checkShape(shape)
	t := &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		dt:      dt,
	}
	if dt == Float32 {
		t.data32 = make([]float32, n)
	} else {
		t.data = make([]float64, n)
	}
	return t
}

// FromSlice wraps data in a float64 tensor with the given shape. The tensor
// takes ownership of data; the caller must not mutate it afterwards. It
// panics if the length of data does not match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    data,
	}
}

// FromSliceOf wraps data in a tensor of the matching dtype — the generic
// counterpart of FromSlice used by precision-parameterized layers to view
// caller-owned buffers (e.g. the LSTM step caches) as tensors without a
// copy. Ownership transfers like FromSlice.
func FromSliceOf[E Elem](data []E, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	t := &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		dt:      dtypeOf[E](),
	}
	switch d := any(data).(type) {
	case []float32:
		t.data32 = d
	case []float64:
		t.data = d
	}
	return t
}

// Full returns a float64 tensor of the given shape with every element set
// to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	t.Fill(v)
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = acc
		acc *= shape[i]
	}
	return strides
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int {
	if t.dt == Float32 {
		return len(t.data32)
	}
	return len(t.data)
}

// DType returns the tensor's element type.
func (t *Tensor) DType() DType { return t.dt }

// Data returns the underlying flat slice of a float64 tensor. Mutating the
// returned slice mutates the tensor; this is intentional and heavily used by
// the optimizer and the federated synchronization layer. It panics on a
// float32 tensor — precision-parameterized code uses DataOf, and the
// float64-domain sync layer uses CopyToF64/CopyFromF64.
func (t *Tensor) Data() []float64 {
	if t.dt != Float64 {
		panic(fmt.Sprintf("tensor: Data on %s tensor (use DataOf or CopyToF64)", t.dt))
	}
	return t.data
}

// Data32 returns the underlying flat slice of a float32 tensor, panicking
// on a float64 tensor. The aliasing contract matches Data.
func (t *Tensor) Data32() []float32 {
	if t.dt != Float32 {
		panic(fmt.Sprintf("tensor: Data32 on %s tensor", t.dt))
	}
	return t.data32
}

// CopyToF64 writes the tensor's elements into dst as float64. For float32
// tensors the widening is exact, so this is the lossless direction of the
// precision boundary between storage dtype and the float64 sync-vector
// domain. It panics if len(dst) differs from the element count.
func (t *Tensor) CopyToF64(dst []float64) {
	if len(dst) != t.Len() {
		panic(fmt.Sprintf("tensor: CopyToF64 length mismatch %d vs %d", len(dst), t.Len()))
	}
	if t.dt == Float32 {
		for i, v := range t.data32 {
			dst[i] = float64(v) //lint:allow precision -- exact float32→float64 widening at the sync boundary
		}
		return
	}
	copy(dst, t.data)
}

// CopyFromF64 overwrites the tensor's elements from src, rounding each
// value to the storage dtype. For float32 tensors this is the single,
// deterministic quantization point of the sync boundary — the same
// round-to-nearest float32 conversion the wire codec applies, so a model
// loaded from a decoded wire vector is bit-identical to one loaded from the
// in-process vector. It panics if len(src) differs from the element count.
func (t *Tensor) CopyFromF64(src []float64) {
	if len(src) != t.Len() {
		panic(fmt.Sprintf("tensor: CopyFromF64 length mismatch %d vs %d", len(src), t.Len()))
	}
	if t.dt == Float32 {
		for i, v := range src {
			t.data32[i] = float32(v) //lint:allow precision -- the one deterministic float64→float32 rounding site of the sync boundary
		}
		return
	}
	copy(t.data, src)
}

// At returns the element at the given multi-dimensional index, widened to
// float64 (exact for both dtypes).
func (t *Tensor) At(idx ...int) float64 {
	off := t.offset(idx)
	if t.dt == Float32 {
		return float64(t.data32[off]) //lint:allow precision -- exact widening accessor
	}
	return t.data[off]
}

// Set assigns v to the element at the given multi-dimensional index,
// rounding to the storage dtype.
func (t *Tensor) Set(v float64, idx ...int) {
	off := t.offset(idx)
	if t.dt == Float32 {
		t.data32[off] = float32(v) //lint:allow precision -- rounding accessor, mirrors CopyFromF64
		return
	}
	t.data[off] = v
}

// flatAt returns element i of the flattened tensor, widened to float64.
func (t *Tensor) flatAt(i int) float64 {
	if t.dt == Float32 {
		return float64(t.data32[i]) //lint:allow precision -- exact widening accessor
	}
	return t.data[i]
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong arity for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the tensor, preserving its dtype.
func (t *Tensor) Clone() *Tensor {
	c := NewOf(t.dt, t.shape...)
	copy(c.data, t.data)
	copy(c.data32, t.data32)
	return c
}

// CopyFrom copies the contents of src into t. It panics if the volumes or
// dtypes differ; shapes may differ as long as the element counts match,
// which is what the reshape-free federated sync layer relies on.
func (t *Tensor) CopyFrom(src *Tensor) {
	checkSameDType("CopyFrom", t, src)
	if t.Len() != src.Len() {
		panic(fmt.Sprintf("tensor: CopyFrom volume mismatch %d vs %d", t.Len(), src.Len()))
	}
	copy(t.data, src.data)
	copy(t.data32, src.data32)
}

// Reshape returns a view of t with a new shape covering the same data.
// It panics if the volume differs.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != t.Len() {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", t.Len(), shape))
	}
	return &Tensor{
		shape:   append([]int(nil), shape...),
		strides: computeStrides(shape),
		data:    t.data,
		data32:  t.data32,
		dt:      t.dt,
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	if t.dt == Float32 {
		fillSlice(t.data32, 0)
		return
	}
	fillSlice(t.data, 0)
}

// Fill sets every element to v, rounded to the storage dtype.
func (t *Tensor) Fill(v float64) {
	if t.dt == Float32 {
		fillSlice(t.data32, float32(v)) //lint:allow precision -- scalar rounds once at the call boundary
		return
	}
	fillSlice(t.data, v)
}

// Scale multiplies every element by s in place; s rounds once to the
// storage dtype, then the per-element arithmetic runs at that width.
func (t *Tensor) Scale(s float64) {
	if t.dt == Float32 {
		scaleSlice(t.data32, float32(s)) //lint:allow precision -- scalar rounds once at the call boundary
		return
	}
	scaleSlice(t.data, s)
}

// AddScaled adds s*o to t element-wise in place. It panics on volume or
// dtype mismatch. This is the SGD update primitive; at float32 the scalar
// rounds once and each fused term computes at storage width.
func (t *Tensor) AddScaled(s float64, o *Tensor) {
	checkSameDType("AddScaled", t, o)
	if t.Len() != o.Len() {
		panic(fmt.Sprintf("tensor: AddScaled volume mismatch %d vs %d", t.Len(), o.Len()))
	}
	if t.dt == Float32 {
		addScaledSlice(t.data32, o.data32, float32(s)) //lint:allow precision -- scalar rounds once at the call boundary
		return
	}
	addScaledSlice(t.data, o.data, s)
}

// Add adds o to t element-wise in place.
func (t *Tensor) Add(o *Tensor) { t.AddScaled(1, o) }

// Sub subtracts o from t element-wise in place.
func (t *Tensor) Sub(o *Tensor) { t.AddScaled(-1, o) }

// Mul multiplies t by o element-wise in place.
func (t *Tensor) Mul(o *Tensor) {
	checkSameDType("Mul", t, o)
	if t.Len() != o.Len() {
		panic(fmt.Sprintf("tensor: Mul volume mismatch %d vs %d", t.Len(), o.Len()))
	}
	if t.dt == Float32 {
		mulSlice(t.data32, o.data32)
		return
	}
	mulSlice(t.data, o.data)
}

// Sum returns the sum of all elements, accumulated in float64 regardless of
// storage dtype: whole-tensor reductions sum O(n) terms, where float32
// accumulation would lose bits to cancellation long before the result is
// stored.
func (t *Tensor) Sum() float64 {
	if t.dt == Float32 {
		return sumSlice(t.data32)
	}
	return sumSlice(t.data)
}

// Mean returns the arithmetic mean of all elements (float64 accumulation,
// like Sum).
func (t *Tensor) Mean() float64 { return t.Sum() / float64(t.Len()) }

// Norm returns the Euclidean (L2) norm of the flattened tensor, accumulated
// in float64 like Sum.
func (t *Tensor) Norm() float64 {
	if t.dt == Float32 {
		return math.Sqrt(sumSqSlice(t.data32))
	}
	return math.Sqrt(sumSqSlice(t.data))
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	if t.dt == Float32 {
		return maxAbsSlice(t.data32)
	}
	return maxAbsSlice(t.data)
}

// ArgMax returns the flat index of the largest element. For ties the first
// occurrence wins.
func (t *Tensor) ArgMax() int {
	if t.dt == Float32 {
		return argMaxSlice(t.data32)
	}
	return argMaxSlice(t.data)
}

// String renders a short human-readable description, truncating large
// tensors; it exists for debugging and test failure messages.
func (t *Tensor) String() string {
	var b strings.Builder
	if t.dt == Float32 {
		fmt.Fprintf(&b, "Tensor(f32)%v[", t.shape)
	} else {
		fmt.Fprintf(&b, "Tensor%v[", t.shape)
	}
	n := t.Len()
	limit := n
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.flatAt(i))
	}
	if limit < n {
		fmt.Fprintf(&b, " ... (%d elems)", n)
	}
	b.WriteString("]")
	return b.String()
}

// ---- generic element-wise and reduction kernels ----
//
// Each public method above dispatches once on the dtype tag and runs one of
// these width-parameterized loops; the Go compiler stencils a separate body
// per element type, so both widths keep their scalars in registers.

func fillSlice[E Elem](d []E, v E) {
	for i := range d {
		d[i] = v
	}
}

func scaleSlice[E Elem](d []E, s E) {
	for i := range d {
		d[i] *= s
	}
}

func addScaledSlice[E Elem](dst, src []E, s E) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] += s * src[i]
	}
}

func mulSlice[E Elem](dst, src []E) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] *= src[i]
	}
}

// sumSlice accumulates in float64 at either storage width: whole-tensor
// sums feed loss and statistics paths where float32 accumulation error grows
// with n.
func sumSlice[E Elem](d []E) float64 {
	s := 0.0
	for _, v := range d {
		s += float64(v) //lint:allow precision -- exact widening into the float64 reduction accumulator
	}
	return s
}

func sumSqSlice[E Elem](d []E) float64 {
	s := 0.0
	for _, v := range d {
		f := float64(v) //lint:allow precision -- exact widening into the float64 reduction accumulator
		s += f * f
	}
	return s
}

func maxAbsSlice[E Elem](d []E) float64 {
	var m E
	for _, v := range d {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return float64(m) //lint:allow precision -- exact widening of a comparison result
}

func argMaxSlice[E Elem](d []E) int {
	bi := 0
	best := math.Inf(-1)
	for i, v := range d {
		if f := float64(v); f > best { //lint:allow precision -- exact widening for comparison only
			best, bi = f, i
		}
	}
	return bi
}
