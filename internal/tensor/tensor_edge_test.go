package tensor

import (
	"strings"
	"testing"
)

func TestFull(t *testing.T) {
	x := Full(3.5, 2, 2)
	for _, v := range x.Data() {
		if v != 3.5 {
			t.Fatalf("Full value = %v", v)
		}
	}
}

func TestCopyFromVolumeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom with mismatched volume must panic")
		}
	}()
	New(2, 2).CopyFrom(New(3))
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of bounds must panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestAtWrongArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At with wrong arity must panic")
		}
	}()
	New(2, 2).At(1)
}

func TestStringTruncatesLargeTensors(t *testing.T) {
	small := New(3)
	if s := small.String(); !strings.Contains(s, "Tensor[3]") {
		t.Errorf("String = %q", s)
	}
	big := New(100)
	if s := big.String(); !strings.Contains(s, "100 elems") {
		t.Errorf("big String should note element count, got %q", s)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length must panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul inner mismatch must panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestFillAndZero(t *testing.T) {
	x := Full(7, 4)
	x.Fill(2)
	if x.Sum() != 8 {
		t.Errorf("Fill sum = %v", x.Sum())
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Errorf("Zero sum = %v", x.Sum())
	}
}

func TestValidRange(t *testing.T) {
	tests := []struct {
		name              string
		k, pad, stride, n int
		out               int
		wantLo, wantHi    int
	}{
		{"no-pad-stride1", 0, 0, 1, 5, 3, 0, 2},
		{"pad1-k0", 0, 1, 1, 5, 5, 1, 4},
		{"pad1-k2", 2, 1, 1, 5, 5, 0, 3},
		{"stride2", 0, 1, 2, 5, 3, 1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lo, hi := validRange(tt.k, tt.pad, tt.stride, tt.n, tt.out)
			if lo != tt.wantLo || hi != tt.wantHi {
				t.Errorf("validRange = [%d, %d], want [%d, %d]", lo, hi, tt.wantLo, tt.wantHi)
			}
		})
	}
}

func TestDivFloorCeil(t *testing.T) {
	if divFloor(-1, 2) != -1 || divFloor(1, 2) != 0 || divFloor(-4, 2) != -2 {
		t.Error("divFloor wrong on negatives")
	}
	if divCeil(-1, 2) != 0 || divCeil(1, 2) != 1 || divCeil(4, 2) != 2 {
		t.Error("divCeil wrong")
	}
}
