package tensor

import (
	"math/rand"
	"testing"
)

// benchMatMul times C = A × B for square n×n operands at the given storage
// width. Run with -benchmem: the kernel itself must not allocate beyond the
// output tensor. The F32 variants are the float32 compute path's headline
// numbers (BENCH_kernels.json tracks both widths): same FLOP count, half
// the bytes moved per operand.
func benchMatMul(b *testing.B, dt DType, n int) {
	rng := rand.New(rand.NewSource(1))
	a := NewOf(dt, n, n)
	a.RandNormal(rng, 0, 1)
	bb := NewOf(dt, n, n)
	bb.RandNormal(rng, 0, 1)
	c := NewOf(dt, n, n)
	b.SetBytes(int64(dt.Bytes() * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, a, bb)
	}
}

func BenchmarkMatMul64(b *testing.B)     { benchMatMul(b, Float64, 64) }
func BenchmarkMatMul256(b *testing.B)    { benchMatMul(b, Float64, 256) }
func BenchmarkMatMul512(b *testing.B)    { benchMatMul(b, Float64, 512) }
func BenchmarkMatMul64F32(b *testing.B)  { benchMatMul(b, Float32, 64) }
func BenchmarkMatMul256F32(b *testing.B) { benchMatMul(b, Float32, 256) }
func BenchmarkMatMul512F32(b *testing.B) { benchMatMul(b, Float32, 512) }

func benchMatMulTrans(b *testing.B, dt DType, n int, f func(a, b *Tensor) *Tensor) {
	rng := rand.New(rand.NewSource(1))
	a := NewOf(dt, n, n)
	a.RandNormal(rng, 0, 1)
	bb := NewOf(dt, n, n)
	bb.RandNormal(rng, 0, 1)
	b.SetBytes(int64(dt.Bytes() * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, bb)
	}
}

func BenchmarkMatMulTransA256(b *testing.B)    { benchMatMulTrans(b, Float64, 256, MatMulTransA) }
func BenchmarkMatMulTransB256(b *testing.B)    { benchMatMulTrans(b, Float64, 256, MatMulTransB) }
func BenchmarkMatMulTransA256F32(b *testing.B) { benchMatMulTrans(b, Float32, 256, MatMulTransA) }
func BenchmarkMatMulTransB256F32(b *testing.B) { benchMatMulTrans(b, Float32, 256, MatMulTransB) }

// benchIm2Col unrolls a CIFAR-like batch: 8×16×16×16 NCHW input with a
// 3×3/pad-1 kernel, the geometry the conv layers hit hardest.
func benchIm2Col(b *testing.B, dt DType) {
	rng := rand.New(rand.NewSource(1))
	x := NewOf(dt, 8, 16, 16, 16)
	x.RandNormal(rng, 0, 1)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols := Im2Col(x, p)
		_ = cols
	}
}

func BenchmarkIm2Col(b *testing.B)    { benchIm2Col(b, Float64) }
func BenchmarkIm2ColF32(b *testing.B) { benchIm2Col(b, Float32) }

// benchCol2Im times the adjoint on the same geometry.
func benchCol2Im(b *testing.B, dt DType) {
	rng := rand.New(rand.NewSource(1))
	x := NewOf(dt, 8, 16, 16, 16)
	x.RandNormal(rng, 0, 1)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := Im2Col(x, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Col2Im(cols, 8, 16, 16, 16, p)
		_ = out
	}
}

func BenchmarkCol2Im(b *testing.B)    { benchCol2Im(b, Float64) }
func BenchmarkCol2ImF32(b *testing.B) { benchCol2Im(b, Float32) }
