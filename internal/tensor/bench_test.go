package tensor

import (
	"math/rand"
	"testing"
)

// benchMatMul times C = A × B for square n×n operands. Run with -benchmem:
// the kernel itself must not allocate beyond the output tensor.
func benchMatMul(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	a := New(n, n)
	a.RandNormal(rng, 0, 1)
	bb := New(n, n)
	bb.RandNormal(rng, 0, 1)
	c := New(n, n)
	b.SetBytes(int64(8 * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, a, bb)
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMul(b, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMatMul(b, 256) }
func BenchmarkMatMul512(b *testing.B) { benchMatMul(b, 512) }

func benchMatMulTrans(b *testing.B, n int, f func(a, b *Tensor) *Tensor) {
	rng := rand.New(rand.NewSource(1))
	a := New(n, n)
	a.RandNormal(rng, 0, 1)
	bb := New(n, n)
	bb.RandNormal(rng, 0, 1)
	b.SetBytes(int64(8 * n * n * 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(a, bb)
	}
}

func BenchmarkMatMulTransA256(b *testing.B) { benchMatMulTrans(b, 256, MatMulTransA) }
func BenchmarkMatMulTransB256(b *testing.B) { benchMatMulTrans(b, 256, MatMulTransB) }

// BenchmarkIm2Col unrolls a CIFAR-like batch: 8×16×16×16 NCHW input with a
// 3×3/pad-1 kernel, the geometry the conv layers hit hardest.
func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(8, 16, 16, 16)
	x.RandNormal(rng, 0, 1)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cols := Im2Col(x, p)
		_ = cols
	}
}

// BenchmarkCol2Im times the adjoint on the same geometry.
func BenchmarkCol2Im(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(8, 16, 16, 16)
	x.RandNormal(rng, 0, 1)
	p := ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := Im2Col(x, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Col2Im(cols, 8, 16, 16, 16, p)
		_ = out
	}
}
