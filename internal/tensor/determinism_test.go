package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fedsu/internal/par"
)

// fillRand populates t with uniform values in [-1, 1).
func fillRand(t *Tensor, rng *rand.Rand) {
	d := t.Data()
	for i := range d {
		d[i] = rng.Float64()*2 - 1
	}
}

// sameBits fails the test unless a and b are bitwise-identical float slices.
func sameBits(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: element %d differs bitwise: %x vs %x (%g vs %g)",
				name, i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
		}
	}
}

// TestParallelKernelsBitDeterministic checks the tentpole guarantee: every
// parallel kernel produces output bitwise identical to its serial execution,
// for random shapes and multiple worker counts. The parallel cutoff is
// forced to zero so even tiny problems route through the chunked code path.
func TestParallelKernelsBitDeterministic(t *testing.T) {
	prevCut := SetParallelCutoff(0)
	defer SetParallelCutoff(prevCut)

	rng := rand.New(rand.NewSource(42))
	shapes := make([][3]int, 0, 12)
	// Edge geometries around the register-tile (4) and panel boundaries,
	// plus random rectangles.
	shapes = append(shapes, [3]int{1, 1, 1}, [3]int{4, 128, 4}, [3]int{5, 129, 7}, [3]int{64, 64, 64})
	for i := 0; i < 8; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(70), 1 + rng.Intn(200), 1 + rng.Intn(70)})
	}

	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		b := New(k, n)
		at := New(k, m) // for MatMulTransA
		bt := New(n, k) // for MatMulTransB
		fillRand(a, rng)
		fillRand(b, rng)
		fillRand(at, rng)
		fillRand(bt, rng)
		acc0 := New(m, n)
		fillRand(acc0, rng)

		type out struct{ mm, ta, tb, ac []float64 }
		run := func(workers int) out {
			prev := par.SetWorkers(workers)
			defer par.SetWorkers(prev)
			mm := MatMul(a, b)
			ta := MatMulTransA(at, b)
			tb := MatMulTransB(a, bt)
			ac := acc0.Clone()
			MatMulAcc(ac, a, b)
			return out{mm.Data(), ta.Data(), tb.Data(), ac.Data()}
		}

		serial := run(1)
		for _, w := range []int{4, 7} {
			got := run(w)
			tag := fmt.Sprintf("m=%d k=%d n=%d workers=%d", m, k, n, w)
			sameBits(t, "MatMul "+tag, serial.mm, got.mm)
			sameBits(t, "MatMulTransA "+tag, serial.ta, got.ta)
			sameBits(t, "MatMulTransB "+tag, serial.tb, got.tb)
			sameBits(t, "MatMulAcc "+tag, serial.ac, got.ac)
		}
	}
}

// TestParallelConvLoweringBitDeterministic covers Im2Col/Col2Im the same
// way: serial and parallel executions must agree bitwise.
func TestParallelConvLoweringBitDeterministic(t *testing.T) {
	prevCut := SetParallelCutoff(0)
	defer SetParallelCutoff(prevCut)

	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		n, c, h, w int
		p          ConvParams
	}{
		{2, 3, 9, 9, ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
		{1, 1, 5, 7, ConvParams{KernelH: 2, KernelW: 4, StrideH: 2, StrideW: 1}},
		{3, 4, 8, 8, ConvParams{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
	}
	for ci, tc := range cases {
		x := New(tc.n, tc.c, tc.h, tc.w)
		fillRand(x, rng)
		oh, ow := tc.p.OutSize(tc.h, tc.w)
		cols0 := New(tc.c*tc.p.KernelH*tc.p.KernelW, tc.n*oh*ow)
		fillRand(cols0, rng)

		run := func(workers int) (im, col []float64) {
			prev := par.SetWorkers(workers)
			defer par.SetWorkers(prev)
			return Im2Col(x, tc.p).Data(),
				Col2Im(cols0, tc.n, tc.c, tc.h, tc.w, tc.p).Data()
		}
		serialIm, serialCol := run(1)
		for _, w := range []int{4, 7} {
			im, col := run(w)
			tag := fmt.Sprintf("case=%d workers=%d", ci, w)
			sameBits(t, "Im2Col "+tag, serialIm, im)
			sameBits(t, "Col2Im "+tag, serialCol, col)
		}
	}
}

// TestSerialFallbackMatchesParallelPath confirms that flipping only the
// cutoff (serial fast path vs chunked parallel path at the same worker
// count) does not change a single bit — the guarantee that lets the cutoff
// be tuned freely.
func TestSerialFallbackMatchesParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := New(33, 65)
	b := New(65, 17)
	fillRand(a, rng)
	fillRand(b, rng)

	prevW := par.SetWorkers(4)
	defer par.SetWorkers(prevW)
	prevCut := SetParallelCutoff(1 << 62) // force serial fast path
	serial := MatMul(a, b)
	SetParallelCutoff(0) // force chunked path
	parallel := MatMul(a, b)
	SetParallelCutoff(prevCut)

	sameBits(t, "cutoff serial-vs-parallel", serial.Data(), parallel.Data())
}
