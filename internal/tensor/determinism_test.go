package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fedsu/internal/par"
)

// dtypes is the precision grid every determinism test runs over: the
// serial-vs-parallel bit-identity contract holds per element width, not
// just for the historical float64 path.
var dtypes = []DType{Float64, Float32}

// fillRand populates t with uniform values in [-1, 1), drawn in float64 and
// rounded to t's dtype (the same stream-preserving convention the real
// initializers use).
func fillRand(t *Tensor, rng *rand.Rand) {
	buf := make([]float64, t.Len())
	for i := range buf {
		buf[i] = rng.Float64()*2 - 1
	}
	t.CopyFromF64(buf)
}

// sameBits fails the test unless a and b are bitwise-identical float slices.
// Tensors are compared through CopyToF64: the float32→float64 widening is
// exact and injective, so bit-equal widened values ⇔ bit-equal storage.
func sameBits(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d != %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: element %d differs bitwise: %x vs %x (%g vs %g)",
				name, i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
		}
	}
}

// f64Of snapshots a tensor's elements as float64 for bit comparison.
func f64Of(x *Tensor) []float64 {
	out := make([]float64, x.Len())
	x.CopyToF64(out)
	return out
}

// TestParallelKernelsBitDeterministic checks the tentpole guarantee: every
// parallel kernel produces output bitwise identical to its serial execution,
// for random shapes, multiple worker counts, and both element widths. The
// parallel cutoff is forced to zero so even tiny problems route through the
// chunked code path.
func TestParallelKernelsBitDeterministic(t *testing.T) {
	prevCut := SetParallelCutoff(0)
	defer SetParallelCutoff(prevCut)

	for _, dt := range dtypes {
		t.Run(dt.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			shapes := make([][3]int, 0, 12)
			// Edge geometries around the register-tile (4) and panel boundaries,
			// plus random rectangles.
			shapes = append(shapes, [3]int{1, 1, 1}, [3]int{4, 128, 4}, [3]int{5, 129, 7}, [3]int{64, 64, 64})
			for i := 0; i < 8; i++ {
				shapes = append(shapes, [3]int{1 + rng.Intn(70), 1 + rng.Intn(200), 1 + rng.Intn(70)})
			}

			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				a := NewOf(dt, m, k)
				b := NewOf(dt, k, n)
				at := NewOf(dt, k, m) // for MatMulTransA
				bt := NewOf(dt, n, k) // for MatMulTransB
				fillRand(a, rng)
				fillRand(b, rng)
				fillRand(at, rng)
				fillRand(bt, rng)
				acc0 := NewOf(dt, m, n)
				fillRand(acc0, rng)

				type out struct{ mm, ta, tb, ac []float64 }
				run := func(workers int) out {
					prev := par.SetWorkers(workers)
					defer par.SetWorkers(prev)
					mm := MatMul(a, b)
					ta := MatMulTransA(at, b)
					tb := MatMulTransB(a, bt)
					ac := acc0.Clone()
					MatMulAcc(ac, a, b)
					return out{f64Of(mm), f64Of(ta), f64Of(tb), f64Of(ac)}
				}

				serial := run(1)
				for _, w := range []int{4, 7} {
					got := run(w)
					tag := fmt.Sprintf("m=%d k=%d n=%d workers=%d", m, k, n, w)
					sameBits(t, "MatMul "+tag, serial.mm, got.mm)
					sameBits(t, "MatMulTransA "+tag, serial.ta, got.ta)
					sameBits(t, "MatMulTransB "+tag, serial.tb, got.tb)
					sameBits(t, "MatMulAcc "+tag, serial.ac, got.ac)
				}
			}
		})
	}
}

// TestParallelConvLoweringBitDeterministic covers Im2Col/Col2Im the same
// way: serial and parallel executions must agree bitwise at both widths.
func TestParallelConvLoweringBitDeterministic(t *testing.T) {
	prevCut := SetParallelCutoff(0)
	defer SetParallelCutoff(prevCut)

	for _, dt := range dtypes {
		t.Run(dt.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			cases := []struct {
				n, c, h, w int
				p          ConvParams
			}{
				{2, 3, 9, 9, ConvParams{KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}},
				{1, 1, 5, 7, ConvParams{KernelH: 2, KernelW: 4, StrideH: 2, StrideW: 1}},
				{3, 4, 8, 8, ConvParams{KernelH: 3, KernelW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
			}
			for ci, tc := range cases {
				x := NewOf(dt, tc.n, tc.c, tc.h, tc.w)
				fillRand(x, rng)
				oh, ow := tc.p.OutSize(tc.h, tc.w)
				cols0 := NewOf(dt, tc.c*tc.p.KernelH*tc.p.KernelW, tc.n*oh*ow)
				fillRand(cols0, rng)

				run := func(workers int) (im, col []float64) {
					prev := par.SetWorkers(workers)
					defer par.SetWorkers(prev)
					return f64Of(Im2Col(x, tc.p)),
						f64Of(Col2Im(cols0, tc.n, tc.c, tc.h, tc.w, tc.p))
				}
				serialIm, serialCol := run(1)
				for _, w := range []int{4, 7} {
					im, col := run(w)
					tag := fmt.Sprintf("case=%d workers=%d", ci, w)
					sameBits(t, "Im2Col "+tag, serialIm, im)
					sameBits(t, "Col2Im "+tag, serialCol, col)
				}
			}
		})
	}
}

// TestSerialFallbackMatchesParallelPath confirms that flipping only the
// cutoff (serial fast path vs chunked parallel path at the same worker
// count) does not change a single bit — the guarantee that lets the cutoff
// be tuned freely — at either width.
func TestSerialFallbackMatchesParallelPath(t *testing.T) {
	for _, dt := range dtypes {
		t.Run(dt.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			a := NewOf(dt, 33, 65)
			b := NewOf(dt, 65, 17)
			fillRand(a, rng)
			fillRand(b, rng)

			prevW := par.SetWorkers(4)
			defer par.SetWorkers(prevW)
			prevCut := SetParallelCutoff(1 << 62) // force serial fast path
			serial := MatMul(a, b)
			SetParallelCutoff(0) // force chunked path
			parallel := MatMul(a, b)
			SetParallelCutoff(prevCut)

			sameBits(t, "cutoff serial-vs-parallel", f64Of(serial), f64Of(parallel))
		})
	}
}
