package ckpt

import (
	"encoding/gob"
	"io"
)

// encodeRaw serializes a checkpoint without normalizing the version; it
// exists so tests can construct invalid checkpoints.
func encodeRaw(w io.Writer, c *Checkpoint) error {
	return gob.NewEncoder(w).Encode(c)
}
