// Package ckpt persists federated training state: the global model vector,
// the round counter, and — when FedSU is active — the manager's
// predictability-mask and no-checking state, so a client or a whole
// emulated run can resume after a restart exactly where it stopped. The
// on-disk format is gob with a versioned header.
package ckpt

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"fedsu/internal/core"
)

// FormatVersion identifies the checkpoint layout; bump on incompatible
// changes.
const FormatVersion = 1

// Checkpoint is the persisted training state.
type Checkpoint struct {
	// Version is the format version (FormatVersion at write time).
	Version int
	// Workload and Scheme document what produced the checkpoint; Load
	// verifies them when expectations are provided.
	Workload, Scheme string
	// Round is the next round index to run.
	Round int
	// Model is the flat global parameter vector.
	Model []float64
	// Manager is the FedSU state (nil for baseline strategies).
	Manager *core.State
}

// Write serializes the checkpoint to w.
func Write(w io.Writer, c *Checkpoint) error {
	c.Version = FormatVersion
	if err := gob.NewEncoder(w).Encode(c); err != nil {
		return fmt.Errorf("ckpt: encode: %w", err)
	}
	return nil
}

// Read deserializes a checkpoint from r and validates the version.
func Read(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("ckpt: decode: %w", err)
	}
	if c.Version != FormatVersion {
		return nil, fmt.Errorf("ckpt: format version %d, want %d", c.Version, FormatVersion)
	}
	return &c, nil
}

// Save writes the checkpoint atomically: to a temp file in the same
// directory, then rename, so a crash mid-write never corrupts an existing
// checkpoint.
func Save(path string, c *Checkpoint) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	return nil
}

// Load reads a checkpoint from disk. When wantWorkload or wantScheme are
// non-empty they are verified against the stored metadata.
func Load(path, wantWorkload, wantScheme string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	c, err := Read(f)
	if err != nil {
		return nil, err
	}
	if wantWorkload != "" && c.Workload != wantWorkload {
		return nil, fmt.Errorf("ckpt: checkpoint is for workload %q, want %q", c.Workload, wantWorkload)
	}
	if wantScheme != "" && c.Scheme != wantScheme {
		return nil, fmt.Errorf("ckpt: checkpoint is for scheme %q, want %q", c.Scheme, wantScheme)
	}
	return c, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
