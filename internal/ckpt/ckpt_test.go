package ckpt

import (
	"bytes"
	"path/filepath"
	"testing"

	"fedsu/internal/core"
)

type nilAgg struct{}

func (nilAgg) AggregateModel(_, _ int, v []float64) ([]float64, error) { return v, nil }
func (nilAgg) AggregateError(_, _ int, v []float64) ([]float64, error) { return v, nil }

func sampleCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	mgr, err := core.NewManager(0, 3, nilAgg{}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 6; k++ {
		if _, _, err := mgr.Sync(k, []float64{float64(k), 1, -2}, true); err != nil {
			t.Fatal(err)
		}
	}
	return &Checkpoint{
		Workload: "cnn",
		Scheme:   "fedsu",
		Round:    6,
		Model:    []float64{5, 1, -2},
		Manager:  mgr.Snapshot(),
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := sampleCheckpoint(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 6 || got.Workload != "cnn" || got.Scheme != "fedsu" {
		t.Errorf("metadata = %+v", got)
	}
	for i, v := range c.Model {
		if got.Model[i] != v {
			t.Errorf("model[%d] = %v, want %v", i, got.Model[i], v)
		}
	}
	if got.Manager == nil || got.Manager.Size != 3 {
		t.Error("manager state lost")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	c := sampleCheckpoint(t)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a corrupted version.
	bad, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bad.Version = 99
	var buf2 bytes.Buffer
	// Write resets the version; encode manually to preserve the bad one.
	buf2.Reset()
	if err := encodeRaw(&buf2, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf2); err == nil {
		t.Error("bad version must be rejected")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	c := sampleCheckpoint(t)
	if err := Save(path, c); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "cnn", "fedsu")
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != c.Round {
		t.Errorf("round = %d, want %d", got.Round, c.Round)
	}
	if _, err := Load(path, "resnet18", ""); err == nil {
		t.Error("workload mismatch must fail")
	}
	if _, err := Load(path, "", "fedavg"); err == nil {
		t.Error("scheme mismatch must fail")
	}
	if _, err := Load(filepath.Join(dir, "missing.ckpt"), "", ""); err == nil {
		t.Error("missing file must fail")
	}
}

func TestSaveAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	a := sampleCheckpoint(t)
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	b := sampleCheckpoint(t)
	b.Round = 42
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 42 {
		t.Errorf("round = %d, want 42 after overwrite", got.Round)
	}
}
