// Package stats provides the light statistical machinery the FedSU
// reproduction needs: exponential moving averages (the smoothing in the
// second-order oscillation ratio), streaming mean/variance, CDFs for the
// paper's distribution figures, and the normalized-difference metric of
// Fig. 2.
package stats

import (
	"math"
	"sort"
)

// EMA is an exponential moving average ⟨v⟩θ = θ·⟨v⟩θ + (1−θ)·v, matching the
// paper's Eq. 2 smoothing operator. The first observation initializes the
// average directly so early values are not biased toward zero.
type EMA struct {
	theta float64
	value float64
	seen  bool
}

// NewEMA constructs an EMA with decay factor theta ∈ [0, 1); values of
// theta close to 1 approximate a long observation window.
func NewEMA(theta float64) *EMA { return &EMA{theta: theta} }

// Update folds v into the average and returns the new value.
func (e *EMA) Update(v float64) float64 {
	if !e.seen {
		e.value = v
		e.seen = true
		return v
	}
	e.value = e.theta*e.value + (1-e.theta)*v
	return e.value
}

// Value returns the current average (zero before any update).
func (e *EMA) Value() float64 { return e.value }

// Seen reports whether at least one value has been folded in.
func (e *EMA) Seen() bool { return e.seen }

// Reset clears the average to its initial state.
func (e *EMA) Reset() { e.value, e.seen = 0, false }

// Welford accumulates a streaming mean and variance using Welford's
// numerically-stable recurrence.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the summary.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (zero with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// CDF summarizes a sample as an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from the given sample; the input slice is not
// modified.
func NewCDF(sample []float64) *CDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th sample quantile for q ∈ [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)-1))
	return c.sorted[i]
}

// Points renders the CDF as n evenly-spaced (value, fraction) pairs for
// plotting, matching the paper's CDF figures.
func (c *CDF) Points(n int) (xs, ys []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 1
		}
		xs[i] = c.Quantile(q)
		ys[i] = q
	}
	return xs, ys
}

// NormalizedDifference computes ‖δ₂ − δ₁‖ / ‖δ₁‖, the cross-round update
// similarity metric of Sec. III-A (following CMFL's definition). It returns
// +Inf when δ₁ is the zero vector and δ₂ is not.
func NormalizedDifference(d1, d2 []float64) float64 {
	if len(d1) != len(d2) {
		panic("stats: NormalizedDifference length mismatch")
	}
	var diff, base float64
	for i := range d1 {
		d := d2[i] - d1[i]
		diff += d * d
		base += d1[i] * d1[i]
	}
	if base == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(diff) / math.Sqrt(base)
}

// Mean returns the arithmetic mean of xs (zero for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (p ∈ [0,100]) of xs by nearest-rank
// on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	i := int(p / 100 * float64(len(s)-1))
	return s[i]
}
