package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEMAFirstValueInitializes(t *testing.T) {
	e := NewEMA(0.9)
	if e.Seen() {
		t.Fatal("fresh EMA must report not seen")
	}
	if got := e.Update(5); got != 5 {
		t.Errorf("first update = %v, want 5", got)
	}
	if !e.Seen() {
		t.Error("EMA must report seen after update")
	}
}

func TestEMARecurrence(t *testing.T) {
	e := NewEMA(0.9)
	e.Update(10)
	got := e.Update(0)
	if math.Abs(got-9) > 1e-12 {
		t.Errorf("second update = %v, want 9", got)
	}
	got = e.Update(9)
	if math.Abs(got-9) > 1e-12 {
		t.Errorf("third update = %v, want 9", got)
	}
}

func TestEMAReset(t *testing.T) {
	e := NewEMA(0.5)
	e.Update(3)
	e.Reset()
	if e.Seen() || e.Value() != 0 {
		t.Error("Reset must clear state")
	}
}

// Property: the EMA of a constant sequence is that constant.
func TestEMAConstantFixedPoint(t *testing.T) {
	f := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		e := NewEMA(0.9)
		for i := 0; i <= int(n%50); i++ {
			e.Update(v)
		}
		return math.Abs(e.Value()-v) <= 1e-9*(1+math.Abs(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the EMA stays within the min/max envelope of its inputs.
func TestEMABoundedByInputs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEMA(0.8)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 40; i++ {
			v := rng.NormFloat64()
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			e.Update(v)
		}
		return e.Value() >= lo-1e-12 && e.Value() <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWelford(t *testing.T) {
	w := &Welford{}
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		w.Add(v)
	}
	if w.N() != 8 {
		t.Errorf("N = %d, want 8", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.Std()-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", w.Std())
	}
}

func TestWelfordEmpty(t *testing.T) {
	w := &Welford{}
	if w.Mean() != 0 || w.Var() != 0 {
		t.Error("empty Welford must report zeros")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
}

// Property: CDF.At is monotonically non-decreasing.
func TestCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sample := make([]float64, 30)
		for i := range sample {
			sample[i] = rng.NormFloat64()
		}
		c := NewCDF(sample)
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.1 {
			v := c.At(x)
			if v < prev {
				return false
			}
			prev = v
		}
		return prev <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3})
	xs, ys := c.Points(3)
	if len(xs) != 3 || len(ys) != 3 {
		t.Fatalf("Points(3) lengths = %d, %d", len(xs), len(ys))
	}
	if xs[0] != 1 || xs[2] != 5 {
		t.Errorf("Points x = %v, want [1 _ 5]", xs)
	}
	if ys[0] != 0 || ys[2] != 1 {
		t.Errorf("Points y = %v, want [0 _ 1]", ys)
	}
}

func TestNormalizedDifference(t *testing.T) {
	tests := []struct {
		name   string
		d1, d2 []float64
		want   float64
	}{
		{"identical", []float64{1, 2}, []float64{1, 2}, 0},
		{"unit-shift", []float64{3, 4}, []float64{3, 5}, 1.0 / 5},
		{"zero-base-zero-diff", []float64{0, 0}, []float64{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NormalizedDifference(tt.d1, tt.d2); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("NormalizedDifference = %v, want %v", got, tt.want)
			}
		})
	}
	if got := NormalizedDifference([]float64{0}, []float64{1}); !math.IsInf(got, 1) {
		t.Errorf("zero base with nonzero diff = %v, want +Inf", got)
	}
}

func TestMeanAndPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("P100 = %v, want 4", got)
	}
	if got := Percentile(xs, 50); got != 2 {
		t.Errorf("P50 = %v, want 2 (nearest rank)", got)
	}
}
