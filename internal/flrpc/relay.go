package flrpc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fedsu/internal/sparse"
	"fedsu/internal/trace"
)

// Relay is a leaf aggregator of the distributed tree: an RPC server to
// its block of clients (the standard FedSU service — flrpc.Client works
// against it unchanged) and an upstream client of the root coordinator.
// It folds its block's submissions locally in the canonical pairwise
// order and forwards ONE partial-sum message per collective upstream
// (SubmitPartial), then serves the root's published global back to its
// own waiters. The upstream leg reuses the full client fault-tolerance
// stack — retry with exponential backoff + jitter, transparent
// reconnect-and-rejoin, heartbeats — so each tier gets the same
// eviction/liveness treatment as a flat session.
//
// Because the relay's block is an aligned rank block of the root roster
// and both sides run the same canonical fold, a tree of relays publishes
// the same global, to the bit, as one flat coordinator folding every
// client (TestRelayTreeBitIdentity). Bit-identity assumes the relay's
// session is fully joined, so local member ranks coincide with the
// root-roster ranks of the block.
type Relay struct {
	coord *Coordinator
	up    *Client

	mu          sync.Mutex
	lastTraffic int64
}

// RelayConfig assembles a leaf aggregator.
type RelayConfig struct {
	// Upstream is the root coordinator's address.
	Upstream string
	// BlockSize is how many clients this relay serves; the root reserves
	// a contiguous aligned id block of that size (it must not exceed the
	// root's fanout).
	BlockSize int
	// Deadline / HeartbeatGrace bound the relay's own collective barriers
	// (see Config); zero keeps blocking barriers.
	Deadline       time.Duration
	HeartbeatGrace time.Duration
	// Dial tunes the upstream leg's fault tolerance (retries, backoff,
	// heartbeat interval). Dial.BlockSize is set by NewRelay.
	Dial DialConfig
}

// NewRelay joins the root coordinator as a block reservation and builds
// the member-facing coordinator. Serve it with Listen(addr,
// relay.Coordinator()).
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("flrpc: relay block size = %d", cfg.BlockSize)
	}
	d := cfg.Dial
	d.BlockSize = cfg.BlockSize
	if d.Name == "" {
		d.Name = "relay"
	}
	up, err := DialWith(cfg.Upstream, d)
	if err != nil {
		return nil, fmt.Errorf("flrpc: relay upstream: %w", err)
	}
	fan := 2
	for fan < cfg.BlockSize {
		fan <<= 1
	}
	coord, err := NewCoordinatorWith(Config{
		NumClients:     cfg.BlockSize,
		ModelSize:      up.ModelSize(),
		Deadline:       cfg.Deadline,
		HeartbeatGrace: cfg.HeartbeatGrace,
		Fanout:         fan,
	})
	if err != nil {
		up.Close()
		return nil, err
	}
	r := &Relay{coord: coord, up: up}
	// The local tree covers one aligned block of the root roster: its
	// root forwards the raw partial upstream instead of scaling a mean.
	coord.tree.SetUpstream(up.ClientID(), r.forward)
	return r, nil
}

// forward ships the block's completed partial upstream and returns the
// round's global; it runs on the completing submitter's RPC handler
// goroutine, outside every coordinator lock.
func (r *Relay) forward(round int, kind string, rankLo int, sum []float64, weight int) ([]float64, error) {
	// Traffic: the encoded upload bytes this relay ingested since its
	// last forward, carried upward for the root's RoundStats accounting.
	cur := r.coord.Counters().Get("agg_rx_bytes")
	r.mu.Lock()
	delta := cur - r.lastTraffic
	r.lastTraffic = cur
	r.mu.Unlock()
	p := sparse.Partial{RankLo: rankLo, Weight: weight, Traffic: delta, Sum: sum}
	return r.up.SubmitPartial(context.Background(), round, kind, p)
}

// Coordinator returns the member-facing service; register it with
// Listen/Serve.
func (r *Relay) Coordinator() *Coordinator { return r.coord }

// BaseID returns the root-assigned block base id (== the block's first
// roster rank).
func (r *Relay) BaseID() int { return r.up.ClientID() }

// ModelSize returns the session's parameter-vector length, adopted from
// the root.
func (r *Relay) ModelSize() int { return r.up.ModelSize() }

// UpstreamCounters exposes the upstream leg's operational counters.
func (r *Relay) UpstreamCounters() *trace.Counters { return r.up.Counters() }

// Close releases the upstream connection; the member-facing listener is
// owned by whoever called Listen.
func (r *Relay) Close() error { return r.up.Close() }
