package flrpc

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"fedsu/internal/sparse"
	"fedsu/internal/sparse/codec"
	"fedsu/internal/trace"
)

// DialConfig tunes the client's fault-tolerance behaviour. The zero value
// of every field selects a sensible default.
type DialConfig struct {
	// Name is a human-readable client label (diagnostics only).
	Name string
	// MaxRetries is how many times a collective call is retried after a
	// transport failure (reconnecting and rejoining in between) before the
	// error is surfaced. Default 4. Negative disables retries.
	MaxRetries int
	// RetryBase is the first backoff interval; it doubles per retry (with
	// jitter) up to RetryMax. Defaults 100ms and 3s.
	RetryBase, RetryMax time.Duration
	// DialTimeout bounds each TCP connect. Default 5s.
	DialTimeout time.Duration
	// Heartbeat, when positive, sends a Ping on that interval so the
	// coordinator can tell a slow client from a dead one. Zero disables
	// heartbeats.
	Heartbeat time.Duration
	// BlockSize, when positive, joins as a leaf-aggregator relay: the
	// coordinator reserves a contiguous aligned block of that many ids
	// and ClientID() is the block's base. Requires a tree-mode
	// coordinator; collectives are then submitted with SubmitPartial
	// rather than per-member Aggregate calls.
	BlockSize int
	// Compress selects the compression chain for uploads, as a codec chain
	// spec ("topk,q4,rans"); it must match the session's negotiated chain
	// (the coordinator decodes any chain payload, but a run only
	// reproduces the in-process engine when every party encodes with the
	// same chain and seed). Empty keeps the default vector codec. Relay
	// partials (SubmitPartial) are never chain-encoded.
	Compress string
	// CompressSeed seeds the chain's stochastic stages; share it with the
	// coordinator's Config.CompressSeed.
	CompressSeed int64
}

func (c *DialConfig) fillDefaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 3 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
}

// Client is the client-side handle: a sparse.Aggregator backed by TCP,
// with retry + exponential backoff + jitter and transparent
// reconnect-and-rejoin on transport failures. It also implements
// sparse.ContextAggregator, so strategies can abort a blocked collective
// through context cancellation.
type Client struct {
	addr     string
	cfg      DialConfig
	counters *trace.Counters
	// chain is the parsed Compress spec (nil for the default wire).
	chain *codec.Chain

	mu      sync.Mutex
	rpc     *rpc.Client
	dialing chan struct{} // non-nil while a dial attempt is in flight; closed when it settles
	joined  bool
	closed  bool
	id      int
	size    int
	n       int

	hbStop chan struct{}
	hbDone chan struct{}
}

var (
	_ sparse.Aggregator        = (*Client)(nil)
	_ sparse.ContextAggregator = (*Client)(nil)
)

// Dial connects to a coordinator and joins the session with default
// fault-tolerance settings and no heartbeat.
func Dial(addr, name string) (*Client, error) {
	return DialWith(addr, DialConfig{Name: name})
}

// DialWith connects to a coordinator with explicit fault-tolerance
// settings. The initial dial and join fail fast (no retry): a wrong
// address or a full session should surface immediately.
func DialWith(addr string, cfg DialConfig) (*Client, error) {
	cfg.fillDefaults()
	c := &Client{addr: addr, cfg: cfg, counters: trace.NewCounters()}
	if cfg.Compress != "" {
		chain, err := codec.Parse(cfg.Compress, cfg.CompressSeed)
		if err != nil {
			return nil, fmt.Errorf("flrpc: %w", err)
		}
		if !chain.IsDefault() {
			c.chain = chain
		}
	}
	if _, err := c.ensureConn(); err != nil {
		return nil, err
	}
	if cfg.Heartbeat > 0 {
		c.hbStop = make(chan struct{})
		c.hbDone = make(chan struct{})
		go c.heartbeatLoop()
	}
	return c, nil
}

// ensureConn returns the live connection, dialing and (re)joining first if
// the previous one was lost. The dial and join handshake run with no lock
// held — Close and invalidate must never block behind network I/O for the
// full dial timeout — so concurrent callers coordinate through a
// single-flight channel: the first caller in dials while the rest wait for
// the attempt to settle, then re-check the installed connection.
func (c *Client) ensureConn() (*rpc.Client, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, fmt.Errorf("flrpc: client closed")
		}
		if c.rpc != nil {
			rc := c.rpc
			c.mu.Unlock()
			return rc, nil
		}
		if c.dialing != nil {
			settled := c.dialing
			c.mu.Unlock()
			<-settled
			continue
		}
		settled := make(chan struct{})
		c.dialing = settled
		joined, id := c.joined, c.id
		c.mu.Unlock()

		rc, reply, err := c.dialAndJoin(joined, id)

		c.mu.Lock()
		c.dialing = nil
		close(settled)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if c.closed {
			c.mu.Unlock()
			rc.Close()
			return nil, fmt.Errorf("flrpc: client closed")
		}
		c.rpc = rc
		c.id, c.size, c.n = reply.ClientID, reply.ModelSize, reply.NumClients
		c.joined = true
		c.mu.Unlock()
		return rc, nil
	}
}

// dialAndJoin performs one connection attempt — TCP dial, then the Join
// (or Rejoin) handshake — holding no locks. addr, cfg, and counters are
// immutable after construction, so they are safe to read here.
func (c *Client) dialAndJoin(joined bool, id int) (*rpc.Client, JoinReply, error) {
	var reply JoinReply
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, reply, fmt.Errorf("flrpc: dial %s: %w", c.addr, err)
	}
	rc := rpc.NewClient(conn)
	args := JoinArgs{Name: c.cfg.Name, BlockSize: c.cfg.BlockSize}
	if joined {
		args.Rejoin = true
		args.ClientID = id
		args.BlockSize = 0 // rejoin re-admits the already-reserved block base
		c.counters.Inc("reconnects")
	}
	if err := rc.Call(ServiceName+".Join", args, &reply); err != nil {
		rc.Close()
		return nil, reply, fmt.Errorf("flrpc: join: %w", err)
	}
	if joined && reply.ClientID != id {
		rc.Close()
		return nil, reply, fmt.Errorf("flrpc: rejoined as client %d, was %d", reply.ClientID, id)
	}
	return rc, reply, nil
}

// invalidate discards rc (closing it) if it is still the current
// connection, so the next call reconnects.
func (c *Client) invalidate(rc *rpc.Client) {
	c.mu.Lock()
	if c.rpc == rc {
		c.rpc = nil
	}
	c.mu.Unlock()
	rc.Close()
}

// do issues one RPC, honouring ctx cancellation while the call is in
// flight (the underlying connection keeps draining the reply).
func (c *Client) do(ctx context.Context, rc *rpc.Client, method string, args, reply any) error {
	call := rc.Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		return ctx.Err()
	case done := <-call.Done:
		return done.Error
	}
}

// heartbeatLoop pings the coordinator on the configured interval until
// Close, reconnecting through the shared ensureConn path on failure.
func (c *Client) heartbeatLoop() {
	defer close(c.hbDone)
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
			rc, err := c.ensureConn()
			if err != nil {
				c.counters.Inc("heartbeat_failures")
				continue
			}
			var reply PingReply
			if err := rc.Call(ServiceName+".Ping", PingArgs{ClientID: c.ClientID()}, &reply); err != nil {
				c.counters.Inc("heartbeat_failures")
				if _, app := err.(rpc.ServerError); !app {
					c.invalidate(rc)
				}
			}
		}
	}
}

// ClientID returns the coordinator-assigned id.
func (c *Client) ClientID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// NumClients returns the session size.
func (c *Client) NumClients() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// ModelSize returns the expected parameter-vector length.
func (c *Client) ModelSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Counters exposes the client's operational counters (retries,
// reconnects, heartbeat_failures, and agg_tx_bytes / agg_rx_bytes — the
// encoded payload bytes shipped and received, retransmissions not
// double-counted).
func (c *Client) Counters() *trace.Counters { return c.counters }

// Close releases the connection and stops the heartbeat.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	rc := c.rpc
	c.rpc = nil
	hbStop := c.hbStop
	c.mu.Unlock()
	if hbStop != nil {
		close(hbStop)
		<-c.hbDone
	}
	if rc != nil {
		return rc.Close()
	}
	return nil
}

// AggregateModel implements sparse.Aggregator over the wire.
func (c *Client) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return c.call(context.Background(), "model", clientID, round, values)
}

// AggregateError implements sparse.Aggregator over the wire.
func (c *Client) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return c.call(context.Background(), "error", clientID, round, values)
}

// AggregateModelCtx implements sparse.ContextAggregator.
func (c *Client) AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return c.call(ctx, "model", clientID, round, values)
}

// AggregateErrorCtx implements sparse.ContextAggregator.
func (c *Client) AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return c.call(ctx, "error", clientID, round, values)
}

// call submits to a collective, retrying transport failures with
// exponential backoff + jitter and transparent reconnect-and-rejoin.
// Application-level errors (eviction, unknown kind, length mismatch) are
// terminal: retrying them cannot succeed.
func (c *Client) call(ctx context.Context, kind string, clientID, round int, values []float64) ([]float64, error) {
	args := AggArgs{ClientID: clientID, Round: round, Kind: kind, Abstain: values == nil}
	if values != nil {
		// Encode into a pooled buffer — sized exactly by VectorPayloadSize
		// on the default wire, grown by the chain encoder otherwise.
		// net/rpc writes the request synchronously inside Go — by the time
		// any attempt returns (even via ctx), the bytes are on the wire — so
		// the buffer is recyclable when this call exits, retries included.
		if c.chain != nil {
			chainBuf := codec.GetBuf(64)
			defer codec.PutBuf(chainBuf)
			*chainBuf = c.chain.AppendEncode((*chainBuf)[:0], values)
			args.Payload = *chainBuf
		} else {
			wireBuf := sparse.GetWireBuf(sparse.VectorPayloadSize(values))
			defer sparse.PutWireBuf(wireBuf)
			*wireBuf = sparse.AppendVectorPayload(*wireBuf, values)
			args.Payload = *wireBuf
		}
		c.counters.Add("agg_tx_bytes", int64(len(args.Payload)))
	}
	reply, err := c.doAgg(ctx, ServiceName+".Aggregate", fmt.Sprintf("aggregate %s round %d", kind, round), args)
	if err != nil {
		return nil, err
	}
	// contribution() decodes the vector payload; reply.Nil is the source
	// of truth for "no contributors". The decode allocates a fresh slice
	// on purpose: the result is handed to strategy code that retains it
	// across the round.
	out, derr := reply.contribution(c.ModelSize())
	if derr != nil {
		return nil, fmt.Errorf("flrpc: aggregate %s round %d: %w", kind, round, derr)
	}
	return out, nil
}

// SubmitPartial ships an already-folded block partial to a tree-mode
// coordinator and returns the round's published global mean — the
// upstream half of a leaf-aggregator relay, with the same retry +
// backoff + reconnect treatment as Aggregate. The coordinator treats a
// resubmission after a reconnect idempotently, so a retried partial
// whose first copy landed is safe.
func (c *Client) SubmitPartial(ctx context.Context, round int, kind string, p sparse.Partial) ([]float64, error) {
	wireBuf := sparse.GetWireBuf(sparse.PartialPayloadSize(len(p.Sum)))
	defer sparse.PutWireBuf(wireBuf)
	*wireBuf = sparse.AppendPartialPayload(*wireBuf, p)
	args := PartialArgs{ClientID: c.ClientID(), Round: round, Kind: kind, Payload: *wireBuf}
	c.counters.Add("agg_tx_bytes", int64(len(args.Payload)))
	reply, err := c.doAgg(ctx, ServiceName+".SubmitPartial", fmt.Sprintf("partial %s round %d", kind, round), args)
	if err != nil {
		return nil, err
	}
	out, derr := reply.contribution(c.ModelSize())
	if derr != nil {
		return nil, fmt.Errorf("flrpc: partial %s round %d: %w", kind, round, derr)
	}
	return out, nil
}

// doAgg issues one blocking collective RPC with retry, exponential
// backoff + jitter, and transparent reconnect-and-rejoin on transport
// failures. Application-level errors (eviction, unknown kind, length
// mismatch) are terminal: retrying them cannot succeed. desc labels
// errors (e.g. "aggregate model round 3").
func (c *Client) doAgg(ctx context.Context, method, desc string, args any) (AggReply, error) {
	backoff := c.cfg.RetryBase
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.counters.Inc("retries")
			if err := sleepCtx(ctx, jitter(backoff)); err != nil {
				return AggReply{}, fmt.Errorf("flrpc: %s: %w", desc, err)
			}
			backoff *= 2
			if backoff > c.cfg.RetryMax {
				backoff = c.cfg.RetryMax
			}
		}
		rc, err := c.ensureConn()
		if err != nil {
			lastErr = err
			continue
		}
		var reply AggReply
		err = c.do(ctx, rc, method, args, &reply)
		if err == nil {
			c.counters.Add("agg_rx_bytes", int64(len(reply.Payload)))
			return reply, nil
		}
		if ctx.Err() != nil {
			return AggReply{}, fmt.Errorf("flrpc: %s: %w", desc, ctx.Err())
		}
		if se, ok := err.(rpc.ServerError); ok {
			// The designated recovery shim: net/rpc flattens server-side
			// errors to strings, so the typed eviction error can only be
			// recovered here, by matching fl.EvictedError's wire marker.
			//lint:allow errwrap -- net/rpc delivers errors as flattened strings
			if strings.Contains(se.Error(), evictedMarker) {
				return AggReply{}, fmt.Errorf("flrpc: %s: %w: %w", desc, se, ErrEvicted)
			}
			return AggReply{}, fmt.Errorf("flrpc: %s: %w", desc, se)
		}
		// Transport failure: drop the connection and retry; the rejoin on
		// reconnect plus the coordinator's idempotent resubmission makes
		// the retried call safe even if the first submission landed.
		lastErr = err
		c.invalidate(rc)
	}
	return AggReply{}, fmt.Errorf("flrpc: %s after %d retries: %w", desc, c.cfg.MaxRetries, lastErr)
}

// jitter spreads a backoff interval over [d/2, d) so a fleet knocked over
// by the same fault does not reconnect in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

// sleepCtx sleeps for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
