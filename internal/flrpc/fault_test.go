package flrpc

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func startCoordinatorWith(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	c, err := NewCoordinatorWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Listen("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return c, svc.Addr().String()
}

// A client killed mid-round must not wedge the session: the barrier closes
// at the deadline over the survivors, the dead client is evicted, its late
// submission is rejected with ErrEvicted, and training continues.
func TestDeadClientEvictedSessionContinues(t *testing.T) {
	coord, addr := startCoordinatorWith(t, Config{
		NumClients: 3, ModelSize: 1, Deadline: 150 * time.Millisecond,
	})
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	dead, err := Dial(addr, "dead")
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()

	// Round 0: the dead client never submits.
	var wg sync.WaitGroup
	var ra, rb []float64
	var ea, eb error
	start := time.Now()
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = a.AggregateModel(a.ClientID(), 0, []float64{3}) }()
	go func() { defer wg.Done(); rb, eb = b.AggregateModel(b.ClientID(), 0, []float64{6}) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("survivors errored: %v / %v", ea, eb)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("barrier took %v, deadline not enforced", el)
	}
	for _, r := range [][]float64{ra, rb} {
		if len(r) != 1 || r[0] != 4.5 {
			t.Errorf("survivor mean = %v, want [4.5]", r)
		}
	}
	if got := coord.Evicted(); len(got) != 1 || got[0] != dead.ClientID() {
		t.Errorf("Evicted() = %v, want [%d]", got, dead.ClientID())
	}

	// The straggler's late submission is rejected with the typed error.
	if _, err := dead.AggregateModel(dead.ClientID(), 0, []float64{99}); !errors.Is(err, ErrEvicted) {
		t.Errorf("late submission error = %v, want ErrEvicted", err)
	}

	// Round 1: the surviving pair keeps training.
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = a.AggregateModel(a.ClientID(), 1, []float64{1}) }()
	go func() { defer wg.Done(); rb, eb = b.AggregateModel(b.ClientID(), 1, []float64{3}) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("round 1 errored: %v / %v", ea, eb)
	}
	for _, r := range [][]float64{ra, rb} {
		if len(r) != 1 || r[0] != 2 {
			t.Errorf("round 1 mean = %v, want [2]", r)
		}
	}
}

// A client whose connection drops mid-Aggregate reconnects, rejoins by id,
// resubmits, and still receives the collective result — the coordinator
// treats the resubmission idempotently.
func TestReconnectMidAggregate(t *testing.T) {
	_, addr := startCoordinatorWith(t, Config{NumClients: 2, ModelSize: 1})
	a, err := DialWith(addr, DialConfig{Name: "a", RetryBase: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	var ra []float64
	var ea error
	wg.Add(1)
	go func() { defer wg.Done(); ra, ea = a.AggregateModel(a.ClientID(), 0, []float64{2}) }()

	// Let a's submission reach the barrier, then sever its connection while
	// the call is parked waiting for b.
	time.Sleep(100 * time.Millisecond)
	a.mu.Lock()
	rc := a.rpc
	a.mu.Unlock()
	rc.Close()

	rb, err := b.AggregateModel(b.ClientID(), 0, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ea != nil {
		t.Fatalf("reconnecting client errored: %v", ea)
	}
	for _, r := range [][]float64{ra, rb} {
		if len(r) != 1 || r[0] != 3 {
			t.Errorf("result = %v, want [3]", r)
		}
	}
	if a.Counters().Get("reconnects") == 0 {
		t.Error("expected at least one reconnect")
	}
	if a.Counters().Get("retries") == 0 {
		t.Error("expected at least one retry")
	}
}

// A session started below its -clients capacity barriers on the clients
// that actually joined, not on phantom ids that never connected.
func TestPartialSessionCompletes(t *testing.T) {
	_, addr := startCoordinatorWith(t, Config{NumClients: 4, ModelSize: 1})
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	var ra, rb []float64
	var ea, eb error
	done := make(chan struct{})
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = a.AggregateModel(a.ClientID(), 0, []float64{2}) }()
	go func() { defer wg.Done(); rb, eb = b.AggregateModel(b.ClientID(), 0, []float64{6}) }()
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("partial session blocked on phantom clients")
	}
	if ea != nil || eb != nil {
		t.Fatalf("errors: %v / %v", ea, eb)
	}
	for _, r := range [][]float64{ra, rb} {
		if len(r) != 1 || r[0] != 4 {
			t.Errorf("mean = %v, want [4]", r)
		}
	}
}

// Regression for the nil-vs-abstain wire bug: a zero-length contribution
// ([]float64{}, gob-flattened to nil in transit) must stay a contribution —
// both clients receive a non-nil empty mean, distinguishable from the
// all-abstained nil result.
func TestEmptyContributionSurvivesWire(t *testing.T) {
	_, addr := startCoordinatorWith(t, Config{NumClients: 2, ModelSize: 0})
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	var ra, rb []float64
	var ea, eb error
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = a.AggregateModel(a.ClientID(), 0, []float64{}) }()
	go func() { defer wg.Done(); rb, eb = b.AggregateModel(b.ClientID(), 0, []float64{}) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("errors: %v / %v", ea, eb)
	}
	if ra == nil || rb == nil {
		t.Fatalf("empty contributions decoded as abstention: %#v / %#v", ra, rb)
	}
	if len(ra) != 0 || len(rb) != 0 {
		t.Errorf("results = %v / %v, want empty", ra, rb)
	}

	// And the genuine all-abstained collective still reads as nil.
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = a.AggregateModel(a.ClientID(), 1, nil) }()
	go func() { defer wg.Done(); rb, eb = b.AggregateModel(b.ClientID(), 1, nil) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("errors: %v / %v", ea, eb)
	}
	if ra != nil || rb != nil {
		t.Errorf("all-abstained result = %#v / %#v, want nil", ra, rb)
	}
}

// A heartbeating straggler is slow, not dead: its fresh Pings buy the
// barrier one deadline extension and it completes the round unevicted.
func TestHeartbeatBuysExtension(t *testing.T) {
	const d = 300 * time.Millisecond
	coord, addr := startCoordinatorWith(t, Config{
		NumClients: 2, ModelSize: 1, Deadline: d,
	})
	fast, err := Dial(addr, "fast")
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := DialWith(addr, DialConfig{Name: "slow", Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()

	var wg sync.WaitGroup
	var rf []float64
	var ef error
	wg.Add(1)
	go func() { defer wg.Done(); rf, ef = fast.AggregateModel(fast.ClientID(), 0, []float64{2}) }()

	// Miss the first deadline but land within the heartbeat-funded
	// extension.
	time.Sleep(d + d/3)
	rs, err := slow.AggregateModel(slow.ClientID(), 0, []float64{4})
	if err != nil {
		t.Fatalf("heartbeating straggler evicted: %v", err)
	}
	wg.Wait()
	if ef != nil {
		t.Fatal(ef)
	}
	for _, r := range [][]float64{rf, rs} {
		if len(r) != 1 || r[0] != 3 {
			t.Errorf("result = %v, want [3] (both contributed)", r)
		}
	}
	if n := coord.EvictionCount(); n != 0 {
		t.Errorf("evictions = %d, want 0", n)
	}
	if coord.Counters().Get("heartbeats") == 0 {
		t.Error("expected heartbeats to have been received")
	}
}

// Service.Err stays nil while serving and after a clean shutdown, and Done
// closes once the serve loop exits.
func TestServiceCleanShutdown(t *testing.T) {
	c, err := NewCoordinator(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Listen("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Err(); err != nil {
		t.Errorf("Err() while serving = %v, want nil", err)
	}
	svc.Close()
	select {
	case <-svc.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done() not closed after Close")
	}
	if err := svc.Err(); err != nil {
		t.Errorf("Err() after clean shutdown = %v, want nil", err)
	}
}
