// Package flrpc provides the real-network deployment mode of the federated
// engine: a TCP coordinator exposing the aggregation collectives over
// net/rpc (stdlib, gob-encoded), and a client-side sparse.Aggregator that
// calls into it. It plays the role RPyC plays in the paper's Python
// implementation.
//
// The in-process engine (internal/fl) and this package share the exact same
// strategy code: a FedSU manager cannot tell whether its Aggregator is the
// in-process server or a TCP connection.
package flrpc

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"fedsu/internal/fl"
)

// ServiceName is the registered net/rpc service.
const ServiceName = "FedSU"

// JoinArgs identifies a joining client.
type JoinArgs struct {
	// Name is a human-readable client label (diagnostics only).
	Name string
}

// JoinReply assigns the client its id and describes the session.
type JoinReply struct {
	// ClientID is the stable id to use in collectives.
	ClientID int
	// NumClients is the session size; collectives block until that many
	// submissions arrive.
	NumClients int
	// ModelSize is the expected parameter-vector length.
	ModelSize int
}

// AggArgs is one collective submission.
type AggArgs struct {
	ClientID int
	Round    int
	// Kind selects the collective: "model" or "error".
	Kind string
	// Values is the contribution; Abstain true submits nil (participate in
	// the barrier without contributing).
	Values  []float64
	Abstain bool
}

// AggReply returns the collective result.
type AggReply struct {
	// Values is the element-wise mean over contributors; Nil reports that
	// no client contributed.
	Values []float64
	Nil    bool
}

// Coordinator is the TCP-facing aggregation service.
type Coordinator struct {
	mu         sync.Mutex
	numClients int
	modelSize  int
	nextID     int
	allIDs     []int
	begun      map[int]bool

	srv *fl.Server
}

// NewCoordinator constructs a coordinator expecting numClients clients
// training a model of modelSize scalar parameters.
func NewCoordinator(numClients, modelSize int) (*Coordinator, error) {
	if numClients <= 0 {
		return nil, fmt.Errorf("flrpc: numClients = %d", numClients)
	}
	return &Coordinator{
		numClients: numClients,
		modelSize:  modelSize,
		srv:        fl.NewServer(numClients),
		begun:      map[int]bool{},
	}, nil
}

// Join implements the session handshake.
func (c *Coordinator) Join(args JoinArgs, reply *JoinReply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.nextID >= c.numClients {
		return fmt.Errorf("flrpc: session full (%d clients)", c.numClients)
	}
	id := c.nextID
	c.nextID++
	c.allIDs = append(c.allIDs, id)
	*reply = JoinReply{ClientID: id, NumClients: c.numClients, ModelSize: c.modelSize}
	return nil
}

// Aggregate implements the blocking collective call.
func (c *Coordinator) Aggregate(args AggArgs, reply *AggReply) error {
	if args.ClientID < 0 || args.ClientID >= c.numClients {
		return fmt.Errorf("flrpc: unknown client %d", args.ClientID)
	}
	c.mu.Lock()
	if !c.begun[args.Round] {
		// All connected clients participate in the real-network mode;
		// stragglers are governed by actual wall-clock, not emulation.
		ids := make([]int, c.numClients)
		for i := range ids {
			ids[i] = i
		}
		c.srv.BeginRound(args.Round, ids)
		c.begun[args.Round] = true
		delete(c.begun, args.Round-2) // bounded bookkeeping
	}
	c.mu.Unlock()

	values := args.Values
	if args.Abstain {
		values = nil
	}
	var (
		res []float64
		err error
	)
	switch args.Kind {
	case "model":
		res, err = c.srv.AggregateModel(args.ClientID, args.Round, values)
	case "error":
		res, err = c.srv.AggregateError(args.ClientID, args.Round, values)
	default:
		return fmt.Errorf("flrpc: unknown collective kind %q", args.Kind)
	}
	if err != nil {
		return err
	}
	if res == nil {
		reply.Nil = true
		return nil
	}
	reply.Values = res
	return nil
}

// Serve runs the coordinator on the listener until the listener closes.
// It returns the first accept error (net.ErrClosed after Close).
func Serve(l net.Listener, c *Coordinator) error {
	s := rpc.NewServer()
	if err := s.RegisterName(ServiceName, c); err != nil {
		return fmt.Errorf("flrpc: register: %w", err)
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// Listen starts a coordinator on addr and serves it in a background
// goroutine, returning the listener (close it to stop).
func Listen(addr string, c *Coordinator) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flrpc: listen %s: %w", addr, err)
	}
	go func() {
		if err := Serve(l, c); err != nil && !errors.Is(err, net.ErrClosed) {
			// The coordinator is a long-lived background service; an accept
			// failure other than shutdown leaves clients hanging, so it is
			// surfaced loudly.
			fmt.Printf("flrpc: serve: %v\n", err)
		}
	}()
	return l, nil
}

// Client is the client-side handle: a sparse.Aggregator backed by TCP.
type Client struct {
	rpc  *rpc.Client
	id   int
	size int
	n    int
}

// Dial connects to a coordinator and joins the session.
func Dial(addr, name string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flrpc: dial %s: %w", addr, err)
	}
	rc := rpc.NewClient(conn)
	var reply JoinReply
	if err := rc.Call(ServiceName+".Join", JoinArgs{Name: name}, &reply); err != nil {
		rc.Close()
		return nil, fmt.Errorf("flrpc: join: %w", err)
	}
	return &Client{rpc: rc, id: reply.ClientID, size: reply.ModelSize, n: reply.NumClients}, nil
}

// ClientID returns the coordinator-assigned id.
func (c *Client) ClientID() int { return c.id }

// NumClients returns the session size.
func (c *Client) NumClients() int { return c.n }

// ModelSize returns the expected parameter-vector length.
func (c *Client) ModelSize() int { return c.size }

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// AggregateModel implements sparse.Aggregator over the wire.
func (c *Client) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return c.call("model", clientID, round, values)
}

// AggregateError implements sparse.Aggregator over the wire.
func (c *Client) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return c.call("error", clientID, round, values)
}

func (c *Client) call(kind string, clientID, round int, values []float64) ([]float64, error) {
	args := AggArgs{ClientID: clientID, Round: round, Kind: kind, Values: values, Abstain: values == nil}
	var reply AggReply
	if err := c.rpc.Call(ServiceName+".Aggregate", args, &reply); err != nil {
		return nil, fmt.Errorf("flrpc: aggregate %s round %d: %w", kind, round, err)
	}
	if reply.Nil {
		return nil, nil
	}
	return reply.Values, nil
}
