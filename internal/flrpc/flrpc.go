// Package flrpc provides the real-network deployment mode of the federated
// engine: a TCP coordinator exposing the aggregation collectives over
// net/rpc (stdlib), and a client-side sparse.Aggregator that calls into
// it. It plays the role RPyC plays in the paper's Python implementation.
//
// The rpc envelope is gob, but the parameter vectors themselves travel as
// sparse vector-codec payloads (sparse.AppendVectorPayload): a
// self-describing bitmap/index body over the nonzero entries with float32
// values — the paper's 32-bit traffic model — instead of gob's ~9
// bytes-per-float64 framing. Encode buffers are pooled on the client and
// decode vectors are pooled on the coordinator, so a steady-state
// collective round performs no payload allocation on the hot path; the
// coordinator additionally encodes each collective's reply once and serves
// the cached bytes to every waiter.
//
// The in-process engine (internal/fl) and this package share the exact same
// strategy code: a FedSU manager cannot tell whether its Aggregator is the
// in-process server or a TCP connection.
//
// # Fault tolerance
//
// A coordinator built with a Deadline closes each collective barrier a
// deadline after its first submission arrives: clients that have not
// submitted by then are evicted, the mean is computed over the actual
// contributors, and late submissions from evicted clients fail with
// fl.ErrEvicted instead of corrupting a later round. Client heartbeats
// (Ping) let the coordinator distinguish slow from dead — a missing client
// with a fresh heartbeat buys the barrier one deadline extension. The
// Client retries transient transport failures with exponential backoff and
// jitter, transparently reconnecting and rejoining by id; the coordinator
// treats a resubmission after reconnect idempotently.
package flrpc

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/rpc"
	"sync"
	"time"

	"fedsu/internal/fl"
	"fedsu/internal/sparse"
	"fedsu/internal/sparse/codec"
	"fedsu/internal/trace"
)

// ServiceName is the registered net/rpc service.
const ServiceName = "FedSU"

// ErrEvicted aliases fl.ErrEvicted: the coordinator evicted this client
// after a missed collective deadline. Match with errors.Is.
var ErrEvicted = fl.ErrEvicted

// evictedMarker recovers the typed eviction error from the flattened
// string net/rpc delivers; it must match fl.EvictedError's message.
const evictedMarker = "evicted from session"

// JoinArgs identifies a joining client.
type JoinArgs struct {
	// Name is a human-readable client label (diagnostics only).
	Name string
	// Rejoin requests re-admission of a previously assigned id after a
	// reconnect; ClientID carries that id. The coordinator clears the
	// client's evicted status (if any) so it re-enters the roster at the
	// next round's barriers.
	Rejoin   bool
	ClientID int
	// BlockSize, when positive, reserves a contiguous aligned block of
	// ids for a leaf-aggregator relay instead of a single client id; the
	// reply's ClientID is the block's base id (== its roster rank, ids
	// being assigned densely from zero). Only valid against a tree-mode
	// coordinator (Config.Fanout), and the base must land on a fanout
	// boundary — join relays before (or instead of) direct clients so the
	// blocks stay aligned.
	BlockSize int
}

// JoinReply assigns the client its id and describes the session.
type JoinReply struct {
	// ClientID is the stable id to use in collectives.
	ClientID int
	// NumClients is the session size; collectives block until that many
	// submissions arrive.
	NumClients int
	// ModelSize is the expected parameter-vector length.
	ModelSize int
}

// PingArgs is a client heartbeat.
type PingArgs struct {
	ClientID int
}

// PingReply acknowledges a heartbeat.
type PingReply struct{}

// AggArgs is one collective submission.
type AggArgs struct {
	ClientID int
	Round    int
	// Kind selects the collective: "model" or "error".
	Kind string
	// Payload is the contribution encoded with the sparse vector codec
	// (sparse.AppendVectorPayload). Abstain — not an empty Payload — is the
	// wire truth for abstention: gob flattens a non-nil empty slice to nil
	// in transit, and every real contribution (including the zero-length
	// one) encodes to a non-empty payload, so the flag keeps the two
	// unambiguous on arrival.
	Payload []byte
	Abstain bool
}

// contribution decodes the submitted vector, resolving the abstention
// ambiguity: Abstain returns nil (no contribution), everything else
// decodes the payload — a zero-length contribution comes back empty but
// non-nil, exactly as sent. dst and maxParams follow
// sparse.DecodeVectorPayloadInto. Both the coordinator and the wire fuzz
// target route through this single normalization point.
func (a AggArgs) contribution(dst []float64, maxParams int) ([]float64, error) {
	if a.Abstain {
		return nil, nil
	}
	return sparse.DecodeVectorPayloadInto(dst, a.Payload, maxParams)
}

// AggReply returns the collective result.
type AggReply struct {
	// Payload is the element-wise mean over contributors, encoded with the
	// sparse vector codec; Nil reports that no client contributed (the wire
	// truth, for the same gob nil-vs-empty reason as AggArgs.Abstain).
	Payload []byte
	Nil     bool
}

// contribution decodes the collective result with the same ambiguity
// resolved in the reply direction: Nil is the truth for "no contributors",
// and a non-nil-but-empty mean decodes back to empty but non-nil.
func (r AggReply) contribution(maxParams int) ([]float64, error) {
	if r.Nil {
		return nil, nil
	}
	return sparse.DecodeVectorPayloadInto(nil, r.Payload, maxParams)
}

// PartialArgs is one tier partial-aggregate submission: a leaf relay's
// already-folded block, replacing its members' individual uploads.
type PartialArgs struct {
	// ClientID is the relay's block base id (assigned by the block Join).
	ClientID int
	Round    int
	// Kind selects the collective: "model" or "error".
	Kind string
	// Payload is the partial encoded with the partial-aggregate codec
	// (sparse.AppendPartialPayload): raw float64 sum + contributor weight
	// + accounted traffic. Raw float64 because a partial is an
	// intermediate of the canonical fold — quantizing it would break the
	// tree-vs-flat bit-identity contract.
	Payload []byte
}

// Config assembles a fault-tolerant coordinator.
type Config struct {
	// NumClients is the session size.
	NumClients int
	// ModelSize is the expected parameter-vector length.
	ModelSize int
	// Deadline bounds each collective barrier: a client missing the
	// deadline (measured from the barrier's first submission) is evicted
	// and the round completes over the survivors. Zero keeps blocking
	// barriers — exactly the pre-fault-tolerance behaviour.
	Deadline time.Duration
	// HeartbeatGrace is how recently a client must have been heard from
	// (Ping or any call) to count as alive when a deadline expires; an
	// alive straggler buys the barrier one deadline extension. Zero
	// defaults to Deadline. Ignored without a Deadline.
	HeartbeatGrace time.Duration
	// Async switches the coordinator to buffered-async aggregation
	// (fl.SetAsync): Aggregate calls return immediately with the current
	// global instead of blocking on a round barrier, and the server
	// applies a staleness-weighted global every Async.K contributions.
	// The zero value keeps synchronous barriers. Note that over a real
	// network the arrival order is wall-clock — the bit-level
	// seed-determinism contract applies to the netem-driven emulation,
	// not this transport.
	Async fl.AsyncConfig
	// Fanout, when >= 2, switches the coordinator's collective to the
	// hierarchical fl.Tree: leaf-aggregator relays reserve aligned id
	// blocks (JoinArgs.BlockSize) and submit one partial per collective
	// (SubmitPartial), so root work is O(fanout) rather than
	// O(participants). Direct clients still work (mixed trees are fine)
	// but lose the flat server's idempotent-resubmission affordance —
	// only relay partials are retried idempotently. Incompatible with
	// Async. Zero keeps the flat fl.Server.
	Fanout int
	// Compress selects the compression chain for collective replies, as a
	// codec chain spec ("topk,q4,rans" — see codec.Parse). The decode side
	// needs no configuration (payloads are self-describing), so a
	// coordinator accepts chain-encoded uploads regardless; Compress only
	// governs what the coordinator ships downlink. Empty keeps the default
	// vector codec, byte-identical to every pre-chain deployment. Relay
	// partials (SubmitPartial) are never chain-encoded — they are raw
	// float64 intermediates of the canonical fold.
	Compress string
	// CompressSeed seeds the chain's stochastic stages. Every party of a
	// run (coordinator and clients) must share it for the run to reproduce
	// the in-process engine bit-for-bit; decoding works regardless.
	CompressSeed int64
}

// aggKey identifies one collective for the reply-encoding cache.
type aggKey struct {
	round int
	kind  string
}

// Coordinator is the TCP-facing aggregation service.
type Coordinator struct {
	mu         sync.Mutex
	cfg        Config
	numClients int
	modelSize  int
	nextID     int
	allIDs     []int
	begun      map[int]bool
	// replyEnc caches each collective's encoded mean so N waiters ship the
	// same bytes instead of paying N encodes. Entries are plain allocations
	// (not pooled buffers): a reply to an evicted straggler can still be
	// draining through net/rpc when the entry ages out two rounds later, so
	// reclamation is left to the GC. Guarded by mu.
	replyEnc map[aggKey][]byte

	// hbMu guards lastSeen alone. It is never held while calling into srv,
	// and srv's deadline expiry calls alive() while holding its own lock —
	// a shared mutex here would invert the lock order and deadlock.
	hbMu     sync.Mutex
	lastSeen map[int]time.Time

	counters *trace.Counters
	// chain is the parsed Compress spec (nil for the default wire).
	chain *codec.Chain
	// Exactly one of srv/tree is non-nil: the flat collective, or the
	// hierarchical one (Config.Fanout).
	srv  *fl.Server
	tree *fl.Tree
	// blockOf maps every id of a relay-reserved block to the block's base
	// id, for heartbeat attribution (a relay's Ping keeps its whole block
	// alive). Guarded by mu.
	blockOf map[int]int
}

// NewCoordinator constructs a coordinator expecting numClients clients
// training a model of modelSize scalar parameters, with fault tolerance
// disabled (blocking barriers).
func NewCoordinator(numClients, modelSize int) (*Coordinator, error) {
	return NewCoordinatorWith(Config{NumClients: numClients, ModelSize: modelSize})
}

// NewCoordinatorWith constructs a coordinator from an explicit Config.
func NewCoordinatorWith(cfg Config) (*Coordinator, error) {
	if cfg.NumClients <= 0 {
		return nil, fmt.Errorf("flrpc: numClients = %d", cfg.NumClients)
	}
	if cfg.HeartbeatGrace <= 0 {
		cfg.HeartbeatGrace = cfg.Deadline
	}
	c := &Coordinator{
		cfg:        cfg,
		numClients: cfg.NumClients,
		modelSize:  cfg.ModelSize,
		begun:      map[int]bool{},
		replyEnc:   map[aggKey][]byte{},
		lastSeen:   map[int]time.Time{},
		counters:   trace.NewCounters(),
		blockOf:    map[int]int{},
	}
	if cfg.Compress != "" {
		chain, err := codec.Parse(cfg.Compress, cfg.CompressSeed)
		if err != nil {
			return nil, fmt.Errorf("flrpc: %w", err)
		}
		if !chain.IsDefault() {
			c.chain = chain
		}
	}
	if cfg.Fanout >= 2 {
		if cfg.Async.Enabled() {
			return nil, fmt.Errorf("flrpc: tree mode (Fanout %d) is synchronous-only; async is a flat-server feature", cfg.Fanout)
		}
		c.tree = fl.NewTree(cfg.Fanout)
		if cfg.Deadline > 0 {
			c.tree.SetDeadline(cfg.Deadline)
			c.tree.SetAliveProbe(c.alive)
		}
		return c, nil
	}
	c.srv = fl.NewServer(cfg.NumClients)
	// Resubmission after a client reconnect must be benign, not a
	// double-submit error.
	c.srv.SetIdempotent(true)
	if cfg.Deadline > 0 {
		c.srv.SetDeadline(cfg.Deadline)
		c.srv.SetAliveProbe(c.alive)
	}
	if cfg.Async.Enabled() {
		if err := c.srv.SetAsync(cfg.Async); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// AsyncVersion returns the number of async global applications (zero in
// synchronous mode).
func (c *Coordinator) AsyncVersion() int {
	if c.srv == nil {
		return 0
	}
	return c.srv.AsyncVersion()
}

// StaleDropCount returns contributions dropped for exceeding MaxStaleness.
func (c *Coordinator) StaleDropCount() int {
	if c.srv == nil {
		return 0
	}
	return c.srv.StaleDropCount()
}

// TierStats returns the tree collective's per-tier telemetry (zero value
// in flat mode).
func (c *Coordinator) TierStats() fl.TierStats {
	if c.tree == nil {
		return fl.TierStats{}
	}
	return c.tree.Stats()
}

// alive reports whether a client was heard from within the heartbeat
// grace window; consulted by the server when a barrier deadline expires.
// A relay's heartbeat speaks for every member of its block.
func (c *Coordinator) alive(clientID int) bool {
	c.mu.Lock()
	base, blocked := c.blockOf[clientID]
	c.mu.Unlock()
	c.hbMu.Lock()
	last, ok := c.lastSeen[clientID]
	if blocked {
		if bl, bok := c.lastSeen[base]; bok && (!ok || bl.After(last)) {
			last, ok = bl, true
		}
	}
	c.hbMu.Unlock()
	return ok && time.Since(last) <= c.cfg.HeartbeatGrace
}

// heard records a liveness signal from a client.
func (c *Coordinator) heard(clientID int) {
	c.hbMu.Lock()
	c.lastSeen[clientID] = time.Now()
	c.hbMu.Unlock()
}

// Counters exposes the coordinator's operational counters (rejoins,
// heartbeats received, and agg_rx_bytes / agg_tx_bytes — the encoded
// payload bytes received from and served to clients).
func (c *Coordinator) Counters() *trace.Counters { return c.counters }

// Evicted returns the ids evicted so far, ascending.
func (c *Coordinator) Evicted() []int {
	if c.tree != nil {
		return c.tree.Evicted()
	}
	return c.srv.Evicted()
}

// EvictionCount returns the cumulative number of deadline evictions.
func (c *Coordinator) EvictionCount() int {
	if c.tree != nil {
		return c.tree.EvictionCount()
	}
	return c.srv.EvictionCount()
}

// readmit clears evicted status on whichever collective is active.
func (c *Coordinator) readmit(clientID int) {
	if c.tree != nil {
		c.tree.Readmit(clientID)
		return
	}
	c.srv.Readmit(clientID)
}

// Join implements the session handshake, including rejoin-by-id after a
// client reconnects and block reservation for leaf-aggregator relays.
func (c *Coordinator) Join(args JoinArgs, reply *JoinReply) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if args.Rejoin {
		if args.ClientID < 0 || args.ClientID >= c.nextID {
			return fmt.Errorf("flrpc: rejoin of unknown client %d", args.ClientID)
		}
		c.readmit(args.ClientID)
		c.counters.Inc("rejoins")
		c.heard(args.ClientID)
		*reply = JoinReply{ClientID: args.ClientID, NumClients: c.numClients, ModelSize: c.modelSize}
		return nil
	}
	span := 1
	if args.BlockSize > 0 {
		if c.tree == nil {
			return fmt.Errorf("flrpc: block join against a flat coordinator (no Fanout configured)")
		}
		fanout := c.tree.Fanout()
		if c.nextID%fanout != 0 {
			return fmt.Errorf("flrpc: block join at id %d is not aligned to fanout %d (join relays before direct clients)", c.nextID, fanout)
		}
		if args.BlockSize > fanout {
			return fmt.Errorf("flrpc: block of %d exceeds fanout %d", args.BlockSize, fanout)
		}
		span = args.BlockSize
	}
	if c.nextID+span > c.numClients {
		return fmt.Errorf("flrpc: session full (%d clients)", c.numClients)
	}
	id := c.nextID
	c.nextID += span
	for m := id; m < id+span; m++ {
		c.allIDs = append(c.allIDs, m)
		if args.BlockSize > 0 {
			c.blockOf[m] = id
		}
	}
	c.heard(id)
	*reply = JoinReply{ClientID: id, NumClients: c.numClients, ModelSize: c.modelSize}
	return nil
}

// Ping implements the heartbeat: it only refreshes the client's liveness
// timestamp, letting a deadline-expired barrier tell slow from dead.
func (c *Coordinator) Ping(args PingArgs, reply *PingReply) error {
	c.mu.Lock()
	known := args.ClientID >= 0 && args.ClientID < c.nextID
	c.mu.Unlock()
	if !known {
		return fmt.Errorf("flrpc: ping from unknown client %d", args.ClientID)
	}
	c.counters.Inc("heartbeats")
	c.heard(args.ClientID)
	return nil
}

// beginRoundLocked lazily opens a round's collectives on the round's
// first submission. All connected clients participate in the
// real-network mode; stragglers are governed by actual wall-clock, not
// emulation. The roster and quorum are the ids that actually joined — a
// session started below its -clients capacity must not barrier on
// phantom ids that never connected. Caller holds c.mu.
func (c *Coordinator) beginRoundLocked(round int) {
	if c.begun[round] || c.cfg.Async.Enabled() {
		return
	}
	ids := append([]int(nil), c.allIDs...)
	if c.tree != nil {
		c.tree.SetRoster(ids)
		c.tree.BeginRound(round, ids)
	} else {
		c.srv.SetRoster(ids)
		c.srv.BeginRound(round, ids)
	}
	c.begun[round] = true
	delete(c.begun, round-2) // bounded bookkeeping
	for k := range c.replyEnc {
		if k.round <= round-2 {
			delete(c.replyEnc, k)
		}
	}
}

// collective returns the active aggregation service (flat or tree); both
// satisfy the ctx-aware dispatch contract.
func (c *Coordinator) collective() sparse.Aggregator {
	if c.tree != nil {
		return c.tree
	}
	return c.srv
}

// Aggregate implements the blocking collective call.
func (c *Coordinator) Aggregate(args AggArgs, reply *AggReply) error {
	c.mu.Lock()
	if args.ClientID < 0 || args.ClientID >= c.nextID {
		c.mu.Unlock()
		return fmt.Errorf("flrpc: unknown client %d", args.ClientID)
	}
	c.beginRoundLocked(args.Round)
	c.mu.Unlock()
	c.heard(args.ClientID)
	c.counters.Add("agg_rx_bytes", int64(len(args.Payload)))

	// Decode the contribution into a pooled vector. The fl.Server stages
	// submissions by reference and drops them when the barrier closes, and
	// this handler blocks inside the collective until exactly then, so the
	// buffer is recyclable once the dispatch below returns. modelSize bounds
	// the claimed vector length against hostile payloads.
	var vecBuf *[]float64
	if !args.Abstain {
		vecBuf = sparse.GetVec(c.modelSize)
		defer sparse.PutVec(vecBuf)
	}
	var dst []float64
	if vecBuf != nil {
		dst = *vecBuf
	}
	values, err := args.contribution(dst, c.modelSize)
	if err != nil {
		return fmt.Errorf("flrpc: client %d round %d: %w", args.ClientID, args.Round, err)
	}
	var res []float64
	// Route through the ctx-aware dispatchers (the ctxdispatch contract):
	// net/rpc hands the handler no context, but the dispatch helpers keep
	// this call on the same cancellation-capable path as every other
	// aggregation in the codebase.
	switch args.Kind {
	case "model":
		res, err = sparse.AggModel(context.Background(), c.collective(), args.ClientID, args.Round, values)
	case "error":
		res, err = sparse.AggError(context.Background(), c.collective(), args.ClientID, args.Round, values)
	default:
		return fmt.Errorf("flrpc: unknown collective kind %q", args.Kind)
	}
	if err != nil {
		return err
	}
	c.encodeReply(args.Round, args.Kind, res, reply)
	return nil
}

// encodeReply fills reply with the collective result, serving cached
// bytes when the result is round-stable.
func (c *Coordinator) encodeReply(round int, kind string, res []float64, reply *AggReply) {
	if res == nil {
		reply.Nil = true
		return
	}
	if c.cfg.Async.Enabled() {
		// No reply cache in async mode: the global evolves with every K-th
		// submission, so a (round, kind) key does not identify one stable
		// result the way a closed barrier's mean does.
		reply.Payload = c.encodeVector(res)
		c.counters.Add("agg_tx_bytes", int64(len(reply.Payload)))
		return
	}
	// Every waiter of the collective receives the same mean; encode it once
	// and serve the cached bytes. The double-checked pattern keeps the
	// O(model) encode outside the coordinator lock — a racing duplicate
	// encode is possible but bounded and byte-identical (chain encoding is
	// deterministic: the quantizer's rounding is a pure seeded hash).
	k := aggKey{round: round, kind: kind}
	c.mu.Lock()
	payload, ok := c.replyEnc[k]
	c.mu.Unlock()
	if !ok {
		payload = c.encodeVector(res)
		c.mu.Lock()
		if cached, dup := c.replyEnc[k]; dup {
			payload = cached
		} else {
			c.replyEnc[k] = payload
		}
		c.mu.Unlock()
	}
	reply.Payload = payload
	c.counters.Add("agg_tx_bytes", int64(len(payload)))
}

// encodeVector encodes a collective result with the configured chain's
// Reply variant (quantizers widened to 8 bits — the mean of K k-bit
// uploads needs the finer grid), or the default vector codec when no
// chain is configured. The returned slice is a plain allocation (never
// pooled): reply-cache entries outlive the handler.
func (c *Coordinator) encodeVector(res []float64) []byte {
	if c.chain != nil {
		return c.chain.Reply().AppendEncode(nil, res)
	}
	return sparse.EncodeVectorPayload(res)
}

// SubmitPartial implements the tier collective call: a leaf relay ships
// its block's already-folded (sum, weight) partial in place of the
// block's member submissions, and blocks until the round's global mean
// is published — which it then serves to its own clients. Tree mode
// only. The decode is allocation-bounded by the session's model size,
// and a resubmission after a relay reconnect is idempotent.
func (c *Coordinator) SubmitPartial(args PartialArgs, reply *AggReply) error {
	c.mu.Lock()
	if c.tree == nil {
		c.mu.Unlock()
		return fmt.Errorf("flrpc: partial submitted to a flat coordinator (no Fanout configured)")
	}
	base, ok := c.blockOf[args.ClientID]
	if !ok || base != args.ClientID {
		c.mu.Unlock()
		return fmt.Errorf("flrpc: partial from %d, which is not a block base id", args.ClientID)
	}
	c.beginRoundLocked(args.Round)
	c.mu.Unlock()
	c.heard(args.ClientID)
	c.counters.Add("agg_rx_bytes", int64(len(args.Payload)))
	c.counters.Inc("partials_rx")

	// Decode into a pooled vector; the tree stages the sum by reference
	// and this handler blocks until the collective closes, so the buffer
	// is recyclable on return (the Aggregate ownership contract).
	vecBuf := sparse.GetVec(c.modelSize)
	defer sparse.PutVec(vecBuf)
	p, err := sparse.DecodePartialPayloadInto(*vecBuf, args.Payload, c.modelSize)
	if err != nil {
		return fmt.Errorf("flrpc: relay %d round %d: %w", args.ClientID, args.Round, err)
	}
	if p.RankLo != args.ClientID {
		return fmt.Errorf("flrpc: relay %d shipped a partial for rank %d; blocks are keyed by base id", args.ClientID, p.RankLo)
	}
	if args.Kind != "model" && args.Kind != "error" {
		return fmt.Errorf("flrpc: unknown collective kind %q", args.Kind)
	}
	c.counters.Add("relay_traffic_bytes", p.Traffic)
	res, err := c.tree.AggregatePartialCtx(context.Background(), args.Round, args.Kind, p.RankLo, p.Sum, p.Weight)
	if err != nil {
		return err
	}
	c.encodeReply(args.Round, args.Kind, res, reply)
	return nil
}

// Serve runs the coordinator on the listener until the listener closes.
// It returns the first accept error (net.ErrClosed after Close).
func Serve(l net.Listener, c *Coordinator) error {
	s := rpc.NewServer()
	if err := s.RegisterName(ServiceName, c); err != nil {
		return fmt.Errorf("flrpc: register: %w", err)
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		//lint:allow goleak -- idiomatic net/rpc accept loop: ServeConn exits when the peer disconnects, and Service.Close tears down the listener that feeds it
		go s.ServeConn(conn)
	}
}

// Service is a coordinator being served in the background. It embeds the
// listener (Addr, Close) and exposes the serve loop's terminal error so a
// server process can exit non-zero on an accept failure instead of
// silently stranding its clients.
type Service struct {
	net.Listener
	err  error
	done chan struct{}
}

// Done is closed when the serve loop has terminated; Err is valid after.
func (s *Service) Done() <-chan struct{} { return s.done }

// Err returns the serve loop's terminal error: nil while still serving,
// and nil after a clean shutdown (listener closed).
func (s *Service) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Listen starts a coordinator on addr and serves it in a background
// goroutine, returning the running service (close it to stop).
func Listen(addr string, c *Coordinator) (*Service, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flrpc: listen %s: %w", addr, err)
	}
	svc := &Service{Listener: l, done: make(chan struct{})}
	go func() {
		err := Serve(l, c)
		if errors.Is(err, net.ErrClosed) {
			err = nil // clean shutdown
		}
		if err != nil {
			// The coordinator is a long-lived background service; an accept
			// failure other than shutdown leaves clients hanging, so it is
			// surfaced loudly and exposed via Err.
			log.Printf("flrpc: serve: %v", err)
		}
		svc.err = err
		close(svc.done)
	}()
	return svc, nil
}
