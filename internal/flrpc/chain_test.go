package flrpc

import (
	"sync"
	"testing"

	"fedsu/internal/core"
	"fedsu/internal/data"
	"fedsu/internal/fl"
	"fedsu/internal/nn"
	"fedsu/internal/opt"
	"fedsu/internal/sparse"
	"fedsu/internal/sparse/codec"
)

// Tests for the chained wire path: a compression chain negotiated on both
// ends of the TCP session must reproduce the in-process engine's
// chain-wrapped fold bit-for-bit — the chain generalization of
// TestDistributedMatchesInProcess / TestAsyncWireMatchesInProcess.

func startChainedCoordinator(t *testing.T, n, size int, spec string, seed int64, acfg fl.AsyncConfig) (addr string, coord *Coordinator) {
	t.Helper()
	coord, err := NewCoordinatorWith(Config{
		NumClients: n, ModelSize: size, Async: acfg,
		Compress: spec, CompressSeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listen("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l.Addr().String(), coord
}

func dialChained(t *testing.T, addr, name, spec string, seed int64) *Client {
	t.Helper()
	c, err := DialWith(addr, DialConfig{Name: name, Compress: spec, CompressSeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestChainedDistributedMatchesInProcess runs the same FedSU training once
// through an in-process server wrapped in sparse.ChainAggregator and once
// through real TCP clients encoding with the same chain and seed, and
// requires bit-identical final models. Both transports apply exactly one
// encode→decode trip per leg, so this holds even though the chain's
// quantized wire images are not float32 values.
func TestChainedDistributedMatchesInProcess(t *testing.T) {
	const (
		numClients = 3
		rounds     = 8
		localIters = 2
		batch      = 4
		seed       = int64(9)
		spec       = "topk,q4,rans"
		chainSeed  = int64(5)
	)
	ds := data.Synthesize(data.SynthConfig{
		Name: "tcp-chain", Channels: 1, Size: 8, Classes: 3,
		Samples: 192, Noise: 0.2, Jitter: 1, Seed: 21,
	})
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 3, Seed: 4}, 16)
	}
	shards := data.PartitionDirichlet(ds, numClients, 1.0, seed)
	opts := core.DefaultOptions()

	chain, err := codec.Parse(spec, chainSeed)
	if err != nil {
		t.Fatal(err)
	}

	refServer := fl.NewServer(numClients)
	runFleet := func(agg func(i int) sparse.Aggregator, begin func(round int)) [][]float64 {
		clients := make([]*fl.Client, numClients)
		for i := 0; i < numClients; i++ {
			model := builder()
			mgr, err := core.NewManager(i, model.Size(), agg(i), opts)
			if err != nil {
				t.Fatal(err)
			}
			// Both fleets bind the same wire, so the managers run the
			// delta-domain collective on both transports.
			sparse.SetSyncerWire(mgr, sparse.Wire{Chain: chain})
			clients[i] = fl.NewClient(i, model, opt.NewSGD(0.05), shards[i], mgr, seed+int64(i)*7919)
		}
		for k := 0; k < rounds; k++ {
			if begin != nil {
				begin(k)
			}
			var wg sync.WaitGroup
			for _, c := range clients {
				wg.Add(1)
				go func(c *fl.Client) {
					defer wg.Done()
					c.TrainLocal(localIters, batch)
					if _, err := c.SyncRound(k, true); err != nil {
						t.Error(err)
					}
				}(c)
			}
			wg.Wait()
		}
		out := make([][]float64, numClients)
		for i, c := range clients {
			out[i] = c.Model().Vector()
		}
		return out
	}

	refVecs := runFleet(
		func(int) sparse.Aggregator { return sparse.WrapAggregator(refServer, chain) },
		func(k int) { refServer.BeginRound(k, []int{0, 1, 2}) },
	)

	size := builder().Size()
	addr, _ := startChainedCoordinator(t, numClients, size, spec, chainSeed, fl.AsyncConfig{})
	conns := make([]*Client, numClients)
	for range conns {
		c := dialChained(t, addr, "client", spec, chainSeed)
		conns[c.ClientID()] = c
	}
	tcpVecs := runFleet(
		func(i int) sparse.Aggregator { return conns[i] },
		nil,
	)

	for i := range refVecs {
		for j := range refVecs[i] {
			if refVecs[i][j] != tcpVecs[i][j] {
				t.Fatalf("client %d param %d: in-process %v != TCP %v",
					i, j, refVecs[i][j], tcpVecs[i][j])
			}
		}
	}
}

// TestChainedAsyncWireMatchesInProcess extends TestAsyncWireMatchesInProcess
// to a chained session: the TCP async fold under "topk,q4" must agree
// bit-for-bit with an in-process server whose submissions and replies pass
// through the same chain's round trip.
func TestChainedAsyncWireMatchesInProcess(t *testing.T) {
	const (
		size      = 33
		spec      = "topk,q4"
		chainSeed = int64(11)
	)
	acfg := fl.AsyncConfig{K: 2, MaxStaleness: 4, StalenessWeight: 0.5}
	chain, err := codec.Parse(spec, chainSeed)
	if err != nil {
		t.Fatal(err)
	}

	ref := fl.NewServer(2)
	if err := ref.SetAsync(acfg); err != nil {
		t.Fatal(err)
	}
	refAgg := sparse.WrapAggregator(ref, chain)

	addr, coord := startChainedCoordinator(t, 2, size, spec, chainSeed, acfg)
	a := dialChained(t, addr, "a", spec, chainSeed)
	b := dialChained(t, addr, "b", spec, chainSeed)
	clients := []*Client{a, b}

	vec := func(clientID, cycle int) []float64 {
		v := make([]float64, size)
		for i := range v {
			v[i] = float64((clientID+1)*(i+3)) * 0.125 * float64(cycle+1)
		}
		return v
	}

	schedule := []int{0, 1, 0, 0, 1, 1, 0, 1}
	var lastWire, lastRef []float64
	for cycle, id := range schedule {
		v := vec(id, cycle)
		wire, err := clients[id].AggregateModel(clients[id].ClientID(), 0, v)
		if err != nil {
			t.Fatal(err)
		}
		inproc, err := refAgg.AggregateModel(id, 0, v)
		if err != nil {
			t.Fatal(err)
		}
		if (wire == nil) != (inproc == nil) {
			t.Fatalf("cycle %d: wire nil=%v, in-process nil=%v", cycle, wire == nil, inproc == nil)
		}
		lastWire, lastRef = wire, inproc
	}
	if lastWire == nil {
		t.Fatal("schedule produced no apply")
	}
	for i := range lastWire {
		if lastWire[i] != lastRef[i] {
			t.Fatalf("wire global deviates from chained in-process fold at %d: %v vs %v",
				i, lastWire[i], lastRef[i])
		}
	}
	if coord.AsyncVersion() != ref.AsyncVersion() {
		t.Fatalf("version mismatch: wire %d, in-process %d", coord.AsyncVersion(), ref.AsyncVersion())
	}
}

// TestChainedAbstainHeaderOnly: a chained session's abstention still ships
// zero payload bytes — the chain never encodes a nil vector.
func TestChainedAbstainHeaderOnly(t *testing.T) {
	addr, _ := startChainedCoordinator(t, 2, 4, "topk,q4", 3, fl.AsyncConfig{K: 2})
	a := dialChained(t, addr, "a", "topk,q4", 3)
	res, err := a.AggregateModel(a.ClientID(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("abstention before first apply returned %v, want nil", res)
	}
	if got := a.Counters().Get("agg_tx_bytes"); got != 0 {
		t.Errorf("abstention charged %d payload tx bytes, want 0 (header-only)", got)
	}
}
