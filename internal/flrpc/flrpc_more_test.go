package flrpc

import (
	"strings"
	"sync"
	"testing"
)

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(0, 10); err == nil {
		t.Error("zero clients must fail")
	}
}

func TestAggregateUnknownClient(t *testing.T) {
	c, err := NewCoordinator(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var reply AggReply
	if err := c.Aggregate(AggArgs{ClientID: 7, Round: 0, Kind: "model"}, &reply); err == nil {
		t.Error("unknown client must fail")
	}
}

func TestAggregateUnknownKind(t *testing.T) {
	c, err := NewCoordinator(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var join JoinReply
	if err := c.Join(JoinArgs{Name: "x"}, &join); err != nil {
		t.Fatal(err)
	}
	var reply AggReply
	err = c.Aggregate(AggArgs{ClientID: 0, Round: 0, Kind: "bogus", Values: []float64{1}}, &reply)
	if err == nil || !strings.Contains(err.Error(), "unknown collective") {
		t.Errorf("unknown kind error = %v", err)
	}
}

func TestErrorCollectiveOverTCP(t *testing.T) {
	addr := startCoordinator(t, 2, 1)
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()
	var wg sync.WaitGroup
	var ra, rb []float64
	wg.Add(2)
	go func() { defer wg.Done(); ra, _ = a.AggregateError(a.ClientID(), 0, []float64{2}) }()
	go func() { defer wg.Done(); rb, _ = b.AggregateError(b.ClientID(), 0, []float64{4}) }()
	wg.Wait()
	if len(ra) != 1 || ra[0] != 3 || rb[0] != 3 {
		t.Fatalf("error collective = %v/%v, want [3]", ra, rb)
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "x"); err == nil {
		t.Error("dialing a closed port must fail")
	}
}

func TestConcurrentRounds(t *testing.T) {
	// Several consecutive rounds over the same connections; ensures the
	// coordinator's per-round bookkeeping is garbage-collected and reused
	// correctly.
	addr := startCoordinator(t, 2, 1)
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()
	for k := 0; k < 20; k++ {
		var wg sync.WaitGroup
		var ra, rb []float64
		wg.Add(2)
		go func() { defer wg.Done(); ra, _ = a.AggregateModel(a.ClientID(), k, []float64{float64(k)}) }()
		go func() { defer wg.Done(); rb, _ = b.AggregateModel(b.ClientID(), k, []float64{float64(k + 2)}) }()
		wg.Wait()
		want := float64(k) + 1
		if ra[0] != want || rb[0] != want {
			t.Fatalf("round %d: got %v/%v, want %v", k, ra, rb, want)
		}
	}
}
