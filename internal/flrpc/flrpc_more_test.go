package flrpc

import (
	"strings"
	"sync"
	"testing"

	"fedsu/internal/sparse"
)

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(0, 10); err == nil {
		t.Error("zero clients must fail")
	}
}

func TestAggregateUnknownClient(t *testing.T) {
	c, err := NewCoordinator(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var reply AggReply
	if err := c.Aggregate(AggArgs{ClientID: 7, Round: 0, Kind: "model"}, &reply); err == nil {
		t.Error("unknown client must fail")
	}
}

func TestAggregateUnknownKind(t *testing.T) {
	c, err := NewCoordinator(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var join JoinReply
	if err := c.Join(JoinArgs{Name: "x"}, &join); err != nil {
		t.Fatal(err)
	}
	var reply AggReply
	err = c.Aggregate(AggArgs{ClientID: 0, Round: 0, Kind: "bogus", Payload: sparse.EncodeVectorPayload([]float64{1})}, &reply)
	if err == nil || !strings.Contains(err.Error(), "unknown collective") {
		t.Errorf("unknown kind error = %v", err)
	}
}

func TestAggregateMalformedPayload(t *testing.T) {
	c, err := NewCoordinator(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	var join JoinReply
	if err := c.Join(JoinArgs{Name: "x"}, &join); err != nil {
		t.Fatal(err)
	}
	var reply AggReply
	// Garbage bytes must be rejected before they reach the barrier.
	err = c.Aggregate(AggArgs{ClientID: 0, Round: 0, Kind: "model", Payload: []byte{0xff, 1, 2, 3}}, &reply)
	if err == nil {
		t.Fatal("malformed payload must fail")
	}
	// A payload longer than the session's model size is an allocation bomb
	// and must be bounded by ModelSize.
	over := sparse.EncodeVectorPayload(make([]float64, 5))
	err = c.Aggregate(AggArgs{ClientID: 0, Round: 0, Kind: "model", Payload: over}, &reply)
	if err == nil {
		t.Fatal("payload above ModelSize must fail")
	}
}

func TestWireBytesCounters(t *testing.T) {
	addr := startCoordinator(t, 2, 4)
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a.AggregateModel(a.ClientID(), 0, []float64{1, 0, 2, 0}) }()
	go func() { defer wg.Done(); b.AggregateModel(b.ClientID(), 0, []float64{3, 0, 4, 0}) }()
	wg.Wait()
	want := int64(sparse.VectorPayloadSize([]float64{1, 0, 2, 0}))
	if got := a.Counters().Get("agg_tx_bytes"); got != want {
		t.Errorf("client tx bytes = %d, want %d", got, want)
	}
	if got := a.Counters().Get("agg_rx_bytes"); got <= 0 {
		t.Errorf("client rx bytes = %d, want > 0", got)
	}
}

func TestErrorCollectiveOverTCP(t *testing.T) {
	addr := startCoordinator(t, 2, 1)
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()
	var wg sync.WaitGroup
	var ra, rb []float64
	wg.Add(2)
	go func() { defer wg.Done(); ra, _ = a.AggregateError(a.ClientID(), 0, []float64{2}) }()
	go func() { defer wg.Done(); rb, _ = b.AggregateError(b.ClientID(), 0, []float64{4}) }()
	wg.Wait()
	if len(ra) != 1 || ra[0] != 3 || rb[0] != 3 {
		t.Fatalf("error collective = %v/%v, want [3]", ra, rb)
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "x"); err == nil {
		t.Error("dialing a closed port must fail")
	}
}

func TestConcurrentRounds(t *testing.T) {
	// Several consecutive rounds over the same connections; ensures the
	// coordinator's per-round bookkeeping is garbage-collected and reused
	// correctly.
	addr := startCoordinator(t, 2, 1)
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()
	for k := 0; k < 20; k++ {
		var wg sync.WaitGroup
		var ra, rb []float64
		wg.Add(2)
		go func() { defer wg.Done(); ra, _ = a.AggregateModel(a.ClientID(), k, []float64{float64(k)}) }()
		go func() { defer wg.Done(); rb, _ = b.AggregateModel(b.ClientID(), k, []float64{float64(k + 2)}) }()
		wg.Wait()
		want := float64(k) + 1
		if ra[0] != want || rb[0] != want {
			t.Fatalf("round %d: got %v/%v, want %v", k, ra, rb, want)
		}
	}
}
