package flrpc

import (
	"sync"
	"testing"

	"fedsu/internal/core"
	"fedsu/internal/data"
	"fedsu/internal/fl"
	"fedsu/internal/nn"
	"fedsu/internal/opt"
	"fedsu/internal/sparse"
)

func startCoordinator(t *testing.T, n, size int) (addr string) {
	t.Helper()
	c, err := NewCoordinator(n, size)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listen("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

func TestJoinAssignsIDs(t *testing.T) {
	addr := startCoordinator(t, 2, 5)
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.ClientID() == b.ClientID() {
		t.Error("clients must receive distinct ids")
	}
	if a.NumClients() != 2 || a.ModelSize() != 5 {
		t.Errorf("session metadata = %d/%d", a.NumClients(), a.ModelSize())
	}
	if _, err := Dial(addr, "c"); err == nil {
		t.Error("joining a full session must fail")
	}
}

func TestAggregateOverTCP(t *testing.T) {
	addr := startCoordinator(t, 2, 2)
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	var ra, rb []float64
	wg.Add(2)
	go func() {
		defer wg.Done()
		ra, _ = a.AggregateModel(a.ClientID(), 0, []float64{1, 3})
	}()
	go func() {
		defer wg.Done()
		rb, _ = b.AggregateModel(b.ClientID(), 0, []float64{3, 5})
	}()
	wg.Wait()
	for _, r := range [][]float64{ra, rb} {
		if len(r) != 2 || r[0] != 2 || r[1] != 4 {
			t.Fatalf("TCP mean = %v, want [2 4]", r)
		}
	}
}

func TestAbstainOverTCP(t *testing.T) {
	addr := startCoordinator(t, 2, 1)
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()
	var wg sync.WaitGroup
	var ra, rb []float64
	wg.Add(2)
	go func() { defer wg.Done(); ra, _ = a.AggregateModel(a.ClientID(), 0, []float64{7}) }()
	go func() { defer wg.Done(); rb, _ = b.AggregateModel(b.ClientID(), 0, nil) }()
	wg.Wait()
	if len(ra) != 1 || ra[0] != 7 || len(rb) != 1 || rb[0] != 7 {
		t.Fatalf("abstain aggregation = %v / %v, want [7] both", ra, rb)
	}
}

// quantAggregator wraps an in-process aggregator with the wire codec's
// float32 quantization, so a reference fleet sees exactly what a TCP fleet
// sees: contributions quantize on submit (request payload), means quantize
// on the way back (reply payload).
type quantAggregator struct{ inner sparse.Aggregator }

func quantizeVec(v []float64) []float64 {
	if v == nil {
		return nil
	}
	q := make([]float64, len(v))
	for i, x := range v {
		q[i] = sparse.QuantizeWire(x)
	}
	return q
}

func (a quantAggregator) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	res, err := a.inner.AggregateModel(clientID, round, quantizeVec(values))
	return quantizeVec(res), err
}

func (a quantAggregator) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	res, err := a.inner.AggregateError(clientID, round, quantizeVec(values))
	return quantizeVec(res), err
}

// TestDistributedMatchesInProcess runs the same FedSU training once through
// the in-process engine and once through real TCP clients, and requires
// bit-identical final models. The reference side routes through
// quantAggregator, the model of the wire's float32 quantization — the TCP
// side must match it to the last bit.
func TestDistributedMatchesInProcess(t *testing.T) {
	const (
		numClients = 3
		rounds     = 10
		localIters = 2
		batch      = 4
		seed       = int64(9)
	)
	ds := data.Synthesize(data.SynthConfig{
		Name: "tcp", Channels: 1, Size: 8, Classes: 3,
		Samples: 192, Noise: 0.2, Jitter: 1, Seed: 21,
	})
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 3, Seed: 4}, 16)
	}
	shards := data.PartitionDirichlet(ds, numClients, 1.0, seed)
	opts := core.DefaultOptions()

	// Reference: the same client loop as the TCP side, sharing the
	// in-process fl.Server directly (netem-driven participation would
	// complicate bit-exact equality).
	refServer := fl.NewServer(numClients)
	runFleet := func(agg func(i int) sparse.Aggregator, begin func(round int)) [][]float64 {
		clients := make([]*fl.Client, numClients)
		for i := 0; i < numClients; i++ {
			model := builder()
			mgr, err := core.NewManager(i, model.Size(), agg(i), opts)
			if err != nil {
				t.Fatal(err)
			}
			clients[i] = fl.NewClient(i, model, opt.NewSGD(0.05), shards[i], mgr, seed+int64(i)*7919)
		}
		for k := 0; k < rounds; k++ {
			if begin != nil {
				begin(k)
			}
			var wg sync.WaitGroup
			for _, c := range clients {
				wg.Add(1)
				go func(c *fl.Client) {
					defer wg.Done()
					c.TrainLocal(localIters, batch)
					if _, err := c.SyncRound(k, true); err != nil {
						t.Error(err)
					}
				}(c)
			}
			wg.Wait()
		}
		out := make([][]float64, numClients)
		for i, c := range clients {
			out[i] = c.Model().Vector()
		}
		return out
	}

	refVecs := runFleet(
		func(int) sparse.Aggregator { return quantAggregator{inner: refServer} },
		func(k int) { refServer.BeginRound(k, []int{0, 1, 2}) },
	)

	// TCP fleet.
	size := builder().Size()
	addr := startCoordinator(t, numClients, size)
	conns := make([]*Client, numClients)
	for range conns {
		c, err := Dial(addr, "client")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[c.ClientID()] = c
	}
	tcpVecs := runFleet(
		func(i int) sparse.Aggregator { return conns[i] },
		nil,
	)

	for i := range refVecs {
		for j := range refVecs[i] {
			if refVecs[i][j] != tcpVecs[i][j] {
				t.Fatalf("client %d param %d: in-process %v != TCP %v",
					i, j, refVecs[i][j], tcpVecs[i][j])
			}
		}
	}
}
