package flrpc

import (
	"math"
	"sync"
	"testing"
	"time"

	"fedsu/internal/fl"
)

func startRelay(t *testing.T, cfg RelayConfig) (*Relay, string) {
	t.Helper()
	r, err := NewRelay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	l, err := Listen("127.0.0.1:0", r.Coordinator())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return r, l.Addr().String()
}

func tierVec(id, size int) []float64 {
	v := make([]float64, size)
	for i := range v {
		v[i] = math.Sin(float64(id*size+i)) * 1e3
	}
	return v
}

// TestRelayTreeBitIdentity: eight clients aggregated through two
// leaf-aggregator relays under a tree coordinator must see the same
// global, to the bit, as eight clients against one flat coordinator —
// the distributed tier deployment cannot perturb the canonical fold.
// One client abstains so the partial weight path is exercised too.
func TestRelayTreeBitIdentity(t *testing.T) {
	const n, size, fanout = 8, 300, 4
	vecs := make([][]float64, n)
	for id := range vecs {
		if id == 5 {
			continue // abstainer
		}
		vecs[id] = tierVec(id, size)
	}

	run := func(submit func(global int) ([]float64, error)) [][]float64 {
		out := make([][]float64, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				out[g], errs[g] = submit(g)
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("client %d: %v", g, err)
			}
		}
		return out
	}

	// Flat reference.
	_, flatAddr := startCoordinatorWith(t, Config{NumClients: n, ModelSize: size})
	flatClients := make([]*Client, n)
	for g := 0; g < n; g++ {
		cl, err := Dial(flatAddr, "flat")
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		flatClients[cl.ClientID()] = cl
	}
	flatRes := run(func(g int) ([]float64, error) {
		return flatClients[g].AggregateModel(g, 0, vecs[g])
	})

	// Tree deployment: root + two relays of four members each.
	root, rootAddr := startCoordinatorWith(t, Config{NumClients: n, ModelSize: size, Fanout: fanout})
	relayA, addrA := startRelay(t, RelayConfig{Upstream: rootAddr, BlockSize: fanout})
	relayB, addrB := startRelay(t, RelayConfig{Upstream: rootAddr, BlockSize: fanout})
	if relayA.BaseID() != 0 || relayB.BaseID() != fanout {
		t.Fatalf("relay bases = %d/%d, want 0/%d", relayA.BaseID(), relayB.BaseID(), fanout)
	}
	treeClients := make([]*Client, n)
	for g := 0; g < n; g++ {
		addr, base := addrA, 0
		if g >= fanout {
			addr, base = addrB, fanout
		}
		cl, err := Dial(addr, "member")
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		treeClients[base+cl.ClientID()] = cl
	}
	treeRes := run(func(g int) ([]float64, error) {
		return treeClients[g].AggregateModel(treeClients[g].ClientID(), 0, vecs[g])
	})

	for g := 0; g < n; g++ {
		if len(treeRes[g]) != len(flatRes[g]) {
			t.Fatalf("client %d: result length %d vs flat %d", g, len(treeRes[g]), len(flatRes[g]))
		}
		for i := range treeRes[g] {
			if math.Float64bits(treeRes[g][i]) != math.Float64bits(flatRes[g][i]) {
				t.Fatalf("client %d elem %d: tree %x vs flat %x — relay tree broke bit-identity", g, i, math.Float64bits(treeRes[g][i]), math.Float64bits(flatRes[g][i]))
			}
		}
	}
	st := root.TierStats()
	if st.ForwardedPartials != 2 {
		t.Fatalf("forwarded partials = %d, want 2", st.ForwardedPartials)
	}
	if got := root.Counters().Get("partials_rx"); got != 2 {
		t.Fatalf("partials_rx = %d, want 2", got)
	}
	// The root ingested two partial payloads, not eight member uploads.
	if rx := root.Counters().Get("agg_rx_bytes"); rx <= 0 {
		t.Fatalf("agg_rx_bytes = %d", rx)
	}
	// Relays accounted their member traffic upward.
	if tr := root.Counters().Get("relay_traffic_bytes"); tr <= 0 {
		t.Fatalf("relay_traffic_bytes = %d", tr)
	}
}

// TestBlockJoinValidation: block reservations demand a tree coordinator,
// fanout alignment, and capacity.
func TestBlockJoinValidation(t *testing.T) {
	_, flatAddr := startCoordinatorWith(t, Config{NumClients: 4, ModelSize: 8})
	if _, err := DialWith(flatAddr, DialConfig{Name: "r", BlockSize: 2}); err == nil {
		t.Fatal("block join against a flat coordinator accepted")
	}

	_, treeAddr := startCoordinatorWith(t, Config{NumClients: 8, ModelSize: 8, Fanout: 4})
	// A direct client first breaks alignment for the next block.
	direct, err := Dial(treeAddr, "direct")
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if _, err := DialWith(treeAddr, DialConfig{Name: "r", BlockSize: 4}); err == nil {
		t.Fatal("misaligned block join accepted")
	}
	// Oversized blocks are rejected.
	big, err := NewCoordinatorWith(Config{NumClients: 16, ModelSize: 8, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reply JoinReply
	if err := big.Join(JoinArgs{Name: "r", BlockSize: 5}, &reply); err == nil {
		t.Fatal("block larger than fanout accepted")
	}
	// Async + tree is rejected at construction.
	if _, err := NewCoordinatorWith(Config{NumClients: 4, ModelSize: 8, Fanout: 2, Async: fl.AsyncConfig{K: 2}}); err == nil {
		t.Fatal("tree+async coordinator accepted")
	}
}

// TestRelayDeadlineEviction: a member missing the relay's barrier
// deadline is evicted at the relay, the block forwards a reduced-weight
// partial, and the root publishes the survivors' mean.
func TestRelayDeadlineEviction(t *testing.T) {
	root, rootAddr := startCoordinatorWith(t, Config{NumClients: 8, ModelSize: 1, Fanout: 4, Deadline: 30 * time.Second})
	relayA, addrA := startRelay(t, RelayConfig{Upstream: rootAddr, BlockSize: 4, Deadline: 50 * time.Millisecond})
	_, addrB := startRelay(t, RelayConfig{Upstream: rootAddr, BlockSize: 4})
	clients := make([]*Client, 8)
	for g := 0; g < 8; g++ {
		addr, base := addrA, 0
		if g >= 4 {
			addr, base = addrB, 4
		}
		cl, err := Dial(addr, "m")
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[base+cl.ClientID()] = cl
	}
	// Global ids 0..2 and 4..7 submit id+1; id 3 stays silent past relay
	// A's barrier deadline, so A forwards a weight-3 partial.
	var wg sync.WaitGroup
	res := make([][]float64, 8)
	for g := 0; g < 8; g++ {
		if g == 3 {
			continue
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var err error
			res[g], err = clients[g].AggregateModel(clients[g].ClientID(), 0, []float64{float64(g + 1)})
			if err != nil {
				t.Errorf("member %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	// The reply payload crosses the wire float32-encoded.
	want := float64(float32((1.0 + 2 + 3 + 5 + 6 + 7 + 8) / 7.0))
	for g, r := range res {
		if g == 3 {
			continue
		}
		if len(r) != 1 || r[0] != want {
			t.Fatalf("member %d got %v, want [%v]", g, r, want)
		}
	}
	if ev := relayA.Coordinator().Evicted(); len(ev) != 1 || ev[0] != 3 {
		t.Fatalf("relay evicted = %v, want [3]", ev)
	}
	// The root saw two full-block partials, one carrying reduced weight;
	// its own eviction list stays empty — the fault was absorbed in-tier.
	if ev := root.Evicted(); len(ev) != 0 {
		t.Fatalf("root evicted = %v, want none", ev)
	}
	if st := root.TierStats(); st.ForwardedPartials != 2 {
		t.Fatalf("forwarded partials = %d, want 2", st.ForwardedPartials)
	}
}
