package flrpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"testing"
)

// FuzzAggWire is the regression fuzz for the nil-vs-abstain wire bug fixed
// in the fault-tolerance PR: gob flattens a non-nil empty []float64 to nil
// in transit, so Abstain (requests) and Nil (replies) are the wire truth
// and contribution() must reconstruct the semantic payload exactly, in
// both directions, for every value pattern including NaNs and
// signed zeros.
func FuzzAggWire(f *testing.F) {
	f.Add(0, 3, "model", []byte{}, true)  // abstention
	f.Add(1, 0, "error", []byte{}, false) // empty-but-contributing: the original bug
	f.Add(2, 7, "model", floatBytes(1.5, -0.25, 0), false)
	f.Add(3, 9, "error", floatBytes(math.NaN(), math.Inf(-1), math.Copysign(0, -1)), false)
	f.Fuzz(func(t *testing.T, clientID, round int, kind string, raw []byte, abstain bool) {
		var values []float64
		if !abstain {
			values = bytesToFloats(raw)
		}
		args := AggArgs{ClientID: clientID, Round: round, Kind: kind, Values: values, Abstain: values == nil}
		var gotArgs AggArgs
		gobRoundTrip(t, &args, &gotArgs)
		checkContribution(t, "request", values, gotArgs.contribution())

		reply := AggReply{Values: values, Nil: values == nil}
		var gotReply AggReply
		gobRoundTrip(t, &reply, &gotReply)
		checkContribution(t, "reply", values, gotReply.contribution())
	})
}

// checkContribution asserts the normalized wire payload is semantically
// identical to what was sent: nil stays nil, empty stays empty (non-nil),
// and every float64 survives bit-for-bit.
func checkContribution(t *testing.T, dir string, sent, got []float64) {
	t.Helper()
	if sent == nil {
		if got != nil {
			t.Fatalf("%s: sent nil (abstain/no-contributors), received %v", dir, got)
		}
		return
	}
	if got == nil {
		t.Fatalf("%s: empty contribution collapsed to nil across the wire", dir)
	}
	if len(got) != len(sent) {
		t.Fatalf("%s: sent %d values, received %d", dir, len(sent), len(got))
	}
	for i := range sent {
		if math.Float64bits(got[i]) != math.Float64bits(sent[i]) {
			t.Fatalf("%s: value %d: sent %x, received %x", dir, i, math.Float64bits(sent[i]), math.Float64bits(got[i]))
		}
	}
}

// gobRoundTrip encodes src and decodes into dst, the transform net/rpc's
// gob codec applies to every collective call.
func gobRoundTrip(t *testing.T, src, dst any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(src); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(dst); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
}

// bytesToFloats reinterprets raw fuzz bytes as float64s (always non-nil:
// the fuzzer's empty input is the empty contribution, the regression
// case).
func bytesToFloats(raw []byte) []float64 {
	values := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 {
		values = append(values, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		raw = raw[8:]
	}
	return values
}

// floatBytes builds a seed payload from explicit float64s.
func floatBytes(vs ...float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}
