package flrpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"math"
	"testing"

	"fedsu/internal/sparse"
)

// FuzzAggWire fuzzes the binary collective wire. The rpc envelope is gob
// but the vectors travel as sparse vector-codec payloads, so two
// invariants are checked for every value pattern (NaNs, signed zeros,
// subnormals included):
//
//  1. the nil-vs-abstain distinction survives — gob flattens a non-nil
//     empty slice to nil in transit (the bug fixed in the fault-tolerance
//     PR), so Abstain (requests) and Nil (replies) are the wire truth and
//     a zero-length contribution must come back empty but non-nil;
//  2. every value survives as its QuantizeWire image — zeros elide to +0,
//     everything else rounds through float32, bit-for-bit reproducibly.
func FuzzAggWire(f *testing.F) {
	f.Add(0, 3, "model", []byte{}, true)  // abstention
	f.Add(1, 0, "error", []byte{}, false) // empty-but-contributing: the original bug
	f.Add(2, 7, "model", floatBytes(1.5, -0.25, 0), false)
	f.Add(3, 9, "error", floatBytes(math.NaN(), math.Inf(-1), math.Copysign(0, -1)), false)
	f.Fuzz(func(t *testing.T, clientID, round int, kind string, raw []byte, abstain bool) {
		var values []float64
		if !abstain {
			values = bytesToFloats(raw)
		}
		args := AggArgs{ClientID: clientID, Round: round, Kind: kind, Abstain: values == nil}
		if values != nil {
			args.Payload = sparse.EncodeVectorPayload(values)
		}
		var gotArgs AggArgs
		gobRoundTrip(t, &args, &gotArgs)
		got, err := gotArgs.contribution(nil, len(values))
		if err != nil {
			t.Fatalf("request decode: %v", err)
		}
		checkContribution(t, "request", values, got)

		reply := AggReply{Nil: values == nil}
		if values != nil {
			reply.Payload = sparse.EncodeVectorPayload(values)
		}
		var gotReply AggReply
		gobRoundTrip(t, &reply, &gotReply)
		got, err = gotReply.contribution(len(values))
		if err != nil {
			t.Fatalf("reply decode: %v", err)
		}
		checkContribution(t, "reply", values, got)
	})
}

// checkContribution asserts the decoded wire payload is semantically
// identical to what was sent: nil stays nil, empty stays empty (non-nil),
// and every value arrives as its QuantizeWire image, bit-for-bit.
func checkContribution(t *testing.T, dir string, sent, got []float64) {
	t.Helper()
	if sent == nil {
		if got != nil {
			t.Fatalf("%s: sent nil (abstain/no-contributors), received %v", dir, got)
		}
		return
	}
	if got == nil {
		t.Fatalf("%s: empty contribution collapsed to nil across the wire", dir)
	}
	if len(got) != len(sent) {
		t.Fatalf("%s: sent %d values, received %d", dir, len(sent), len(got))
	}
	for i := range sent {
		want := sparse.QuantizeWire(sent[i])
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("%s: value %d: sent %x, want %x on arrival, received %x",
				dir, i, math.Float64bits(sent[i]), math.Float64bits(want), math.Float64bits(got[i]))
		}
	}
}

// gobRoundTrip encodes src and decodes into dst, the transform net/rpc's
// gob codec applies to every collective call.
func gobRoundTrip(t *testing.T, src, dst any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(src); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(dst); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
}

// bytesToFloats reinterprets raw fuzz bytes as float64s (always non-nil:
// the fuzzer's empty input is the empty contribution, the regression
// case).
func bytesToFloats(raw []byte) []float64 {
	values := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 {
		values = append(values, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		raw = raw[8:]
	}
	return values
}

// floatBytes builds a seed payload from explicit float64s.
func floatBytes(vs ...float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}
