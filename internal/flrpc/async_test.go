package flrpc

import (
	"testing"

	"fedsu/internal/fl"
	"fedsu/internal/sparse"
)

// Tests for the buffered-async wire path: no per-round barrier bootstrap,
// abstentions costing header-only bytes, the nil-vs-abstain distinction
// surviving the gob envelope, and bit-exact agreement with an in-process
// async fold fed the same (quantized) submissions in the same order.

func startAsyncCoordinator(t *testing.T, n, size int, acfg fl.AsyncConfig) (addr string, coord *Coordinator) {
	t.Helper()
	coord, err := NewCoordinatorWith(Config{NumClients: n, ModelSize: size, Async: acfg})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Listen("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l.Addr().String(), coord
}

// TestAsyncOverTCP: submissions never block on a barrier; the K-th apply
// becomes visible to the next caller, and nobody needs BeginRound.
func TestAsyncOverTCP(t *testing.T) {
	addr, coord := startAsyncCoordinator(t, 2, 2, fl.AsyncConfig{K: 2, MaxStaleness: -1, StalenessWeight: 1})
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, "b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// First submission buffers (1 of K=2) and returns the nil bootstrap
	// global — sequentially, with no second submission in flight: in
	// barrier mode this call would hang forever.
	ra, err := a.AggregateModel(a.ClientID(), 0, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ra != nil {
		t.Fatalf("first async submission returned %v, want nil (no apply yet)", ra)
	}
	// Second submission completes the buffer and receives the applied mean.
	rb, err := b.AggregateModel(b.ClientID(), 0, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rb) != 2 || rb[0] != 2 || rb[1] != 4 {
		t.Fatalf("applied async mean = %v, want [2 4]", rb)
	}
	if coord.AsyncVersion() != 1 {
		t.Fatalf("AsyncVersion = %d, want 1", coord.AsyncVersion())
	}
	// A mid-buffer submission still gets the current global back.
	ra, err = a.AggregateModel(a.ClientID(), 7, []float64{5, 5}) // round arg is irrelevant
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != 2 || ra[0] != 2 || ra[1] != 4 {
		t.Fatalf("mid-buffer pull = %v, want the version-1 global [2 4]", ra)
	}
}

// TestAsyncAbstainHeaderOnlyWire: an abstaining client ships zero payload
// bytes (the message costs HeaderBytes of framing only) and, before the
// first apply, receives zero payload bytes back.
func TestAsyncAbstainHeaderOnlyWire(t *testing.T) {
	addr, coord := startAsyncCoordinator(t, 2, 4, fl.AsyncConfig{K: 2})
	a, err := Dial(addr, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	if sparse.MessageBytes(nil) != sparse.HeaderBytes {
		t.Fatalf("MessageBytes(nil) = %d, want HeaderBytes %d", sparse.MessageBytes(nil), sparse.HeaderBytes)
	}
	res, err := a.AggregateModel(a.ClientID(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("abstention before first apply returned %v, want nil", res)
	}
	if got := a.Counters().Get("agg_tx_bytes"); got != 0 {
		t.Errorf("abstention charged %d payload tx bytes, want 0 (header-only)", got)
	}
	if got := a.Counters().Get("agg_rx_bytes"); got != 0 {
		t.Errorf("nil global charged %d payload rx bytes, want 0", got)
	}
	if got := coord.Counters().Get("agg_rx_bytes"); got != 0 {
		t.Errorf("coordinator counted %d rx payload bytes for an abstention", got)
	}
	if coord.AsyncVersion() != 0 {
		t.Fatal("abstention advanced the async version")
	}
}

// TestAsyncNilVsAbstainDistinct: the wire must keep "nil result" (no apply
// yet) and "empty-but-present vector" distinct, and an abstainer after the
// first apply receives the real global, not nil.
func TestAsyncNilVsAbstainDistinct(t *testing.T) {
	addr, _ := startAsyncCoordinator(t, 3, 1, fl.AsyncConfig{K: 2})
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()

	// Abstain before any apply: nil, and distinguishable from a zero vector.
	res, err := a.AggregateModel(a.ClientID(), 0, nil)
	if err != nil || res != nil {
		t.Fatalf("pre-apply abstention = %v, %v; want nil, nil", res, err)
	}
	// Two contributions apply version 1 with a zero-valued global: the
	// abstainer must now receive a NON-nil length-1 zero vector — if the
	// wire conflated nil with empty, this is exactly where it would break.
	if _, err := a.AggregateModel(a.ClientID(), 0, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AggregateModel(b.ClientID(), 0, []float64{0}); err != nil {
		t.Fatal(err)
	}
	res, err = a.AggregateModel(a.ClientID(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res) != 1 || res[0] != 0 {
		t.Fatalf("post-apply abstention = %v, want the non-nil zero global [0]", res)
	}
}

// TestAsyncWireMatchesInProcess: the TCP async fold must agree bit-for-bit
// with an in-process fl.Server fed the identical submission sequence —
// after accounting for the codec's wire quantization on both submit and
// reply, exactly like the synchronous TestDistributedMatchesInProcess.
func TestAsyncWireMatchesInProcess(t *testing.T) {
	const size = 33
	acfg := fl.AsyncConfig{K: 2, MaxStaleness: 4, StalenessWeight: 0.5}

	// Reference: in-process server with quantized submissions.
	ref := fl.NewServer(2)
	if err := ref.SetAsync(acfg); err != nil {
		t.Fatal(err)
	}

	addr, coord := startAsyncCoordinator(t, 2, size, acfg)
	a, _ := Dial(addr, "a")
	defer a.Close()
	b, _ := Dial(addr, "b")
	defer b.Close()
	clients := []*Client{a, b}

	vec := func(clientID, cycle int) []float64 {
		v := make([]float64, size)
		for i := range v {
			v[i] = float64((clientID+1)*(i+3)) * 0.125 * float64(cycle+1) // exact in float32
		}
		return v
	}

	// A fixed serialized schedule with a staleness gap: client 0 submits
	// twice in a row, then client 1 (one version behind by then).
	schedule := []int{0, 1, 0, 0, 1, 1, 0, 1}
	var lastWire, lastRef []float64
	for cycle, id := range schedule {
		v := vec(id, cycle)
		wire, err := clients[id].AggregateModel(clients[id].ClientID(), 0, v)
		if err != nil {
			t.Fatal(err)
		}
		inproc, err := ref.AggregateModel(id, 0, quantizeVec(v))
		if err != nil {
			t.Fatal(err)
		}
		lastWire, lastRef = wire, quantizeVec(inproc)
		if (wire == nil) != (lastRef == nil) {
			t.Fatalf("cycle %d: wire nil=%v, in-process nil=%v", cycle, wire == nil, inproc == nil)
		}
	}
	if lastWire == nil {
		t.Fatal("schedule produced no apply")
	}
	for i := range lastWire {
		if lastWire[i] != lastRef[i] {
			t.Fatalf("wire global deviates from quantized in-process fold at %d: %v vs %v",
				i, lastWire[i], lastRef[i])
		}
	}
	if coord.AsyncVersion() != ref.AsyncVersion() {
		t.Fatalf("version mismatch: wire %d, in-process %d", coord.AsyncVersion(), ref.AsyncVersion())
	}
	if coord.StaleDropCount() != ref.StaleDropCount() {
		t.Fatalf("stale drops: wire %d, in-process %d", coord.StaleDropCount(), ref.StaleDropCount())
	}
}
