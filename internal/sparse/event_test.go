package sparse

import (
	"math"
	"testing"
)

// recordingSyncer is a fake strategy capturing the contributor flag the
// wrapper hands down.
type recordingSyncer struct {
	name  string
	calls []bool // contributor flag per call
}

func (r *recordingSyncer) Name() string { return r.name }

func (r *recordingSyncer) Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	r.calls = append(r.calls, contributor)
	return local, Traffic{}, nil
}

func TestEventTriggerFirstSyncAlwaysContributes(t *testing.T) {
	inner := &recordingSyncer{name: "fedavg"}
	e := NewEventTrigger(inner, 100) // huge threshold
	if _, _, err := e.Sync(0, []float64{1, 2}, true); err != nil {
		t.Fatal(err)
	}
	if len(inner.calls) != 1 || !inner.calls[0] {
		t.Fatalf("first sync calls = %v, want one contributing call", inner.calls)
	}
	if tr, sup := e.TriggerCounts(); tr != 1 || sup != 0 {
		t.Fatalf("counts = %d/%d, want 1 triggered, 0 suppressed", tr, sup)
	}
}

func TestEventTriggerSuppressesBelowThreshold(t *testing.T) {
	inner := &recordingSyncer{name: "fedavg"}
	e := NewEventTrigger(inner, 1.0)
	base := []float64{1, 1, 1, 1}
	if _, _, err := e.Sync(0, base, true); err != nil { // establishes the reference
		t.Fatal(err)
	}
	// Drift 0.4 < 1.0: gated off, inner sees contributor=false.
	moved := []float64{1.4, 1, 1, 1}
	if _, _, err := e.Sync(1, moved, true); err != nil {
		t.Fatal(err)
	}
	if inner.calls[1] {
		t.Fatal("below-threshold round reached the strategy as a contributor")
	}
	if tr, sup := e.TriggerCounts(); tr != 1 || sup != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", tr, sup)
	}
	// Drift 1.5 > 1.0: passes.
	if _, _, err := e.Sync(2, []float64{2.5, 1, 1, 1}, true); err != nil {
		t.Fatal(err)
	}
	if !inner.calls[2] {
		t.Fatal("above-threshold round did not contribute")
	}
}

// TestEventTriggerDriftAccumulates: per-round changes each below the
// threshold must compound — the reference only advances on an actual
// offer, so a slowly-moving client eventually uploads.
func TestEventTriggerDriftAccumulates(t *testing.T) {
	inner := &recordingSyncer{name: "fedavg"}
	e := NewEventTrigger(inner, 1.0)
	v := []float64{0, 0, 0, 0}
	if _, _, err := e.Sync(0, v, true); err != nil { // reference = 0
		t.Fatal(err)
	}
	// Step 0.3 per round along one axis: rounds 1..3 have drift 0.3, 0.6,
	// 0.9 (all suppressed); round 4 reaches 1.2 and fires.
	contributions := 0
	for round := 1; round <= 4; round++ {
		v = []float64{0.3 * float64(round), 0, 0, 0}
		if _, _, err := e.Sync(round, v, true); err != nil {
			t.Fatal(err)
		}
		if inner.calls[round] {
			contributions++
			if round != 4 {
				t.Fatalf("triggered at round %d (drift %.1f), want round 4", round, 0.3*float64(round))
			}
		}
	}
	if contributions != 1 {
		t.Fatalf("%d contributions over the ramp, want exactly 1", contributions)
	}
	if tr, sup := e.TriggerCounts(); tr != 2 || sup != 3 {
		t.Fatalf("counts = %d/%d, want 2 triggered / 3 suppressed", tr, sup)
	}
}

// TestEventTriggerReferenceAdvancesOnlyOnOffer: after an upload, drift
// measures from the newly offered vector, not the original one.
func TestEventTriggerReferenceAdvancesOnlyOnOffer(t *testing.T) {
	inner := &recordingSyncer{name: "fedavg"}
	e := NewEventTrigger(inner, 1.0)
	e.Sync(0, []float64{0, 0}, true)
	e.Sync(1, []float64{2, 0}, true) // drift 2 -> offers, ref = (2, 0)
	if !inner.calls[1] {
		t.Fatal("round 1 should have contributed")
	}
	// (2.5, 0) is far from the ORIGINAL reference but only 0.5 from the
	// advanced one: must be suppressed.
	e.Sync(2, []float64{2.5, 0}, true)
	if inner.calls[2] {
		t.Fatal("reference did not advance with the round-1 offer")
	}
}

// TestEventTriggerQuorumAbstentionUntouched: a round where the engine
// already marked the client non-contributor passes through without
// counting or moving the reference.
func TestEventTriggerQuorumAbstentionUntouched(t *testing.T) {
	inner := &recordingSyncer{name: "fedavg"}
	e := NewEventTrigger(inner, 1.0)
	e.Sync(0, []float64{0, 0}, true)
	e.Sync(1, []float64{5, 0}, false) // out of quorum: no gating decision
	if inner.calls[1] {
		t.Fatal("non-quorum round reached the strategy as a contributor")
	}
	if tr, sup := e.TriggerCounts(); tr != 1 || sup != 0 {
		t.Fatalf("counts = %d/%d, want 1/0 (quorum abstention is not a suppression)", tr, sup)
	}
	// Reference still (0,0): the big move at round 1 was never offered, so
	// round 2 fires on it.
	e.Sync(2, []float64{5, 0}, true)
	if !inner.calls[2] {
		t.Fatal("drift accumulated during quorum abstention was lost")
	}
}

func TestEventTriggerZeroThresholdPassesEverything(t *testing.T) {
	inner := &recordingSyncer{name: "fedavg"}
	e := NewEventTrigger(inner, 0)
	for round := 0; round < 3; round++ {
		if _, _, err := e.Sync(round, []float64{1, 2}, true); err != nil {
			t.Fatal(err)
		}
		if !inner.calls[round] {
			t.Fatalf("round %d gated despite zero threshold", round)
		}
	}
}

func TestEventTriggerLengthMismatch(t *testing.T) {
	e := NewEventTrigger(&recordingSyncer{name: "fedavg"}, 1.0)
	e.Sync(0, []float64{1, 2}, true)
	if _, _, err := e.Sync(1, []float64{1, 2, 3}, true); err == nil {
		t.Fatal("length change accepted silently")
	}
}

func TestUnwrapSyncerPeelsMiddleware(t *testing.T) {
	inner := &recordingSyncer{name: "cmfl"}
	wrapped := NewEventTrigger(NewEventTrigger(inner, 0.5), 0.25)
	if got := UnwrapSyncer(wrapped); got != Syncer(inner) {
		t.Fatalf("UnwrapSyncer returned %T, want the inner strategy", got)
	}
	if wrapped.Name() != "cmfl" {
		t.Fatalf("Name() = %q, want the delegated %q", wrapped.Name(), "cmfl")
	}
	// A bare strategy unwraps to itself.
	if got := UnwrapSyncer(inner); got != Syncer(inner) {
		t.Fatal("UnwrapSyncer changed a non-wrapped strategy")
	}
}

func TestDriftNorm(t *testing.T) {
	a := []float64{3, 0, 4}
	b := []float64{0, 0, 0}
	if got := driftNorm(a, b); math.Abs(got-5) > 1e-15 {
		t.Fatalf("driftNorm = %v, want 5", got)
	}
}
