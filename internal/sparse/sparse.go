// Package sparse defines the client-side synchronization-strategy interface
// of the federated engine and implements the paper's baseline algorithms:
// FedAvg (full synchronization), CMFL (relevance-gated uploads), and APF
// (adaptive parameter freezing). The paper's own algorithm, FedSU, lives in
// internal/core and implements the same interface.
package sparse

import (
	"context"
	"fmt"
)

// BytesPerValue is the wire size of one parameter value. Models train in
// float64 but synchronize as 32-bit floats, matching the paper's setup.
const BytesPerValue = 4

// HeaderBytes approximates the fixed per-message framing cost (round id,
// client id, lengths, checksums).
const HeaderBytes = 64

// Traffic accounts one client's communication during one synchronization.
type Traffic struct {
	// UpBytes and DownBytes are the payload sizes transferred.
	UpBytes, DownBytes int
	// SyncedParams is the number of parameter values exchanged through the
	// server this round (model values, not error-feedback values).
	SyncedParams int
	// CheckedParams is the number of error-feedback values exchanged
	// (FedSU only).
	CheckedParams int
	// TotalParams is the model size, the denominator for ratios.
	TotalParams int
	// FullBytes is the full-model exchange reference cost this traffic is
	// measured against — one dense uplink plus one dense downlink under the
	// negotiated wire chain (Wire.FullRef). Zero means the strategy predates
	// chain accounting; SparsificationRatio then falls back to the legacy
	// default-wire reference.
	FullBytes int
}

// Add accumulates o into t.
func (t *Traffic) Add(o Traffic) {
	t.UpBytes += o.UpBytes
	t.DownBytes += o.DownBytes
	t.SyncedParams += o.SyncedParams
	t.CheckedParams += o.CheckedParams
	t.TotalParams += o.TotalParams
	t.FullBytes += o.FullBytes
}

// SparsificationRatio is the fraction of a full-model exchange saved this
// round, computed from actual bytes so FedSU's error-feedback traffic is
// charged against its savings: 1 − bytes/(full-model bytes). The reference
// cost is the dense wire encoding of the full model in each direction under
// the same chain the measured bytes shipped with (FullBytes) — comparing
// chain-compressed traffic against the uncompressed dense cost would let a
// quantizing chain masquerade as sparsification. Traffic recorded before
// chain accounting (FullBytes == 0) keeps the legacy default-wire reference.
func (t Traffic) SparsificationRatio() float64 {
	if t.TotalParams == 0 {
		return 0
	}
	full := t.FullBytes
	if full == 0 {
		full = 2 * DenseMessageBytes(t.TotalParams)
	}
	used := t.UpBytes + t.DownBytes
	r := 1 - float64(used)/float64(full)
	if r < 0 {
		return 0
	}
	return r
}

// Aggregator is the server-side collective the strategies call into. All
// clients of a round must issue the same sequence of collective calls; a
// nil values slice abstains from contributing while still participating in
// the collective (used by CMFL's irrelevant clients and by clients outside
// the round's participation quorum).
type Aggregator interface {
	// AggregateModel submits model values for element-wise averaging across
	// the round's contributors and returns the average. The returned slice
	// is shared and must not be mutated.
	AggregateModel(clientID, round int, values []float64) ([]float64, error)
	// AggregateError does the same for FedSU error-feedback vectors.
	AggregateError(clientID, round int, values []float64) ([]float64, error)
}

// Syncer is the per-client synchronization strategy: it consumes the
// client's post-training parameter vector and produces the vector the next
// round starts from, issuing whatever collective calls the strategy needs.
//
// contributor reports whether this client is inside the round's
// participation quorum; non-contributors follow the identical control flow
// (so their strategy state stays consistent with the fleet) but abstain
// from the collectives.
type Syncer interface {
	// Name identifies the strategy ("fedavg", "cmfl", "apf", "fedsu").
	Name() string
	Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error)
}

// ContextAggregator is an optional extension of Aggregator for transports
// that can abort a blocked collective: the wait honours ctx cancellation
// (and, over a network, drives retry/reconnect). Strategies detect it via
// the AggModel/AggError helpers; aggregators that do not implement it are
// called through the plain interface and block until the barrier resolves.
type ContextAggregator interface {
	AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error)
	AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error)
}

// AggModel submits to the model collective, routing through the
// aggregator's context-aware path when it has one.
func AggModel(ctx context.Context, agg Aggregator, clientID, round int, values []float64) ([]float64, error) {
	if ca, ok := agg.(ContextAggregator); ok {
		return ca.AggregateModelCtx(ctx, clientID, round, values)
	}
	return agg.AggregateModel(clientID, round, values)
}

// AggError submits to the error collective, routing through the
// aggregator's context-aware path when it has one.
func AggError(ctx context.Context, agg Aggregator, clientID, round int, values []float64) ([]float64, error) {
	if ca, ok := agg.(ContextAggregator); ok {
		return ca.AggregateErrorCtx(ctx, clientID, round, values)
	}
	return agg.AggregateError(clientID, round, values)
}

// ContextSyncer is an optional extension of Syncer whose synchronization
// accepts a context, propagated into the aggregator's collectives. All
// in-tree strategies implement it.
type ContextSyncer interface {
	Syncer
	SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, Traffic, error)
}

// SyncContext runs a strategy's synchronization with ctx when the strategy
// supports it, falling back to the plain (uncancellable) path otherwise.
func SyncContext(ctx context.Context, s Syncer, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	if cs, ok := s.(ContextSyncer); ok {
		return cs.SyncCtx(ctx, round, local, contributor)
	}
	return s.Sync(round, local, contributor)
}

// Factory builds one Syncer per client. Strategies receive the client id
// and the shared aggregator.
type Factory func(clientID int, size int, agg Aggregator) Syncer

// FedAvg synchronizes the full model every round — the paper's baseline.
type FedAvg struct {
	id   int
	size int
	agg  Aggregator
	wire Wire
}

var _ ContextSyncer = (*FedAvg)(nil)

// NewFedAvg constructs the full-synchronization strategy.
func NewFedAvg(clientID, size int, agg Aggregator) *FedAvg {
	return &FedAvg{id: clientID, size: size, agg: agg}
}

// FedAvgFactory adapts NewFedAvg to the Factory signature.
func FedAvgFactory(clientID, size int, agg Aggregator) Syncer {
	return NewFedAvg(clientID, size, agg)
}

// Name implements Syncer.
func (f *FedAvg) Name() string { return "fedavg" }

// SetWire implements WireSetter: subsequent rounds charge the chain's
// measured message sizes.
func (f *FedAvg) SetWire(w Wire) { f.wire = w }

// Sync implements Syncer.
func (f *FedAvg) Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	return f.SyncCtx(context.Background(), round, local, contributor)
}

// SyncCtx implements ContextSyncer.
func (f *FedAvg) SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	if len(local) != f.size {
		return nil, Traffic{}, fmt.Errorf("fedavg: vector length %d, want %d", len(local), f.size)
	}
	send := local
	if !contributor {
		send = nil
	}
	global, err := AggModel(ctx, f.agg, f.id, round, send)
	if err != nil {
		return nil, Traffic{}, fmt.Errorf("fedavg: aggregate round %d: %w", round, err)
	}
	out := make([]float64, f.size)
	if global == nil {
		copy(out, local)
	} else {
		copy(out, global)
	}
	// Charge what the wire codec actually ships: an abstaining client's
	// uplink is framing only, and a round with no contributors has a
	// header-only downlink.
	tr := Traffic{
		UpBytes:      f.wire.Bytes(send),
		DownBytes:    f.wire.ReplyBytes(global),
		SyncedParams: f.size,
		TotalParams:  f.size,
		FullBytes:    f.wire.FullRef(f.size),
	}
	return out, tr, nil
}
