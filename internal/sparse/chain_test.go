package sparse

import (
	"math"
	"testing"

	"fedsu/internal/sparse/codec"
)

func mustChain(t *testing.T, spec string) *codec.Chain {
	t.Helper()
	ch, err := codec.Parse(spec, 1)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return ch
}

// The zero-value Wire must be byte-identical to the legacy accounting:
// every strategy constructed without SetWire keeps its historical numbers.
func TestWireDefaultMatchesLegacy(t *testing.T) {
	vec := make([]float64, 200)
	for i := 0; i < len(vec); i += 7 {
		vec[i] = float64(i) * 0.25
	}
	var w Wire
	if got, want := w.Bytes(vec), MessageBytes(vec); got != want {
		t.Errorf("Bytes = %d, want MessageBytes %d", got, want)
	}
	if got, want := w.Bytes(nil), HeaderBytes; got != want {
		t.Errorf("Bytes(nil) = %d, want %d", got, want)
	}
	if got, want := w.DenseBytes(200), DenseMessageBytes(200); got != want {
		t.Errorf("DenseBytes = %d, want %d", got, want)
	}
	if w.Enabled() {
		t.Error("zero-value Wire must not report Enabled")
	}
	def := Wire{Chain: codec.Default()}
	if def.Enabled() {
		t.Error("default chain must not report Enabled")
	}
	if got, want := def.Bytes(vec), MessageBytes(vec); got != want {
		t.Errorf("default chain Bytes = %d, want %d", got, want)
	}
}

// Regression for the SparsificationRatio rebase: a full dense exchange
// under a quantized chain ships fewer bytes than the float32 reference,
// so measuring against the legacy denominator would report phantom
// "sparsification" from plain compression. Against the chain's own dense
// cost (Traffic.FullBytes) the ratio is 0 again — the strategy skipped
// nothing.
func TestSparsificationRatioChainRebase(t *testing.T) {
	const n = 1000
	w := Wire{Chain: mustChain(t, "topk,q4")}
	dense := make([]float64, n)
	for i := range dense {
		dense[i] = math.Sin(float64(i)) + 2 // all nonzero
	}
	tr := Traffic{
		UpBytes:     w.Bytes(dense),
		DownBytes:   w.ReplyBytes(dense),
		TotalParams: n,
		FullBytes:   w.FullRef(n),
	}
	if r := tr.SparsificationRatio(); r != 0 {
		t.Errorf("full exchange under q4 chain: ratio = %v, want 0", r)
	}
	// Sanity: the legacy denominator really would have misreported.
	legacy := tr
	legacy.FullBytes = 0
	if r := legacy.SparsificationRatio(); r < 0.3 {
		t.Errorf("legacy reference should overstate savings, got %v", r)
	}
	// And genuine sparsification still registers: a 10%-density upload
	// under the same chain saves real bytes against the chain reference.
	sparseVec := make([]float64, n)
	for i := 0; i < n; i += 10 {
		sparseVec[i] = 1.5
	}
	trS := Traffic{
		UpBytes:     w.Bytes(sparseVec),
		DownBytes:   w.ReplyBytes(sparseVec),
		TotalParams: n,
		FullBytes:   w.FullRef(n),
	}
	if r := trS.SparsificationRatio(); r < 0.4 {
		t.Errorf("10%% density under q4 chain: ratio = %v, want > 0.4", r)
	}
}

func TestTrafficAddFullBytes(t *testing.T) {
	a := Traffic{FullBytes: 100}
	a.Add(Traffic{FullBytes: 40})
	if a.FullBytes != 140 {
		t.Errorf("FullBytes = %d, want 140", a.FullBytes)
	}
}

// ChainAggregator must hand the inner aggregator (and the caller) exactly
// the chain's wire image — what a TCP transport's encode→decode produces
// on each leg — with nil (abstention) passing through untouched.
func TestChainAggregatorAppliesWireImage(t *testing.T) {
	ch := mustChain(t, "topk,q4")
	agg := WrapAggregator(identityAgg{}, ch)
	if _, same := agg.(identityAgg); same {
		t.Fatal("non-default chain must wrap the aggregator")
	}
	vals := []float64{0, 1.25, -3.5, 0, 0.125, 9}
	got, err := agg.AggregateModel(0, 0, vals)
	if err != nil {
		t.Fatal(err)
	}
	// identityAgg echoes its input, so the result is the double image;
	// q4's grid is idempotent, so that equals the single image.
	want := ch.RoundTrip(vals)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Errorf("[%d] = %v, want wire image %v", i, got[i], want[i])
		}
	}
	if out, err := agg.AggregateModel(0, 0, nil); err != nil || out != nil {
		t.Errorf("abstention must stay nil, got %v, %v", out, err)
	}
	if _, err := agg.AggregateError(0, 0, vals); err != nil {
		t.Fatal(err)
	}
	// Default and nil chains must not wrap at all.
	if _, same := WrapAggregator(identityAgg{}, codec.Default()).(identityAgg); !same {
		t.Error("default chain must not wrap the aggregator")
	}
	if _, same := WrapAggregator(identityAgg{}, nil).(identityAgg); !same {
		t.Error("nil chain must not wrap the aggregator")
	}
}

// A strategy bound to a chain-wrapped aggregator plus a chain Wire keeps
// its accounting consistent with what it ships: FedAvg's full exchange
// reports zero sparsification regardless of the chain.
func TestFedAvgWithChain(t *testing.T) {
	ch := mustChain(t, "topk,q4")
	w := Wire{Chain: ch}
	s := NewFedAvg(0, 64, WrapAggregator(identityAgg{}, ch))
	s.SetWire(w)
	local := make([]float64, 64)
	for i := range local {
		local[i] = float64(i%5) + 1 // dense: every value nonzero
	}
	out, tr, err := s.Sync(0, local, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 64 {
		t.Fatalf("len(out) = %d", len(out))
	}
	if tr.FullBytes != w.FullRef(64) {
		t.Errorf("FullBytes = %d, want %d", tr.FullBytes, w.FullRef(64))
	}
	if r := tr.SparsificationRatio(); r != 0 {
		t.Errorf("FedAvg under q4 chain: ratio = %v, want 0", r)
	}

	// An entropy stage, by contrast, is allowed to register savings even
	// on a dense exchange: the reference cost deliberately excludes the
	// data-dependent stages, so bytes the range coder squeezes out show up
	// as genuine wire savings.
	chE := mustChain(t, "topk,q4,rans")
	wE := Wire{Chain: chE}
	sE := NewFedAvg(0, 64, WrapAggregator(identityAgg{}, chE))
	sE.SetWire(wE)
	_, trE, err := sE.Sync(0, local, true)
	if err != nil {
		t.Fatal(err)
	}
	if r := trE.SparsificationRatio(); r <= 0 {
		t.Errorf("entropy stage should register savings on this vector, ratio = %v", r)
	}
}

// TestOneStageChainBytesMatchLegacyEncoder pins the degenerate "topk"
// chain's wire image byte-for-byte to the PR 4 encoder: the chain layer
// must be a pure re-plumbing of the historical codec, not a re-encoding.
func TestOneStageChainBytesMatchLegacyEncoder(t *testing.T) {
	vectors := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1.5, 0, -2.25, 0, 0, 3},
		make([]float64, 300),
	}
	for i := 0; i < 300; i += 11 {
		vectors[4][i] = float64(i) * 0.125
	}
	ch := mustChain(t, "topk")
	for _, v := range vectors {
		if v == nil {
			continue // chains never see nil (abstentions carry no payload)
		}
		legacy := EncodeVectorPayload(v)
		chained := ch.AppendEncode(nil, v)
		if len(legacy) != len(chained) {
			t.Fatalf("len(%v): legacy %d, chain %d", v, len(legacy), len(chained))
		}
		for j := range legacy {
			if legacy[j] != chained[j] {
				t.Fatalf("vector %v byte %d: legacy %#x, chain %#x", v, j, legacy[j], chained[j])
			}
		}
	}
}
