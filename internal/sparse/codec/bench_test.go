package codec

import (
	"fmt"
	"math"
	"testing"
)

// Chain-stage benchmarks: encode cost and output size per chain at the
// densities the strategies actually produce (FedSU uploads run ~0.1–10%
// dense; replies and bootstrap rounds are dense). `make bench-codec`
// runs these with -count 3; BENCH_codec.json tracks the medians.

const benchParams = 1 << 16

// benchVector synthesizes a vector with the given nonzero density whose
// values mimic concatenated layers at different scales (the case the
// per-block grids exist for).
func benchVector(density float64) []float64 {
	vec := make([]float64, benchParams)
	if density <= 0 {
		return vec
	}
	stride := int(1 / density)
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(vec); i += stride {
		layerScale := math.Pow(10, float64((i/8192)%4)-2) // 1e-2 .. 1e1
		vec[i] = math.Sin(float64(i)) * layerScale
	}
	return vec
}

var benchDensities = []struct {
	name    string
	density float64
}{
	{"d0.1%", 0.001},
	{"d1%", 0.01},
	{"d10%", 0.1},
	{"dense", 1},
}

var benchSpecs = []string{"topk", "topk,q4", "topk,q4,rans", "topk,q8", "lowrank", "rans"}

func BenchmarkChainEncode(b *testing.B) {
	for _, spec := range benchSpecs {
		ch, err := Parse(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range benchDensities {
			vec := benchVector(d.density)
			encoded := len(ch.AppendEncode(nil, vec))
			b.Run(fmt.Sprintf("%s/%s", spec, d.name), func(b *testing.B) {
				b.SetBytes(8 * benchParams)
				buf := GetBuf(encoded + 64)
				defer PutBuf(buf)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					*buf = ch.AppendEncode((*buf)[:0], vec)
				}
				// After ResetTimer (it deletes user metrics).
				b.ReportMetric(float64(encoded), "encodedB")
			})
		}
	}
}

func BenchmarkChainRoundTrip(b *testing.B) {
	for _, spec := range []string{"topk", "topk,q4,rans"} {
		ch, err := Parse(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		vec := benchVector(0.01)
		b.Run(spec, func(b *testing.B) {
			b.SetBytes(8 * benchParams)
			for i := 0; i < b.N; i++ {
				ch.RoundTrip(vec)
			}
		})
	}
}
