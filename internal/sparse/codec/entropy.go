package codec

import (
	"encoding/binary"
	"fmt"
)

// The entropy stage ("rans" in chain specs) wraps the inner payload —
// the base stage's varint-delta index stream, quantized symbol packs,
// or factor bytes — in an adaptive byte-level range coder. An adaptive
// order-0 model was chosen over a static-table rANS: FedSU messages are
// small (a 1%-dense round is a few KB), and a static frequency table
// costs 256+ header bytes the adaptive coder never ships. The coder is
// the carry-counting range coder (cache + pending-0xFF scheme) over a
// Fenwick-tree cumulative-frequency model, fully deterministic: both
// ends update the model identically symbol by symbol.
//
// Layout after the 0x06 tag:
//
//	[flag u8: 0 raw, 1 coded][rawLen uvarint][raw or coded bytes]
//
// The raw escape keeps the stage total: when coding expands the payload
// (already-dense float32 bits), the inner bytes ship untouched plus two
// bytes of framing. Decoding recurses on the inner payload's own tag,
// depth-capped by decodeDepth; rawLen is bounded by the worst-case
// encodable payload for maxParams before any allocation.

const (
	entropyRaw   = 0x00
	entropyCoded = 0x01
)

type entropyStage struct{}

// Entropy returns the range-coding stage. It consumes an encoded
// payload; a chain whose vector is still numeric when it reaches this
// stage serializes through the base stage first (the Chain combinator
// inserts that step).
func Entropy() Stage { return entropyStage{} }

func (entropyStage) Name() string { return "rans" }

func (entropyStage) Encode(dst []byte, v Vector) ([]byte, error) {
	if v.Bytes == nil {
		return nil, fmt.Errorf("codec: entropy stage needs an encoded payload (chain inserts the base stage)")
	}
	return appendEntropy(dst, v.Bytes), nil
}

func (entropyStage) Decode(dst []float64, payload []byte, maxParams int) ([]float64, error) {
	if len(payload) < 1 || payload[0] != FormatEntropy {
		return nil, fmt.Errorf("codec: entropy stage expects a 0x06 payload")
	}
	return decodeEntropy(dst, payload[1:], maxParams, 0)
}

// maxInnerPayload is the largest inner payload a maxParams-bounded
// decode can legitimately produce: the index form's worst case of
// ten varint bytes plus four value bytes per entry, plus nested frame
// headers. Anything larger is an allocation bomb.
func maxInnerPayload(maxParams int) int {
	return 256 + 16*maxParams
}

func appendEntropy(dst []byte, inner []byte) []byte {
	base := len(dst)
	dst = growBytes(dst, 2)
	dst[base] = FormatEntropy
	dst = binary.AppendUvarint(dst[:base+2], uint64(len(inner)))
	dst[base+1] = entropyCoded
	mark := len(dst)
	enc := rangeEncoder{out: dst}
	var m entropyModel
	m.init()
	for _, by := range inner {
		enc.encode(&m, by)
	}
	dst = enc.flush()
	if len(dst)-mark >= len(inner) {
		// Coding expanded the payload: escape to the raw form.
		dst = dst[:mark]
		dst[base+1] = entropyRaw
		return append(dst, inner...)
	}
	return dst
}

func decodeEntropy(dst []float64, b []byte, maxParams, depth int) ([]float64, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("codec: entropy payload too short")
	}
	flag := b[0]
	rawLen64, w := binary.Uvarint(b[1:])
	if w <= 0 {
		return nil, fmt.Errorf("codec: entropy payload has a bad length varint")
	}
	body := b[1+w:]
	if rawLen64 == 0 || rawLen64 > uint64(maxInnerPayload(maxParams)) {
		return nil, fmt.Errorf("codec: entropy inner length %d exceeds limit", rawLen64)
	}
	rawLen := int(rawLen64)
	switch flag {
	case entropyRaw:
		if len(body) != rawLen {
			return nil, fmt.Errorf("codec: entropy raw payload has %d bytes, want %d", len(body), rawLen)
		}
		return decodeDepth(dst, body, maxParams, depth+1)
	case entropyCoded:
		innerPtr := GetBuf(rawLen)
		defer PutBuf(innerPtr)
		inner := growBytes(*innerPtr, rawLen)
		dec := newRangeDecoder(body)
		var m entropyModel
		m.init()
		for i := range inner {
			inner[i] = dec.decode(&m)
		}
		if dec.overrun {
			return nil, fmt.Errorf("codec: entropy coded payload truncated")
		}
		return decodeDepth(dst, inner, maxParams, depth+1)
	default:
		return nil, fmt.Errorf("codec: unknown entropy flag 0x%02x", flag)
	}
}

// entropyModel is an adaptive order-0 model over the byte alphabet:
// plain frequencies plus a Fenwick tree for O(log 256) cumulative sums
// and symbol lookup. Totals stay well under the coder's 2^24 range
// floor, so range/total never truncates to zero.
type entropyModel struct {
	freq [256]uint32
	tree [257]uint32 // Fenwick, 1-based
	tot  uint32
}

const (
	entropyInc     = 24
	entropyRescale = 1 << 15
)

func (m *entropyModel) init() {
	for i := range m.freq {
		m.freq[i] = 1
	}
	m.rebuild()
}

func (m *entropyModel) rebuild() {
	clear(m.tree[:])
	m.tot = 0
	for s, f := range m.freq {
		m.tot += f
		i := s + 1
		for ; i <= 256; i += i & (-i) {
			m.tree[i] += f
		}
	}
}

// cum is the cumulative frequency of symbols strictly below s.
func (m *entropyModel) cum(s int) uint32 {
	var c uint32
	for i := s; i > 0; i -= i & (-i) {
		c += m.tree[i]
	}
	return c
}

// find returns the symbol whose cumulative interval contains target,
// plus that symbol's cumulative base.
func (m *entropyModel) find(target uint32) (sym int, base uint32) {
	idx := 0
	for bit := 256; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= 256 && m.tree[next] <= target {
			target -= m.tree[next]
			base += m.tree[next]
			idx = next
		}
	}
	return idx, base
}

func (m *entropyModel) update(s int) {
	m.freq[s] += entropyInc
	for i := s + 1; i <= 256; i += i & (-i) {
		m.tree[i] += entropyInc
	}
	m.tot += entropyInc
	if m.tot >= entropyRescale {
		for i := range m.freq {
			m.freq[i] = (m.freq[i] + 1) >> 1
		}
		m.rebuild()
	}
}

// rangeEncoder is the carry-counting range coder: 32-bit range, 33-bit
// low accumulator whose overflow bit propagates through a cached byte
// and a run of pending 0xFFs.
type rangeEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
}

func (e *rangeEncoder) encode(m *entropyModel, sym byte) {
	if e.rng == 0 { // first call
		e.rng = 0xFFFFFFFF
		e.cacheSize = 1
	}
	s := int(sym)
	cum, f, tot := m.cum(s+1), m.freq[s], m.tot
	cumBase := cum - f
	r := e.rng / tot
	e.low += uint64(r) * uint64(cumBase)
	e.rng = r * f
	for e.rng < 1<<24 {
		e.shiftLow()
		e.rng <<= 8
	}
	m.update(s)
}

func (e *rangeEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		carry := byte(e.low >> 32)
		e.out = append(e.out, e.cache+carry)
		for ; e.cacheSize > 1; e.cacheSize-- {
			e.out = append(e.out, 0xFF+carry)
		}
		e.cache = byte(e.low >> 24)
		e.cacheSize = 0
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

func (e *rangeEncoder) flush() []byte {
	if e.rng == 0 { // nothing encoded
		e.rng = 0xFFFFFFFF
		e.cacheSize = 1
	}
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

type rangeDecoder struct {
	code    uint32
	rng     uint32
	in      []byte
	pos     int
	overrun bool
}

func newRangeDecoder(in []byte) *rangeDecoder {
	d := &rangeDecoder{rng: 0xFFFFFFFF, in: in}
	d.next() // leading zero byte emitted by the encoder's initial cache
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *rangeDecoder) next() byte {
	if d.pos >= len(d.in) {
		d.overrun = true
		return 0
	}
	by := d.in[d.pos]
	d.pos++
	return by
}

func (d *rangeDecoder) decode(m *entropyModel) byte {
	r := d.rng / m.tot
	target := d.code / r
	if target >= m.tot {
		target = m.tot - 1
	}
	sym, base := m.find(target)
	f := m.freq[sym]
	d.code -= r * base
	d.rng = r * f
	for d.rng < 1<<24 {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	m.update(sym)
	return byte(sym)
}
