package codec

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// Chain composes stages into one wire encoding. A chain is parsed from a
// spec string ("topk,q4,rans"), validated for composability at parse
// time (every dynamic path — a low-rank stage may skip — must hand each
// stage an input form it accepts), and is safe for concurrent use: the
// stages are stateless between messages and the per-stage byte counters
// are atomic, so one chain instance serves a whole engine or
// coordinator.
//
// Encoding is a pure function of (chain spec, seed, vector): no RNG
// streams, no wall clock — the determinism contract the TCP-vs-in-
// process and worker-count bit-identity tests pin.
type Chain struct {
	spec   string
	seed   int64
	stages []Stage
	// counters has one slot per stage plus a trailing slot for the
	// implicit base serialization inserted before an entropy stage when
	// the vector is still numeric.
	counters []stageCounter
	// reply is the downlink variant of this chain (quantizers widened to
	// 8 bits — see Reply); it is the chain itself when no stage widens.
	reply *Chain
}

type stageCounter struct {
	msgs, in, out atomic.Int64
}

func (c *stageCounter) count(in, out int) {
	c.msgs.Add(1)
	c.in.Add(int64(in))
	c.out.Add(int64(out))
}

// StageBytes is one stage's cumulative byte accounting: messages
// encoded, bytes consumed (8·len for numeric input, encoded length
// otherwise) and bytes produced.
type StageBytes struct {
	Stage    string
	Msgs     int64
	InBytes  int64
	OutBytes int64
}

// Parse builds a chain from a comma-separated spec. Stage tokens:
//
//	topk | sparse   bitmap/index sparsifying base stage (PR 4 codec)
//	q2..q8          k-bit stochastic quantization
//	lowrank[N]      rank-N factor stage (default rank 8)
//	rans | entropy  adaptive range coder
//
// seed fixes the quantizer's rounding hash and the factor stage's
// subspace init; both ends of a wire decode regardless of seed.
func Parse(spec string, seed int64) (*Chain, error) {
	parts := strings.Split(spec, ",")
	stages := make([]Stage, 0, len(parts))
	tokens := make([]string, 0, len(parts))
	for _, p := range parts {
		tok := strings.ToLower(strings.TrimSpace(p))
		stageSeed := mix64(uint64(seed) + uint64(len(stages)) + 1)
		var st Stage
		var err error
		switch {
		case tok == "topk" || tok == "sparse":
			tok = "topk"
			st = Base()
		case tok == "rans" || tok == "entropy":
			tok = "rans"
			st = Entropy()
		case len(tok) == 2 && tok[0] == 'q' && tok[1] >= '0' && tok[1] <= '9':
			st, err = NewQuant(int(tok[1]-'0'), stageSeed)
		case strings.HasPrefix(tok, "lowrank"):
			rank := 8
			if rest := tok[len("lowrank"):]; rest != "" {
				rank, err = strconv.Atoi(rest)
				if err != nil {
					return nil, fmt.Errorf("codec: bad lowrank rank in %q", tok)
				}
			}
			st, err = NewLowRank(tok, rank, stageSeed)
		default:
			return nil, fmt.Errorf("codec: unknown chain stage %q (want topk, q2..q8, lowrank[N], rans)", tok)
		}
		if err != nil {
			return nil, err
		}
		stages = append(stages, st)
		tokens = append(tokens, tok)
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("codec: empty chain spec")
	}
	if len(stages) > maxDecodeDepth {
		return nil, fmt.Errorf("codec: chain %q has %d stages, max %d", spec, len(stages), maxDecodeDepth)
	}
	if err := validate(tokens, stages); err != nil {
		return nil, err
	}
	ch := &Chain{
		spec:     strings.Join(tokens, ","),
		seed:     seed,
		stages:   stages,
		counters: make([]stageCounter, len(stages)+1),
	}
	// Derive the downlink variant: every quantizer narrower than 8 bits
	// widens to q8 (same seed, so identical stage seeding at each
	// position). The widened spec's own reply is itself, so the recursion
	// terminates after one level.
	replyTokens := append([]string(nil), tokens...)
	widened := false
	for i, tok := range replyTokens {
		if len(tok) == 2 && tok[0] == 'q' && tok[1] != '8' {
			replyTokens[i] = "q8"
			widened = true
		}
	}
	if !widened {
		ch.reply = ch
	} else {
		rc, err := Parse(strings.Join(replyTokens, ","), seed)
		if err != nil {
			return nil, err
		}
		ch.reply = rc
	}
	return ch, nil
}

// Default is the degenerate one-stage chain: the PR 4 bitmap/index
// codec alone, byte-identical to the historical wire image.
func Default() *Chain {
	base, _ := Parse("topk", 0)
	return base
}

// Input-form flags for parse-time composability simulation: the set of
// forms a vector may be in when it reaches a stage, over every dynamic
// path (a low-rank stage forks skip/apply).
const (
	formNumeric = 1 << iota
	formBase
	formQuant
	formLowRank
	formEntropy
)

func validate(tokens []string, stages []Stage) error {
	states := formNumeric
	for i, st := range stages {
		next := 0
		switch st.(type) {
		case baseStage:
			if states != formNumeric {
				return fmt.Errorf("codec: stage %q must head its chain", tokens[i])
			}
			next = formBase
		case *quantStage:
			if states&^(formNumeric|formBase) != 0 {
				return fmt.Errorf("codec: stage %q needs numeric or topk input", tokens[i])
			}
			next = formQuant
		case *lowRankStage:
			if states != formNumeric {
				return fmt.Errorf("codec: stage %q must precede serializing stages", tokens[i])
			}
			next = formNumeric | formLowRank // skip path keeps numeric
		case entropyStage:
			next = formEntropy // numeric input auto-serializes via the base stage
		default:
			return fmt.Errorf("codec: unknown stage type at %q", tokens[i])
		}
		states = next
	}
	return nil
}

// Spec is the canonical chain spec string.
func (c *Chain) Spec() string { return c.spec }

// Reply is the chain the downlink (collective replies) ships: the same
// stages with every quantizer widened to 8 bits. The mean of K k-bit
// uploads lands between the k-bit grid points, so re-snapping it at k
// bits would put a fresh variance floor under every round of training;
// widening the reply grid to the byte boundary makes the downlink loss
// negligible for ~2× the quantized payload. Chains with no narrow
// quantizer (including the default) reply with themselves. The reply
// chain carries its own per-stage counters.
func (c *Chain) Reply() *Chain { return c.reply }

// Stages lists the stage names in order.
func (c *Chain) Stages() []string {
	out := make([]string, len(c.stages))
	for i, st := range c.stages {
		out[i] = st.Name()
	}
	return out
}

// IsDefault reports whether the chain is the degenerate one-stage base
// chain, whose wire image is the historical PR 4 encoding.
func (c *Chain) IsDefault() bool {
	if len(c.stages) != 1 {
		return false
	}
	_, ok := c.stages[0].(baseStage)
	return ok
}

// AppendEncode appends the chain encoding of values to dst and returns
// the extended slice, charging the per-stage counters. The encoding is
// self-describing: DecodeInto reverses it with no chain in hand.
// Internal stage failures panic (they indicate a composability bug the
// parser should have rejected, not a data condition).
func (c *Chain) AppendEncode(dst []byte, values []float64) []byte {
	return c.appendEncode(dst, values, true)
}

func (c *Chain) appendEncode(dst []byte, values []float64, counted bool) []byte {
	bufA := GetBuf(64)
	defer PutBuf(bufA)
	bufB := GetBuf(64)
	defer PutBuf(bufB)
	cur, nxt := bufA, bufB

	v := Vector{Values: values}
	for i, st := range c.stages {
		if _, needsBytes := st.(entropyStage); needsBytes && v.Bytes == nil {
			*cur = AppendBase((*cur)[:0], v.Values)
			if counted {
				c.counters[len(c.stages)].count(8*len(v.Values), len(*cur))
			}
			v = Vector{Bytes: *cur}
		}
		in := 8 * len(v.Values)
		if v.Bytes != nil {
			in = len(v.Bytes)
		}
		out, err := st.Encode((*nxt)[:0], v)
		if err == errSkip {
			continue
		}
		if err != nil {
			panic(fmt.Sprintf("codec: chain %q stage %s: %v", c.spec, st.Name(), err))
		}
		*nxt = out
		if counted {
			c.counters[i].count(in, len(out))
		}
		v = Vector{Bytes: *nxt}
		cur, nxt = nxt, cur
	}
	if v.Bytes == nil { // every stage skipped: fall through to the base codec
		*cur = AppendBase((*cur)[:0], v.Values)
		if counted {
			c.counters[len(c.stages)].count(8*len(v.Values), len(*cur))
		}
		v = Vector{Bytes: *cur}
	}
	return append(dst, v.Bytes...)
}

// PayloadSize is the exact encoded size of values under the chain, in
// bytes. Stages downstream of the first serializer make the size
// data-dependent, so in general this encodes into pooled scratch (the
// per-stage counters are not charged); the degenerate base chain
// computes it analytically.
func (c *Chain) PayloadSize(values []float64) int {
	if c.IsDefault() {
		return BaseSize(values)
	}
	buf := GetBuf(64)
	defer PutBuf(buf)
	*buf = c.appendEncode((*buf)[:0], values, false)
	return len(*buf)
}

// DensePayloadSize is the chain's reference cost for a fully-dense
// vector of n parameters — the denominator SparsificationRatio and
// first-round load estimates use. It is computed from the chain's
// serializing stage (the quantizer when present, the base codec
// otherwise); the entropy and low-rank stages are excluded because
// their dense cost is data-dependent, keeping the reference a stable
// pure function of (chain, n).
func (c *Chain) DensePayloadSize(n int) int {
	for _, st := range c.stages {
		if q, ok := st.(*quantStage); ok {
			blocks := (n + quantBlock - 1) / quantBlock
			return 1 + quantHeaderBytes + (n+7)/8 + quantRangeBytes*blocks + (n*q.bits+7)/8
		}
	}
	return DenseBaseSize(n)
}

// RoundTrip returns the wire image of values: the vector a receiver
// observes after one encode→decode trip through the chain (the chain
// generalization of sparse.QuantizeWire). nil stays nil — an abstention
// carries no payload. The per-stage counters are charged: an in-process
// round-trip stands in for a real wire message.
func (c *Chain) RoundTrip(values []float64) []float64 {
	return c.roundTrip(values, true)
}

// WireImage is RoundTrip without charging the per-stage counters: a
// strategy-side probe of what the receiver will observe (the error-
// feedback residual computation), not a wire message.
func (c *Chain) WireImage(values []float64) []float64 {
	return c.roundTrip(values, false)
}

func (c *Chain) roundTrip(values []float64, counted bool) []float64 {
	if values == nil {
		return nil
	}
	buf := GetBuf(64)
	defer PutBuf(buf)
	*buf = c.appendEncode((*buf)[:0], values, counted)
	out, err := DecodeInto(make([]float64, len(values)), *buf, len(values))
	if err != nil {
		panic(fmt.Sprintf("codec: chain %q round trip: %v", c.spec, err))
	}
	return out
}

// DecodeInto decodes any chain payload (the chain itself is not needed:
// the encoding is self-describing — this is a convenience mirror of the
// package-level DecodeInto).
func (c *Chain) DecodeInto(dst []float64, b []byte, maxParams int) ([]float64, error) {
	return DecodeInto(dst, b, maxParams)
}

// Counters snapshots the per-stage byte accounting. The trailing
// implicit base serialization (inserted when an entropy stage receives a
// numeric vector) reports as "topk"; stages that never ran are elided.
func (c *Chain) Counters() []StageBytes {
	out := make([]StageBytes, 0, len(c.counters))
	for i := range c.counters {
		ctr := &c.counters[i]
		msgs := ctr.msgs.Load()
		if msgs == 0 {
			continue
		}
		name := "topk"
		if i < len(c.stages) {
			name = c.stages[i].Name()
		}
		out = append(out, StageBytes{
			Stage:    name,
			Msgs:     msgs,
			InBytes:  ctr.in.Load(),
			OutBytes: ctr.out.Load(),
		})
	}
	return out
}
