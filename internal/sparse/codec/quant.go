package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The quant stage generalizes the QSGD codec to k-bit (2..8) stochastic
// quantization of a sparse vector's nonzero values, with the rounding
// decision a pure hash of (seed, position, value bits) — no RNG stream —
// so the encoding is a deterministic function of its input regardless of
// worker count, submission order, or retries (a resubmitted message
// re-encodes to identical bytes, which the flrpc idempotent-resubmission
// path relies on).
//
// Values are mapped onto (2^bits − 1)-step affine grids over the
// nonzero values' [min, max] ranges (affine min–max rather than QSGD's
// signed max-norm grid: strategies ship raw parameter values, not just
// zero-centred updates, and an affine grid spends its levels on the
// range actually occupied). The grid is per block of quantBlock
// positions, not global: model vectors concatenate layers whose scales
// differ by orders of magnitude, and a single global grid would burn
// all its levels on the widest layer. Stochastic rounding keeps each
// grid unbiased: E[decode] = value, so quantization noise averages out
// across the round's contributors.
//
// Layout after the 0x04 tag:
//
//	[bits u8][mode u8][n u64][nnz u64]
//	[index part: bitmap (mode 1) or delta varints (mode 2)]
//	[block ranges: lo f64, hi f64 per block containing a nonzero]
//	[bit-packed symbols, nnz·bits bits, little-endian packing]
//
// The bitmap-vs-index crossover is recomputed for this stage's value
// width: with nnz carried in the header both index parts are compared by
// exact size (ceil(n/8) vs the varint footprint), a different break-even
// density than the base stage's, where the index form pays an extra
// 8-byte count field. Blocks with no nonzeros ship no range pair — the
// decoder reconstructs which blocks are present from the index part.

const (
	quantModeBitmap = 0x01
	quantModeIndex  = 0x02
)

// quantHeaderBytes is the fixed body prefix: bits, mode, n, nnz.
const quantHeaderBytes = 2 + 8 + 8

// quantBlock is the positions-per-grid block size. Blocks are by
// position (i / quantBlock), never by nonzero rank: a decoded value
// that lands exactly on zero drops out of the next encode's nonzero
// set, and position-based membership keeps every other value in its
// block — the property that makes the grid idempotent.
const quantBlock = 256

// quantRangeBytes is one non-empty block's [lo, hi] pair.
const quantRangeBytes = 16

type quantStage struct {
	bits int
	seed uint64
}

// NewQuant returns a k-bit stochastic quantization stage. bits must be
// in [2, 8]. The seed fixes the rounding hash; both ends of a wire can
// decode regardless of seed (the grid parameters ship in the header).
func NewQuant(bits int, seed uint64) (Stage, error) {
	if bits < 2 || bits > 8 {
		return nil, fmt.Errorf("codec: quant bits must be in [2,8], got %d", bits)
	}
	return &quantStage{bits: bits, seed: seed}, nil
}

func (q *quantStage) Name() string { return fmt.Sprintf("q%d", q.bits) }

// Encode quantizes numeric input directly, or transcodes a base-stage
// payload (tags 0x01/0x02) by decoding it first — so "topk,q4" chains
// quantize the float32 wire image the base stage would have shipped.
func (q *quantStage) Encode(dst []byte, v Vector) ([]byte, error) {
	if v.Values != nil {
		return q.append(dst, v.Values), nil
	}
	if len(v.Bytes) < 9 || (v.Bytes[0] != FormatBitmap && v.Bytes[0] != FormatIndex) {
		return nil, fmt.Errorf("codec: quant stage accepts numeric input or a base-stage payload")
	}
	// Both base forms lead with the vector length: peek it so the decode
	// scratch comes from the right pool class instead of allocating per
	// message (this is the hot transcode of every "topk,q..." chain).
	n := int(binary.LittleEndian.Uint64(v.Bytes[1:]))
	if n < 0 {
		return nil, fmt.Errorf("codec: quant transcode: negative length")
	}
	scratch := GetVals(n)
	defer PutVals(scratch)
	vals, err := DecodeInto(*scratch, v.Bytes, 0)
	if err != nil {
		return nil, fmt.Errorf("codec: quant transcode: %w", err)
	}
	*scratch = vals // pool the possibly-regrown buffer on the way out
	return q.append(dst, vals), nil
}

func (q *quantStage) Decode(dst []float64, payload []byte, maxParams int) ([]float64, error) {
	if len(payload) < 1 || payload[0] != FormatQuant {
		return nil, fmt.Errorf("codec: quant stage expects a 0x04 payload")
	}
	return decodeQuant(dst, payload[1:], maxParams)
}

func (q *quantStage) append(dst []byte, vec []float64) []byte {
	nnz, varBytes := baseStats(vec)
	bitmapPart := (len(vec) + 7) / 8
	symBytes := (nnz*q.bits + 7) / 8
	mode, indexPart := byte(quantModeBitmap), bitmapPart
	if varBytes < bitmapPart {
		mode, indexPart = quantModeIndex, varBytes
	}

	// Pass 1: per-block [lo, hi] over finite nonzeros, in block order. A
	// block whose nonzeros are all non-finite gets the degenerate (0, 0)
	// grid, matching the single-value case's "everything decodes to lo".
	rngBuf := GetVals(2 * (len(vec)/quantBlock + 1))
	defer PutVals(rngBuf)
	ranges := (*rngBuf)[:0]
	curB := -1
	for i, v := range vec {
		if v == 0 {
			continue
		}
		if b := i / quantBlock; b != curB {
			curB = b
			ranges = append(ranges, math.Inf(1), math.Inf(-1))
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		k := len(ranges)
		ranges[k-2] = math.Min(ranges[k-2], v)
		ranges[k-1] = math.Max(ranges[k-1], v)
	}
	for j := 0; j < len(ranges); j += 2 {
		if ranges[j] > ranges[j+1] {
			ranges[j], ranges[j+1] = 0, 0
		}
	}
	rangePart := quantRangeBytes * len(ranges) / 2

	base := len(dst)
	dst = growBytes(dst, 1+quantHeaderBytes+indexPart+rangePart+symBytes)
	out := dst[base:]
	out[0] = FormatQuant
	body := out[1:]
	body[0] = byte(q.bits)
	body[1] = mode
	binary.LittleEndian.PutUint64(body[2:], uint64(len(vec)))
	binary.LittleEndian.PutUint64(body[10:], uint64(nnz))
	idx := body[quantHeaderBytes : quantHeaderBytes+indexPart]
	rng := body[quantHeaderBytes+indexPart : quantHeaderBytes+indexPart+rangePart]
	syms := body[quantHeaderBytes+indexPart+rangePart:]
	if mode == quantModeBitmap {
		clear(idx)
	}
	for j, f := range ranges {
		binary.LittleEndian.PutUint64(rng[8*j:], math.Float64bits(f))
	}

	// Pass 2: index bits/varints plus grid symbols, swapping grids at
	// block boundaries.
	steps := float64(int(1)<<q.bits - 1)
	var lo, scale float64
	curB = -1
	r := 0
	var acc uint64
	accBits := 0
	pos := 0 // varint cursor (index mode)
	prev := 0
	for i, v := range vec {
		if v == 0 {
			continue
		}
		if b := i / quantBlock; b != curB {
			curB = b
			lo = ranges[2*r]
			hi := ranges[2*r+1]
			r++
			scale = 0
			if hi > lo {
				scale = steps / (hi - lo)
			}
		}
		if mode == quantModeBitmap {
			idx[i/8] |= 1 << (i % 8)
		} else {
			pos += binary.PutUvarint(idx[pos:], uint64(i-prev))
			prev = i
		}
		sym := q.symbol(v, lo, scale, steps, i)
		acc |= uint64(sym) << accBits
		accBits += q.bits
		for accBits >= 8 {
			syms[0] = byte(acc)
			syms = syms[1:]
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		syms[0] = byte(acc)
	}
	return dst
}

// symbol maps one nonzero value onto the grid with seeded stochastic
// rounding. Non-finite values clamp deterministically (NaN to the low
// edge): the stage is documented lossy and total, never failing.
func (q *quantStage) symbol(v, lo, scale, steps float64, pos int) int {
	t := (v - lo) * scale
	if math.IsNaN(t) || t < 0 {
		t = 0
	} else if t > steps {
		t = steps
	}
	// Grid values must re-quantize to themselves (value-level idempotence,
	// asserted by FuzzChainRoundTrip): snap near-integer t before rounding
	// so the float error of decode→re-encode cannot flip a coin.
	r := math.Round(t)
	if math.Abs(t-r) <= 1e-9 {
		return int(r)
	}
	f := math.Floor(t)
	if rnd01(q.seed, pos, math.Float64bits(v)) < t-f {
		f++
	}
	return int(f)
}

// quantRange is the affine grid's [lo, hi] over finite nonzero values.
func quantRange(vec []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vec {
		if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > hi { // no finite nonzero values
		return 0, 0
	}
	return lo, hi
}

// mix64 is the splitmix64 finalizer, the repo's standard seeded hash
// (same construction as the cohort sampler's position hashing).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rnd01 is a uniform [0,1) draw that is a pure function of (seed,
// position, value bits) — the determinism contract of the stage.
func rnd01(seed uint64, pos int, vbits uint64) float64 {
	x := mix64(seed + mix64(uint64(pos)+mix64(vbits)))
	return float64(x>>11) / (1 << 53)
}

// blockGrid tracks the decoder's current per-block grid, advancing
// through the range section as positions cross block boundaries.
type blockGrid struct {
	rng   []byte
	steps float64
	curB  int
	lo    float64
	step  float64
}

// at returns (lo, step) for the block owning position i, consuming the
// next range pair on a block change. ok is false when the range section
// is exhausted — the payload claimed fewer non-empty blocks than its
// index part describes.
func (g *blockGrid) at(i int) (lo, step float64, ok bool) {
	if b := i / quantBlock; b != g.curB {
		if len(g.rng) < quantRangeBytes {
			return 0, 0, false
		}
		g.curB = b
		g.lo = math.Float64frombits(binary.LittleEndian.Uint64(g.rng))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(g.rng[8:]))
		g.rng = g.rng[quantRangeBytes:]
		g.step = 0
		if hi > g.lo && g.steps > 0 {
			g.step = (hi - g.lo) / g.steps
		}
	}
	return g.lo, g.step, true
}

func decodeQuant(dst []float64, b []byte, maxParams int) ([]float64, error) {
	if len(b) < quantHeaderBytes {
		return nil, fmt.Errorf("codec: quant payload too short (%d bytes)", len(b))
	}
	qbits := int(b[0])
	mode := b[1]
	n64 := binary.LittleEndian.Uint64(b[2:])
	nnz64 := binary.LittleEndian.Uint64(b[10:])
	b = b[quantHeaderBytes:]
	if qbits < 2 || qbits > 8 {
		return nil, fmt.Errorf("codec: quant bits %d out of range", qbits)
	}
	if n64 > uint64(maxParams) {
		return nil, fmt.Errorf("codec: quant vector length %d exceeds limit %d", n64, maxParams)
	}
	if nnz64 > n64 {
		return nil, fmt.Errorf("codec: quant payload claims %d nonzeros of %d", nnz64, n64)
	}
	// Every nonzero needs at least qbits symbol bits plus (index mode) one
	// varint byte, so the claimed count is bounded by the bytes present
	// before any allocation.
	if nnz64 > 8*uint64(len(b))/uint64(qbits) {
		return nil, fmt.Errorf("codec: quant payload truncated")
	}
	n, nnz := int(n64), int(nnz64)
	symBytes := (nnz*qbits + 7) / 8
	out := sizeVector(dst, n)
	clear(out)
	steps := float64(int(1)<<qbits - 1)

	switch mode {
	case quantModeBitmap:
		nb := (n + 7) / 8
		if len(b) < nb {
			return nil, fmt.Errorf("codec: quant bitmap truncated (%d of %d bytes)", len(b), nb)
		}
		positions := b[:nb]
		// First pass over the bitmap: the set-bit count pins nnz and the
		// non-empty block count pins the range section's length.
		k, nBlocks, curB := 0, 0, -1
		for i := 0; i < n; i++ {
			if positions[i/8]&(1<<(i%8)) != 0 {
				k++
				if blk := i / quantBlock; blk != curB {
					curB = blk
					nBlocks++
				}
			}
		}
		if k != nnz {
			return nil, fmt.Errorf("codec: quant bitmap has %d bits set, want %d", k, nnz)
		}
		rangePart := quantRangeBytes * nBlocks
		if len(b) != nb+rangePart+symBytes {
			return nil, fmt.Errorf("codec: quant bitmap payload has %d bytes, want %d", len(b), nb+rangePart+symBytes)
		}
		grid := blockGrid{rng: b[nb : nb+rangePart], steps: steps, curB: -1}
		syms := newSymReader(b[nb+rangePart:], qbits)
		for i := 0; i < n; i++ {
			if positions[i/8]&(1<<(i%8)) != 0 {
				lo, step, _ := grid.at(i)
				out[i] = lo + float64(syms.next())*step
			}
		}
	case quantModeIndex:
		// First pass over the varints: find where the index part ends and
		// how many non-empty blocks the positions span.
		pos, prev, nBlocks, curB := 0, 0, 0, -1
		for k := 0; k < nnz; k++ {
			d, w := binary.Uvarint(b[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("codec: quant bad varint at entry %d", k)
			}
			pos += w
			if d > uint64(n) {
				return nil, fmt.Errorf("codec: quant index delta overflow at entry %d", k)
			}
			idx := prev + int(d)
			if idx >= n {
				return nil, fmt.Errorf("codec: quant index out of range at entry %d", k)
			}
			prev = idx
			if blk := idx / quantBlock; blk != curB {
				curB = blk
				nBlocks++
			}
		}
		varEnd := pos
		rangePart := quantRangeBytes * nBlocks
		if len(b) != varEnd+rangePart+symBytes {
			return nil, fmt.Errorf("codec: quant index payload has %d bytes, want %d", len(b), varEnd+rangePart+symBytes)
		}
		grid := blockGrid{rng: b[varEnd : varEnd+rangePart], steps: steps, curB: -1}
		syms := newSymReader(b[varEnd+rangePart:], qbits)
		pos, prev = 0, 0
		for k := 0; k < nnz; k++ {
			d, _ := binary.Uvarint(b[pos:])
			pos += uvarintLen(d)
			idx := prev + int(d)
			lo, step, ok := grid.at(idx)
			if !ok {
				return nil, fmt.Errorf("codec: quant range section exhausted at entry %d", k)
			}
			out[idx] = lo + float64(syms.next())*step
			prev = idx
		}
	default:
		return nil, fmt.Errorf("codec: unknown quant index mode 0x%02x", mode)
	}
	return out, nil
}

// symReader unpacks little-endian bit-packed symbols. Bounds are checked
// by the callers' exact size arithmetic before construction.
type symReader struct {
	b    []byte
	bits int
	acc  uint64
	have int
}

func newSymReader(b []byte, bits int) *symReader {
	return &symReader{b: b, bits: bits}
}

func (r *symReader) next() uint64 {
	for r.have < r.bits {
		var by byte
		if len(r.b) > 0 {
			by = r.b[0]
			r.b = r.b[1:]
		}
		r.acc |= uint64(by) << r.have
		r.have += 8
	}
	sym := r.acc & (1<<r.bits - 1)
	r.acc >>= r.bits
	r.have -= r.bits
	return sym
}
