package codec

import (
	"math/bits"
	"sync"
)

// Pooled scratch for the chain's intermediate images: the same
// power-of-two size-class, pointer-to-slice pooling contract as
// sparse.GetWireBuf/PutWireBuf (and checked by the same fedsu-lint
// scratchpair analyzer). Get returns storage with UNSPECIFIED contents
// beyond the documented length; Put transfers ownership back, after
// which neither the pointer nor any alias may be touched. Safe for
// concurrent use.

const poolClasses = 27

var (
	bufPool [poolClasses]sync.Pool
	valPool [poolClasses]sync.Pool
)

func poolClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}

// GetBuf returns a byte buffer with zero length and capacity at least n.
// Release with PutBuf.
func GetBuf(n int) *[]byte {
	c := poolClass(n)
	if c >= poolClasses {
		b := make([]byte, 0, n)
		return &b
	}
	p, ok := bufPool[c].Get().(*[]byte)
	if !ok {
		b := make([]byte, 0, 1<<uint(c))
		return &b
	}
	*p = (*p)[:0]
	return p
}

// PutBuf returns a buffer to the pool. Passing nil is a no-op. The
// buffer (and any slice of it) must not be used afterwards.
func PutBuf(p *[]byte) {
	if p == nil {
		return
	}
	c := cap(*p)
	if c == 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1 // floor(log2 cap): satisfies Get(n ≤ 2^cls)
	if cls >= poolClasses {
		return
	}
	*p = (*p)[:0]
	bufPool[cls].Put(p)
}

// GetVals returns a float64 slice of length n with UNSPECIFIED contents;
// callers must fully overwrite it (DecodeInto does). Release with
// PutVals.
func GetVals(n int) *[]float64 {
	c := poolClass(n)
	if c >= poolClasses {
		v := make([]float64, n)
		return &v
	}
	p, ok := valPool[c].Get().(*[]float64)
	if !ok {
		v := make([]float64, 1<<uint(c))
		p = &v
	}
	*p = (*p)[:n]
	return p
}

// PutVals returns a value slice to the pool. Passing nil is a no-op. The
// slice (and any alias of it) must not be used afterwards.
func PutVals(p *[]float64) {
	if p == nil {
		return
	}
	c := cap(*p)
	if c == 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls >= poolClasses {
		return
	}
	*p = (*p)[:c]
	valPool[cls].Put(p)
}
