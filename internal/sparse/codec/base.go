package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// The base stage is the PR 4 self-describing bitmap/index codec, ported
// here verbatim so the one-stage chain is byte-identical to the
// historical wire image (internal/sparse delegates its encoders to this
// file, and a regression test pins the bytes against an independent
// reference). The exact-size format selection — the documented ~3%
// density crossover — lives here too: both body sizes are computed
// exactly and the smaller one wins, with the bitmap taking ties.
//
// Wire semantics: zeros (including negative zero) are elided and decode
// as +0; nonzero values round-trip through float32.

type baseStage struct{}

// Base returns the bitmap/index sparsifying stage ("topk" in chain
// specs). It heads a chain: it accepts numeric input only.
func Base() Stage { return baseStage{} }

func (baseStage) Name() string { return "topk" }

func (baseStage) Encode(dst []byte, v Vector) ([]byte, error) {
	if v.Values == nil {
		return nil, fmt.Errorf("codec: topk stage needs numeric input (it must head its chain)")
	}
	return AppendBase(dst, v.Values), nil
}

func (baseStage) Decode(dst []float64, payload []byte, maxParams int) ([]float64, error) {
	return DecodeInto(dst, payload, maxParams)
}

// AppendBase appends the base-stage encoding of vec to dst and returns
// the extended slice, growing dst at most once. The format tag is chosen
// by exact encoded size, so BaseSize(vec) always predicts the number of
// bytes appended.
func AppendBase(dst []byte, vec []float64) []byte {
	nnz, varBytes := baseStats(vec)
	bitmapSize := 1 + bitmapBodyBytes(len(vec), nnz)
	indexSize := 1 + 8 + 8 + varBytes + 4*nnz
	base := len(dst)
	if bitmapSize <= indexSize {
		dst = growBytes(dst, bitmapSize)
		encodeBaseBitmap(dst[base:], vec, nnz)
	} else {
		dst = growBytes(dst, indexSize)
		encodeBaseIndex(dst[base:], vec, nnz)
	}
	return dst
}

// BaseSize is the exact encoded size of vec under the base stage, in
// bytes, without materializing the payload.
func BaseSize(vec []float64) int {
	nnz, varBytes := baseStats(vec)
	bitmapSize := 1 + bitmapBodyBytes(len(vec), nnz)
	indexSize := 1 + 8 + 8 + varBytes + 4*nnz
	if bitmapSize <= indexSize {
		return bitmapSize
	}
	return indexSize
}

// DenseBaseSize is BaseSize for a fully-dense vector of n parameters,
// computed without materializing it: with every entry nonzero the
// selection always picks the bitmap form, whose size depends only on n.
func DenseBaseSize(n int) int {
	return 1 + bitmapBodyBytes(n, n)
}

// bitmapBodyBytes is the bitmap body size: length header, one bit per
// parameter, four bytes per selected value (sparse.BitmapPayloadBytes).
func bitmapBodyBytes(totalParams, selected int) int {
	return 8 + (totalParams+7)/8 + 4*selected
}

// uvarintLen is the encoded size of x under binary.PutUvarint: one byte
// per started 7-bit group.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// baseStats scans vec once for the nonzero count and the exact
// delta-varint footprint of the nonzero positions.
func baseStats(vec []float64) (nnz, varBytes int) {
	prev := 0
	for i, v := range vec {
		if v != 0 {
			varBytes += uvarintLen(uint64(i - prev))
			prev = i
			nnz++
		}
	}
	return nnz, varBytes
}

// encodeBaseBitmap writes the bitmap form into out, which has exactly
// the required size.
func encodeBaseBitmap(out []byte, vec []float64, nnz int) {
	out[0] = FormatBitmap
	body := out[1:]
	binary.LittleEndian.PutUint64(body[:8], uint64(len(vec)))
	bm := body[8 : 8+(len(vec)+7)/8]
	clear(bm)
	vals := body[8+len(bm):]
	k := 0
	for i, v := range vec {
		if v != 0 {
			bm[i/8] |= 1 << (i % 8)
			//lint:allow precision -- the base wire format stores values as f32 by contract (PR 4 byte-identity)
			binary.LittleEndian.PutUint32(vals[4*k:], math.Float32bits(float32(v)))
			k++
		}
	}
}

// encodeBaseIndex writes the index form into out, which has exactly the
// required size: tag, total length, count, delta varints, float32 values.
func encodeBaseIndex(out []byte, vec []float64, nnz int) {
	out[0] = FormatIndex
	body := out[1:]
	binary.LittleEndian.PutUint64(body[:8], uint64(len(vec)))
	binary.LittleEndian.PutUint64(body[8:16], uint64(nnz))
	pos := 16
	prev := 0
	valBase := len(body) - 4*nnz
	k := 0
	for i, v := range vec {
		if v != 0 {
			pos += binary.PutUvarint(body[pos:], uint64(i-prev))
			prev = i
			//lint:allow precision -- the base wire format stores values as f32 by contract (PR 4 byte-identity)
			binary.LittleEndian.PutUint32(body[valBase+4*k:], math.Float32bits(float32(v)))
			k++
		}
	}
}

func decodeBaseBitmap(dst []float64, b []byte, maxParams int) ([]float64, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("codec: bitmap vector payload too short (%d bytes)", len(b))
	}
	n64 := binary.LittleEndian.Uint64(b[:8])
	b = b[8:]
	// The bitmap itself must be present, which caps the claimed length by
	// the input size before any allocation.
	if n64 > uint64(len(b))*8 || n64 > uint64(maxParams) {
		return nil, fmt.Errorf("codec: bitmap vector length %d exceeds payload or limit", n64)
	}
	n := int(n64)
	nb := (n + 7) / 8
	bm := b[:nb]
	vals := b[nb:]
	out := sizeVector(dst, n)
	k := 0
	for i := 0; i < n; i++ {
		if bm[i/8]&(1<<(i%8)) != 0 {
			if 4*k+4 > len(vals) {
				return nil, fmt.Errorf("codec: bitmap vector payload truncated")
			}
			//lint:allow precision -- widening the f32 wire value back to the f64 vector, exact
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(vals[4*k:])))
			k++
		} else {
			out[i] = 0
		}
	}
	if len(vals) != 4*k {
		return nil, fmt.Errorf("codec: bitmap vector payload has %d value bytes, want %d", len(vals), 4*k)
	}
	return out, nil
}

func decodeBaseIndex(dst []float64, b []byte, maxParams int) ([]float64, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("codec: index vector payload too short (%d bytes)", len(b))
	}
	total64 := binary.LittleEndian.Uint64(b[:8])
	count64 := binary.LittleEndian.Uint64(b[8:16])
	b = b[16:]
	if total64 > uint64(maxParams) {
		return nil, fmt.Errorf("codec: index vector length %d exceeds limit %d", total64, maxParams)
	}
	// Each entry needs one varint byte plus four value bytes, bounding the
	// claimed count by the remaining payload before any allocation.
	if count64 > uint64(len(b))/5 || count64 > total64 {
		return nil, fmt.Errorf("codec: index vector payload truncated")
	}
	total, count := int(total64), int(count64)
	out := sizeVector(dst, total)
	clear(out)
	valBase := len(b) - 4*count
	pos := 0
	prev := 0
	for k := 0; k < count; k++ {
		d, w := binary.Uvarint(b[pos:valBase])
		if w <= 0 {
			return nil, fmt.Errorf("codec: bad varint at entry %d", k)
		}
		pos += w
		// Checking d before the int conversion keeps a hostile varint from
		// overflowing the position arithmetic.
		if d > uint64(total) {
			return nil, fmt.Errorf("codec: index delta overflow at entry %d", k)
		}
		idx := prev + int(d)
		if idx >= total {
			return nil, fmt.Errorf("codec: index out of range at entry %d", k)
		}
		//lint:allow precision -- widening the f32 wire value back to the f64 vector, exact
		out[idx] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[valBase+4*k:])))
		prev = idx
	}
	if pos != valBase {
		return nil, fmt.Errorf("codec: index vector payload has %d stray varint bytes", valBase-pos)
	}
	return out, nil
}
