// Package codec implements the composable compression pipeline the wire
// path ships vectors through: a Stage interface (sparsify, quantize,
// low-rank factor, entropy-code) with a Chain combinator that stacks
// stages into one self-describing encoding. The PR 4 bitmap/index codec
// is the base stage, so the default wire image is the degenerate
// one-stage chain — byte-identical to the historical encoder, pinned by
// tests in this package and in internal/sparse.
//
// Every stage writes a one-byte format tag first, so a receiver
// negotiates per message: DecodeInto dispatches on the tag recursively
// (an entropy payload wraps an inner payload, a quantized payload is a
// leaf) and needs no out-of-band chain description. Decoding is bounded
// against allocation bombs the same way the PR 4 decoders are: every
// length header is validated against the bytes actually present and
// against the caller's maxParams before anything is allocated, and the
// recursive dispatch is depth-capped so nested entropy frames cannot
// stack unboundedly.
package codec

import "fmt"

// Format tags. One byte, first on the wire, one per stage family.
// 0x03 is owned by internal/sparse's tree partial-aggregate codec
// (raw float64 + counts); partials are deliberately NOT part of any
// chain — see DESIGN.md §5l — so the tag is reserved here and rejected.
const (
	FormatBitmap  = 0x01 // base stage, bitmap body (PR 4)
	FormatIndex   = 0x02 // base stage, delta-varint index body (PR 4)
	formatPartial = 0x03 // reserved: tree partial codec, never chained
	FormatQuant   = 0x04 // k-bit stochastically quantized values
	FormatLowRank = 0x05 // U·Vᵀ factor pair
	FormatEntropy = 0x06 // range-coded wrapper around an inner payload
)

// DefaultMaxParams bounds the decoded vector length when the caller does
// not supply its own limit (same rationale and value as the sparse
// package's defaultMaxVectorParams: an index body is legitimately tiny
// for any total, so the length header cannot be bounded by input size).
const DefaultMaxParams = 1 << 24

// maxDecodeDepth caps recursive tag dispatch: a hostile stream of nested
// entropy frames must not recurse (or inflate) without bound. Parse
// enforces the same cap on chain length, so every encodable chain
// decodes.
const maxDecodeDepth = 4

// Vector is the value flowing between stages of a chain: numeric at the
// head (Values set, Bytes nil) and encoded after the first serializing
// stage (Bytes set, Values nil). Stages declare which form they accept.
type Vector struct {
	Values []float64
	Bytes  []byte
}

// Stage is one link of a compression chain. Encode appends the stage's
// self-describing encoding of v to dst and returns the extended slice;
// it returns ErrSkip when the stage judges itself non-beneficial for
// this vector (the chain passes v through unchanged). Decode reverses
// Encode for a payload beginning with one of the stage's format tags;
// maxParams bounds the decoded length (<= 0 applies DefaultMaxParams).
type Stage interface {
	Name() string
	Encode(dst []byte, v Vector) ([]byte, error)
	Decode(dst []float64, payload []byte, maxParams int) ([]float64, error)
}

// ErrSkip is returned by Stage.Encode when the stage does not apply to
// this vector (e.g. the low-rank gate measured no benefit); the chain
// forwards the input unchanged.
var errSkip = fmt.Errorf("codec: stage skipped")

// DecodeInto decodes any chain-encoded payload into dst (reused when its
// capacity suffices), dispatching recursively on the leading format tag.
// The returned slice is fully overwritten; elided positions are +0.
func DecodeInto(dst []float64, b []byte, maxParams int) ([]float64, error) {
	return decodeDepth(dst, b, maxParams, 0)
}

func decodeDepth(dst []float64, b []byte, maxParams, depth int) ([]float64, error) {
	if maxParams <= 0 {
		maxParams = DefaultMaxParams
	}
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("codec: payload nests deeper than %d frames", maxDecodeDepth)
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("codec: empty vector payload")
	}
	switch b[0] {
	case FormatBitmap:
		return decodeBaseBitmap(dst, b[1:], maxParams)
	case FormatIndex:
		return decodeBaseIndex(dst, b[1:], maxParams)
	case FormatQuant:
		return decodeQuant(dst, b[1:], maxParams)
	case FormatLowRank:
		return decodeLowRank(dst, b[1:], maxParams)
	case FormatEntropy:
		return decodeEntropy(dst, b[1:], maxParams, depth)
	case formatPartial:
		return nil, fmt.Errorf("codec: tag 0x03 is the tree partial codec, not a chain payload")
	default:
		return nil, fmt.Errorf("codec: unknown vector payload format 0x%02x", b[0])
	}
}

// sizeVector returns dst resized to n, reusing its storage when possible.
// Never nil: a decoded empty vector stays distinguishable from "no
// vector" (flrpc's abstain/Nil wire flags rely on it).
func sizeVector(dst []float64, n int) []float64 {
	if dst == nil && n == 0 {
		return []float64{}
	}
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}

// growBytes extends dst by n bytes in a single step (one allocation at
// most); the new bytes are unspecified and must be fully overwritten.
func growBytes(dst []byte, n int) []byte {
	total := len(dst) + n
	if cap(dst) >= total {
		return dst[:total]
	}
	grown := make([]byte, total)
	copy(grown, dst)
	return grown
}
