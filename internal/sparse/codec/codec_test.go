package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// refBaseEncode is an independent reference implementation of the PR 4
// vector codec (straight from the wire format documented in DESIGN.md
// §5f), used to pin the base stage byte-for-byte without depending on
// the code under test.
func refBaseEncode(vec []float64) []byte {
	var idx []int
	for i, v := range vec {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	// bitmap form
	bm := []byte{0x01}
	bm = binary.LittleEndian.AppendUint64(bm, uint64(len(vec)))
	bits := make([]byte, (len(vec)+7)/8)
	for _, i := range idx {
		bits[i/8] |= 1 << (i % 8)
	}
	bm = append(bm, bits...)
	for _, i := range idx {
		bm = binary.LittleEndian.AppendUint32(bm, math.Float32bits(float32(vec[i])))
	}
	// index form
	ix := []byte{0x02}
	ix = binary.LittleEndian.AppendUint64(ix, uint64(len(vec)))
	ix = binary.LittleEndian.AppendUint64(ix, uint64(len(idx)))
	prev := 0
	for _, i := range idx {
		ix = binary.AppendUvarint(ix, uint64(i-prev))
		prev = i
	}
	for _, i := range idx {
		ix = binary.LittleEndian.AppendUint32(ix, math.Float32bits(float32(vec[i])))
	}
	if len(bm) <= len(ix) {
		return bm
	}
	return ix
}

func testVectors(t *testing.T) map[string][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sparse1pct := make([]float64, 4096)
	for i := range sparse1pct {
		if rng.Float64() < 0.01 {
			sparse1pct[i] = rng.NormFloat64()
		}
	}
	dense := make([]float64, 1000)
	for i := range dense {
		dense[i] = rng.NormFloat64()
	}
	structured := make([]float64, 64*32)
	for i := 0; i < 64; i++ {
		for j := 0; j < 32; j++ {
			structured[i*32+j] = math.Sin(float64(i)/9)*math.Cos(float64(j)/7) + 0.01*rng.NormFloat64()
		}
	}
	return map[string][]float64{
		"empty":      {},
		"allzero":    make([]float64, 300),
		"single":     {0, 0, 3.25, 0},
		"sparse1pct": sparse1pct,
		"dense":      dense,
		"structured": structured,
	}
}

// TestBaseMatchesReference pins the one-stage chain byte-for-byte
// against the independent PR 4 reference encoder (satellite: regression
// for the degenerate chain).
func TestBaseMatchesReference(t *testing.T) {
	for name, vec := range testVectors(t) {
		got := AppendBase(nil, vec)
		want := refBaseEncode(vec)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: base encoding differs from PR 4 reference (%d vs %d bytes)", name, len(got), len(want))
		}
		if BaseSize(vec) != len(want) {
			t.Errorf("%s: BaseSize=%d, want %d", name, BaseSize(vec), len(want))
		}
		ch := Default()
		if !ch.IsDefault() {
			t.Fatalf("Default() chain is not default")
		}
		if enc := ch.AppendEncode(nil, vec); !bytes.Equal(enc, want) {
			t.Errorf("%s: default chain encoding differs from PR 4 reference", name)
		}
		if ch.PayloadSize(vec) != len(want) {
			t.Errorf("%s: default chain PayloadSize=%d, want %d", name, ch.PayloadSize(vec), len(want))
		}
	}
}

func quantizeWire(v float64) float64 {
	if v == 0 {
		return 0
	}
	return float64(float32(v))
}

func TestBaseRoundTrip(t *testing.T) {
	for name, vec := range testVectors(t) {
		dec, err := DecodeInto(nil, AppendBase(nil, vec), 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(dec) != len(vec) {
			t.Fatalf("%s: decoded %d values, want %d", name, len(dec), len(vec))
		}
		for i, v := range vec {
			if dec[i] != quantizeWire(v) {
				t.Fatalf("%s[%d]: got %v, want %v", name, i, dec[i], quantizeWire(v))
			}
		}
	}
}

func TestQuantRoundTrip(t *testing.T) {
	for _, bits := range []int{2, 4, 8} {
		st, err := NewQuant(bits, 42)
		if err != nil {
			t.Fatal(err)
		}
		for name, vec := range testVectors(t) {
			enc, err := st.Encode(nil, Vector{Values: vec})
			if err != nil {
				t.Fatalf("q%d %s: encode: %v", bits, name, err)
			}
			dec, err := DecodeInto(nil, enc, len(vec))
			if err != nil {
				t.Fatalf("q%d %s: decode: %v", bits, name, err)
			}
			if len(dec) != len(vec) {
				t.Fatalf("q%d %s: decoded %d values, want %d", bits, name, len(dec), len(vec))
			}
			lo, hi := quantRange(vec)
			step := 0.0
			if hi > lo {
				step = (hi - lo) / float64(int(1)<<bits-1)
			}
			for i, v := range vec {
				if v == 0 && dec[i] != 0 {
					t.Fatalf("q%d %s[%d]: zero decoded as %v", bits, name, i, dec[i])
				}
				if v != 0 && math.Abs(dec[i]-v) > step+1e-12 {
					t.Fatalf("q%d %s[%d]: %v decoded as %v (step %v)", bits, name, i, v, dec[i], step)
				}
			}
			// Grid idempotence: re-encoding the decoded vector reproduces it.
			enc2, err := st.Encode(nil, Vector{Values: dec})
			if err != nil {
				t.Fatal(err)
			}
			dec2, err := DecodeInto(nil, enc2, len(vec))
			if err != nil {
				t.Fatal(err)
			}
			for i := range dec {
				if dec2[i] != dec[i] {
					t.Fatalf("q%d %s[%d]: grid not idempotent: %v -> %v", bits, name, i, dec[i], dec2[i])
				}
			}
		}
	}
}

// TestQuantUnbiased checks E[decode] ≈ value: stochastic rounding must
// not drift the aggregate.
func TestQuantUnbiased(t *testing.T) {
	st, _ := NewQuant(4, 1)
	const n = 20000
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = float64(i) / n * 2.0 // spans [0, 2): includes off-grid points
	}
	vec[0] = 0.31
	enc, err := st.Encode(nil, Vector{Values: vec})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeInto(nil, enc, n)
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for i := range vec {
		sumErr += dec[i] - vec[i]
	}
	meanErr := sumErr / n
	lo, hi := quantRange(vec)
	step := (hi - lo) / 15
	if math.Abs(meanErr) > step/10 {
		t.Fatalf("mean quantization error %v exceeds step/10=%v: rounding is biased", meanErr, step/10)
	}
}

// TestQuantCrossover exercises both index modes: a dense vector picks
// the bitmap part, a very sparse one the varint part — the crossover
// recomputed for the quantized value stream.
func TestQuantCrossover(t *testing.T) {
	st, _ := NewQuant(4, 9)
	dense := make([]float64, 512)
	for i := range dense {
		dense[i] = float64(i%7) + 1
	}
	sparse := make([]float64, 100000)
	sparse[5], sparse[70000] = 1.5, -2.5
	encDense, _ := st.Encode(nil, Vector{Values: dense})
	encSparse, _ := st.Encode(nil, Vector{Values: sparse})
	if encDense[1+1] != quantModeBitmap {
		t.Errorf("dense vector picked mode 0x%02x, want bitmap", encDense[2])
	}
	if encSparse[1+1] != quantModeIndex {
		t.Errorf("sparse vector picked mode 0x%02x, want index", encSparse[2])
	}
	for _, enc := range [][]byte{encDense, encSparse} {
		if _, err := DecodeInto(nil, enc, 100000); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

func TestLowRankRoundTrip(t *testing.T) {
	st, err := NewLowRank("lowrank", 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly rank-2 matrix: the stage must reconstruct it near-exactly.
	const m, n = 32, 64
	a := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = math.Sin(float64(i))*math.Cos(float64(j)) + 0.5*math.Cos(float64(i))*math.Sin(float64(j))
		}
	}
	enc, err := st.Encode(nil, Vector{Values: a})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if enc[0] != FormatLowRank {
		t.Fatalf("tag 0x%02x, want 0x05", enc[0])
	}
	if len(enc) >= BaseSize(a) {
		t.Fatalf("lowrank encoding (%d bytes) not smaller than base (%d)", len(enc), BaseSize(a))
	}
	dec, err := DecodeInto(nil, enc, m*n)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var num, den float64
	for i := range a {
		num += (dec[i] - a[i]) * (dec[i] - a[i])
		den += a[i] * a[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-3 {
		t.Fatalf("rank-2 matrix reconstruction error %v, want < 1e-3", rel)
	}
	// Deterministic: same input, same bytes.
	enc2, _ := st.Encode(nil, Vector{Values: a})
	if !bytes.Equal(enc, enc2) {
		t.Fatal("lowrank encoding is not deterministic")
	}
}

func TestLowRankSkips(t *testing.T) {
	st, _ := NewLowRank("lowrank", 8, 3)
	// 1% density: base encoding is far cheaper than factors — must skip.
	vec := make([]float64, 10000)
	for i := 0; i < 100; i++ {
		vec[i*100] = 1
	}
	if _, err := st.Encode(nil, Vector{Values: vec}); err != errSkip {
		t.Fatalf("sparse vector: err=%v, want skip", err)
	}
	// Tiny vector: below lowRankMinTotal — must skip.
	if _, err := st.Encode(nil, Vector{Values: []float64{1, 2, 3, 4}}); err != errSkip {
		t.Fatalf("tiny vector: err=%v, want skip", err)
	}
	// Chain-level fall-through: "lowrank" on a skipping vector equals base.
	ch, err := Parse("lowrank", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.AppendEncode(nil, vec), AppendBase(nil, vec); !bytes.Equal(got, want) {
		t.Fatal("skipping lowrank chain is not the base encoding")
	}
}

func TestEntropyRoundTrip(t *testing.T) {
	for name, vec := range testVectors(t) {
		if len(vec) == 0 {
			continue
		}
		inner := AppendBase(nil, vec)
		enc := appendEntropy(nil, inner)
		dec, err := DecodeInto(nil, enc, len(vec))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		for i, v := range vec {
			if dec[i] != quantizeWire(v) {
				t.Fatalf("%s[%d]: got %v, want %v", name, i, dec[i], quantizeWire(v))
			}
		}
	}
}

// TestEntropyCompresses checks the coder actually shrinks a skewed
// stream and that the raw escape caps expansion at the 2-byte frame +
// length varint.
func TestEntropyCompresses(t *testing.T) {
	vec := make([]float64, 100000)
	for i := 0; i < len(vec); i += 100 {
		vec[i] = float64((i/100)%15) * 0.125 // repetitive quantized-looking values
	}
	st, _ := NewQuant(4, 5)
	inner, err := st.Encode(nil, Vector{Values: vec})
	if err != nil {
		t.Fatal(err)
	}
	enc := appendEntropy(nil, inner)
	if len(enc) >= len(inner) {
		t.Fatalf("entropy coding did not compress: %d -> %d bytes", len(inner), len(enc))
	}
	// Incompressible input: expansion bounded by the frame.
	noisy := make([]byte, 4096)
	rng := rand.New(rand.NewSource(3))
	rng.Read(noisy)
	noisy[0] = FormatBitmap
	escaped := appendEntropy(nil, noisy)
	if len(escaped) > len(noisy)+2+binary.MaxVarintLen64 {
		t.Fatalf("raw escape overhead too large: %d -> %d bytes", len(noisy), len(escaped))
	}
}

func TestChainSpecs(t *testing.T) {
	valid := []string{"topk", "sparse", "q4", "q2", "q8", "rans", "lowrank", "lowrank4",
		"topk,q4", "topk,q4,rans", "q4,rans", "lowrank,rans", "topk,rans", "rans,rans"}
	for _, spec := range valid {
		if _, err := Parse(spec, 1); err != nil {
			t.Errorf("Parse(%q): unexpected error %v", spec, err)
		}
	}
	invalid := []string{"", "bogus", "q9", "q4,topk", "topk,topk", "q4,q4",
		"topk,lowrank", "q4,lowrank", "rans,q4", "lowrank,q4", "topk,q4,rans,rans,rans"}
	for _, spec := range invalid {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestChainRoundTripAllSpecs(t *testing.T) {
	vecs := testVectors(t)
	for _, spec := range []string{"topk", "q4", "topk,q4", "topk,q4,rans", "q8,rans", "lowrank", "lowrank,rans", "rans"} {
		ch, err := Parse(spec, 17)
		if err != nil {
			t.Fatal(err)
		}
		for name, vec := range vecs {
			enc := ch.AppendEncode(nil, vec)
			dec, err := DecodeInto(nil, enc, len(vec))
			if err != nil {
				t.Fatalf("%s %s: decode: %v", spec, name, err)
			}
			rt := ch.RoundTrip(vec)
			if !reflect.DeepEqual(dec, rt) {
				t.Fatalf("%s %s: DecodeInto and RoundTrip disagree", spec, name)
			}
			if got := ch.PayloadSize(vec); got != len(enc) {
				t.Fatalf("%s %s: PayloadSize=%d, encoded %d", spec, name, got, len(enc))
			}
			// Wire-image idempotence: the image of the image is the image.
			// The low-rank stage is exempt: its image is a subspace
			// projection, not a grid, so re-factorizing the reconstruction
			// is not a fixed point (and nothing relies on it — values are
			// encoded exactly once on either transport).
			if strings.Contains(spec, "lowrank") {
				continue
			}
			rt2 := ch.RoundTrip(rt)
			for i := range rt {
				if rt2[i] != rt[i] {
					t.Fatalf("%s %s[%d]: wire image not idempotent: %v -> %v", spec, name, i, rt[i], rt2[i])
				}
			}
		}
	}
}

// TestChainDeterministicConcurrent encodes the same vector from many
// goroutines through one shared chain: every encoding must be
// byte-identical (the worker-count bit-identity contract), and the
// atomic counters must account every message.
func TestChainDeterministicConcurrent(t *testing.T) {
	ch, err := Parse("topk,q4,rans", 99)
	if err != nil {
		t.Fatal(err)
	}
	vec := testVectors(t)["sparse1pct"]
	want := ch.AppendEncode(nil, vec)
	const workers, per = 8, 20
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if got := ch.AppendEncode(nil, vec); !bytes.Equal(got, want) {
					errs <- "concurrent encoding differs"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	var msgs int64
	for _, sb := range ch.Counters() {
		if sb.Stage == "topk" {
			msgs = sb.Msgs
		}
	}
	if want := int64(workers*per + 1); msgs != want {
		t.Fatalf("topk stage counted %d msgs, want %d", msgs, want)
	}
}

func TestChainCounters(t *testing.T) {
	ch, _ := Parse("topk,q4,rans", 1)
	vec := testVectors(t)["sparse1pct"]
	enc := ch.AppendEncode(nil, vec)
	cs := ch.Counters()
	if len(cs) != 3 {
		t.Fatalf("got %d counter rows, want 3: %+v", len(cs), cs)
	}
	if cs[0].Stage != "topk" || cs[1].Stage != "q4" || cs[2].Stage != "rans" {
		t.Fatalf("stage order wrong: %+v", cs)
	}
	if cs[0].InBytes != int64(8*len(vec)) {
		t.Errorf("topk in bytes %d, want %d", cs[0].InBytes, 8*len(vec))
	}
	if cs[2].OutBytes != int64(len(enc)) {
		t.Errorf("rans out bytes %d, want encoded %d", cs[2].OutBytes, len(enc))
	}
	// Each stage's output feeds the next stage's input.
	if cs[0].OutBytes != cs[1].InBytes || cs[1].OutBytes != cs[2].InBytes {
		t.Errorf("stage byte flow broken: %+v", cs)
	}
}

// TestDecodeBounds feeds hostile headers: huge claimed lengths must be
// rejected before allocation, for every stage family.
func TestDecodeBounds(t *testing.T) {
	huge := binary.LittleEndian.AppendUint64(nil, 1<<40)
	cases := map[string][]byte{
		"bitmap-bomb":  append([]byte{FormatBitmap}, huge...),
		"index-bomb":   append(append([]byte{FormatIndex}, huge...), huge...),
		"quant-bomb":   append([]byte{FormatQuant, 4, 1}, append(huge, huge...)...),
		"lowrank-bomb": append([]byte{FormatLowRank}, append(append(huge, huge...), huge...)...),
		"entropy-bomb": append([]byte{FormatEntropy, entropyCoded}, binary.AppendUvarint(nil, 1<<40)...),
		"partial-tag":  {formatPartial, 0, 0},
		"unknown-tag":  {0x7F, 1, 2},
		"empty":        {},
	}
	for name, b := range cases {
		if _, err := DecodeInto(nil, b, 1<<20); err == nil {
			t.Errorf("%s: decode accepted hostile payload", name)
		}
	}
	// Nested entropy frames beyond the depth cap must be rejected.
	inner := AppendBase(nil, []float64{1, 2, 3})
	for i := 0; i < maxDecodeDepth+1; i++ {
		inner = appendEntropy(nil, inner)
	}
	if _, err := DecodeInto(nil, inner, 10); err == nil {
		t.Error("over-deep nesting accepted")
	}
}

func TestDensePayloadSize(t *testing.T) {
	n := 1000
	dense := make([]float64, n)
	for i := range dense {
		dense[i] = float64(i) + 1
	}
	base := Default()
	if got, want := base.DensePayloadSize(n), BaseSize(dense); got != want {
		t.Errorf("base dense size %d, want %d", got, want)
	}
	q4, _ := Parse("topk,q4", 0)
	if got, want := q4.DensePayloadSize(n), q4.PayloadSize(dense); got != want {
		t.Errorf("q4 dense size %d, want measured %d", got, want)
	}
}
