package codec

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The low-rank stage ships a rank-r factor pair U·Vᵀ instead of the
// vector itself (FA-LoRA-style structured updates): the vector is viewed
// as an m×n matrix and approximated by r orthogonal-iteration steps, so
// the wire carries 4·r·(m+n) bytes instead of the base encoding. The
// stage is gated by exact benefit — it applies only when the factor
// bytes undercut what the base stage would ship for this vector (the
// "rank·(m+n) < m·n·density" rule, measured in encoded bytes rather
// than the analytic form) — and skips otherwise, letting the chain fall
// through to the base encoding. Factorization is deterministic: the
// subspace is seeded from the stage seed by position hashing and every
// loop is serial, so the same vector always produces the same factors.
//
// Layout after the 0x05 tag:
//
//	[m u64][n u64][r u64][U float32 m·r][V float32 n·r]
//
// decoded[i·n+j] = Σ_k U[i,k]·V[j,k], accumulated in float64.

const (
	// lowRankIters is the fixed number of subspace iterations; enough for
	// the energy of trained-layer spectra, and deterministic by count.
	lowRankIters = 8
	// lowRankMinTotal skips vectors too small for factoring to pay.
	lowRankMinTotal = 256
)

type lowRankStage struct {
	name string
	rank int
	seed uint64
}

// NewLowRank returns a rank-r factor stage. It consumes numeric input
// and must precede any serializing stage; when its benefit gate fails it
// skips, so a "lowrank" chain degrades to the base encoding.
func NewLowRank(name string, rank int, seed uint64) (Stage, error) {
	if rank < 1 || rank > 64 {
		return nil, fmt.Errorf("codec: lowrank rank must be in [1,64], got %d", rank)
	}
	return &lowRankStage{name: name, rank: rank, seed: seed}, nil
}

func (s *lowRankStage) Name() string { return s.name }

func (s *lowRankStage) Encode(dst []byte, v Vector) ([]byte, error) {
	if v.Values == nil {
		return nil, fmt.Errorf("codec: lowrank stage needs numeric input (it must precede serializing stages)")
	}
	vec := v.Values
	m, n := factorShape(len(vec))
	r := s.rank
	if m < 2 || r >= m || r >= n {
		return nil, errSkip
	}
	lrSize := 1 + 24 + 4*r*(m+n)
	if lrSize >= BaseSize(vec) {
		return nil, errSkip
	}
	for _, x := range vec {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return nil, errSkip
		}
	}
	U, V := s.factor(vec, m, n, r)
	base := len(dst)
	dst = growBytes(dst, lrSize)
	out := dst[base:]
	out[0] = FormatLowRank
	body := out[1:]
	binary.LittleEndian.PutUint64(body[0:], uint64(m))
	binary.LittleEndian.PutUint64(body[8:], uint64(n))
	binary.LittleEndian.PutUint64(body[16:], uint64(r))
	fp := body[24:]
	for i, x := range U {
		//lint:allow precision -- factors ship as f32 by format: the stage is lossy by design
		binary.LittleEndian.PutUint32(fp[4*i:], math.Float32bits(float32(x)))
	}
	fp = fp[4*len(U):]
	for i, x := range V {
		//lint:allow precision -- factors ship as f32 by format: the stage is lossy by design
		binary.LittleEndian.PutUint32(fp[4*i:], math.Float32bits(float32(x)))
	}
	return dst, nil
}

func (s *lowRankStage) Decode(dst []float64, payload []byte, maxParams int) ([]float64, error) {
	if len(payload) < 1 || payload[0] != FormatLowRank {
		return nil, fmt.Errorf("codec: lowrank stage expects a 0x05 payload")
	}
	return decodeLowRank(dst, payload[1:], maxParams)
}

// factorShape folds a flat length into the most square m×n grid with
// m ≤ n that exactly tiles it; m == 1 (primes, tiny vectors) disables
// the stage via the caller's gate.
func factorShape(total int) (m, n int) {
	if total < lowRankMinTotal {
		return 1, total
	}
	m = 1
	for d := 2; d*d <= total; d++ {
		if total%d == 0 {
			m = d
		}
	}
	if m == 1 {
		return 1, total
	}
	return m, total / m
}

// factor runs r-dimensional subspace iteration on A (m×n, row-major):
// V is kept orthonormal, U = A·V, so A ≈ U·Vᵀ is the projection of A
// onto its estimated top-r row space.
func (s *lowRankStage) factor(a []float64, m, n, r int) (U, V []float64) {
	V = make([]float64, n*r)
	U = make([]float64, m*r)
	tmp := make([]float64, m*r)
	// Deterministic pseudo-random init, decorrelated by position hash.
	for i := range V {
		V[i] = float64(mix64(s.seed+mix64(uint64(i)))>>11)/(1<<53) - 0.5
	}
	orthonormalize(V, n, r)
	for it := 0; it < lowRankIters; it++ {
		// tmp = A·V (m×r)
		matmulRows(tmp, a, V, m, n, r)
		orthonormalize(tmp, m, r)
		// V = Aᵀ·tmp (n×r)
		matmulCols(V, a, tmp, m, n, r)
		orthonormalize(V, n, r)
	}
	matmulRows(U, a, V, m, n, r)
	return U, V
}

// matmulRows computes out = A·B for A m×n row-major and B n×r row-major.
func matmulRows(out, a, b []float64, m, n, r int) {
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		o := out[i*r : (i+1)*r]
		clear(o)
		for j, aij := range row {
			if aij == 0 {
				continue
			}
			bj := b[j*r : (j+1)*r]
			for k := range o {
				o[k] += aij * bj[k]
			}
		}
	}
}

// matmulCols computes out = Aᵀ·B for A m×n row-major and B m×r row-major.
func matmulCols(out, a, b []float64, m, n, r int) {
	clear(out)
	for i := 0; i < m; i++ {
		row := a[i*n : (i+1)*n]
		bi := b[i*r : (i+1)*r]
		for j, aij := range row {
			if aij == 0 {
				continue
			}
			o := out[j*r : (j+1)*r]
			for k := range bi {
				o[k] += aij * bi[k]
			}
		}
	}
}

// orthonormalize runs modified Gram-Schmidt over the r columns of the
// rows×r row-major matrix x; a numerically dead column zeroes out rather
// than dividing by ~0 (an all-zero input stays all-zero and decodes to
// the zero vector).
func orthonormalize(x []float64, rows, r int) {
	for c := 0; c < r; c++ {
		for p := 0; p < c; p++ {
			dot := 0.0
			for i := 0; i < rows; i++ {
				dot += x[i*r+c] * x[i*r+p]
			}
			for i := 0; i < rows; i++ {
				x[i*r+c] -= dot * x[i*r+p]
			}
		}
		norm := 0.0
		for i := 0; i < rows; i++ {
			norm += x[i*r+c] * x[i*r+c]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			for i := 0; i < rows; i++ {
				x[i*r+c] = 0
			}
			continue
		}
		inv := 1 / norm
		for i := 0; i < rows; i++ {
			x[i*r+c] *= inv
		}
	}
}

func decodeLowRank(dst []float64, b []byte, maxParams int) ([]float64, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("codec: lowrank payload too short (%d bytes)", len(b))
	}
	m64 := binary.LittleEndian.Uint64(b[0:])
	n64 := binary.LittleEndian.Uint64(b[8:])
	r64 := binary.LittleEndian.Uint64(b[16:])
	b = b[24:]
	// Bound each dimension before multiplying so hostile headers cannot
	// overflow the size arithmetic, then bound the product by maxParams.
	if m64 == 0 || n64 == 0 || m64 > uint64(maxParams) || n64 > uint64(maxParams) ||
		m64*n64 > uint64(maxParams) {
		return nil, fmt.Errorf("codec: lowrank shape %dx%d exceeds limit %d", m64, n64, maxParams)
	}
	if r64 == 0 || r64 > m64 || r64 > n64 {
		return nil, fmt.Errorf("codec: lowrank rank %d out of range for %dx%d", r64, m64, n64)
	}
	m, n, r := int(m64), int(n64), int(r64)
	want := 4 * r * (m + n)
	if len(b) != want {
		return nil, fmt.Errorf("codec: lowrank payload has %d factor bytes, want %d", len(b), want)
	}
	U := make([]float64, m*r)
	for i := range U {
		//lint:allow precision -- widening the f32 factor back to f64, exact
		U[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
	}
	V := make([]float64, n*r)
	vb := b[4*m*r:]
	for i := range V {
		//lint:allow precision -- widening the f32 factor back to f64, exact
		V[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(vb[4*i:])))
	}
	out := sizeVector(dst, m*n)
	for i := 0; i < m; i++ {
		uRow := U[i*r : (i+1)*r]
		o := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			vRow := V[j*r : (j+1)*r]
			sum := 0.0
			for k, u := range uRow {
				sum += u * vRow[k]
			}
			o[j] = sum
		}
	}
	return out, nil
}
