package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// fuzzVec folds arbitrary fuzz bytes into a finite vector: 8 bytes per
// value, non-finite draws mapped into [-1, 1] so value-level properties
// (grid bounds, idempotence) hold.
func fuzzVec(raw []byte) []float64 {
	n := len(raw) / 8
	if n > 1<<12 {
		n = 1 << 12
	}
	vec := make([]float64, n)
	for i := range vec {
		v := math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e18 {
			v = float64(int64(math.Float64bits(v)%2001)-1000) / 1000
		}
		vec[i] = v
	}
	return vec
}

// FuzzQuantStage: decoding arbitrary 0x04 payloads must never panic or
// over-allocate, and the quantizer's canonical encodings must round-trip
// onto their own grid.
func FuzzQuantStage(f *testing.F) {
	q4, _ := NewQuant(4, 7)
	seed1, _ := q4.Encode(nil, Vector{Values: []float64{0, 1.5, 0, -2.25, 0.125}})
	f.Add(seed1, uint8(4))
	sparse := make([]float64, 3000)
	sparse[2], sparse[2999] = 4, -4
	q2, _ := NewQuant(2, 7)
	seed2, _ := q2.Encode(nil, Vector{Values: sparse})
	f.Add(seed2, uint8(2))
	f.Add([]byte{FormatQuant, 4, 1}, uint8(8))
	f.Fuzz(func(t *testing.T, raw []byte, bits uint8) {
		if _, err := DecodeInto(nil, append([]byte{FormatQuant}, raw...), 1<<16); err != nil {
			// Hostile payload rejected — fine. Also fuzz the encode side.
		}
		b := int(bits%7) + 2
		st, err := NewQuant(b, 11)
		if err != nil {
			t.Fatal(err)
		}
		vec := fuzzVec(raw)
		enc, err := st.Encode(nil, Vector{Values: vec})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := DecodeInto(nil, enc, len(vec))
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		lo, hi := quantRange(vec)
		tol := (hi-lo)*1e-12 + 1e-9 // grid arithmetic is float, not exact
		for i, v := range vec {
			if v == 0 {
				if dec[i] != 0 {
					t.Fatalf("zero at %d decoded as %v", i, dec[i])
				}
				continue
			}
			if len(dec) > 0 && (dec[i] < lo-tol || dec[i] > hi+tol) {
				t.Fatalf("decoded %v outside grid [%v,%v]", dec[i], lo, hi)
			}
		}
	})
}

// FuzzLowRankStage: hostile 0x05 payloads must be rejected before
// allocation; canonical factor encodings must decode to the claimed
// shape.
func FuzzLowRankStage(f *testing.F) {
	st, _ := NewLowRank("lowrank", 2, 5)
	smooth := make([]float64, 1024)
	for i := range smooth {
		smooth[i] = math.Sin(float64(i%32)) * math.Cos(float64(i/32))
	}
	if enc, err := st.Encode(nil, Vector{Values: smooth}); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{FormatLowRank, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload := raw
		if len(payload) == 0 || payload[0] != FormatLowRank {
			payload = append([]byte{FormatLowRank}, raw...)
		}
		dec, err := DecodeInto(nil, payload, 1<<16)
		if err != nil {
			return
		}
		if len(dec) > 1<<16 {
			t.Fatalf("decode exceeded maxParams: %d", len(dec))
		}
		// A valid factor payload decodes deterministically.
		dec2, err := DecodeInto(nil, payload, 1<<16)
		if err != nil || len(dec2) != len(dec) {
			t.Fatalf("second decode disagreed: %v", err)
		}
		for i := range dec {
			if math.Float64bits(dec[i]) != math.Float64bits(dec2[i]) {
				t.Fatalf("nondeterministic decode at %d", i)
			}
		}
	})
}

// FuzzEntropyStage: arbitrary coded streams must never panic the range
// decoder, and every canonical coding must invert exactly.
func FuzzEntropyStage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add(AppendBase(nil, []float64{0, 1, 0, -2}))
	f.Add(appendEntropy(nil, AppendBase(nil, make([]float64, 64))))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode side: treat raw as a hostile 0x06 payload.
		if _, err := DecodeInto(nil, append([]byte{FormatEntropy}, raw...), 1<<12); err != nil {
			// rejection is fine
		}
		// Encode side: the coder must losslessly invert any inner bytes.
		if len(raw) == 0 || len(raw) > 1<<12 {
			return
		}
		enc := appendEntropy(nil, raw)
		flag := enc[1]
		rawLen, w := binary.Uvarint(enc[2:])
		if rawLen != uint64(len(raw)) || w <= 0 {
			t.Fatalf("framed length %d, want %d", rawLen, len(raw))
		}
		body := enc[2+w:]
		switch flag {
		case entropyRaw:
			if !bytes.Equal(body, raw) {
				t.Fatal("raw escape corrupted payload")
			}
		case entropyCoded:
			dec := newRangeDecoder(body)
			var m entropyModel
			m.init()
			got := make([]byte, len(raw))
			for i := range got {
				got[i] = dec.decode(&m)
			}
			if dec.overrun {
				t.Fatal("canonical coding under-ran its own stream")
			}
			if !bytes.Equal(got, raw) {
				t.Fatal("range coder did not invert")
			}
		default:
			t.Fatalf("unknown flag 0x%02x", flag)
		}
	})
}

// fuzzChainSpecs is the whitelist FuzzChainRoundTrip draws 1–3 stage
// chains from; every Parse-valid shape is represented.
var fuzzChainSpecs = []string{
	"topk", "q2", "q4", "q8", "lowrank", "lowrank2", "rans",
	"topk,q4", "topk,rans", "q4,rans", "lowrank,rans", "rans,rans",
	"topk,q4,rans", "topk,q2,rans", "lowrank,rans,rans",
}

// FuzzChainRoundTrip: for a random chain over a random vector, the
// encoded payload must be self-describing (DecodeInto with no chain in
// hand equals the chain's RoundTrip bit-for-bit), sizes must agree, and
// the wire image must be idempotent for grid-based chains.
func FuzzChainRoundTrip(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(12), bytes.Repeat([]byte{0x3F, 0x11, 0, 0, 0, 0, 0, 0}, 40))
	f.Add(uint8(6), bytes.Repeat([]byte{0, 0, 0, 0, 0, 0, 0xF0, 0x3F}, 300))
	f.Fuzz(func(t *testing.T, pick uint8, raw []byte) {
		spec := fuzzChainSpecs[int(pick)%len(fuzzChainSpecs)]
		ch, err := Parse(spec, int64(pick))
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		vec := fuzzVec(raw)
		enc := ch.AppendEncode(nil, vec)
		if got := ch.PayloadSize(vec); got != len(enc) {
			t.Fatalf("%s: PayloadSize=%d, encoded %d", spec, got, len(enc))
		}
		dec, err := DecodeInto(nil, enc, len(vec))
		if err != nil {
			t.Fatalf("%s: canonical encoding rejected: %v", spec, err)
		}
		rt := ch.RoundTrip(vec)
		if len(dec) != len(vec) || len(rt) != len(vec) {
			t.Fatalf("%s: length changed: dec=%d rt=%d want %d", spec, len(dec), len(rt), len(vec))
		}
		for i := range dec {
			if math.Float64bits(dec[i]) != math.Float64bits(rt[i]) {
				t.Fatalf("%s[%d]: DecodeInto %v != RoundTrip %v", spec, i, dec[i], rt[i])
			}
		}
	})
}
