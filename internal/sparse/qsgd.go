package sparse

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// QSGD implements the quantization-style baseline the paper positions
// sparsification against (Alistarh et al., NeurIPS 2017): each client
// stochastically quantizes its model *update* to a configurable number of
// bits before upload, and the server averages dequantized updates. Unlike
// sparsification, quantization's compression ceiling is the minimum bit
// width that preserves convergence — the limitation Sec. II-B cites.
//
// The implementation quantizes per synchronization round over the whole
// update vector with a shared scale (max-norm), using unbiased stochastic
// rounding so the expected dequantized update equals the true one.
type QSGD struct {
	id   int
	size int
	agg  Aggregator
	wire Wire

	bits int
	rng  *rand.Rand

	prevGlobal []float64
}

var _ ContextSyncer = (*QSGD)(nil)

// NewQSGD constructs a quantizing strategy with the given bit width
// (2..16; 4 bits is a typical aggressive setting, 8 conservative).
func NewQSGD(clientID, size int, agg Aggregator, bits int, seed int64) (*QSGD, error) {
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("sparse: qsgd bits = %d outside [2, 16]", bits)
	}
	return &QSGD{
		id: clientID, size: size, agg: agg,
		bits: bits,
		rng:  rand.New(rand.NewSource(seed + int64(clientID)*65_537)),
	}, nil
}

// QSGDFactory returns a Factory with 8-bit quantization.
func QSGDFactory(clientID, size int, agg Aggregator) Syncer {
	q, err := NewQSGD(clientID, size, agg, 8, 1)
	if err != nil {
		// bits=8 is always valid; reaching here is a programming error.
		panic(err)
	}
	return q
}

// Name implements Syncer.
func (q *QSGD) Name() string { return "qsgd" }

// SetWire implements WireSetter. With a non-default chain attached the
// quantized rounds charge the chain's measured encoded bytes (the values
// QSGD ships are its own dequantized grid points, which the chain then
// compresses further — e.g. an entropy stage squeezes the grid's symbol
// redundancy) instead of the analytic bits-per-value model.
func (q *QSGD) SetWire(w Wire) { q.wire = w }

// Bits returns the configured quantization width.
func (q *QSGD) Bits() int { return q.bits }

// Quantize stochastically rounds v onto the bit-width grid scaled by the
// vector's max-norm and returns the dequantized values (what the server
// would reconstruct). Exported for tests and the compression ablation.
func (q *QSGD) Quantize(v []float64) []float64 {
	scale := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	out := make([]float64, len(v))
	if scale == 0 {
		return out
	}
	levels := float64(int(1)<<(q.bits-1)) - 1 // signed grid
	for i, x := range v {
		t := x / scale * levels
		lo := math.Floor(t)
		p := t - lo
		if q.rng.Float64() < p {
			lo++
		}
		out[i] = lo / levels * scale
	}
	return out
}

// Sync implements Syncer: quantize the local update, aggregate, apply.
func (q *QSGD) Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	return q.SyncCtx(context.Background(), round, local, contributor)
}

// SyncCtx implements ContextSyncer.
func (q *QSGD) SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	if len(local) != q.size {
		return nil, Traffic{}, fmt.Errorf("qsgd: vector length %d, want %d", len(local), q.size)
	}
	// First round bootstraps full precision to establish a shared base.
	if q.prevGlobal == nil {
		var send []float64
		if contributor {
			send = append([]float64(nil), local...)
		}
		agg, err := AggModel(ctx, q.agg, q.id, round, send)
		if err != nil {
			return nil, Traffic{}, fmt.Errorf("qsgd: bootstrap: %w", err)
		}
		out := make([]float64, q.size)
		if agg != nil {
			copy(out, agg)
		} else {
			copy(out, local)
		}
		q.prevGlobal = append([]float64(nil), out...)
		// The bootstrap is a plain full-precision exchange, so it is charged
		// at the vector codec's actual encoded size; the quantized rounds
		// below keep QSGD's own bits-per-value payload model.
		return out, Traffic{
			UpBytes:      q.wire.Bytes(send),
			DownBytes:    q.wire.ReplyBytes(agg),
			SyncedParams: q.size,
			TotalParams:  q.size,
			FullBytes:    q.wire.FullRef(q.size),
		}, nil
	}

	update := make([]float64, q.size)
	for i := range update {
		update[i] = local[i] - q.prevGlobal[i]
	}
	var send []float64
	if contributor {
		send = q.Quantize(update)
	}
	aggUpd, err := AggModel(ctx, q.agg, q.id, round, send)
	if err != nil {
		return nil, Traffic{}, fmt.Errorf("qsgd: aggregate round %d: %w", round, err)
	}
	out := make([]float64, q.size)
	if aggUpd == nil {
		copy(out, q.prevGlobal)
	} else {
		for i := range out {
			out[i] = q.prevGlobal[i] + aggUpd[i]
		}
	}
	copy(q.prevGlobal, out)

	tr := Traffic{
		SyncedParams: q.size,
		TotalParams:  q.size,
		FullBytes:    q.wire.FullRef(q.size),
	}
	if q.wire.Enabled() {
		// Measured chain bytes: what the negotiated wire actually ships.
		tr.UpBytes = q.wire.Bytes(send)
		tr.DownBytes = q.wire.ReplyBytes(aggUpd)
	} else {
		// Analytic wire cost: bits per value + the shared scale, both
		// directions (downlink carries the aggregated update at the same
		// width). The default vector codec has no sub-float32 width, so the
		// model stands in for a bespoke QSGD packing.
		payload := (q.size*q.bits+7)/8 + 8
		tr.UpBytes = payload + HeaderBytes
		tr.DownBytes = payload + HeaderBytes
	}
	return out, tr, nil
}
