package sparse

import (
	"math/bits"
	"sync"
)

// Pooled wire and vector buffers, the tensor-arena pattern applied to the
// communication path: power-of-two size classes, pointer-to-slice pooling
// (a bare []byte in a sync.Pool re-boxes the slice header on every Put),
// fragmentation bounded at 2×. A steady-state Get/Put pair performs no
// allocation, which is what lets a whole flrpc collective round run
// without touching the GC.
//
// Contract (mirrors tensor.GetScratch/PutScratch, and checked by the same
// fedsu-lint scratchpair analyzer): Get returns storage with UNSPECIFIED
// contents beyond the documented length; Put transfers ownership back to
// the pool, after which neither the pointer nor any slice aliasing its
// storage may be touched. Both pools are safe for concurrent use.

// poolClasses covers 2^0 .. 2^(poolClasses-1) bytes or elements; the top
// class is 2^26 (64 MiB of bytes, 512 MiB of float64s) — larger requests
// bypass the pool and fall to the GC.
const poolClasses = 27

var (
	wireBufPool [poolClasses]sync.Pool
	vecPool     [poolClasses]sync.Pool
)

func poolClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}

// GetWireBuf returns a byte buffer with zero length and capacity at least
// n, ready for the Append* encoders. Release with PutWireBuf.
func GetWireBuf(n int) *[]byte {
	c := poolClass(n)
	if c >= poolClasses {
		b := make([]byte, 0, n)
		return &b
	}
	p, ok := wireBufPool[c].Get().(*[]byte)
	if !ok {
		b := make([]byte, 0, 1<<uint(c))
		return &b
	}
	*p = (*p)[:0]
	return p
}

// PutWireBuf returns a buffer to the pool. Passing nil is a no-op. The
// buffer (and any slice of it) must not be used afterwards.
func PutWireBuf(p *[]byte) {
	if p == nil {
		return
	}
	c := cap(*p)
	if c == 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1 // floor(log2 cap): satisfies Get(n ≤ 2^cls)
	if cls >= poolClasses {
		return
	}
	*p = (*p)[:0]
	wireBufPool[cls].Put(p)
}

// GetVec returns a float64 slice of length n with UNSPECIFIED contents;
// callers must fully overwrite it (DecodeVectorPayloadInto does). Release
// with PutVec.
func GetVec(n int) *[]float64 {
	c := poolClass(n)
	if c >= poolClasses {
		v := make([]float64, n)
		return &v
	}
	p, ok := vecPool[c].Get().(*[]float64)
	if !ok {
		v := make([]float64, 1<<uint(c))
		p = &v
	}
	*p = (*p)[:n]
	return p
}

// PutVec returns a vector to the pool. Passing nil is a no-op. The vector
// (and any slice of it) must not be used afterwards.
func PutVec(p *[]float64) {
	if p == nil {
		return
	}
	c := cap(*p)
	if c == 0 {
		return
	}
	cls := bits.Len(uint(c)) - 1
	if cls >= poolClasses {
		return
	}
	*p = (*p)[:c]
	vecPool[cls].Put(p)
}
