package sparse

import "fedsu/internal/sparse/codec"

// The self-describing dense-vector wire codec used by flrpc lives in
// internal/sparse/codec since the compression-pipeline refactor: the
// historical bitmap/index encoding is the codec package's base stage,
// and these wrappers keep the sparse-package API (and its wire image)
// exactly as PR 4 shipped it — the exact-size bitmap/index selection,
// the ~3 % density crossover, float32 values, zeros elided. The codec
// package adds the chainable stages (quantization, low-rank factors,
// entropy coding); DecodeVectorPayloadInto dispatches on the leading
// format tag, so a receiver decodes chain payloads with no negotiation.
//
// Wire semantics, shared with QuantizeWire: zeros (including negative
// zero) are elided and decode as +0; nonzero values round-trip through
// float32. Tests comparing values across the wire must compare against
// QuantizeWire(sent), not sent. Under a non-default chain the wire
// image is the chain's round-trip instead (codec.Chain.RoundTrip).

const (
	vecFormatBitmap = codec.FormatBitmap
	vecFormatIndex  = codec.FormatIndex
)

// defaultMaxVectorParams bounds the decoded vector length accepted when
// the caller does not supply its own limit (see codec.DefaultMaxParams).
const defaultMaxVectorParams = codec.DefaultMaxParams

// MessageBytes is the actual wire cost of one collective message carrying
// vec: HeaderBytes of framing plus the vector codec's exact encoded size.
// A nil vec (abstention, or a collective that produced no result) costs the
// header alone. This is the number the strategies charge their Traffic
// accounting with — actual encoded bytes, not a per-parameter estimate.
// Chain-aware strategies charge Wire.Bytes instead, which reduces to this
// under the default chain.
func MessageBytes(vec []float64) int {
	if vec == nil {
		return HeaderBytes
	}
	return HeaderBytes + codec.BaseSize(vec)
}

// DenseMessageBytes is MessageBytes for a fully-dense vector of n
// parameters, computed without materializing it: with every entry nonzero
// the codec always picks the bitmap form, whose size depends only on n.
// Used as the full-model reference cost (sparsification ratios, first-round
// load estimates).
func DenseMessageBytes(n int) int {
	return HeaderBytes + codec.DenseBaseSize(n)
}

// QuantizeWire maps v to the value a receiver observes after one trip
// through the vector codec: zeros collapse to +0, everything else rounds
// through float32.
func QuantizeWire(v float64) float64 {
	if v == 0 {
		return 0
	}
	return float64(float32(v))
}

// EncodeVectorPayload encodes vec with AppendVectorPayload into a fresh
// buffer.
func EncodeVectorPayload(vec []float64) []byte {
	return AppendVectorPayload(nil, vec)
}

// AppendVectorPayload appends the base-stage vector encoding of vec to
// dst and returns the extended slice, growing dst at most once. The
// format tag is chosen by exact encoded size, so VectorPayloadSize(vec)
// always predicts the number of bytes appended.
func AppendVectorPayload(dst []byte, vec []float64) []byte {
	return codec.AppendBase(dst, vec)
}

// VectorPayloadSize is the exact encoded size of vec, in bytes, without
// materializing the payload — the number netem traffic accounting charges.
func VectorPayloadSize(vec []float64) int {
	return codec.BaseSize(vec)
}

// DecodeVectorPayload decodes a vector payload into a fresh slice,
// applying the default length cap.
func DecodeVectorPayload(b []byte) ([]float64, error) {
	return DecodeVectorPayloadInto(nil, b, 0)
}

// DecodeVectorPayloadInto decodes a vector payload, reusing dst's storage
// when its capacity suffices (so a pooled GetVec slice makes steady-state
// decoding allocation-free). maxParams bounds the claimed vector length —
// receivers that know the model size should pass it; maxParams <= 0 applies
// defaultMaxVectorParams. The returned slice is fully overwritten: elided
// positions are +0. Every chain stage's tag is accepted (the encoding is
// self-describing), with the PR 4 allocation-bomb bounds applied per tag.
func DecodeVectorPayloadInto(dst []float64, b []byte, maxParams int) ([]float64, error) {
	return codec.DecodeInto(dst, b, maxParams)
}

// sizeVector returns dst resized to n, reusing its storage when possible.
// The result is never nil: a decoded empty vector must stay distinguishable
// from "no vector" (flrpc's abstain/Nil flags rely on it).
func sizeVector(dst []float64, n int) []float64 {
	if dst == nil && n == 0 {
		return []float64{}
	}
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}
