package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements the self-describing dense-vector wire codec used by
// flrpc: a one-byte format tag followed by a bitmap or index body over the
// vector's NONZERO entries, with float32 values (BytesPerValue), the
// paper's 32-bit traffic model. The encoder picks whichever body is
// smaller for the vector at hand — the documented ~3 % density crossover —
// so a FedSU sparse round ships a few varints per selected parameter while
// a FedAvg dense round degrades gracefully to bitmap + 4 bytes/param, still
// well under half of gob's float64 framing.
//
// Wire semantics, shared with QuantizeWire: zeros (including negative
// zero) are elided and decode as +0; nonzero values round-trip through
// float32. Tests comparing values across the wire must compare against
// QuantizeWire(sent), not sent.

const (
	vecFormatBitmap = 0x01
	vecFormatIndex  = 0x02
)

// defaultMaxVectorParams bounds the decoded vector length accepted when the
// caller does not supply its own limit: an index body is legitimately tiny
// for any total (an all-zero tail costs nothing), so unlike the raw payload
// decoders the length header here cannot be bounded by the input size and
// needs an explicit cap against allocation bombs.
const defaultMaxVectorParams = 1 << 24

// MessageBytes is the actual wire cost of one collective message carrying
// vec: HeaderBytes of framing plus the vector codec's exact encoded size.
// A nil vec (abstention, or a collective that produced no result) costs the
// header alone. This is the number the strategies charge their Traffic
// accounting with — actual encoded bytes, not a per-parameter estimate.
func MessageBytes(vec []float64) int {
	if vec == nil {
		return HeaderBytes
	}
	return HeaderBytes + VectorPayloadSize(vec)
}

// DenseMessageBytes is MessageBytes for a fully-dense vector of n
// parameters, computed without materializing it: with every entry nonzero
// the codec always picks the bitmap form, whose size depends only on n.
// Used as the full-model reference cost (sparsification ratios, first-round
// load estimates).
func DenseMessageBytes(n int) int {
	return HeaderBytes + 1 + BitmapPayloadBytes(n, n)
}

// QuantizeWire maps v to the value a receiver observes after one trip
// through the vector codec: zeros collapse to +0, everything else rounds
// through float32.
func QuantizeWire(v float64) float64 {
	if v == 0 {
		return 0
	}
	return float64(float32(v))
}

// EncodeVectorPayload encodes vec with AppendVectorPayload into a fresh
// buffer.
func EncodeVectorPayload(vec []float64) []byte {
	return AppendVectorPayload(nil, vec)
}

// AppendVectorPayload appends the vector encoding of vec to dst and
// returns the extended slice, growing dst at most once. The format tag is
// chosen by exact encoded size, so VectorPayloadSize(vec) always predicts
// the number of bytes appended.
func AppendVectorPayload(dst []byte, vec []float64) []byte {
	nnz, varBytes := vectorStats(vec)
	bitmapSize := 1 + BitmapPayloadBytes(len(vec), nnz)
	indexSize := 1 + 8 + 8 + varBytes + 4*nnz
	base := len(dst)
	if bitmapSize <= indexSize {
		dst = growBytes(dst, bitmapSize)
		encodeVectorBitmap(dst[base:], vec, nnz)
	} else {
		dst = growBytes(dst, indexSize)
		encodeVectorIndex(dst[base:], vec, nnz)
	}
	return dst
}

// VectorPayloadSize is the exact encoded size of vec, in bytes, without
// materializing the payload — the number netem traffic accounting charges.
func VectorPayloadSize(vec []float64) int {
	nnz, varBytes := vectorStats(vec)
	bitmapSize := 1 + BitmapPayloadBytes(len(vec), nnz)
	indexSize := 1 + 8 + 8 + varBytes + 4*nnz
	if bitmapSize <= indexSize {
		return bitmapSize
	}
	return indexSize
}

// vectorStats scans vec once for the nonzero count and the exact
// delta-varint footprint of the nonzero positions.
func vectorStats(vec []float64) (nnz, varBytes int) {
	prev := 0
	for i, v := range vec {
		if v != 0 {
			varBytes += uvarintLen(uint64(i - prev))
			prev = i
			nnz++
		}
	}
	return nnz, varBytes
}

// encodeVectorBitmap writes the bitmap form into out, which has exactly
// the required size.
func encodeVectorBitmap(out []byte, vec []float64, nnz int) {
	out[0] = vecFormatBitmap
	body := out[1:]
	binary.LittleEndian.PutUint64(body[:8], uint64(len(vec)))
	bits := body[8 : 8+(len(vec)+7)/8]
	clear(bits)
	vals := body[8+len(bits):]
	k := 0
	for i, v := range vec {
		if v != 0 {
			bits[i/8] |= 1 << (i % 8)
			binary.LittleEndian.PutUint32(vals[4*k:], math.Float32bits(float32(v)))
			k++
		}
	}
}

// encodeVectorIndex writes the index form into out, which has exactly the
// required size: tag, total length, count, delta varints, float32 values.
func encodeVectorIndex(out []byte, vec []float64, nnz int) {
	out[0] = vecFormatIndex
	body := out[1:]
	binary.LittleEndian.PutUint64(body[:8], uint64(len(vec)))
	binary.LittleEndian.PutUint64(body[8:16], uint64(nnz))
	pos := 16
	prev := 0
	valBase := len(body) - 4*nnz
	k := 0
	for i, v := range vec {
		if v != 0 {
			pos += binary.PutUvarint(body[pos:], uint64(i-prev))
			prev = i
			binary.LittleEndian.PutUint32(body[valBase+4*k:], math.Float32bits(float32(v)))
			k++
		}
	}
}

// DecodeVectorPayload decodes a vector payload into a fresh slice,
// applying the default length cap.
func DecodeVectorPayload(b []byte) ([]float64, error) {
	return DecodeVectorPayloadInto(nil, b, 0)
}

// DecodeVectorPayloadInto decodes a vector payload, reusing dst's storage
// when its capacity suffices (so a pooled GetVec slice makes steady-state
// decoding allocation-free). maxParams bounds the claimed vector length —
// receivers that know the model size should pass it; maxParams <= 0 applies
// defaultMaxVectorParams. The returned slice is fully overwritten: elided
// positions are +0.
func DecodeVectorPayloadInto(dst []float64, b []byte, maxParams int) ([]float64, error) {
	if maxParams <= 0 {
		maxParams = defaultMaxVectorParams
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("sparse: empty vector payload")
	}
	format, body := b[0], b[1:]
	switch format {
	case vecFormatBitmap:
		return decodeVectorBitmap(dst, body, maxParams)
	case vecFormatIndex:
		return decodeVectorIndex(dst, body, maxParams)
	default:
		return nil, fmt.Errorf("sparse: unknown vector payload format 0x%02x", format)
	}
}

// sizeVector returns dst resized to n, reusing its storage when possible.
// The result is never nil: a decoded empty vector must stay distinguishable
// from "no vector" (flrpc's abstain/Nil flags rely on it).
func sizeVector(dst []float64, n int) []float64 {
	if dst == nil && n == 0 {
		return []float64{}
	}
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float64, n)
}

func decodeVectorBitmap(dst []float64, b []byte, maxParams int) ([]float64, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("sparse: bitmap vector payload too short (%d bytes)", len(b))
	}
	n64 := binary.LittleEndian.Uint64(b[:8])
	b = b[8:]
	// Same wire-robustness bound as DecodeBitmapPayload: the bitmap itself
	// must be present, which caps the claimed length by the input size.
	if n64 > uint64(len(b))*8 || n64 > uint64(maxParams) {
		return nil, fmt.Errorf("sparse: bitmap vector length %d exceeds payload or limit", n64)
	}
	n := int(n64)
	nb := (n + 7) / 8
	bits := b[:nb]
	vals := b[nb:]
	out := sizeVector(dst, n)
	k := 0
	for i := 0; i < n; i++ {
		if bits[i/8]&(1<<(i%8)) != 0 {
			if 4*k+4 > len(vals) {
				return nil, fmt.Errorf("sparse: bitmap vector payload truncated")
			}
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(vals[4*k:])))
			k++
		} else {
			out[i] = 0
		}
	}
	if len(vals) != 4*k {
		return nil, fmt.Errorf("sparse: bitmap vector payload has %d value bytes, want %d", len(vals), 4*k)
	}
	return out, nil
}

func decodeVectorIndex(dst []float64, b []byte, maxParams int) ([]float64, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("sparse: index vector payload too short (%d bytes)", len(b))
	}
	total64 := binary.LittleEndian.Uint64(b[:8])
	count64 := binary.LittleEndian.Uint64(b[8:16])
	b = b[16:]
	if total64 > uint64(maxParams) {
		return nil, fmt.Errorf("sparse: index vector length %d exceeds limit %d", total64, maxParams)
	}
	// Each entry needs one varint byte plus four value bytes, bounding the
	// claimed count by the remaining payload before any allocation.
	if count64 > uint64(len(b))/5 || count64 > total64 {
		return nil, fmt.Errorf("sparse: index vector payload truncated")
	}
	total, count := int(total64), int(count64)
	out := sizeVector(dst, total)
	clear(out)
	valBase := len(b) - 4*count
	pos := 0
	prev := 0
	for k := 0; k < count; k++ {
		d, w := binary.Uvarint(b[pos:valBase])
		if w <= 0 {
			return nil, fmt.Errorf("sparse: bad varint at entry %d", k)
		}
		pos += w
		// The first delta is the absolute index (encoder starts prev at 0),
		// later deltas are gaps. Checking d before the int conversion keeps
		// a hostile varint from overflowing the position arithmetic.
		if d > uint64(total) {
			return nil, fmt.Errorf("sparse: index delta overflow at entry %d", k)
		}
		idx := prev + int(d)
		if idx >= total {
			return nil, fmt.Errorf("sparse: index out of range at entry %d", k)
		}
		out[idx] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[valBase+4*k:])))
		prev = idx
	}
	if pos != valBase {
		return nil, fmt.Errorf("sparse: index vector payload has %d stray varint bytes", valBase-pos)
	}
	return out, nil
}
