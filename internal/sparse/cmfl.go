package sparse

import (
	"context"
	"fmt"
)

// CMFL implements Communication-Mitigated Federated Learning (Wang et al.,
// ICDCS 2019): a client uploads its local update only when a sufficient
// fraction of the update's element signs agree with the estimated global
// update direction (the previous round's global update). Irrelevant updates
// are withheld, saving uplink traffic; the full global model is still
// downloaded every round.
type CMFL struct {
	id   int
	size int
	agg  Aggregator
	wire Wire

	// RelevanceThreshold is the minimum sign-agreement fraction required
	// to upload (0.8 in the paper).
	relevance float64

	prevGlobal       []float64
	lastGlobalUpdate []float64
	haveUpdate       bool
}

var _ ContextSyncer = (*CMFL)(nil)

// NewCMFL constructs a CMFL strategy with the given relevance threshold.
func NewCMFL(clientID, size int, agg Aggregator, relevance float64) *CMFL {
	return &CMFL{id: clientID, size: size, agg: agg, relevance: relevance}
}

// CMFLFactory returns a Factory using the paper's default threshold 0.8.
func CMFLFactory(clientID, size int, agg Aggregator) Syncer {
	return NewCMFL(clientID, size, agg, 0.8)
}

// Name implements Syncer.
func (c *CMFL) Name() string { return "cmfl" }

// SetWire implements WireSetter.
func (c *CMFL) SetWire(w Wire) { c.wire = w }

// Relevance returns the sign-agreement fraction between the local update
// and the estimated global update.
func (c *CMFL) Relevance(local []float64) float64 {
	if !c.haveUpdate {
		return 1
	}
	agree := 0
	for i := range local {
		u := local[i] - c.prevGlobal[i]
		g := c.lastGlobalUpdate[i]
		if (u >= 0) == (g >= 0) {
			agree++
		}
	}
	return float64(agree) / float64(len(local))
}

// Sync implements Syncer.
func (c *CMFL) Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	return c.SyncCtx(context.Background(), round, local, contributor)
}

// SyncCtx implements ContextSyncer.
func (c *CMFL) SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	if len(local) != c.size {
		return nil, Traffic{}, fmt.Errorf("cmfl: vector length %d, want %d", len(local), c.size)
	}
	relevant := true
	if c.prevGlobal != nil {
		relevant = c.Relevance(local) >= c.relevance
	}
	send := local
	if !contributor || !relevant {
		send = nil
	}
	global, err := AggModel(ctx, c.agg, c.id, round, send)
	if err != nil {
		return nil, Traffic{}, fmt.Errorf("cmfl: aggregate round %d: %w", round, err)
	}

	out := make([]float64, c.size)
	if global == nil {
		// Every client withheld; the global model is unchanged.
		if c.prevGlobal != nil {
			copy(out, c.prevGlobal)
		} else {
			copy(out, local)
		}
	} else {
		copy(out, global)
	}

	if c.prevGlobal != nil {
		upd := make([]float64, c.size)
		for i := range upd {
			upd[i] = out[i] - c.prevGlobal[i]
		}
		c.lastGlobalUpdate = upd
		c.haveUpdate = true
	}
	c.prevGlobal = out

	// Actual encoded bytes: a withheld (or abstaining) upload costs the
	// framing header only. The downlink always carries the full global model
	// the client syncs to — CMFL saves uplink, never downlink — so it is
	// charged as the dense encoding of out rather than global (the two
	// coincide whenever anyone contributed; when the whole fleet withheld the
	// server still redistributes the unchanged model).
	tr := Traffic{
		DownBytes:   c.wire.ReplyBytes(out),
		TotalParams: c.size,
		UpBytes:     c.wire.Bytes(send),
		FullBytes:   c.wire.FullRef(c.size),
	}
	if relevant {
		tr.SyncedParams = c.size
	}
	return out, tr, nil
}
