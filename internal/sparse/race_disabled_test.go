//go:build !race

package sparse

// raceEnabled gates allocation assertions that cannot hold under the race
// detector; see race_enabled_test.go.
const raceEnabled = false
