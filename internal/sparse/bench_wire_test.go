package sparse

import (
	"fmt"
	"testing"
)

// BenchmarkVectorPayload tracks the pooled encode/decode round trip flrpc
// runs per contribution: AppendVectorPayload into a pooled wire buffer,
// then DecodeVectorPayloadInto over a pooled vector. density=1 is a FedAvg
// dense round (bitmap form); density=0.01 is a FedSU sparse round (index
// form). SetBytes reports the encoded payload size, so MB/s compares the
// two forms directly.
func BenchmarkVectorPayload(b *testing.B) {
	const n = 100_000
	for _, density := range []float64{1, 0.01} {
		b.Run(fmt.Sprintf("density=%g", density), func(b *testing.B) {
			vec := make([]float64, n)
			step := int(1 / density)
			for i := 0; i < n; i += step {
				vec[i] = 1 + float64(i)
			}
			buf := GetWireBuf(VectorPayloadSize(vec))
			defer PutWireBuf(buf)
			dst := GetVec(n)
			defer PutVec(dst)
			b.SetBytes(int64(VectorPayloadSize(vec)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				*buf = AppendVectorPayload((*buf)[:0], vec)
				out, err := DecodeVectorPayloadInto(*dst, *buf, n)
				if err != nil {
					b.Fatal(err)
				}
				*dst = out
			}
		})
	}
}
