package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Partial-aggregate wire message: what a tree tier (fl.Tree leaf or mid
// aggregator) forwards upward — the canonical partial SUM over its rank
// block, the contributor WEIGHT it folded, and the client TRAFFIC it
// accounted. Unlike the client-upload vector codec (wire.go), the sum
// ships as raw float64: a partial is an intermediate of the canonical
// pairwise fold, and rounding it through float32 at every tier would
// break the bit-identity contract between a tree run and a flat server
// over the same cohort. Partial sums are dense (a sum of models has no
// exploitable zero structure), so sparsity elision would buy nothing for
// the precision it costs. The root fan-in is O(fanout), so the 8
// bytes/param price is paid a handful of times per round, not once per
// participant.

// partialFormatV1 tags the partial-aggregate payload; the tag space is
// shared with the vector codec (0x01/0x02) so a misrouted payload fails
// loudly instead of decoding as the wrong message.
const partialFormatV1 = 0x03

// defaultMaxPartialParams bounds the decoded sum length against hostile
// length headers when the caller does not know the model size.
const defaultMaxPartialParams = defaultMaxVectorParams

// Partial is one decoded partial-aggregate message.
type Partial struct {
	// RankLo is the first roster rank of the sender's aligned block (the
	// receiver validates it against the sender's child slot).
	RankLo int
	// Weight is the contributor count folded into Sum (0 with a nil Sum
	// for an identity/empty partial).
	Weight int
	// Traffic is the cumulative encoded client-upload bytes the subtree
	// accounted, carried upward for RoundStats.
	Traffic int64
	// Sum is the canonical partial sum (raw float64; nil for identity).
	Sum []float64
}

// PartialPayloadSize is the exact encoded size of a partial carrying an
// n-element sum.
func PartialPayloadSize(n int) int {
	return 1 + 8*4 + 8*n
}

// AppendPartialPayload appends the encoding of p to dst and returns the
// extended slice, growing dst at most once. An identity partial (nil
// Sum, zero Weight) encodes with span 0.
func AppendPartialPayload(dst []byte, p Partial) []byte {
	base := len(dst)
	dst = growBytes(dst, PartialPayloadSize(len(p.Sum)))
	out := dst[base:]
	out[0] = partialFormatV1
	binary.LittleEndian.PutUint64(out[1:], uint64(p.RankLo))
	binary.LittleEndian.PutUint64(out[9:], uint64(len(p.Sum)))
	binary.LittleEndian.PutUint64(out[17:], uint64(p.Weight))
	binary.LittleEndian.PutUint64(out[25:], uint64(p.Traffic))
	vals := out[33:]
	for i, v := range p.Sum {
		binary.LittleEndian.PutUint64(vals[8*i:], math.Float64bits(v))
	}
	return dst
}

// EncodePartialPayload encodes p into a fresh buffer.
func EncodePartialPayload(p Partial) []byte {
	return AppendPartialPayload(nil, p)
}

// DecodePartialPayload decodes a partial payload with the default length
// cap.
func DecodePartialPayload(b []byte) (Partial, error) {
	return DecodePartialPayloadInto(nil, b, 0)
}

// DecodePartialPayloadInto decodes a partial payload, reusing dst's
// storage for the sum when its capacity suffices (a pooled GetVec slice
// makes steady-state decoding allocation-free). maxParams bounds the
// claimed sum length — receivers that know the model size should pass
// it; maxParams <= 0 applies defaultMaxPartialParams. The claimed span is
// additionally bounded by the actual payload size BEFORE any allocation,
// so a hostile header cannot force an allocation bomb.
func DecodePartialPayloadInto(dst []float64, b []byte, maxParams int) (Partial, error) {
	if maxParams <= 0 {
		maxParams = defaultMaxPartialParams
	}
	if len(b) < 1 {
		return Partial{}, fmt.Errorf("sparse: empty partial payload")
	}
	if b[0] != partialFormatV1 {
		return Partial{}, fmt.Errorf("sparse: unknown partial payload format 0x%02x", b[0])
	}
	body := b[1:]
	if len(body) < 32 {
		return Partial{}, fmt.Errorf("sparse: partial payload too short (%d bytes)", len(b))
	}
	rankLo := binary.LittleEndian.Uint64(body[0:8])
	span := binary.LittleEndian.Uint64(body[8:16])
	weight := binary.LittleEndian.Uint64(body[16:24])
	traffic := binary.LittleEndian.Uint64(body[24:32])
	vals := body[32:]
	// Allocation bound: the sum must actually be present in the payload.
	if span > uint64(len(vals))/8 || span > uint64(maxParams) {
		return Partial{}, fmt.Errorf("sparse: partial span %d exceeds payload or limit", span)
	}
	if uint64(len(vals)) != 8*span {
		return Partial{}, fmt.Errorf("sparse: partial payload has %d value bytes, want %d", len(vals), 8*span)
	}
	const maxMeta = 1 << 40 // rank/weight sanity: far above any roster, far below overflow
	if rankLo > maxMeta || weight > maxMeta || traffic > uint64(1)<<62 {
		return Partial{}, fmt.Errorf("sparse: partial metadata out of range")
	}
	if weight > 0 && span == 0 {
		return Partial{}, fmt.Errorf("sparse: partial weight %d with empty sum", weight)
	}
	p := Partial{RankLo: int(rankLo), Weight: int(weight), Traffic: int64(traffic)}
	if span == 0 {
		return p, nil
	}
	sum := sizeVector(dst, int(span))
	for i := range sum {
		sum[i] = math.Float64frombits(binary.LittleEndian.Uint64(vals[8*i:]))
	}
	p.Sum = sum
	return p, nil
}
