package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

// identityAgg treats the single client as the whole fleet.
type identityAgg struct{}

func (identityAgg) AggregateModel(_, _ int, values []float64) ([]float64, error) {
	if values == nil {
		return nil, nil
	}
	return append([]float64(nil), values...), nil
}

func (identityAgg) AggregateError(_, _ int, values []float64) ([]float64, error) {
	if values == nil {
		return nil, nil
	}
	return append([]float64(nil), values...), nil
}

func TestTrafficAdd(t *testing.T) {
	a := Traffic{UpBytes: 10, DownBytes: 20, SyncedParams: 3, CheckedParams: 1, TotalParams: 5}
	b := Traffic{UpBytes: 1, DownBytes: 2, SyncedParams: 4, CheckedParams: 2, TotalParams: 5}
	a.Add(b)
	if a.UpBytes != 11 || a.DownBytes != 22 || a.SyncedParams != 7 || a.CheckedParams != 3 || a.TotalParams != 10 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestSparsificationRatio(t *testing.T) {
	full := Traffic{
		UpBytes:      DenseMessageBytes(100),
		DownBytes:    DenseMessageBytes(100),
		SyncedParams: 100, TotalParams: 100,
	}
	if r := full.SparsificationRatio(); r != 0 {
		t.Errorf("full exchange ratio = %v, want 0", r)
	}
	half := Traffic{
		UpBytes:      50*BytesPerValue + HeaderBytes,
		DownBytes:    50*BytesPerValue + HeaderBytes,
		SyncedParams: 50, TotalParams: 100,
	}
	if r := half.SparsificationRatio(); r <= 0.3 || r >= 0.6 {
		t.Errorf("half exchange ratio = %v, want ≈0.43", r)
	}
	if (Traffic{}).SparsificationRatio() != 0 {
		t.Error("zero traffic ratio must be 0")
	}
}

// Property: ratio is always within [0, 1].
func TestSparsificationRatioBounds(t *testing.T) {
	f := func(up, down uint16, total uint8) bool {
		tr := Traffic{UpBytes: int(up), DownBytes: int(down), TotalParams: int(total)}
		r := tr.SparsificationRatio()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFedAvgPassesThrough(t *testing.T) {
	s := NewFedAvg(0, 3, identityAgg{})
	if s.Name() != "fedavg" {
		t.Errorf("Name = %q", s.Name())
	}
	local := []float64{1, 2, 3}
	out, tr, err := s.Sync(0, local, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if out[i] != local[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], local[i])
		}
	}
	if tr.SyncedParams != 3 || tr.TotalParams != 3 {
		t.Errorf("traffic = %+v", tr)
	}
	if tr.SparsificationRatio() != 0 {
		t.Errorf("FedAvg ratio = %v, want 0", tr.SparsificationRatio())
	}
}

func TestFedAvgLengthMismatch(t *testing.T) {
	s := NewFedAvg(0, 3, identityAgg{})
	if _, _, err := s.Sync(0, []float64{1}, true); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestCMFLRelevanceGate(t *testing.T) {
	s := NewCMFL(0, 4, identityAgg{}, 0.8)
	// Round 0: no global update yet → always uploads.
	out, tr, err := s.Sync(0, []float64{1, 1, 1, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SyncedParams != 4 {
		t.Fatalf("first round must upload, synced = %d", tr.SyncedParams)
	}
	// Round 1: moves establish the global update direction (+1 each).
	out, tr, err = s.Sync(1, []float64{2, 2, 2, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SyncedParams != 4 {
		t.Fatalf("second round should upload, synced = %d", tr.SyncedParams)
	}
	_ = out
	// Round 2: local update direction fully opposite → relevance 0 → skip.
	_, tr, err = s.Sync(2, []float64{1, 1, 1, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SyncedParams != 0 {
		t.Errorf("opposite update should be withheld, synced = %d", tr.SyncedParams)
	}
	if tr.UpBytes != HeaderBytes {
		t.Errorf("withheld upload bytes = %d, want header only", tr.UpBytes)
	}
	if tr.DownBytes <= HeaderBytes {
		t.Error("CMFL always downloads the full model")
	}
}

func TestCMFLRelevanceComputation(t *testing.T) {
	s := NewCMFL(0, 4, identityAgg{}, 0.8)
	s.Sync(0, []float64{0, 0, 0, 0}, true)
	s.Sync(1, []float64{1, 1, 1, -1}, true) // global update (+,+,+,−)
	// Local update (+,+,−,−): agreement on indices 0,1,3 → 0.75.
	rel := s.Relevance([]float64{2, 2, 0.5, -2})
	if math.Abs(rel-0.75) > 1e-12 {
		t.Errorf("relevance = %v, want 0.75", rel)
	}
}

func TestAPFFreezesConvergedParameter(t *testing.T) {
	s := NewAPF(0, 2, identityAgg{}, 0.05)
	if s.Name() != "apf" {
		t.Errorf("Name = %q", s.Name())
	}
	// Param 0 oscillates around 0 (converged); param 1 moves steadily.
	// Freezing alternates with probe rounds, so count frozen rounds rather
	// than sampling the final round.
	frozenRounds := [2]int{}
	for k := 0; k < 20; k++ {
		osc := 0.001
		if k%2 == 0 {
			osc = -0.001
		}
		local := []float64{osc, float64(k)}
		if _, _, err := s.Sync(k, local, true); err != nil {
			t.Fatal(err)
		}
		for i, f := range s.frozen {
			if f {
				frozenRounds[i]++
			}
		}
	}
	if frozenRounds[0] < 8 {
		t.Errorf("oscillating parameter frozen %d/20 rounds, want most", frozenRounds[0])
	}
	if frozenRounds[1] != 0 {
		t.Errorf("steadily-moving parameter froze for %d rounds", frozenRounds[1])
	}
}

func TestAPFTrafficShrinksWithFreezing(t *testing.T) {
	s := NewAPF(0, 10, identityAgg{}, 0.05)
	minSynced, everFrozen := 10, 0
	for k := 0; k < 12; k++ {
		local := make([]float64, 10)
		for i := range local {
			// All params oscillate → all should freeze.
			local[i] = 0.001 * math.Pow(-1, float64(k))
		}
		_, tr, err := s.Sync(k, local, true)
		if err != nil {
			t.Fatal(err)
		}
		if tr.SyncedParams < minSynced {
			minSynced = tr.SyncedParams
		}
		if n := s.FrozenCount(); n > everFrozen {
			everFrozen = n
		}
	}
	if everFrozen == 0 {
		t.Fatal("no parameters ever froze")
	}
	if minSynced >= 10 {
		t.Errorf("min synced = %d, want < 10 under freezing", minSynced)
	}
}

func TestAPFThawAfterPeriod(t *testing.T) {
	s := NewAPF(0, 1, identityAgg{}, 0.05)
	frozeAt := -1
	for k := 0; k < 30; k++ {
		v := 0.001 * math.Pow(-1, float64(k))
		if frozeAt >= 0 {
			// After freezing, drive a strong trend so the probe detects
			// movement and keeps the parameter active.
			v = float64(k)
		}
		s.Sync(k, []float64{v}, true)
		if frozeAt < 0 && s.frozen[0] {
			frozeAt = k
		}
	}
	if frozeAt < 0 {
		t.Fatal("parameter never froze")
	}
	if s.frozen[0] {
		t.Error("parameter should thaw after its freezing period when movement resumes")
	}
}

func TestFactorySignatures(t *testing.T) {
	for _, f := range []Factory{FedAvgFactory, CMFLFactory, APFFactory} {
		s := f(3, 5, identityAgg{})
		if s == nil {
			t.Fatal("factory returned nil")
		}
		if _, _, err := s.Sync(0, []float64{1, 2, 3, 4, 5}, true); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestNonContributorAbstains(t *testing.T) {
	// With a single client abstaining, the aggregate is nil and each
	// strategy must fall back to its local/previous values without error.
	strategies := []Syncer{
		NewFedAvg(0, 2, identityAgg{}),
		NewCMFL(0, 2, identityAgg{}, 0.8),
		NewAPF(0, 2, identityAgg{}, 0.05),
	}
	for _, s := range strategies {
		out, _, err := s.Sync(0, []float64{1, 2}, false)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if out[0] != 1 || out[1] != 2 {
			t.Errorf("%s: non-contributor with empty fleet should keep local values, got %v", s.Name(), out)
		}
	}
}
