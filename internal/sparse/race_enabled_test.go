//go:build race

package sparse

// raceEnabled gates allocation assertions that cannot hold under the race
// detector: sync.Pool deliberately drops a fraction of Puts there to shake
// out lifetime bugs, so pooled steady states allocate by design.
const raceEnabled = true
