package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapPayloadRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int(n) + 1
		mask := make([]bool, total)
		var values []float64
		for i := range mask {
			if rng.Intn(3) == 0 {
				mask[i] = true
				values = append(values, float64(float32(rng.NormFloat64())))
			}
		}
		b := EncodeBitmapPayload(mask, values)
		gotMask, gotValues, err := DecodeBitmapPayload(b)
		if err != nil {
			return false
		}
		if len(gotMask) != total || len(gotValues) != len(values) {
			return false
		}
		for i := range mask {
			if mask[i] != gotMask[i] {
				return false
			}
		}
		for i := range values {
			if values[i] != gotValues[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndexPayloadRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var indices []int
		var values []float64
		idx := 0
		for i := 0; i < int(n); i++ {
			idx += 1 + rng.Intn(1000)
			indices = append(indices, idx)
			values = append(values, float64(float32(rng.NormFloat64())))
		}
		b := EncodeIndexPayload(indices, values)
		gotIdx, gotValues, err := DecodeIndexPayload(b)
		if err != nil {
			return false
		}
		if len(gotIdx) != len(indices) {
			return false
		}
		for i := range indices {
			if indices[i] != gotIdx[i] || values[i] != gotValues[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPayloadFloat32Precision(t *testing.T) {
	// Values survive as float32, the wire precision.
	mask := []bool{true}
	in := []float64{math.Pi}
	_, out, err := DecodeBitmapPayload(EncodeBitmapPayload(mask, in))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != float64(float32(math.Pi)) {
		t.Errorf("value = %v, want float32-rounded pi", out[0])
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeBitmapPayload([]byte{1, 2}); err == nil {
		t.Error("short bitmap payload must fail")
	}
	if _, _, err := DecodeIndexPayload([]byte{1}); err == nil {
		t.Error("short index payload must fail")
	}
	// Truncated values section.
	b := EncodeBitmapPayload([]bool{true, false}, []float64{1})
	if _, _, err := DecodeBitmapPayload(b[:len(b)-1]); err == nil {
		t.Error("truncated bitmap values must fail")
	}
}

func TestEncodePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched mask/values must panic")
		}
	}()
	EncodeBitmapPayload([]bool{true, true}, []float64{1})
}

func TestEncodingCrossover(t *testing.T) {
	// Bitmap wins at high density, index list at low density.
	const total = 1_000_000
	dense := total / 2
	sparseN := total / 1000
	if BitmapPayloadBytes(total, dense) >= IndexPayloadBytes(dense) {
		t.Error("bitmap should win at 50% density")
	}
	if IndexPayloadBytes(sparseN) >= BitmapPayloadBytes(total, sparseN) {
		t.Error("index list should win at 0.1% density")
	}
}
