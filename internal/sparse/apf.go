package sparse

import (
	"context"
	"fmt"
	"math"
)

// APF implements Adaptive Parameter Freezing (Chen et al., ICDCS 2021): a
// parameter whose global trajectory has stabilized (its per-round updates
// oscillate around zero with no net movement) is frozen — excluded from
// synchronization and pinned at its converged value — for a freezing period
// that grows additively while the parameter remains stable and resets when
// it reactivates. APF exploits the stagnating special case of the linear
// pattern FedSU generalizes.
//
// Stability is diagnosed with the effective-perturbation ratio
//
//	EP = |Σ g| / Σ |g|
//
// over the per-round global updates g accumulated since the parameter last
// looked unstable (net movement over path length, following the APF
// paper). Values below the stability threshold (0.05 by default) mark the
// parameter as converged. The accumulating window makes the ratio of a
// genuinely-converged noisy parameter decay as 1/√rounds, so freezing is
// conservative early and increasingly confident later — which is why APF's
// sparsification ratio is far below FedSU's in the paper's comparison.
type APF struct {
	id   int
	size int
	agg  Aggregator
	wire Wire

	stability  float64
	minHistory int

	prevGlobal []float64
	sumG       []float64
	sumAbsG    []float64
	obs        []int32

	frozen       []bool
	frozenValue  []float64
	freezeLeft   []int // rounds of freezing remaining
	freezePeriod []int // current per-parameter freezing period length
}

var _ ContextSyncer = (*APF)(nil)

// NewAPF constructs an APF strategy with the given stability threshold.
func NewAPF(clientID, size int, agg Aggregator, stability float64) *APF {
	return &APF{
		id: clientID, size: size, agg: agg,
		stability:    stability,
		minHistory:   2,
		sumG:         make([]float64, size),
		sumAbsG:      make([]float64, size),
		obs:          make([]int32, size),
		frozen:       make([]bool, size),
		frozenValue:  make([]float64, size),
		freezeLeft:   make([]int, size),
		freezePeriod: make([]int, size),
	}
}

// APFFactory returns a Factory using the paper's default stability
// threshold 0.05.
func APFFactory(clientID, size int, agg Aggregator) Syncer {
	return NewAPF(clientID, size, agg, 0.05)
}

// Name implements Syncer.
func (a *APF) Name() string { return "apf" }

// SetWire implements WireSetter.
func (a *APF) SetWire(w Wire) { a.wire = w }

// FrozenCount returns the number of currently-frozen parameters.
func (a *APF) FrozenCount() int {
	n := 0
	for _, f := range a.frozen {
		if f {
			n++
		}
	}
	return n
}

// EffectivePerturbation returns the current stability ratio of parameter i
// (1 when the parameter lacks history).
func (a *APF) EffectivePerturbation(i int) float64 {
	if a.sumAbsG[i] == 0 {
		if a.obs[i] > 0 {
			return 0 // never moved at all
		}
		return 1
	}
	return math.Abs(a.sumG[i]) / a.sumAbsG[i]
}

// Sync implements Syncer.
func (a *APF) Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	return a.SyncCtx(context.Background(), round, local, contributor)
}

// SyncCtx implements ContextSyncer.
func (a *APF) SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	if len(local) != a.size {
		return nil, Traffic{}, fmt.Errorf("apf: vector length %d, want %d", len(local), a.size)
	}

	// Gather the active (unfrozen) parameter values for aggregation.
	active := make([]int, 0, a.size)
	for i := 0; i < a.size; i++ {
		if !a.frozen[i] {
			active = append(active, i)
		}
	}
	// Under a lossy chain the collective runs in the delta domain against
	// the shared previous global (see the FedSU manager for the argument);
	// the first sync has no reference yet and ships values.
	delta := a.wire.Enabled() && a.prevGlobal != nil
	var send []float64
	if contributor {
		send = make([]float64, len(active))
		for j, i := range active {
			if delta {
				send[j] = local[i] - a.prevGlobal[i]
			} else {
				send[j] = local[i]
			}
		}
	}
	agg, err := AggModel(ctx, a.agg, a.id, round, send)
	if err != nil {
		return nil, Traffic{}, fmt.Errorf("apf: aggregate round %d: %w", round, err)
	}

	out := make([]float64, a.size)
	for i := 0; i < a.size; i++ {
		if a.frozen[i] {
			out[i] = a.frozenValue[i]
		}
	}
	if agg == nil {
		for _, i := range active {
			out[i] = local[i]
		}
	} else {
		if len(agg) != len(active) {
			return nil, Traffic{}, fmt.Errorf("apf: aggregate returned %d values for %d active params", len(agg), len(active))
		}
		for j, i := range active {
			if delta {
				out[i] = a.prevGlobal[i] + agg[j]
			} else {
				out[i] = agg[j]
			}
		}
	}

	// Update stability diagnostics for active parameters and make
	// freeze/thaw decisions; frozen parameters tick down their period.
	if a.prevGlobal != nil {
		for _, i := range active {
			g := out[i] - a.prevGlobal[i]
			a.sumG[i] += g
			a.sumAbsG[i] += math.Abs(g)
			a.obs[i]++
			if int(a.obs[i]) < a.minHistory {
				continue
			}
			if a.EffectivePerturbation(i) < a.stability {
				// Converged: freeze for an additively-grown period.
				a.frozen[i] = true
				a.frozenValue[i] = out[i]
				a.freezePeriod[i]++
				a.freezeLeft[i] = a.freezePeriod[i]
			} else if a.EffectivePerturbation(i) > 0.5 {
				// Decisively moving again: restart the stability window and
				// the period growth.
				a.freezePeriod[i] = 0
				a.sumG[i], a.sumAbsG[i], a.obs[i] = 0, 0, 0
			}
		}
	}
	for i := 0; i < a.size; i++ {
		if a.frozen[i] && !contains(active, i) {
			a.freezeLeft[i]--
			if a.freezeLeft[i] <= 0 {
				// Thaw for a probe round; stability is re-evaluated on the
				// next synchronization with the accumulated history intact,
				// so a still-stable parameter re-freezes with a longer
				// period.
				a.frozen[i] = false
			}
		}
	}

	if a.prevGlobal == nil {
		a.prevGlobal = make([]float64, a.size)
	}
	copy(a.prevGlobal, out)

	// Actual encoded bytes of the compacted active-parameter vectors; an
	// abstaining client or an empty collective costs framing only.
	return out, Traffic{
		UpBytes:      a.wire.Bytes(send),
		DownBytes:    a.wire.ReplyBytes(agg),
		SyncedParams: len(active),
		TotalParams:  a.size,
		FullBytes:    a.wire.FullRef(a.size),
	}, nil
}

func contains(sorted []int, v int) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sorted[mid] == v:
			return true
		case sorted[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}
