package sparse

import (
	"context"

	"fedsu/internal/sparse/codec"
)

// Wire binds a strategy's traffic accounting to the compression chain the
// transport actually ships. The zero value (nil Chain) is the legacy
// default wire — the PR 4 bitmap/index codec — so existing constructions
// keep their historical byte counts untouched.
type Wire struct {
	Chain *codec.Chain
}

// Enabled reports whether a non-default chain is attached: the cue for
// strategies that otherwise use analytic size models (QSGD) to charge
// measured chain bytes instead.
func (w Wire) Enabled() bool {
	return w.Chain != nil && !w.Chain.IsDefault()
}

// Bytes is the wire cost of one collective message carrying vec under
// this wire's chain: HeaderBytes of framing plus the chain's exact
// encoded payload size. A nil vec (abstention) is framing only. With a
// nil chain this is exactly MessageBytes.
func (w Wire) Bytes(vec []float64) int {
	if vec == nil {
		return HeaderBytes
	}
	if w.Chain == nil {
		return MessageBytes(vec)
	}
	return HeaderBytes + w.Chain.PayloadSize(vec)
}

// ReplyBytes is the wire cost of one downlink message carrying vec: the
// collective reply ships under the chain's Reply variant (quantizers
// widened to 8 bits — see codec.Chain.Reply). With a nil chain this is
// exactly MessageBytes, like Bytes.
func (w Wire) ReplyBytes(vec []float64) int {
	if vec == nil {
		return HeaderBytes
	}
	if w.Chain == nil {
		return MessageBytes(vec)
	}
	return HeaderBytes + w.Chain.Reply().PayloadSize(vec)
}

// DenseBytes is the wire's reference cost for a fully-dense n-parameter
// message (see codec.Chain.DensePayloadSize for why entropy and low-rank
// stages are excluded from the reference).
func (w Wire) DenseBytes(n int) int {
	if w.Chain == nil {
		return DenseMessageBytes(n)
	}
	return HeaderBytes + w.Chain.DensePayloadSize(n)
}

// FullRef is the full-model exchange reference — one dense uplink plus
// one dense downlink (at the reply chain's cost) — that
// SparsificationRatio charges savings against.
func (w Wire) FullRef(n int) int {
	if w.Chain == nil {
		return 2 * DenseMessageBytes(n)
	}
	return w.DenseBytes(n) + HeaderBytes + w.Chain.Reply().DensePayloadSize(n)
}

// RoundTrip is the wire image of values under this wire's chain: what a
// receiver observes after one encode→decode trip. With a nil chain the
// image is the identity here — the legacy float32 rounding is applied by
// the transport itself (QuantizeWire), not by the strategy layer.
func (w Wire) RoundTrip(values []float64) []float64 {
	if w.Chain == nil {
		return values
	}
	return w.Chain.RoundTrip(values)
}

// Image is RoundTrip without charging the chain's per-stage counters:
// strategies probe the wire image of a pending submission (to carry its
// loss forward as an error-feedback residual) without it registering as
// wire traffic.
func (w Wire) Image(values []float64) []float64 {
	if w.Chain == nil {
		return values
	}
	return w.Chain.WireImage(values)
}

// WireSetter is implemented by strategies whose byte accounting can be
// rebound to a chain. The engine calls SetWire right after the Factory
// builds the strategy, before the first Sync.
type WireSetter interface {
	SetWire(Wire)
}

// SetSyncerWire rebinds s's accounting to w when the strategy supports
// it; strategies without chain-aware accounting are left untouched.
func SetSyncerWire(s Syncer, w Wire) {
	if ws, ok := s.(WireSetter); ok {
		ws.SetWire(w)
	}
}

// ChainAggregator applies a chain's wire image to an in-process
// aggregator: every submission and every aggregated result is passed
// through Chain.RoundTrip, exactly what a TCP transport's encode→decode
// does on each leg. Wrapping the aggregator — rather than having
// strategies pre-image their sends — means values are encoded exactly
// once on either transport, so in-process and TCP runs stay bit-identical
// even for stages whose re-encoding is not a fixed point (low-rank).
type ChainAggregator struct {
	agg   Aggregator
	chain *codec.Chain
}

var _ ContextAggregator = (*ChainAggregator)(nil)

// WrapAggregator returns agg with chain's wire image applied to both
// collective legs. A nil or default chain returns agg unchanged: the
// legacy float32 wire rounding stays where it always was (the transport).
func WrapAggregator(agg Aggregator, chain *codec.Chain) Aggregator {
	if agg == nil || chain == nil || chain.IsDefault() {
		return agg
	}
	return &ChainAggregator{agg: agg, chain: chain}
}

// AggregateModel implements Aggregator.
func (c *ChainAggregator) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return c.AggregateModelCtx(context.Background(), clientID, round, values)
}

// AggregateError implements Aggregator.
func (c *ChainAggregator) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return c.AggregateErrorCtx(context.Background(), clientID, round, values)
}

// AggregateModelCtx implements ContextAggregator. The submission leg
// runs the session chain; the result leg runs its Reply variant, exactly
// what the TCP coordinator's reply encoder ships.
func (c *ChainAggregator) AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	out, err := AggModel(ctx, c.agg, clientID, round, c.chain.RoundTrip(values))
	if err != nil {
		return nil, err
	}
	return c.chain.Reply().RoundTrip(out), nil
}

// AggregateErrorCtx implements ContextAggregator.
func (c *ChainAggregator) AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	out, err := AggError(ctx, c.agg, clientID, round, c.chain.RoundTrip(values))
	if err != nil {
		return nil, err
	}
	return c.chain.Reply().RoundTrip(out), nil
}
