package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestQSGD(t *testing.T, size, bits int) *QSGD {
	t.Helper()
	q, err := NewQSGD(0, size, identityAgg{}, bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQSGDValidation(t *testing.T) {
	for _, bits := range []int{0, 1, 17} {
		if _, err := NewQSGD(0, 4, identityAgg{}, bits, 1); err == nil {
			t.Errorf("bits=%d must fail", bits)
		}
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	q := newTestQSGD(t, 3, 8)
	out := q.Quantize([]float64{0, 0, 0})
	for _, v := range out {
		if v != 0 {
			t.Errorf("zero vector must quantize to zeros, got %v", out)
		}
	}
}

// Property: stochastic quantization is unbiased — the mean of many draws
// approaches the true value.
func TestQuantizeUnbiased(t *testing.T) {
	q := newTestQSGD(t, 4, 4)
	in := []float64{0.3, -0.77, 0.123, 1.0}
	sum := make([]float64, len(in))
	const n = 20000
	for i := 0; i < n; i++ {
		out := q.Quantize(in)
		for j, v := range out {
			sum[j] += v
		}
	}
	for j, v := range in {
		mean := sum[j] / n
		if math.Abs(mean-v) > 0.01 {
			t.Errorf("quantized mean[%d] = %v, want ≈%v", j, mean, v)
		}
	}
}

// Property: quantized values stay within one grid step of the input and
// within the max-norm ball.
func TestQuantizeBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newTestQSGD(t, 8, 6)
		in := make([]float64, 8)
		scale := 0.0
		for i := range in {
			in[i] = rng.NormFloat64()
			if a := math.Abs(in[i]); a > scale {
				scale = a
			}
		}
		step := scale / 31 // 6 bits signed → 31 levels
		out := q.Quantize(in)
		for i := range in {
			if math.Abs(out[i]-in[i]) > step+1e-12 {
				return false
			}
			if math.Abs(out[i]) > scale+step {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQSGDSyncCompresses(t *testing.T) {
	q := newTestQSGD(t, 100, 4)
	// Bootstrap round: full precision. Nonzero values, so the exchange is
	// genuinely dense (an all-zero vector would compress on the wire).
	boot := make([]float64, 100)
	for i := range boot {
		boot[i] = 1 + float64(i)
	}
	_, tr, err := q.Sync(0, boot, true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SparsificationRatio() != 0 {
		t.Errorf("bootstrap must be full exchange, ratio %v", tr.SparsificationRatio())
	}
	// Later rounds: 4 bits vs 32 → ~87% savings.
	local := make([]float64, 100)
	for i := range local {
		local[i] = float64(i) * 0.01
	}
	_, tr, err = q.Sync(1, local, true)
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.SparsificationRatio(); r < 0.5 {
		t.Errorf("4-bit quantization ratio = %v, want > 0.5", r)
	}
}

func TestQSGDTracksGlobal(t *testing.T) {
	q := newTestQSGD(t, 2, 8)
	out, _, err := q.Sync(0, []float64{1, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("bootstrap out = %v", out)
	}
	// A large update must survive quantization approximately.
	out, _, err = q.Sync(1, []float64{2, 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-2) > 0.05 || math.Abs(out[1]-2) > 0.05 {
		t.Errorf("quantized step landed at %v, want ≈[2 2]", out)
	}
}

func TestQSGDFactory(t *testing.T) {
	s := QSGDFactory(3, 5, identityAgg{})
	if s.Name() != "qsgd" {
		t.Errorf("Name = %q", s.Name())
	}
	if _, _, err := s.Sync(0, make([]float64, 5), true); err != nil {
		t.Fatal(err)
	}
}
