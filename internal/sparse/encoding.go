package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// This file implements the wire encodings for sparse parameter payloads.
// FedSU and APF derive their masks deterministically on both ends, so the
// default protocol ships only the selected float32 values. These encoders
// cover the general case — a receiver that does NOT know the mask — and
// back the bitmap-vs-index ablation called out in DESIGN.md §5: a bitmap
// costs 1 bit per model parameter regardless of density, while a varint
// index list costs a few bytes per *selected* parameter, so the crossover
// sits at roughly 3 % density.

// EncodeBitmapPayload encodes (mask, values) as a bitmap over all
// parameters followed by the selected float32 values.
func EncodeBitmapPayload(mask []bool, values []float64) []byte {
	return AppendBitmapPayload(nil, mask, values)
}

// AppendBitmapPayload appends the bitmap encoding of (mask, values) to dst
// and returns the extended slice. The payload region is grown once up
// front, so encoding into a buffer with sufficient capacity performs no
// allocation; combine with GetWireBuf/PutWireBuf for a pooled wire path.
func AppendBitmapPayload(dst []byte, mask []bool, values []float64) []byte {
	nSel := 0
	for _, m := range mask {
		if m {
			nSel++
		}
	}
	if nSel != len(values) {
		panic(fmt.Sprintf("sparse: %d mask bits set but %d values", nSel, len(values)))
	}
	base := len(dst)
	dst = growBytes(dst, BitmapPayloadBytes(len(mask), nSel))
	out := dst[base:]
	binary.LittleEndian.PutUint64(out[:8], uint64(len(mask)))
	bits := out[8 : 8+(len(mask)+7)/8]
	clear(bits)
	for i, m := range mask {
		if m {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	vals := out[8+len(bits):]
	for i, v := range values {
		binary.LittleEndian.PutUint32(vals[4*i:], math.Float32bits(float32(v)))
	}
	return dst
}

// growBytes extends dst by n bytes in a single step (one allocation at
// most), returning the lengthened slice; the new bytes are unspecified and
// must be fully overwritten by the caller.
func growBytes(dst []byte, n int) []byte {
	total := len(dst) + n
	if cap(dst) >= total {
		return dst[:total]
	}
	grown := make([]byte, total)
	copy(grown, dst)
	return grown
}

// DecodeBitmapPayload reverses EncodeBitmapPayload, returning the mask and
// the selected values.
func DecodeBitmapPayload(b []byte) (mask []bool, values []float64, err error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("sparse: bitmap payload too short (%d bytes)", len(b))
	}
	n64 := binary.LittleEndian.Uint64(b[:8])
	b = b[8:]
	// Bound the claimed parameter count by the bytes actually present
	// before allocating: the header is attacker-controlled on a real wire,
	// and a bare make([]bool, n) lets 8 bytes demand 2^63 of memory.
	if n64 > uint64(len(b))*8 {
		return nil, nil, fmt.Errorf("sparse: bitmap truncated")
	}
	n := int(n64)
	nb := (n + 7) / 8
	if len(b) < nb {
		return nil, nil, fmt.Errorf("sparse: bitmap truncated")
	}
	mask = make([]bool, n)
	nSel := 0
	for i := 0; i < n; i++ {
		if b[i/8]&(1<<(i%8)) != 0 {
			mask[i] = true
			nSel++
		}
	}
	b = b[nb:]
	if len(b) != 4*nSel {
		return nil, nil, fmt.Errorf("sparse: bitmap payload has %d value bytes, want %d", len(b), 4*nSel)
	}
	values = make([]float64, nSel)
	for i := range values {
		values[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
	}
	return mask, values, nil
}

// EncodeIndexPayload encodes (indices, values) as delta-varint indices
// followed by float32 values. indices must be strictly increasing.
func EncodeIndexPayload(indices []int, values []float64) []byte {
	return AppendIndexPayload(nil, indices, values)
}

// AppendIndexPayload appends the delta-varint index encoding of
// (indices, values) to dst and returns the extended slice. The exact
// payload size is computed first so the buffer grows in one step; indices
// must be strictly increasing.
func AppendIndexPayload(dst []byte, indices []int, values []float64) []byte {
	if len(indices) != len(values) {
		panic(fmt.Sprintf("sparse: %d indices but %d values", len(indices), len(values)))
	}
	varBytes := 0
	prev := 0
	for i, idx := range indices {
		if i > 0 && idx <= prev {
			panic("sparse: indices must be strictly increasing")
		}
		varBytes += uvarintLen(uint64(idx - prev))
		prev = idx
	}
	base := len(dst)
	dst = growBytes(dst, 8+varBytes+4*len(values))
	out := dst[base:]
	binary.LittleEndian.PutUint64(out[:8], uint64(len(indices)))
	pos := 8
	prev = 0
	for _, idx := range indices {
		pos += binary.PutUvarint(out[pos:], uint64(idx-prev))
		prev = idx
	}
	for i, v := range values {
		binary.LittleEndian.PutUint32(out[pos+4*i:], math.Float32bits(float32(v)))
	}
	return dst
}

// uvarintLen is the encoded size of x under binary.PutUvarint: one byte
// per started 7-bit group.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// DecodeIndexPayload reverses EncodeIndexPayload.
func DecodeIndexPayload(b []byte) (indices []int, values []float64, err error) {
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("sparse: index payload too short (%d bytes)", len(b))
	}
	n64 := binary.LittleEndian.Uint64(b[:8])
	b = b[8:]
	// Each entry needs at least one varint byte plus four value bytes, so
	// the claimed count is bounded by the payload before allocation (same
	// wire-robustness reasoning as DecodeBitmapPayload).
	if n64 > uint64(len(b))/5 {
		return nil, nil, fmt.Errorf("sparse: index payload truncated")
	}
	n := int(n64)
	indices = make([]int, n)
	prev := 0
	for i := 0; i < n; i++ {
		d, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, nil, fmt.Errorf("sparse: bad varint at index %d", i)
		}
		b = b[k:]
		if d > uint64(math.MaxInt-prev) {
			return nil, nil, fmt.Errorf("sparse: index overflow at index %d", i)
		}
		prev += int(d)
		indices[i] = prev
	}
	if len(b) != 4*n {
		return nil, nil, fmt.Errorf("sparse: index payload has %d value bytes, want %d", len(b), 4*n)
	}
	values = make([]float64, n)
	for i := range values {
		values[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
	}
	return indices, values, nil
}

// BitmapPayloadBytes and IndexPayloadBytes predict encoded sizes without
// materializing the payload, for planning which encoding to use.
func BitmapPayloadBytes(totalParams, selected int) int {
	return 8 + (totalParams+7)/8 + 4*selected
}

// IndexPayloadBytes assumes 2-byte average varints, the typical cost for
// models under ~16M parameters at moderate density.
func IndexPayloadBytes(selected int) int {
	return 8 + 6*selected
}
