package sparse

import (
	"context"
	"fmt"
	"math"
)

// Unwrapper is implemented by syncer middleware (EventTrigger) to expose
// the strategy underneath; engine code that probes for a concrete strategy
// (FedSU state transfer, checkpointing, predictability accounting) resolves
// wrappers through UnwrapSyncer first.
type Unwrapper interface {
	Unwrap() Syncer
}

// UnwrapSyncer peels syncer middleware until it reaches the underlying
// strategy.
func UnwrapSyncer(s Syncer) Syncer {
	for {
		u, ok := s.(Unwrapper)
		if !ok {
			return s
		}
		s = u.Unwrap()
	}
}

// EventTrigger wraps any Syncer with event-triggered participation
// (Online-Fed's partial-sharing scheme): the client offers an upload only
// when the L2 norm of its accumulated local change — the drift since the
// vector it last offered — crosses Threshold. Below the threshold the
// inner strategy runs with contributor forced to false, so the client
// abstains through the strategy's ordinary abstention path: it still joins
// every collective (keeping barrier bookkeeping and fleet-consistent
// strategy state), ships a header-only message on the wire, and receives
// the round's global result.
//
// Drift accumulates across abstained rounds: the reference vector advances
// only when an upload is actually offered, so a client whose per-round
// change is small still contributes once the changes compound past the
// threshold. A zero threshold disables gating (every round contributes,
// exactly the unwrapped behaviour). The first synchronization always
// contributes — there is no reference yet to measure drift against.
//
// EventTrigger composes with every strategy (FedSU, CMFL, APF, QSGD,
// FedAvg) because it speaks only the Syncer interface and dispatches
// through SyncContext; an inner strategy with its own gating (CMFL
// relevance) simply sees fewer contributor rounds.
type EventTrigger struct {
	inner     Syncer
	threshold float64
	ref       []float64

	// triggered / suppressed count contributor rounds passed through vs
	// gated off, for diagnostics and tests.
	triggered  int
	suppressed int
}

var _ ContextSyncer = (*EventTrigger)(nil)
var _ Unwrapper = (*EventTrigger)(nil)

// NewEventTrigger wraps inner with an upload threshold on the L2 norm of
// the accumulated local change. threshold <= 0 passes every round through.
func NewEventTrigger(inner Syncer, threshold float64) *EventTrigger {
	return &EventTrigger{inner: inner, threshold: threshold}
}

// Name identifies the wrapped strategy; the trigger is transparent
// middleware, so strategy-name plumbing (round drivers, checkpoints)
// keeps working.
func (e *EventTrigger) Name() string { return e.inner.Name() }

// Unwrap implements Unwrapper.
func (e *EventTrigger) Unwrap() Syncer { return e.inner }

// SetWire implements WireSetter by delegating to the wrapped strategy, so
// chain accounting survives middleware wrapping in either order.
func (e *EventTrigger) SetWire(w Wire) { SetSyncerWire(e.inner, w) }

// Threshold returns the configured trigger threshold.
func (e *EventTrigger) Threshold() float64 { return e.threshold }

// TriggerCounts reports contributor rounds passed through vs suppressed.
func (e *EventTrigger) TriggerCounts() (triggered, suppressed int) {
	return e.triggered, e.suppressed
}

// Sync implements Syncer.
func (e *EventTrigger) Sync(round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	return e.SyncCtx(context.Background(), round, local, contributor)
}

// SyncCtx implements ContextSyncer.
func (e *EventTrigger) SyncCtx(ctx context.Context, round int, local []float64, contributor bool) ([]float64, Traffic, error) {
	if contributor && e.threshold > 0 && e.ref != nil {
		if len(e.ref) != len(local) {
			return nil, Traffic{}, fmt.Errorf("event trigger: vector length %d, reference %d", len(local), len(e.ref))
		}
		if driftNorm(local, e.ref) < e.threshold {
			contributor = false
			e.suppressed++
		}
	}
	if contributor {
		e.triggered++
		// The reference advances to the vector offered this round; drift for
		// the next trigger decision accumulates from here.
		if e.ref == nil {
			e.ref = make([]float64, len(local))
		}
		copy(e.ref, local)
	}
	return SyncContext(ctx, e.inner, round, local, contributor)
}

// driftNorm is the L2 norm of a-b.
func driftNorm(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
