package sparse

import (
	"math"
	"testing"
)

func TestPartialPayloadRoundTrip(t *testing.T) {
	sum := make([]float64, 300)
	for i := range sum {
		sum[i] = math.Pi * float64(i-150) * 1e-3
	}
	sum[7] = math.Inf(1)
	sum[8] = -0.0
	p := Partial{RankLo: 64, Weight: 17, Traffic: 123456789, Sum: sum}

	enc := EncodePartialPayload(p)
	if len(enc) != PartialPayloadSize(len(sum)) {
		t.Fatalf("encoded %d bytes, PartialPayloadSize says %d", len(enc), PartialPayloadSize(len(sum)))
	}
	got, err := DecodePartialPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.RankLo != p.RankLo || got.Weight != p.Weight || got.Traffic != p.Traffic {
		t.Fatalf("metadata changed: %+v", got)
	}
	if len(got.Sum) != len(sum) {
		t.Fatalf("sum length %d, want %d", len(got.Sum), len(sum))
	}
	for i := range sum {
		if math.Float64bits(got.Sum[i]) != math.Float64bits(sum[i]) {
			t.Fatalf("sum[%d] lost bits: %x vs %x — the partial codec must be float64-lossless", i, math.Float64bits(got.Sum[i]), math.Float64bits(sum[i]))
		}
	}
}

func TestPartialPayloadIdentity(t *testing.T) {
	enc := EncodePartialPayload(Partial{RankLo: 3})
	got, err := DecodePartialPayload(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sum != nil || got.Weight != 0 || got.RankLo != 3 {
		t.Fatalf("identity partial decoded as %+v", got)
	}
}

func TestPartialPayloadDecodeIntoReuse(t *testing.T) {
	sum := make([]float64, 2048)
	for i := range sum {
		sum[i] = float64(i)
	}
	enc := EncodePartialPayload(Partial{Weight: 4, Sum: sum})
	allocs := testing.AllocsPerRun(100, func() {
		buf := GetVec(len(sum))
		p, err := DecodePartialPayloadInto(*buf, enc, len(sum))
		if err != nil {
			t.Fatal(err)
		}
		*buf = p.Sum
		PutVec(buf)
	})
	if !raceEnabled && allocs > 0 {
		t.Fatalf("pooled partial decode allocates %.1f times per run", allocs)
	}
}

func TestPartialPayloadHostileHeaders(t *testing.T) {
	cases := [][]byte{
		{},                      // empty
		{partialFormatV1},       // no body
		{0x01, 0, 0, 0},         // vector-codec tag misrouted here
		{partialFormatV1, 0, 0}, // truncated metadata
	}
	// Hostile span: claims 2^40 elements with no bytes behind it.
	huge := EncodePartialPayload(Partial{Weight: 1, Sum: []float64{1}})
	huge[9], huge[10], huge[11], huge[12], huge[13], huge[14] = 0, 0, 0, 0, 0, 1
	cases = append(cases, huge)
	// Weight with no sum.
	w := EncodePartialPayload(Partial{})
	w[17] = 9
	cases = append(cases, w)
	// Trailing garbage.
	g := EncodePartialPayload(Partial{Weight: 1, Sum: []float64{1, 2}})
	cases = append(cases, append(g, 0xff))
	for i, raw := range cases {
		if _, err := DecodePartialPayloadInto(nil, raw, 1<<16); err == nil {
			t.Fatalf("case %d: hostile payload decoded without error", i)
		}
	}
}

func FuzzPartialPayload(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{partialFormatV1})
	f.Add(EncodePartialPayload(Partial{RankLo: 2}))
	f.Add(EncodePartialPayload(Partial{RankLo: 8, Weight: 3, Traffic: 999, Sum: []float64{1.5, -2.25, 0, 4096}}))
	f.Add(EncodePartialPayload(Partial{Weight: 1, Sum: make([]float64, 64)}))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decoding arbitrary bytes must never panic, and the span bound
		// must keep hostile headers from allocating beyond the input size.
		p, err := DecodePartialPayloadInto(nil, raw, 1<<16)
		if err != nil {
			return
		}
		if len(p.Sum) > len(raw)/8 {
			t.Fatalf("decoded %d-element sum from %d input bytes", len(p.Sum), len(raw))
		}
		// Whatever decoded must round-trip losslessly (raw float64 — even
		// NaN payload bits survive).
		enc := EncodePartialPayload(p)
		back, err := DecodePartialPayloadInto(nil, enc, 1<<16)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if back.RankLo != p.RankLo || back.Weight != p.Weight || back.Traffic != p.Traffic || len(back.Sum) != len(p.Sum) {
			t.Fatalf("round-trip changed the message: %+v vs %+v", back, p)
		}
		for i := range p.Sum {
			if math.Float64bits(back.Sum[i]) != math.Float64bits(p.Sum[i]) {
				t.Fatalf("sum[%d] changed across round-trip", i)
			}
		}
	})
}
