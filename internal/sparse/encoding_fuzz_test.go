package sparse

import (
	"math"
	"testing"
)

// FuzzBitmapPayload round-trips arbitrary masks and values through the
// bitmap wire encoding, and feeds the raw fuzz input straight into the
// decoder, which must reject malformed payloads with an error — never a
// panic or an unbounded allocation (the length header is
// attacker-controlled on a real wire).
func FuzzBitmapPayload(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xff, 0x01}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{})        // header-only adversarial input
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 0xff}, []byte{9}) // valid-looking 8-bit payload
	f.Fuzz(func(t *testing.T, maskBytes, valueBytes []byte) {
		// Direction 1: decoder robustness on raw input.
		if mask, values, err := DecodeBitmapPayload(maskBytes); err == nil {
			if popcount(mask) != len(values) {
				t.Fatalf("decoded %d set bits but %d values", popcount(mask), len(values))
			}
		}

		// Direction 2: encode/decode round trip on a synthesized payload.
		mask := make([]bool, len(maskBytes)*8)
		for i := range mask {
			mask[i] = maskBytes[i/8]&(1<<(i%8)) != 0
		}
		values := synthValues(popcount(mask), valueBytes)
		encoded := EncodeBitmapPayload(mask, values)
		gotMask, gotValues, err := DecodeBitmapPayload(encoded)
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		if len(gotMask) != len(mask) {
			t.Fatalf("mask length %d, want %d", len(gotMask), len(mask))
		}
		for i := range mask {
			if gotMask[i] != mask[i] {
				t.Fatalf("mask bit %d flipped", i)
			}
		}
		checkFloat32RoundTrip(t, values, gotValues)
	})
}

// FuzzIndexPayload does the same for the delta-varint index encoding.
func FuzzIndexPayload(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 1, 200}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff}, []byte{}) // adversarial header
	f.Fuzz(func(t *testing.T, deltaBytes, valueBytes []byte) {
		// Direction 1: decoder robustness on raw input.
		if indices, values, err := DecodeIndexPayload(deltaBytes); err == nil {
			if len(indices) != len(values) {
				t.Fatalf("decoded %d indices but %d values", len(indices), len(values))
			}
			for i := 1; i < len(indices); i++ {
				if indices[i] < indices[i-1] {
					t.Fatalf("decoded indices not sorted: %d after %d", indices[i], indices[i-1])
				}
			}
		}

		// Direction 2: round trip over strictly increasing synthetic indices.
		indices := make([]int, len(deltaBytes))
		prev := -1
		for i, d := range deltaBytes {
			prev += 1 + int(d)
			indices[i] = prev
		}
		values := synthValues(len(indices), valueBytes)
		encoded := EncodeIndexPayload(indices, values)
		gotIndices, gotValues, err := DecodeIndexPayload(encoded)
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		if len(gotIndices) != len(indices) {
			t.Fatalf("index count %d, want %d", len(gotIndices), len(indices))
		}
		for i := range indices {
			if gotIndices[i] != indices[i] {
				t.Fatalf("index %d: got %d, want %d", i, gotIndices[i], indices[i])
			}
		}
		checkFloat32RoundTrip(t, values, gotValues)
	})
}

// synthValues derives n float64s from raw bytes (cycling when short), so
// value patterns — NaN payloads included — come from the fuzzer.
func synthValues(n int, raw []byte) []float64 {
	values := make([]float64, n)
	for i := range values {
		var bits uint64
		for j := 0; j < 8; j++ {
			var b byte
			if len(raw) > 0 {
				b = raw[(8*i+j)%len(raw)]
			}
			bits = bits<<8 | uint64(b)
		}
		values[i] = math.Float64frombits(bits)
	}
	return values
}

// checkFloat32RoundTrip asserts the wire's documented float32 quantization
// and nothing else: decoded[i] must be bit-identical to
// float64(float32(sent[i])).
func checkFloat32RoundTrip(t *testing.T, sent, got []float64) {
	t.Helper()
	if len(got) != len(sent) {
		t.Fatalf("value count %d, want %d", len(got), len(sent))
	}
	for i, v := range sent {
		want := float64(float32(v))
		if math.Float64bits(got[i]) != math.Float64bits(want) && !(math.IsNaN(got[i]) && math.IsNaN(want)) {
			t.Fatalf("value %d: got %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
}

func popcount(mask []bool) int {
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	return n
}
