package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func quantizeAll(vec []float64) []float64 {
	out := make([]float64, len(vec))
	for i, v := range vec {
		out[i] = QuantizeWire(v)
	}
	return out
}

func checkVectorRoundTrip(t *testing.T, name string, vec []float64) []byte {
	t.Helper()
	enc := EncodeVectorPayload(vec)
	if got := VectorPayloadSize(vec); got != len(enc) {
		t.Fatalf("%s: VectorPayloadSize=%d but encoded %d bytes", name, got, len(enc))
	}
	dec, err := DecodeVectorPayloadInto(nil, enc, len(vec))
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	want := quantizeAll(vec)
	if len(dec) != len(want) {
		t.Fatalf("%s: decoded length %d, want %d", name, len(dec), len(want))
	}
	for i := range want {
		if math.Float64bits(dec[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d: got %x want %x", name, i, math.Float64bits(dec[i]), math.Float64bits(want[i]))
		}
	}
	return enc
}

func TestVectorPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dense := make([]float64, 1000)
	for i := range dense {
		dense[i] = rng.NormFloat64()
	}
	sparse1pct := make([]float64, 1000)
	for i := 0; i < 10; i++ {
		sparse1pct[rng.Intn(1000)] = rng.NormFloat64()
	}
	cases := map[string][]float64{
		"dense":      dense,
		"sparse1pct": sparse1pct,
		"empty":      {},
		"allzero":    make([]float64, 257),
		"single":     {3.5},
		"lastonly":   append(make([]float64, 99), -2.25),
		"specials":   {0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 5e-324, 1e300, -1e-300},
	}
	for name, vec := range cases {
		checkVectorRoundTrip(t, name, vec)
	}
}

func TestVectorPayloadFormatSelection(t *testing.T) {
	// Dense vectors should take the bitmap form; very sparse ones the index
	// form — the ~3 % crossover documented in encoding.go.
	dense := make([]float64, 10000)
	for i := range dense {
		dense[i] = 1
	}
	if enc := EncodeVectorPayload(dense); enc[0] != vecFormatBitmap {
		t.Fatalf("dense vector encoded with format 0x%02x, want bitmap", enc[0])
	}
	sparse := make([]float64, 10000)
	for i := 0; i < 100; i++ { // 1 % density
		sparse[i*100] = 1
	}
	if enc := EncodeVectorPayload(sparse); enc[0] != vecFormatIndex {
		t.Fatalf("1%% vector encoded with format 0x%02x, want index", enc[0])
	}
	// The index form must beat gob's per-zero cost by a wide margin.
	if size := VectorPayloadSize(sparse); size > 8+100*10 {
		t.Fatalf("1%% of 10k encoded to %d bytes, want well under 1008", size)
	}
}

func TestVectorPayloadDecodeLimit(t *testing.T) {
	vec := make([]float64, 128)
	vec[0], vec[127] = 1, 2
	enc := EncodeVectorPayload(vec)
	if _, err := DecodeVectorPayloadInto(nil, enc, 127); err == nil {
		t.Fatal("decode accepted a vector longer than maxParams")
	}
	if _, err := DecodeVectorPayloadInto(nil, enc, 128); err != nil {
		t.Fatalf("decode rejected a vector at exactly maxParams: %v", err)
	}
}

func TestVectorPayloadDecodeInto(t *testing.T) {
	vec := []float64{0, 1.5, 0, -2, 0}
	enc := EncodeVectorPayload(vec)
	scratch := make([]float64, 8)
	for i := range scratch {
		scratch[i] = 99 // stale contents must be fully overwritten
	}
	dec, err := DecodeVectorPayloadInto(scratch, enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &dec[0] != &scratch[0] {
		t.Fatal("DecodeVectorPayloadInto did not reuse the provided storage")
	}
	want := []float64{0, 1.5, 0, -2, 0}
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("value %d: got %v want %v", i, dec[i], want[i])
		}
	}
}

func TestAppendPayloadsMatchEncode(t *testing.T) {
	mask := []bool{true, false, false, true, true, false, true, false, true}
	values := []float64{1, -2, 3.5, math.Pi, -0.125}
	if !bytes.Equal(EncodeBitmapPayload(mask, values), AppendBitmapPayload(nil, mask, values)) {
		t.Fatal("AppendBitmapPayload diverges from EncodeBitmapPayload")
	}
	indices := []int{0, 3, 4, 6, 300}
	if !bytes.Equal(EncodeIndexPayload(indices, values), AppendIndexPayload(nil, indices, values)) {
		t.Fatal("AppendIndexPayload diverges from EncodeIndexPayload")
	}
	// Appending after a prefix leaves the prefix intact and the payload
	// decodable.
	pre := []byte{0xde, 0xad}
	out := AppendIndexPayload(append([]byte(nil), pre...), indices, values)
	if !bytes.Equal(out[:2], pre) {
		t.Fatal("AppendIndexPayload clobbered the prefix")
	}
	gotIdx, gotVals, err := DecodeIndexPayload(out[2:])
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIdx) != len(indices) || gotIdx[4] != 300 || float32(gotVals[3]) != float32(math.Pi) {
		t.Fatalf("appended payload decoded wrong: %v %v", gotIdx, gotVals)
	}
}

func TestWireBufPool(t *testing.T) {
	p := GetWireBuf(100)
	if len(*p) != 0 || cap(*p) < 100 {
		t.Fatalf("GetWireBuf(100): len=%d cap=%d", len(*p), cap(*p))
	}
	*p = AppendIndexPayload(*p, []int{1, 2}, []float64{1, 2})
	PutWireBuf(p)
	PutWireBuf(nil) // no-op

	q := GetVec(64)
	if len(*q) != 64 {
		t.Fatalf("GetVec(64): len=%d", len(*q))
	}
	PutVec(q)
	PutVec(nil)

	// Steady state: a Get/encode/Put cycle should not allocate.
	vec := make([]float64, 4096)
	for i := range vec {
		vec[i] = float64(i)
	}
	need := VectorPayloadSize(vec)
	allocs := testing.AllocsPerRun(100, func() {
		buf := GetWireBuf(need)
		*buf = AppendVectorPayload(*buf, vec)
		out := GetVec(len(vec))
		var err error
		*out, err = DecodeVectorPayloadInto(*out, *buf, len(vec))
		if err != nil {
			t.Fatal(err)
		}
		PutVec(out)
		PutWireBuf(buf)
	})
	// Under the race detector sync.Pool drops a fraction of Puts on purpose,
	// so the zero-allocation property only holds in a normal build.
	if !raceEnabled && allocs > 0 {
		t.Fatalf("pooled encode/decode cycle allocates %.1f times per run", allocs)
	}
}

func FuzzVectorPayload(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{vecFormatBitmap})
	f.Add(EncodeVectorPayload([]float64{0, 1, 0, -2}))
	f.Add(EncodeVectorPayload(make([]float64, 100)))
	sparse := make([]float64, 2000)
	sparse[1], sparse[1999] = 4, -4
	f.Add(EncodeVectorPayload(sparse))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decoding arbitrary bytes must never panic or over-allocate; the
		// limit bounds hostile length headers.
		vec, err := DecodeVectorPayloadInto(nil, raw, 1<<16)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode back to the same bits
		// (decoded values are already float32-exact, so this round-trip is
		// lossless).
		enc := EncodeVectorPayload(vec)
		if got := VectorPayloadSize(vec); got != len(enc) {
			t.Fatalf("VectorPayloadSize=%d, encoded %d bytes", got, len(enc))
		}
		back, err := DecodeVectorPayloadInto(nil, enc, len(vec))
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(back) != len(vec) {
			t.Fatalf("length changed across re-encode: %d vs %d", len(back), len(vec))
		}
		for i := range vec {
			if math.Float64bits(back[i]) != math.Float64bits(QuantizeWire(vec[i])) {
				t.Fatalf("value %d changed across re-encode", i)
			}
		}
	})
}
