package fl

import (
	"fmt"
	"sync"
	"testing"

	"fedsu/internal/par"
)

// The aggregation benchmarks measure the round-synchronization hot loop the
// netem emulation hammers: numClients submissions of a size-parameter vector
// per collective, barrier close, mean fan-out. One benchmark iteration is
// one full collective (BeginRound + every client's submission + the mean).
//
// Submitter goroutines are persistent — spawned once, woken per round — so
// the numbers reflect the server's submit path, not goroutine churn.

// benchFleet drives one collective per Signal() call from persistent
// submitter goroutines.
type benchFleet struct {
	srv     *Server
	vecs    [][]float64
	ids     []int
	start   []chan int
	done    sync.WaitGroup
	failure error
	mu      sync.Mutex
}

func newBenchFleet(clients, size int) *benchFleet {
	f := &benchFleet{srv: NewServer(clients)}
	f.ids = make([]int, clients)
	f.vecs = make([][]float64, clients)
	f.start = make([]chan int, clients)
	for i := 0; i < clients; i++ {
		f.ids[i] = i
		vec := make([]float64, size)
		for j := range vec {
			vec[j] = float64(i+1) + float64(j)*1e-6
		}
		f.vecs[i] = vec
		f.start[i] = make(chan int, 1)
		go func(i int) {
			for round := range f.start[i] {
				_, err := f.srv.AggregateModel(i, round, f.vecs[i])
				if err != nil {
					f.mu.Lock()
					f.failure = err
					f.mu.Unlock()
				}
				f.done.Done()
			}
		}(i)
	}
	return f
}

// round runs one full collective and blocks until every submitter received
// the mean.
func (f *benchFleet) round(k int) {
	f.srv.BeginRound(k, f.ids)
	f.done.Add(len(f.start))
	for _, ch := range f.start {
		ch <- k
	}
	f.done.Wait()
}

func (f *benchFleet) close() {
	for _, ch := range f.start {
		close(ch)
	}
}

func benchmarkAggregate(b *testing.B, clients, size int) {
	f := newBenchFleet(clients, size)
	defer f.close()
	f.round(0) // warm up pools and op bookkeeping outside the timer
	b.SetBytes(int64(clients) * int64(size) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.round(i + 1)
	}
	b.StopTimer()
	if f.failure != nil {
		b.Fatal(f.failure)
	}
}

// BenchmarkAggregate is the headline number tracked in BENCH_agg.json:
// 64 clients × 100k parameters, the scale of the paper's CNN workload.
func BenchmarkAggregate(b *testing.B) { benchmarkAggregate(b, 64, 100_000) }

// BenchmarkAggregateSmall covers the many-barriers-per-round regime (FedSU
// error collectives are typically a few hundred parameters).
func BenchmarkAggregateSmall(b *testing.B) { benchmarkAggregate(b, 64, 512) }

// BenchmarkAggregateWorkers pins the worker pool to explicit sizes so the
// scaling of the sharded reduction is visible on multi-core hosts.
func BenchmarkAggregateWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := par.SetWorkers(w)
			defer par.SetWorkers(prev)
			benchmarkAggregate(b, 64, 100_000)
		})
	}
}
