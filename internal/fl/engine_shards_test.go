package fl

import (
	"context"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/nn"
)

// TestNewEngineWithShardsBitIdentical verifies that supplying the partition
// NewEngine would have computed itself reproduces the run bit-exactly — the
// contract the experiment grid's memoized-partition cache relies on. The
// same shards are shared by two engines at once, so under -race this also
// checks concurrent read-sharing of one partition.
func TestNewEngineWithShardsBitIdentical(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 256, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	cfg := Config{
		NumClients:     3,
		LocalIters:     3,
		BatchSize:      8,
		LR:             0.05,
		WeightDecay:    0.0005,
		DirichletAlpha: 1.0,
		EvalSamples:    64,
		EvalBatch:      32,
		Seed:           3,
	}
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 16)
	}
	factory, err := StrategyFactory("fedavg")
	if err != nil {
		t.Fatal(err)
	}
	shards := data.PartitionDirichlet(ds, cfg.NumClients, cfg.DirichletAlpha, cfg.Seed)

	run := func(sh []*data.Subset) []float64 {
		var e *Engine
		var err error
		if sh == nil {
			e, err = NewEngine(cfg, builder, ds, factory)
		} else {
			e, err = NewEngineWithShards(cfg, builder, ds, sh, factory)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(context.Background(), 2, 1); err != nil {
			t.Fatal(err)
		}
		return e.GlobalVector()
	}

	want := run(nil)
	got := run(shards)
	got2 := run(shards) // second engine reusing the very same shards
	for i := range want {
		if want[i] != got[i] || want[i] != got2[i] {
			t.Fatalf("param %d diverges: internal=%v shared=%v shared2=%v", i, want[i], got[i], got2[i])
		}
	}
}

// TestNewEngineWithShardsLengthMismatch pins the shards/clients guard.
func TestNewEngineWithShardsLengthMismatch(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 64, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	cfg := DefaultConfig(4)
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 16)
	}
	factory, err := StrategyFactory("fedavg")
	if err != nil {
		t.Fatal(err)
	}
	shards := data.PartitionDirichlet(ds, 3, cfg.DirichletAlpha, cfg.Seed)
	if _, err := NewEngineWithShards(cfg, builder, ds, shards, factory); err == nil {
		t.Fatal("3 shards for 4 clients must error")
	}
}
