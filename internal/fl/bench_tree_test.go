package fl

import (
	"fmt"
	"sync"
	"testing"

	"fedsu/internal/sparse"
)

// BenchmarkTreeRootFold compares the ROOT aggregator's per-round workload
// flat versus hierarchical, at equal participants: a 1000-member cohort
// sampled from 100k registered devices. The flat arm is what a flat
// coordinator does — fold every member's dense upload. The fanout arms
// are what the tree root does in a distributed deployment — ingest one
// partial-sum message per aligned leaf block (the leaves' folding runs on
// the relay machines, not here). The rootRxB metric is the corresponding
// ingest payload: cohort dense uploads when flat, one partial per block
// under the tree.
func BenchmarkTreeRootFold(b *testing.B) {
	const population, cohortK, size = 100_000, 1000, 10_000
	pop := NewPopulation(7)
	pop.RegisterN(population, 10)
	cohort := pop.SampleCohort(0, cohortK)
	vec := make([]float64, size)
	for i := range vec {
		vec[i] = float64(i%97) * 0.25
	}

	b.Run("flat", func(b *testing.B) {
		srv := NewServer(cohortK)
		srv.SetRoster(cohort)
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			srv.BeginRound(n, cohort)
			var wg sync.WaitGroup
			for _, id := range cohort {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					if _, err := srv.AggregateModel(id, n, vec); err != nil {
						b.Error(err)
					}
				}(id)
			}
			wg.Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(cohortK*sparse.DenseMessageBytes(size)), "rootRxB")
	})

	for _, fanout := range []int{8, 32} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			tr := NewTree(fanout)
			tr.SetRoster(cohort)
			// Pre-fold each aligned block's partial outside the timer:
			// that work happens on the relay machines. Every member
			// submits vec, so a block's canonical sum is weight·vec.
			type block struct {
				rankLo, weight int
				sum            []float64
			}
			var blocks []block
			for lo := 0; lo < cohortK; lo += fanout {
				w := fanout
				if lo+w > cohortK {
					w = cohortK - lo
				}
				sum := make([]float64, size)
				for i := range sum {
					sum[i] = float64(w) * vec[i]
				}
				blocks = append(blocks, block{rankLo: lo, weight: w, sum: sum})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				tr.BeginRound(n, cohort)
				var wg sync.WaitGroup
				for _, blk := range blocks {
					wg.Add(1)
					go func(blk block) {
						defer wg.Done()
						if _, err := tr.AggregatePartial(n, "model", blk.rankLo, blk.sum, blk.weight); err != nil {
							b.Error(err)
						}
					}(blk)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(len(blocks)*sparse.PartialPayloadSize(size)), "rootRxB")
		})
	}
}
