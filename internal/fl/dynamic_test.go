package fl

import (
	"context"
	"testing"

	"fedsu/internal/core"
	"fedsu/internal/data"
)

func TestAddClientMidTraining(t *testing.T) {
	e, _ := tinyEngine(t, "fedsu", 10)
	ds := data.Synthesize(data.SynthConfig{
		Name: "extra", Channels: 1, Size: 8, Classes: 4,
		Samples: 64, Noise: 0.2, Seed: 99,
	})
	shard := data.NewSubset(ds, []int{0, 1, 2, 3, 4, 5, 6, 7})
	joiner, err := e.AddClient(shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Clients()) != 5 {
		t.Fatalf("fleet size = %d, want 5", len(e.Clients()))
	}

	// The joiner's model and mask state must match the fleet's before the
	// next round.
	ref := e.Clients()[0].Model().Vector()
	jv := joiner.Model().Vector()
	for i := range ref {
		if ref[i] != jv[i] {
			t.Fatalf("joiner model differs at %d", i)
		}
	}
	donor := e.Clients()[0].Syncer().(*core.Manager)
	jm := joiner.Syncer().(*core.Manager)
	dm, jmask := donor.PredictableMask(), jm.PredictableMask()
	for i := range dm {
		if dm[i] != jmask[i] {
			t.Fatalf("joiner mask differs at %d", i)
		}
	}

	// Training continues and the fleet stays consistent.
	if _, err := e.RunRound(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	ref = e.Clients()[0].Model().Vector()
	for _, c := range e.Clients()[1:] {
		v := c.Model().Vector()
		for i := range ref {
			if v[i] != ref[i] {
				t.Fatalf("post-join round: client %d diverged at %d", c.ID, i)
			}
		}
	}
}

func TestRemoveClient(t *testing.T) {
	e, _ := tinyEngine(t, "fedavg", 4)
	id := e.Clients()[2].ID
	if err := e.RemoveClient(id); err != nil {
		t.Fatal(err)
	}
	if len(e.Clients()) != 3 {
		t.Fatalf("fleet size = %d, want 3", len(e.Clients()))
	}
	if err := e.RemoveClient(999); err == nil {
		t.Error("removing unknown id must fail")
	}
	if _, err := e.RunRound(context.Background(), false); err != nil {
		t.Fatalf("round after removal: %v", err)
	}
}

func TestRemoveAllClientsFails(t *testing.T) {
	e, _ := tinyEngine(t, "fedavg", 2)
	ids := []int{}
	for _, c := range e.Clients() {
		ids = append(ids, c.ID)
	}
	for i, id := range ids {
		err := e.RemoveClient(id)
		if i == len(ids)-1 {
			if err == nil {
				t.Error("removing the last client must fail")
			}
		} else if err != nil {
			t.Fatal(err)
		}
	}
}
