package fl

import (
	"context"
	"math"
	"testing"

	"fedsu/internal/core"
	"fedsu/internal/data"
	"fedsu/internal/nn"
	"fedsu/internal/sparse"
	"fedsu/internal/tensor"
)

// TestFloat32WireLossless is the float32 mode's wire-fidelity contract: a
// client model trained at float32 (with the strategy in Quantize mode, as
// the engines configure it) holds only values the wire codec represents
// exactly, so QuantizeWire is the identity on its state and a full
// encode→decode round trip through the vector codec reproduces every
// parameter bit for bit. At float64 neither property holds (the codec
// rounds); this is precisely the asymmetry that makes compute and wire
// precision agree in float32 mode.
func TestFloat32WireLossless(t *testing.T) {
	for _, strategy := range []string{"fedavg", "fedsu"} {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			t.Parallel()
			ds := data.Synthesize(data.SynthConfig{
				Name: "tiny", Channels: 1, Size: 8, Classes: 4,
				Samples: 512, Noise: 0.2, Jitter: 1, Seed: 11,
			})
			cfg := Config{
				NumClients:     4,
				LocalIters:     5,
				BatchSize:      8,
				LR:             0.05,
				WeightDecay:    0.0005,
				DirichletAlpha: 1.0,
				EvalSamples:    128,
				EvalBatch:      64,
				Seed:           3,
				DType:          tensor.Float32,
			}
			builder := func() *nn.Model {
				return nn.NewMLP(nn.ModelConfig{
					InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5,
					DType: tensor.Float32,
				}, 24)
			}
			opts := core.DefaultOptions()
			opts.Quantize = true
			factory, err := StrategyFactoryWith(strategy, opts)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(cfg, builder, ds, factory)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Run(context.Background(), 6, 2); err != nil {
				t.Fatal(err)
			}

			for _, c := range e.Clients() {
				vec := c.Model().Vector()
				for i, v := range vec {
					if q := sparse.QuantizeWire(v); math.Float64bits(q) != math.Float64bits(v) {
						t.Fatalf("client %d param %d: QuantizeWire(%x) = %x, not identity — float32 state escaped the wire image",
							c.ID, i, math.Float64bits(v), math.Float64bits(q))
					}
				}
				dec, err := sparse.DecodeVectorPayload(sparse.EncodeVectorPayload(vec))
				if err != nil {
					t.Fatalf("client %d: decode: %v", c.ID, err)
				}
				if len(dec) != len(vec) {
					t.Fatalf("client %d: round trip length %d, want %d", c.ID, len(dec), len(vec))
				}
				for i := range vec {
					if math.Float64bits(dec[i]) != math.Float64bits(vec[i]) {
						t.Fatalf("client %d param %d: wire round trip %x → %x, want bit-exact",
							c.ID, i, math.Float64bits(vec[i]), math.Float64bits(dec[i]))
					}
				}
			}
		})
	}
}
