package fl

import (
	"context"
	"fmt"
	"sync"

	"fedsu/internal/netem"
	"fedsu/internal/par"
	"fedsu/internal/sparse"
)

// Compile-time proof that both aggregation tiers satisfy the collective
// contract the population driver dispatches through.
var (
	_ collective = (*Server)(nil)
	_ collective = (*Tree)(nil)
)

// collective is the round-synchronous aggregation tier the engine drives:
// the flat Server and the hierarchical Tree expose the same contract, so
// population rounds dispatch to either without caring which is behind it.
type collective interface {
	sparse.Aggregator
	SetRoster(ids []int)
	BeginRound(round int, participants []int)
	EvictionCount() int
	TimeoutCount() int
}

// slotProxy rebinds a physical client slot's collective identity to the
// population id of whichever cohort member the slot plays this round.
// Strategy syncers capture their clientID at construction; in population
// mode that id is the slot index, while the aggregation tier ranks by
// population ids — the proxy substitutes the current member id on every
// collective call. memberID is written by the engine between rounds,
// strictly before the round's slot goroutines are spawned (the goroutine
// start is the happens-before edge), and never during a round.
type slotProxy struct {
	agg      sparse.Aggregator
	memberID int
}

func (p *slotProxy) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return sparse.AggModel(context.Background(), p.agg, p.memberID, round, values)
}

func (p *slotProxy) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return sparse.AggError(context.Background(), p.agg, p.memberID, round, values)
}

func (p *slotProxy) AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return sparse.AggModel(ctx, p.agg, p.memberID, round, values)
}

func (p *slotProxy) AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return sparse.AggError(ctx, p.agg, p.memberID, round, values)
}

// setupPopulation validates the population-mode configuration and builds
// the registry, the population timing model, and (Fanout >= 2) the tree
// collective. Called once from NewEngineWithShards, before clients are
// constructed.
func (e *Engine) setupPopulation() error {
	cfg := &e.cfg
	if cfg.Population <= 0 {
		if cfg.Cohort != 0 {
			return fmt.Errorf("fl: Cohort = %d without Population; cohort sampling is a population-mode knob", cfg.Cohort)
		}
		if cfg.Fanout != 0 {
			return fmt.Errorf("fl: Fanout = %d without Population; the tree collective is the population-scale path", cfg.Fanout)
		}
		return nil
	}
	if cfg.Async.Enabled() {
		return fmt.Errorf("fl: population mode is synchronous-only (cohort rounds are barriers); disable Async")
	}
	if cfg.Cohort == 0 {
		cfg.Cohort = cfg.NumClients
	}
	if cfg.Cohort != cfg.NumClients {
		return fmt.Errorf("fl: Cohort = %d but NumClients = %d; each slot plays exactly one sampled member, so they must match", cfg.Cohort, cfg.NumClients)
	}
	if cfg.Population < cfg.Cohort {
		return fmt.Errorf("fl: Population = %d below Cohort = %d", cfg.Population, cfg.Cohort)
	}
	if cfg.Fanout != 0 && cfg.Fanout < 2 {
		return fmt.Errorf("fl: Fanout = %d; need 0 (flat) or >= 2", cfg.Fanout)
	}

	pop := NewPopulation(cfg.Seed)
	pop.RegisterN(cfg.Population, 1)

	// The timing model needs a tree fanout; a flat collective at
	// population scale is the single-tier degenerate case, which
	// PopulationModel reproduces when the fanout covers the whole cohort.
	netemFanout := cfg.Fanout
	if netemFanout == 0 {
		netemFanout = cfg.Cohort
		if netemFanout < 2 {
			netemFanout = 2
		}
	}
	pc := cfg.PopNetem
	if pc == (netem.PopulationConfig{}) {
		pc = netem.DefaultPopulationConfig(cfg.Population, netemFanout)
	} else {
		if pc.PopulationSize != cfg.Population {
			return fmt.Errorf("fl: PopNetem population %d != engine population %d", pc.PopulationSize, cfg.Population)
		}
		if pc.Fanout == 0 {
			pc.Fanout = netemFanout
		}
	}
	model, err := netem.NewPopulationModel(pc)
	if err != nil {
		return fmt.Errorf("fl: %w", err)
	}
	e.pop = pop
	e.popModel = model
	if cfg.Fanout >= 2 {
		e.tree = NewTree(cfg.Fanout)
		if cfg.CollectiveDeadline > 0 {
			e.tree.SetDeadline(cfg.CollectiveDeadline)
		}
	}
	return nil
}

// Population exposes the device registry (nil outside population mode).
func (e *Engine) Population() *Population { return e.pop }

// Tree exposes the hierarchical collective (nil when flat).
func (e *Engine) Tree() *Tree { return e.tree }

// collective returns the aggregation tier the current configuration folds
// through.
func (e *Engine) collective() collective {
	if e.tree != nil {
		return e.tree
	}
	return e.server
}

// slotCollective returns the aggregator handed to the next client slot's
// strategy factory: the server directly in classic mode, a member-id
// rebinding proxy over the tree or server in population mode.
func (e *Engine) slotCollective() sparse.Aggregator {
	var agg sparse.Aggregator = e.server
	if e.pop != nil {
		p := &slotProxy{agg: e.collective()}
		e.proxies = append(e.proxies, p)
		agg = p
	}
	// The chain wraps the member-upload boundary: submissions and results
	// pass through the chain's wire image, exactly what a TCP transport
	// ships, while the tree's internal partial cascade stays raw float64.
	return sparse.WrapAggregator(agg, e.chain)
}

// runPopRound executes one population-mode round: sample the cohort,
// time it through the population-scale network model, rebind slots to
// their members, and fold through the configured collective. The global
// the cohort receives is bit-identical between the tree and the flat
// server (both run the canonical rank-aligned fold), so Fanout is purely
// a systems knob.
func (e *Engine) runPopRound(ctx context.Context, evaluate bool) (RoundStats, error) {
	k := e.round
	cohort := e.pop.SampleCohort(k, e.cfg.Cohort)
	if len(cohort) != len(e.clients) {
		return RoundStats{}, fmt.Errorf("fl: round %d: cohort of %d for %d slots", k, len(cohort), len(e.clients))
	}
	// Rebind each slot to the member it plays BEFORE any goroutine spawns:
	// the spawn is the happens-before edge the proxies rely on.
	for i, p := range e.proxies {
		p.memberID = cohort[i]
	}

	// Timing through the population model: per-member loads reuse the
	// previous round's actual payloads (full model on the first round),
	// and the round closes on the earliest participation quorum, then the
	// partial cascade climbs the tree.
	scale := float64(e.wireParams()) / float64(e.evalModel.Size())
	computeSec := e.compute.RoundCompute(e.wireParams(), e.cfg.LocalIters)
	loads := e.prevLoads
	if loads == nil {
		full := int(float64(e.wire().DenseBytes(e.evalModel.Size())) * scale)
		loads = netem.UniformCohortLoad(len(cohort), full, full, computeSec)
	}
	partialBytes := sparse.PartialPayloadSize(e.wireParams())
	outcome := e.popModel.CohortRound(k, cohort, loads, partialBytes)

	slotOf := make(map[int]int, len(cohort))
	for i, id := range cohort {
		slotOf[id] = i
	}
	isParticipant := make([]bool, len(e.clients))
	for _, id := range outcome.Participants {
		isParticipant[slotOf[id]] = true
	}

	coll := e.collective()
	coll.SetRoster(cohort)
	coll.BeginRound(k, outcome.Participants)
	evictionsBefore, timeoutsBefore := coll.EvictionCount(), coll.TimeoutCount()
	var tierBefore TierStats
	if e.tree != nil {
		tierBefore = e.tree.Stats()
	}

	// Concurrent local training + synchronization, under the same
	// process-global compute-token budget as classic rounds (token
	// released before the sync barrier — see RunRound).
	type result struct {
		loss    float64
		traffic sparse.Traffic
		err     error
	}
	results := make([]result, len(e.clients))
	var wg sync.WaitGroup
	for i := range e.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := e.clients[i]
			par.AcquireToken()
			loss := c.TrainLocal(e.cfg.LocalIters, e.cfg.BatchSize)
			par.ReleaseToken()
			tr, err := c.SyncRoundCtx(ctx, k, isParticipant[i])
			results[i] = result{loss: loss, traffic: tr, err: err}
		}(i)
	}
	wg.Wait()

	stats := RoundStats{
		Round:        k,
		Participants: len(outcome.Participants),
		CohortSize:   len(cohort),
		Tiers:        outcome.Tiers,
		RootRxBytes:  outcome.RootRxBytes,
	}
	var trafficTotal sparse.Traffic
	ratioSum := 0.0
	nextLoads := make([]netem.ClientLoad, len(e.clients))
	for i, r := range results {
		if r.err != nil {
			return RoundStats{}, fmt.Errorf("fl: round %d: %w", k, r.err)
		}
		stats.TrainLoss += r.loss
		trafficTotal.Add(r.traffic)
		ratioSum += r.traffic.SparsificationRatio()
		nextLoads[i] = netem.ClientLoad{
			DownBytes:      int(float64(r.traffic.DownBytes) * scale),
			UpBytes:        int(float64(r.traffic.UpBytes) * scale),
			ComputeSeconds: computeSec,
		}
	}
	e.prevLoads = nextLoads
	stats.TrainLoss /= float64(len(e.clients))
	stats.Traffic = trafficTotal
	stats.SparsificationRatio = ratioSum / float64(len(e.clients))
	if pc, ok := sparse.UnwrapSyncer(e.clients[0].syncer).(interface{ PredictableCount() int }); ok {
		stats.PredictableFraction = float64(pc.PredictableCount()) / float64(e.evalModel.Size())
	}

	stats.Duration = outcome.Duration
	e.simTime += outcome.Duration
	stats.SimTime = e.simTime
	stats.Evicted = coll.EvictionCount() - evictionsBefore
	stats.Timeouts = coll.TimeoutCount() - timeoutsBefore
	if e.tree != nil {
		st := e.tree.Stats()
		stats.Tiers = st.Tiers
		stats.LeafFolds = st.LeafFolds - tierBefore.LeafFolds
		stats.ForwardedPartials = st.ForwardedPartials - tierBefore.ForwardedPartials
		for i, ev := range st.TierEvictions {
			prev := 0
			if i < len(tierBefore.TierEvictions) {
				prev = tierBefore.TierEvictions[i]
			}
			if d := ev - prev; d > 0 {
				for len(stats.TierEvictions) <= i {
					stats.TierEvictions = append(stats.TierEvictions, 0)
				}
				stats.TierEvictions[i] = d
			}
		}
	}

	if err := ctx.Err(); err != nil {
		// Mirror RunRound's post-barrier cancellation contract: the round
		// is complete fleet-side, so advance the counter and skip only the
		// evaluation.
		stats.Accuracy, stats.Loss = -1, -1
		e.round++
		return stats, err
	}
	if evaluate {
		stats.Accuracy, stats.Loss = e.EvaluateGlobal()
	} else {
		stats.Accuracy, stats.Loss = -1, -1
	}
	e.round++
	return stats, nil
}

// popGuard rejects fleet mutations in population mode: the slot count is
// the cohort size, and membership churn is modeled by sampling, not by
// joins and departures.
func (e *Engine) popGuard(op string) error {
	if e.pop != nil {
		return fmt.Errorf("fl: %s is unavailable in population mode; membership churn is modeled by cohort sampling", op)
	}
	return nil
}
