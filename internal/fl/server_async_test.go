package fl

import (
	"errors"
	"testing"

	"fedsu/internal/par"
)

func newAsyncServer(t *testing.T, clients int, cfg AsyncConfig) *Server {
	t.Helper()
	s := NewServer(clients)
	if err := s.SetAsync(cfg); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAsyncAppliesEveryK: contributions buffer without producing a global
// until the K-th arrives, which applies and bumps the version.
func TestAsyncAppliesEveryK(t *testing.T) {
	const k = 3
	s := newAsyncServer(t, 5, AsyncConfig{K: k})
	vec := contributionFor(0, 16)
	for i := 0; i < k-1; i++ {
		g, err := s.AggregateModel(i, 0, vec)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			t.Fatalf("global non-nil after %d of %d contributions", i+1, k)
		}
		if v := s.AsyncVersion(); v != 0 {
			t.Fatalf("version %d before first apply", v)
		}
	}
	g, err := s.AggregateModel(k-1, 0, vec)
	if err != nil {
		t.Fatal(err)
	}
	if g == nil || s.AsyncVersion() != 1 {
		t.Fatalf("K-th contribution did not apply: global=%v version=%d", g != nil, s.AsyncVersion())
	}
	// All contributions identical and fresh: the applied mean is the vector
	// (up to the k·v·(1/k) rounding of the fold/scale steps).
	for i := range g {
		if rel := (g[i] - vec[i]) / vec[i]; rel > 1e-14 || rel < -1e-14 {
			t.Fatalf("mean of identical fresh contributions deviates at %d: %g vs %g", i, g[i], vec[i])
		}
	}
}

// TestAsyncKEqualsNMatchesBarrierMean: with K = N, all-fresh contributions
// arriving in ascending client-id order reproduce the synchronous barrier's
// serial mean bit-for-bit (same left-fold order, weight 1, same 1/n scale).
func TestAsyncKEqualsNMatchesBarrierMean(t *testing.T) {
	const clients, size = 8, 3000
	vecs := make(map[int][]float64, clients)
	for id := 0; id < clients; id++ {
		vecs[id] = contributionFor(id, size)
	}
	want := referenceMean(vecs)

	for _, workers := range []int{1, 2, 7} {
		prev := par.SetWorkers(workers)
		s := newAsyncServer(t, clients, AsyncConfig{K: clients, MaxStaleness: -1, StalenessWeight: 1})
		var got []float64
		for id := 0; id < clients; id++ {
			g, err := s.AggregateModel(id, 0, vecs[id])
			if err != nil {
				par.SetWorkers(prev)
				t.Fatal(err)
			}
			got = g
		}
		par.SetWorkers(prev)
		if !sameBits(got, want) {
			t.Fatalf("workers=%d: K=N async mean deviates from the barrier's serial reference", workers)
		}
	}
}

// TestAsyncStalenessWeighting: a contribution one version behind folds with
// weight StalenessWeight^1 and the apply divides by the weight sum.
func TestAsyncStalenessWeighting(t *testing.T) {
	const size = 64
	const w = 0.5
	s := newAsyncServer(t, 2, AsyncConfig{K: 2, MaxStaleness: -1, StalenessWeight: w})
	v0 := contributionFor(0, size)
	v1 := contributionFor(1, size)

	// Cycle 1: both fresh (first contact), apply at version 1. Client 1
	// triggers the apply so it leaves synchronized at 1; client 0 stays
	// based at 0.
	mustSubmit(t, s, 0, v0)
	mustSubmit(t, s, 1, v1)

	// Cycle 2: client 0 is one version behind (weight w), client 1 fresh.
	mustSubmit(t, s, 0, v0)
	got := mustSubmit(t, s, 1, v1)

	// Mirror the fold order exactly: sum = w·v0 then += 1·v1, scaled by
	// 1/(w+1). Matching the operation order makes bit-equality meaningful.
	want := make([]float64, size)
	for i := range want {
		want[i] = w * v0[i]
		want[i] += 1 * v1[i]
		want[i] *= 1 / (w + 1)
	}
	if s.AsyncVersion() != 2 {
		t.Fatalf("version = %d, want 2", s.AsyncVersion())
	}
	if !sameBits(got, want) {
		t.Fatal("staleness-weighted mean deviates from hand fold")
	}
}

// TestAsyncMaxStalenessDrops: a contribution beyond MaxStaleness is
// discarded (counted, not folded) and the client resynchronizes.
func TestAsyncMaxStalenessDrops(t *testing.T) {
	s := newAsyncServer(t, 3, AsyncConfig{K: 1, MaxStaleness: 0, StalenessWeight: 1})
	v := contributionFor(1, 8)

	g1 := mustSubmit(t, s, 0, contributionFor(0, 8)) // applies version 1, base[0]=1
	mustSubmit(t, s, 1, v)                           // first contact: fresh, applies version 2
	if s.AsyncVersion() != 2 {
		t.Fatalf("version = %d, want 2", s.AsyncVersion())
	}

	// Client 0 is now one version behind its base: stale=1 > MaxStaleness=0.
	got := mustSubmit(t, s, 0, contributionFor(0, 8))
	if s.StaleDropCount() != 1 {
		t.Fatalf("StaleDropCount = %d, want 1", s.StaleDropCount())
	}
	if s.AsyncVersion() != 2 {
		t.Fatalf("dropped contribution advanced the version to %d", s.AsyncVersion())
	}
	if !sameBits(got, v) {
		t.Fatal("dropped submission did not receive the current global")
	}
	_ = g1

	// Resynchronized by the drop: the next submission is fresh and folds.
	mustSubmit(t, s, 0, contributionFor(0, 8))
	if s.AsyncVersion() != 3 || s.StaleDropCount() != 1 {
		t.Fatalf("post-resync submission: version=%d drops=%d, want 3, 1", s.AsyncVersion(), s.StaleDropCount())
	}
}

// TestAsyncAbstainSynchronizes: a nil submission (event-triggered
// abstention) contributes nothing and does not advance the buffer, but
// resynchronizes the client so its next real contribution is fresh.
func TestAsyncAbstainSynchronizes(t *testing.T) {
	s := newAsyncServer(t, 3, AsyncConfig{K: 1, MaxStaleness: 0, StalenessWeight: 1})
	mustSubmit(t, s, 0, contributionFor(0, 8)) // version 1
	mustSubmit(t, s, 0, contributionFor(0, 8)) // version 2 (client 0 stays fresh)

	// Client 1 abstains: receives the current global, folds nothing.
	g := mustSubmit(t, s, 1, nil)
	if s.AsyncVersion() != 2 || g == nil {
		t.Fatalf("abstention changed version (%d) or returned nil global", s.AsyncVersion())
	}

	// Client 0 advances the version once more; client 1's abstention-time
	// base keeps it within MaxStaleness=0? No — one behind. The point: had
	// client 1 NOT abstained, its base would still be 0 and it would be two
	// behind. Verify the abstention moved the base: a submission now is
	// stale=1 (dropped), not stale=3.
	mustSubmit(t, s, 0, contributionFor(0, 8)) // version 3
	mustSubmit(t, s, 1, contributionFor(1, 8)) // stale 1 -> dropped, resyncs
	if s.StaleDropCount() != 1 {
		t.Fatalf("StaleDropCount = %d, want 1", s.StaleDropCount())
	}
	mustSubmit(t, s, 1, contributionFor(1, 8)) // fresh now
	if s.AsyncVersion() != 4 {
		t.Fatalf("version = %d, want 4", s.AsyncVersion())
	}
}

// TestAsyncNilBeforeFirstApply: before any apply, every caller (abstainer
// or contributor short of K) receives a nil global — the same "keep local"
// bootstrap contract as the barrier path's round-0 nil.
func TestAsyncNilBeforeFirstApply(t *testing.T) {
	s := newAsyncServer(t, 4, AsyncConfig{K: 3})
	if g := mustSubmit(t, s, 0, nil); g != nil {
		t.Fatal("abstention before first apply returned a non-nil global")
	}
	if g := mustSubmit(t, s, 1, contributionFor(1, 8)); g != nil {
		t.Fatal("buffered contribution before first apply returned a non-nil global")
	}
	if s.AsyncGlobal() != nil {
		t.Fatal("AsyncGlobal non-nil before first apply")
	}
}

// TestAsyncLengthMismatch: the accumulator's element count is fixed by the
// first contribution; mismatched lengths fail loudly.
func TestAsyncLengthMismatch(t *testing.T) {
	s := newAsyncServer(t, 2, AsyncConfig{K: 4})
	mustSubmit(t, s, 0, make([]float64, 10))
	if _, err := s.AggregateModel(1, 0, make([]float64, 11)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestAsyncEvictedRejected: the eviction gate runs before the async fold,
// so an evicted client's submissions are refused in async mode too.
func TestAsyncEvictedRejected(t *testing.T) {
	s := newAsyncServer(t, 3, AsyncConfig{K: 1})
	s.mu.Lock()
	s.evicted[2] = true
	s.mu.Unlock()
	if _, err := s.AggregateModel(2, 0, contributionFor(2, 8)); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted client's async submission: err = %v, want ErrEvicted", err)
	}
	if s.AsyncVersion() != 0 {
		t.Fatal("evicted submission folded")
	}
}

// TestAsyncRoundArgumentIgnored: async mode has no per-round collectives —
// arbitrary round numbers land in the same accumulator.
func TestAsyncRoundArgumentIgnored(t *testing.T) {
	s := newAsyncServer(t, 2, AsyncConfig{K: 2})
	if _, err := s.AggregateModel(0, 17, contributionFor(0, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateModel(1, 3, contributionFor(1, 8)); err != nil {
		t.Fatal(err)
	}
	if s.AsyncVersion() != 1 {
		t.Fatalf("version = %d, want 1 (rounds 17 and 3 should share the channel)", s.AsyncVersion())
	}
}

// TestAsyncErrorChannelIndependent: the "error" collective kind accumulates
// on its own channel; model version and global are untouched by it.
func TestAsyncErrorChannelIndependent(t *testing.T) {
	s := newAsyncServer(t, 2, AsyncConfig{K: 1})
	if _, err := s.AggregateError(0, 0, contributionFor(0, 8)); err != nil {
		t.Fatal(err)
	}
	if s.AsyncVersion() != 0 || s.AsyncGlobal() != nil {
		t.Fatal("error-channel fold leaked into the model channel")
	}
	mustSubmit(t, s, 0, contributionFor(0, 8))
	if s.AsyncVersion() != 1 {
		t.Fatalf("model version = %d, want 1", s.AsyncVersion())
	}
}

// TestAsyncGlobalImmutable: an apply must not mutate globals already handed
// out — each apply allocates fresh.
func TestAsyncGlobalImmutable(t *testing.T) {
	s := newAsyncServer(t, 2, AsyncConfig{K: 1})
	g1 := mustSubmit(t, s, 0, contributionFor(0, 8))
	snap := append([]float64(nil), g1...)
	mustSubmit(t, s, 1, contributionFor(1, 8))
	if !sameBits(g1, snap) {
		t.Fatal("second apply mutated the first handed-out global")
	}
}

// TestAsyncFoldBitDeterminism extends the barrier bit-identity contract to
// the async fold: a fixed arrival sequence (with staleness mixed in) must
// produce a bit-identical final global at every par worker count. Size
// spans several foldGrain blocks so the parallel kernels actually shard.
func TestAsyncFoldBitDeterminism(t *testing.T) {
	const clients, size, cycles = 6, 5000, 8
	vecs := make([][]float64, clients)
	for id := range vecs {
		vecs[id] = contributionFor(id, size)
	}
	// A fixed arrival schedule with repeats and gaps: client 3 skips most
	// cycles (goes stale), client 0 submits often (stays fresh).
	var schedule []int
	for c := 0; c < cycles; c++ {
		schedule = append(schedule, 0, c%clients, (c*2+1)%clients)
	}

	var want []float64
	for wi, workers := range []int{1, 2, 7} {
		prev := par.SetWorkers(workers)
		s := newAsyncServer(t, clients, AsyncConfig{K: 4, MaxStaleness: 3, StalenessWeight: 0.5})
		for _, id := range schedule {
			mustSubmit(t, s, id, vecs[id])
		}
		got := s.AsyncGlobal()
		par.SetWorkers(prev)
		if got == nil {
			t.Fatal("schedule produced no apply")
		}
		if wi == 0 {
			want = got
			continue
		}
		if !sameBits(got, want) {
			t.Fatalf("workers=%d: async global deviates bitwise from workers=1", workers)
		}
	}
}

// TestSetAsyncValidates: bad configs are refused and leave the server in
// barrier mode; a zero config disables async.
func TestSetAsyncValidates(t *testing.T) {
	s := NewServer(2)
	if err := s.SetAsync(AsyncConfig{K: 1, StalenessWeight: 1.5}); err == nil {
		t.Fatal("StalenessWeight > 1 accepted")
	}
	if err := s.SetAsync(AsyncConfig{K: 1, StalenessWeight: -0.1}); err == nil {
		t.Fatal("negative StalenessWeight accepted")
	}
	if s.AsyncEnabled() {
		t.Fatal("rejected config left async enabled")
	}
	if err := s.SetAsync(AsyncConfig{K: 2}); err != nil {
		t.Fatal(err)
	}
	if !s.AsyncEnabled() {
		t.Fatal("valid config did not enable async")
	}
	if err := s.SetAsync(AsyncConfig{}); err != nil {
		t.Fatal(err)
	}
	if s.AsyncEnabled() {
		t.Fatal("zero config did not disable async")
	}
	// Default staleness weight resolves to 0.5.
	cfg := AsyncConfig{K: 1}.withDefaults()
	if cfg.StalenessWeight != 0.5 {
		t.Fatalf("default StalenessWeight = %v, want 0.5", cfg.StalenessWeight)
	}
}

func mustSubmit(t *testing.T, s *Server, id int, values []float64) []float64 {
	t.Helper()
	g, err := s.AggregateModel(id, 0, values)
	if err != nil {
		t.Fatalf("client %d: %v", id, err)
	}
	return g
}
