package fl

import (
	"context"
	"fmt"
	"math"

	"fedsu/internal/par"
)

// AsyncConfig parameterizes the buffered-async aggregation mode
// (SetAsync). Instead of a per-round barrier, the server folds model
// submissions into a weighted accumulator as they arrive and applies a new
// global every K contributions — FedBuff-style buffered asynchrony.
//
// Staleness is measured in *versions* (global applications), never
// wall-clock: a submission's staleness is the number of globals applied
// since the submitting client last pulled one. Version counting keeps the
// fold seed-deterministic — the same arrival sequence produces the same
// weights regardless of real elapsed time.
type AsyncConfig struct {
	// K is the buffer size: the global applies after every K buffered
	// contributions. K <= 0 leaves async mode disabled; K == 1 is fully
	// asynchronous (every contribution applies immediately).
	K int

	// MaxStaleness drops contributions more than this many versions
	// behind the current global (they count toward StaleDropCount and
	// return the current global without folding). Negative means
	// unlimited; zero means only perfectly fresh contributions fold.
	MaxStaleness int

	// StalenessWeight is the per-version decay base: a contribution s
	// versions behind folds with weight StalenessWeight^s and the apply
	// step divides by the sum of folded weights. Must be in (0, 1]; zero
	// selects the default 0.5. 1.0 disables decay (plain buffered mean).
	StalenessWeight float64
}

// Enabled reports whether the config describes an active async mode.
func (c AsyncConfig) Enabled() bool { return c.K > 0 }

func (c AsyncConfig) validate() error {
	if c.K <= 0 {
		return fmt.Errorf("fl: async K must be >= 1, got %d", c.K)
	}
	if c.StalenessWeight < 0 || c.StalenessWeight > 1 {
		return fmt.Errorf("fl: async staleness weight must be in (0, 1], got %g", c.StalenessWeight)
	}
	return nil
}

// withDefaults resolves zero values to their documented defaults.
func (c AsyncConfig) withDefaults() AsyncConfig {
	if c.StalenessWeight == 0 {
		c.StalenessWeight = 0.5
	}
	return c
}

// asyncChan is one async accumulation channel (one per collective kind:
// "model" and "error"), guarded by Server.amu. It is the async counterpart
// of an op: a running weighted sum that applies every K contributions.
type asyncChan struct {
	// ver counts applied globals; it is the staleness clock.
	ver int

	// base[id] is the version the client last synchronized against (the
	// global it was handed on its previous submission). A client's
	// staleness is ver - base[id]. First contact seeds base at the current
	// version: a brand-new client trained against the freshest state it
	// could have pulled.
	base map[int]int

	// Accumulator state. sumLen is -1 until the first contribution fixes
	// the element count; sum/wsum/buf reset after every apply.
	sumLen int
	sum    []float64
	wsum   float64
	buf    int

	// global is the last applied result; nil until the first apply.
	// Apply allocates a fresh slice every time so a slice handed to an
	// earlier caller is never mutated behind its back.
	global []float64

	// applies counts globals produced on this channel (== ver, kept
	// separate for clarity at call sites).
	applies int

	// Persistent parallel kernels over the current fold parameters, like
	// op.foldFn/scaleFn: created once so steady-state folds allocate
	// nothing but the apply-step global. Inputs are published before the
	// par dispatch (channel send / WaitGroup synchronize them).
	foldVals []float64
	foldW    float64
	applyDst []float64
	applyInv float64
	foldFn   func(lo, hi int)
	applyFn  func(lo, hi int)
}

func newAsyncChan() *asyncChan {
	c := &asyncChan{base: map[int]int{}, sumLen: -1}
	c.foldFn = func(lo, hi int) {
		dst := c.sum[lo:hi]
		src := c.foldVals[lo:hi]
		w := c.foldW
		for i := range dst {
			dst[i] += w * src[i]
		}
	}
	c.applyFn = func(lo, hi int) {
		dst := c.applyDst[lo:hi]
		src := c.sum[lo:hi]
		inv := c.applyInv
		for i := range dst {
			dst[i] = src[i] * inv
		}
	}
	return c
}

// SetAsync switches the server into buffered-async aggregation (cfg.K >= 1)
// or back to barrier mode (zero cfg). In async mode Aggregate* calls never
// block on a barrier: a submission folds into the per-kind accumulator
// immediately, weighted by StalenessWeight^staleness, and returns the
// current global (nil before the first apply — strategies treat a nil
// global as "keep local", exactly the bootstrap contract of the barrier
// path). BeginRound/SetRoster participant sets are ignored: any
// non-evicted client that submits non-nil values contributes.
//
// Determinism contract: the fold is bit-identical across par worker counts
// (element-sharded, so per-element addition order never depends on
// chunking), but — unlike the barrier, which reorders a round's
// submissions into client-id order — the async fold is order-sensitive
// across *arrival order*. Seed-determinism therefore requires the caller
// to serialize submissions in a seeded order, which the netem-driven
// engine event loop does; see DESIGN.md §5i.
//
// It must not be called while collectives are in flight.
func (s *Server) SetAsync(cfg AsyncConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !cfg.Enabled() {
		s.async = false
		s.acfg = AsyncConfig{}
		return nil
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	s.async = true
	s.acfg = cfg.withDefaults()
	s.amu.Lock()
	if s.achan == nil {
		s.achan = map[string]*asyncChan{}
	}
	s.amu.Unlock()
	return nil
}

// AsyncEnabled reports whether buffered-async mode is active.
func (s *Server) AsyncEnabled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.async
}

// asyncSubmit folds one submission into the kind's channel. Caller has
// already cleared the eviction check under s.mu and released it.
func (s *Server) asyncSubmit(ctx context.Context, clientID int, kind string, values []float64) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.amu.Lock()
	defer s.amu.Unlock()
	ch := s.achan[kind]
	if ch == nil {
		ch = newAsyncChan()
		s.achan[kind] = ch
	}

	stale := ch.ver - ch.base[clientID]
	if _, seen := ch.base[clientID]; !seen {
		// First contact: the client trained from the freshest pull it
		// could have made, so it folds at full weight.
		stale = 0
	}

	if values != nil {
		if s.acfg.MaxStaleness >= 0 && stale > s.acfg.MaxStaleness {
			// Too far behind: the contribution is discarded, not folded.
			// The client still resynchronizes to the current global below.
			s.astale++
		} else if err := ch.fold(values, math.Pow(s.acfg.StalenessWeight, float64(stale))); err != nil {
			return nil, err
		} else if ch.buf >= s.acfg.K {
			ch.apply()
		}
	}

	// Whether it contributed, abstained (nil values), or was dropped for
	// staleness, the client leaves synchronized to the version it is
	// being handed.
	ch.base[clientID] = ch.ver
	return ch.global, nil
}

// fold accumulates one weighted contribution.
func (c *asyncChan) fold(values []float64, w float64) error {
	if c.sumLen == -1 {
		c.sumLen = len(values)
		if cap(c.sum) >= c.sumLen {
			c.sum = c.sum[:c.sumLen]
			clear(c.sum)
		} else {
			c.sum = make([]float64, c.sumLen)
		}
	}
	if len(values) != c.sumLen {
		return fmt.Errorf("fl: async contribution has %d values, accumulator holds %d", len(values), c.sumLen)
	}
	c.foldVals, c.foldW = values, w
	par.ParallelizeGrain(c.sumLen, foldGrain, c.foldFn)
	c.foldVals = nil
	c.wsum += w
	c.buf++
	return nil
}

// apply produces a new global from the buffered weighted sum and resets
// the buffer. The result is a fresh allocation: globals already handed to
// callers stay immutable.
func (c *asyncChan) apply() {
	c.applyDst = make([]float64, c.sumLen)
	c.applyInv = 1 / c.wsum
	par.ParallelizeGrain(c.sumLen, foldGrain, c.applyFn)
	c.global = c.applyDst
	c.applyDst = nil
	c.ver++
	c.applies++
	clear(c.sum)
	c.wsum = 0
	c.buf = 0
}

// AsyncVersion returns the number of globals applied on the model channel.
func (s *Server) AsyncVersion() int {
	s.amu.Lock()
	defer s.amu.Unlock()
	if ch := s.achan["model"]; ch != nil {
		return ch.ver
	}
	return 0
}

// AsyncGlobal returns the current async global model (nil before the first
// apply). The returned slice is immutable by contract — apply always
// allocates fresh.
func (s *Server) AsyncGlobal() []float64 {
	s.amu.Lock()
	defer s.amu.Unlock()
	if ch := s.achan["model"]; ch != nil {
		return ch.global
	}
	return nil
}

// StaleDropCount reports contributions discarded for exceeding
// MaxStaleness, across all channels.
func (s *Server) StaleDropCount() int {
	s.amu.Lock()
	defer s.amu.Unlock()
	return s.astale
}
