package fl

import (
	"math/rand"
	"runtime"
	"testing"

	"fedsu/internal/par"
)

// Satellite: the cohort sampler's determinism contract. Same (seed,
// round) → same cohort regardless of registration order, shuffled
// population, and par worker count; distinct rounds draw distinct
// cohorts; no member repeats within a round.

func popWithOrder(seed int64, ids []int) *Population {
	p := NewPopulation(seed)
	for _, id := range ids {
		p.Register(Member{ID: id, ShardSize: 100 + id%7})
	}
	return p
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCohortSamplingDeterministic(t *testing.T) {
	const n, k, seed = 5000, 120, 42
	asc := make([]int, n)
	for i := range asc {
		asc[i] = i
	}
	desc := make([]int, n)
	for i := range desc {
		desc[i] = n - 1 - i
	}
	shuf := rand.New(rand.NewSource(7)).Perm(n)

	ref := popWithOrder(seed, asc)
	for round := 0; round < 5; round++ {
		want := ref.SampleCohort(round, k)
		if len(want) != k {
			t.Fatalf("round %d: cohort size %d, want %d", round, len(want), k)
		}
		for _, order := range [][]int{desc, shuf} {
			got := popWithOrder(seed, order).SampleCohort(round, k)
			if !equalInts(got, want) {
				t.Fatalf("round %d: cohort depends on registration order", round)
			}
		}
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			prev := par.SetWorkers(workers)
			got := ref.SampleCohort(round, k)
			par.SetWorkers(prev)
			if !equalInts(got, want) {
				t.Fatalf("round %d: cohort depends on par workers=%d", round, workers)
			}
		}
		// Repeat draws of the same round are identical (no hidden state).
		if !equalInts(ref.SampleCohort(round, k), want) {
			t.Fatalf("round %d: repeated draw differs", round)
		}
	}
}

func TestCohortSamplingWithoutReplacement(t *testing.T) {
	p := popWithOrder(3, rand.New(rand.NewSource(1)).Perm(2000))
	for round := 0; round < 8; round++ {
		cohort := p.SampleCohort(round, 300)
		seen := make(map[int]bool, len(cohort))
		for _, id := range cohort {
			if seen[id] {
				t.Fatalf("round %d: member %d drawn twice", round, id)
			}
			seen[id] = true
			if id < 0 || id >= 2000 {
				t.Fatalf("round %d: member %d outside population", round, id)
			}
		}
	}
}

func TestCohortSamplingRoundsDiffer(t *testing.T) {
	p := NewPopulation(9)
	p.RegisterN(10000, 64)
	c0 := p.SampleCohort(0, 500)
	distinct := false
	for round := 1; round < 4 && !distinct; round++ {
		if !equalInts(p.SampleCohort(round, 500), c0) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("rounds 0..3 all drew the identical cohort")
	}
	// Seeds diversify the draw too.
	q := NewPopulation(10)
	q.RegisterN(10000, 64)
	if equalInts(q.SampleCohort(0, 500), c0) {
		t.Fatal("different seeds drew the identical cohort")
	}
}

func TestCohortSamplingEdges(t *testing.T) {
	p := NewPopulation(1)
	p.RegisterN(10, 5)
	if got := p.SampleCohort(0, 0); got != nil {
		t.Fatalf("k=0 cohort = %v, want nil", got)
	}
	if got := p.SampleCohort(0, 25); !equalInts(got, p.IDs()) {
		t.Fatalf("k>n cohort = %v, want all ids", got)
	}
	// Cohorts come back in ascending id order — the roster rank order the
	// aggregation tier relies on.
	c := p.SampleCohort(3, 6)
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Fatalf("cohort not ascending: %v", c)
		}
	}
	// Re-registering replaces, not duplicates.
	p.Register(Member{ID: 4, ShardSize: 99})
	if p.Len() != 10 {
		t.Fatalf("re-register changed population size to %d", p.Len())
	}
	if m, _ := p.Member(4); m.ShardSize != 99 {
		t.Fatalf("re-register did not replace descriptor: %+v", m)
	}
}
