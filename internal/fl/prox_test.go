package fl

import (
	"math"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/nn"
	"fedsu/internal/opt"
)

func proxClient(t *testing.T, mu float64) *Client {
	t.Helper()
	ds := data.Synthesize(data.SynthConfig{
		Name: "prox", Channels: 1, Size: 6, Classes: 2,
		Samples: 64, Noise: 0.2, Seed: 4,
	})
	model := nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 6, NumClasses: 2, Seed: 3}, 8)
	c := NewClient(0, model, opt.NewSGD(0.1), data.NewSubset(ds, seq(64)), nil, 1)
	c.SetProximal(mu)
	return c
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// TestProximalAnchorsLocalTraining: the larger μ, the smaller the local
// drift from the round-start model — the FedProx contract.
func TestProximalAnchorsLocalTraining(t *testing.T) {
	drift := func(mu float64) float64 {
		c := proxClient(t, mu)
		start := c.Model().Vector()
		c.TrainLocal(10, 8)
		end := c.Model().Vector()
		s := 0.0
		for i := range start {
			d := end[i] - start[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	free := drift(0)
	anchored := drift(5)
	if anchored >= free {
		t.Errorf("μ=5 drift %v must be below μ=0 drift %v", anchored, free)
	}
	if anchored > free/3 {
		t.Errorf("strong proximal term should shrink drift substantially: %v vs %v", anchored, free)
	}
}

func TestProximalZeroIsVanillaSGD(t *testing.T) {
	a := proxClient(t, 0)
	b := proxClient(t, 0)
	b.proxMu = 0 // explicit no-op
	a.TrainLocal(5, 4)
	b.TrainLocal(5, 4)
	va, vb := a.Model().Vector(), b.Model().Vector()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("identical zero-μ clients must train identically")
		}
	}
}
