package fl

import (
	"fmt"
	"math/rand"

	"fedsu/internal/core"
	"fedsu/internal/data"
	"fedsu/internal/netem"
	"fedsu/internal/opt"
	"fedsu/internal/sparse"
)

// AddClient admits a new participant between rounds, implementing the
// paper's dynamicity handling (Sec. V): the joiner downloads the latest
// global model and — when the strategy is FedSU — the current
// predictability-mask and no-checking state, cloned from an incumbent
// client so its future masking decisions match the fleet's.
//
// The netem cluster is rebuilt for the new size; per-client compute speeds
// are redrawn deterministically from the configured seed.
func (e *Engine) AddClient(shard *data.Subset) (*Client, error) {
	if err := e.popGuard("AddClient"); err != nil {
		return nil, err
	}
	if len(e.clients) == 0 {
		return nil, fmt.Errorf("fl: cannot join an empty fleet")
	}
	id := e.nextID
	e.nextID++

	model := e.builder()
	model.LoadVector(e.clients[0].model.Vector())
	optimizer := opt.NewSGD(e.cfg.LR,
		opt.WithMomentum(e.cfg.Momentum),
		opt.WithWeightDecay(e.cfg.WeightDecay))
	syncer := e.factory(id, model.Size(), e.slotCollective())
	sparse.SetSyncerWire(syncer, e.wire())

	// FedSU state transfer: mask + no-checking information (Sec. V). The
	// probe resolves through any event-trigger middleware to the strategy
	// underneath.
	if donor, ok := sparse.UnwrapSyncer(e.clients[0].syncer).(*core.Manager); ok {
		joiner, ok := sparse.UnwrapSyncer(syncer).(*core.Manager)
		if !ok {
			return nil, fmt.Errorf("fl: factory produced %T for a FedSU fleet", syncer)
		}
		if err := joiner.Restore(donor.Snapshot()); err != nil {
			return nil, fmt.Errorf("fl: state transfer to joiner: %w", err)
		}
	}

	c := NewClient(id, model, optimizer, shard, syncer, e.cfg.Seed+int64(id)*7919)
	c.SetProximal(e.cfg.ProxMu)
	e.clients = append(e.clients, c)
	return c, e.resize()
}

// AddClientFromDataset admits a new participant whose local shard is n
// samples drawn uniformly (without replacement) from the engine's dataset
// using the given seed. It is the convenience form of AddClient for
// emulated runs.
func (e *Engine) AddClientFromDataset(n int, seed int64) (*Client, error) {
	if n <= 0 || n > e.dataset.Len() {
		return nil, fmt.Errorf("fl: joiner shard size %d outside [1, %d]", n, e.dataset.Len())
	}
	rng := newShardRNG(seed)
	perm := rng.Perm(e.dataset.Len())
	return e.AddClient(data.NewSubset(e.dataset, perm[:n]))
}

// RemoveClient drops a participant between rounds. The departed client's
// data simply stops contributing; the fleet continues unchanged otherwise.
func (e *Engine) RemoveClient(id int) error {
	if err := e.popGuard("RemoveClient"); err != nil {
		return err
	}
	for i, c := range e.clients {
		if c.ID == id {
			e.clients = append(e.clients[:i], e.clients[i+1:]...)
			if len(e.clients) == 0 {
				return fmt.Errorf("fl: removed the last client")
			}
			return e.resize()
		}
	}
	return fmt.Errorf("fl: no client with id %d", id)
}

func newShardRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// resize rebuilds the size-dependent machinery after a membership change.
func (e *Engine) resize() error {
	n := len(e.clients)
	e.server.SetNumClients(n)
	cfg := e.cfg.Netem
	cfg.NumClients = n
	cluster, err := netem.NewCluster(cfg)
	if err != nil {
		return fmt.Errorf("fl: resize: %w", err)
	}
	e.cluster = cluster
	e.prevLoads = nil // re-estimate payloads next round
	return nil
}
