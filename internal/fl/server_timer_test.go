package fl

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// These tests pin the deadline-timer lifecycle: a timer firing for a
// barrier that has since completed — and whose op shell may already have
// been recycled into a NEW collective, even at the same (round, kind) key —
// must be a strict no-op. The op generation counter (op.gen) is what makes
// the stale firing detectable; before it, a recycled shell at the same key
// passed the identity check and the stale timer could evict clients from a
// barrier it was never armed for.

// opState snapshots the op pointer and generation under the server lock.
func opState(s *Server, round int, kind string) (*op, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.ops[opKey{round: round, kind: kind}]
	if o == nil {
		return nil, 0
	}
	return o, o.gen
}

// TestExpireAfterCompleteIsNoOp: firing the deadline on a finished barrier
// does nothing — no timeout is counted, nobody is evicted.
func TestExpireAfterCompleteIsNoOp(t *testing.T) {
	s := NewServer(2)
	s.SetDeadline(time.Hour) // armed but never fires on its own
	s.BeginRound(0, []int{0, 1})
	vecs := map[int][]float64{0: contributionFor(0, 8), 1: contributionFor(1, 8)}
	_, errs := submitInOrder(t, s, 0, []int{0, 1}, vecs)
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	o, gen := opState(s, 0, "model")
	if o == nil {
		t.Fatal("completed op already gone before BeginRound")
	}
	s.expire(opKey{round: 0, kind: "model"}, o, gen)
	if n := s.TimeoutCount(); n != 0 {
		t.Fatalf("stale expiry on a finished barrier counted a timeout (%d)", n)
	}
	if n := s.EvictionCount(); n != 0 {
		t.Fatalf("stale expiry on a finished barrier evicted clients (%d)", n)
	}
}

// TestStaleExpireOnRecycledShellIsNoOp: the armed op shell is recycled into
// a new collective at the SAME key; the old timer firing with the old
// generation must not touch the new barrier.
func TestStaleExpireOnRecycledShellIsNoOp(t *testing.T) {
	s := NewServer(2)
	s.SetDeadline(time.Hour)
	s.BeginRound(0, []int{0, 1})
	vecs := map[int][]float64{0: contributionFor(0, 8), 1: contributionFor(1, 8)}
	_, errs := submitInOrder(t, s, 0, []int{0, 1}, vecs)
	for id, err := range errs {
		if err != nil {
			t.Fatalf("round 0 client %d: %v", id, err)
		}
	}
	oldOp, oldGen := opState(s, 0, "model")

	// Recycle: the round-0 shell goes to the free list and is reused for
	// the round-0 collective of the "replayed" session (same key — the
	// checkpoint-restore scenario).
	s.BeginRound(0, []int{0, 1})
	done := make(chan error, 1)
	go func() {
		_, err := s.AggregateModel(0, 0, vecs[0])
		done <- err
	}()
	waitSubs(t, s, 0, "model", 1)

	newOp, newGen := opState(s, 0, "model")
	if newOp != oldOp {
		t.Skip("free list did not reuse the shell; generation scenario not exercised")
	}
	if newGen == oldGen {
		t.Fatal("recycled shell kept its generation; stale timers are indistinguishable")
	}

	// The old timer fires now: same key, same pointer, old generation.
	s.expire(opKey{round: 0, kind: "model"}, oldOp, oldGen)
	if n := s.EvictionCount(); n != 0 {
		t.Fatalf("stale timer evicted %d clients from the new barrier", n)
	}
	select {
	case err := <-done:
		t.Fatalf("stale timer released the new barrier early (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}

	// The new barrier still works normally.
	if _, err := s.AggregateModel(1, 0, vecs[1]); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestExpireWithCurrentGenerationEvicts: the guard must not block a
// legitimate expiry — correct pointer and generation still evict the
// missing client and close the barrier over the survivors.
func TestExpireWithCurrentGenerationEvicts(t *testing.T) {
	s := NewServer(2)
	s.SetDeadline(time.Hour)
	s.BeginRound(0, []int{0, 1})
	done := make(chan error, 1)
	go func() {
		_, err := s.AggregateModel(0, 0, contributionFor(0, 8))
		done <- err
	}()
	waitSubs(t, s, 0, "model", 1)
	o, gen := opState(s, 0, "model")
	s.expire(opKey{round: 0, kind: "model"}, o, gen)
	if err := <-done; err != nil {
		t.Fatalf("survivor errored after legitimate expiry: %v", err)
	}
	if n := s.EvictionCount(); n != 1 {
		t.Fatalf("EvictionCount = %d, want 1", n)
	}
	if _, err := s.AggregateModel(1, 0, contributionFor(1, 8)); !errors.Is(err, ErrEvicted) {
		t.Fatalf("evicted straggler got err = %v, want ErrEvicted", err)
	}
}

// TestDeadlineExpiryRacesCompletion hammers the expire/complete race under
// the race detector: a short deadline fires while the last submission is
// landing. Every client must end each round with either the collective
// result or an eviction — never a hang, a panic, or a cross-barrier evict
// long after everyone submitted on time.
func TestDeadlineExpiryRacesCompletion(t *testing.T) {
	const clients = 3
	const iters = 150
	vecs := make(map[int][]float64, clients)
	participants := make([]int, clients)
	for id := 0; id < clients; id++ {
		vecs[id] = contributionFor(id, 32)
		participants[id] = id
	}
	for it := 0; it < iters; it++ {
		s := NewServer(clients)
		s.SetDeadline(500 * time.Microsecond)
		s.BeginRound(0, participants)
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for id := 0; id < clients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				if id == clients-1 {
					// The straggler lands right around the deadline.
					time.Sleep(time.Duration(it%3) * 250 * time.Microsecond)
				}
				_, errs[id] = s.AggregateModel(id, 0, vecs[id])
			}(id)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil && !errors.Is(err, ErrEvicted) {
				t.Fatalf("iter %d client %d: unexpected error %v", it, id, err)
			}
		}
		// Whatever the race outcome, the next round must start clean:
		// survivors form a fresh barrier that completes.
		alive := make([]int, 0, clients)
		s.mu.Lock()
		for id := 0; id < clients; id++ {
			if !s.evicted[id] {
				alive = append(alive, id)
			}
		}
		s.mu.Unlock()
		if len(alive) == 0 {
			continue
		}
		s.SetDeadline(0)
		s.BeginRound(1, alive)
		s.SetRoster(alive)
		var wg2 sync.WaitGroup
		for _, id := range alive {
			wg2.Add(1)
			go func(id int) {
				defer wg2.Done()
				if _, err := s.AggregateModel(id, 1, vecs[id]); err != nil {
					t.Errorf("iter %d round 1 client %d: %v", it, id, err)
				}
			}(id)
		}
		wg2.Wait()
	}
}
