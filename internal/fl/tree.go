package fl

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Tree is the hierarchical aggregation service: the same collective
// barrier contract as Server, but the fold is distributed over a
// multi-tier tree of fold nodes (fold.go). Each leaf aggregator folds the
// submissions of its fanout-sized slice of the cohort roster locally and
// forwards ONE partial — (canonical sum, contributor weight) — to its
// parent; tiers repeat until the root, which scales the total by the
// total weight. Root work is O(fanout), not O(participants), which is
// what lets a cohort sampled from a 10^5–10^6 population aggregate
// without a single server folding every submission.
//
// # Bit-identity with the flat server
//
// Because every fold node combines its children in the canonical
// rank-aligned pairwise order (see fold.go), and because leaves cover
// ALIGNED power-of-two blocks of roster ranks (fanout is rounded up to a
// power of two), the tree evaluates exactly the same balanced binary
// addition tree over roster ranks as the flat server — the grouping of
// every float64 addition is identical, so the global vector is identical
// to the last bit at any fanout and any par worker count. The identical
// contributor count makes the final 1/n scale identical too. This is
// enforced by TestTreeFlatBitIdentity across fanouts {2, 8, 32}.
//
// # Fault tolerance
//
// SetDeadline bounds the whole collective: the deadline runs from the
// first submission, one alive-probe extension applies (same semantics as
// Server), and on expiry the missing clients are evicted from their
// leaves, every tier completes with the partials it has (an empty leaf
// forwards the identity), and the mean is over actual contributors.
// Per-tier eviction and forwarding counters are exposed for RoundStats.
//
// # Restrictions
//
// The tree forbids stray contributions (ids outside the roster snapshot
// error immediately): a stray cannot be assigned a rank without refolding
// the whole tree, and the population/cohort flow always declares the
// roster up front. Buffered-async mode and mid-round roster edits are
// Server-only features.
type Tree struct {
	mu           sync.Mutex
	fanout       int
	roster       []int
	pos          map[int]int
	participants map[int]bool
	round        int
	cols         map[opKey]*treeCol

	deadline   time.Duration
	aliveProbe func(clientID int) bool
	evicted    map[int]bool

	evictions int
	timeouts  int

	// Subtree (relay) mode: when upstream is non-nil this tree is one
	// aligned block of a larger roster — the root node forwards its raw
	// partial through upstream instead of scaling a mean, and publishes
	// whatever the upstream returns. upstreamBase is the block's first
	// rank in the enclosing roster.
	upstream     UpstreamFunc
	upstreamBase int

	// Cumulative per-tier telemetry (tier 0 = leaves). tierEvictions[0]
	// counts client evictions at the leaves; higher tiers count child
	// aggregators that contributed nothing to their parent.
	tierEvictions []int
	leafFolds     int
	partials      int

	gen      uint64
	nodeFree []*foldNode
	colFree  []*treeCol
}

// treeCol is one collective (round, kind): the tier topology plus the
// barrier bookkeeping, all guarded by Tree.mu except the fold nodes.
type treeCol struct {
	gen      uint64
	key      opKey
	tiers    [][]*treeTierNode
	need     int
	subs     int
	pending  map[int]bool
	submit   map[int]bool
	finished bool
	timer    *time.Timer
	extended bool

	result  []float64
	failure error
	done    chan struct{}
}

// treeTierNode is one aggregator of the tree. done flips under Tree.mu
// when the last expected input resolves; the flagged goroutine runs the
// node's fold completion outside the lock and forwards the partial.
type treeTierNode struct {
	fold      *foldNode
	tier      int
	index     int // position within its tier == child rank at the parent
	need      int
	subs      int
	done      bool
	remote    bool // resolved by a remote partial (AggregatePartial)
	contribed bool // forwarded a non-identity partial (counters)
	failure   error
}

// NewTree builds a hierarchical aggregator with the given fanout (values
// below 2 default to 2; non-powers of two round up, preserving rank
// alignment). The roster is declared by SetRoster before the first
// collective of a round.
func NewTree(fanout int) *Tree {
	f := 2
	for f < fanout {
		f <<= 1
	}
	return &Tree{
		fanout:  f,
		pos:     map[int]int{},
		cols:    map[opKey]*treeCol{},
		evicted: map[int]bool{},
	}
}

// Fanout returns the effective (power-of-two) fanout.
func (t *Tree) Fanout() int { return t.fanout }

// SetDeadline bounds every collective barrier (see Server.SetDeadline).
func (t *Tree) SetDeadline(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deadline = d
}

// SetAliveProbe installs the liveness oracle consulted on deadline expiry
// (see Server.SetAliveProbe).
func (t *Tree) SetAliveProbe(probe func(clientID int) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.aliveProbe = probe
}

// SetRoster declares the cohort for subsequent collectives, in any order;
// ranks are assigned by ascending id. Must not be called while
// collectives are in flight.
func (t *Tree) SetRoster(ids []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roster = t.roster[:0]
	for _, id := range ids {
		if !t.evicted[id] {
			t.roster = append(t.roster, id)
		}
	}
	sortInts(t.roster)
	clear(t.pos)
	for p, id := range t.roster {
		t.pos[id] = p
	}
}

// BeginRound declares the active round and participation quorum and
// garbage-collects the previous round's collectives (see
// Server.BeginRound).
func (t *Tree) BeginRound(round int, participants []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.round = round
	if t.participants == nil {
		t.participants = make(map[int]bool, len(participants))
	}
	clear(t.participants)
	for _, id := range participants {
		t.participants[id] = true
	}
	for k, c := range t.cols {
		if c.timer != nil {
			c.timer.Stop()
			c.timer = nil
		}
		if c.finished {
			t.recycleColLocked(c)
		}
		delete(t.cols, k)
	}
}

// Evicted returns the currently evicted client ids in ascending order.
func (t *Tree) Evicted() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.evicted))
	for id := range t.evicted {
		out = append(out, id)
	}
	sortInts(out)
	return out
}

// Readmit clears a client's evicted status; it re-enters at the next
// SetRoster that lists it.
func (t *Tree) Readmit(clientID int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.evicted, clientID)
}

// EvictionCount returns the cumulative number of client evictions.
func (t *Tree) EvictionCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictions
}

// TimeoutCount returns the cumulative number of deadline-closed
// collectives.
func (t *Tree) TimeoutCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.timeouts
}

// TierStats is the per-tree telemetry snapshot surfaced in RoundStats.
type TierStats struct {
	// Tiers is the number of aggregation tiers (leaves included, root
	// included) of the most recent topology.
	Tiers int
	// LeafFolds counts completed leaf fold batches (one per leaf per
	// collective).
	LeafFolds int
	// ForwardedPartials counts partial messages sent upward (leaf and mid
	// tiers; the root consumes, never forwards).
	ForwardedPartials int
	// TierEvictions[i] counts, cumulatively, inputs tier i closed without:
	// index 0 is clients evicted at the leaves, index i>0 is child
	// aggregators that forwarded nothing.
	TierEvictions []int
}

// Stats returns cumulative tree telemetry.
func (t *Tree) Stats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	tiers := 0
	if n := len(t.roster); n > 0 {
		tiers = 1
		for w := (n + t.fanout - 1) / t.fanout; w > 1; w = (w + t.fanout - 1) / t.fanout {
			tiers++
		}
	}
	out := TierStats{
		Tiers:             tiers,
		LeafFolds:         t.leafFolds,
		ForwardedPartials: t.partials,
		TierEvictions:     append([]int(nil), t.tierEvictions...),
	}
	return out
}

// AggregateModel implements sparse.Aggregator (see Server.AggregateModel
// for the ownership contract).
func (t *Tree) AggregateModel(clientID, round int, values []float64) ([]float64, error) {
	return t.aggregate(context.Background(), clientID, round, "model", values)
}

// AggregateError implements sparse.Aggregator.
func (t *Tree) AggregateError(clientID, round int, values []float64) ([]float64, error) {
	return t.aggregate(context.Background(), clientID, round, "error", values)
}

// AggregateModelCtx implements sparse.ContextAggregator.
func (t *Tree) AggregateModelCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return t.aggregate(ctx, clientID, round, "model", values)
}

// AggregateErrorCtx implements sparse.ContextAggregator.
func (t *Tree) AggregateErrorCtx(ctx context.Context, clientID, round int, values []float64) ([]float64, error) {
	return t.aggregate(ctx, clientID, round, "error", values)
}

// newColLocked builds (or recycles) the tier topology for the current
// roster. Leaves cover aligned fanout-sized rank blocks; each tier above
// folds fanout children until one root remains. Caller holds t.mu.
func (t *Tree) newColLocked(key opKey) *treeCol {
	var c *treeCol
	if n := len(t.colFree); n > 0 {
		c, t.colFree = t.colFree[n-1], t.colFree[:n-1]
	} else {
		c = &treeCol{pending: map[int]bool{}, submit: map[int]bool{}}
	}
	t.gen++
	c.gen = t.gen
	c.key = key
	c.done = make(chan struct{})
	for _, id := range t.roster {
		c.pending[id] = true
	}
	c.need = len(t.roster)

	// Tier 0: leaves over rank blocks. The leaf fold is armed with the
	// actual member ids of its block, so stage-by-id and local detach
	// positions work exactly as in the flat server.
	n := len(t.roster)
	width := (n + t.fanout - 1) / t.fanout
	if width < 1 {
		width = 1
	}
	leaves := make([]*treeTierNode, 0, width)
	pending := map[int]bool{}
	for l := 0; l < width; l++ {
		lo := l * t.fanout
		hi := lo + t.fanout
		if hi > n {
			hi = n
		}
		node := &treeTierNode{fold: t.getNodeLocked(), tier: 0, index: l, need: hi - lo}
		clear(pending)
		for r := lo; r < hi; r++ {
			pending[t.roster[r]] = true
		}
		node.fold.arm(pending)
		leaves = append(leaves, node)
	}
	c.tiers = c.tiers[:0]
	c.tiers = append(c.tiers, leaves)

	// Tiers above: weighted rank folds over child indexes, until width 1.
	tier := 1
	for width > 1 {
		parentWidth := (width + t.fanout - 1) / t.fanout
		nodes := make([]*treeTierNode, 0, parentWidth)
		for i := 0; i < parentWidth; i++ {
			lo := i * t.fanout
			hi := lo + t.fanout
			if hi > width {
				hi = width
			}
			node := &treeTierNode{fold: t.getNodeLocked(), tier: tier, index: i, need: hi - lo}
			node.fold.armRanks(hi-lo, true)
			nodes = append(nodes, node)
		}
		c.tiers = append(c.tiers, nodes)
		width = parentWidth
		tier++
	}
	for len(t.tierEvictions) < len(c.tiers) {
		t.tierEvictions = append(t.tierEvictions, 0)
	}
	return c
}

func (t *Tree) getNodeLocked() *foldNode {
	if n := len(t.nodeFree); n > 0 {
		f := t.nodeFree[n-1]
		t.nodeFree = t.nodeFree[:n-1]
		return f
	}
	return newFoldNode()
}

// recycleColLocked resets a finished collective's shells onto the free
// lists. Caller holds t.mu; no waiter can still be inside (BeginRound
// contract).
func (t *Tree) recycleColLocked(c *treeCol) {
	clear(c.pending)
	clear(c.submit)
	c.key = opKey{}
	c.need, c.subs = 0, 0
	c.finished, c.extended = false, false
	c.result, c.failure = nil, nil
	c.done = nil
	for _, tier := range c.tiers {
		for _, node := range tier {
			node.fold.reset()
			t.nodeFree = append(t.nodeFree, node.fold)
			node.fold = nil
		}
	}
	c.tiers = c.tiers[:0]
	t.colFree = append(t.colFree, c)
}

// leafFor maps a roster rank to its leaf node and is only valid while the
// collective's topology is alive. Caller holds t.mu.
func (c *treeCol) leafFor(rank, fanout int) *treeTierNode {
	return c.tiers[0][rank/fanout]
}

// colLocked returns the collective for key, building it (and arming its
// deadline timer) on first touch. Caller holds t.mu.
func (t *Tree) colLocked(key opKey) *treeCol {
	c, ok := t.cols[key]
	if !ok {
		c = t.newColLocked(key)
		if t.deadline > 0 {
			gen := c.gen
			c.timer = time.AfterFunc(t.deadline, func() { t.expire(key, c, gen) })
		}
		t.cols[key] = c
	}
	return c
}

func (t *Tree) aggregate(ctx context.Context, clientID, round int, kind string, values []float64) ([]float64, error) {
	t.mu.Lock()
	if t.evicted[clientID] {
		t.mu.Unlock()
		return nil, &EvictedError{ClientID: clientID}
	}
	rank, inRoster := t.pos[clientID]
	if !inRoster {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: client %d is outside the tree roster (stray contributions are a flat-server feature)", clientID)
	}
	key := opKey{round: round, kind: kind}
	c := t.colLocked(key)
	if c.submit[clientID] {
		t.mu.Unlock()
		return nil, fmt.Errorf("fl: client %d double-submitted %s collective of round %d", clientID, kind, round)
	}
	c.submit[clientID] = true
	delete(c.pending, clientID)
	contributing := values != nil && t.participants[clientID]
	closed := c.finished
	leaf := c.leafFor(rank, t.fanout)
	t.mu.Unlock()

	detachPos := -1
	var detachLeaf *treeTierNode
	if !closed {
		// O(model) staging and opportunistic leaf folding, outside t.mu.
		p, _ := leaf.fold.stage(clientID, values, contributing)
		if contributing {
			detachPos, detachLeaf = p, leaf
		}
		t.mu.Lock()
		c.subs++
		leaf.subs++
		ready := t.nodeReadyLocked(leaf)
		t.mu.Unlock()
		if ready {
			t.cascade(c, leaf)
		}
	}
	return t.wait(ctx, c, detachLeaf, detachPos)
}

// nodeReadyLocked marks a node done when its last input resolved,
// returning whether the caller should run its completion. Caller holds
// t.mu.
func (t *Tree) nodeReadyLocked(n *treeTierNode) bool {
	if !n.done && n.subs >= n.need {
		n.done = true
		return true
	}
	return false
}

// cascade completes a finished node outside t.mu and forwards its partial
// upward, continuing as long as completions ripple toward the root.
func (t *Tree) cascade(c *treeCol, node *treeTierNode) {
	for node != nil {
		root := node.tier == len(c.tiers)-1
		if root {
			t.mu.Lock()
			up, base := t.upstream, t.upstreamBase
			t.mu.Unlock()
			if up != nil {
				// Subtree mode: the "root" is one aligned block of a larger
				// roster. Forward the raw (sum, weight) partial upward and
				// publish whatever global the upstream hands back.
				sum, weight, err := node.fold.complete(false)
				var global []float64
				if err == nil {
					global, err = up(c.key.round, c.key.kind, base, sum, weight)
				}
				t.finishRoot(c, node, global, err)
				return
			}
			res, _, err := node.fold.complete(true)
			t.finishRoot(c, node, res, err)
			return
		}
		res, weight, err := node.fold.complete(false)
		parent := c.tiers[node.tier+1][node.index/t.fanout]
		childRank := node.index % t.fanout
		forwarded := false
		if err != nil {
			node.failure = err
			parent.fold.stageWeighted(childRank, nil, 0)
		} else if res == nil || weight == 0 {
			parent.fold.stageWeighted(childRank, nil, 0)
		} else {
			parent.fold.stageWeighted(childRank, res, weight)
			forwarded = true
		}

		t.mu.Lock()
		if node.tier == 0 {
			t.leafFolds++
		}
		if forwarded {
			t.partials++
			node.contribed = true
		} else {
			// This input to the parent tier resolved empty.
			t.tierEvictions[node.tier+1]++
		}
		parent.subs++
		ready := t.nodeReadyLocked(parent)
		t.mu.Unlock()
		if !ready {
			return
		}
		node = parent
	}
}

// finishRoot publishes the collective result and wakes every waiter. A
// failure recorded anywhere in the tree wins over the (partial) result;
// the lowest tier, lowest index failure is chosen so the reported error
// does not depend on completion timing.
func (t *Tree) finishRoot(c *treeCol, root *treeTierNode, res []float64, err error) {
	if err != nil {
		root.failure = err
	}
	t.mu.Lock()
	var failure error
	for _, tier := range c.tiers {
		for _, node := range tier {
			if node.failure != nil {
				failure = node.failure
				break
			}
		}
		if failure != nil {
			break
		}
	}
	if failure != nil {
		if root.failure == failure && root.tier > 0 {
			c.failure = fmt.Errorf("fl: tier %d aggregator: %w", root.tier, failure)
		} else {
			c.failure = failure
		}
	} else {
		c.result = res
	}
	c.finished = true
	if c.timer != nil {
		c.timer.Stop()
	}
	t.mu.Unlock()
	close(c.done)
}

// wait blocks until the collective completes or ctx cancels; an abandoned
// wait detaches the caller's staged slice from its leaf first.
func (t *Tree) wait(ctx context.Context, c *treeCol, leaf *treeTierNode, detach int) ([]float64, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		if leaf != nil && detach >= 0 {
			leaf.fold.detach(detach)
		}
		return nil, ctx.Err()
	}
	if c.failure != nil {
		return nil, c.failure
	}
	return c.result, nil
}

// expire closes a deadline-expired collective: one alive-probe extension,
// then the missing clients are evicted from their leaves and every
// affected tier completes with what it has (see Server.expire for the
// generation guard).
func (t *Tree) expire(key opKey, armed *treeCol, gen uint64) {
	t.mu.Lock()
	c := t.cols[key]
	if c == nil || c != armed || c.gen != gen || c.finished || len(c.pending) == 0 {
		t.mu.Unlock()
		return
	}
	if !c.extended && t.aliveProbe != nil {
		for id := range c.pending {
			if t.aliveProbe(id) {
				c.extended = true
				c.timer.Reset(t.deadline)
				t.mu.Unlock()
				return
			}
		}
	}
	t.timeouts++
	var ready []*treeTierNode
	for id := range c.pending {
		delete(c.pending, id)
		t.evicted[id] = true
		t.evictions++
		t.tierEvictions[0]++
		rank := t.pos[id]
		leaf := c.leafFor(rank, t.fanout)
		leaf.fold.skip(id)
		leaf.subs++
		if t.nodeReadyLocked(leaf) {
			ready = append(ready, leaf)
		}
	}
	t.mu.Unlock()
	for _, leaf := range ready {
		t.cascade(c, leaf)
	}
}
