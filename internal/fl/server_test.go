package fl

import (
	"math"
	"sync"
	"testing"
)

func TestServerAggregatesMean(t *testing.T) {
	s := NewServer(3)
	s.BeginRound(0, []int{0, 1, 2})
	var wg sync.WaitGroup
	results := make([][]float64, 3)
	inputs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.AggregateModel(i, 0, inputs[i])
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if len(r) != 2 || math.Abs(r[0]-3) > 1e-12 || math.Abs(r[1]-4) > 1e-12 {
			t.Errorf("client %d got %v, want [3 4]", i, r)
		}
	}
}

func TestServerExcludesAbstainers(t *testing.T) {
	s := NewServer(3)
	s.BeginRound(0, []int{0, 1, 2})
	var wg sync.WaitGroup
	var got []float64
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var v []float64
			if i == 0 {
				v = []float64{10}
			}
			r, err := s.AggregateModel(i, 0, v)
			if err != nil {
				t.Error(err)
				return
			}
			if i == 0 {
				got = r
			}
		}(i)
	}
	wg.Wait()
	if len(got) != 1 || got[0] != 10 {
		t.Errorf("mean over single contributor = %v, want [10]", got)
	}
}

func TestServerExcludesNonParticipants(t *testing.T) {
	s := NewServer(2)
	s.BeginRound(5, []int{1}) // only client 1 is in the quorum
	var wg sync.WaitGroup
	results := make([][]float64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.AggregateModel(i, 5, []float64{float64(i * 100)})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if len(r) != 1 || r[0] != 100 {
			t.Errorf("client %d got %v, want [100] (quorum-only mean)", i, r)
		}
	}
}

func TestServerAllAbstainReturnsNil(t *testing.T) {
	s := NewServer(2)
	s.BeginRound(0, nil)
	var wg sync.WaitGroup
	results := make([][]float64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.AggregateModel(i, 0, []float64{1})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if results[0] != nil || results[1] != nil {
		t.Error("empty quorum must aggregate to nil")
	}
}

func TestServerModelAndErrorAreSeparateCollectives(t *testing.T) {
	s := NewServer(1)
	s.BeginRound(0, []int{0})
	m, err := s.AggregateModel(0, 0, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.AggregateError(0, 0, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 1 || e[0] != 2 {
		t.Errorf("collectives mixed: model %v error %v", m, e)
	}
}

func TestServerDoubleSubmitFails(t *testing.T) {
	s := NewServer(2)
	s.BeginRound(0, []int{0, 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.AggregateModel(1, 0, []float64{1}) // fills barrier later
	}()
	// First submission parks; a duplicate from the same client must error
	// without waiting.
	go s.AggregateModel(0, 0, []float64{1})
	// Give the first submission a moment to register, then duplicate.
	for i := 0; i < 1000; i++ {
		if _, err := s.AggregateModel(0, 0, []float64{9}); err != nil {
			<-done
			return
		}
	}
	t.Error("duplicate submission never errored")
}

func TestServerLengthMismatchSurfacesError(t *testing.T) {
	s := NewServer(2)
	s.BeginRound(0, []int{0, 1})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	lens := []int{2, 3}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.AggregateModel(i, 0, make([]float64, lens[i]))
		}(i)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Error("length mismatch must surface an error to waiters")
	}
}

func TestSortInts(t *testing.T) {
	a := []int{5, 1, 4, 1, 3}
	sortInts(a)
	want := []int{1, 1, 3, 4, 5}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("sortInts = %v, want %v", a, want)
		}
	}
}
