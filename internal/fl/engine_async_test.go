package fl

import (
	"context"
	"math"
	"strings"
	"testing"

	"fedsu/internal/data"
	"fedsu/internal/nn"
	"fedsu/internal/par"
	"fedsu/internal/sparse"
)

// tinyAsyncEngine builds (without running) a 4-client engine in buffered-
// async mode, mirroring tinyEngine's workload.
func tinyAsyncEngine(t *testing.T, strategy string, acfg AsyncConfig, eventThreshold float64) *Engine {
	t.Helper()
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 512, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	cfg := Config{
		NumClients:     4,
		LocalIters:     5,
		BatchSize:      8,
		LR:             0.05,
		WeightDecay:    0.0005,
		DirichletAlpha: 1.0,
		EvalSamples:    128,
		EvalBatch:      64,
		Seed:           3,
		Async:          acfg,
		EventThreshold: eventThreshold,
	}
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
	}
	factory, err := StrategyFactory(strategy)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, builder, ds, factory)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineAsyncLearns: the buffered-async event loop trains — accuracy
// climbs, emulated time advances monotonically, and every apply window
// reports K participants.
func TestEngineAsyncLearns(t *testing.T) {
	e := tinyAsyncEngine(t, "fedavg", AsyncConfig{K: 2, MaxStaleness: 8, StalenessWeight: 0.5}, 0)
	stats, err := e.Run(context.Background(), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 24 {
		t.Fatalf("got %d apply stats, want 24", len(stats))
	}
	last := stats[len(stats)-1]
	if last.Accuracy <= 0.5 {
		t.Errorf("final accuracy = %v, want > 0.5", last.Accuracy)
	}
	prev := 0.0
	for _, st := range stats {
		if st.SimTime < prev {
			t.Fatalf("apply %d: emulated time went backwards (%v after %v)", st.Round, st.SimTime, prev)
		}
		prev = st.SimTime
		if st.Participants != 2 {
			t.Errorf("apply %d: %d participants, want K=2", st.Round, st.Participants)
		}
		if st.Traffic.UpBytes <= 0 {
			t.Errorf("apply %d: no upload traffic", st.Round)
		}
		if math.IsNaN(st.TrainLoss) {
			t.Errorf("apply %d: NaN train loss", st.Round)
		}
	}
	if g := e.AsyncGlobal(); g == nil {
		t.Fatal("no async global after the run")
	}
}

// TestEngineAsyncDeterministicAcrossWorkers is the async extension of the
// barrier bit-identity contract: the netem-driven event loop serializes
// arrivals in a seeded order, and the element-sharded fold is worker-count
// independent, so the final global must be BIT-identical at 1, 2, and 7
// par workers.
func TestEngineAsyncDeterministicAcrossWorkers(t *testing.T) {
	run := func() ([]float64, []RoundStats) {
		e := tinyAsyncEngine(t, "fedavg", AsyncConfig{K: 2, MaxStaleness: 8, StalenessWeight: 0.5}, 0)
		stats, err := e.Run(context.Background(), 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		return e.AsyncGlobal(), stats
	}
	var want []float64
	var wantStats []RoundStats
	for wi, workers := range []int{1, 2, 7} {
		prev := par.SetWorkers(workers)
		got, stats := run()
		par.SetWorkers(prev)
		if wi == 0 {
			want, wantStats = got, stats
			continue
		}
		if !sameBits(got, want) {
			t.Fatalf("workers=%d: final async global deviates bitwise from workers=1", workers)
		}
		for i := range stats {
			if math.Float64bits(stats[i].SimTime) != math.Float64bits(wantStats[i].SimTime) {
				t.Fatalf("workers=%d apply %d: emulated time diverged", workers, i)
			}
			if stats[i].Traffic != wantStats[i].Traffic {
				t.Fatalf("workers=%d apply %d: traffic accounting diverged", workers, i)
			}
		}
	}
}

// TestEngineAsyncEventTriggerRuns: async + event-triggered participation
// compose — some cycles are gated off (header-only), upload bytes shrink
// versus the ungated run, and the run still reaches its apply target.
func TestEngineAsyncEventTriggerRuns(t *testing.T) {
	run := func(thr float64) (up, triggered, suppressed int) {
		e := tinyAsyncEngine(t, "fedavg", AsyncConfig{K: 2, MaxStaleness: 8, StalenessWeight: 0.5}, thr)
		stats, err := e.Run(context.Background(), 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stats {
			up += st.Traffic.UpBytes
		}
		if e.AsyncGlobal() == nil {
			t.Fatal("no global produced")
		}
		for _, c := range e.clients {
			if et, ok := c.syncer.(*sparse.EventTrigger); ok {
				tr, s := et.TriggerCounts()
				triggered += tr
				suppressed += s
			} else if thr > 0 {
				t.Fatalf("client %d syncer is %T, want *sparse.EventTrigger", c.ID, c.syncer)
			}
		}
		return up, triggered, suppressed
	}
	// A threshold in the range of per-cycle drift gates some, not all,
	// cycles; training keeps making enough progress to reach 12 applies.
	// Both runs need the same 24 contributions to reach 12 applies of K=2,
	// so the saving shows up per synchronized cycle: suppressed cycles ship
	// header-only messages instead of the full vector.
	gatedUp, gatedTrig, suppressed := run(0.25)
	openUp, openTrig, _ := run(0)
	if suppressed == 0 {
		t.Fatal("threshold 0.25 suppressed no cycles; gating never engaged")
	}
	perCycleOpen := float64(openUp) / float64(openTrig)
	perCycleGated := float64(gatedUp) / float64(gatedTrig+suppressed)
	if perCycleGated >= perCycleOpen {
		t.Errorf("event gating did not reduce per-cycle uploads: %.0f gated vs %.0f open",
			perCycleGated, perCycleOpen)
	}
}

// TestEngineAsyncRejectsSubsetStrategies: FedSU and APF submit
// subset-length vectors, which the weighted async fold cannot align;
// construction must fail with a clear error rather than corrupting the
// accumulator at runtime.
func TestEngineAsyncRejectsSubsetStrategies(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 256, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
	}
	for _, strategy := range []string{"fedsu", "apf"} {
		factory, err := StrategyFactory(strategy)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			NumClients: 4, LocalIters: 2, BatchSize: 8, LR: 0.05,
			DirichletAlpha: 1.0, EvalSamples: 64, EvalBatch: 64, Seed: 3,
			Async: AsyncConfig{K: 2},
		}
		if _, err := NewEngine(cfg, builder, ds, factory); err == nil {
			t.Errorf("async engine accepted subset-length strategy %q", strategy)
		} else if !strings.Contains(err.Error(), strategy) {
			t.Errorf("rejection for %q does not name the strategy: %v", strategy, err)
		}
	}
}

// TestEngineAsyncRunRoundRefused: the synchronous per-round driver has no
// meaning in async mode.
func TestEngineAsyncRunRoundRefused(t *testing.T) {
	e := tinyAsyncEngine(t, "fedavg", AsyncConfig{K: 2}, 0)
	if _, err := e.RunRound(context.Background(), true); err == nil {
		t.Fatal("RunRound succeeded in async mode")
	}
}

// TestEngineRejectsNegativeEventThreshold: misconfiguration fails fast.
func TestEngineRejectsNegativeEventThreshold(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 256, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
	}
	factory, err := StrategyFactory("fedavg")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		NumClients: 4, LocalIters: 2, BatchSize: 8, LR: 0.05,
		DirichletAlpha: 1.0, EvalSamples: 64, EvalBatch: 64, Seed: 3,
		EventThreshold: -0.1,
	}
	if _, err := NewEngine(cfg, builder, ds, factory); err == nil {
		t.Fatal("negative EventThreshold accepted")
	}
}

// TestEngineSyncEventTriggerAllStrategies: in synchronous mode the event
// trigger wraps every strategy, including the probe-heavy ones (FedSU state
// transfer, APF) — the unwrapping middleware must keep their internals
// reachable.
func TestEngineSyncEventTriggerAllStrategies(t *testing.T) {
	ds := data.Synthesize(data.SynthConfig{
		Name: "tiny", Channels: 1, Size: 8, Classes: 4,
		Samples: 256, Noise: 0.2, Jitter: 1, Seed: 11,
	})
	builder := func() *nn.Model {
		return nn.NewMLP(nn.ModelConfig{InChannels: 1, ImageSize: 8, NumClasses: 4, Seed: 5}, 24)
	}
	for _, strategy := range StrategyNames() {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			t.Parallel()
			factory, err := StrategyFactory(strategy)
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				NumClients: 4, LocalIters: 2, BatchSize: 8, LR: 0.05,
				DirichletAlpha: 1.0, EvalSamples: 64, EvalBatch: 64, Seed: 3,
				EventThreshold: 0.5,
			}
			e, err := NewEngine(cfg, builder, ds, factory)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := e.Run(context.Background(), 4, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) != 4 {
				t.Fatalf("got %d rounds", len(stats))
			}
		})
	}
}
