package fl

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"fedsu/internal/par"
)

// submitTreeInOrder forces an exact arrival order against a Tree, the
// tree-side twin of submitInOrder.
func submitTreeInOrder(t *testing.T, tr *Tree, round int, order []int, vecs map[int][]float64) (map[int][]float64, map[int]error) {
	t.Helper()
	results := make(map[int][]float64, len(order))
	errs := make(map[int]error, len(order))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for k, id := range order {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res, err := tr.AggregateModel(id, round, vecs[id])
			mu.Lock()
			results[id], errs[id] = res, err
			mu.Unlock()
		}(id)
		waitTreeSubs(t, tr, round, "model", k+1)
	}
	wg.Wait()
	return results, errs
}

func waitTreeSubs(t *testing.T, tr *Tree, round int, kind string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr.mu.Lock()
		subs := -1
		if c := tr.cols[opKey{round: round, kind: kind}]; c != nil {
			subs = c.subs
		}
		tr.mu.Unlock()
		if subs >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d submissions to tree %s/%d", want, kind, round)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestTreeFlatBitIdentity is the tentpole acceptance bar: over the same
// sampled cohort, the hierarchical tree's global vector must equal the
// flat server's to the last bit — across fanouts {2, 8, 32}, worker
// counts {1, 4, GOMAXPROCS}, and shuffled submission orders. The cohort
// is drawn from a population so the roster ids are non-contiguous, the
// way a real tree run sees them.
func TestTreeFlatBitIdentity(t *testing.T) {
	const popSize, cohortSize, size = 3000, 100, 4100
	pop := NewPopulation(11)
	pop.RegisterN(popSize, 50)
	cohort := pop.SampleCohort(1, cohortSize)

	vecs := make(map[int][]float64, cohortSize)
	ranked := make([][]float64, cohortSize)
	for r, id := range cohort {
		switch r % 17 {
		case 5: // abstainer: checks in with nil
			vecs[id] = nil
		default:
			vecs[id] = contributionFor(id, size)
			ranked[r] = vecs[id]
		}
	}
	oracle := canonicalMean(ranked)

	// Flat reference run.
	flat := NewServer(popSize)
	flat.SetRoster(cohort)
	flat.BeginRound(0, cohort)
	flatRes, flatErrs := submitInOrder(t, flat, 0, cohort, vecs)
	for id, err := range flatErrs {
		if err != nil {
			t.Fatalf("flat client %d: %v", id, err)
		}
	}
	want := flatRes[cohort[0]]
	if !sameBits(want, oracle) {
		t.Fatal("flat server deviates from the canonical pairwise oracle")
	}

	orders := [][]int{
		append([]int(nil), cohort...),
		rand.New(rand.NewSource(3)).Perm(cohortSize),
		rand.New(rand.NewSource(4)).Perm(cohortSize),
	}
	// Orders 1,2 are permutations of cohort indexes; materialize ids.
	for oi := 1; oi < len(orders); oi++ {
		ids := make([]int, cohortSize)
		for k, ci := range orders[oi] {
			ids[k] = cohort[ci]
		}
		orders[oi] = ids
	}

	for _, fanout := range []int{2, 8, 32} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			prev := par.SetWorkers(workers)
			for oi, order := range orders {
				tr := NewTree(fanout)
				tr.SetRoster(cohort)
				tr.BeginRound(0, cohort)
				results, errs := submitTreeInOrder(t, tr, 0, order, vecs)
				for id, err := range errs {
					if err != nil {
						t.Fatalf("fanout=%d workers=%d order=%d client %d: %v", fanout, workers, oi, id, err)
					}
				}
				for id, res := range results {
					if !sameBits(res, want) {
						t.Fatalf("fanout=%d workers=%d order=%d client %d: tree result deviates from flat server", fanout, workers, oi, id)
					}
				}
			}
			par.SetWorkers(prev)
		}
	}
}

// TestTreeDeadlineEviction: a tree collective closed by deadline must
// average the actual contributors bit-identically to a flat server closed
// over the same contributor set, evict the missing clients, and account
// for them in the per-tier counters.
func TestTreeDeadlineEviction(t *testing.T) {
	const size = 2048
	roster := []int{3, 8, 15, 21, 30, 44, 52, 61}
	submitters := []int{3, 15, 30, 44, 61}
	vecs := make(map[int][]float64)
	ranked := make([][]float64, len(roster))
	for r, id := range roster {
		for _, s := range submitters {
			if s == id {
				vecs[id] = contributionFor(id, size)
				ranked[r] = vecs[id]
			}
		}
	}
	want := canonicalMean(ranked)

	tr := NewTree(4)
	tr.SetDeadline(40 * time.Millisecond)
	tr.SetRoster(roster)
	tr.BeginRound(0, roster)
	results, errs := submitTreeInOrder(t, tr, 0, submitters, vecs)
	for _, id := range submitters {
		if errs[id] != nil {
			t.Fatalf("client %d: %v", id, errs[id])
		}
		if !sameBits(results[id], want) {
			t.Fatalf("client %d: deadline-closed tree mean deviates from canonical reference", id)
		}
	}
	if got := tr.Evicted(); len(got) != 3 || got[0] != 8 || got[1] != 21 || got[2] != 52 {
		t.Fatalf("evicted = %v, want [8 21 52]", got)
	}
	if tr.TimeoutCount() != 1 {
		t.Fatalf("timeouts = %d, want 1", tr.TimeoutCount())
	}
	st := tr.Stats()
	if len(st.TierEvictions) == 0 || st.TierEvictions[0] != 3 {
		t.Fatalf("tier evictions = %v, want [3 ...]", st.TierEvictions)
	}
	// A late submission from an evicted client is rejected.
	if _, err := tr.AggregateModel(8, 0, contributionFor(8, size)); err == nil {
		t.Fatal("evicted client's late submission was accepted")
	}
}

// TestTreeStrayRejected: ids outside the roster error immediately — the
// tree cannot rank a stray.
func TestTreeStrayRejected(t *testing.T) {
	tr := NewTree(2)
	tr.SetRoster([]int{1, 2})
	tr.BeginRound(0, []int{1, 2})
	if _, err := tr.AggregateModel(7, 0, []float64{1}); err == nil {
		t.Fatal("stray submission was accepted")
	}
}

// TestTreeDoubleSubmit mirrors the flat server's strict double-submit
// error.
func TestTreeDoubleSubmit(t *testing.T) {
	tr := NewTree(2)
	tr.SetRoster([]int{0, 1})
	tr.BeginRound(0, []int{0, 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = tr.AggregateModel(0, 0, []float64{1, 2})
	}()
	waitTreeSubs(t, tr, 0, "model", 1)
	if _, err := tr.AggregateModel(0, 0, []float64{1, 2}); err == nil {
		t.Fatal("double submission was accepted")
	}
	if _, err := tr.AggregateModel(1, 0, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTreeLateSubmissionGetsResult: a roster member arriving after a
// deadline-free barrier closed (its slot was filled by eviction... here
// by completing the quorum) receives the published result.
func TestTreeLateSubmissionGetsResult(t *testing.T) {
	tr := NewTree(2)
	tr.SetDeadline(30 * time.Millisecond)
	tr.SetRoster([]int{0, 1, 2})
	tr.BeginRound(0, []int{0, 1, 2})
	vecs := map[int][]float64{0: {2, 4}, 1: {4, 8}}
	results, errs := submitTreeInOrder(t, tr, 0, []int{0, 1}, vecs)
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	want := []float64{3, 6}
	if !sameBits(results[0], want) {
		t.Fatalf("mean = %v, want %v", results[0], want)
	}
}

// TestTreeCallerSliceNotAliased: the abandoned-wait detach works through
// the leaf tier exactly as on the flat server.
func TestTreeCallerSliceNotAliased(t *testing.T) {
	tr := NewTree(2)
	tr.SetRoster([]int{0, 1})
	tr.BeginRound(0, []int{0, 1})

	vec := []float64{10, 20, 30}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := tr.AggregateModelCtx(ctx, 0, 0, vec)
		if err == nil {
			panic("cancelled wait returned no error")
		}
	}()
	waitTreeSubs(t, tr, 0, "model", 1)
	cancel()
	<-done
	vec[0], vec[1], vec[2] = -1e9, -1e9, -1e9

	res, err := tr.AggregateModel(1, 0, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 12, 18}
	if !sameBits(res, want) {
		t.Fatalf("mean = %v, want %v: the tree aliased the caller's slice", res, want)
	}
}

// TestTreeStatsCounters: leaf folds and forwarded partials reflect the
// topology — ceil(n/F) leaf folds per collective, and every non-root node
// with contributions forwards exactly one partial.
func TestTreeStatsCounters(t *testing.T) {
	const n, fanout = 20, 4 // tiers: 5 leaves -> 2 mids -> root
	roster := make([]int, n)
	vecs := make(map[int][]float64, n)
	for i := range roster {
		roster[i] = i * 3
		vecs[i*3] = contributionFor(i, 64)
	}
	tr := NewTree(fanout)
	tr.SetRoster(roster)
	tr.BeginRound(0, roster)
	_, errs := submitTreeInOrder(t, tr, 0, roster, vecs)
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	st := tr.Stats()
	if st.Tiers != 3 {
		t.Fatalf("tiers = %d, want 3", st.Tiers)
	}
	if st.LeafFolds != 5 {
		t.Fatalf("leaf folds = %d, want 5", st.LeafFolds)
	}
	if st.ForwardedPartials != 7 { // 5 leaves + 2 mids
		t.Fatalf("forwarded partials = %d, want 7", st.ForwardedPartials)
	}
}

// TestTreeMultiRoundRecycling: consecutive rounds over changing cohorts
// reuse the recycled shells and stay correct.
func TestTreeMultiRoundRecycling(t *testing.T) {
	pop := NewPopulation(5)
	pop.RegisterN(500, 10)
	tr := NewTree(8)
	for round := 0; round < 4; round++ {
		cohort := pop.SampleCohort(round, 40)
		tr.SetRoster(cohort)
		tr.BeginRound(round, cohort)
		vecs := make(map[int][]float64, len(cohort))
		ranked := make([][]float64, len(cohort))
		for r, id := range cohort {
			vecs[id] = contributionFor(id+round*1000, 700)
			ranked[r] = vecs[id]
		}
		want := canonicalMean(ranked)
		results, errs := submitTreeInOrder(t, tr, round, cohort, vecs)
		for id, err := range errs {
			if err != nil {
				t.Fatalf("round %d client %d: %v", round, id, err)
			}
		}
		for id, res := range results {
			if !sameBits(res, want) {
				t.Fatalf("round %d client %d: recycled-tree mean deviates", round, id)
			}
		}
	}
}
