package fl

import (
	"context"
	"testing"
)

func TestCheckpointRestoreResumesExactly(t *testing.T) {
	// Run A: 12 rounds straight. Run B: 6 rounds, checkpoint, fresh-restore
	// into the same engine, 6 more. Because restore clears only resumable
	// state (models, masks, round counter) within the SAME engine, the two
	// halves must chain exactly when the checkpoint round-trips losslessly.
	e, _ := tinyEngine(t, "fedsu", 6)
	ck := e.Checkpoint()
	if ck.Round != 6 {
		t.Fatalf("checkpoint round = %d, want 6", ck.Round)
	}
	before := e.Clients()[0].Model().Vector()

	// Perturb the fleet, then restore.
	if _, err := e.RunRound(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(ck); err != nil {
		t.Fatal(err)
	}
	after := e.Clients()[0].Model().Vector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("restore did not rewind model at param %d", i)
		}
	}

	// Training continues from the checkpoint without error and the fleet
	// stays consistent.
	if _, err := e.RunRound(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	ref := e.Clients()[0].Model().Vector()
	for _, c := range e.Clients()[1:] {
		v := c.Model().Vector()
		for i := range ref {
			if v[i] != ref[i] {
				t.Fatalf("post-restore round: client %d diverged", c.ID)
			}
		}
	}
}

func TestRestoreValidations(t *testing.T) {
	e, _ := tinyEngine(t, "fedsu", 2)
	ck := e.Checkpoint()

	other, _ := tinyEngine(t, "fedavg", 1)
	if err := other.Restore(ck); err == nil {
		t.Error("restoring a FedSU checkpoint into a FedAvg fleet must fail")
	}

	ck2 := e.Checkpoint()
	ck2.Model = ck2.Model[:10]
	if err := e.Restore(ck2); err == nil {
		t.Error("size-mismatched model must fail")
	}
}

func TestCheckpointOmitsManagerForBaselines(t *testing.T) {
	e, _ := tinyEngine(t, "fedavg", 2)
	ck := e.Checkpoint()
	if ck.Manager != nil {
		t.Error("FedAvg checkpoint must not carry FedSU state")
	}
	if err := e.Restore(ck); err != nil {
		t.Fatal(err)
	}
}
