package fl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fedsu/internal/par"
	"fedsu/internal/sparse"
)

// This file holds the reusable streaming fold-node extracted from the
// fl.Server op machinery: the component that accepts contributions for an
// ordered roster of positions, folds them incrementally as the resolution
// frontier advances, and produces the collective sum. fl.Server composes
// one fold node per collective; the hierarchical aggregation tree
// (tree.go) composes one per tier node, which is what makes a multi-tier
// run bit-identical to the flat server.
//
// # Canonical pairwise fold order
//
// Contributions combine in a FIXED balanced binary tree over roster ranks
// (the position of each id in the ascending roster), padded to the next
// power of two, with absent ranks (abstentions, non-participants, evicted
// clients, the pad tail) acting as the identity: merge(x, ⊥) = x performs
// no arithmetic. The value of any aligned power-of-two rank range is
// therefore well-defined independently of how the range is split across
// fold nodes — a leaf aggregator covering an aligned rank block computes
// exactly the canonical subtree sum, and every tier above merges sibling
// subtrees in the same canonical order. This grouping independence is the
// property the hierarchical tree's bit-identity bar requires; a left fold
// (the historical order) cannot provide it, because float64 addition is
// not associative. The pairwise order also grows rounding error O(log n)
// instead of the left fold's O(n).
//
// IEEE-754 addition is commutative (a+b == b+a bitwise, including NaN
// payload propagation for the quiet NaNs Go produces), so only the
// grouping — never the operand order inside one merge — has to be pinned.
//
// # Streaming implementation
//
// Ranks resolve in ascending order behind the frontier, exactly like the
// historical fold. The node runs a binary counter: levels[k] holds the
// canonical sum of the completed, aligned 2^k-rank subtree ending at the
// current frontier boundary (or nothing, when that subtree saw no
// contributions). Consuming rank r merges the trailing-one chain of r,
// costing amortized one vector addition per contribution — the same
// arithmetic volume as the left fold. Element work is batched into a
// fold *plan* (a short list of elementwise copy/add ops on staged slices
// and pooled level buffers) and executed with a single parallel pass per
// drain, sharded on the parameter index: every element observes the same
// merge sequence at every worker count and grain, which keeps the
// bit-determinism contract.
//
// Contributions are staged by reference (the submitting caller blocks
// until the barrier closes, so its slice is stable); merges write only
// into pooled buffers the node owns. A caller abandoning its wait detaches
// first — the contribution is copied and any level slot aliasing the
// caller's slice is repointed at the copy (see detach).

// foldPlan op kinds: elementwise ops executed chunk-sequentially by the
// plan kernel. add2 is dst += src; add3 is dst = a + b (dst disjoint or
// equal to a previously freed buffer); copyOp is dst = a.
const (
	foldOpAdd2 = iota
	foldOpAdd3
	foldOpCopy
)

type foldOp struct {
	kind    int
	dst, a1 []float64
	a2      []float64
}

// levelSlot is one completed canonical subtree sum. vec == nil means the
// subtree saw no contributions (the ⊥ identity). owned points at the
// pooled buffer backing vec when the node owns the storage; otherwise vec
// aliases the staged contribution at position alias.
type levelSlot struct {
	vec   []float64
	owned *[]float64
	alias int
}

// foldNode is the reusable streaming fold component. All mutable fold
// state is guarded by mu (the per-collective fold lock); the status array
// is the atomic publish point between stagers and the drain path.
type foldNode struct {
	// Immutable after arm(): the roster in ascending id order and the
	// id → rank index.
	order []int
	pos   map[int]int

	// status[p] is written by stagers and evictions (atomic release) and
	// read by the fold path (atomic acquire); staged[p] is published by
	// the posStaged store and only read after the corresponding load.
	// staged[p] normally references the submitting caller's slice;
	// ownedPtr[p] is non-nil iff staged[p] is a pooled copy (detach).
	status   []atomic.Uint32
	staged   [][]float64
	ownedPtr []*[]float64

	// weights[p] scales position p's contribution count toward the mean
	// divisor (nil ⇒ every contribution weighs 1). Tree tiers stage child
	// partials whose weight is the child's own contributor count.
	weights []int

	mu       sync.Mutex
	frontier int
	folded   int // weighted contribution count (the mean divisor)
	sumLen   int
	lenFail  error
	strays   map[int]strayEntry

	// Binary-counter state: rank is the number of roster positions
	// consumed; levels[k] the pending 2^k-subtree sum.
	rank   int
	levels []levelSlot

	// Fold plan scratch plus persistent kernels (created once per node so
	// steady-state folds allocate nothing but level buffers, which are
	// pooled). spare recycles level buffers freed by merges within the
	// collective.
	plan     []foldOp
	spare    []*[]float64
	planFn   func(lo, hi int)
	scaleFn  func(lo, hi int)
	scaleInv float64

	// Published under mu before the owner closes its done channel.
	result []float64
}

type strayEntry struct {
	buf    *[]float64
	weight int
}

// newFoldNode constructs a node with its persistent parallel kernels.
func newFoldNode() *foldNode {
	f := &foldNode{pos: map[int]int{}, sumLen: -1}
	f.planFn = func(lo, hi int) {
		for _, op := range f.plan {
			dst := op.dst[lo:hi]
			switch op.kind {
			case foldOpAdd2:
				src := op.a1[lo:hi]
				for i := range dst {
					dst[i] += src[i]
				}
			case foldOpAdd3:
				a := op.a1[lo:hi]
				b := op.a2[lo:hi]
				for i := range dst {
					dst[i] = a[i] + b[i]
				}
			case foldOpCopy:
				copy(dst, op.a1[lo:hi])
			}
		}
	}
	f.scaleFn = func(lo, hi int) {
		dst := f.result[lo:hi]
		inv := f.scaleInv
		for i := range dst {
			dst[i] *= inv
		}
	}
	return f
}

// arm resets the node for a new collective over the given pending set.
// order/pos/status/staged storage is recycled across collectives.
func (f *foldNode) arm(pending map[int]bool) {
	f.order = f.order[:0]
	for id := range pending {
		f.order = append(f.order, id)
	}
	sortInts(f.order)
	for p, id := range f.order {
		f.pos[id] = p
	}
	n := len(f.order)
	if cap(f.status) >= n {
		f.status = f.status[:n]
		f.staged = f.staged[:n]
		f.ownedPtr = f.ownedPtr[:n]
	} else {
		f.status = make([]atomic.Uint32, n)
		f.staged = make([][]float64, n)
		f.ownedPtr = make([]*[]float64, n)
	}
	for i := range f.status {
		f.status[i].Store(posPending)
		f.staged[i] = nil
		f.ownedPtr[i] = nil
	}
	f.weights = nil
}

// armRanks is arm for a roster that is already the dense rank sequence
// 0..n-1 (tree tiers), with optional per-rank weights enabled.
func (f *foldNode) armRanks(n int, weighted bool) {
	f.order = f.order[:0]
	for id := 0; id < n; id++ {
		f.order = append(f.order, id)
		f.pos[id] = id
	}
	if cap(f.status) >= n {
		f.status = f.status[:n]
		f.staged = f.staged[:n]
		f.ownedPtr = f.ownedPtr[:n]
	} else {
		f.status = make([]atomic.Uint32, n)
		f.staged = make([][]float64, n)
		f.ownedPtr = make([]*[]float64, n)
	}
	for i := range f.status {
		f.status[i].Store(posPending)
		f.staged[i] = nil
		f.ownedPtr[i] = nil
	}
	if weighted {
		if cap(f.weights) >= n {
			f.weights = f.weights[:n]
		} else {
			f.weights = make([]int, n)
		}
		for i := range f.weights {
			f.weights[i] = 1
		}
	} else {
		f.weights = nil
	}
}

// reset clears per-collective fold state (called from arm sites and
// recycling). Caller must ensure no waiter still references the node.
func (f *foldNode) reset() {
	clear(f.pos)
	f.frontier, f.folded, f.rank = 0, 0, 0
	f.sumLen = -1
	f.lenFail = nil
	f.result = nil
	for i := range f.levels {
		f.levels[i] = levelSlot{alias: -1}
	}
	f.levels = f.levels[:0]
	for _, p := range f.spare {
		sparse.PutVec(p)
	}
	f.spare = f.spare[:0]
	f.plan = f.plan[:0]
	for p := range f.staged {
		sparse.PutVec(f.ownedPtr[p])
		f.ownedPtr[p] = nil
		f.staged[p] = nil
	}
	for id, s := range f.strays {
		sparse.PutVec(s.buf)
		delete(f.strays, id)
	}
}

// stage publishes a contribution (or a skip) at the given id and
// opportunistically drains. Returns the caller's detach position (-1 when
// nothing was reference-staged) and whether the id was in the roster.
func (f *foldNode) stage(id int, values []float64, contributing bool) (detach int, inRoster bool) {
	p, ok := f.pos[id]
	if !ok {
		return -1, false
	}
	if !contributing {
		f.status[p].Store(posSkip)
		f.tryDrain()
		return -1, true
	}
	f.staged[p] = values
	f.status[p].Store(posStaged)
	f.tryDrain()
	return p, true
}

// stageWeighted stages a tree-tier partial: the contribution counts
// weight toward the mean divisor. Caller must have armed with weights.
func (f *foldNode) stageWeighted(rank int, values []float64, weight int) int {
	if values == nil || weight <= 0 {
		f.status[rank].Store(posSkip)
		f.tryDrain()
		return -1
	}
	f.weights[rank] = weight
	f.staged[rank] = values
	f.status[rank].Store(posStaged)
	f.tryDrain()
	return rank
}

// addStray records a contribution from an id outside the roster snapshot
// (readmitted mid-round, or a participant excluded from SetRoster). Its
// presence forces a full ordered refold at completion. Strays are rare:
// copy eagerly rather than wiring them into the detach path.
func (f *foldNode) addStray(id int, values []float64, weight int) {
	buf := sparse.GetVec(len(values))
	copy(*buf, values)
	f.mu.Lock()
	if f.strays == nil {
		f.strays = map[int]strayEntry{}
	}
	f.strays[id] = strayEntry{buf: buf, weight: weight}
	f.mu.Unlock()
}

// tryDrain folds whatever the frontier allows if the fold lock is free;
// otherwise the current holder (or the completion drain) picks the work up.
func (f *foldNode) tryDrain() {
	if !f.mu.TryLock() {
		return
	}
	f.drainLocked(false)
	f.mu.Unlock()
}

// drainLocked advances the frontier over resolved positions, consuming
// each rank into the binary counter in ascending order. With final set
// (completion), positions that never resolved — possible when stray
// submissions filled the quorum — consume their rank as the identity,
// matching the contributors-only mean. Caller holds mu.
func (f *foldNode) drainLocked(final bool) {
	for {
		fr := f.frontier
		contribs := 0
		for fr < len(f.order) {
			st := f.status[fr].Load()
			if st == posPending && !final {
				break
			}
			if st == posStaged {
				contribs++
			}
			fr++
		}
		if fr == f.frontier {
			return
		}
		if !final && contribs > 0 && contribs < drainMinBatch {
			// Not worth a fold pass yet; leave the run staged for a
			// larger batch. (Skip-only runs always advance, below.)
			if !f.advanceSkipsLocked(fr) {
				return
			}
			continue
		}
		f.consumeRunLocked(fr)
		f.execPlanLocked()
		if final {
			return
		}
	}
}

// advanceSkipsLocked consumes the leading run of skip positions up to
// limit (cheap pointer work, no element ops), stopping at the first
// staged contribution. Reports whether it advanced at all.
func (f *foldNode) advanceSkipsLocked(limit int) bool {
	advanced := false
	for f.frontier < limit && f.status[f.frontier].Load() == posSkip {
		f.insertLocked(nil, -1, 0, 0)
		f.frontier++
		advanced = true
	}
	return advanced
}

// consumeRunLocked consumes positions [frontier, fr) into the counter.
// Caller holds mu.
func (f *foldNode) consumeRunLocked(fr int) {
	for p := f.frontier; p < fr; p++ {
		if f.status[p].Load() == posStaged {
			w := 1
			if f.weights != nil {
				w = f.weights[p]
			}
			f.insertLocked(f.staged[p], p, w, f.order[p])
		} else {
			f.insertLocked(nil, -1, 0, 0)
		}
	}
	f.frontier = fr
}

// insertLocked consumes one rank: vec == nil is the ⊥ identity (the rank
// still advances the counter — alignment is rank-based). The trailing-one
// chain of the old rank index determines which pending subtrees merge.
// Caller holds mu.
func (f *foldNode) insertLocked(vec []float64, aliasPos, weight, id int) {
	r := f.rank
	f.rank++
	cur := levelSlot{alias: -1}
	if vec != nil && f.lenFail == nil {
		if f.sumLen < 0 {
			f.sumLen = len(vec)
		}
		if len(vec) != f.sumLen {
			f.lenFail = fmt.Errorf("fl: client %d submitted %d values, others %d", id, len(vec), f.sumLen)
		} else {
			cur = levelSlot{vec: vec, alias: aliasPos}
			f.folded += weight
		}
	}
	k := 0
	for c := r; c&1 == 1; c >>= 1 {
		f.ensureLevel(k)
		left := f.levels[k]
		f.levels[k] = levelSlot{alias: -1}
		switch {
		case left.vec == nil:
			// absent subtree: cur passes through unchanged
		case cur.vec == nil:
			cur = left
		default:
			cur = f.mergeLocked(left, cur)
		}
		k++
	}
	f.ensureLevel(k)
	f.levels[k] = cur
}

func (f *foldNode) ensureLevel(k int) {
	for len(f.levels) <= k {
		f.levels = append(f.levels, levelSlot{alias: -1})
	}
}

// mergeLocked plans the elementwise addition of two non-⊥ subtree sums,
// preferring to accumulate into a buffer the node already owns. Operand
// order inside the addition is free (IEEE-754 addition commutes); only
// the grouping is canonical. Caller holds mu.
func (f *foldNode) mergeLocked(a, b levelSlot) levelSlot {
	switch {
	case a.owned != nil:
		f.plan = append(f.plan, foldOp{kind: foldOpAdd2, dst: a.vec, a1: b.vec})
		if b.owned != nil {
			f.spare = append(f.spare, b.owned)
		}
		return levelSlot{vec: a.vec, owned: a.owned, alias: -1}
	case b.owned != nil:
		f.plan = append(f.plan, foldOp{kind: foldOpAdd2, dst: b.vec, a1: a.vec})
		return levelSlot{vec: b.vec, owned: b.owned, alias: -1}
	default:
		buf := f.getBufLocked()
		dst := (*buf)[:f.sumLen]
		f.plan = append(f.plan, foldOp{kind: foldOpAdd3, dst: dst, a1: a.vec, a2: b.vec})
		return levelSlot{vec: dst, owned: buf, alias: -1}
	}
}

// getBufLocked reuses a buffer freed by an earlier merge of this
// collective, falling back to the pool. Reuse within one plan is safe:
// the plan kernel executes ops sequentially per chunk, so a buffer read
// by an earlier op is only overwritten by a later op on the same chunk.
func (f *foldNode) getBufLocked() *[]float64 {
	if n := len(f.spare); n > 0 {
		buf := f.spare[n-1]
		f.spare = f.spare[:n-1]
		if cap(*buf) >= f.sumLen {
			return buf
		}
		sparse.PutVec(buf)
	}
	return sparse.GetVec(f.sumLen)
}

// execPlanLocked runs the accumulated fold plan with one parallel pass
// over the parameter dimension. Every element receives the plan's merges
// in a single chunk, so the result is bit-identical at every worker count
// and grain. Caller holds mu.
func (f *foldNode) execPlanLocked() {
	if len(f.plan) == 0 {
		return
	}
	par.ParallelizeGrain(f.sumLen, foldGrain, f.planFn)
	f.plan = f.plan[:0]
}

// finalizeLocked merges the residual counter levels into the collective
// sum. Merging low level to high reproduces the canonical tree: the
// virtual ⊥ ranks padding the roster to a power of two merge as the
// identity, leaving exactly the right-spine combination of the completed
// subtrees. The result is materialized into owned storage (never an
// aliased caller slice). Caller holds mu; returns sum (nil when nothing
// folded) and the weighted contribution count.
func (f *foldNode) finalizeLocked() ([]float64, int) {
	if f.lenFail != nil {
		return nil, 0
	}
	res := levelSlot{alias: -1}
	for k := 0; k < len(f.levels); k++ {
		l := f.levels[k]
		if l.vec == nil {
			continue
		}
		f.levels[k] = levelSlot{alias: -1}
		if res.vec == nil {
			res = l
			continue
		}
		res = f.mergeLocked(l, res)
	}
	if res.vec == nil {
		return nil, 0
	}
	if res.owned == nil {
		// Single-contribution collectives end with the staged slice
		// itself: the result outlives the caller's barrier wait, so it
		// must be copied into owned storage.
		buf := f.getBufLocked()
		dst := (*buf)[:f.sumLen]
		f.plan = append(f.plan, foldOp{kind: foldOpCopy, dst: dst, a1: res.vec})
		res = levelSlot{vec: dst, owned: buf, alias: -1}
	}
	f.execPlanLocked()
	// The result is handed to every waiter and retained indefinitely; its
	// backing buffer leaves the pool for good (the pool mints a fresh
	// allocation later — same steady-state cost as the historical
	// per-collective make).
	f.result = res.vec
	return f.result, f.folded
}

// scaleResultLocked scales the finalized sum in place by 1/weight with
// one parallel pass — the mean both the flat server and the tree root
// publish. Caller holds mu.
func (f *foldNode) scaleResultLocked(weight int) {
	if f.result == nil || weight <= 0 {
		return
	}
	f.scaleInv = 1.0 / float64(weight)
	//lint:allow lockhold -- the fold mutex is the leaf lock of its collective: the completing goroutine is its sole holder after finish, and pool workers never take it, so the dispatch cannot deadlock
	par.ParallelizeGrain(f.sumLen, foldGrain, f.scaleFn)
}

// refoldLocked recomputes the fold from scratch over every retained
// contribution — roster positions and strays together, ascending by id —
// restoring the canonical rank order over the combined contributor list
// when stray ids would otherwise have interleaved below the already-
// consumed frontier. With strays present the rank structure is the dense
// index over the combined ascending contributors (a server-only path; the
// tree forbids strays). Caller holds mu.
func (f *foldNode) refoldLocked() {
	// Drop counter state; owned buffers become spares for the replay.
	for i := range f.levels {
		if f.levels[i].owned != nil {
			f.spare = append(f.spare, f.levels[i].owned)
		}
		f.levels[i] = levelSlot{alias: -1}
	}
	f.levels = f.levels[:0]
	f.plan = f.plan[:0]
	f.rank, f.folded = 0, 0
	f.sumLen = -1
	f.lenFail = nil

	ids := make([]int, 0, len(f.order)+len(f.strays))
	vecs := make(map[int][]float64, len(f.order)+len(f.strays))
	ws := make(map[int]int, len(f.strays))
	for p, id := range f.order {
		if f.status[p].Load() == posStaged {
			ids = append(ids, id)
			vecs[id] = f.staged[p]
			if f.weights != nil {
				ws[id] = f.weights[p]
			} else {
				ws[id] = 1
			}
		}
	}
	for id, s := range f.strays {
		ids = append(ids, id)
		vecs[id] = *s.buf
		ws[id] = s.weight
	}
	sortInts(ids)
	for _, id := range ids {
		f.insertLocked(vecs[id], -1, ws[id], id)
	}
	f.execPlanLocked()
}

// complete drains the remaining work and produces the collective result
// (the raw canonical sum, or the mean when scaleMean is set) plus the
// weighted contributor count, or the deterministic length-mismatch
// failure. It releases every staged reference before returning — caller
// slices go back to their owners, pooled copies and strays to the pool —
// so a post-completion detach sees nil and does nothing. It must run on
// exactly one goroutine per collective (the owner's finished flag).
func (f *foldNode) complete(scaleMean bool) (res []float64, weight int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drainLocked(true)
	if len(f.strays) > 0 {
		f.refoldLocked()
	}
	if f.lenFail != nil {
		err = f.lenFail
	} else {
		res, weight = f.finalizeLocked()
		if scaleMean {
			f.scaleResultLocked(weight)
		}
	}
	f.releaseStagedLocked()
	return res, weight, err
}

// releaseStagedLocked drops every staged reference and sweeps the counter
// levels (which still hold owned buffers when a length failure aborted
// the fold before finalize). Caller holds mu.
func (f *foldNode) releaseStagedLocked() {
	for p := range f.staged {
		sparse.PutVec(f.ownedPtr[p])
		f.ownedPtr[p] = nil
		f.staged[p] = nil
	}
	for id, s := range f.strays {
		sparse.PutVec(s.buf)
		delete(f.strays, id)
	}
	for i := range f.levels {
		sparse.PutVec(f.levels[i].owned)
		f.levels[i] = levelSlot{alias: -1}
	}
	f.levels = f.levels[:0]
	for _, p := range f.spare {
		sparse.PutVec(p)
	}
	f.spare = f.spare[:0]
}

// detach replaces a reference-staged contribution with a pooled copy: the
// abandoning caller may legally reuse its slice the moment its wait
// returns, while the barrier is still open. The copy substitutes both in
// the staged slot (the refold path) and in any counter level that still
// aliases the caller's slice. After completion the staged slot is nil and
// the slice is no longer needed.
func (f *foldNode) detach(p int) {
	f.mu.Lock()
	if f.staged[p] != nil && f.ownedPtr[p] == nil {
		buf := sparse.GetVec(len(f.staged[p]))
		copy(*buf, f.staged[p])
		f.staged[p] = *buf
		f.ownedPtr[p] = buf
		for k := range f.levels {
			if f.levels[k].alias == p {
				f.levels[k].vec = *buf
				f.levels[k].alias = -1
			}
		}
	}
	f.mu.Unlock()
}

// skip resolves an id's position without a contribution (eviction path).
// Safe to call from bookkeeping code; the next drain consumes the rank.
func (f *foldNode) skip(id int) {
	if p, ok := f.pos[id]; ok {
		f.status[p].Store(posSkip)
	}
}
